// Package persist is the control plane's write-ahead persistence layer:
// an append-only change log plus snapshot bootstrap for the registry's
// protocol state, the durable-runtime-state precondition the checkpointing
// literature (Milanés et al. 2013, Lev-Libfeld & Barak 2009) names for
// transparent recovery. A Store accepts typed change Records in sequence
// order, serves incremental catch-up reads from any sequence number (the
// sync feed for domain shards and the warm-standby pair), and holds at most
// one Snapshot that folds a log prefix into one document so bootstrap never
// replays from the beginning of time.
//
// Two backends share the contract: MemStore keeps everything in memory —
// deterministic, allocation-cheap, the backend every simulation and chaos
// scenario uses — and FileStore frames records into length+CRC log segments
// on disk with atomic snapshot renames and truncation-tolerant recovery
// (a torn tail record is dropped; anything else corrupt fails loudly).
//
// # Epoch fencing
//
// Every append names the epoch the writer believes is current. Fence
// advances the epoch — the standby's promotion step — after which appends
// from the old epoch fail with ErrFenced. A deposed primary therefore
// cannot durably commit a gang reservation the promoted standby has
// presumed aborted: its Commit's log write is rejected, the admission
// fails, and the job layer replans. This is the no-double-admission
// guarantee, enforced at the store rather than by timing.
//
// # Single-writer contract
//
// A Store serialises its own operations and is safe for concurrent use
// in-process, but the file backend assumes one process owns the directory;
// there is no cross-process lock. The registry is that single writer, and
// the standby reads through the same in-process Store instance.
package persist

import "errors"

// Record is one typed change-log entry. Seq is assigned by the store,
// contiguous from 1; Kind is the writer's vocabulary (the registry's
// change-record kinds); Data is the writer's encoded payload, opaque to
// the store.
type Record struct {
	Seq  uint64 `json:"seq"`
	Kind string `json:"kind"`
	Data []byte `json:"data"`
}

// Snapshot folds the log prefix up to and including Seq into one encoded
// state document. A store holds at most one snapshot; writing a new one
// compacts away the log records it covers.
type Snapshot struct {
	Seq  uint64 `json:"seq"`
	Data []byte `json:"data"`
}

// ErrFenced reports an append or snapshot write from a stale epoch — the
// writer was deposed by a Fence (standby promotion) and must stop acting
// as primary.
var ErrFenced = errors.New("persist: epoch fenced")

// Store is the pluggable persistence backend.
type Store interface {
	// Append adds one record at the tail and returns its sequence number.
	// epoch must equal Epoch() or the append fails with ErrFenced.
	Append(epoch uint64, kind string, data []byte) (uint64, error)
	// ReadSince returns every record with Seq > since, in order. A reader
	// that bootstrapped from the snapshot passes the snapshot's Seq; a
	// caught-up follower passes its last applied Seq.
	ReadSince(since uint64) ([]Record, error)
	// Seq returns the sequence number of the last record (snapshot
	// included), 0 when the store is empty.
	Seq() uint64
	// WriteSnapshot replaces the store's snapshot and compacts away the
	// log records it covers. epoch must equal Epoch() or ErrFenced.
	WriteSnapshot(epoch uint64, snap Snapshot) error
	// LoadSnapshot returns the current snapshot, ok=false when none exists.
	LoadSnapshot() (Snapshot, bool, error)
	// Epoch returns the current writer epoch.
	Epoch() uint64
	// Fence advances the epoch and returns the new value; appends carrying
	// an older epoch fail with ErrFenced from then on.
	Fence() (uint64, error)
	// Close releases backend resources. The store must not be used after.
	Close() error
}

// TailTruncator is implemented by stores that can simulate a torn tail
// write — the crash-mid-append the file backend's recovery tolerates.
// TruncateTail chops n bytes off the end of the log; the file backend
// truncates its active segment, and the next recovery drops the now
// partial tail record.
type TailTruncator interface {
	TruncateTail(n int) error
}
