package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// openers builds one fresh store per backend so every contract test runs
// against both.
func openers(t *testing.T) map[string]func() Store {
	t.Helper()
	return map[string]func() Store{
		"mem": func() Store { return NewMemStore() },
		"file": func() Store {
			s, err := OpenFileStore(t.TempDir(), FileConfig{SegmentRecords: 4})
			if err != nil {
				t.Fatalf("open file store: %v", err)
			}
			return s
		},
	}
}

func TestAppendReadSince(t *testing.T) {
	for name, open := range openers(t) {
		t.Run(name, func(t *testing.T) {
			s := open()
			defer s.Close()
			for i := 1; i <= 10; i++ {
				seq, err := s.Append(0, "k", []byte(fmt.Sprintf("v%d", i)))
				if err != nil {
					t.Fatalf("append %d: %v", i, err)
				}
				if seq != uint64(i) {
					t.Fatalf("seq = %d, want %d", seq, i)
				}
			}
			if s.Seq() != 10 {
				t.Fatalf("Seq = %d, want 10", s.Seq())
			}
			recs, err := s.ReadSince(7)
			if err != nil {
				t.Fatalf("ReadSince: %v", err)
			}
			if len(recs) != 3 || recs[0].Seq != 8 || string(recs[2].Data) != "v10" {
				t.Fatalf("ReadSince(7) = %+v", recs)
			}
		})
	}
}

func TestSnapshotCompaction(t *testing.T) {
	for name, open := range openers(t) {
		t.Run(name, func(t *testing.T) {
			s := open()
			defer s.Close()
			for i := 1; i <= 9; i++ {
				if _, err := s.Append(0, "k", []byte{byte(i)}); err != nil {
					t.Fatalf("append: %v", err)
				}
			}
			if err := s.WriteSnapshot(0, Snapshot{Seq: 6, Data: []byte("state@6")}); err != nil {
				t.Fatalf("WriteSnapshot: %v", err)
			}
			snap, ok, err := s.LoadSnapshot()
			if err != nil || !ok || snap.Seq != 6 || string(snap.Data) != "state@6" {
				t.Fatalf("LoadSnapshot = %+v ok=%v err=%v", snap, ok, err)
			}
			recs, err := s.ReadSince(0)
			if err != nil {
				t.Fatalf("ReadSince: %v", err)
			}
			if len(recs) != 3 || recs[0].Seq != 7 {
				t.Fatalf("post-compaction ReadSince(0) = %+v", recs)
			}
			// Appends continue from the pre-snapshot sequence.
			if seq, err := s.Append(0, "k", nil); err != nil || seq != 10 {
				t.Fatalf("append after snapshot: seq=%d err=%v", seq, err)
			}
		})
	}
}

func TestFenceRejectsStaleEpoch(t *testing.T) {
	for name, open := range openers(t) {
		t.Run(name, func(t *testing.T) {
			s := open()
			defer s.Close()
			if _, err := s.Append(0, "k", nil); err != nil {
				t.Fatalf("append: %v", err)
			}
			e, err := s.Fence()
			if err != nil || e != 1 {
				t.Fatalf("Fence = %d, %v", e, err)
			}
			if _, err := s.Append(0, "k", nil); !errors.Is(err, ErrFenced) {
				t.Fatalf("stale append err = %v, want ErrFenced", err)
			}
			if err := s.WriteSnapshot(0, Snapshot{Seq: 1}); !errors.Is(err, ErrFenced) {
				t.Fatalf("stale snapshot err = %v, want ErrFenced", err)
			}
			if _, err := s.Append(1, "k", nil); err != nil {
				t.Fatalf("new-epoch append: %v", err)
			}
		})
	}
}

func TestFileStoreReopenRecovers(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir, FileConfig{SegmentRecords: 3})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 1; i <= 8; i++ {
		if _, err := s.Append(0, "k", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := s.WriteSnapshot(0, Snapshot{Seq: 5, Data: []byte("snap")}); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if _, err := s.Fence(); err != nil {
		t.Fatalf("fence: %v", err)
	}
	if _, err := s.Append(1, "k", []byte("v9")); err != nil {
		t.Fatalf("append post-fence: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	r, err := OpenFileStore(dir, FileConfig{SegmentRecords: 3})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	if r.Epoch() != 1 {
		t.Fatalf("recovered epoch = %d, want 1", r.Epoch())
	}
	snap, ok, err := r.LoadSnapshot()
	if err != nil || !ok || snap.Seq != 5 || string(snap.Data) != "snap" {
		t.Fatalf("recovered snapshot = %+v ok=%v err=%v", snap, ok, err)
	}
	recs, err := r.ReadSince(snap.Seq)
	if err != nil {
		t.Fatalf("ReadSince: %v", err)
	}
	if len(recs) != 4 || recs[0].Seq != 6 || string(recs[3].Data) != "v9" {
		t.Fatalf("recovered suffix = %+v", recs)
	}
	if seq, err := r.Append(1, "k", nil); err != nil || seq != 10 {
		t.Fatalf("append after reopen: seq=%d err=%v", seq, err)
	}
}

func TestFileStoreCompactionUnlinksSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir, FileConfig{SegmentRecords: 2})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	for i := 1; i <= 7; i++ {
		if _, err := s.Append(0, "k", []byte{byte(i)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := s.WriteSnapshot(0, Snapshot{Seq: 6, Data: []byte("x")}); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	if len(segs) != 1 {
		t.Fatalf("segments after compaction = %v, want just the tail", segs)
	}
}

func TestFileStoreCorruptMidFileFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir, FileConfig{SegmentRecords: 1024})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 1; i <= 5; i++ {
		if _, err := s.Append(0, "k", []byte("payload")); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil || len(segs) != 1 {
		t.Fatalf("glob = %v, %v", segs, err)
	}
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	// Flip a payload byte in the middle of the file: CRC must catch it.
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(segs[0], b, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := OpenFileStore(dir, FileConfig{}); err == nil {
		t.Fatal("open of corrupt store succeeded, want loud error")
	}
}

func TestMemTruncateTailDropsNewestRecord(t *testing.T) {
	s := NewMemStore()
	for i := 1; i <= 3; i++ {
		if _, err := s.Append(0, "k", []byte{byte(i)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := s.TruncateTail(1); err != nil {
		t.Fatalf("TruncateTail: %v", err)
	}
	if s.Seq() != 2 {
		t.Fatalf("Seq after tear = %d, want 2", s.Seq())
	}
	if seq, err := s.Append(0, "k", []byte{9}); err != nil || seq != 3 {
		t.Fatalf("append after tear: seq=%d err=%v", seq, err)
	}
	recs, err := s.ReadSince(0)
	if err != nil || len(recs) != 3 || recs[2].Data[0] != 9 {
		t.Fatalf("ReadSince after tear = %+v, %v", recs, err)
	}
}
