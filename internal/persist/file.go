package persist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FileStore is the file-backed Store: records are framed into append-only
// log segments ([4-byte length][4-byte CRC32][JSON payload], little-endian
// headers), the snapshot is one framed document replaced by atomic rename,
// and the epoch lives in its own atomically renamed file. Writes go through
// the OS page cache (no per-record fsync): the durability target is the
// paper's crash-restart of the control-plane process, not media loss, and
// recovery tolerates the resulting torn tail — a final frame cut short by
// the crash is dropped (and the file truncated back to the intact prefix),
// while a CRC mismatch anywhere else fails loudly rather than loading
// corrupt state.
//
// Segments roll every SegmentRecords records and are named by the sequence
// number of their first record, so snapshot compaction can unlink every
// segment whose records the snapshot covers without rewriting anything.
type FileStore struct {
	dir    string
	segMax int

	mu     sync.Mutex
	recs   []Record // records not covered by the snapshot, in seq order
	snap   Snapshot
	has    bool
	seq    uint64
	epoch  uint64
	segs   []segInfo
	active *os.File // tail segment, open for append; nil when none
	frames []frameInfo
	closed bool
}

type segInfo struct {
	path  string
	first uint64
	last  uint64
}

// frameInfo locates one record's frame inside the active segment, so a
// simulated torn write (TruncateTail) can map removed bytes back to the
// records they tear.
type frameInfo struct {
	seq uint64
	end int64 // offset one past the frame's last byte
}

// FileConfig tunes a FileStore.
type FileConfig struct {
	// SegmentRecords rolls the log to a fresh segment after this many
	// records; zero selects 1024.
	SegmentRecords int
}

const (
	snapshotName = "snapshot"
	epochName    = "epoch"
	segPrefix    = "log-"
	segSuffix    = ".seg"
	frameHeader  = 8 // 4-byte length + 4-byte CRC32
)

// maxFrame bounds a frame's payload length; a header claiming more is
// corruption (or a torn length field), never a real record.
const maxFrame = 1 << 26

// OpenFileStore opens (creating if needed) the store rooted at dir and
// recovers its state: epoch, snapshot, and every log segment in order.
// A torn tail record in the final segment is dropped and the file is
// truncated back to the intact prefix; any other framing or checksum
// damage is a loud error — the store never loads corrupt state.
func OpenFileStore(dir string, cfg FileConfig) (*FileStore, error) {
	if cfg.SegmentRecords <= 0 {
		cfg.SegmentRecords = 1024
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: open store: %w", err)
	}
	s := &FileStore{dir: dir, segMax: cfg.SegmentRecords}
	if err := s.recoverEpoch(); err != nil {
		return nil, err
	}
	if err := s.recoverSnapshot(); err != nil {
		return nil, err
	}
	if err := s.recoverSegments(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *FileStore) recoverEpoch() error {
	b, err := os.ReadFile(filepath.Join(s.dir, epochName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("persist: read epoch: %w", err)
	}
	var e uint64
	if _, err := fmt.Sscanf(strings.TrimSpace(string(b)), "%d", &e); err != nil {
		return fmt.Errorf("persist: corrupt epoch file: %w", err)
	}
	s.epoch = e
	return nil
}

func (s *FileStore) recoverSnapshot() error {
	b, err := os.ReadFile(filepath.Join(s.dir, snapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("persist: read snapshot: %w", err)
	}
	// The snapshot is replaced by atomic rename, so unlike the log tail a
	// short or mismatched frame here is corruption, not a crash artifact.
	payload, n, err := readFrame(b, 0)
	if err != nil || n != int64(len(b)) {
		return fmt.Errorf("persist: corrupt snapshot: %v", err)
	}
	if err := json.Unmarshal(payload, &s.snap); err != nil {
		return fmt.Errorf("persist: corrupt snapshot: %w", err)
	}
	s.has = true
	s.seq = s.snap.Seq
	return nil
}

func (s *FileStore) recoverSegments() error {
	names, err := filepath.Glob(filepath.Join(s.dir, segPrefix+"*"+segSuffix))
	if err != nil {
		return fmt.Errorf("persist: list segments: %w", err)
	}
	sort.Strings(names) // zero-padded first-seq names sort numerically
	var prev uint64
	for i, name := range names {
		last := i == len(names)-1
		seg, recs, err := s.recoverSegment(name, last, prev)
		if err != nil {
			return err
		}
		if len(recs) > 0 {
			prev = recs[len(recs)-1].Seq
		}
		s.segs = append(s.segs, seg)
		for _, r := range recs {
			if r.Seq > s.snap.Seq {
				s.recs = append(s.recs, r)
			}
			if r.Seq > s.seq {
				s.seq = r.Seq
			}
		}
	}
	// Reopen the final segment for append and remember its frame layout.
	if len(s.segs) > 0 {
		tail := &s.segs[len(s.segs)-1]
		f, err := os.OpenFile(tail.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("persist: reopen tail segment: %w", err)
		}
		s.active = f
	}
	return nil
}

// recoverSegment parses one segment file. In the final segment a frame cut
// short at EOF is a torn tail: it is dropped and the file truncated back to
// the intact prefix. Everywhere else — and for any CRC mismatch — the
// damage is a loud error.
func (s *FileStore) recoverSegment(name string, last bool, prev uint64) (segInfo, []Record, error) {
	b, err := os.ReadFile(name)
	if err != nil {
		return segInfo{}, nil, fmt.Errorf("persist: read segment: %w", err)
	}
	var recs []Record
	var off int64
	s.frames = s.frames[:0]
	for off < int64(len(b)) {
		payload, next, err := readFrame(b, off)
		if errors.Is(err, errShortFrame) {
			if !last {
				return segInfo{}, nil, fmt.Errorf("persist: %s: truncated frame at offset %d in non-final segment", filepath.Base(name), off)
			}
			// Torn tail: drop the partial record, repair the file.
			if err := os.Truncate(name, off); err != nil {
				return segInfo{}, nil, fmt.Errorf("persist: truncate torn tail: %w", err)
			}
			break
		}
		if err != nil {
			return segInfo{}, nil, fmt.Errorf("persist: %s: offset %d: %w", filepath.Base(name), off, err)
		}
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			return segInfo{}, nil, fmt.Errorf("persist: %s: offset %d: corrupt record: %w", filepath.Base(name), off, err)
		}
		if prev != 0 && r.Seq != prev+1 {
			return segInfo{}, nil, fmt.Errorf("persist: %s: sequence gap: %d follows %d", filepath.Base(name), r.Seq, prev)
		}
		prev = r.Seq
		recs = append(recs, r)
		off = next
		if last {
			s.frames = append(s.frames, frameInfo{seq: r.Seq, end: off})
		}
	}
	seg := segInfo{path: name}
	if len(recs) > 0 {
		seg.first, seg.last = recs[0].Seq, recs[len(recs)-1].Seq
	}
	return seg, recs, nil
}

var errShortFrame = errors.New("frame extends past end of file")

// readFrame parses the frame at off, returning the payload and the offset
// one past the frame. errShortFrame reports a frame cut off by EOF — the
// only damage recovery may repair; a checksum mismatch is returned as a
// distinct loud error.
func readFrame(b []byte, off int64) ([]byte, int64, error) {
	if off+frameHeader > int64(len(b)) {
		return nil, 0, errShortFrame
	}
	n := binary.LittleEndian.Uint32(b[off:])
	sum := binary.LittleEndian.Uint32(b[off+4:])
	if n > maxFrame {
		return nil, 0, errShortFrame
	}
	end := off + frameHeader + int64(n)
	if end > int64(len(b)) {
		return nil, 0, errShortFrame
	}
	payload := b[off+frameHeader : end]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, errors.New("checksum mismatch")
	}
	return payload, end, nil
}

func frame(payload []byte) []byte {
	out := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(out, uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:], crc32.ChecksumIEEE(payload))
	copy(out[frameHeader:], payload)
	return out
}

func (s *FileStore) segPath(first uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%010d%s", segPrefix, first, segSuffix))
}

// Append implements Store.
func (s *FileStore) Append(epoch uint64, kind string, data []byte) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errors.New("persist: store closed")
	}
	if epoch != s.epoch {
		return 0, ErrFenced
	}
	next := s.seq + 1
	// Roll to a fresh segment when the tail is full (or none is open).
	if s.active == nil || len(s.frames) >= s.segMax {
		if s.active != nil {
			if err := s.active.Close(); err != nil {
				return 0, fmt.Errorf("persist: close segment: %w", err)
			}
		}
		f, err := os.OpenFile(s.segPath(next), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
		if err != nil {
			return 0, fmt.Errorf("persist: create segment: %w", err)
		}
		s.active = f
		s.frames = s.frames[:0]
		s.segs = append(s.segs, segInfo{path: s.segPath(next), first: next})
	}
	r := Record{Seq: next, Kind: kind, Data: data}
	payload, err := json.Marshal(r)
	if err != nil {
		return 0, fmt.Errorf("persist: encode record: %w", err)
	}
	if _, err := s.active.Write(frame(payload)); err != nil {
		return 0, fmt.Errorf("persist: append: %w", err)
	}
	s.seq = next
	var base int64
	if len(s.frames) > 0 {
		base = s.frames[len(s.frames)-1].end
	}
	s.frames = append(s.frames, frameInfo{seq: next, end: base + int64(frameHeader+len(payload))})
	s.recs = append(s.recs, Record{Seq: next, Kind: kind, Data: append([]byte(nil), data...)})
	s.segs[len(s.segs)-1].last = next
	return next, nil
}

// ReadSince implements Store.
func (s *FileStore) ReadSince(since uint64) ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Record
	for _, r := range s.recs {
		if r.Seq > since {
			out = append(out, r)
		}
	}
	return out, nil
}

// Seq implements Store.
func (s *FileStore) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// WriteSnapshot implements Store: the snapshot document is framed into a
// temporary file and renamed over the live one (readers see the old or the
// new snapshot, never a torn one), then every segment the snapshot fully
// covers is unlinked.
func (s *FileStore) WriteSnapshot(epoch uint64, snap Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("persist: store closed")
	}
	if epoch != s.epoch {
		return ErrFenced
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("persist: encode snapshot: %w", err)
	}
	if err := s.writeAtomic(snapshotName, frame(payload)); err != nil {
		return err
	}
	s.snap = Snapshot{Seq: snap.Seq, Data: append([]byte(nil), snap.Data...)}
	s.has = true
	if snap.Seq > s.seq {
		s.seq = snap.Seq
	}
	keep := s.recs[:0]
	for _, r := range s.recs {
		if r.Seq > snap.Seq {
			keep = append(keep, r)
		}
	}
	s.recs = keep
	// Unlink fully covered segments; the tail segment always survives so
	// appends continue in place.
	var segs []segInfo
	for i, seg := range s.segs {
		tail := i == len(s.segs)-1
		if !tail && seg.last <= snap.Seq {
			if err := os.Remove(seg.path); err != nil {
				return fmt.Errorf("persist: compact segment: %w", err)
			}
			continue
		}
		segs = append(segs, seg)
	}
	s.segs = segs
	return nil
}

func (s *FileStore) writeAtomic(name string, data []byte) error {
	tmp := filepath.Join(s.dir, name+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("persist: write %s: %w", name, err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, name)); err != nil {
		return fmt.Errorf("persist: rename %s: %w", name, err)
	}
	return nil
}

// LoadSnapshot implements Store.
func (s *FileStore) LoadSnapshot() (Snapshot, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.has {
		return Snapshot{}, false, nil
	}
	return Snapshot{Seq: s.snap.Seq, Data: append([]byte(nil), s.snap.Data...)}, true, nil
}

// Epoch implements Store.
func (s *FileStore) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Fence implements Store: the new epoch is durably recorded (atomic
// rename) before it takes effect.
func (s *FileStore) Fence() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := s.epoch + 1
	if err := s.writeAtomic(epochName, []byte(fmt.Sprintf("%d\n", next))); err != nil {
		return 0, err
	}
	s.epoch = next
	return next, nil
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.active != nil {
		return s.active.Close()
	}
	return nil
}

// TruncateTail implements TailTruncator: n bytes are chopped off the tail
// segment (the torn write), then the file is truncated further back to the
// last intact frame boundary — the repair recovery would perform — so the
// live store keeps a consistent prefix and the next append continues from
// the rewound sequence. Records whose frames lost bytes are dropped from
// the in-memory mirror, matching what a reopen would recover.
func (s *FileStore) TruncateTail(n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 || s.active == nil || len(s.frames) == 0 {
		return nil
	}
	size := s.frames[len(s.frames)-1].end
	cut := size - int64(n)
	if cut < 0 {
		cut = 0
	}
	// Keep frames that end at or before the cut; everything later is torn.
	keep := 0
	for keep < len(s.frames) && s.frames[keep].end <= cut {
		keep++
	}
	var newSize int64
	if keep > 0 {
		newSize = s.frames[keep-1].end
	}
	torn := s.frames[keep:]
	s.frames = s.frames[:keep]
	if len(torn) > 0 {
		first := torn[0].seq
		recs := s.recs[:0]
		for _, r := range s.recs {
			if r.Seq < first {
				recs = append(recs, r)
			}
		}
		s.recs = recs
		s.seq = first - 1
	}
	if err := s.active.Truncate(newSize); err != nil {
		return fmt.Errorf("persist: truncate tail: %w", err)
	}
	s.segs[len(s.segs)-1].last = s.seq
	return nil
}
