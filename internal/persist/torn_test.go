package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestTornTailEveryByteOffset is the torn-write property test: a log
// truncated at any byte offset either recovers cleanly to a record prefix
// (the torn tail record dropped) or fails loudly — recovery never loads a
// record that was not fully appended. Truncation is the crash model: an
// append cut short leaves a prefix of the bytes it would have written.
func TestTornTailEveryByteOffset(t *testing.T) {
	// Build a reference log in one segment so every truncation offset
	// lands in the same file.
	master := t.TempDir()
	s, err := OpenFileStore(master, FileConfig{SegmentRecords: 1024})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const n = 6
	for i := 1; i <= n; i++ {
		if _, err := s.Append(0, "kind", []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	segs, err := filepath.Glob(filepath.Join(master, segPrefix+"*"+segSuffix))
	if err != nil || len(segs) != 1 {
		t.Fatalf("glob = %v, %v", segs, err)
	}
	full, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	segName := filepath.Base(segs[0])

	// Frame boundaries of the reference log, for the prefix check.
	boundaries := map[int64]uint64{0: 0}
	var off int64
	var seq uint64
	for off < int64(len(full)) {
		_, next, err := readFrame(full, off)
		if err != nil {
			t.Fatalf("reference log unreadable at %d: %v", off, err)
		}
		seq++
		boundaries[next] = seq
		off = next
	}

	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), full[:cut], 0o644); err != nil {
			t.Fatalf("cut %d: write: %v", cut, err)
		}
		r, err := OpenFileStore(dir, FileConfig{})
		if err != nil {
			t.Fatalf("cut %d: recovery failed loudly on pure truncation: %v", cut, err)
		}
		// The recovered log must be the longest whole-record prefix at or
		// before the cut.
		var want uint64
		for b, s := range boundaries {
			if b <= int64(cut) && s > want {
				want = s
			}
		}
		if got := r.Seq(); got != want {
			t.Fatalf("cut %d: recovered seq = %d, want %d", cut, got, want)
		}
		recs, err := r.ReadSince(0)
		if err != nil {
			t.Fatalf("cut %d: ReadSince: %v", cut, err)
		}
		if uint64(len(recs)) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(recs), want)
		}
		for i, rec := range recs {
			if rec.Seq != uint64(i+1) || string(rec.Data) != fmt.Sprintf("payload-%d", i+1) {
				t.Fatalf("cut %d: record %d corrupt: %+v", cut, i, rec)
			}
		}
		// The repair truncated the file: appending after recovery must
		// yield a log that reopens cleanly.
		if _, err := r.Append(0, "kind", []byte("post-recovery")); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		rr, err := OpenFileStore(dir, FileConfig{})
		if err != nil {
			t.Fatalf("cut %d: reopen after repair+append: %v", cut, err)
		}
		if rr.Seq() != want+1 {
			t.Fatalf("cut %d: post-repair seq = %d, want %d", cut, rr.Seq(), want+1)
		}
		if err := rr.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
}

// TestLiveTruncateTailMatchesReopen checks the injectable torn write: a
// TruncateTail on a live store leaves exactly the state a crash at that
// byte count plus a reopen would — the two recovery paths agree.
func TestLiveTruncateTailMatchesReopen(t *testing.T) {
	for _, tear := range []int{1, 5, 30, 200} {
		dir := t.TempDir()
		s, err := OpenFileStore(dir, FileConfig{SegmentRecords: 1024})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		for i := 1; i <= 6; i++ {
			if _, err := s.Append(0, "kind", []byte(fmt.Sprintf("payload-%d", i))); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
		if err := s.TruncateTail(tear); err != nil {
			t.Fatalf("tear %d: %v", tear, err)
		}
		liveSeq := s.Seq()
		liveRecs, err := s.ReadSince(0)
		if err != nil {
			t.Fatalf("tear %d: ReadSince: %v", tear, err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		r, err := OpenFileStore(dir, FileConfig{})
		if err != nil {
			t.Fatalf("tear %d: reopen: %v", tear, err)
		}
		if r.Seq() != liveSeq {
			t.Fatalf("tear %d: reopen seq %d != live seq %d", tear, r.Seq(), liveSeq)
		}
		recs, err := r.ReadSince(0)
		if err != nil {
			t.Fatalf("tear %d: ReadSince: %v", tear, err)
		}
		if len(recs) != len(liveRecs) {
			t.Fatalf("tear %d: reopen %d records != live %d", tear, len(recs), len(liveRecs))
		}
		if err := r.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
}
