package persist

import (
	"fmt"
	"testing"
)

// BenchmarkAppend measures the per-record cost of the change-log append on
// both backends — the write amplification every registry mutation pays once
// Options.Store is set. Feeds BENCH_persist.json behind the benchguard
// drift gate.
func BenchmarkAppend(b *testing.B) {
	payload := []byte(`{"host":"ws0001","status":{"state":"busy","load1":1.5}}`)
	b.Run("mem", func(b *testing.B) {
		s := NewMemStore()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Append(0, "host-status", payload); err != nil {
				b.Fatalf("append: %v", err)
			}
		}
	})
	b.Run("file", func(b *testing.B) {
		s, err := OpenFileStore(b.TempDir(), FileConfig{SegmentRecords: 4096})
		if err != nil {
			b.Fatalf("open: %v", err)
		}
		defer s.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Append(0, "host-status", payload); err != nil {
				b.Fatalf("append: %v", err)
			}
		}
	})
}

// BenchmarkSnapshotRoundtrip measures writing and reloading a snapshot of
// growing size — the compaction cost the registry pays every SnapshotEvery
// appends.
func BenchmarkSnapshotRoundtrip(b *testing.B) {
	for _, kb := range []int{16, 256} {
		data := make([]byte, kb*1024)
		for i := range data {
			data[i] = byte(i)
		}
		b.Run(fmt.Sprintf("file/%dKiB", kb), func(b *testing.B) {
			s, err := OpenFileStore(b.TempDir(), FileConfig{})
			if err != nil {
				b.Fatalf("open: %v", err)
			}
			defer s.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.WriteSnapshot(0, Snapshot{Seq: uint64(i), Data: data}); err != nil {
					b.Fatalf("snapshot: %v", err)
				}
				if _, ok, err := s.LoadSnapshot(); err != nil || !ok {
					b.Fatalf("load: ok=%v err=%v", ok, err)
				}
			}
		})
	}
}
