package persist

import "sync"

// MemStore is the in-memory Store backend: deterministic, no I/O, the
// backend every simulation and chaos scenario plugs into core.Options.
// It honours the whole contract — epoch fencing, snapshot compaction,
// catch-up reads — and additionally implements TailTruncator by dropping
// the newest record, modelling the torn tail write the file backend's
// recovery would discard.
type MemStore struct {
	mu    sync.Mutex
	recs  []Record
	snap  Snapshot
	has   bool
	seq   uint64
	epoch uint64
}

// NewMemStore creates an empty in-memory store at epoch 0.
func NewMemStore() *MemStore { return &MemStore{} }

// Append implements Store.
func (s *MemStore) Append(epoch uint64, kind string, data []byte) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch != s.epoch {
		return 0, ErrFenced
	}
	s.seq++
	s.recs = append(s.recs, Record{Seq: s.seq, Kind: kind, Data: append([]byte(nil), data...)})
	return s.seq, nil
}

// ReadSince implements Store.
func (s *MemStore) ReadSince(since uint64) ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Record
	for _, r := range s.recs {
		if r.Seq > since {
			out = append(out, r)
		}
	}
	return out, nil
}

// Seq implements Store.
func (s *MemStore) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// WriteSnapshot implements Store.
func (s *MemStore) WriteSnapshot(epoch uint64, snap Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch != s.epoch {
		return ErrFenced
	}
	s.snap = Snapshot{Seq: snap.Seq, Data: append([]byte(nil), snap.Data...)}
	s.has = true
	// Compact: drop the covered prefix.
	keep := s.recs[:0]
	for _, r := range s.recs {
		if r.Seq > snap.Seq {
			keep = append(keep, r)
		}
	}
	s.recs = keep
	if snap.Seq > s.seq {
		s.seq = snap.Seq
	}
	return nil
}

// LoadSnapshot implements Store.
func (s *MemStore) LoadSnapshot() (Snapshot, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.has {
		return Snapshot{}, false, nil
	}
	return Snapshot{Seq: s.snap.Seq, Data: append([]byte(nil), s.snap.Data...)}, true, nil
}

// Epoch implements Store.
func (s *MemStore) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Fence implements Store.
func (s *MemStore) Fence() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch++
	return s.epoch, nil
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }

// TruncateTail implements TailTruncator: a positive n drops the newest
// record — the in-memory analogue of tearing the tail frame, which the
// file backend's recovery would likewise discard — and rewinds the
// sequence so the next append reuses the torn number, exactly as a
// restarted file store would.
func (s *MemStore) TruncateTail(n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 || len(s.recs) == 0 {
		return nil
	}
	s.recs = s.recs[:len(s.recs)-1]
	if len(s.recs) > 0 {
		s.seq = s.recs[len(s.recs)-1].Seq
	} else if s.has {
		s.seq = s.snap.Seq
	} else {
		s.seq = 0
	}
	return nil
}
