package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"autoresched/internal/events"
	"autoresched/internal/metrics"
	"autoresched/internal/vclock"
)

// MigrationModel replays a seeded sweep of synthetic migrations through the
// same metrics.Spans pipeline the live runs use. Phase durations are
// computed analytically from the experiment cluster's nominal parameters —
// the 300 ms process spawn latency and the 100 Mbps Ethernet — over
// log-spaced state sizes from 1 to 64 MB, the shape of the paper's
// Section 5.2 migration-cost study. The synthetic event timestamps are
// exact, so the resulting quantiles are a pure function of the seed: this
// is the deterministic complement to the measured spans, whose durations
// inherit goroutine wake-up jitter multiplied by the time-scale factor.
func MigrationModel(seed int64, n int) []metrics.SpanStat {
	if n <= 0 {
		n = 32
	}
	rng := rand.New(rand.NewSource(seed))
	reg := metrics.NewRegistry()
	spans := metrics.NewSpans(reg)

	const (
		bandwidth = 12.5e6                 // newCluster's 100 Mbps Ethernet, bytes/s
		spawnLat  = 300 * time.Millisecond // core's default SpawnLatency
	)
	secs := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

	t := vclock.Epoch
	for i := 0; i < n; i++ {
		// State size: 1..64 MB log-spaced with ±25% spread; the eager set
		// (shipped before resume) is 20-50% of it, the rest restores lazily.
		size := float64(uint64(1)<<uint(rng.Intn(7))) * float64(1<<20)
		size *= 0.75 + 0.5*rng.Float64()
		eager := size * (0.2 + 0.3*rng.Float64())

		pollWait := secs(rng.Float64() * 2)            // order → next poll point
		initLat := spawnLat + secs(rng.Float64()*0.05) // spawn + handshake
		transfer := secs(eager / bandwidth)            // eager state on the wire
		restore := secs((size - eager) / bandwidth)    // lazy pages on demand
		proc := fmt.Sprintf("model%d", i)

		order := t
		start := order.Add(pollWait)
		init := start.Add(initLat)
		resume := init.Add(transfer)
		done := resume.Add(restore)
		pub := func(at time.Time, source, kind string) {
			spans.Publish(events.Event{Time: at, Source: source, Kind: kind,
				Host: "src", Dest: "dst", Proc: proc})
		}
		pub(order, events.SourceCommander, "order")
		pub(start, events.SourceHPCM, "start")
		pub(init, events.SourceHPCM, "init")
		pub(resume, events.SourceHPCM, "resume")
		pub(done, events.SourceHPCM, "restore")
		t = done.Add(time.Second)
	}
	return reg.SpanStats("span/")
}

// RenderMigrationModel prints the model sweep's per-phase quantile table.
// Two calls with the same seed and n produce byte-identical output.
func RenderMigrationModel(seed int64, n int) string {
	if n <= 0 {
		n = 32
	}
	stats := MigrationModel(seed, n)
	var b strings.Builder
	fmt.Fprintf(&b, "migration cost model — %d synthetic migrations, 1-64 MB state (deterministic per seed)\n", n)
	for _, st := range stats {
		fmt.Fprintf(&b, "  %-14s n=%-3d p50=%-8s p95=%-8s p99=%s\n",
			st.Name, st.Count, st.P50, st.P95, st.P99)
	}
	return b.String()
}
