package experiments

import (
	"reflect"
	"testing"

	"autoresched/internal/jobs"
)

// TestMultijobDeterministic: the shoot-out is a pure function of the seed —
// two runs produce identical rows and byte-identical reports.
func TestMultijobDeterministic(t *testing.T) {
	cfg := MultijobConfig{Params: Params{Seed: 1}}
	a := RunMultijob(cfg)
	b := RunMultijob(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("rows differ between identical runs:\n%#v\n%#v", a, b)
	}
	if ra, rb := RenderMultijob(a), RenderMultijob(b); ra != rb {
		t.Fatalf("reports differ between identical runs:\n%s\n---\n%s", ra, rb)
	}
}

// TestMultijobPolicyOrdering: the experiment's claims, per seed — the
// priority-preemptive policy strictly lowers every high-priority wait
// quantile against FIFO (that is what preemption buys), and backfill lowers
// the makespan against FIFO (that is what walking past a blocked gang
// buys). Every arm drains the full queue.
func TestMultijobPolicyOrdering(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		cfg := MultijobConfig{Params: Params{Seed: seed}}
		rows := RunMultijob(cfg)
		byPolicy := make(map[string]MultijobRow, len(rows))
		for _, r := range rows {
			if r.Completed != cfg.withDefaults().Jobs {
				t.Fatalf("seed %d: policy %s completed %d of %d jobs", seed, r.Policy, r.Completed, cfg.withDefaults().Jobs)
			}
			byPolicy[r.Policy] = r
		}
		fifo := byPolicy["fifo"]
		prio := byPolicy["priority-preemptive"]
		back := byPolicy["backfill"]

		const hi = 2
		fw, pw := fifo.Waits[hi], prio.Waits[hi]
		if fw.Jobs == 0 || pw.Jobs == 0 {
			t.Fatalf("seed %d: no high-priority jobs in the sample", seed)
		}
		if !(pw.P50 < fw.P50 && pw.P90 < fw.P90 && pw.Max < fw.Max) {
			t.Errorf("seed %d: priority-preemptive does not strictly lower high-priority waits: fifo p50/p90/max=%d/%d/%d, preemptive=%d/%d/%d",
				seed, fw.P50, fw.P90, fw.Max, pw.P50, pw.P90, pw.Max)
		}
		if !(back.MakespanTicks < fifo.MakespanTicks) {
			t.Errorf("seed %d: backfill makespan %d not below fifo %d", seed, back.MakespanTicks, fifo.MakespanTicks)
		}
		preempts := 0
		for _, n := range prio.Preemptions {
			preempts += n
		}
		if preempts == 0 {
			t.Errorf("seed %d: priority-preemptive planned no preemptions", seed)
		}
		if n := fifo.Preemptions[jobs.EvictRequeue] + fifo.Preemptions[jobs.EvictShrink] + fifo.Preemptions[jobs.EvictMigrate]; n != 0 {
			t.Errorf("seed %d: fifo planned %d preemptions; want none", seed, n)
		}
	}
}
