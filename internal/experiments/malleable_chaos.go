package experiments

import (
	"fmt"
	"sync"
	"time"

	"autoresched/internal/faults"
	"autoresched/internal/malleable"
	"autoresched/internal/metrics"
	"autoresched/internal/mpi"
	"autoresched/internal/workload"
)

// runMalleableChaosScenario runs a resize-* fault plan against a dedicated
// elastic job instead of the core system: the malleability engine is its own
// control plane, so the scenario interprets the plan directly — KindResize
// proposes the placement to the job, KindCrashOnResizePhase arms a one-shot
// trap on the job's ResizeObserver (the elastic analogue of the injector's
// migration-phase traps). Applied events and fired traps are recorded in the
// injector's line formats, so the deterministic report section reads the
// same either way.
func runMalleableChaosScenario(cfg ChaosConfig, sc chaosScenario) (ChaosRow, error) {
	cl, names, err := newCluster(cfg.Params, 5)
	if err != nil {
		return ChaosRow{}, err
	}
	clock := cl.Clock()
	ctr := metrics.NewCounters()
	mreg := metrics.NewRegistry()
	app := &workload.ElasticJacobi{N: 24, Iters: 60, WorkPerCell: 35000}

	// The job pointer is published after Start; the observer and the plan
	// goroutine only need it from the 40-second mark on.
	var jobMu sync.Mutex
	var job *malleable.Job
	getJob := func() *malleable.Job {
		jobMu.Lock()
		defer jobMu.Unlock()
		return job
	}

	var mu sync.Mutex
	var applied, triggered []string
	trap := struct {
		armed, fired  bool
		phase, target string
	}{}
	observer := func(ev malleable.Event) {
		mu.Lock()
		if !trap.armed || trap.fired || ev.Phase != trap.phase {
			mu.Unlock()
			return
		}
		var host string
		switch trap.target {
		case "new":
			if len(ev.Added) > 0 {
				host = ev.Added[0]
			}
		case "victim":
			if len(ev.Removed) > 0 {
				host = ev.Removed[0]
			}
		}
		if host == "" {
			mu.Unlock()
			return
		}
		trap.fired = true
		triggered = append(triggered,
			fmt.Sprintf("trap crash-host host=%s proc=%s phase=%s", host, app.Name(), ev.Phase))
		mu.Unlock()
		// Fail the host at the transport first so in-flight payloads fail,
		// then at the job so the drain's liveness checks see it.
		_ = cl.Net().SetDown(host, true)
		getJob().CrashHost(host)
	}

	u := mpi.NewUniverse(mpi.Options{
		Clock:        clock,
		Transport:    mpi.SimTransport{Net: cl.Net()},
		SpawnLatency: 300 * time.Millisecond,
		HostCheck:    cl.HostCheck,
	})
	j, err := malleable.Start(malleable.Options{
		Universe:     u,
		App:          app,
		Hosts:        cl,
		InitialHosts: names[:4],
		Observer:     observer,
		Metrics:      mreg,
		Counters:     ctr,
	})
	if err != nil {
		return ChaosRow{}, err
	}
	jobMu.Lock()
	job = j
	jobMu.Unlock()
	start := clock.Now()

	// Fire the plan on the virtual clock. Events are listed in time order;
	// triggers are virtual offsets and protocol phases, so the schedule is
	// deterministic per seed.
	go func() {
		var prev time.Duration
		for _, ev := range sc.plan.Events {
			clock.Sleep(ev.After - prev)
			prev = ev.After
			line := ev.String()
			switch ev.Kind {
			case faults.KindCrashOnResizePhase:
				mu.Lock()
				trap.armed, trap.phase, trap.target = true, ev.Phase, ev.Target
				mu.Unlock()
			case faults.KindResize:
				if err := j.Propose(ev.Hosts); err != nil {
					line += " (propose failed: " + err.Error() + ")"
				}
			case faults.KindCrashHost:
				_ = cl.Net().SetDown(ev.Host, true)
				j.CrashHost(ev.Host)
			default:
				// Other fault kinds have no malleable-path interpretation;
				// the digest records them as seen-but-unapplied.
				line += " (not interpreted by the malleable-chaos driver)"
			}
			mu.Lock()
			applied = append(applied, line)
			mu.Unlock()
		}
	}()

	// Virtual-deadline watchdog, as in runChaosScenario: a wedged resize is
	// a failed scenario, not a hung experiment.
	completed := true
	watchdog := clock.NewTimer(30 * time.Minute)
	select {
	case <-j.Done():
		watchdog.Stop()
	case <-watchdog.C:
		completed = false
		j.Stop()
	}
	result, werr := j.Wait()
	elapsed := clock.Since(start)

	mu.Lock()
	schedule := append(append([]string(nil), applied...), triggered...)
	mu.Unlock()
	row := ChaosRow{
		Scenario:   sc.name,
		Completed:  completed,
		FinalHost:  j.Placement()[0],
		Schedule:   schedule,
		Counters:   make(map[string]int64, len(chaosCounterNames)),
		VirtualSec: elapsed.Seconds(),
	}
	if werr != nil {
		row.FinalErr = werr.Error()
	}
	for _, name := range chaosCounterNames {
		row.Counters[name] = ctr.Get(name)
	}
	row.Spans = mreg.SpanStats("malleable/")
	cfg.Metrics.Merge(mreg)
	if werr == nil {
		sum, cerr := workload.ElasticJacobiChecksum(result)
		_, want := workload.JacobiReference(workload.JacobiConfig{N: app.N, Iters: app.Iters})
		row.Correct = cerr == nil && sum == want
	}
	row.Survived = row.Completed && row.Correct && row.FinalErr == ""
	return row, nil
}
