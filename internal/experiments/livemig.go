package experiments

import (
	"fmt"
	"strings"
	"time"

	"autoresched/internal/livemig"
	"autoresched/internal/metrics"
)

// LivemigConfig parameterises the live-migration downtime sweep: the
// analytic precopy model (which shares its convergence rule with the live
// driver) evaluated over a grid of page-dirtying rates and migration link
// speeds. Everything is pure arithmetic — the sweep is byte-deterministic.
type LivemigConfig struct {
	// Bandwidths are the link speeds swept, in bytes/s. Default: 10, 100
	// and 1000 Mbps Ethernet.
	Bandwidths []float64
	// DirtyRates are the application page-dirtying rates swept, in pages/s.
	DirtyRates []float64
	// TotalPages and PageBytes size the migrated region; defaults model a
	// 16 MiB region in 4 KiB pages.
	TotalPages int
	PageBytes  int
	// Live overrides the engine configuration; the zero value selects the
	// livemig defaults (the ones the runtime itself uses).
	Live livemig.Config
	// Metrics, when set, receives the modeled downtime distributions
	// (livemig/model_downtime_seconds, livemig/model_stopcopy_seconds).
	Metrics *metrics.Registry
}

func (cfg LivemigConfig) withDefaults() LivemigConfig {
	if len(cfg.Bandwidths) == 0 {
		cfg.Bandwidths = []float64{1.25e6, 12.5e6, 125e6}
	}
	if len(cfg.DirtyRates) == 0 {
		cfg.DirtyRates = []float64{0, 50, 100, 200, 400, 800, 1600, 3200, 6400}
	}
	if cfg.TotalPages <= 0 {
		cfg.TotalPages = 4096
	}
	if cfg.PageBytes <= 0 {
		cfg.PageBytes = 4096
	}
	return cfg
}

// LivemigRow is one modeled migration of the sweep.
type LivemigRow struct {
	Bandwidth float64
	DirtyRate float64
	Outcome   livemig.Outcome
}

// RunLivemig evaluates the precopy model over the configured grid. The
// scenario's spawn latency and handshake overhead match the experiment
// cluster's nominal parameters (300 ms dynamic process creation, 2 ms
// control round-trip), so the stop-and-copy baseline here is the same
// quantity the measured migration-cost model reports.
func RunLivemig(cfg LivemigConfig) []LivemigRow {
	cfg = cfg.withDefaults()
	rows := make([]LivemigRow, 0, len(cfg.Bandwidths)*len(cfg.DirtyRates))
	for _, bw := range cfg.Bandwidths {
		for _, rate := range cfg.DirtyRates {
			out := livemig.Simulate(cfg.Live, livemig.Scenario{
				TotalPages:       cfg.TotalPages,
				PageBytes:        cfg.PageBytes,
				Bandwidth:        bw,
				SpawnLatency:     300 * time.Millisecond,
				Handshake:        2 * time.Millisecond,
				DirtyPagesPerSec: rate,
			})
			rows = append(rows, LivemigRow{Bandwidth: bw, DirtyRate: rate, Outcome: out})
			if cfg.Metrics != nil {
				cfg.Metrics.Histogram("livemig/model_downtime_seconds").Observe(out.Downtime.Seconds())
				cfg.Metrics.Histogram("livemig/model_stopcopy_seconds").Observe(out.StopCopy.Seconds())
			}
		}
	}
	return rows
}

// RenderLivemig prints the sweep as one table per link speed, with the
// crossover — the first dirty rate where precopy stops converging and the
// engine falls back to stop-and-copy — called out per table. Two calls with
// equal rows produce byte-identical output.
func RenderLivemig(rows []LivemigRow) string {
	var b strings.Builder
	b.WriteString("live migration — modeled downtime, precopy vs stop-and-copy (deterministic)\n")
	var bw float64 = -1
	crossover := func(start int) string {
		for i := start; i < len(rows) && rows[i].Bandwidth == rows[start].Bandwidth; i++ {
			if rows[i].Outcome.Mode == "fallback" {
				return fmt.Sprintf("crossover at %.0f pages/s: precopy stops paying, engine falls back", rows[i].DirtyRate)
			}
		}
		return "no crossover in sweep: precopy converges at every rate"
	}
	for i, r := range rows {
		if r.Bandwidth != bw {
			bw = r.Bandwidth
			fmt.Fprintf(&b, "\nlink %.0f Mbps — %s\n", bw*8/1e6, crossover(i))
			b.WriteString("  dirty pages/s  mode      rounds  sent    resent  precopy_s  downtime    stop-and-copy\n")
		}
		o := r.Outcome
		fmt.Fprintf(&b, "  %-13.0f  %-8s  %-6d  %-6d  %-6d  %-9.3f  %-10s  %s\n",
			r.DirtyRate, o.Mode, o.Rounds, o.PagesSent, o.PagesResent,
			o.PrecopySeconds, o.Downtime.Round(100*time.Microsecond), o.StopCopy.Round(100*time.Microsecond))
	}
	return b.String()
}
