package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"autoresched/internal/core"
	"autoresched/internal/faults"
	"autoresched/internal/hpcm"
	"autoresched/internal/livemig"
	"autoresched/internal/malleable"
	"autoresched/internal/metrics"
	"autoresched/internal/workload"
)

// ChaosConfig tunes the chaos experiment: a fixed set of seeded fault
// scenarios runs the same checksummed tree computation on a four-host
// cluster while the injector crashes hosts, partitions links, restarts the
// registry and redelivers orders. Scale defaults higher than the figure
// experiments because outcomes hinge on counts and protocol phases, not on
// rate fidelity.
type ChaosConfig struct {
	Params
	// Scenarios selects a subset by name; empty runs all.
	Scenarios []string
	// Metrics, when set, accumulates every scenario's metrics registry
	// (histograms merged bucket-wise) for a run-wide snapshot — the
	// cmd/repro -metrics flag feeds from here.
	Metrics *metrics.Registry
	// Live, when set, enables iterative-precopy live migration: the tree
	// workload carries a paged ballast region, every migrate order takes the
	// live path, and a ninth scenario crashes the destination mid-precopy.
	// Nil keeps the classic stop-and-copy runs (and their byte-identical
	// reports).
	Live *livemig.Config
}

// ChaosRow is one scenario's outcome. Schedule, the counters, Survived,
// Completed, Correct, Retries and FinalErr depend only on the seed (fault
// triggers are virtual-time offsets and protocol phases); VirtualSec,
// InflationPct, FinalHost and Checkpoints carry scheduling jitter — the
// failover destination comes from a first-fit search over load
// classifications, and checkpoint cadence follows the (jittery) completion
// time — so they are reported as approximate.
type ChaosRow struct {
	Scenario  string
	Completed bool // settled before the virtual deadline (no hang)
	Correct   bool // every round's checksum matched the expected sum
	Survived  bool // Completed && Correct && no terminal error
	FinalErr  string
	Retries   int
	Schedule  []string // applied fault events + fired phase traps
	Counters  map[string]int64
	// Spans holds the per-phase migration-latency summaries (span/*
	// histograms). The counts are phase-driven and deterministic per seed;
	// the quantile strings carry scheduling jitter (wall wake-up latency ×
	// Scale) and are reported in the approximate section.
	Spans []metrics.SpanStat

	VirtualSec   float64 // approximate
	InflationPct float64 // vs the baseline scenario; approximate
	FinalHost    string  // approximate (load-dependent first fit)
	Checkpoints  int     // approximate (interval-driven)
}

// chaosCounterNames is the deterministic counter subset each row reports:
// every one is driven by a count-based or phase-based trigger, never by a
// wall-time race.
var chaosCounterNames = []string{
	metrics.CtrStatusDropped,
	metrics.CtrStatusDuplicated,
	metrics.CtrStatusDelayed,
	metrics.CtrReregisters,
	metrics.CtrOrdersDeduped,
	metrics.CtrRegistryRestarts,
	metrics.CtrRegistryRecoveries,
	metrics.CtrStandbyPromotions,
	metrics.CtrProcResyncs,
	metrics.CtrMigrAborted,
	metrics.CtrMigrCommitted,
	metrics.CtrCkptRestores,
	metrics.CtrColdRestarts,
	metrics.CtrResizeCommitted,
	metrics.CtrResizeAborted,
	metrics.CtrRanksSpawned,
	metrics.CtrRanksRetired,
	metrics.CtrJobsAdmitted,
	metrics.CtrJobsRequeued,
	metrics.CtrJobsReservations,
}

const chaosApp = "test_tree"

type chaosScenario struct {
	name string
	plan faults.Plan
}

// chaosScenarios is the fixed scenario set. Offsets are virtual seconds
// after launch; the workload runs several hundred virtual seconds, so every
// fault lands mid-computation. live appends the precopy-specific scenario,
// which only makes sense when the live path is enabled.
func chaosScenarios(live bool) []chaosScenario {
	at := func(s int) time.Duration { return time.Duration(s) * time.Second }
	scenarios := []chaosScenario{
		{"baseline", faults.Plan{Name: "baseline"}},
		{"heartbeat-faults", faults.Plan{Name: "heartbeat-faults", Events: []faults.Event{
			{After: at(40), Kind: faults.KindDropStatus, Host: "ws2", Count: 2},
			{After: at(45), Kind: faults.KindDupStatus, Host: "ws3", Count: 2},
			{After: at(50), Kind: faults.KindDelayStatus, Host: "ws2", Count: 1, Delay: 2 * time.Second},
		}}},
		{"degraded-migration", faults.Plan{Name: "degraded-migration", Events: []faults.Event{
			{After: at(40), Kind: faults.KindLinkFactor, Host: "ws1", Peer: "ws2", Factor: 0.25},
			{After: at(50), Kind: faults.KindMigrate, Proc: chaosApp, Dest: "ws2"},
			{After: at(150), Kind: faults.KindLinkFactor, Host: "ws1", Peer: "ws2", Factor: 1},
		}}},
		{"partition-abort", faults.Plan{Name: "partition-abort", Events: []faults.Event{
			{After: at(40), Kind: faults.KindPartition, Host: "ws1", Peer: "ws2"},
			{After: at(50), Kind: faults.KindMigrate, Proc: chaosApp, Dest: "ws2"},
			{After: at(150), Kind: faults.KindHeal, Host: "ws1", Peer: "ws2"},
		}}},
		{"crash-dest-mid-migration", faults.Plan{Name: "crash-dest-mid-migration", Events: []faults.Event{
			{After: at(40), Kind: faults.KindCrashOnPhase, Proc: chaosApp, Phase: hpcm.PhaseInit, Target: "dest"},
			{After: at(50), Kind: faults.KindMigrate, Proc: chaosApp, Dest: "ws2"},
		}}},
		{"crash-source-post-commit", faults.Plan{Name: "crash-source-post-commit", Events: []faults.Event{
			{After: at(40), Kind: faults.KindCrashOnPhase, Proc: chaosApp, Phase: hpcm.PhaseResume, Target: "source"},
			{After: at(50), Kind: faults.KindMigrate, Proc: chaosApp, Dest: "ws2"},
		}}},
		{"registry-restart", faults.Plan{Name: "registry-restart", Events: []faults.Event{
			{After: at(60), Kind: faults.KindRestartRegistry},
		}}},
		{"duplicate-order", faults.Plan{Name: "duplicate-order", Events: []faults.Event{
			{After: at(50), Kind: faults.KindMigrate, Proc: chaosApp, Dest: "ws2", Count: 3},
		}}},
	}
	if live {
		// The destination dies after the first precopy round: the freeze (or
		// next round) hits a dead host, the attempt aborts pre-commit, and
		// the runtime falls back to checkpoint recovery.
		scenarios = append(scenarios, chaosScenario{
			"crash-dest-mid-precopy", faults.Plan{Name: "crash-dest-mid-precopy", Events: []faults.Event{
				{After: at(40), Kind: faults.KindCrashOnPhase, Proc: chaosApp, Phase: hpcm.PhasePrecopy, Round: 1, Target: "dest"},
				{After: at(50), Kind: faults.KindMigrate, Proc: chaosApp, Dest: "ws2"},
			}},
		})
	}
	// The resize-* scenarios run the malleability engine's crash windows
	// against a dedicated elastic job (runMalleableChaosScenario). One kills
	// a freshly spawned rank mid-expand, which must abort the resize cleanly
	// back to the old world; the other kills a victim host mid-shrink after
	// the drain, which must not stop the shrink from committing.
	scenarios = append(scenarios,
		chaosScenario{"resize-crash-new-rank", faults.Plan{Name: "resize-crash-new-rank", Events: []faults.Event{
			{After: at(40), Kind: faults.KindCrashOnResizePhase, Phase: malleable.PhaseSpawn, Target: "new"},
			{After: at(60), Kind: faults.KindResize, Hosts: []string{"ws1", "ws2", "ws3", "ws4", "ws5"}},
		}}},
		chaosScenario{"resize-crash-victim", faults.Plan{Name: "resize-crash-victim", Events: []faults.Event{
			{After: at(40), Kind: faults.KindCrashOnResizePhase, Phase: malleable.PhaseReshape, Target: "victim"},
			{After: at(60), Kind: faults.KindResize, Hosts: []string{"ws1", "ws2", "ws3"}},
		}}},
	)
	// The jobs-* scenarios run the multi-job control plane's preemption
	// crash windows (runJobsChaosScenario): a high-priority gang evicts a
	// low-priority one, and the fault lands inside the eviction. One kills a
	// victim rank mid-eviction-checkpoint — the image is lost, but the job
	// must still requeue and the gang rerun; the other crashes a reserved
	// host while the gang reservation is pending — Commit must fail with
	// ErrReservationLost and roll every mark back, leaving no orphaned
	// leases.
	scenarios = append(scenarios,
		chaosScenario{"jobs-kill-victim-mid-ckpt", faults.Plan{Name: "jobs-kill-victim-mid-ckpt", Events: []faults.Event{
			{After: at(5), Kind: faults.KindSubmitJob, Proc: "batch"},
			{After: at(40), Kind: faults.KindKillOnCkpt, Proc: "batch.0", Target: "proc"},
			{After: at(45), Kind: faults.KindSubmitJob, Proc: "express"},
		}}},
		chaosScenario{"jobs-crash-host-mid-reserve", faults.Plan{Name: "jobs-crash-host-mid-reserve", Events: []faults.Event{
			{After: at(5), Kind: faults.KindSubmitJob, Proc: "batch"},
			{After: at(40), Kind: faults.KindKillOnCkpt, Proc: "batch.1", Target: "host"},
			{After: at(45), Kind: faults.KindSubmitJob, Proc: "express"},
		}}},
	)
	// The registry-crashloop-* / registry-standby-* scenarios run the durable
	// control plane (persist_chaos.go): the registry journals every mutation
	// to a persist store, so a crash-looping parent bootstraps from snapshot
	// + log suffix with zero monitor re-registrations — even after a torn
	// tail write — and a warm standby promotes over the fenced primary
	// without double-admitting its pending gang reservation.
	scenarios = append(scenarios,
		chaosScenario{"registry-crashloop-under-load", faults.Plan{Name: "registry-crashloop-under-load", Events: []faults.Event{
			{After: at(60), Kind: faults.KindCrashLoopRegistry, Count: 3},
			{After: at(90), Kind: faults.KindTornWrite, Count: 5},
			{After: at(95), Kind: faults.KindRestartRegistry},
		}}},
		chaosScenario{"registry-standby-promote", faults.Plan{Name: "registry-standby-promote"}},
	)
	return scenarios
}

// ChaosScenarioNames lists the chaos scenario set in run order — the one
// authoritative list behind every "N/N scenarios survive" claim. live
// selects the sweep that appends the precopy-specific scenario
// (crash-dest-mid-precopy), so len(ChaosScenarioNames(false)) and
// len(ChaosScenarioNames(true)) are the two survival denominators;
// EXPERIMENTS.md's stated counts are pinned to them by
// TestChaosCountsMatchDocs.
func ChaosScenarioNames(live bool) []string {
	scs := chaosScenarios(live)
	names := make([]string, 0, len(scs))
	for _, sc := range scs {
		names = append(names, sc.name)
	}
	return names
}

func (cfg ChaosConfig) withChaosDefaults() ChaosConfig {
	if cfg.Scale <= 0 {
		cfg.Scale = 1000
	}
	cfg.Params = cfg.Params.withDefaults()
	return cfg
}

// RunChaos runs every selected scenario and reports survival, correctness
// and the robustness counters. The baseline scenario (no faults) anchors
// the completion-time inflation of the others.
func RunChaos(cfg ChaosConfig) ([]ChaosRow, error) {
	cfg = cfg.withChaosDefaults()
	selected := func(name string) bool {
		if len(cfg.Scenarios) == 0 {
			return true
		}
		for _, s := range cfg.Scenarios {
			if s == name {
				return true
			}
		}
		return false
	}
	var rows []ChaosRow
	baseline := 0.0
	for _, sc := range chaosScenarios(cfg.Live != nil) {
		if !selected(sc.name) {
			continue
		}
		var row ChaosRow
		var err error
		switch {
		case strings.HasPrefix(sc.name, "resize-"):
			row, err = runMalleableChaosScenario(cfg, sc)
		case strings.HasPrefix(sc.name, "jobs-"):
			row, err = runJobsChaosScenario(cfg, sc)
		case strings.HasPrefix(sc.name, "registry-crashloop-"):
			row, err = runPersistCrashloopScenario(cfg, sc)
		case strings.HasPrefix(sc.name, "registry-standby-"):
			row, err = runPersistStandbyScenario(cfg, sc)
		default:
			row, err = runChaosScenario(cfg, sc)
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos %s: %w", sc.name, err)
		}
		if sc.name == "baseline" {
			baseline = row.VirtualSec
		} else if baseline > 0 && !strings.HasPrefix(sc.name, "resize-") && !strings.HasPrefix(sc.name, "jobs-") {
			// The resize and jobs scenarios run different workloads;
			// inflation against the tree baseline would be meaningless.
			row.InflationPct = (row.VirtualSec/baseline - 1) * 100
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runChaosScenario(cfg ChaosConfig, sc chaosScenario) (ChaosRow, error) {
	cl, names, err := newCluster(cfg.Params, 4)
	if err != nil {
		return ChaosRow{}, err
	}
	clock := cl.Clock()
	ctr := metrics.NewCounters()
	mreg := metrics.NewRegistry()
	in := faults.NewInjector(faults.Config{Clock: clock, Counters: ctr})
	sys, err := core.New(core.Options{
		Cluster:          cl,
		MonitorInterval:  cfg.Interval,
		GatherCost:       0.05 * hostSpeed,
		Warmup:           2,
		Cooldown:         10 * time.Minute,
		RegistryHost:     names[3],
		ChunkBytes:       8 << 20,
		Checkpoints:      hpcm.NewMemStore(),
		CheckpointEvery:  30 * time.Second,
		FailoverRetries:  2,
		OrderDedupWindow: 30 * time.Second,
		Counters:         ctr,
		Metrics:          mreg,
		Observer:         in.Observer(),
		WrapReporter:     in.WrapReporter,
		Live:             cfg.Live,
	})
	if err != nil {
		return ChaosRow{}, err
	}
	if err := sys.AddNodes(names...); err != nil {
		return ChaosRow{}, err
	}
	defer sys.Stop()
	in.Bind(sys)

	// A couple of monitoring cycles so the registry has fresh samples for
	// its first-fit searches.
	clock.Sleep(25 * time.Second)

	tree := workload.TreeConfig{
		Levels: 10, Rounds: 40, Seed: cfg.Seed + 1,
		WorkPerNode: 600, BytesPerNode: 8,
	}
	if cfg.Live != nil {
		// A paged bulk region makes the run eligible for the live path.
		tree.BallastBytes = 4 << 20
		tree.PagedBallast = true
	}
	var mu sync.Mutex
	sums := map[int]int64{}
	tree.OnSum = func(round int, sum int64) {
		mu.Lock()
		sums[round] = sum
		mu.Unlock()
	}
	app, err := sys.Launch(chaosApp, "ws1", tree.Schema(hostSpeed), workload.TestTree(tree))
	if err != nil {
		return ChaosRow{}, err
	}
	start := clock.Now()
	in.BindApp(chaosApp, app)
	in.Run(sc.plan)

	// Virtual-deadline watchdog: a scenario that hangs is a failed scenario,
	// not a hung experiment.
	completed := true
	watchdog := clock.NewTimer(30 * time.Minute)
	select {
	case <-app.Settled():
		watchdog.Stop()
	case <-watchdog.C:
		completed = false
		// Put the app down (exhausting its failover budget) so the run can
		// be torn down cleanly.
		for settled := false; !settled; {
			app.Process().Kill()
			select {
			case <-app.Settled():
				settled = true
			case <-clock.After(100 * time.Millisecond):
			}
		}
	}
	in.Stop()
	elapsed := clock.Since(start)

	row := ChaosRow{
		Scenario:    sc.name,
		Completed:   completed,
		FinalHost:   app.Host(),
		Checkpoints: app.Process().Checkpoints(),
		Retries:     app.Retries(),
		Schedule:    append(in.Applied(), in.Triggered()...),
		Counters:    make(map[string]int64, len(chaosCounterNames)),
		VirtualSec:  elapsed.Seconds(),
	}
	if err := app.Wait(); err != nil {
		row.FinalErr = err.Error()
	}
	for _, name := range chaosCounterNames {
		row.Counters[name] = ctr.Get(name)
	}
	row.Spans = mreg.SpanStats("span/")
	cfg.Metrics.Merge(mreg)
	want := workload.ExpectedSums(tree)
	mu.Lock()
	row.Correct = len(sums) == tree.Rounds
	for round, sum := range want {
		if sums[round] != sum {
			row.Correct = false
		}
	}
	mu.Unlock()
	row.Survived = row.Completed && row.Correct && row.FinalErr == ""
	return row, nil
}

// renderRowDeterministic prints the parts of a row that are identical
// across runs with the same seed.
func renderRowDeterministic(b *strings.Builder, r ChaosRow) {
	fmt.Fprintf(b, "scenario %s\n", r.Scenario)
	for _, line := range r.Schedule {
		fmt.Fprintf(b, "  fault: %s\n", line)
	}
	fmt.Fprintf(b, "  survived=%v completed=%v correct=%v retries=%d\n",
		r.Survived, r.Completed, r.Correct, r.Retries)
	if r.FinalErr != "" {
		fmt.Fprintf(b, "  error: %s\n", r.FinalErr)
	}
	names := make([]string, 0, len(r.Counters))
	for name := range r.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if v := r.Counters[name]; v != 0 {
			fmt.Fprintf(b, "  %-28s %d\n", name, v)
		}
	}
	for _, st := range r.Spans {
		if st.Count == 0 {
			continue
		}
		// Counts only: the phase sequence is deterministic, the measured
		// durations are not (wall jitter × Scale).
		fmt.Fprintf(b, "  %-28s n=%d\n", st.Name, st.Count)
	}
}

// RenderChaosDeterministic prints the seed-reproducible part of the report:
// the fault schedule, the robustness counters and the migration phase
// counts. Two runs with the same seed produce byte-identical output (the
// acceptance check for the experiment's determinism).
func RenderChaosDeterministic(rows []ChaosRow) string {
	var b strings.Builder
	b.WriteString("Chaos — fault schedule, counters and phase counts (deterministic per seed)\n")
	for _, r := range rows {
		renderRowDeterministic(&b, r)
	}
	survived := 0
	for _, r := range rows {
		if r.Survived {
			survived++
		}
	}
	fmt.Fprintf(&b, "survival: %d/%d scenarios\n", survived, len(rows))
	return b.String()
}

// RenderChaos prints the full report: the deterministic section above plus
// the timing section (virtual completion time and inflation vs baseline),
// which carries scheduling jitter of a few percent.
func RenderChaos(rows []ChaosRow) string {
	var b strings.Builder
	b.WriteString(RenderChaosDeterministic(rows))
	b.WriteString("\ntimings (approximate)\n")
	b.WriteString("scenario                   virtual(s)  inflation(%)  final-host  checkpoints\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %10.1f %13.1f  %-10s %12d\n",
			r.Scenario, r.VirtualSec, r.InflationPct, r.FinalHost, r.Checkpoints)
	}
	b.WriteString("\nmigration phases, measured (approximate: durations carry wall jitter x scale)\n")
	for _, r := range rows {
		for _, st := range r.Spans {
			if st.Count == 0 {
				continue
			}
			fmt.Fprintf(&b, "%-26s %-14s n=%-3d p50=%-8s p95=%-8s p99=%s\n",
				r.Scenario, st.Name, st.Count, st.P50, st.P95, st.P99)
		}
	}
	return b.String()
}
