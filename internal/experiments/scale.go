package experiments

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"autoresched/internal/core"
	"autoresched/internal/events"
	"autoresched/internal/metrics"
	"autoresched/internal/monitor"
	"autoresched/internal/proto"
	"autoresched/internal/registry"
	"autoresched/internal/workload"
)

// ScaleConfig tunes the scale experiment: the paper's 64-host topology plus
// larger sweeps, each running the checksummed tree computation under churn —
// background load on a slice of the cluster and injected overloads on the
// app hosts — while the control plane's cost is measured: wall-clock
// placement latency, heartbeat throughput through the status batcher, and
// migrations completed.
type ScaleConfig struct {
	Params
	// Hosts lists the sweep sizes; empty selects 64, 256, 512.
	Hosts []int
	// Apps is how many tree applications run per sweep; zero selects 4.
	Apps int
	// Overloads is how many app hosts get overloaded mid-run (provoking
	// migrations); zero selects 2, capped at Apps.
	Overloads int
	// BackgroundEvery puts a busy-but-not-overloaded load generator on
	// every k-th host — the churn the registry must index through; zero
	// selects 8.
	BackgroundEvery int
	// Metrics, when set, accumulates every sweep's metrics registry
	// (histograms merged bucket-wise) for a run-wide snapshot — the
	// cmd/repro -metrics flag feeds from here.
	Metrics *metrics.Registry
}

// ScaleRow is one sweep's outcome. Hosts, Apps, Completed, Correct and
// Overloads depend only on the seed; the measurements below the line carry
// scheduling jitter (wall-clock latency, load-dependent migration counts)
// and are reported as approximate.
type ScaleRow struct {
	Hosts     int
	Apps      int
	Completed int  // apps settled before the virtual deadline
	Correct   bool // every completed app's checksums matched
	Overloads int

	VirtualSec          float64 // approximate
	Heartbeats          int64   // status reports leaving the monitors; approximate
	HeartbeatsPerSec    float64 // per virtual second; approximate
	BatchFlushes        int64   // batched deliveries into the registry; approximate
	MigrationsOrdered   int     // approximate (load-dependent decisions)
	MigrationsCommitted int64   // approximate
	EventsSeen          int     // unified-sink events captured; approximate
	DecisionMicros      float64 // mean wall-clock placement latency; approximate
	// Spans holds the per-phase migration-latency summaries. At scale the
	// migration counts themselves are load-dependent, so the whole slice —
	// counts and quantiles — is approximate.
	Spans []metrics.SpanStat
}

func (cfg ScaleConfig) withScaleDefaults() ScaleConfig {
	if cfg.Scale <= 0 {
		cfg.Scale = 1000
	}
	cfg.Params = cfg.Params.withDefaults()
	if len(cfg.Hosts) == 0 {
		cfg.Hosts = []int{64, 256, 512}
	}
	if cfg.Apps <= 0 {
		cfg.Apps = 4
	}
	if cfg.Overloads <= 0 {
		cfg.Overloads = 2
	}
	if cfg.Overloads > cfg.Apps {
		cfg.Overloads = cfg.Apps
	}
	if cfg.BackgroundEvery <= 0 {
		cfg.BackgroundEvery = 8
	}
	return cfg
}

// countingReporter wraps each host's reporter to count the status reports
// the monitors emit — the heartbeat throughput the registry (behind the
// batcher) must absorb. One counter is shared by every host's wrapper.
type countingReporter struct {
	n     *atomic.Int64
	inner monitor.Reporter
}

func (c *countingReporter) RegisterHost(host string, static proto.StaticInfo) error {
	return c.inner.RegisterHost(host, static)
}

func (c *countingReporter) ReportStatus(host string, status proto.Status) error {
	c.n.Add(1)
	return c.inner.ReportStatus(host, status)
}

func (c *countingReporter) UnregisterHost(host string) error {
	return c.inner.UnregisterHost(host)
}

// RunScale runs every sweep size and reports completion, correctness and
// the control-plane measurements.
func RunScale(cfg ScaleConfig) ([]ScaleRow, error) {
	cfg = cfg.withScaleDefaults()
	rows := make([]ScaleRow, 0, len(cfg.Hosts))
	for _, n := range cfg.Hosts {
		row, err := runScaleSweep(cfg, n)
		if err != nil {
			return nil, fmt.Errorf("experiments: scale %d hosts: %w", n, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runScaleSweep(cfg ScaleConfig, nHosts int) (ScaleRow, error) {
	cl, names, err := newCluster(cfg.Params, nHosts)
	if err != nil {
		return ScaleRow{}, err
	}
	clock := cl.Clock()
	ctr := metrics.NewCounters()
	mreg := metrics.NewRegistry()
	ring := &events.Ring{Cap: 4096}
	heartbeats := &atomic.Int64{}
	sys, err := core.New(core.Options{
		Cluster:          cl,
		MonitorInterval:  cfg.Interval,
		Warmup:           2,
		Cooldown:         10 * time.Minute,
		ChunkBytes:       8 << 20,
		BatchStatusEvery: cfg.Interval / 2,
		Counters:         ctr,
		Metrics:          mreg,
		Events:           ring,
		WrapReporter: func(host string, r monitor.Reporter) monitor.Reporter {
			return &countingReporter{n: heartbeats, inner: r}
		},
	})
	if err != nil {
		return ScaleRow{}, err
	}
	if err := sys.AddNodes(names...); err != nil {
		return ScaleRow{}, err
	}
	defer sys.Stop()

	// Churn: every k-th non-app host runs busy (load ~1.5) so the registry's
	// state sets keep moving while placements search the Free set.
	var gens []*workload.LoadGen
	defer func() {
		for _, g := range gens {
			g.Stop()
		}
	}()
	for i := cfg.Apps; i < nHosts; i += cfg.BackgroundEvery {
		h, _ := cl.Host(names[i])
		g := workload.NewLoadGen(h, workload.LoadOptions{
			Workers: 2, Duty: 0.75, Period: 5 * time.Second,
			Seed: cfg.Seed + int64(i), Name: "bg",
		})
		g.Start()
		gens = append(gens, g)
	}

	// A couple of monitoring cycles so the registry has fresh samples.
	clock.Sleep(25 * time.Second)

	// The applications: small checksummed trees on the first Apps hosts.
	type appRun struct {
		app  *core.App
		tree workload.TreeConfig
		sums map[int]int64
		mu   *sync.Mutex
	}
	runs := make([]*appRun, 0, cfg.Apps)
	for i := 0; i < cfg.Apps; i++ {
		tree := workload.TreeConfig{
			Levels: 8, Rounds: 20, Seed: cfg.Seed + int64(i) + 1,
			WorkPerNode: 600, BytesPerNode: 8,
		}
		run := &appRun{tree: tree, sums: map[int]int64{}, mu: &sync.Mutex{}}
		tree.OnSum = func(round int, sum int64) {
			run.mu.Lock()
			run.sums[round] = sum
			run.mu.Unlock()
		}
		name := fmt.Sprintf("tree%d", i+1)
		app, err := sys.Launch(name, names[i], tree.Schema(hostSpeed), workload.TestTree(tree))
		if err != nil {
			return ScaleRow{}, err
		}
		run.app = app
		runs = append(runs, run)
	}
	start := clock.Now()

	// The injected overloads: extra tasks arrive on the first Overloads app
	// hosts, pushing them over the Table 1 threshold so the scheduler must
	// find each a destination among hundreds of candidates.
	clock.Sleep(20 * time.Second)
	for i := 0; i < cfg.Overloads; i++ {
		h, _ := cl.Host(names[i])
		g := workload.NewLoadGen(h, workload.LoadOptions{
			Workers: 3, Duty: 1.0, Period: 4 * time.Second,
			Seed: cfg.Seed + 100 + int64(i),
		})
		g.Start()
		gens = append(gens, g)
	}

	// Wait for every app, under one shared virtual deadline.
	completed := 0
	watchdog := clock.NewTimer(40 * time.Minute)
	for _, run := range runs {
		select {
		case <-run.app.Settled():
			completed++
		case <-watchdog.C:
			for settled := false; !settled; {
				run.app.Process().Kill()
				select {
				case <-run.app.Settled():
					settled = true
				case <-clock.After(100 * time.Millisecond):
				}
			}
		}
	}
	watchdog.Stop()
	elapsed := clock.Since(start)

	// Wall-clock placement latency at this host count, measured against the
	// live registry (its sets still index every host).
	reg := sys.Registry()
	const probes = 200
	wallStart := time.Now() //lint:allow determinism deliberate wall-clock probe (approximate section of the report)
	for i := 0; i < probes; i++ {
		reg.FirstFit(names[0], registry.ProcInfo{Host: names[0], PID: 1})
	}
	decisionMicros := float64(time.Since(wallStart).Microseconds()) / probes //lint:allow determinism deliberate wall-clock probe

	row := ScaleRow{
		Hosts:               nHosts,
		Apps:                cfg.Apps,
		Completed:           completed,
		Correct:             true,
		Overloads:           cfg.Overloads,
		VirtualSec:          elapsed.Seconds(),
		Heartbeats:          heartbeats.Load(),
		BatchFlushes:        ctr.Get(metrics.CtrBatchFlushes),
		MigrationsCommitted: ctr.Get(metrics.CtrMigrCommitted),
		EventsSeen:          ring.Count(),
		DecisionMicros:      decisionMicros,
	}
	row.MigrationsOrdered, _ = reg.Stats()
	row.Spans = mreg.SpanStats("span/")
	cfg.Metrics.Merge(mreg)
	if elapsed > 0 {
		row.HeartbeatsPerSec = float64(row.Heartbeats) / elapsed.Seconds()
	}
	for _, run := range runs {
		want := workload.ExpectedSums(run.tree)
		run.mu.Lock()
		if len(run.sums) != run.tree.Rounds {
			row.Correct = false
		}
		for round, sum := range want {
			if run.sums[round] != sum {
				row.Correct = false
			}
		}
		run.mu.Unlock()
	}
	return row, nil
}

// RenderScaleDeterministic prints the seed-reproducible part of the report:
// sweep sizes, app completion and checksum correctness. Two runs with the
// same seed produce identical output.
func RenderScaleDeterministic(rows []ScaleRow) string {
	var b strings.Builder
	b.WriteString("Scale — sweep outcomes (deterministic per seed)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "hosts=%-4d apps=%d completed=%d correct=%v overloads=%d\n",
			r.Hosts, r.Apps, r.Completed, r.Correct, r.Overloads)
	}
	return b.String()
}

// RenderScale prints the full report: the deterministic section plus the
// control-plane measurements, which carry scheduling and wall-clock jitter.
func RenderScale(rows []ScaleRow) string {
	var b strings.Builder
	b.WriteString(RenderScaleDeterministic(rows))
	b.WriteString("\ncontrol plane (approximate)\n")
	b.WriteString("hosts  virtual(s)  heartbeats  hb/s  batches  ordered  committed  events  decision(us)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %10.1f %11d %5.1f %8d %8d %10d %7d %13.1f\n",
			r.Hosts, r.VirtualSec, r.Heartbeats, r.HeartbeatsPerSec, r.BatchFlushes,
			r.MigrationsOrdered, r.MigrationsCommitted, r.EventsSeen, r.DecisionMicros)
	}
	b.WriteString("\nmigration phases, measured (approximate: counts are load-dependent, durations carry wall jitter x scale)\n")
	for _, r := range rows {
		for _, st := range r.Spans {
			if st.Count == 0 {
				continue
			}
			fmt.Fprintf(&b, "hosts=%-4d %-14s n=%-3d p50=%-8s p95=%-8s p99=%s\n",
				r.Hosts, st.Name, st.Count, st.P50, st.P95, st.P99)
		}
	}
	return b.String()
}
