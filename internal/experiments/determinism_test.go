package experiments

import (
	"fmt"
	"testing"
)

// TestChaosDeterministicAcrossSeeds runs a migration-heavy scenario subset
// twice for each of three seeds and requires the deterministic report —
// fault schedule, robustness counters, migration phase counts, plus the
// migration cost model's quantile table — to be byte-identical between the
// two runs. This is the regression fence for the observability layer: a
// span that leaks scheduling jitter into the deterministic section, or a
// histogram whose quantiles stop being pure functions of their inputs,
// breaks it.
func TestChaosDeterministicAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed chaos determinism sweep in -short mode")
	}
	scenarios := []string{"degraded-migration", "partition-abort", "duplicate-order"}
	for _, seed := range []int64{1, 2, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			cfg := ChaosConfig{
				Params:    Params{Scale: 1000, Seed: seed},
				Scenarios: scenarios,
			}
			run := func() string {
				rows, err := RunChaos(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return RenderChaosDeterministic(rows) + RenderMigrationModel(seed, 64)
			}
			out1, out2 := run(), run()
			if out1 != out2 {
				t.Fatalf("deterministic sections differ:\n--- first\n%s\n--- second\n%s", out1, out2)
			}
		})
	}
}

// TestMigrationModelDeterministic pins the model sweep itself: same seed →
// byte-identical table, different seed → (almost surely) a different one,
// and every span histogram populated.
func TestMigrationModelDeterministic(t *testing.T) {
	a, b := RenderMigrationModel(7, 32), RenderMigrationModel(7, 32)
	if a != b {
		t.Fatalf("model not deterministic:\n--- first\n%s\n--- second\n%s", a, b)
	}
	stats := MigrationModel(7, 32)
	if len(stats) != 5 {
		t.Fatalf("span stats = %d, want 5", len(stats))
	}
	for _, st := range stats {
		if st.Count != 32 {
			t.Errorf("%s count = %d, want 32", st.Name, st.Count)
		}
		if st.P50 == "0" || st.P50 == "" {
			t.Errorf("%s p50 empty", st.Name)
		}
	}
	if RenderMigrationModel(8, 32) == a {
		t.Fatal("different seeds produced identical model tables")
	}
}
