package experiments

import (
	"strings"
	"testing"

	"autoresched/internal/metrics"
)

// TestChaosResizeScenariosAreDeterministic runs the two malleability crash
// scenarios twice with the same seed and requires the deterministic report
// section to be byte-identical. It also pins the two crash-window outcomes:
// losing a freshly spawned rank mid-expand aborts the resize cleanly (the
// job completes at the old size), and losing a victim host mid-shrink after
// the drain does not stop the shrink from committing.
func TestChaosResizeScenariosAreDeterministic(t *testing.T) {
	cfg := ChaosConfig{
		Params:    Params{Scale: 1000, Seed: 7},
		Scenarios: []string{"resize-crash-new-rank", "resize-crash-victim"},
	}
	run := func() ([]ChaosRow, string) {
		rows, err := RunChaos(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rows, RenderChaosDeterministic(rows)
	}
	rows1, out1 := run()
	_, out2 := run()
	if out1 != out2 {
		t.Fatalf("deterministic sections differ:\n--- first\n%s\n--- second\n%s", out1, out2)
	}
	if len(rows1) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows1))
	}
	byName := map[string]ChaosRow{}
	for _, r := range rows1 {
		byName[r.Scenario] = r
		if !r.Survived {
			t.Errorf("%s: survived=%v completed=%v correct=%v err=%q",
				r.Scenario, r.Survived, r.Completed, r.Correct, r.FinalErr)
		}
	}
	if r := byName["resize-crash-new-rank"]; r.Counters[metrics.CtrResizeAborted] != 1 ||
		r.Counters[metrics.CtrResizeCommitted] != 0 || r.Counters[metrics.CtrRanksSpawned] != 0 {
		t.Errorf("resize-crash-new-rank counters: %v", r.Counters)
	}
	if r := byName["resize-crash-victim"]; r.Counters[metrics.CtrResizeCommitted] != 1 ||
		r.Counters[metrics.CtrRanksRetired] != 1 || r.Counters[metrics.CtrResizeAborted] != 0 {
		t.Errorf("resize-crash-victim counters: %v", r.Counters)
	}
	if !strings.Contains(out1, "trap crash-host host=ws5 proc=elastic-jacobi phase=spawn") {
		t.Errorf("expand trap not in schedule:\n%s", out1)
	}
	if !strings.Contains(out1, "trap crash-host host=ws4 proc=elastic-jacobi phase=reshape") {
		t.Errorf("shrink trap not in schedule:\n%s", out1)
	}
}

// TestMalleableExperimentDeterministicAndOrdered runs the three-arm
// malleability experiment twice with the same seed: the deterministic
// section (resize trajectories, counters, outcomes) must be byte-identical,
// and the headline ordering malleable <= migrate <= fixed must hold with
// the arms' expected final shapes.
func TestMalleableExperimentDeterministicAndOrdered(t *testing.T) {
	if testing.Short() {
		t.Skip("three-arm churn runs in -short mode")
	}
	cfg := MalleableConfig{Params: Params{Scale: 2000, Seed: 5}}
	run := func() ([]MalleableRow, string) {
		rows, err := RunMalleable(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rows, RenderMalleableDeterministic(rows)
	}
	rows1, out1 := run()
	_, out2 := run()
	if out1 != out2 {
		t.Fatalf("deterministic sections differ:\n--- first\n%s\n--- second\n%s", out1, out2)
	}
	byArm := map[string]MalleableRow{}
	for _, r := range rows1 {
		byArm[r.Arm] = r
		if !r.Completed || !r.Correct || r.FinalErr != "" {
			t.Errorf("%s: completed=%v correct=%v err=%q", r.Arm, r.Completed, r.Correct, r.FinalErr)
		}
	}
	if r := byArm["fixed"]; r.Committed != 0 || r.FinalWorld != 4 {
		t.Errorf("fixed arm resized: %+v", r)
	}
	if r := byArm["migrate"]; r.Committed != 1 || r.FinalWorld != 4 ||
		r.Counters[metrics.CtrRanksSpawned] != 2 || r.Counters[metrics.CtrRanksRetired] != 2 {
		t.Errorf("migrate arm shape: %+v", r)
	}
	if r := byArm["malleable"]; r.Committed != 2 || r.FinalWorld != 5 {
		t.Errorf("malleable arm shape: %+v", r)
	}
	ma, mi, fx := byArm["malleable"].VirtualSec, byArm["migrate"].VirtualSec, byArm["fixed"].VirtualSec
	if !(ma <= mi && mi <= fx) {
		t.Errorf("completion ordering violated: malleable %.1f, migrate %.1f, fixed %.1f", ma, mi, fx)
	}
}
