package experiments

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"autoresched/internal/core"
	"autoresched/internal/hpcm"
	"autoresched/internal/metrics"
	"autoresched/internal/workload"
)

// EfficiencyConfig tunes the Figure 7/8 scenario.
type EfficiencyConfig struct {
	Params
	// AppStart is when the migration-enabled process launches; zero
	// selects the paper's 280 s.
	AppStart time.Duration
	// LoadStart is when the additional tasks arrive on the source host;
	// zero selects 360 s.
	LoadStart time.Duration
	// Warmup is the scheduler's consecutive-report damping; zero selects
	// 7 (with 10 s monitoring, roughly the paper's 72 s reaction).
	Warmup int
	// BallastBytes sizes the migrated state; zero selects 40 MB (about
	// 6-8 s of migration on contended 100 Mbps Ethernet, the paper's
	// 7.5 s).
	BallastBytes int64
}

// EfficiencyResult holds the Figure 7/8 reproduction.
type EfficiencyResult struct {
	// Recorder carries ws1/... and ws2/... series (load1, load5, cpu,
	// sentKBs, recvKBs) sampled every Interval.
	Recorder *metrics.Recorder

	// The migration's phase timeline, relative to experiment start.
	AppStart    time.Duration // process launch
	LoadStart   time.Duration // additional tasks loaded
	CommandAt   time.Duration // migrate command delivered
	PollPointAt time.Duration // poll-point reached
	InitDone    time.Duration // initialized process created (spawn)
	ResumeAt    time.Duration // destination resumed execution
	RestoreDone time.Duration // restoration complete
	AppDone     time.Duration // application finished
	Record      hpcm.Record
	// Derived durations (the numbers Section 5.2 walks through). The
	// decision itself is sub-millisecond (the paper's 0.002 s): the
	// command is issued within the status-report handling.
	ReactionTime  time.Duration // LoadStart -> CommandAt ("72 seconds")
	TimeToPoll    time.Duration // CommandAt -> PollPointAt ("1.4 seconds")
	InitTime      time.Duration // PollPointAt -> InitDone ("within 0.3 seconds")
	ResumeTime    time.Duration // InitDone -> ResumeAt ("within 1 second")
	MigrationTime time.Duration // CommandAt -> RestoreDone ("7.5 seconds")
}

// RunEfficiency reproduces the Section 5.2 experiment: two workstations, a
// migration-enabled test_tree started at AppStart on ws1, additional load
// at LoadStart, autonomic migration to ws2, with both hosts sampled every
// Interval for the CPU (Figure 7) and communication (Figure 8) timelines.
func RunEfficiency(cfg EfficiencyConfig) (*EfficiencyResult, error) {
	cfg.Params = cfg.Params.withDefaults()
	if cfg.AppStart <= 0 {
		cfg.AppStart = 280 * time.Second
	}
	if cfg.LoadStart <= 0 {
		cfg.LoadStart = 360 * time.Second
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 7
	}
	if cfg.BallastBytes <= 0 {
		cfg.BallastBytes = 40 << 20
	}
	if cfg.LoadStart <= cfg.AppStart {
		return nil, errors.New("experiments: LoadStart must follow AppStart")
	}

	cl, names, err := newCluster(cfg.Params, 2)
	if err != nil {
		return nil, err
	}
	clock := cl.Clock()
	start := clock.Now()
	rec := metrics.NewRecorder(clock)

	sys, err := core.New(core.Options{
		Cluster:         cl,
		MonitorInterval: cfg.Interval,
		GatherCost:      0.05 * hostSpeed,
		Warmup:          cfg.Warmup,
		Cooldown:        5 * time.Minute,
		RegistryHost:    names[0],
		// Large streaming chunks: every chunk costs a scheduler wake-up,
		// which scaled virtual time multiplies.
		ChunkBytes: 8 << 20,
	})
	if err != nil {
		return nil, err
	}
	if err := sys.AddNodes(names...); err != nil {
		return nil, err
	}
	defer sys.Stop()

	s1 := newSampler(rec, cl, "ws1", "ws1", cfg.Interval)
	s2 := newSampler(rec, cl, "ws2", "ws2", cfg.Interval)
	defer s1.Stop()
	defer s2.Stop()

	clock.Sleep(cfg.AppStart)

	// test_tree sized so a sort phase (the longest inter-poll-point gap)
	// takes ~1 s solo and total solo execution ~9 minutes.
	tree := workload.TreeConfig{
		Levels: 13, Rounds: 460, Seed: cfg.Seed + 7,
		WorkPerNode:  9,
		BytesPerNode: 8,
		BallastBytes: cfg.BallastBytes,
	}
	app, err := sys.Launch("test_tree", "ws1", tree.Schema(hostSpeed), workload.TestTree(tree))
	if err != nil {
		return nil, err
	}

	clock.Sleep(cfg.LoadStart - cfg.AppStart)
	loadAt := clock.Now()
	ws1, _ := cl.Host("ws1")
	extra := workload.NewLoadGen(ws1, workload.LoadOptions{
		Workers: 3, Duty: 1.0, Period: 4 * time.Second, Seed: cfg.Seed + 11,
	})
	extra.Start()
	defer extra.Stop()

	if err := app.Wait(); err != nil {
		return nil, err
	}
	doneAt := clock.Now()
	recs := app.Proc.Records()
	if len(recs) == 0 {
		return nil, errors.New("experiments: the process never migrated")
	}
	r := recs[0]

	rel := func(t time.Time) time.Duration { return t.Sub(start) }
	res := &EfficiencyResult{
		Recorder:      rec,
		AppStart:      cfg.AppStart,
		LoadStart:     rel(loadAt),
		CommandAt:     rel(r.CommandAt),
		PollPointAt:   rel(r.PollPointAt),
		InitDone:      rel(r.InitDone),
		ResumeAt:      rel(r.ResumeAt),
		RestoreDone:   rel(r.RestoreDone),
		AppDone:       rel(doneAt),
		Record:        r,
		ReactionTime:  r.CommandAt.Sub(loadAt),
		InitTime:      r.InitDone.Sub(r.PollPointAt),
		TimeToPoll:    r.PollPointAt.Sub(r.CommandAt),
		ResumeTime:    r.ResumeAt.Sub(r.InitDone),
		MigrationTime: r.RestoreDone.Sub(r.CommandAt),
	}
	return res, nil
}

// Render prints the Figure 7/8 reproduction as text.
func (r *EfficiencyResult) Render() string {
	var b strings.Builder
	sec := func(d time.Duration) float64 { return d.Seconds() }
	fmt.Fprintf(&b, "Figures 7/8 — efficiency timeline (seconds from start)\n")
	fmt.Fprintf(&b, "  app start:            %8.1f\n", sec(r.AppStart))
	fmt.Fprintf(&b, "  additional load:      %8.1f\n", sec(r.LoadStart))
	fmt.Fprintf(&b, "  migration decision:   %8.1f  (reaction %0.1fs after load)\n",
		sec(r.CommandAt), sec(r.ReactionTime))
	fmt.Fprintf(&b, "  poll-point reached:   %8.1f  (+%0.2fs)\n", sec(r.PollPointAt), sec(r.TimeToPoll))
	fmt.Fprintf(&b, "  process initialized:  %8.1f  (+%0.2fs spawn)\n", sec(r.InitDone), sec(r.InitTime))
	fmt.Fprintf(&b, "  execution resumed:    %8.1f  (+%0.2fs restore of eager state)\n", sec(r.ResumeAt), sec(r.ResumeTime))
	fmt.Fprintf(&b, "  restoration complete: %8.1f  (migration total %0.2fs)\n", sec(r.RestoreDone), sec(r.MigrationTime))
	fmt.Fprintf(&b, "  app done:             %8.1f\n", sec(r.AppDone))
	fmt.Fprintf(&b, "  state moved: %d KB eager + %d KB lazy (restore overlapped execution)\n",
		r.Record.EagerBytes/1024, r.Record.LazyBytes/1024)
	fmt.Fprintf(&b, "  Figure 7 (CPU %%):\n")
	fmt.Fprintf(&b, "    ws1: %s\n", metrics.Sparkline(r.Recorder.Series("ws1/cpu")))
	fmt.Fprintf(&b, "    ws2: %s\n", metrics.Sparkline(r.Recorder.Series("ws2/cpu")))
	fmt.Fprintf(&b, "  Figure 8 (KB/s):\n")
	fmt.Fprintf(&b, "    ws1 send: %s\n", metrics.Sparkline(r.Recorder.Series("ws1/sentKBs")))
	fmt.Fprintf(&b, "    ws2 recv: %s\n", metrics.Sparkline(r.Recorder.Series("ws2/recvKBs")))
	return b.String()
}
