package experiments

import (
	"fmt"
	"strings"
	"time"

	"autoresched/internal/core"
	"autoresched/internal/rules"
	"autoresched/internal/workload"
)

// PolicyRow is one row of the Table 2 reproduction.
type PolicyRow struct {
	Policy       string
	TotalSec     float64 // total execution time of the application
	StartAt      string  // launch host (always ws1)
	MigrateTo    string  // destination host ("-" without migration)
	SourceSec    float64 // time spent executing on the source
	DestSec      float64 // time spent executing on the destination
	MigrationSec float64 // command to restoration complete
	// TransferSec is the state-transfer component (resume to restoration
	// complete): the part of the migration time that depends on the
	// destination's network contention, which is what separates the
	// paper's 8.31 s (to the communicating host) from 6.71 s (to the free
	// one).
	TransferSec float64
}

// PoliciesConfig tunes the Table 2 scenario.
type PoliciesConfig struct {
	Params
	// Warmup damps the scheduler; zero selects 4.
	Warmup int
	// BallastBytes sizes the migrated state; zero selects 80 MB, which
	// makes the transfer-time difference between a free and a
	// communication-busy destination (full versus shared receive path)
	// larger than poll-point timing noise.
	BallastBytes int64
}

// RunPolicies reproduces Table 2. Five workstations: ws1 runs the
// application and is then overloaded; ws2 exchanges ~7 MB/s with ws5
// (paying protocol-processing CPU, so it is a poor compute host even at
// load < 1); ws3 carries a CPU load of ~2.5; ws4 is free. The same
// application runs once under each policy.
func RunPolicies(cfg PoliciesConfig) ([]PolicyRow, error) {
	cfg.Params = cfg.Params.withDefaults()
	if cfg.Warmup <= 0 {
		cfg.Warmup = 4
	}
	if cfg.BallastBytes <= 0 {
		cfg.BallastBytes = 160 << 20
	}
	policies := []*rules.MigrationPolicy{rules.Policy1(), rules.Policy2(), rules.Policy3()}
	rows := make([]PolicyRow, 0, len(policies))
	for _, pol := range policies {
		row, err := runPolicyArm(cfg, pol)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", pol.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runPolicyArm(cfg PoliciesConfig, pol *rules.MigrationPolicy) (PolicyRow, error) {
	cl, names, err := newCluster(cfg.Params, 5)
	if err != nil {
		return PolicyRow{}, err
	}
	clock := cl.Clock()

	sys, err := core.New(core.Options{
		Cluster:         cl,
		Policy:          pol,
		MonitorInterval: cfg.Interval,
		GatherCost:      0.05 * hostSpeed,
		Warmup:          cfg.Warmup,
		Cooldown:        10 * time.Minute,
		RegistryHost:    names[0],
		ChunkBytes:      32 << 20,
	})
	if err != nil {
		return PolicyRow{}, err
	}
	if err := sys.AddNodes(names...); err != nil {
		return PolicyRow{}, err
	}
	defer sys.Stop()

	// ws2 <-> ws5 communication. The flow is nearly continuous so a state
	// transfer into ws2 genuinely shares its receive path, and ws2 pays
	// protocol-processing CPU (duty ~0.55, keeping its load just under
	// policy 2's threshold of 1 — the paper's ws2 sat at 0.97).
	// Demand above link capacity with large chunks: the flow occupies
	// ws2's NIC nearly continuously, so a state transfer into ws2 reliably
	// runs at the fair share rather than slipping between chunks.
	comm := workload.NewCommLoad(clock, cl.Net(), "ws2", "ws5", workload.CommOptions{
		Rate: 22e6, Chunk: 48 << 20, Bidirectional: true,
	})
	comm.Start()
	defer comm.Stop()
	ws2, _ := cl.Host("ws2")
	rx2 := workload.NewLoadGen(ws2, workload.LoadOptions{
		Workers: 1, Duty: 0.55, Period: 3 * time.Second, Seed: cfg.Seed + 8, Name: "proto-rx",
	})
	rx2.Start()
	defer rx2.Stop()
	ws5, _ := cl.Host("ws5")
	rx5 := workload.NewLoadGen(ws5, workload.LoadOptions{
		Workers: 1, Duty: 0.35, Period: 3 * time.Second, Seed: cfg.Seed + 9, Name: "proto-rx",
	})
	rx5.Start()
	defer rx5.Stop()

	// ws3 carries a CPU workload of ~2.5.
	ws3, _ := cl.Host("ws3")
	busy3 := workload.NewLoadGen(ws3, workload.LoadOptions{
		Workers: 3, Duty: 0.85, Period: 6 * time.Second, Seed: cfg.Seed + 3,
	})
	busy3.Start()
	defer busy3.Stop()

	// Let the background settle so the scheduler sees the real picture.
	clock.Sleep(2 * time.Minute)

	// Dense poll-points (the longest phase is ~0.6 s solo, ~2.5 s under the
	// overload) keep the command-to-poll-point wait small relative to the
	// transfer times.
	tree := workload.TreeConfig{
		Levels: 13, Rounds: 420, Seed: cfg.Seed + 1,
		WorkPerNode: 6, BytesPerNode: 8, BallastBytes: cfg.BallastBytes,
	}
	app, err := sys.Launch("test_tree", "ws1", tree.Schema(hostSpeed), workload.TestTree(tree))
	if err != nil {
		return PolicyRow{}, err
	}
	launchAt := clock.Now()

	// The additional tasks that overload ws1.
	clock.Sleep(30 * time.Second)
	ws1, _ := cl.Host("ws1")
	extra := workload.NewLoadGen(ws1, workload.LoadOptions{
		Workers: 3, Duty: 1.0, Period: 4 * time.Second, Seed: cfg.Seed + 5,
	})
	extra.Start()
	defer extra.Stop()

	if err := app.Wait(); err != nil {
		return PolicyRow{}, err
	}
	doneAt := clock.Now()

	row := PolicyRow{
		Policy:    pol.Name,
		StartAt:   "ws1",
		MigrateTo: "-",
		TotalSec:  doneAt.Sub(launchAt).Seconds(),
	}
	if recs := app.Proc.Records(); len(recs) > 0 {
		r := recs[0]
		row.MigrateTo = r.To
		row.SourceSec = r.PollPointAt.Sub(launchAt).Seconds()
		row.DestSec = doneAt.Sub(r.ResumeAt).Seconds()
		row.MigrationSec = r.MigrationTime().Seconds()
		row.TransferSec = r.RestoreDone.Sub(r.ResumeAt).Seconds()
	} else {
		row.SourceSec = row.TotalSec
	}
	return row, nil
}

// RenderPolicies prints the Table 2 reproduction.
func RenderPolicies(rows []PolicyRow) string {
	var b strings.Builder
	b.WriteString("Table 2 — comparison of policies\n")
	b.WriteString("policy   total(s)  start  migrate-to  source(s)  dest(s)  migration(s)  transfer(s)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %8.2f  %-5s  %-10s %9.2f %8.2f %13.2f %12.2f\n",
			r.Policy, r.TotalSec, r.StartAt, r.MigrateTo, r.SourceSec, r.DestSec,
			r.MigrationSec, r.TransferSec)
	}
	return b.String()
}
