package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"autoresched/internal/jobs"
)

// The multi-job policy shoot-out: FIFO vs. priority-preemptive vs. backfill
// over one seeded queue of gang jobs on one seeded host-churn script. The
// simulation is a discrete-tick model — one rank per host, progress in
// rank-ticks, preemption and crash-requeue preserving progress (the
// checkpoint) — driven by the same pure planner (jobs.PlanCycle) the live
// dispatcher executes, so a policy difference measured here is the decision
// difference of the real control plane, free of runtime noise. Every
// quantity is an integer derived from the seed: the report is
// byte-deterministic, and a seed + policy name pins the whole schedule.

// MultijobConfig tunes the shoot-out.
type MultijobConfig struct {
	Params
	// Jobs is the queue depth; values below 64 are raised to 64 (the
	// experiment is about contention, which needs a deep queue).
	Jobs int
	// Hosts is the fleet size; zero selects 16. Every fourth host is
	// "big" (the heterogeneous class some jobs require).
	Hosts int
}

func (c MultijobConfig) withDefaults() MultijobConfig {
	if c.Jobs < 64 {
		c.Jobs = 64
	}
	if c.Hosts <= 0 {
		c.Hosts = 16
	}
	return c
}

// WaitQuantiles are per-priority queue-wait statistics, in ticks.
type WaitQuantiles struct {
	Jobs int
	P50  int
	P90  int
	Max  int
}

// MultijobRow is one policy's outcome over the shared job set and churn
// script. Everything is deterministic per seed.
type MultijobRow struct {
	Policy        string
	Completed     int
	MakespanTicks int
	// Waits keys per-priority wait quantiles by priority level.
	Waits map[int]WaitQuantiles
	// Preemptions counts planner evictions by mode.
	Preemptions map[jobs.EvictMode]int
	// ChurnRequeues and ChurnShrinks count host-crash victims (requeued
	// rigid jobs, shrunk elastic ones) — identical churn hits each arm.
	ChurnRequeues int
	ChurnShrinks  int
}

// simJob is one job's simulation state.
type simJob struct {
	name     string
	seq      int64
	priority int
	gang     int
	elastic  bool
	minWorld int
	big      bool // requires the big host class
	arrival  int  // tick the job joins the queue
	work     int  // total rank-ticks

	progress   int
	hosts      []string
	running    bool
	done       bool
	firstStart int
	finish     int
}

func (j *simJob) view() jobs.JobView {
	return jobs.JobView{
		Name:     j.name,
		Priority: j.priority,
		Gang:     j.gang,
		Elastic:  j.elastic,
		MinWorld: j.minWorld,
		Seq:      j.seq,
		Hosts:    append([]string(nil), j.hosts...),
	}
}

// churnEvent takes one host down for a stretch of ticks.
type churnEvent struct {
	tick, host, duration int
}

// genJobs derives the job set from the seed: gangs of 1..8, three priority
// levels, a third of the multi-rank jobs elastic, and a slice of small jobs
// pinned to the big host class so preemption's migrate arm has a
// heterogeneous case to find.
func genJobs(cfg MultijobConfig) []*simJob {
	rng := rand.New(rand.NewSource(cfg.Seed))
	gangs := []int{1, 1, 2, 2, 4, 8}
	out := make([]*simJob, cfg.Jobs)
	for i := range out {
		j := &simJob{
			name:       fmt.Sprintf("job%03d", i),
			priority:   rng.Intn(3),
			gang:       gangs[rng.Intn(len(gangs))],
			big:        rng.Intn(8) == 0,
			arrival:    rng.Intn(150),
			firstStart: -1,
		}
		if j.big {
			// The big class is a quarter of the fleet; keep its gangs small
			// so they always remain feasible.
			j.gang = 1 + rng.Intn(2)
		}
		if j.gang >= 2 && rng.Intn(3) == 0 {
			j.elastic = true
		}
		j.minWorld = max(1, j.gang/2)
		j.work = j.gang * (10 + rng.Intn(40))
		out[i] = j
	}
	// Submission order: arrival tick, index as the tiebreak.
	sort.SliceStable(out, func(a, b int) bool { return out[a].arrival < out[b].arrival })
	for i, j := range out {
		j.seq = int64(i + 1)
	}
	return out
}

// genChurn derives the host-churn script from the seed.
func genChurn(cfg MultijobConfig) []churnEvent {
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	n := cfg.Hosts / 4
	out := make([]churnEvent, n)
	for i := range out {
		out[i] = churnEvent{
			tick:     30 + rng.Intn(150),
			host:     rng.Intn(cfg.Hosts),
			duration: 20 + rng.Intn(30),
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].tick != out[b].tick {
			return out[a].tick < out[b].tick
		}
		return out[a].host < out[b].host
	})
	return out
}

// multijobTickCap bounds a run; any schedule that has not drained by then is
// reported with its incomplete count rather than looping forever.
const multijobTickCap = 20000

// RunMultijob runs the shoot-out: each stock policy over the same seeded
// job set and churn script.
func RunMultijob(cfg MultijobConfig) []MultijobRow {
	cfg = cfg.withDefaults()
	rows := make([]MultijobRow, 0, 3)
	for _, p := range jobs.Policies() {
		rows = append(rows, runMultijobArm(cfg, p))
	}
	return rows
}

func runMultijobArm(cfg MultijobConfig, policy jobs.Policy) MultijobRow {
	jobSet := genJobs(cfg)
	churn := genChurn(cfg)
	hostNames := make([]string, cfg.Hosts)
	bigHost := make(map[string]bool, cfg.Hosts)
	for i := range hostNames {
		hostNames[i] = fmt.Sprintf("mj%02d", i+1)
		if i%4 == 0 {
			bigHost[hostNames[i]] = true
		}
	}
	byName := make(map[string]*simJob, len(jobSet))
	for _, j := range jobSet {
		byName[j.name] = j
	}
	eligible := func(job, host string) bool {
		if j, ok := byName[job]; ok && j.big {
			return bigHost[host]
		}
		return true
	}

	row := MultijobRow{
		Policy:      policy.Name(),
		Waits:       make(map[int]WaitQuantiles),
		Preemptions: make(map[jobs.EvictMode]int),
	}
	downUntil := make(map[string]int) // host -> tick it revives
	nextChurn := 0
	remaining := len(jobSet)

	for tick := 0; tick <= multijobTickCap && remaining > 0; tick++ {
		// 1. Revive hosts whose outage ended.
		for h, until := range downUntil {
			if until <= tick {
				delete(downUntil, h)
			}
		}
		// 2. Crash hosts scheduled for this tick. Victim ranks checkpointed
		// at the previous tick: elastic jobs shed the dead hosts when
		// MinWorld allows, rigid ones requeue with progress intact.
		for nextChurn < len(churn) && churn[nextChurn].tick == tick {
			ev := churn[nextChurn]
			nextChurn++
			h := hostNames[ev.host]
			if _, down := downUntil[h]; down {
				continue
			}
			downUntil[h] = tick + ev.duration
			for _, j := range jobSet {
				if !j.running {
					continue
				}
				lost := 0
				for _, jh := range j.hosts {
					if jh == h {
						lost++
					}
				}
				if lost == 0 {
					continue
				}
				if j.elastic && len(j.hosts)-lost >= j.minWorld {
					j.hosts = withoutHost(j.hosts, h)
					row.ChurnShrinks++
				} else {
					j.hosts = nil
					j.running = false
					row.ChurnRequeues++
				}
			}
		}
		// 3. Plan one admission cycle over the live fleet.
		occ := make(map[string]string, cfg.Hosts)
		var running []jobs.JobView
		for _, j := range jobSet {
			if !j.running {
				continue
			}
			running = append(running, j.view())
			for _, h := range j.hosts {
				occ[h] = j.name
			}
		}
		var pending []jobs.JobView
		for _, j := range jobSet {
			if !j.done && !j.running && j.arrival <= tick {
				pending = append(pending, j.view())
			}
		}
		var hosts []jobs.HostView
		for _, h := range hostNames {
			if _, down := downUntil[h]; down {
				continue
			}
			hosts = append(hosts, jobs.HostView{Name: h, Job: occ[h]})
		}
		view := jobs.ClusterView{Hosts: hosts, Running: running, Eligible: eligible}
		for _, adm := range jobs.PlanCycle(policy, pending, view) {
			for _, ev := range adm.Evictions {
				v := byName[ev.Job]
				row.Preemptions[ev.Mode]++
				switch ev.Mode {
				case jobs.EvictRequeue:
					v.hosts = nil
					v.running = false
				case jobs.EvictShrink:
					for _, h := range ev.Hosts {
						v.hosts = withoutHost(v.hosts, h)
					}
				case jobs.EvictMigrate:
					for i, h := range v.hosts {
						if dest, ok := ev.Moves[h]; ok {
							v.hosts[i] = dest
						}
					}
				}
			}
			j := byName[adm.Job]
			j.hosts = append([]string(nil), adm.Hosts...)
			j.running = true
			if j.firstStart < 0 {
				j.firstStart = tick
			}
		}
		// 4. Advance every running job by its live world.
		for _, j := range jobSet {
			if !j.running {
				continue
			}
			j.progress += len(j.hosts)
			if j.progress >= j.work {
				j.running = false
				j.done = true
				j.hosts = nil
				j.finish = tick + 1
				remaining--
			}
		}
	}

	waits := make(map[int][]int)
	for _, j := range jobSet {
		if !j.done {
			continue
		}
		row.Completed++
		if j.finish > row.MakespanTicks {
			row.MakespanTicks = j.finish
		}
		waits[j.priority] = append(waits[j.priority], j.firstStart-j.arrival)
	}
	for prio, w := range waits {
		sort.Ints(w)
		row.Waits[prio] = WaitQuantiles{
			Jobs: len(w),
			P50:  w[len(w)/2],
			P90:  w[len(w)*9/10],
			Max:  w[len(w)-1],
		}
	}
	return row
}

// withoutHost removes the first occurrence of h, preserving order.
func withoutHost(hosts []string, h string) []string {
	for i, x := range hosts {
		if x == h {
			return append(hosts[:i:i], hosts[i+1:]...)
		}
	}
	return hosts
}

// RenderMultijob prints the shoot-out report. Every number is an integer
// function of the seed: two runs with the same seed produce byte-identical
// output.
func RenderMultijob(rows []MultijobRow) string {
	var b strings.Builder
	b.WriteString("Multi-job policy shoot-out (deterministic per seed; ticks)\n")
	b.WriteString("policy               done  makespan  preempt(requeue/shrink/migrate)  churn(requeue/shrink)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %4d %9d  %7d /%6d /%7d          %7d /%6d\n",
			r.Policy, r.Completed, r.MakespanTicks,
			r.Preemptions[jobs.EvictRequeue], r.Preemptions[jobs.EvictShrink], r.Preemptions[jobs.EvictMigrate],
			r.ChurnRequeues, r.ChurnShrinks)
	}
	b.WriteString("\nqueue wait by priority (ticks)\n")
	b.WriteString("policy               prio  jobs   p50   p90   max\n")
	for _, r := range rows {
		prios := make([]int, 0, len(r.Waits))
		for p := range r.Waits {
			prios = append(prios, p)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(prios)))
		for _, p := range prios {
			w := r.Waits[p]
			fmt.Fprintf(&b, "%-20s %5d %5d %5d %5d %5d\n", r.Policy, p, w.Jobs, w.P50, w.P90, w.Max)
		}
	}
	return b.String()
}
