package experiments

import (
	"time"

	"autoresched/internal/core"
	"autoresched/internal/workload"
)

// FalseMigrationConfig tunes the warm-up ablation: Section 5.2 explains the
// rescheduler waits out short load transients ("If the additional load is a
// short task, this period of time can avoid the fault migration caused by
// small system performance variations") and that the damping is "a
// configurable parameter of the rescheduler".
type FalseMigrationConfig struct {
	Params
	// Warmup is the scheduler damping under test.
	Warmup int
	// Burst is how long the transient load lasts; zero selects 45 s —
	// long enough to push the load average over the threshold, far
	// shorter than a real long-running intruder.
	Burst time.Duration
	// Observe is how long to watch after the burst; zero selects 4 min.
	Observe time.Duration
}

// FalseMigrationResult reports whether the transient fooled the scheduler.
type FalseMigrationResult struct {
	Warmup     int
	Migrations int
	Ordered    int // migrate orders issued by the registry
	FalseMove  bool
}

// RunFalseMigration subjects a host running a long application to a short
// load burst and reports whether the configured warm-up kept the scheduler
// from migrating for nothing.
func RunFalseMigration(cfg FalseMigrationConfig) (*FalseMigrationResult, error) {
	cfg.Params = cfg.Params.withDefaults()
	if cfg.Warmup <= 0 {
		cfg.Warmup = 1
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 45 * time.Second
	}
	if cfg.Observe <= 0 {
		cfg.Observe = 4 * time.Minute
	}
	cl, names, err := newCluster(cfg.Params, 2)
	if err != nil {
		return nil, err
	}
	clock := cl.Clock()
	sys, err := core.New(core.Options{
		Cluster:         cl,
		MonitorInterval: cfg.Interval,
		Warmup:          cfg.Warmup,
		Cooldown:        10 * time.Minute,
		RegistryHost:    names[0],
		ChunkBytes:      8 << 20,
	})
	if err != nil {
		return nil, err
	}
	if err := sys.AddNodes(names...); err != nil {
		return nil, err
	}
	defer sys.Stop()

	tree := workload.TreeConfig{
		Levels: 12, Rounds: 150, Seed: cfg.Seed + 21,
		WorkPerNode: 120, BytesPerNode: 8,
	}
	app, err := sys.Launch("test_tree", "ws1", tree.Schema(hostSpeed), workload.TestTree(tree))
	if err != nil {
		return nil, err
	}

	// Let the app settle, then hit the host with a burst of heavy load
	// that ends on its own — the "short task".
	clock.Sleep(time.Minute)
	ws1, _ := cl.Host("ws1")
	burst := workload.NewLoadGen(ws1, workload.LoadOptions{
		Workers: 4, Duty: 1.0, Period: 2 * time.Second, Seed: cfg.Seed,
	})
	burst.Start()
	clock.Sleep(cfg.Burst)
	burst.Stop()

	// Watch whether the scheduler (wrongly) fires after the burst is gone.
	clock.Sleep(cfg.Observe)
	ordered, _ := sys.Registry().Stats()
	res := &FalseMigrationResult{
		Warmup:     cfg.Warmup,
		Migrations: app.Proc.Migrations(),
		Ordered:    ordered,
		FalseMove:  app.Proc.Migrations() > 0,
	}
	// Let the application run out so the system tears down cleanly.
	app.Proc.Kill()
	_ = app.Wait()
	return res, nil
}
