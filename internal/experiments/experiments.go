// Package experiments reproduces the paper's evaluation (Section 5):
// Figures 5 and 6 (rescheduler overhead on load, CPU and communication),
// Figures 7 and 8 (the efficiency timeline of one autonomic migration), and
// Table 2 (the three migration policies on the five-workstation scenario).
//
// Absolute numbers come from a simulated cluster, not the paper's Sun Blade
// testbed, so each experiment reports the quantities the paper's claims are
// about — overhead percentages, phase durations, per-policy completion
// times and destinations — and EXPERIMENTS.md compares their shape with the
// published values.
package experiments

import (
	"time"

	"autoresched/internal/cluster"
	"autoresched/internal/metrics"
	"autoresched/internal/simnode"
	"autoresched/internal/sysinfo"
	"autoresched/internal/vclock"
)

// Params are the common experiment knobs.
type Params struct {
	// Scale compresses virtual time: a 1000-second experiment at scale 100
	// takes ten wall seconds. Zero selects 100. Very large scales distort
	// rates: goroutine wake-up latency is multiplied into virtual time.
	Scale float64
	// Interval is the sampling interval; zero selects the paper's 10 s.
	Interval time.Duration
	// Seed feeds the load generators.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.Scale <= 0 {
		p.Scale = 100
	}
	if p.Interval <= 0 {
		p.Interval = 10 * time.Second
	}
	return p
}

// hostSpeed is the CPU capacity used by all experiment hosts, in work units
// per second. The unit is arbitrary; workload sizes below are calibrated
// against it.
const hostSpeed = 1e6

// newCluster builds a fresh cluster with n Sun-Blade-like hosts named
// ws1..wsN on 100 Mbps Ethernet.
func newCluster(p Params, n int) (*cluster.Cluster, []string, error) {
	clock := vclock.Scaled(vclock.Epoch, p.Scale)
	cl := cluster.New(cluster.Options{Clock: clock, Bandwidth: 12.5e6})
	names, err := cl.AddHosts("ws", n, simnode.Config{Speed: hostSpeed, MemTotal: 128 << 20, MemBase: 24 << 20})
	if err != nil {
		return nil, nil, err
	}
	return cl, names, nil
}

// sampler periodically gathers a host's windowed snapshot and records the
// figure series: 1- and 5-minute load, CPU utilisation, and send/receive
// rates in KB/s. It is the stand-in for the paper's standalone "sysinfo"
// performance sensor.
type sampler struct {
	rec    *metrics.Recorder
	prefix string
	sensor *sysinfo.Sensor
	stop   chan struct{}
	done   chan struct{}
}

func newSampler(rec *metrics.Recorder, cl *cluster.Cluster, host, prefix string, interval time.Duration) *sampler {
	src, _ := cl.Source(host)
	s := &sampler{
		rec:    rec,
		prefix: prefix,
		sensor: sysinfo.NewSensor(src),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	clock := cl.Clock()
	go func() {
		defer close(s.done)
		// Prime the window.
		if _, err := s.sensor.Gather(); err != nil {
			return
		}
		for {
			timer := clock.NewTimer(interval)
			select {
			case <-timer.C:
			case <-s.stop:
				timer.Stop()
				return
			}
			snap, err := s.sensor.Gather()
			if err != nil {
				return
			}
			s.rec.Record(s.prefix+"/load1", snap.Load1)
			s.rec.Record(s.prefix+"/load5", snap.Load5)
			s.rec.Record(s.prefix+"/cpu", snap.CPUUtilPct)
			s.rec.Record(s.prefix+"/sentKBs", snap.NetSentBps/1e3)
			s.rec.Record(s.prefix+"/recvKBs", snap.NetRecvBps/1e3)
		}
	}()
	return s
}

func (s *sampler) Stop() {
	close(s.stop)
	<-s.done
}
