package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestChaosCountsMatchDocs pins every scenario-count claim in
// EXPERIMENTS.md to the one authoritative list (ChaosScenarioNames). The
// two counts — the base chaos sweep and the live sweep that adds
// crash-dest-mid-precopy — used to be hand-maintained in two sections and
// drifted; now a count edit in either place fails here unless the scenario
// list actually changed.
func TestChaosCountsMatchDocs(t *testing.T) {
	base := ChaosScenarioNames(false)
	live := ChaosScenarioNames(true)
	if len(live) != len(base)+1 {
		t.Fatalf("live sweep has %d scenarios, want base %d plus crash-dest-mid-precopy", len(live), len(base))
	}
	added := map[string]bool{}
	for _, n := range live {
		added[n] = true
	}
	for _, n := range base {
		delete(added, n)
	}
	if len(added) != 1 || !added["crash-dest-mid-precopy"] {
		t.Fatalf("live sweep's addition = %v, want exactly crash-dest-mid-precopy", added)
	}

	raw, err := os.ReadFile(filepath.Join("..", "..", "EXPERIMENTS.md"))
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)

	// The base count is stated once, as N/N scenarios survive.
	wantBase := fmt.Sprintf("**%d/%d scenarios survive**", len(base), len(base))
	if n := strings.Count(doc, wantBase); n != 1 {
		t.Errorf("EXPERIMENTS.md states %q %d times, want exactly once", wantBase, n)
	}
	// The live section derives its count from the list rather than
	// restating an independent number.
	wantLive := fmt.Sprintf("(%d/%d, per", len(live), len(live))
	if !strings.Contains(doc, wantLive) {
		t.Errorf("EXPERIMENTS.md missing the derived live count %q", wantLive)
	}
	// And no stale survival claim hides elsewhere: every N/N scenarios
	// survive match must carry the base count.
	re := regexp.MustCompile(`(\d+)/(\d+) scenarios survive`)
	for _, m := range re.FindAllStringSubmatch(doc, -1) {
		if m[1] != m[2] || m[1] != fmt.Sprint(len(base)) {
			t.Errorf("EXPERIMENTS.md claims %q, but the authoritative list has %d scenarios", m[0], len(base))
		}
	}
}
