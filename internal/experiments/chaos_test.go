package experiments

import (
	"strings"
	"testing"

	"autoresched/internal/metrics"
)

// TestChaosCrashDestScenarioIsDeterministic runs the required
// mid-migration-crash scenario twice with the same seed and requires the
// deterministic report section — fault schedule, outcome, counters — to be
// byte-identical. It also pins the end-to-end recovery path: the migration
// aborts, the pre-migration checkpoint is restored on a fresh first-fit
// host, and the computation completes with correct checksums.
func TestChaosCrashDestScenarioIsDeterministic(t *testing.T) {
	cfg := ChaosConfig{
		Params:    Params{Scale: 1000, Seed: 7},
		Scenarios: []string{"crash-dest-mid-migration"},
	}
	run := func() ([]ChaosRow, string) {
		rows, err := RunChaos(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rows, RenderChaosDeterministic(rows)
	}
	rows1, out1 := run()
	_, out2 := run()
	if out1 != out2 {
		t.Fatalf("deterministic sections differ:\n--- first\n%s\n--- second\n%s", out1, out2)
	}

	if len(rows1) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows1))
	}
	r := rows1[0]
	if !r.Survived {
		t.Fatalf("scenario did not survive: %+v", r)
	}
	if r.Retries != 1 {
		t.Fatalf("retries = %d, want 1", r.Retries)
	}
	if r.Counters[metrics.CtrMigrAborted] != 1 {
		t.Fatalf("aborted = %d, want 1", r.Counters[metrics.CtrMigrAborted])
	}
	if r.Counters[metrics.CtrCkptRestores] != 1 {
		t.Fatalf("checkpoint restores = %d, want 1", r.Counters[metrics.CtrCkptRestores])
	}
	if r.FinalHost == "ws2" {
		t.Fatal("app ended on the crashed destination")
	}
	if !strings.Contains(out1, "trap crash-host host=ws2") {
		t.Fatalf("phase trap not in schedule:\n%s", out1)
	}
}

// TestChaosAllScenariosSurvive sweeps the full scenario set: every fault
// plan must terminate (no hang) and complete the checksummed computation.
func TestChaosAllScenariosSurvive(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep in -short mode")
	}
	rows, err := RunChaos(ChaosConfig{Params: Params{Scale: 1000, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("scenarios = %d, want 14 (8 classic + 2 resize + 2 jobs + 2 persist)", len(rows))
	}
	for _, r := range rows {
		if !r.Survived {
			t.Errorf("%s: survived=%v completed=%v correct=%v err=%q",
				r.Scenario, r.Survived, r.Completed, r.Correct, r.FinalErr)
		}
	}
	// Spot-check that the faults actually exercised the paths they target.
	byName := map[string]ChaosRow{}
	for _, r := range rows {
		byName[r.Scenario] = r
	}
	if r := byName["partition-abort"]; r.Counters[metrics.CtrMigrAborted] != 1 || r.Counters[metrics.CtrCkptRestores] != 1 {
		t.Errorf("partition-abort counters: %v", r.Counters)
	}
	if r := byName["crash-source-post-commit"]; r.Counters[metrics.CtrMigrCommitted] != 1 || r.Counters[metrics.CtrCkptRestores] != 1 {
		t.Errorf("crash-source-post-commit counters: %v", r.Counters)
	}
	if r := byName["registry-restart"]; r.Counters[metrics.CtrRegistryRestarts] != 1 ||
		r.Counters[metrics.CtrReregisters] != 4 || r.Counters[metrics.CtrProcResyncs] != 1 {
		t.Errorf("registry-restart counters: %v", r.Counters)
	}
	if r := byName["duplicate-order"]; r.Counters[metrics.CtrOrdersDeduped] != 2 || r.Counters[metrics.CtrMigrCommitted] != 1 {
		t.Errorf("duplicate-order counters: %v", r.Counters)
	}
	if r := byName["heartbeat-faults"]; r.Counters[metrics.CtrStatusDropped] != 2 ||
		r.Counters[metrics.CtrStatusDuplicated] != 2 || r.Counters[metrics.CtrStatusDelayed] != 1 {
		t.Errorf("heartbeat-faults counters: %v", r.Counters)
	}
	// The resize scenarios must take the exact paths they target: losing a
	// fresh rank mid-expand aborts the resize (the job finishes at the old
	// size), losing a victim mid-shrink after the drain still commits.
	if r := byName["resize-crash-new-rank"]; r.Counters[metrics.CtrResizeAborted] != 1 ||
		r.Counters[metrics.CtrResizeCommitted] != 0 {
		t.Errorf("resize-crash-new-rank counters: %v", r.Counters)
	}
	if r := byName["resize-crash-victim"]; r.Counters[metrics.CtrResizeCommitted] != 1 ||
		r.Counters[metrics.CtrRanksRetired] != 1 {
		t.Errorf("resize-crash-victim counters: %v", r.Counters)
	}
	// The jobs scenarios must take their exact paths too: killing a victim
	// rank mid-eviction-checkpoint still requeues and reruns the gang (one
	// rank resumes from its surviving image); crashing a reserved host
	// mid-gang-reserve poisons the reservation (Commit fails, the admission
	// replans) without orphaning a lease.
	if r := byName["jobs-kill-victim-mid-ckpt"]; r.Counters[metrics.CtrJobsRequeued] != 1 ||
		r.Counters[metrics.CtrJobsAdmitted] != 3 || r.Counters[metrics.CtrCkptRestores] != 1 ||
		r.Counters[metrics.CtrJobsReservations] != 0 {
		t.Errorf("jobs-kill-victim-mid-ckpt counters: %v", r.Counters)
	}
	if r := byName["jobs-crash-host-mid-reserve"]; r.Counters[metrics.CtrJobsReservations] != 1 ||
		r.Counters[metrics.CtrJobsRequeued] != 1 || r.Counters[metrics.CtrJobsAdmitted] != 3 {
		t.Errorf("jobs-crash-host-mid-reserve counters: %v", r.Counters)
	}
	// The persist scenarios must take the durable paths: every crash-loop
	// restart (three back to back, one more after the torn tail write) is a
	// crash-consistent recovery with zero monitor re-registrations and zero
	// process resyncs, and the standby promotion fences the primary exactly
	// once.
	if r := byName["registry-crashloop-under-load"]; r.Counters[metrics.CtrRegistryRestarts] != 4 ||
		r.Counters[metrics.CtrRegistryRecoveries] != 4 ||
		r.Counters[metrics.CtrReregisters] != 0 || r.Counters[metrics.CtrProcResyncs] != 0 {
		t.Errorf("registry-crashloop-under-load counters: %v", r.Counters)
	}
	if r := byName["registry-standby-promote"]; r.Counters[metrics.CtrStandbyPromotions] != 1 ||
		r.Counters[metrics.CtrReregisters] != 0 || r.Counters[metrics.CtrProcResyncs] != 0 {
		t.Errorf("registry-standby-promote counters: %v", r.Counters)
	}
}

// TestChaosJobsScenariosDeterministic runs both multi-job preemption-crash
// scenarios twice with the same seed and requires the deterministic report
// section to be byte-identical. It also pins the end-to-end behavior: the
// trap fired, the victim requeued and reran to a correct result, and no
// reservation marks were orphaned by the crash.
func TestChaosJobsScenariosDeterministic(t *testing.T) {
	cfg := ChaosConfig{
		Params:    Params{Scale: 1000, Seed: 5},
		Scenarios: []string{"jobs-kill-victim-mid-ckpt", "jobs-crash-host-mid-reserve"},
	}
	run := func() ([]ChaosRow, string) {
		rows, err := RunChaos(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rows, RenderChaosDeterministic(rows)
	}
	rows1, out1 := run()
	_, out2 := run()
	if out1 != out2 {
		t.Fatalf("deterministic sections differ:\n--- first\n%s\n--- second\n%s", out1, out2)
	}
	if len(rows1) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows1))
	}
	for _, r := range rows1 {
		if !r.Survived {
			t.Errorf("%s: survived=%v completed=%v correct=%v err=%q",
				r.Scenario, r.Survived, r.Completed, r.Correct, r.FinalErr)
		}
	}
	if !strings.Contains(out1, "trap kill-on-checkpoint proc=batch.0") ||
		!strings.Contains(out1, "trap kill-on-checkpoint proc=batch.1") {
		t.Fatalf("checkpoint traps not in schedule:\n%s", out1)
	}
	if strings.Count(out1, "check reservations-outstanding=0") != 2 {
		t.Fatalf("orphaned-lease checks missing:\n%s", out1)
	}
	if got := rows1[1].Counters[metrics.CtrJobsReservations]; got != 1 {
		t.Fatalf("reservations lost = %d, want 1 (Commit must fail on the crashed host)", got)
	}
}

// TestChaosPersistScenariosDeterministic runs both durable-control-plane
// scenarios twice with the same seed and requires the deterministic report
// section to be byte-identical. It also pins the end-to-end behavior: every
// crash-loop restart recovered from the store (no re-registration storm),
// the quiesced change log replays to the primary's exact final state, the
// deposed primary's gang commit was fenced, and the promoted standby
// re-admitted the gang exactly once.
func TestChaosPersistScenariosDeterministic(t *testing.T) {
	cfg := ChaosConfig{
		Params:    Params{Scale: 1000, Seed: 5},
		Scenarios: []string{"registry-crashloop-under-load", "registry-standby-promote"},
	}
	run := func() ([]ChaosRow, string) {
		rows, err := RunChaos(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rows, RenderChaosDeterministic(rows)
	}
	rows1, out1 := run()
	_, out2 := run()
	if out1 != out2 {
		t.Fatalf("deterministic sections differ:\n--- first\n%s\n--- second\n%s", out1, out2)
	}
	if len(rows1) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows1))
	}
	for _, r := range rows1 {
		if !r.Survived {
			t.Errorf("%s: survived=%v completed=%v correct=%v err=%q",
				r.Scenario, r.Survived, r.Completed, r.Correct, r.FinalErr)
		}
	}
	if n := strings.Count(out1, "recovered=true hosts=4 procs=1"); n != 4 {
		t.Fatalf("crash-consistent restarts in schedule = %d, want 4:\n%s", n, out1)
	}
	if !strings.Contains(out1, "check reregisters=0 proc-resyncs=0") {
		t.Fatalf("zero-re-registration check missing:\n%s", out1)
	}
	if !strings.Contains(out1, "check replay-digest-match=true") {
		t.Fatalf("replay digest check missing:\n%s", out1)
	}
	if !strings.Contains(out1, "check deposed-commit-fenced=true") ||
		!strings.Contains(out1, "check promoted-readmit ok=true") ||
		!strings.Contains(out1, "check promoted-reservations-outstanding=0") ||
		!strings.Contains(out1, "check promoted-digest-match=true") {
		t.Fatalf("standby promotion checks missing:\n%s", out1)
	}
	if got := rows1[0].Counters[metrics.CtrRegistryRecoveries]; got != 4 {
		t.Fatalf("recoveries = %d, want 4", got)
	}
	if got := rows1[1].Counters[metrics.CtrStandbyPromotions]; got != 1 {
		t.Fatalf("standby promotions = %d, want 1", got)
	}
}
