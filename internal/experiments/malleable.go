package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"autoresched/internal/malleable"
	"autoresched/internal/metrics"
	"autoresched/internal/mpi"
	"autoresched/internal/registry"
	"autoresched/internal/rules"
	"autoresched/internal/workload"
)

// MalleableConfig tunes the malleability experiment: the same elastic Jacobi
// job runs three times on an eight-host cluster under one seeded host-churn
// script — once at a fixed size, once with a migrate-only advisor (the world
// size is capped at the initial four, so resizes can only swap hosts), and
// once fully malleable (the job may grow onto freed hosts and shrink off
// reloaded ones). The completion-time ordering malleable <= migrate <= fixed
// is the headline: elasticity subsumes migration and beats it whenever spare
// capacity outnumbers the ranks worth moving.
type MalleableConfig struct {
	Params
	// Metrics, when set, accumulates every arm's registry (the cmd/repro
	// -metrics flag feeds from here).
	Metrics *metrics.Registry
}

// MalleableRow is one arm's outcome. Resizes, Committed, Aborted,
// FinalWorld, Completed and Correct depend only on the seed — the
// controller judges hosts by the churn script's own state, never by
// measured load, so its proposals are a pure function of the seed.
// VirtualSec and the span quantiles carry scheduling jitter (wall wake-up
// latency x Scale) and are reported as approximate.
type MalleableRow struct {
	Arm        string
	Completed  bool // settled before the virtual deadline
	Correct    bool // final checksum matched the serial reference bit-exactly
	FinalErr   string
	Resizes    []string // committed/aborted resize trajectory, event order
	Committed  int
	Aborted    int
	FinalWorld int
	Counters   map[string]int64
	Spans      []metrics.SpanStat
	VirtualSec float64 // approximate
}

// malleableCounterNames is the deterministic counter subset each arm
// reports.
var malleableCounterNames = []string{
	metrics.CtrResizeCommitted,
	metrics.CtrResizeAborted,
	metrics.CtrRanksSpawned,
	metrics.CtrRanksRetired,
}

// The churn script, in virtual seconds after launch. The job starts on
// ws1..ws4 while ws5..ws8 are loaded. At T1 the spares drain free and two
// seeded victims among the job's hosts overload; the controller reacts at
// T2 — the migrate arm swaps the victims for two spares, the malleable arm
// additionally grows onto the rest. At T3 one adopted spare (ws7) is
// reloaded, and at T4 the controller sheds it again (malleable arm only;
// the migrate arm never placed it).
const (
	churnT1 = 150 * time.Second
	churnT2 = 210 * time.Second
	churnT3 = 350 * time.Second
	churnT4 = 365 * time.Second
)

// RunMalleable runs the three arms. Scale defaults higher than the figure
// experiments (as in chaos): the outcomes hinge on the resize trajectory,
// not on rate fidelity.
func RunMalleable(cfg MalleableConfig) ([]MalleableRow, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1000
	}
	cfg.Params = cfg.Params.withDefaults()
	arms := []struct {
		name    string
		advisor *registry.ElasticAdvisor
	}{
		{"fixed", nil},
		// MaxWorld 4 = the initial size: the advisor can only swap hosts,
		// which is exactly a migration per swapped rank.
		{"migrate", &registry.ElasticAdvisor{MinWorld: 4, MaxWorld: 4}},
		{"malleable", &registry.ElasticAdvisor{MinWorld: 2, MaxWorld: 8}},
	}
	rows := make([]MalleableRow, 0, len(arms))
	for _, arm := range arms {
		row, err := runMalleableArm(cfg, arm.name, arm.advisor)
		if err != nil {
			return nil, fmt.Errorf("experiments: malleable %s: %w", arm.name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runMalleableArm(cfg MalleableConfig, arm string, advisor *registry.ElasticAdvisor) (MalleableRow, error) {
	cl, names, err := newCluster(cfg.Params, 8)
	if err != nil {
		return MalleableRow{}, err
	}
	clock := cl.Clock()
	ctr := metrics.NewCounters()
	mreg := metrics.NewRegistry()
	// Few, heavy steps: per-step compute (5.76 virtual seconds at the
	// initial world) dominates the per-step scheduling-jitter floor, so the
	// world-size speedup shows up in the completion times with a margin
	// well above the noise.
	app := &workload.ElasticJacobi{N: 48, Iters: 120, WorkPerCell: 10000}

	var mu sync.Mutex
	var resizes []string
	observer := func(ev malleable.Event) {
		if ev.Phase != malleable.PhaseResume && ev.Phase != malleable.PhaseAbort {
			return
		}
		// The poll-point step a resize lands on carries timing jitter, so
		// the line records the trajectory without it.
		line := fmt.Sprintf("%s epoch=%d %d->%d added=%v removed=%v",
			ev.Phase, ev.Epoch, ev.OldWorld, ev.NewWorld, ev.Added, ev.Removed)
		if ev.Err != "" {
			line += " err=" + ev.Err
		}
		mu.Lock()
		resizes = append(resizes, line)
		mu.Unlock()
	}

	u := mpi.NewUniverse(mpi.Options{
		Clock:        clock,
		Transport:    mpi.SimTransport{Net: cl.Net()},
		SpawnLatency: 300 * time.Millisecond,
		HostCheck:    cl.HostCheck,
	})
	job, err := malleable.Start(malleable.Options{
		Universe:     u,
		App:          app,
		Hosts:        cl,
		InitialHosts: names[:4],
		Observer:     observer,
		Metrics:      mreg,
		Counters:     ctr,
	})
	if err != nil {
		return MalleableRow{}, err
	}
	start := clock.Now()

	// Churn-script state. The controller builds its registry view from this
	// state rather than from measured load: the load generators make the
	// contention real (loaded ranks genuinely compute at a fraction of the
	// speed), while the resize decisions stay a pure function of the seed.
	loaded := make(map[string]bool)
	gens := make(map[string]*workload.LoadGen)
	var genSeq int64
	startGen := func(host string) {
		h, _ := cl.Host(host)
		genSeq++
		g := workload.NewLoadGen(h, workload.LoadOptions{
			Workers: 1, Duty: 1.0, Period: 5 * time.Second,
			Seed: cfg.Seed + 100 + genSeq, Name: "churn",
		})
		g.Start()
		gens[host] = g
		loaded[host] = true
	}
	stopGen := func(host string) {
		if g := gens[host]; g != nil {
			g.Stop()
			delete(gens, host)
		}
		delete(loaded, host)
	}
	tick := func() {
		if advisor == nil {
			return
		}
		placement := job.Placement()
		inPlace := make(map[string]bool, len(placement))
		for _, h := range placement {
			inPlace[h] = true
		}
		view := make([]registry.HostInfo, 0, len(names))
		for _, h := range names {
			st := rules.Free
			switch {
			case loaded[h]:
				st = rules.Overloaded
			case inPlace[h]:
				st = rules.Busy
			}
			view = append(view, registry.HostInfo{Name: h, State: st})
		}
		if target, ok := advisor.Advise(placement, view); ok {
			_ = job.Propose(target)
		}
	}

	// t=0: every spare is loaded; the job has nowhere to go.
	for _, h := range names[4:] {
		startGen(h)
	}
	// T1: the spares drain free, and two seeded victims among the job's
	// non-root hosts overload.
	clock.Sleep(churnT1)
	for _, h := range names[4:] {
		stopGen(h)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	victims := append([]string(nil), names[1:4]...)
	rng.Shuffle(len(victims), func(i, j int) { victims[i], victims[j] = victims[j], victims[i] })
	victims = victims[:2]
	sort.Strings(victims)
	for _, h := range victims {
		startGen(h)
	}
	// T2: the controller reacts to the churn.
	clock.Sleep(churnT2 - churnT1)
	tick()
	// T3: one adopted spare is reloaded; T4: the controller sheds it.
	clock.Sleep(churnT3 - churnT2)
	startGen(names[6])
	clock.Sleep(churnT4 - churnT3)
	tick()

	// Virtual-deadline watchdog: the fixed arm is the slowest by design and
	// finishes well inside an hour.
	completed := true
	watchdog := clock.NewTimer(time.Hour)
	select {
	case <-job.Done():
		watchdog.Stop()
	case <-watchdog.C:
		completed = false
		job.Stop()
	}
	result, werr := job.Wait()
	elapsed := clock.Since(start)
	for _, g := range gens {
		g.Stop()
	}

	committed, aborted := job.Resizes()
	mu.Lock()
	trajectory := append([]string(nil), resizes...)
	mu.Unlock()
	row := MalleableRow{
		Arm:        arm,
		Completed:  completed,
		Resizes:    trajectory,
		Committed:  committed,
		Aborted:    aborted,
		FinalWorld: job.World(),
		Counters:   make(map[string]int64, len(malleableCounterNames)),
		Spans:      mreg.SpanStats("malleable/"),
		VirtualSec: elapsed.Seconds(),
	}
	if werr != nil {
		row.FinalErr = werr.Error()
	}
	for _, name := range malleableCounterNames {
		row.Counters[name] = ctr.Get(name)
	}
	cfg.Metrics.Merge(mreg)
	if werr == nil {
		sum, cerr := workload.ElasticJacobiChecksum(result)
		_, want := workload.JacobiReference(workload.JacobiConfig{N: app.N, Iters: app.Iters})
		row.Correct = cerr == nil && sum == want
	}
	return row, nil
}

// RenderMalleableDeterministic prints the seed-reproducible part of the
// report: each arm's resize trajectory, outcome and counters. Two runs with
// the same seed produce byte-identical output.
func RenderMalleableDeterministic(rows []MalleableRow) string {
	var b strings.Builder
	b.WriteString("Malleability — resize trajectories and counters (deterministic per seed)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "arm %s\n", r.Arm)
		if len(r.Resizes) == 0 {
			b.WriteString("  resizes: none\n")
		}
		for _, line := range r.Resizes {
			fmt.Fprintf(&b, "  resize: %s\n", line)
		}
		fmt.Fprintf(&b, "  completed=%v correct=%v committed=%d aborted=%d final-world=%d\n",
			r.Completed, r.Correct, r.Committed, r.Aborted, r.FinalWorld)
		if r.FinalErr != "" {
			fmt.Fprintf(&b, "  error: %s\n", r.FinalErr)
		}
		names := make([]string, 0, len(r.Counters))
		for name := range r.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if v := r.Counters[name]; v != 0 {
				fmt.Fprintf(&b, "  %-28s %d\n", name, v)
			}
		}
		for _, st := range r.Spans {
			if st.Count == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %-28s n=%d\n", st.Name, st.Count)
		}
	}
	return b.String()
}

// RenderMalleable prints the full report: the deterministic section plus
// the completion times (whose ordering malleable <= migrate <= fixed is the
// experiment's claim) and the per-phase resize latency quantiles, both of
// which carry scheduling jitter.
func RenderMalleable(rows []MalleableRow) string {
	var b strings.Builder
	b.WriteString(RenderMalleableDeterministic(rows))
	b.WriteString("\ncompletion times (approximate)\n")
	b.WriteString("arm         virtual(s)  final-world  resizes\n")
	byArm := make(map[string]MalleableRow, len(rows))
	for _, r := range rows {
		byArm[r.Arm] = r
		fmt.Fprintf(&b, "%-11s %10.1f %12d %9d\n", r.Arm, r.VirtualSec, r.FinalWorld, r.Committed+r.Aborted)
	}
	ma, okM := byArm["malleable"]
	mi, okI := byArm["migrate"]
	fx, okF := byArm["fixed"]
	if okM && okI && okF {
		verdict := "OK"
		if !(ma.VirtualSec <= mi.VirtualSec && mi.VirtualSec <= fx.VirtualSec) {
			verdict = "VIOLATED"
		}
		fmt.Fprintf(&b, "\nordering: malleable %.1fs <= migrate %.1fs <= fixed %.1fs  [%s]\n",
			ma.VirtualSec, mi.VirtualSec, fx.VirtualSec, verdict)
	}
	b.WriteString("\nresize phases, measured (approximate: durations carry wall jitter x scale)\n")
	for _, r := range rows {
		for _, st := range r.Spans {
			if st.Count == 0 {
				continue
			}
			fmt.Fprintf(&b, "%-11s %-28s n=%-3d p50=%-8s p95=%-8s p99=%s\n",
				r.Arm, st.Name, st.Count, st.P50, st.P95, st.P99)
		}
	}
	return b.String()
}
