package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"autoresched/internal/core"
	"autoresched/internal/events"
	"autoresched/internal/faults"
	"autoresched/internal/hpcm"
	"autoresched/internal/jobs"
	"autoresched/internal/metrics"
	"autoresched/internal/workload"
)

// Jacobi configurations of the jobs-* scenario set. On three hosts the
// low-priority gang of two ("batch") runs long enough that the
// high-priority gang of two ("express", submitted at 45 s) finds only one
// free host and must preempt — its admission reserves a gang two-phase and
// evicts batch by checkpoint-and-requeue, which is the window the fault
// plans land their kills in.
var (
	jobsChaosBatchCfg   = workload.JacobiConfig{N: 16, Iters: 600, PollEvery: 5, WorkPerCell: 500}
	jobsChaosExpressCfg = workload.JacobiConfig{N: 16, Iters: 100, PollEvery: 5, WorkPerCell: 500}
)

// jobsChaosRank builds a rank factory for one scenario job: every rank runs
// an independent Jacobi solve with registered state (so eviction
// checkpoints carry real progress), and reports its final residual into
// finals for the correctness check.
func jobsChaosRank(job string, cfg workload.JacobiConfig, mu *sync.Mutex, finals map[string]float64) func(rank, gang int) hpcm.Main {
	return func(rank, gang int) hpcm.Main {
		jc := cfg
		name := jobs.RankName(job, rank, gang)
		jc.OnResidual = func(iter int, residual float64) {
			if iter != jc.Iters {
				return
			}
			mu.Lock()
			finals[name] = residual
			mu.Unlock()
		}
		return workload.Jacobi(jc)
	}
}

// splitRankName recovers (job, rank) from a gang rank's process name
// ("batch.1" -> "batch", 1); a name without a rank suffix is a single-rank
// job.
func splitRankName(proc string) (string, int) {
	i := strings.LastIndex(proc, ".")
	if i < 0 {
		return proc, 0
	}
	rank, err := strconv.Atoi(proc[i+1:])
	if err != nil {
		return proc, 0
	}
	return proc[:i], rank
}

// runJobsChaosScenario runs a jobs-* fault plan against the multi-job
// control plane: the plan's KindSubmitJob events feed the scenario's job
// set to core.Submit under a priority-preemptive policy, and
// KindKillOnCkpt arms a one-shot trap on the unified event sink's
// checkpoint-begin events — the exact instant a preemption victim is
// writing its eviction checkpoint. FailoverRetries is zero: rank recovery
// is the job layer's business (requeue and rerun), which is precisely what
// the scenarios assert survives the kills.
func runJobsChaosScenario(cfg ChaosConfig, sc chaosScenario) (ChaosRow, error) {
	cl, names, err := newCluster(cfg.Params, 3)
	if err != nil {
		return ChaosRow{}, err
	}
	clock := cl.Clock()
	ctr := metrics.NewCounters()
	mreg := metrics.NewRegistry()

	// The system pointer is published after New; the trap only fires from
	// the 40-second mark on.
	var sysMu sync.Mutex
	var sys *core.System
	getSys := func() *core.System {
		sysMu.Lock()
		defer sysMu.Unlock()
		return sys
	}

	var mu sync.Mutex
	var applied, triggered []string
	finals := make(map[string]float64)
	trap := struct {
		armed, fired bool
		proc, target string
	}{}
	sink := events.On(func(ev hpcm.CheckpointEvent) {
		if !ev.Begin {
			return
		}
		mu.Lock()
		if !trap.armed || trap.fired || ev.Proc != trap.proc {
			mu.Unlock()
			return
		}
		trap.fired = true
		target := trap.target
		triggered = append(triggered,
			fmt.Sprintf("trap kill-on-checkpoint proc=%s host=%s target=%s", ev.Proc, ev.Host, target))
		mu.Unlock()
		s := getSys()
		if target == "host" {
			// The whole host dies mid-write: the in-progress image is lost,
			// and the pending gang reservation holding this host is
			// poisoned — Commit must fail and roll back.
			_ = s.CrashHost(ev.Host)
			return
		}
		// Only the incarnation dies mid-write; the host stays up.
		job, rank := splitRankName(ev.Proc)
		if app, err := s.RankApp(job, rank); err == nil {
			app.Process().Kill()
		}
	})

	s, err := core.New(core.Options{
		Cluster:         cl,
		MonitorInterval: cfg.Interval,
		GatherCost:      0.05 * hostSpeed,
		Warmup:          2,
		Cooldown:        10 * time.Minute,
		RegistryHost:    names[2],
		ChunkBytes:      8 << 20,
		Checkpoints:     hpcm.NewMemStore(),
		Counters:        ctr,
		Metrics:         mreg,
		Events:          sink,
		JobPolicy:       jobs.PriorityPreemptive{},
		SchedInterval:   2 * time.Second,
	})
	if err != nil {
		return ChaosRow{}, err
	}
	if err := s.AddNodes(names...); err != nil {
		return ChaosRow{}, err
	}
	defer s.Stop()
	sysMu.Lock()
	sys = s
	sysMu.Unlock()

	// A couple of monitoring cycles so the registry has fresh leases for
	// its eligibility scans.
	clock.Sleep(25 * time.Second)

	specs := map[string]jobs.Spec{
		"batch":   {Name: "batch", Gang: 2, Priority: 0, Rank: jobsChaosRank("batch", jobsChaosBatchCfg, &mu, finals)},
		"express": {Name: "express", Gang: 2, Priority: 2, Rank: jobsChaosRank("express", jobsChaosExpressCfg, &mu, finals)},
	}
	start := clock.Now()

	// Fire the plan on the virtual clock, recording handles for the waits.
	var handleMu sync.Mutex
	var handles []*jobs.Job
	planDone := make(chan struct{})
	go func() {
		defer close(planDone)
		var prev time.Duration
		for _, ev := range sc.plan.Events {
			clock.Sleep(ev.After - prev)
			prev = ev.After
			line := ev.String()
			switch ev.Kind {
			case faults.KindSubmitJob:
				j, err := s.Submit(specs[ev.Proc])
				if err != nil {
					line += " (submit failed: " + err.Error() + ")"
				} else {
					handleMu.Lock()
					handles = append(handles, j)
					handleMu.Unlock()
				}
			case faults.KindKillOnCkpt:
				mu.Lock()
				trap.armed, trap.proc, trap.target = true, ev.Proc, ev.Target
				mu.Unlock()
			case faults.KindCrashHost:
				_ = s.CrashHost(ev.Host)
			default:
				// The remaining fault kinds are host/link-level faults this
				// driver does not model; note them in the digest untouched.
				line += " (not interpreted by the jobs-chaos driver)"
			}
			mu.Lock()
			applied = append(applied, line)
			mu.Unlock()
		}
	}()
	<-planDone
	handleMu.Lock()
	waiting := append([]*jobs.Job(nil), handles...)
	handleMu.Unlock()

	// Virtual-deadline watchdog, as in runChaosScenario: a job stuck in the
	// queue (or a wedged eviction) is a failed scenario, not a hung
	// experiment.
	settled := make(chan struct{})
	go func() {
		defer close(settled)
		for _, j := range waiting {
			<-j.Done()
		}
	}()
	completed := true
	watchdog := clock.NewTimer(30 * time.Minute)
	select {
	case <-settled:
		watchdog.Stop()
	case <-watchdog.C:
		completed = false
		// Cancel the survivors (repeatedly: a job mid-admission refuses
		// until it lands) so the run can be torn down cleanly.
		terminal := func(st jobs.State) bool {
			return st == jobs.StateCompleted || st == jobs.StateFailed || st == jobs.StateCancelled
		}
		for _, j := range waiting {
			for !terminal(j.State()) {
				_ = s.CancelJob(j.Name())
				clock.Sleep(200 * time.Millisecond)
			}
		}
		<-settled
	}
	elapsed := clock.Since(start)

	// The orphaned-lease check: every reservation taken during the run must
	// have been committed or rolled back by now, crash or no crash.
	reserved := s.Registry().Reserved()
	mu.Lock()
	triggered = append(triggered, fmt.Sprintf("check reservations-outstanding=%d", len(reserved)))
	schedule := append(append([]string(nil), applied...), triggered...)
	mu.Unlock()

	row := ChaosRow{
		Scenario:   sc.name,
		Completed:  completed,
		Schedule:   schedule,
		Counters:   make(map[string]int64, len(chaosCounterNames)),
		VirtualSec: elapsed.Seconds(),
	}
	var errs []string
	for _, j := range waiting {
		if err := j.Err(); err != nil {
			errs = append(errs, j.Name()+": "+err.Error())
		}
	}
	if len(reserved) > 0 {
		errs = append(errs, fmt.Sprintf("orphaned reservations: %v", reserved))
	}
	row.FinalErr = strings.Join(errs, "; ")
	for _, name := range chaosCounterNames {
		row.Counters[name] = ctr.Get(name)
	}
	row.Spans = mreg.SpanStats("span/")
	cfg.Metrics.Merge(mreg)

	// Correctness: all four ranks — the killed one included, whether it
	// resumed from an older image or cold-started — converged to the
	// reference residual.
	wantBatch, _ := workload.JacobiReference(jobsChaosBatchCfg)
	wantExpress, _ := workload.JacobiReference(jobsChaosExpressCfg)
	want := map[string]float64{
		jobs.RankName("batch", 0, 2):   wantBatch,
		jobs.RankName("batch", 1, 2):   wantBatch,
		jobs.RankName("express", 0, 2): wantExpress,
		jobs.RankName("express", 1, 2): wantExpress,
	}
	mu.Lock()
	row.Correct = len(waiting) == len(specs)
	for name, w := range want {
		if got, ok := finals[name]; !ok || got != w {
			row.Correct = false
		}
	}
	mu.Unlock()
	row.Survived = row.Completed && row.Correct && row.FinalErr == ""
	return row, nil
}
