package experiments

import (
	"strings"
	"testing"

	"autoresched/internal/livemig"
	"autoresched/internal/metrics"
)

// TestLivemigSweepDeterministicWithVisibleCrossover pins the acceptance
// properties of the downtime sweep: byte-identical renders, precopy downtime
// strictly below stop-and-copy whenever precopy converges, and a visible
// crossover (fallback engaging) on the slower links.
func TestLivemigSweepDeterministicWithVisibleCrossover(t *testing.T) {
	rows1 := RunLivemig(LivemigConfig{})
	rows2 := RunLivemig(LivemigConfig{})
	out1, out2 := RenderLivemig(rows1), RenderLivemig(rows2)
	if out1 != out2 {
		t.Fatalf("sweep not deterministic:\n--- first\n%s\n--- second\n%s", out1, out2)
	}

	fallbacks := 0
	for _, r := range rows1 {
		o := r.Outcome
		switch o.Mode {
		case "precopy":
			if o.Downtime >= o.StopCopy {
				t.Errorf("bw=%.0f rate=%.0f: precopy downtime %s not below stop-and-copy %s",
					r.Bandwidth, r.DirtyRate, o.Downtime, o.StopCopy)
			}
		case "fallback":
			fallbacks++
			if o.Downtime <= o.StopCopy {
				t.Errorf("bw=%.0f rate=%.0f: fallback downtime %s should exceed the plain stop-and-copy %s",
					r.Bandwidth, r.DirtyRate, o.Downtime, o.StopCopy)
			}
		default:
			t.Errorf("bw=%.0f rate=%.0f: unknown mode %q", r.Bandwidth, r.DirtyRate, o.Mode)
		}
	}
	if fallbacks == 0 {
		t.Error("no crossover anywhere in the sweep: fallback never engaged")
	}
	if !strings.Contains(out1, "crossover at") {
		t.Errorf("crossover not called out in render:\n%s", out1)
	}

	// Downtime is monotone non-decreasing in dirty rate within one link while
	// the mode stays precopy and the round count stays put; the cheap global
	// property worth pinning is that a zero dirty rate freezes after round 1
	// with an empty residual on every link.
	for _, r := range rows1 {
		if r.DirtyRate == 0 && (r.Outcome.Rounds != 1 || r.Outcome.PagesResent != 0) {
			t.Errorf("bw=%.0f rate=0: rounds=%d resent=%d, want a single clean round",
				r.Bandwidth, r.Outcome.Rounds, r.Outcome.PagesResent)
		}
	}
}

func TestLivemigSweepFeedsMetrics(t *testing.T) {
	mreg := metrics.NewRegistry()
	rows := RunLivemig(LivemigConfig{Metrics: mreg})
	h := mreg.Histogram("livemig/model_downtime_seconds")
	if got, want := h.Count(), uint64(len(rows)); got != want {
		t.Fatalf("downtime observations = %d, want %d", got, want)
	}
}

// TestChaosAllScenariosSurviveWithLiveMigration re-runs the full chaos sweep
// with the live path enabled: the tree carries a paged ballast, every
// migrate order attempts iterative precopy, and the extra ninth scenario
// kills the destination right after the first precopy round. Every scenario
// must still settle with correct checksums.
func TestChaosAllScenariosSurviveWithLiveMigration(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep in -short mode")
	}
	rows, err := RunChaos(ChaosConfig{
		Params: Params{Scale: 1000, Seed: 3},
		Live:   &livemig.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("scenarios = %d, want 15 (8 classic + crash-dest-mid-precopy + 2 resize + 2 jobs + 2 persist)", len(rows))
	}
	byName := map[string]ChaosRow{}
	for _, r := range rows {
		byName[r.Scenario] = r
		if !r.Survived {
			t.Errorf("%s: survived=%v completed=%v correct=%v err=%q",
				r.Scenario, r.Survived, r.Completed, r.Correct, r.FinalErr)
		}
	}
	r, ok := byName["crash-dest-mid-precopy"]
	if !ok {
		t.Fatal("crash-dest-mid-precopy scenario missing")
	}
	if r.Counters[metrics.CtrMigrAborted] != 1 || r.Counters[metrics.CtrCkptRestores] != 1 {
		t.Errorf("crash-dest-mid-precopy counters: %v", r.Counters)
	}
	if r.Retries != 1 {
		t.Errorf("crash-dest-mid-precopy retries = %d, want 1", r.Retries)
	}
	found := false
	for _, line := range r.Schedule {
		if strings.Contains(line, "trap crash-host host=ws2") {
			found = true
		}
	}
	if !found {
		t.Errorf("mid-precopy trap never fired; schedule: %v", r.Schedule)
	}
}
