package experiments

import (
	"fmt"
	"strings"
	"time"

	"autoresched/internal/core"
	"autoresched/internal/metrics"
	"autoresched/internal/monitor"
	"autoresched/internal/workload"
)

// OverheadResult holds the Figure 5 and Figure 6 reproduction: the observed
// workstation's series with and without the rescheduler, plus the summary
// numbers Section 5.1 quotes.
type OverheadResult struct {
	// Recorder holds the observed workstation's series from the
	// with-rescheduler arm; WithoutRecorder holds the baseline arm. Series
	// names: ws2/load1, ws2/load5, ws2/cpu, ws2/sentKBs, ws2/recvKBs.
	Recorder        *metrics.Recorder
	WithoutRecorder *metrics.Recorder
	// Metrics is the with-rescheduler arm's metrics registry; its
	// monitor/cycle_seconds histogram quantifies the per-cycle cost the
	// overhead percentages aggregate.
	Metrics *metrics.Registry

	// Figure 5 summaries.
	Load1With, Load1Without float64
	Load5With, Load5Without float64
	CPUWith, CPUWithout     float64
	Load1OverheadPct        float64
	Load5OverheadPct        float64
	CPUOverheadPct          float64
	// Figure 6 summaries (KB/s).
	SentWith, SentWithout float64
	RecvWith, RecvWithout float64
	SentOverheadPct       float64
	RecvOverheadPct       float64
}

// OverheadConfig tunes the Figure 5/6 scenario.
type OverheadConfig struct {
	Params
	// Duration is the measured window; zero selects 20 virtual minutes
	// (120 samples at 10 s).
	Duration time.Duration
	// GatherCost is the CPU cost of one monitoring cycle; zero selects
	// 0.1 s of CPU (1% duty at a 10 s interval — the source of the
	// paper's ~4% load overhead on a ~0.25 baseline).
	GatherCost float64
}

// RunOverhead reproduces Figures 5 and 6: one workstation carries the
// registry/scheduler, a second carries a baseline load (~0.25) and baseline
// communication (~6 KB/s each way); the second workstation is observed for
// Duration with and without the rescheduler deployed.
func RunOverhead(cfg OverheadConfig) (*OverheadResult, error) {
	cfg.Params = cfg.Params.withDefaults()
	if cfg.Duration <= 0 {
		cfg.Duration = 20 * time.Minute
	}
	if cfg.GatherCost <= 0 {
		cfg.GatherCost = 0.1 * hostSpeed
	}

	res := &OverheadResult{}
	var recs [2]*metrics.Recorder
	for i, withRescheduler := range []bool{false, true} {
		rec, mreg, err := runOverheadArm(cfg, withRescheduler)
		if err != nil {
			return nil, err
		}
		recs[i] = rec
		if withRescheduler {
			res.Metrics = mreg
		}
	}
	res.Recorder = recs[1]
	res.WithoutRecorder = recs[0]

	get := func(rec *metrics.Recorder, name string) float64 {
		return rec.Series(name).Mean()
	}
	res.Load1Without = get(recs[0], "ws2/load1")
	res.Load1With = get(recs[1], "ws2/load1")
	res.Load5Without = get(recs[0], "ws2/load5")
	res.Load5With = get(recs[1], "ws2/load5")
	res.CPUWithout = get(recs[0], "ws2/cpu")
	res.CPUWith = get(recs[1], "ws2/cpu")
	res.SentWithout = get(recs[0], "ws2/sentKBs")
	res.SentWith = get(recs[1], "ws2/sentKBs")
	res.RecvWithout = get(recs[0], "ws2/recvKBs")
	res.RecvWith = get(recs[1], "ws2/recvKBs")
	res.Load1OverheadPct = metrics.OverheadPct(res.Load1With, res.Load1Without)
	res.Load5OverheadPct = metrics.OverheadPct(res.Load5With, res.Load5Without)
	res.CPUOverheadPct = metrics.OverheadPct(res.CPUWith, res.CPUWithout)
	res.SentOverheadPct = metrics.OverheadPct(res.SentWith, res.SentWithout)
	res.RecvOverheadPct = metrics.OverheadPct(res.RecvWith, res.RecvWithout)
	return res, nil
}

// runOverheadArm runs one arm of the experiment. The returned registry is
// non-nil only for the with-rescheduler arm.
func runOverheadArm(cfg OverheadConfig, withRescheduler bool) (*metrics.Recorder, *metrics.Registry, error) {
	cl, names, err := newCluster(cfg.Params, 2)
	if err != nil {
		return nil, nil, err
	}
	clock := cl.Clock()
	rec := metrics.NewRecorder(clock)

	// Baseline load (~0.25) on the observed workstation, like the paper's
	// lightly loaded Sun Blade.
	ws2, _ := cl.Host("ws2")
	load := workload.NewLoadGen(ws2, workload.LoadOptions{
		Workers: 1, Duty: 0.25, Period: 8 * time.Second, Seed: cfg.Seed + 2,
	})
	load.Start()
	defer load.Stop()
	// Baseline communication: ~5.8 KB/s out, ~6.0 KB/s in.
	out := workload.NewCommLoad(clock, cl.Net(), "ws2", "ws1",
		workload.CommOptions{Rate: 5.8e3, Chunk: 58e3})
	in := workload.NewCommLoad(clock, cl.Net(), "ws1", "ws2",
		workload.CommOptions{Rate: 6.0e3, Chunk: 60e3})
	out.Start()
	in.Start()
	defer out.Stop()
	defer in.Stop()

	var sys *core.System
	var mreg *metrics.Registry
	if withRescheduler {
		mreg = metrics.NewRegistry()
		sys, err = core.New(core.Options{
			Cluster:         cl,
			MonitorInterval: cfg.Interval,
			GatherCost:      cfg.GatherCost,
			RegistryHost:    names[0],
			Metrics:         mreg,
		})
		if err != nil {
			return nil, nil, err
		}
		if err := sys.AddNodes(names...); err != nil {
			return nil, nil, err
		}
		defer sys.Stop()
	}

	// Let load averages settle before measuring.
	clock.Sleep(3 * time.Minute)
	s := newSampler(rec, cl, "ws2", "ws2", cfg.Interval)
	clock.Sleep(cfg.Duration)
	s.Stop()
	return rec, mreg, nil
}

// Render prints the Figure 5/6 reproduction as text.
func (r *OverheadResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — rescheduler overhead (observed workstation)\n")
	fmt.Fprintf(&b, "  1-min load average: %.3f with, %.3f without  => overhead %.1f%%\n",
		r.Load1With, r.Load1Without, r.Load1OverheadPct)
	fmt.Fprintf(&b, "  5-min load average: %.3f with, %.3f without  => overhead %.1f%%\n",
		r.Load5With, r.Load5Without, r.Load5OverheadPct)
	fmt.Fprintf(&b, "  CPU utilisation:    %.2f%% with, %.2f%% without => overhead %.1f%%\n",
		r.CPUWith, r.CPUWithout, r.CPUOverheadPct)
	fmt.Fprintf(&b, "Figure 6 — communication\n")
	fmt.Fprintf(&b, "  send: %.2f KB/s with, %.2f KB/s without => overhead %.1f%%\n",
		r.SentWith, r.SentWithout, r.SentOverheadPct)
	fmt.Fprintf(&b, "  recv: %.2f KB/s with, %.2f KB/s without => overhead %.1f%%\n",
		r.RecvWith, r.RecvWithout, r.RecvOverheadPct)
	if r.Recorder != nil {
		fmt.Fprintf(&b, "  load1 (with):    %s\n", metrics.Sparkline(r.Recorder.Series("ws2/load1")))
	}
	if r.WithoutRecorder != nil {
		fmt.Fprintf(&b, "  load1 (without): %s\n", metrics.Sparkline(r.WithoutRecorder.Series("ws2/load1")))
	}
	if r.Metrics != nil {
		if h := r.Metrics.Histogram(monitor.MetricCycleSeconds); h.Count() > 0 {
			fmt.Fprintf(&b, "  monitoring cycle (virtual): n=%d p50=%s p95=%s p99=%s\n",
				h.Count(), metrics.FormatSeconds(h.Quantile(0.50)),
				metrics.FormatSeconds(h.Quantile(0.95)), metrics.FormatSeconds(h.Quantile(0.99)))
		}
	}
	return b.String()
}
