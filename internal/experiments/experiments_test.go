package experiments

import (
	"strings"
	"testing"
	"time"
)

// The experiment tests assert the SHAPE of the paper's results — who wins,
// what order phases happen in, roughly what factors separate the policies —
// on shortened runs. The full-length runs live behind cmd/repro and the
// benchmarks.

func TestOverheadShape(t *testing.T) {
	res, err := RunOverhead(OverheadConfig{
		Params:   Params{Scale: 200, Seed: 1},
		Duration: 8 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Baseline load is the paper's lightly loaded workstation (~0.25).
	if res.Load1Without < 0.1 || res.Load1Without > 0.5 {
		t.Fatalf("baseline load1 = %v, want ~0.25", res.Load1Without)
	}
	// The rescheduler costs something, but stays small (paper: < 4%%...
	// allow up to 25%% on these short noisy runs).
	if res.Load1With < res.Load1Without*0.9 {
		t.Fatalf("load with rescheduler (%v) below baseline (%v)", res.Load1With, res.Load1Without)
	}
	if res.Load1OverheadPct > 25 {
		t.Fatalf("load overhead = %v%%, want small", res.Load1OverheadPct)
	}
	if res.CPUOverheadPct > 25 || res.CPUOverheadPct < -10 {
		t.Fatalf("cpu overhead = %v%%", res.CPUOverheadPct)
	}
	// Communication overhead is ~zero (paper: "almost no overhead").
	if res.SentOverheadPct > 15 || res.RecvOverheadPct > 15 {
		t.Fatalf("comm overhead = %v%% / %v%%", res.SentOverheadPct, res.RecvOverheadPct)
	}
	// Baseline communication is in the right ballpark (~6 KB/s).
	if res.SentWithout < 2 || res.SentWithout > 12 {
		t.Fatalf("baseline send = %v KB/s, want ~5.8", res.SentWithout)
	}
	out := res.Render()
	for _, frag := range []string{"Figure 5", "Figure 6", "overhead"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestEfficiencyShape(t *testing.T) {
	// Scale 100: virtual-time distortion from wall-clock contention stays
	// small even when the whole test suite runs in parallel.
	res, err := RunEfficiency(EfficiencyConfig{
		Params:    Params{Scale: 100, Seed: 2},
		AppStart:  60 * time.Second,
		LoadStart: 120 * time.Second,
		Warmup:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Phase ordering of Section 5.2.
	if !(res.LoadStart < res.CommandAt && res.CommandAt <= res.PollPointAt &&
		res.PollPointAt < res.InitDone && res.InitDone < res.ResumeAt &&
		res.ResumeAt <= res.RestoreDone && res.RestoreDone < res.AppDone) {
		t.Fatalf("phase ordering broken: %+v", res)
	}
	// The reaction is damped (the paper's 72 s with warmup 7; here warmup 3
	// at 10 s monitoring means at least ~20 s).
	if res.ReactionTime < 15*time.Second {
		t.Fatalf("reaction = %v, want damped (>15s)", res.ReactionTime)
	}
	// The spawn phase reflects the LAM-like latency (~0.3 s).
	if res.InitTime < 200*time.Millisecond || res.InitTime > 3*time.Second {
		t.Fatalf("init = %v, want ~0.3s", res.InitTime)
	}
	// Migration completes in seconds, not minutes (paper: 7.5 s). The
	// bound is generous because wall-clock contention from concurrently
	// running test binaries inflates virtual time at this scale.
	if res.MigrationTime < time.Second || res.MigrationTime > 75*time.Second {
		t.Fatalf("migration = %v, want seconds not minutes", res.MigrationTime)
	}
	// Restoration overlaps execution: resume strictly before restore done.
	if !res.Record.ResumeAt.Before(res.Record.RestoreDone) {
		t.Fatalf("no restore/execute overlap: %+v", res.Record)
	}
	// Figure 7's shape: ws2 goes from idle to busy across the migration.
	// Absolute utilisation is depressed by wall-clock contention when the
	// whole suite runs in parallel, so compare before against after.
	migrated := res.Record.RestoreDone
	started := res.Recorder.Start().Add(res.AppStart)
	cpu2Before := res.Recorder.Series("ws2/cpu").Window(started, migrated)
	cpu2After := res.Recorder.Series("ws2/cpu").Window(migrated.Add(time.Minute), migrated.Add(10*time.Minute))
	if len(cpu2After.Points) == 0 {
		t.Fatal("no post-migration samples on ws2")
	}
	if after, before := cpu2After.Mean(), cpu2Before.Mean(); after < 30 || after < before+20 {
		t.Fatalf("ws2 cpu: before=%v%% after=%v%%, want a clear jump (app runs there)", before, after)
	}
	out := res.Render()
	if !strings.Contains(out, "migration decision") {
		t.Fatalf("render:\n%s", out)
	}
}

// TestFalseMigrationDamping: a short load burst must fool a warmup-1
// scheduler into a pointless migration, and must NOT fool a well-damped
// one — the Section 5.2 rationale for the reaction delay.
func TestFalseMigrationDamping(t *testing.T) {
	hasty, err := RunFalseMigration(FalseMigrationConfig{
		Params: Params{Scale: 200, Seed: 5},
		Warmup: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !hasty.FalseMove {
		t.Fatalf("warmup 1 did not produce the false migration: %+v", hasty)
	}
	damped, err := RunFalseMigration(FalseMigrationConfig{
		Params: Params{Scale: 200, Seed: 5},
		Warmup: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if damped.FalseMove {
		t.Fatalf("warmup 7 migrated on a transient: %+v", damped)
	}
}

func TestPoliciesShape(t *testing.T) {
	rows, err := RunPolicies(PoliciesConfig{
		Params: Params{Scale: 100, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	p1, p2, p3 := rows[0], rows[1], rows[2]
	// Policy 1 never migrates and is slowest.
	if p1.MigrateTo != "-" || p1.MigrationSec != 0 {
		t.Fatalf("policy1 = %+v", p1)
	}
	// Policy 2, blind to communication, picks the communicating ws2
	// (registered first and under the load threshold).
	if p2.MigrateTo != "ws2" {
		t.Fatalf("policy2 migrated to %s, want ws2", p2.MigrateTo)
	}
	// Policy 3 skips ws2 (communication) and ws3 (load), picks free ws4.
	if p3.MigrateTo != "ws4" {
		t.Fatalf("policy3 migrated to %s, want ws4", p3.MigrateTo)
	}
	// Completion-time ordering: policy3 < policy2 < policy1, with policy1
	// substantially slower (paper: 983.6 vs 433.27 vs 329.71).
	if !(p3.TotalSec < p2.TotalSec && p2.TotalSec < p1.TotalSec) {
		t.Fatalf("ordering broken: p1=%v p2=%v p3=%v", p1.TotalSec, p2.TotalSec, p3.TotalSec)
	}
	if p1.TotalSec < 1.5*p3.TotalSec {
		t.Fatalf("no-migration run only %.1fx slower, want >1.5x", p1.TotalSec/p3.TotalSec)
	}
	// The application runs substantially slower on the communicating ws2
	// than on the free ws4 (paper: 199 s vs 115 s on the destination) —
	// the protocol-processing CPU cost, a large and noise-proof margin.
	if p2.DestSec < p3.DestSec*1.15 {
		t.Fatalf("dest times: p2=%v p3=%v, want p2 clearly slower on the communicating host",
			p2.DestSec, p3.DestSec)
	}
	// Both migrations moved real state. The migration-time ordering of the
	// paper (8.31 s into the communicating host vs 6.71 s into the free
	// one) rests on fair-share NIC contention; wall-clock jitter at this
	// compression can exceed that gap, so the ordering itself is pinned by
	// the low-noise TestTransferSlowerIntoCommBusyHost and by the
	// canonical cmd/repro run recorded in EXPERIMENTS.md.
	if p2.TransferSec <= 0 || p3.TransferSec <= 0 {
		t.Fatalf("transfer times: p2=%v p3=%v", p2.TransferSec, p3.TransferSec)
	}
	out := RenderPolicies(rows)
	if !strings.Contains(out, "policy3") || !strings.Contains(out, "ws4") {
		t.Fatalf("render:\n%s", out)
	}
}
