package experiments

import "testing"

// BenchmarkScale64 times one whole 64-host sweep — cluster build, 64
// monitors heartbeating through the batcher, four checksummed tree apps,
// churn, injected overloads, and the resulting migrations. One iteration is
// one sweep; ns/op is end-to-end wall time for the paper-sized cluster.
func BenchmarkScale64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunScale(ScaleConfig{Params: Params{Seed: 42}, Hosts: []int{64}})
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].Completed != rows[0].Apps || !rows[0].Correct {
			b.Fatalf("sweep degraded: %+v", rows[0])
		}
	}
}
