package experiments

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"autoresched/internal/core"
	"autoresched/internal/events"
	"autoresched/internal/faults"
	"autoresched/internal/hpcm"
	"autoresched/internal/metrics"
	"autoresched/internal/persist"
	"autoresched/internal/registry"
	"autoresched/internal/workload"
)

// persistChaosRun is the shared rig of the registry-crashloop-* and
// registry-standby-* scenarios: the classic four-host tree workload, but
// with the registry journaling every mutation to a persist.MemStore so a
// restart is a crash-consistent bootstrap instead of a soft-state drop.
type persistChaosRun struct {
	sys    *core.System
	store  *persist.MemStore
	ctr    *metrics.Counters
	mreg   *metrics.Registry
	in     *faults.Injector
	app    *core.App
	tree   workload.TreeConfig
	sums   map[int]int64
	mu     *sync.Mutex
	checks *[]string
	start  time.Time
}

// newPersistChaosRun builds the durable-registry system, launches the tree
// workload and warms the monitors. The unified event sink records every
// registry restart's typed payload into the check log: Recovered, Hosts and
// Procs are count-driven (never wall-time-driven), so the lines are
// byte-identical across runs with the same seed.
func newPersistChaosRun(cfg ChaosConfig) (*persistChaosRun, error) {
	cl, names, err := newCluster(cfg.Params, 4)
	if err != nil {
		return nil, err
	}
	clock := cl.Clock()
	ctr := metrics.NewCounters()
	mreg := metrics.NewRegistry()
	store := persist.NewMemStore()

	var mu sync.Mutex
	checks := []string{}
	restarts := 0
	sink := events.On(func(ev registry.RestartEvent) {
		mu.Lock()
		restarts++
		checks = append(checks, fmt.Sprintf(
			"check restart-%d recovered=%v hosts=%d procs=%d domains=%d",
			restarts, ev.Recovered, ev.Hosts, ev.Procs, ev.Domains))
		mu.Unlock()
	})

	in := faults.NewInjector(faults.Config{Clock: clock, Counters: ctr})
	sys, err := core.New(core.Options{
		Cluster:          cl,
		MonitorInterval:  cfg.Interval,
		GatherCost:       0.05 * hostSpeed,
		Warmup:           2,
		Cooldown:         10 * time.Minute,
		RegistryHost:     names[3],
		ChunkBytes:       8 << 20,
		Checkpoints:      hpcm.NewMemStore(),
		CheckpointEvery:  30 * time.Second,
		FailoverRetries:  2,
		OrderDedupWindow: 30 * time.Second,
		Counters:         ctr,
		Metrics:          mreg,
		Events:           sink,
		Observer:         in.Observer(),
		WrapReporter:     in.WrapReporter,
		Store:            store,
		SnapshotEvery:    64,
	})
	if err != nil {
		return nil, err
	}
	if err := sys.AddNodes(names...); err != nil {
		return nil, err
	}
	in.Bind(sys)

	// A couple of monitoring cycles so the registry has fresh samples (and
	// the change log a realistic prefix) before the faults land.
	clock.Sleep(25 * time.Second)

	tree := workload.TreeConfig{
		Levels: 10, Rounds: 40, Seed: cfg.Seed + 1,
		WorkPerNode: 600, BytesPerNode: 8,
	}
	sums := map[int]int64{}
	tree.OnSum = func(round int, sum int64) {
		mu.Lock()
		sums[round] = sum
		mu.Unlock()
	}
	app, err := sys.Launch(chaosApp, "ws1", tree.Schema(hostSpeed), workload.TestTree(tree))
	if err != nil {
		sys.Stop()
		return nil, err
	}
	in.BindApp(chaosApp, app)
	return &persistChaosRun{
		sys: sys, store: store, ctr: ctr, mreg: mreg, in: in, app: app,
		tree: tree, sums: sums, mu: &mu, checks: &checks, start: clock.Now(),
	}, nil
}

// await runs the virtual-deadline watchdog from runChaosScenario: a hung
// scenario is a failed scenario, not a hung experiment.
func (p *persistChaosRun) await() bool {
	clock := p.sys.Clock()
	completed := true
	watchdog := clock.NewTimer(30 * time.Minute)
	select {
	case <-p.app.Settled():
		watchdog.Stop()
	case <-watchdog.C:
		completed = false
		for settled := false; !settled; {
			p.app.Process().Kill()
			select {
			case <-p.app.Settled():
				settled = true
			case <-clock.After(100 * time.Millisecond):
			}
		}
	}
	return completed
}

// check appends one deterministic assertion line to the schedule digest.
func (p *persistChaosRun) check(format string, args ...any) {
	p.mu.Lock()
	*p.checks = append(*p.checks, "check "+fmt.Sprintf(format, args...))
	p.mu.Unlock()
}

// row assembles the ChaosRow after the injector has stopped and the final
// checks have been appended.
func (p *persistChaosRun) row(cfg ChaosConfig, sc chaosScenario, completed bool, extra []string) ChaosRow {
	clock := p.sys.Clock()
	elapsed := clock.Since(p.start)
	p.mu.Lock()
	checks := append([]string(nil), *p.checks...)
	p.mu.Unlock()
	schedule := append(p.in.Applied(), p.in.Triggered()...)
	schedule = append(schedule, extra...)
	schedule = append(schedule, checks...)
	row := ChaosRow{
		Scenario:    sc.name,
		Completed:   completed,
		FinalHost:   p.app.Host(),
		Checkpoints: p.app.Process().Checkpoints(),
		Retries:     p.app.Retries(),
		Schedule:    schedule,
		Counters:    make(map[string]int64, len(chaosCounterNames)),
		VirtualSec:  elapsed.Seconds(),
	}
	if err := p.app.Wait(); err != nil {
		row.FinalErr = err.Error()
	}
	for _, name := range chaosCounterNames {
		row.Counters[name] = p.ctr.Get(name)
	}
	row.Spans = p.mreg.SpanStats("span/")
	cfg.Metrics.Merge(p.mreg)
	want := workload.ExpectedSums(p.tree)
	p.mu.Lock()
	row.Correct = len(p.sums) == p.tree.Rounds
	for round, sum := range want {
		if p.sums[round] != sum {
			row.Correct = false
		}
	}
	p.mu.Unlock()
	row.Survived = row.Completed && row.Correct && row.FinalErr == ""
	return row
}

// runPersistCrashloopScenario runs the registry-crashloop-* plans through
// the fault injector: the parent crash-loops under job load (and once more
// after a torn tail write), and every restart must be a crash-consistent
// recovery — zero monitor re-registrations, zero process resyncs, and a
// change log that a cold replica replays to the primary's exact final state.
func runPersistCrashloopScenario(cfg ChaosConfig, sc chaosScenario) (ChaosRow, error) {
	p, err := newPersistChaosRun(cfg)
	if err != nil {
		return ChaosRow{}, err
	}
	defer p.sys.Stop()
	p.in.Run(sc.plan)
	completed := p.await()
	p.in.Stop()

	// Quiesce before the replay check: Stop unregisters the hosts through
	// the monitors, so the log is final and the comparison race-free.
	p.sys.Stop()
	p.check("reregisters=%d proc-resyncs=%d",
		p.ctr.Get(metrics.CtrReregisters), p.ctr.Get(metrics.CtrProcResyncs))
	replica, err := registry.NewStandby(p.store)
	if err != nil {
		return ChaosRow{}, err
	}
	p.check("replay-digest-match=%v",
		replica.Registry().StateDigest() == p.sys.Registry().StateDigest())
	return p.row(cfg, sc, completed, nil), nil
}

// runPersistStandbyScenario drives the warm-standby HA drill: a standby
// replica follows the primary's change log; mid-run the primary takes a gang
// reservation, the standby promotes (fencing the primary's epoch in the
// store), and the scenario asserts the deposed primary cannot commit the
// pending gang while the promoted replica — whose presumed-abort pass
// released it — admits the same hosts exactly once. The fault plan is empty:
// the runner drives the control-plane sequence itself at fixed virtual
// offsets, mirroring the jobs-chaos driver.
func runPersistStandbyScenario(cfg ChaosConfig, sc chaosScenario) (ChaosRow, error) {
	p, err := newPersistChaosRun(cfg)
	if err != nil {
		return ChaosRow{}, err
	}
	defer p.sys.Stop()
	clock := p.sys.Clock()

	// The standby shares the cluster's virtual clock: its lease-expiry view
	// of the replayed LastSeen stamps must match the primary's.
	standby, err := registry.NewStandby(p.store,
		registry.WithClock(clock), registry.WithCounters(p.ctr))
	if err != nil {
		return ChaosRow{}, err
	}

	var mu sync.Mutex
	var applied []string
	note := func(format string, args ...any) {
		mu.Lock()
		applied = append(applied, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	planDone := make(chan struct{})
	go func() {
		defer close(planDone)
		clock.Sleep(40 * time.Second)
		res, err := p.sys.Registry().ReserveHosts([]string{"ws2", "ws3"})
		note("+40s    reserve-gang     hosts=ws2,ws3 ok=%v", err == nil)
		clock.Sleep(20 * time.Second)
		promoted, err := standby.Promote()
		note("+60s    promote-standby  ok=%v", err == nil)
		if err != nil {
			return
		}
		// The deposed primary's two-phase commit must be refused by the
		// store's epoch fence — the no-double-admission guarantee.
		if res != nil {
			err := res.Commit()
			p.check("deposed-commit-fenced=%v", errors.Is(err, persist.ErrFenced))
		}
		// The promoted replica presumed the in-flight gang aborted, so the
		// same hosts admit again — exactly once, with no orphaned lease.
		res2, err := promoted.ReserveHosts([]string{"ws2", "ws3"})
		if err == nil {
			err = res2.Commit()
		}
		p.check("promoted-readmit ok=%v", err == nil)
		p.check("promoted-reservations-outstanding=%d", len(promoted.Reserved()))

		// The fence froze the deposed primary (every mutation appends before
		// it applies), so the change log is final from the promotion on: a
		// cold replica must replay to the promoted registry's exact state.
		replica, err := registry.NewStandby(p.store)
		if err != nil {
			p.check("promoted-digest-match=error")
			return
		}
		p.check("promoted-digest-match=%v",
			replica.Registry().StateDigest() == promoted.StateDigest())
	}()
	<-planDone

	completed := p.await()
	p.in.Stop()
	p.check("reregisters=%d proc-resyncs=%d",
		p.ctr.Get(metrics.CtrReregisters), p.ctr.Get(metrics.CtrProcResyncs))
	mu.Lock()
	extra := append([]string(nil), applied...)
	mu.Unlock()
	return p.row(cfg, sc, completed, extra), nil
}
