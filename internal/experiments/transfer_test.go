package experiments

import (
	"sync"
	"testing"
	"time"

	"autoresched/internal/hpcm"
	"autoresched/internal/mpi"
	"autoresched/internal/simnet"
	"autoresched/internal/vclock"
)

// migrateStateInto measures one migration's state-transfer time (resume to
// restoration complete) into dest, at a low clock compression so wall-clock
// jitter stays far below the fair-share contention effect.
func migrateStateInto(t *testing.T, withBusyFlow bool) time.Duration {
	t.Helper()
	clock := vclock.Scaled(vclock.Epoch, 25)
	net := simnet.New(clock, simnet.Options{DefaultBandwidth: 12.5e6})
	for _, h := range []string{"src", "dst", "peer"} {
		if err := net.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	u := mpi.NewUniverse(mpi.Options{
		Clock:        clock,
		Transport:    mpi.SimTransport{Net: net},
		SpawnLatency: 300 * time.Millisecond,
	})
	mw, err := hpcm.New(hpcm.Options{Universe: u, ChunkBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}

	// Optionally saturate dst's receive path with back-to-back transfers
	// from peer, the Table 2 workstation-5 role.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	if withBusyFlow {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := net.Transfer("peer", "dst", 32<<20); err != nil {
					return
				}
			}
		}()
	}

	main := func(ctx *hpcm.Context) error {
		ballast := make([]byte, 64<<20)
		if err := ctx.RegisterLazy("ballast", &ballast); err != nil {
			return err
		}
		if !ctx.Resumed() {
			return ctx.PollPoint("go")
		}
		return ctx.Await("ballast")
	}
	p, err := mw.Start("xfer", "src", main)
	if err != nil {
		t.Fatal(err)
	}
	p.Signal(hpcm.Command{DestHost: "dst"})
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	rec := p.Records()[0]
	return rec.RestoreDone.Sub(rec.ResumeAt)
}

// TestTransferSlowerIntoCommBusyHost pins the mechanism behind Table 2's
// migration-time column (8.31 s into the communicating workstation versus
// 6.71 s into the free one): the state transfer shares the destination's
// receive path with the background flow, so it takes measurably longer —
// ideally 2x for a fully shared NIC.
func TestTransferSlowerIntoCommBusyHost(t *testing.T) {
	free := migrateStateInto(t, false)
	busy := migrateStateInto(t, true)
	if busy < time.Duration(float64(free)*1.3) {
		t.Fatalf("transfer into busy host = %v, into free host = %v; want >= 1.3x", busy, free)
	}
	// Sanity: the free-path transfer is in the right ballpark for 64 MB at
	// 12.5 MB/s (~5.1 s plus scheduling overhead).
	if free < 4*time.Second || free > 20*time.Second {
		t.Fatalf("free transfer = %v, want ~5s", free)
	}
}
