package schema_test

import (
	"fmt"
	"time"

	"autoresched/internal/schema"
)

// ExampleSchema shows the estimate arithmetic the registry/scheduler uses
// for process selection, and the statistics feedback that refines it.
func ExampleSchema() {
	s := &schema.Schema{
		Name:            "test_tree",
		Characteristics: []schema.Characteristic{schema.ComputeIntensive},
		Estimate:        schema.Estimate{Seconds: 600, CPUSpeed: 1e6},
	}
	fmt.Println("on the reference host:", s.EstimateOn(1e6))
	fmt.Println("on a host twice as fast:", s.EstimateOn(2e6))

	// The first actual run took longer than estimated; the schema adapts.
	s.RecordRun(800*time.Second, 1e6)
	fmt.Println("after one observed run:", s.EstimateOn(1e6))
	// Output:
	// on the reference host: 10m0s
	// on a host twice as fast: 5m0s
	// after one observed run: 13m20s
}
