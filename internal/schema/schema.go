// Package schema implements the application schema of Section 3.3: an XML
// document describing an application's characteristics, estimated
// communication data size, resource requirements, and estimated execution
// time on a workstation of known computing power. The schema is provided by
// the user and updated from the statistics of actual executions (the
// self-adjustment feedback loop Section 6 plans); it feeds both process
// selection (latest completing time) and migration decision-making (data
// access locality, communication intensity).
package schema

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"time"
)

// Characteristic classifies what dominates an application's execution.
type Characteristic string

// The characteristics named by the paper.
const (
	ComputeIntensive       Characteristic = "compute"
	DataIntensive          Characteristic = "data"
	CommunicationIntensive Characteristic = "communication"
)

// Requirements lists the resources a destination host must own for the
// "first fit" scheduler to consider it.
type Requirements struct {
	MinMemory   int64    `xml:"minMemory,omitempty"`   // bytes
	MinDisk     int64    `xml:"minDisk,omitempty"`     // bytes
	MinCPUSpeed float64  `xml:"minCPUSpeed,omitempty"` // work units/s
	Software    []string `xml:"software>package,omitempty"`
}

// Estimate is the user-provided execution estimate: Seconds of runtime on a
// workstation of CPUSpeed computing power. The product is the application's
// total work in machine-independent units.
type Estimate struct {
	Seconds  float64 `xml:"seconds"`
	CPUSpeed float64 `xml:"cpuSpeed"`
}

// Stats accumulates actual execution statistics; the schema's effective work
// estimate blends toward observed reality as runs complete.
type Stats struct {
	Runs         int     `xml:"runs"`
	ObservedWork float64 `xml:"observedWork"` // exponential moving average
}

// Schema is the application schema document.
type Schema struct {
	XMLName xml.Name `xml:"applicationSchema"`
	// Name identifies the application (the paper's example is test_tree).
	Name string `xml:"name"`
	// Characteristics classify the application (compute, data or
	// communication intensive).
	Characteristics []Characteristic `xml:"characteristics>characteristic"`
	// CommBytes is the estimated communication data size moved in a
	// migration (execution + memory state).
	CommBytes int64 `xml:"estimatedCommBytes"`
	// LocalDataBytes estimates local data access; a process with heavy data
	// locality is not migrated for a slight gain (Section 5.3).
	LocalDataBytes int64        `xml:"localDataBytes,omitempty"`
	Requirements   Requirements `xml:"requirements"`
	Estimate       Estimate     `xml:"estimate"`
	Stats          Stats        `xml:"stats"`
}

// statsBlend is the EMA weight given to the newest observed run.
const statsBlend = 0.5

// Validate checks the schema for the fields decision-making relies on.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return errors.New("schema: missing application name")
	}
	if s.Estimate.Seconds < 0 || s.Estimate.CPUSpeed < 0 {
		return fmt.Errorf("schema %q: negative estimate", s.Name)
	}
	if s.CommBytes < 0 || s.LocalDataBytes < 0 {
		return fmt.Errorf("schema %q: negative data size", s.Name)
	}
	for _, c := range s.Characteristics {
		switch c {
		case ComputeIntensive, DataIntensive, CommunicationIntensive:
		default:
			return fmt.Errorf("schema %q: unknown characteristic %q", s.Name, c)
		}
	}
	return nil
}

// Is reports whether the application has the given characteristic.
func (s *Schema) Is(c Characteristic) bool {
	for _, have := range s.Characteristics {
		if have == c {
			return true
		}
	}
	return false
}

// Work returns the application's estimated total work in machine-independent
// units: the observed average when runs have completed, otherwise the
// user-provided estimate.
func (s *Schema) Work() float64 {
	if s.Stats.Runs > 0 && s.Stats.ObservedWork > 0 {
		return s.Stats.ObservedWork
	}
	return s.Estimate.Seconds * s.Estimate.CPUSpeed
}

// EstimateOn returns the estimated execution time on a workstation with the
// given computing power. Zero work or speed yields zero.
func (s *Schema) EstimateOn(cpuSpeed float64) time.Duration {
	work := s.Work()
	if work <= 0 || cpuSpeed <= 0 {
		return 0
	}
	return time.Duration(work / cpuSpeed * float64(time.Second))
}

// EstimatedCompletion returns the estimated completion instant of a run that
// started at start on a workstation with the given computing power. The
// registry/scheduler migrates the process with the latest completing time
// (Section 4).
func (s *Schema) EstimatedCompletion(start time.Time, cpuSpeed float64) time.Time {
	return start.Add(s.EstimateOn(cpuSpeed))
}

// RecordRun folds one actual execution into the statistics: elapsed runtime
// on a workstation of cpuSpeed computing power, blended into the observed
// work EMA ("updated according to the statistics of actual executions").
func (s *Schema) RecordRun(elapsed time.Duration, cpuSpeed float64) {
	if elapsed <= 0 || cpuSpeed <= 0 {
		return
	}
	work := elapsed.Seconds() * cpuSpeed
	if s.Stats.Runs == 0 || s.Stats.ObservedWork <= 0 {
		s.Stats.ObservedWork = work
	} else {
		s.Stats.ObservedWork = statsBlend*work + (1-statsBlend)*s.Stats.ObservedWork
	}
	s.Stats.Runs++
}

// Fits reports whether a host with the given resources satisfies the
// schema's requirements, and if not, why.
func (s *Schema) Fits(memBytes, diskBytes int64, cpuSpeed float64, software []string) (bool, string) {
	r := s.Requirements
	if memBytes < r.MinMemory {
		return false, fmt.Sprintf("memory %d < required %d", memBytes, r.MinMemory)
	}
	if diskBytes < r.MinDisk {
		return false, fmt.Sprintf("disk %d < required %d", diskBytes, r.MinDisk)
	}
	if cpuSpeed < r.MinCPUSpeed {
		return false, fmt.Sprintf("cpu %g < required %g", cpuSpeed, r.MinCPUSpeed)
	}
	have := make(map[string]bool, len(software))
	for _, sw := range software {
		have[strings.ToLower(sw)] = true
	}
	for _, need := range r.Software {
		if !have[strings.ToLower(need)] {
			return false, fmt.Sprintf("missing software %q", need)
		}
	}
	return true, ""
}

// Marshal renders the schema as indented XML, the wire format the commander
// ships to the destination host at process initialisation.
func (s *Schema) Marshal() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	out, err := xml.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), out...), nil
}

// Unmarshal parses an application schema document.
func Unmarshal(data []byte) (*Schema, error) {
	var s Schema
	if err := xml.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("schema: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Read parses a schema from r.
func Read(r io.Reader) (*Schema, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Unmarshal(data)
}

// Load reads a schema file from disk.
func Load(path string) (*Schema, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Unmarshal(data)
}

// Equal reports whether two schemas describe the same estimates, ignoring
// statistics. Used by tests and the registry's re-registration path.
func (s *Schema) Equal(o *Schema) bool {
	if s.Name != o.Name || s.CommBytes != o.CommBytes || s.LocalDataBytes != o.LocalDataBytes {
		return false
	}
	if math.Abs(s.Estimate.Seconds-o.Estimate.Seconds) > 1e-9 ||
		math.Abs(s.Estimate.CPUSpeed-o.Estimate.CPUSpeed) > 1e-9 {
		return false
	}
	if len(s.Characteristics) != len(o.Characteristics) {
		return false
	}
	for i := range s.Characteristics {
		if s.Characteristics[i] != o.Characteristics[i] {
			return false
		}
	}
	return true
}
