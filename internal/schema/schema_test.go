package schema

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"autoresched/internal/vclock"
)

func testTreeSchema() *Schema {
	return &Schema{
		Name:            "test_tree",
		Characteristics: []Characteristic{ComputeIntensive},
		CommBytes:       12 << 20,
		Requirements: Requirements{
			MinMemory:   64 << 20,
			MinCPUSpeed: 100,
			Software:    []string{"hpcm"},
		},
		Estimate: Estimate{Seconds: 300, CPUSpeed: 1000},
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	s := testTreeSchema()
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<applicationSchema>") {
		t.Fatalf("marshalled XML missing root element:\n%s", data)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Fatalf("round trip changed schema:\n%+v\n%+v", s, got)
	}
	if got.Requirements.MinMemory != 64<<20 || len(got.Requirements.Software) != 1 {
		t.Fatalf("requirements lost: %+v", got.Requirements)
	}
}

func TestLoadAndRead(t *testing.T) {
	s := testTreeSchema()
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "test_tree.xml")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "test_tree" {
		t.Fatalf("loaded name = %q", got.Name)
	}
	got2, err := Read(strings.NewReader(string(data)))
	if err != nil || got2.Name != "test_tree" {
		t.Fatalf("Read = %+v, %v", got2, err)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "none.xml")); err == nil {
		t.Fatal("Load of missing file succeeded")
	}
}

// TestLoadHandWrittenDocument parses the checked-in Section 3.3 schema
// document, the format users author by hand.
func TestLoadHandWrittenDocument(t *testing.T) {
	s, err := Load(filepath.Join("testdata", "test_tree.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "test_tree" || !s.Is(ComputeIntensive) {
		t.Fatalf("schema = %+v", s)
	}
	if s.CommBytes != 40<<20 {
		t.Fatalf("comm bytes = %d", s.CommBytes)
	}
	if got := s.EstimateOn(2e6); got != 300*time.Second {
		t.Fatalf("estimate on 2x host = %v", got)
	}
	if ok, reason := s.Fits(128<<20, 0, 5e5, []string{"hpcm", "lam-mpi"}); !ok {
		t.Fatalf("fits = false: %s", reason)
	}
	if ok, _ := s.Fits(128<<20, 0, 5e5, []string{"hpcm"}); ok {
		t.Fatal("missing lam-mpi accepted")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []*Schema{
		{},
		{Name: "x", Estimate: Estimate{Seconds: -1}},
		{Name: "x", CommBytes: -1},
		{Name: "x", LocalDataBytes: -2},
		{Name: "x", Characteristics: []Characteristic{"quantum"}},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, s)
		}
	}
	if _, err := Unmarshal([]byte("<applicationSchema><name></name></applicationSchema>")); err == nil {
		t.Error("Unmarshal accepted schema without name")
	}
	if _, err := Unmarshal([]byte("not xml")); err == nil {
		t.Error("Unmarshal accepted garbage")
	}
}

func TestWorkAndEstimates(t *testing.T) {
	s := testTreeSchema()
	if got := s.Work(); got != 300*1000 {
		t.Fatalf("Work = %v, want 300000", got)
	}
	// Estimated time scales inversely with destination speed.
	if got := s.EstimateOn(1000); got != 300*time.Second {
		t.Fatalf("EstimateOn(1000) = %v", got)
	}
	if got := s.EstimateOn(2000); got != 150*time.Second {
		t.Fatalf("EstimateOn(2000) = %v", got)
	}
	if got := s.EstimateOn(0); got != 0 {
		t.Fatalf("EstimateOn(0) = %v, want 0", got)
	}
	start := vclock.Epoch
	if got := s.EstimatedCompletion(start, 1000); !got.Equal(start.Add(300 * time.Second)) {
		t.Fatalf("EstimatedCompletion = %v", got)
	}
}

func TestRecordRunBlendsTowardObserved(t *testing.T) {
	s := testTreeSchema()
	// First observed run: 400s at speed 1000 => work 400000 replaces the
	// 300000 estimate entirely.
	s.RecordRun(400*time.Second, 1000)
	if got := s.Work(); math.Abs(got-400000) > 1 {
		t.Fatalf("after 1 run Work = %v, want 400000", got)
	}
	// Second run of 300s: EMA 0.5*300000 + 0.5*400000 = 350000.
	s.RecordRun(300*time.Second, 1000)
	if got := s.Work(); math.Abs(got-350000) > 1 {
		t.Fatalf("after 2 runs Work = %v, want 350000", got)
	}
	if s.Stats.Runs != 2 {
		t.Fatalf("Runs = %d", s.Stats.Runs)
	}
	// Degenerate inputs are ignored.
	s.RecordRun(0, 1000)
	s.RecordRun(time.Second, 0)
	if s.Stats.Runs != 2 {
		t.Fatalf("degenerate run recorded: %d", s.Stats.Runs)
	}
}

func TestStatsSurviveMarshal(t *testing.T) {
	s := testTreeSchema()
	s.RecordRun(500*time.Second, 1000)
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Runs != 1 || math.Abs(got.Stats.ObservedWork-500000) > 1 {
		t.Fatalf("stats lost: %+v", got.Stats)
	}
}

func TestFits(t *testing.T) {
	s := testTreeSchema()
	cases := []struct {
		mem, disk int64
		speed     float64
		sw        []string
		want      bool
		reason    string
	}{
		{128 << 20, 0, 500, []string{"HPCM"}, true, ""},
		{32 << 20, 0, 500, []string{"hpcm"}, false, "memory"},
		{128 << 20, 0, 50, []string{"hpcm"}, false, "cpu"},
		{128 << 20, 0, 500, nil, false, "software"},
	}
	for i, c := range cases {
		ok, reason := s.Fits(c.mem, c.disk, c.speed, c.sw)
		if ok != c.want {
			t.Errorf("case %d: Fits = %v (%s), want %v", i, ok, reason, c.want)
		}
		if !ok && !strings.Contains(reason, c.reason) {
			t.Errorf("case %d: reason %q missing %q", i, reason, c.reason)
		}
	}
	disk := &Schema{Name: "d", Requirements: Requirements{MinDisk: 100}}
	if ok, reason := disk.Fits(0, 50, 0, nil); ok || !strings.Contains(reason, "disk") {
		t.Errorf("disk requirement not enforced: %v %q", ok, reason)
	}
}

func TestIs(t *testing.T) {
	s := testTreeSchema()
	if !s.Is(ComputeIntensive) || s.Is(DataIntensive) {
		t.Fatalf("Is() wrong for %+v", s.Characteristics)
	}
}

func TestEqualDiscriminates(t *testing.T) {
	a := testTreeSchema()
	for _, mutate := range []func(*Schema){
		func(s *Schema) { s.Name = "other" },
		func(s *Schema) { s.CommBytes++ },
		func(s *Schema) { s.LocalDataBytes++ },
		func(s *Schema) { s.Estimate.Seconds++ },
		func(s *Schema) { s.Estimate.CPUSpeed++ },
		func(s *Schema) { s.Characteristics = nil },
		func(s *Schema) { s.Characteristics = []Characteristic{DataIntensive} },
	} {
		b := testTreeSchema()
		mutate(b)
		if a.Equal(b) {
			t.Errorf("Equal missed mutation: %+v", b)
		}
	}
	if !a.Equal(testTreeSchema()) {
		t.Error("Equal(self copy) = false")
	}
}

// Property: Work() is always non-negative and EstimateOn never returns a
// negative duration, no matter what runs are recorded.
func TestWorkNonNegativeProperty(t *testing.T) {
	f := func(secs []int16, speed uint16) bool {
		s := testTreeSchema()
		for _, sec := range secs {
			s.RecordRun(time.Duration(sec)*time.Second, float64(speed))
		}
		return s.Work() >= 0 && s.EstimateOn(float64(speed)) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
