// Package core assembles the runtime system of the paper: per-host monitors
// and commanders, a (possibly hierarchical) registry/scheduler, the HPCM
// migration middleware and the MPI-2 layer, wired into the autonomic loop —
// monitors classify their hosts through rules and push soft-state to the
// registry; when a host needs offloading the registry selects the process
// with the latest completion time and a first-fit destination, and orders
// the source commander to start the migration; the process moves at its
// next poll-point and is re-registered under its new host.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"autoresched/internal/cluster"
	"autoresched/internal/commander"
	"autoresched/internal/events"
	"autoresched/internal/hpcm"
	"autoresched/internal/jobs"
	"autoresched/internal/livemig"
	"autoresched/internal/metrics"
	"autoresched/internal/monitor"
	"autoresched/internal/mpi"
	"autoresched/internal/persist"
	"autoresched/internal/proto"
	"autoresched/internal/registry"
	"autoresched/internal/rules"
	"autoresched/internal/schema"
	"autoresched/internal/vclock"
)

// Options configures a System.
type Options struct {
	// Cluster supplies hosts, network and host binding. Required.
	Cluster *cluster.Cluster
	// Policy drives migration decisions; nil selects the state-based
	// default (migrate off Overloaded hosts onto Free ones).
	Policy *rules.MigrationPolicy
	// EngineFor builds each host's rule engine; nil selects DefaultEngine.
	EngineFor func(host string) *rules.Engine
	// MonitorInterval is the default monitoring frequency; zero selects
	// 10 s (the paper's sampling interval).
	MonitorInterval time.Duration
	// Frequencies optionally overrides the monitoring frequency per state.
	Frequencies map[rules.State]time.Duration
	// GatherCost charges each monitoring cycle's CPU cost to the host, in
	// work units; zero disables (and makes the rescheduler free, which is
	// not what the paper measured — Figure 5's overhead comes from here).
	GatherCost float64
	// Warmup and Cooldown damp the scheduler (see registry.Config).
	Warmup   int
	Cooldown time.Duration
	// Lease is the soft-state lifetime.
	Lease time.Duration
	// SpawnLatency models LAM/MPI's slow dynamic process creation; zero
	// selects 300 ms (Section 5.2).
	SpawnLatency time.Duration
	// ChunkBytes is the lazy state streaming chunk size.
	ChunkBytes int
	// CommandDir, when set, receives the commanders' migrate-address temp
	// files.
	CommandDir string
	// Parent chains this system's registry under an upper-level one.
	Parent *registry.Registry
	// Domain names this system's control domain under Parent: the registry
	// then reports its Health upward on a lease and the parent delegates
	// placements across its domains (Section 3.2's sharded hierarchy).
	Domain string
	// Scheduler overrides the placement scheduler; nil keeps the registry
	// default (first fit, or the policy's pl_scheduler).
	Scheduler registry.Scheduler
	// BatchStatusEvery, when positive, interposes a registry.Batcher
	// between the monitors and the registry: status refreshes coalesce
	// into batched reports flushed at this interval (or when 64 hosts are
	// pending). Zero keeps per-host reports.
	BatchStatusEvery time.Duration
	// RegistryHost, when set, names the host the registry/scheduler runs
	// on; status refreshes from other hosts are then charged to the
	// network as StatusBytes-sized transfers, making the rescheduler's
	// control traffic visible in the NIC counters (Figure 6).
	RegistryHost string
	// StatusBytes is the wire size of one status refresh; zero selects
	// 600 bytes (a typical XML status message).
	StatusBytes int64
	// Checkpoints enables the checkpointing extension (see internal/hpcm):
	// applications periodically persist their state and can be recovered
	// on another host after a crash — the paper's fault-tolerance
	// motivation ("reschedule when the machine will shut down").
	Checkpoints hpcm.CheckpointStore
	// CheckpointEvery is the automatic checkpoint interval.
	CheckpointEvery time.Duration
	// FailoverRetries is how many times the runtime recovers an application
	// after a recoverable failure (host crash, failed migration): restore
	// from the last checkpoint onto a fresh first-fit host, or cold-restart
	// when no checkpoint exists. Zero disables automatic failover.
	FailoverRetries int
	// OrderDedupWindow suppresses migrate orders redelivered to a commander
	// within the window (see commander.Config); zero disables.
	OrderDedupWindow time.Duration
	// Store, when set, makes the registry's protocol state durable: every
	// mutation appends to this write-ahead store and a registry restart
	// becomes crash-consistent bootstrap — hosts and processes are
	// recovered from snapshot+log instead of re-registering (see
	// internal/persist). Simulations pass a persist.MemStore; reschedd
	// wires a file-backed store behind its -store flag.
	Store persist.Store
	// SnapshotEvery folds the registry state into a compacting store
	// snapshot every N appended records (requires Store); zero disables
	// periodic compaction.
	SnapshotEvery int
	// Counters, when set, receives control-plane counters from every layer
	// of the runtime.
	Counters *metrics.Counters
	// Observer, when set, receives migration phase events (after the
	// runtime's own counting observer).
	Observer hpcm.MigrationObserver
	// Events, when set, receives the unified runtime event stream: registry
	// decisions (Source "registry"), commander orders (Source "commander")
	// and migration phases (Source "hpcm") flow through this one sink; pass
	// the same sink to the fault injector to fold its events (Source
	// "faults") in too.
	Events events.Sink
	// Metrics, when set, receives the runtime's gauges and latency
	// histograms from every layer: the registry's hosts gauge and decide
	// timings, monitor cycle durations, hpcm migration/downtime/checkpoint
	// histograms, and the per-migration phase spans (span/*) derived from
	// the event stream by a metrics.Spans sink the runtime installs
	// alongside Events.
	Metrics *metrics.Registry
	// WrapReporter, when set, wraps each node's status reporter. The fault
	// injector uses this to drop, duplicate or delay heartbeats on the
	// monitor->registry path.
	WrapReporter func(host string, r monitor.Reporter) monitor.Reporter
	// Live enables iterative-precopy live migration for applications that
	// register a livemig.Pages region: pages stream while the application
	// keeps computing, and only the final dirty residual is transferred
	// inside the freeze window. A zero-value Config selects the livemig
	// defaults; nil keeps every migration stop-and-copy.
	Live *livemig.Config
	// JobPolicy drives the multi-job dispatcher's admission order and
	// preemption (see internal/jobs); nil selects FIFO (no preemption, no
	// backfill).
	JobPolicy jobs.Policy
	// SchedInterval is the dispatcher's periodic admission sweep, in virtual
	// time; zero selects 5 s. Submissions and completions also kick a cycle
	// immediately.
	SchedInterval time.Duration
}

// DefaultEngine returns a rule engine encoding the paper's running
// thresholds: a host is busy above load 1 and overloaded above load 2, or
// busy above 100 processes and overloaded above 150.
func DefaultEngine() *rules.Engine {
	e := rules.NewEngine(nil)
	must := func(r *rules.Rule) {
		if err := e.Add(r); err != nil {
			panic(err)
		}
	}
	must(&rules.Rule{
		Number: 1, Name: "loadAverage", Type: rules.Simple,
		Script: "loadAvg.sh", Param: "1", Operator: rules.OpGreater,
		Busy: 1, OverLd: 2,
		Desc: "one-minute load average",
	})
	must(&rules.Rule{
		Number: 2, Name: "numProcs", Type: rules.Simple,
		Script: "numProcs.sh", Operator: rules.OpGreater,
		Busy: 100, OverLd: 150,
		Desc: "active process count",
	})
	return e
}

// Node is one host's runtime presence: its monitor and commander.
type Node struct {
	Host      string
	Monitor   *monitor.Monitor
	Commander *commander.Commander

	charger hpcm.HostProc // the monitor's own process-table entry
}

// App is a launched migration-enabled application.
type App struct {
	// Proc is the current hpcm process. Failover replaces it; read it
	// through Process() while the app may still be running.
	Proc   *hpcm.Process
	Schema *schema.Schema

	sys        *System
	main       hpcm.Main
	settled    chan struct{} // closed after completion bookkeeping
	mu         sync.Mutex
	pid        int
	host       string
	launchHost string
	launched   time.Time
	retries    int // failover attempts consumed
	finalErr   error

	// onSettled, when set, runs in the follow goroutine with the terminal
	// error just before settled closes — the job dispatcher folds the
	// rank's outcome into the job state machine through it, so by the time
	// Wait returns the job-level bookkeeping is already done.
	onSettled func(error)
}

// Process returns the app's current hpcm process (it changes on failover).
func (app *App) Process() *hpcm.Process {
	app.mu.Lock()
	defer app.mu.Unlock()
	return app.Proc
}

// Retries reports how many failover recoveries the app consumed.
func (app *App) Retries() int {
	app.mu.Lock()
	defer app.mu.Unlock()
	return app.retries
}

// Settled is closed once the app has finished AND the runtime has completed
// its bookkeeping: deregistration and the schema statistics feedback.
func (app *App) Settled() <-chan struct{} { return app.settled }

// System is the assembled runtime.
type System struct {
	opts     Options
	clock    vclock.Clock
	cluster  *cluster.Cluster
	universe *mpi.Universe
	mw       *hpcm.Middleware
	reg      *registry.Registry
	batcher  *registry.Batcher // non-nil when BatchStatusEvery is set
	events   events.Sink       // combined sink: Options.Events + span builder

	// Multi-job control plane (see jobs.go).
	queue  *jobs.Queue
	policy jobs.Policy

	mu      sync.Mutex
	nodes   map[string]*Node
	apps    []*App
	jobRuns map[string]*jobRun

	dispatchOnce     sync.Once
	dispatchStopOnce sync.Once
	dispatcherOn     atomic.Bool
	dispatchKick     chan struct{}
	dispatchStop     chan struct{}
	dispatchDone     chan struct{}
}

// New assembles a System over a cluster.
func New(opts Options) (*System, error) {
	if opts.Cluster == nil {
		return nil, errors.New("core: Options.Cluster is required")
	}
	if opts.MonitorInterval <= 0 {
		opts.MonitorInterval = 10 * time.Second
	}
	if opts.SpawnLatency == 0 {
		opts.SpawnLatency = 300 * time.Millisecond
	}
	if opts.SchedInterval <= 0 {
		opts.SchedInterval = 5 * time.Second
	}
	if opts.JobPolicy == nil {
		opts.JobPolicy = jobs.FIFO{}
	}
	clock := opts.Cluster.Clock()
	universe := mpi.NewUniverse(mpi.Options{
		Clock:        clock,
		Transport:    mpi.SimTransport{Net: opts.Cluster.Net()},
		SpawnLatency: opts.SpawnLatency,
		HostCheck:    opts.Cluster.HostCheck,
	})
	s := &System{
		opts:         opts,
		clock:        clock,
		cluster:      opts.Cluster,
		nodes:        make(map[string]*Node),
		policy:       opts.JobPolicy,
		jobRuns:      make(map[string]*jobRun),
		dispatchKick: make(chan struct{}, 1),
		dispatchStop: make(chan struct{}),
		dispatchDone: make(chan struct{}),
	}
	s.universe = universe
	// The event sink every layer publishes to: the caller's sink plus,
	// when metrics are on, the span builder deriving per-phase migration
	// latency histograms from the same stream.
	sink := opts.Events
	if opts.Metrics != nil {
		if opts.Counters != nil {
			opts.Metrics.AttachCounters(opts.Counters)
		}
		sink = events.Multi(sink, metrics.NewSpans(opts.Metrics))
	}
	s.events = sink
	s.queue = jobs.NewQueue(clock, sink)
	// The runtime's own observer keeps the commit/abort counters; a
	// user-supplied observer (fault injection) chains after it. The
	// middleware publishes the same events — with typed payloads — on the
	// unified sink itself.
	observer := func(ev hpcm.MigrationEvent) {
		switch ev.Phase {
		case hpcm.PhaseResume:
			opts.Counters.Inc(metrics.CtrMigrCommitted)
		case hpcm.PhaseAborted:
			opts.Counters.Inc(metrics.CtrMigrAborted)
		default:
			// Intermediate phases (start/init/precopy/freeze/restore) and
			// failures are span material, not commit/abort outcomes.
		}
		if opts.Observer != nil {
			opts.Observer(ev)
		}
	}
	mw, err := hpcm.New(hpcm.Options{
		Universe:        universe,
		Hosts:           opts.Cluster,
		ChunkBytes:      opts.ChunkBytes,
		Checkpoints:     opts.Checkpoints,
		CheckpointEvery: opts.CheckpointEvery,
		Observer:        observer,
		Events:          sink,
		Metrics:         opts.Metrics,
		Live:            opts.Live,
	})
	if err != nil {
		return nil, err
	}
	s.mw = mw
	s.reg = registry.NewRegistry(
		registry.WithClock(clock),
		registry.WithLease(opts.Lease),
		registry.WithPolicy(opts.Policy),
		registry.WithCommands(s),
		registry.WithScheduler(opts.Scheduler),
		registry.WithWarmup(opts.Warmup),
		registry.WithCooldown(opts.Cooldown),
		registry.WithParent(opts.Parent),
		registry.WithDomain(opts.Domain),
		registry.WithCounters(opts.Counters),
		registry.WithOnEvent(s.onRegistryEvent),
		registry.WithEvents(sink),
		registry.WithMetrics(opts.Metrics),
		registry.WithStore(opts.Store),
		registry.WithSnapshotEvery(opts.SnapshotEvery),
	)
	if opts.BatchStatusEvery > 0 {
		s.batcher = registry.NewBatcher(s.reg, registry.BatcherConfig{
			Clock:      clock,
			FlushEvery: opts.BatchStatusEvery,
			Counters:   opts.Counters,
		})
	}
	return s, nil
}

// onRegistryEvent reacts to registry trace events: a restart means the
// registry lost its soft state, so the runtime resyncs its live process
// registrations once the monitors' heartbeats have re-registered the hosts.
// With a durable store the restart is a crash-consistent recovery — process
// registrations come back from the change log — so no resync is needed (the
// zero-re-registration property the chaos suite counter-asserts).
func (s *System) onRegistryEvent(e registry.Event) {
	if e.Kind == registry.EventRestart && s.opts.Store == nil {
		go s.resyncProcs()
	}
}

// Clock returns the system clock.
func (s *System) Clock() vclock.Clock { return s.clock }

// Cluster returns the underlying cluster.
func (s *System) Cluster() *cluster.Cluster { return s.cluster }

// Registry returns the registry/scheduler.
func (s *System) Registry() *registry.Registry { return s.reg }

// Middleware returns the HPCM middleware.
func (s *System) Middleware() *hpcm.Middleware { return s.mw }

// Universe returns the MPI universe.
func (s *System) Universe() *mpi.Universe { return s.universe }

// Migrate implements registry.CommandSink by routing orders to the source
// host's commander.
func (s *System) Migrate(host string, order proto.MigrateOrder) error {
	node, ok := s.Node(host)
	if !ok {
		return fmt.Errorf("core: no node on host %q", host)
	}
	return node.Commander.Migrate(order)
}

// Node returns the runtime node on a host.
func (s *System) Node(host string) (*Node, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[host]
	return n, ok
}

// AddNode deploys a monitor and a commander on a cluster host and starts
// monitoring. The monitor registers the host with the registry/scheduler.
func (s *System) AddNode(host string) (*Node, error) {
	if _, ok := s.cluster.Host(host); !ok {
		return nil, fmt.Errorf("core: unknown cluster host %q", host)
	}
	s.mu.Lock()
	if _, ok := s.nodes[host]; ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: node already deployed on %q", host)
	}
	s.mu.Unlock()

	source, _ := s.cluster.Source(host)
	engine := DefaultEngine()
	if s.opts.EngineFor != nil {
		engine = s.opts.EngineFor(host)
	}
	cmd := commander.NewCommander(host,
		commander.WithDir(s.opts.CommandDir),
		commander.WithClock(s.clock),
		commander.WithDedupWindow(s.opts.OrderDedupWindow),
		commander.WithCounters(s.opts.Counters),
		commander.WithEvents(s.events),
	)

	var charger hpcm.HostProc
	if s.opts.GatherCost > 0 {
		hp, err := s.cluster.Attach(host, "hpcm-monitor", 4<<20)
		if err != nil {
			return nil, err
		}
		charger = hp
	}
	var reporter monitor.Reporter = s.reg
	if s.batcher != nil {
		reporter = s.batcher
	}
	if s.opts.RegistryHost != "" && host != s.opts.RegistryHost {
		bytes := s.opts.StatusBytes
		if bytes <= 0 {
			bytes = 600
		}
		reporter = &chargedReporter{
			inner: reporter,
			net:   s.cluster.Net(),
			to:    s.opts.RegistryHost,
			bytes: bytes,
		}
	}
	if s.opts.WrapReporter != nil {
		reporter = s.opts.WrapReporter(host, reporter)
	}
	monOpts := []monitor.Option{
		monitor.WithEngine(engine),
		monitor.WithReporter(reporter),
		monitor.WithClock(s.clock),
		monitor.WithFrequencies(s.opts.Frequencies),
		monitor.WithDefaultFrequency(s.opts.MonitorInterval),
		monitor.WithCommandAddr("cmd://" + host),
		monitor.WithSoftware([]string{"hpcm", "lam-mpi"}),
		monitor.WithCounters(s.opts.Counters),
		monitor.WithMetrics(s.opts.Metrics),
	}
	if charger != nil {
		monOpts = append(monOpts, monitor.WithCharger(charger, s.opts.GatherCost))
	}
	mon, err := monitor.NewMonitor(host, source, monOpts...)
	if err != nil {
		return nil, err
	}
	node := &Node{Host: host, Monitor: mon, Commander: cmd, charger: charger}
	s.mu.Lock()
	s.nodes[host] = node
	s.mu.Unlock()
	if err := mon.Start(); err != nil {
		return nil, err
	}
	return node, nil
}

// AddNodes deploys nodes on every named host.
func (s *System) AddNodes(hosts ...string) error {
	for _, h := range hosts {
		if _, err := s.AddNode(h); err != nil {
			return err
		}
	}
	return nil
}

// Stop halts the job dispatcher and all monitors (and their host charging).
func (s *System) Stop() {
	s.dispatchStopOnce.Do(func() { close(s.dispatchStop) })
	if s.dispatcherOn.Load() {
		<-s.dispatchDone
	}
	s.mu.Lock()
	nodes := make([]*Node, 0, len(s.nodes))
	for _, n := range s.nodes {
		nodes = append(nodes, n)
	}
	s.mu.Unlock()
	for _, n := range nodes {
		n.Monitor.Stop()
		if n.charger != nil {
			n.charger.Exit()
		}
	}
}

// Launch starts a migration-enabled application on a host, registers it
// with the local commander and the registry/scheduler, and keeps the
// registration current as the process migrates. On completion the actual
// runtime is folded back into the schema (the self-adjustment feedback).
//
// Launch is the single-job compatibility shim over Submit: it submits a
// gang-of-one spec pinned to host and returns its rank-0 App.
func (s *System) Launch(name, host string, sch *schema.Schema, main hpcm.Main) (*App, error) {
	_, apps, err := s.submit(jobs.Spec{
		Name:   name,
		Hosts:  []string{host},
		Schema: sch,
		Rank:   func(int, int) hpcm.Main { return main },
	})
	if err != nil {
		return nil, err
	}
	return apps[0], nil
}

// registerProc (re-)registers the app's current incarnation.
func (s *System) registerProc(app *App) error {
	app.mu.Lock()
	host, pid, proc := app.host, app.pid, app.Proc
	app.mu.Unlock()
	info := proto.ProcessInfo{
		PID:   pid,
		Name:  proc.Name(),
		Start: proc.Started().UnixNano(),
	}
	if app.Schema != nil {
		data, err := app.Schema.Marshal()
		if err != nil {
			return err
		}
		info.SchemaXML = string(data)
	}
	return s.reg.RegisterProcess(host, info)
}

// follow tracks migrations, failures and completion, keeping commanders and
// the registry consistent with where the process actually runs. Recoverable
// failures (host crash, failed migration) are retried through failover when
// Options.FailoverRetries allows.
func (app *App) follow() {
	s := app.sys
	for {
		proc := app.Process()
		select {
		case rec := <-proc.Events():
			app.applyMove(rec)
		case <-proc.Done():
			// Drain committed-migration events that raced completion so the
			// deregistration below targets the process's final home.
			for drained := false; !drained; {
				select {
				case rec := <-proc.Events():
					app.applyMove(rec)
				default:
					drained = true
				}
			}
			err := proc.Wait()
			app.mu.Lock()
			host, pid := app.host, app.pid
			app.mu.Unlock()
			if node, ok := s.Node(host); ok {
				node.Commander.Forget(pid)
			}
			_ = s.reg.ProcessExit(host, pid)

			if hpcm.Recoverable(err) && app.Retries() < s.opts.FailoverRetries {
				app.mu.Lock()
				app.retries++
				app.mu.Unlock()
				if s.failover(app, err) {
					continue
				}
			}

			app.mu.Lock()
			app.finalErr = err
			app.mu.Unlock()
			if app.Schema != nil && err == nil {
				if h, ok := s.cluster.Host(app.LaunchHost()); ok {
					app.Schema.RecordRun(s.clock.Since(app.launched), h.Speed())
				}
			}
			if app.onSettled != nil {
				app.onSettled(err)
			}
			close(app.settled)
			return
		}
	}
}

// applyMove re-homes the app's bookkeeping after a committed migration.
func (app *App) applyMove(rec hpcm.Record) {
	s := app.sys
	proc := app.Process()
	app.mu.Lock()
	oldHost, oldPID := app.host, app.pid
	app.host = rec.To
	app.pid = proc.PID()
	app.mu.Unlock()

	if node, ok := s.Node(oldHost); ok {
		node.Commander.Forget(oldPID)
	}
	_ = s.reg.ProcessExit(oldHost, oldPID)
	if node, ok := s.Node(rec.To); ok {
		node.Commander.ManageAs(proc.PID(), proc)
	}
	_ = s.registerProc(app)
}

// Host returns where the app currently runs (tracked via events).
func (app *App) Host() string {
	app.mu.Lock()
	defer app.mu.Unlock()
	return app.host
}

// LaunchHost returns where the app was originally launched.
func (app *App) LaunchHost() string { return app.launchHost }

// Wait blocks until the application finishes — including any failover
// recoveries — and returns its terminal error.
func (app *App) Wait() error {
	<-app.settled
	app.mu.Lock()
	defer app.mu.Unlock()
	return app.finalErr
}
