package core

import (
	"autoresched/internal/monitor"
	"autoresched/internal/proto"
	"autoresched/internal/simnet"
)

// chargedReporter forwards monitor traffic toward the in-process registry
// (directly, or through the status batcher) while charging each message to
// the simulated network, so the rescheduler's control traffic appears in
// the NIC counters exactly as the paper's XML-over-TCP messages did.
type chargedReporter struct {
	inner monitor.Reporter
	net   *simnet.Network
	to    string
	bytes int64
}

func (c *chargedReporter) charge(from string) {
	// Best effort: a down registry host fails registration paths already.
	_ = c.net.Transfer(from, c.to, c.bytes)
}

func (c *chargedReporter) RegisterHost(host string, static proto.StaticInfo) error {
	c.charge(host)
	return c.inner.RegisterHost(host, static)
}

func (c *chargedReporter) ReportStatus(host string, status proto.Status) error {
	c.charge(host)
	return c.inner.ReportStatus(host, status)
}

func (c *chargedReporter) UnregisterHost(host string) error {
	c.charge(host)
	return c.inner.UnregisterHost(host)
}
