package core

import (
	"errors"
	"fmt"

	"autoresched/internal/hpcm"
	"autoresched/internal/registry"
	"autoresched/internal/schema"
)

// Recover restores an application from its latest checkpoint onto a host —
// the rescheduling-for-fault-tolerance path of Section 6: when a host dies
// instead of being gracefully drained, its processes restart elsewhere from
// persisted state instead of from the beginning.
//
// host may be empty, in which case the registry/scheduler's first-fit
// search picks the destination (excluding the host the app last ran on).
// main must be the same program that wrote the checkpoint, and sch its
// schema (may be nil).
func (s *System) Recover(name, host string, sch *schema.Schema, main hpcm.Main) (*App, error) {
	if s.opts.Checkpoints == nil {
		return nil, errors.New("core: no checkpoint store configured")
	}
	exclude := ""
	s.mu.Lock()
	for _, app := range s.apps {
		if app.Proc.Name() == name {
			exclude = app.Host()
		}
	}
	s.mu.Unlock()

	if host == "" {
		cand, ok := s.reg.FirstFit(exclude, registry.ProcInfo{Name: name, Schema: sch})
		if !ok {
			return nil, fmt.Errorf("core: no host fits to recover %q", name)
		}
		host = cand.Host
	}
	node, ok := s.Node(host)
	if !ok {
		return nil, fmt.Errorf("core: no node on host %q", host)
	}
	p, err := s.mw.Restore(s.opts.Checkpoints, name, host, main)
	if err != nil {
		return nil, err
	}
	app := &App{
		Proc:       p,
		Schema:     sch,
		sys:        s,
		main:       main,
		settled:    make(chan struct{}),
		pid:        p.PID(),
		host:       host,
		launchHost: host,
		launched:   s.clock.Now(),
	}
	node.Commander.Manage(p)
	if err := s.registerProc(app); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.apps = append(s.apps, app)
	s.mu.Unlock()
	go app.follow()
	return app, nil
}
