package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"autoresched/internal/hpcm"
	"autoresched/internal/workload"
)

// TestCrashRecoveryFromCheckpoint exercises the fault-tolerance extension
// end to end: the application checkpoints periodically; its host "crashes";
// Recover restarts it from the last checkpoint on a registry-chosen host;
// results stay correct and progress is not lost back to zero.
func TestCrashRecoveryFromCheckpoint(t *testing.T) {
	store := hpcm.NewMemStore()
	s, _ := newSystem(t, 1000, 3, Options{
		Checkpoints:     store,
		CheckpointEvery: 20 * time.Second,
	})

	cfg := workload.TreeConfig{
		Levels: 10, Rounds: 40, Seed: 11,
		WorkPerNode: 600, BytesPerNode: 8,
	}
	var mu sync.Mutex
	sums := map[int]int64{}
	var maxPreCrash int
	cfg.OnSum = func(round int, sum int64) {
		mu.Lock()
		sums[round] = sum
		mu.Unlock()
	}
	app, err := s.Launch("test_tree", "ws1", cfg.Schema(1e6), workload.TestTree(cfg))
	if err != nil {
		t.Fatal(err)
	}

	// Let it make progress and write at least one checkpoint.
	deadline := time.Now().Add(15 * time.Second)
	for app.Proc.Checkpoints() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("checkpoints = %d, never reached 2", app.Proc.Checkpoints())
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	maxPreCrash = len(sums)
	mu.Unlock()
	if maxPreCrash == 0 {
		// Ensure some rounds completed before the crash.
		for {
			mu.Lock()
			n := len(sums)
			mu.Unlock()
			if n > 0 {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Crash ws1.
	app.Proc.Kill()
	if err := app.Wait(); !errors.Is(err, hpcm.ErrKilled) {
		t.Fatalf("Wait = %v, want ErrKilled", err)
	}

	// Recover via the registry's first-fit (ws1 excluded as the last host).
	app2, err := s.Recover("test_tree", "", cfg.Schema(1e6), workload.TestTree(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if app2.Host() == "ws1" {
		t.Fatalf("recovered onto the crashed host")
	}
	if err := app2.Wait(); err != nil {
		t.Fatal(err)
	}

	want := workload.ExpectedSums(cfg)
	mu.Lock()
	defer mu.Unlock()
	if len(sums) != cfg.Rounds {
		t.Fatalf("rounds completed = %d/%d", len(sums), cfg.Rounds)
	}
	for round, sum := range want {
		if sums[round] != sum {
			t.Fatalf("round %d sum = %d, want %d", round, sums[round], sum)
		}
	}
}

func TestRecoverWithoutStore(t *testing.T) {
	s, _ := newSystem(t, 1000, 1, Options{})
	if _, err := s.Recover("x", "", nil, func(*hpcm.Context) error { return nil }); err == nil {
		t.Fatal("Recover without store accepted")
	}
}

func TestRecoverWithoutCheckpoint(t *testing.T) {
	s, _ := newSystem(t, 1000, 2, Options{Checkpoints: hpcm.NewMemStore()})
	if _, err := s.Recover("ghost", "ws2", nil, func(*hpcm.Context) error { return nil }); err == nil {
		t.Fatal("Recover of unknown app accepted")
	}
}
