package core

import (
	"errors"
	"fmt"

	"autoresched/internal/hpcm"
	"autoresched/internal/metrics"
	"autoresched/internal/persist"
	"autoresched/internal/registry"
)

// CrashHost simulates losing a host: its network goes down (in-flight
// transfers fail), its monitor stops refreshing the registry, and every
// application incarnation currently on it is killed. The crash is permanent
// for the run. Applications with failover budget left are recovered by
// their follow loops.
func (s *System) CrashHost(host string) error {
	if _, ok := s.cluster.Host(host); !ok {
		return fmt.Errorf("core: unknown cluster host %q", host)
	}
	if err := s.cluster.Net().SetDown(host, true); err != nil {
		return err
	}
	if node, ok := s.Node(host); ok {
		if node.charger != nil {
			node.charger.Exit() // unblock a monitoring cycle mid-charge
		}
		// Stopping the monitor also unregisters the host, so first-fit
		// searches (including failover's) never pick the dead host.
		node.Monitor.Stop()
	}
	s.mu.Lock()
	apps := append([]*App(nil), s.apps...)
	s.mu.Unlock()
	for _, app := range apps {
		proc := app.Process()
		if proc.Host() == host {
			proc.Kill()
		}
	}
	return nil
}

// RestartRegistry simulates a registry crash and restart. Without a
// configured Store the soft state is dropped: monitors re-register through
// their heartbeats and the runtime resyncs process registrations (triggered
// by the restart trace event). With a Store the restart is a crash-consistent
// bootstrap from snapshot + log suffix and no re-registration happens.
func (s *System) RestartRegistry() { s.reg.Restart() }

// Store returns the persistence store the system was configured with (nil
// for a purely soft-state control plane). Fault injectors use it to tear
// the log tail mid-run.
func (s *System) Store() persist.Store { return s.opts.Store }

// failover recovers an app after a recoverable failure: restore the last
// checkpoint onto a fresh first-fit candidate (cold-restart from the
// beginning when no checkpoint exists). Returns false when no host fits or
// the recovery itself fails; the caller then settles the app with its
// original error.
func (s *System) failover(app *App, cause error) bool {
	proc := app.Process()
	name := proc.Name()

	// Exclude the host the failure points at: the crashed host for a kill
	// or post-commit failure, the unreachable destination for an abort
	// (the source host is healthy and stays a legitimate candidate).
	exclude := app.Host()
	var mf *hpcm.MigrationFailure
	if errors.As(cause, &mf) && !mf.Committed {
		exclude = mf.To
	}

	cand, ok := s.reg.FirstFit(exclude, registry.ProcInfo{Name: name, Schema: app.Schema})
	if !ok {
		return false
	}
	node, ok := s.Node(cand.Host)
	if !ok {
		return false
	}

	var p *hpcm.Process
	if s.opts.Checkpoints != nil {
		restored, err := s.mw.Restore(s.opts.Checkpoints, name, cand.Host, app.main)
		if err == nil {
			p = restored
			s.opts.Counters.Inc(metrics.CtrCkptRestores)
		}
	}
	if p == nil {
		// No checkpoint (or its restoration failed): restart from the
		// beginning — slow, but the computation still survives the fault.
		started, err := s.mw.Start(name, cand.Host, app.main)
		if err != nil {
			return false
		}
		p = started
		s.opts.Counters.Inc(metrics.CtrColdRestarts)
	}

	app.mu.Lock()
	app.Proc = p
	app.pid = p.PID()
	app.host = cand.Host
	app.mu.Unlock()
	node.Commander.Manage(p)
	_ = s.registerProc(app)
	return true
}

// resyncProcs re-registers every live application with the registry after
// it lost its soft state. Host registrations come back through the
// monitors' heartbeats, so process registration is retried across a few
// monitoring intervals until it sticks.
func (s *System) resyncProcs() {
	const attempts = 5
	s.mu.Lock()
	apps := append([]*App(nil), s.apps...)
	s.mu.Unlock()
	pending := make([]*App, 0, len(apps))
	for _, app := range apps {
		select {
		case <-app.Settled():
		default:
			pending = append(pending, app)
		}
	}
	for i := 0; i < attempts && len(pending) > 0; i++ {
		if i > 0 {
			s.clock.Sleep(s.opts.MonitorInterval)
		}
		still := pending[:0]
		for _, app := range pending {
			if err := s.registerProc(app); err != nil {
				still = append(still, app)
				continue
			}
			s.opts.Counters.Inc(metrics.CtrProcResyncs)
		}
		pending = still
	}
}
