package core

import (
	"sync"
	"testing"
	"time"

	"autoresched/internal/events"
	"autoresched/internal/hpcm"
	"autoresched/internal/jobs"
	"autoresched/internal/metrics"
	"autoresched/internal/workload"
)

// rankJacobi builds a rank factory: every rank runs an independent small
// Jacobi solve with a registered grid, so eviction checkpoints carry real
// state and restores resume it.
func rankJacobi(iters int) func(rank, gang int) hpcm.Main {
	return func(rank, gang int) hpcm.Main {
		return workload.Jacobi(workload.JacobiConfig{
			N: 8, Iters: iters, PollEvery: 1, WorkPerCell: 200,
		})
	}
}

// waitState polls (in wall time; the scaled clock runs underneath) until the
// job reaches the wanted state.
func waitState(t *testing.T, job *jobs.Job, want jobs.State) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for job.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("job %s state = %s, never reached %s", job.Name(), job.State(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSubmitGangRunsToCompletion: the queued path end to end — a gang of
// two is admitted by the dispatcher onto two distinct hosts, both ranks run
// as ordinary migration-enabled Apps, and the job settles Completed.
func TestSubmitGangRunsToCompletion(t *testing.T) {
	ctr := metrics.NewCounters()
	var mu sync.Mutex
	var trans []jobs.Event
	sink := events.On(func(ev jobs.Event) {
		mu.Lock()
		trans = append(trans, ev)
		mu.Unlock()
	})
	s, _ := newSystem(t, 1000, 4, Options{
		Counters:      ctr,
		Events:        sink,
		SchedInterval: 500 * time.Millisecond,
	})
	job, err := s.Submit(jobs.Spec{Name: "gang", Gang: 2, Rank: rankJacobi(20)})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := job.State(); got != jobs.StateCompleted {
		t.Fatalf("state = %s, want completed", got)
	}
	if got := ctr.Get(metrics.CtrJobsAdmitted); got != 1 {
		t.Fatalf("admitted counter = %d, want 1", got)
	}
	// The lifecycle ran pending -> reserving -> running -> completed.
	mu.Lock()
	defer mu.Unlock()
	var states []jobs.State
	for _, ev := range trans {
		states = append(states, ev.To)
	}
	want := []jobs.State{jobs.StatePending, jobs.StateReserving, jobs.StateRunning, jobs.StateCompleted}
	if len(states) != len(want) {
		t.Fatalf("transitions = %v, want %v", states, want)
	}
	for i, st := range want {
		if states[i] != st {
			t.Fatalf("transition %d = %s, want %s", i, states[i], st)
		}
	}
}

// TestSubmitPriorityPreemptionRequeue: a higher-priority gang evicts the
// lowest-priority running job from its contested hosts; the victim
// checkpoints at its next poll-point, requeues, and reruns from the
// checkpoint once capacity frees.
func TestSubmitPriorityPreemptionRequeue(t *testing.T) {
	ctr := metrics.NewCounters()
	store := hpcm.NewMemStore()
	s, _ := newSystem(t, 1000, 2, Options{
		Counters:      ctr,
		Checkpoints:   store,
		JobPolicy:     jobs.PriorityPreemptive{},
		SchedInterval: 300 * time.Millisecond,
	})
	victim, err := s.Submit(jobs.Spec{Name: "victim", Gang: 2, Priority: 0, Rank: rankJacobi(500)})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, victim, jobs.StateRunning)
	hi, err := s.Submit(jobs.Spec{Name: "hi", Gang: 1, Priority: 2, Rank: rankJacobi(20)})
	if err != nil {
		t.Fatal(err)
	}
	if err := hi.Wait(); err != nil {
		t.Fatalf("high-priority job: %v", err)
	}
	if err := victim.Wait(); err != nil {
		t.Fatalf("victim after requeue: %v", err)
	}
	if victim.Requeues() < 1 {
		t.Fatalf("victim requeues = %d, want >= 1", victim.Requeues())
	}
	if got := ctr.Get(metrics.CtrJobsRequeued); got < 1 {
		t.Fatalf("requeued counter = %d, want >= 1", got)
	}
	if got := ctr.Get(metrics.CtrCkptRestores); got < 1 {
		t.Fatalf("checkpoint restores = %d, want >= 1 (victim should resume, not cold-start)", got)
	}
}

// TestSubmitElasticShrink: an elastic victim yields only the contested host
// — it keeps running at the smaller world while the high-priority job takes
// the freed host, and never requeues.
func TestSubmitElasticShrink(t *testing.T) {
	ctr := metrics.NewCounters()
	s, _ := newSystem(t, 1000, 2, Options{
		Counters:      ctr,
		JobPolicy:     jobs.PriorityPreemptive{},
		SchedInterval: 300 * time.Millisecond,
	})
	victim, err := s.Submit(jobs.Spec{
		Name: "elastic", Gang: 2, Elastic: true, MinWorld: 1,
		Priority: 0, Rank: rankJacobi(120),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, victim, jobs.StateRunning)
	hi, err := s.Submit(jobs.Spec{Name: "hi", Gang: 1, Priority: 1, Rank: rankJacobi(20)})
	if err != nil {
		t.Fatal(err)
	}
	if err := hi.Wait(); err != nil {
		t.Fatalf("high-priority job: %v", err)
	}
	if err := victim.Wait(); err != nil {
		t.Fatalf("shrunk victim: %v", err)
	}
	if victim.Requeues() != 0 {
		t.Fatalf("victim requeues = %d, want 0 (shrink, not requeue)", victim.Requeues())
	}
	if got := ctr.Get(metrics.CtrJobsShrunk); got < 1 {
		t.Fatalf("shrunk counter = %d, want >= 1", got)
	}
}

// TestSubmitCancel: cancelling a pending job settles it immediately;
// cancelling a running job evicts its ranks and settles Cancelled.
func TestSubmitCancel(t *testing.T) {
	s, _ := newSystem(t, 1000, 1, Options{SchedInterval: 300 * time.Millisecond})
	running, err := s.Submit(jobs.Spec{Name: "running", Gang: 1, Rank: rankJacobi(500)})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, jobs.StateRunning)
	// The fleet is full, so this one stays pending.
	queued, err := s.Submit(jobs.Spec{Name: "queued", Gang: 1, Rank: rankJacobi(20)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CancelJob("queued"); err != nil {
		t.Fatal(err)
	}
	if err := queued.Wait(); err != jobs.ErrCancelled {
		t.Fatalf("queued.Wait = %v, want ErrCancelled", err)
	}
	if err := s.CancelJob("running"); err != nil {
		t.Fatal(err)
	}
	if err := running.Wait(); err != jobs.ErrCancelled {
		t.Fatalf("running.Wait = %v, want ErrCancelled", err)
	}
}

// TestSubmitConcurrentRace: concurrent submissions share the dispatcher,
// the queue, and the gang reservation path; everything drains. Run under
// -race this doubles as the reserve/commit data-race check.
func TestSubmitConcurrentRace(t *testing.T) {
	s, _ := newSystem(t, 1000, 4, Options{SchedInterval: 200 * time.Millisecond})
	const n = 8
	jobsOut := make([]*jobs.Job, n)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i))
			j, err := s.Submit(jobs.Spec{Name: name, Gang: 1 + i%2, Rank: rankJacobi(15)})
			if err != nil {
				t.Errorf("submit %s: %v", name, err)
				return
			}
			mu.Lock()
			jobsOut[i] = j
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	for _, j := range jobsOut {
		if j == nil {
			continue
		}
		if err := j.Wait(); err != nil {
			t.Fatalf("job %s: %v", j.Name(), err)
		}
	}
}

// TestLaunchShimNameReuse: Launch is a Submit shim; a second launch of the
// same name after the first completes must still work (the queue forgets
// terminal jobs on resubmission).
func TestLaunchShimNameReuse(t *testing.T) {
	s, _ := newSystem(t, 1000, 1, Options{})
	for i := 0; i < 2; i++ {
		app, err := s.Launch("again", "ws1", nil, rankJacobi(10)(0, 1))
		if err != nil {
			t.Fatalf("launch %d: %v", i, err)
		}
		if err := app.Wait(); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
	}
	job, ok := s.Queue().Get("again")
	if !ok {
		t.Fatal("launched job not in queue")
	}
	if got := job.State(); got != jobs.StateCompleted {
		t.Fatalf("state = %s, want completed", got)
	}
}
