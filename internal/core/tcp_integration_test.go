package core

import (
	"testing"
	"time"

	"autoresched/internal/cluster"
	"autoresched/internal/monitor"
	"autoresched/internal/proto"
	"autoresched/internal/registry"
	"autoresched/internal/rules"
	"autoresched/internal/simnode"
	"autoresched/internal/vclock"
)

// tcpReporter adapts a proto client into a monitor.Reporter, as
// cmd/reschedd does — duplicated here so the wire path is covered by the
// test suite.
type tcpReporter struct{ cli *proto.Client }

func (r *tcpReporter) RegisterHost(host string, static proto.StaticInfo) error {
	_, err := r.cli.Call(&proto.Message{Type: proto.TypeRegister, Static: &static})
	return err
}
func (r *tcpReporter) ReportStatus(host string, status proto.Status) error {
	_, err := r.cli.Call(&proto.Message{Type: proto.TypeStatus, Status: &status})
	return err
}
func (r *tcpReporter) UnregisterHost(host string) error {
	_, err := r.cli.Call(&proto.Message{Type: proto.TypeUnregister})
	return err
}

// TestMonitorToRegistryOverTCP runs the paper's deployment shape for the
// control plane: the registry/scheduler serves the XML protocol on a real
// TCP socket; a monitor on another "machine" registers, refreshes
// soft-state, and requests a migration candidate — all over the wire.
func TestMonitorToRegistryOverTCP(t *testing.T) {
	clock := vclock.Scaled(vclock.Epoch, 200)
	cl := cluster.New(cluster.Options{Clock: clock})
	if _, err := cl.AddHosts("ws", 2, simnode.Config{Speed: 1e6}); err != nil {
		t.Fatal(err)
	}

	reg := registry.NewRegistry(registry.WithClock(clock))
	srv, err := proto.NewServer("registry", "127.0.0.1:0", reg.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Two monitors, one per host, each over its own TCP connection.
	var monitors []*monitor.Monitor
	for _, host := range cl.Hosts() {
		cli, err := proto.Dial(host, srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		src, _ := cl.Source(host)
		m, err := monitor.NewMonitor(host, src,
			monitor.WithEngine(DefaultEngine()),
			monitor.WithReporter(&tcpReporter{cli: cli}),
			monitor.WithClock(clock),
			monitor.WithDefaultFrequency(10*time.Second),
			monitor.WithCommandAddr("cmd://"+host),
		)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Start(); err != nil {
			t.Fatal(err)
		}
		defer m.Stop()
		monitors = append(monitors, m)
	}

	// The registry learns both hosts and sees them free.
	deadline := time.Now().Add(10 * time.Second)
	for {
		hosts := reg.Hosts()
		ready := 0
		for _, h := range hosts {
			if h.State == rules.Free && h.Status.State == "free" {
				ready++
			}
		}
		if ready == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("registry never saw both hosts free: %+v", hosts)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A process registration and a candidate request over the wire (the
	// pull-style consult of the overloaded host).
	cli, err := proto.Dial("ws1", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Call(&proto.Message{
		Type:    proto.TypeProcessRegister,
		Process: &proto.ProcessInfo{PID: 42, Name: "test_tree", Start: clock.Now().UnixNano()},
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := cli.Call(&proto.Message{Type: proto.TypeCandidateRequest})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != proto.TypeCandidateResponse || !resp.Candidate.OK {
		t.Fatalf("candidate = %+v", resp)
	}
	if resp.Candidate.Host != "ws2" {
		t.Fatalf("candidate host = %s, want ws2 (ws1 excluded as the asker)", resp.Candidate.Host)
	}

	// Stopping the monitors unregisters the hosts over the wire too.
	for _, m := range monitors {
		m.Stop()
	}
	deadline = time.Now().Add(5 * time.Second)
	for len(reg.Hosts()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("hosts never unregistered: %+v", reg.Hosts())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
