package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"autoresched/internal/hpcm"
	"autoresched/internal/workload"
)

// TestAppSettledExactlyOnce: Settled closes exactly once, after the
// runtime's completion bookkeeping, and every concurrent Wait observes the
// same terminal error.
func TestAppSettledExactlyOnce(t *testing.T) {
	s, _ := newSystem(t, 1000, 1, Options{})
	boom := errors.New("boom")
	app, err := s.Launch("failing", "ws1", nil, func(ctx *hpcm.Context) error {
		ctx.PollPoint("only")
		return boom
	})
	if err != nil {
		t.Fatal(err)
	}
	const waiters = 8
	errs := make([]error, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = app.Wait()
		}(i)
	}
	wg.Wait()
	for i, got := range errs {
		if !errors.Is(got, boom) {
			t.Fatalf("waiter %d: Wait = %v, want boom", i, got)
		}
	}
	select {
	case <-app.Settled():
	default:
		t.Fatal("Settled not closed after Wait returned")
	}
	// Settled completion bookkeeping includes deregistration.
	if got := len(s.Registry().Processes("ws1")); got != 0 {
		t.Fatalf("processes still registered after settle: %d", got)
	}
}

// TestAppWaitErrorAfterExhaustedRetries: when every failover retry is spent
// the recoverable error propagates out of Wait, and Retries reports the
// consumed budget.
func TestAppWaitErrorAfterExhaustedRetries(t *testing.T) {
	store := hpcm.NewMemStore()
	s, _ := newSystem(t, 1000, 3, Options{
		Checkpoints:     store,
		CheckpointEvery: 20 * time.Second,
		FailoverRetries: 1,
	})
	cfg := workload.JacobiConfig{N: 8, Iters: 5000, PollEvery: 1, WorkPerCell: 500}
	app, err := s.Launch("doomed", "ws1", nil, workload.Jacobi(cfg))
	if err != nil {
		t.Fatal(err)
	}
	// First crash: consumed by the failover budget; the app restarts on a
	// fresh host.
	if err := s.CrashHost("ws1"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for app.Retries() < 1 || app.Host() == "ws1" {
		if time.Now().After(deadline) {
			t.Fatalf("failover never happened: retries=%d host=%s", app.Retries(), app.Host())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Second crash: the budget is spent, so the error is terminal.
	if err := s.CrashHost(app.Host()); err != nil {
		t.Fatal(err)
	}
	if err := app.Wait(); !errors.Is(err, hpcm.ErrKilled) {
		t.Fatalf("Wait = %v, want ErrKilled after exhausted retries", err)
	}
	if got := app.Retries(); got != 1 {
		t.Fatalf("retries = %d, want 1", got)
	}
}

// TestAppWaitAfterSettleIsImmediate: Wait on an already-settled app returns
// without blocking, repeatedly.
func TestAppWaitAfterSettleIsImmediate(t *testing.T) {
	s, _ := newSystem(t, 1000, 1, Options{})
	app, err := s.Launch("quick", "ws1", nil, func(ctx *hpcm.Context) error {
		ctx.PollPoint("only")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := app.Wait(); err != nil {
			t.Fatalf("Wait %d = %v", i, err)
		}
	}
}
