package core

import (
	"sync"
	"testing"
	"time"

	"autoresched/internal/cluster"
	"autoresched/internal/simnode"
	"autoresched/internal/vclock"
	"autoresched/internal/workload"
)

// TestHeterogeneousClusterPrefersCapableHost: the paper's setting is a
// heterogeneous network. With a slow and a fast spare host, the schema's
// minimum-CPU requirement steers the first-fit away from the too-slow host
// even though it registered first, and the app finishes faster than it
// would have at home.
func TestHeterogeneousClusterPrefersCapableHost(t *testing.T) {
	clock := vclock.Scaled(vclock.Epoch, 500)
	cl := cluster.New(cluster.Options{Clock: clock, Bandwidth: 12.5e6})
	// ws1: source (mid speed); ws2: slow spare; ws3: fast spare.
	if _, err := cl.AddHost("ws1", simnode.Config{Speed: 1e6}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.AddHost("ws2", simnode.Config{Speed: 2e5}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.AddHost("ws3", simnode.Config{Speed: 2e6}); err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{
		Cluster:         cl,
		MonitorInterval: 10 * time.Second,
		Warmup:          2,
		Cooldown:        2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddNodes("ws1", "ws2", "ws3"); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	cfg := workload.TreeConfig{
		Levels: 10, Rounds: 60, Seed: 17,
		WorkPerNode: 600, BytesPerNode: 8,
	}
	sch := cfg.Schema(1e6)
	// Require at least the source's computing power: ws2 (5x slower) must
	// not be chosen.
	sch.Requirements.MinCPUSpeed = 1e6
	var mu sync.Mutex
	sums := map[int]int64{}
	cfg.OnSum = func(round int, sum int64) {
		mu.Lock()
		sums[round] = sum
		mu.Unlock()
	}
	app, err := s.Launch("test_tree", "ws1", sch, workload.TestTree(cfg))
	if err != nil {
		t.Fatal(err)
	}
	ws1, _ := cl.Host("ws1")
	gen := workload.NewLoadGen(ws1, workload.LoadOptions{Workers: 3, Duty: 1.0, Period: 4 * time.Second})
	gen.Start()
	defer gen.Stop()

	if err := app.Wait(); err != nil {
		t.Fatal(err)
	}
	if app.Host() != "ws3" {
		t.Fatalf("app finished on %s, want the fast ws3 (ws2 fails the CPU requirement)", app.Host())
	}
	want := workload.ExpectedSums(cfg)
	mu.Lock()
	defer mu.Unlock()
	for round, sum := range want {
		if sums[round] != sum {
			t.Fatalf("round %d mismatch", round)
		}
	}
}
