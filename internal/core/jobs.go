package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"autoresched/internal/hpcm"
	"autoresched/internal/jobs"
	"autoresched/internal/metrics"
	"autoresched/internal/proto"
	"autoresched/internal/registry"
	"autoresched/internal/schema"
)

// This file is the live job dispatcher: the control-plane half of the
// multi-job redesign. Submit enqueues a jobs.Spec; a single dispatcher
// goroutine runs admission cycles on the sim clock, feeding a registry
// snapshot to the pure planner (jobs.PlanCycle) and executing its
// admissions — gangs reserved two-phase through the registry, preemption
// victims evicted by checkpoint-and-requeue, elastic shrink, or live
// migration off the contested hosts — and launches each rank as an
// ordinary migration-enabled App, so the paper's per-process autonomic
// rescheduling keeps working underneath the job layer.

const (
	// evictionPoll paces the executor's vacancy checks, in virtual time.
	evictionPoll = 100 * time.Millisecond
	// evictionTimeout bounds how long an admission waits for its contested
	// hosts to empty before giving the reservation back.
	evictionTimeout = 30 * time.Minute
)

// Eviction intents a jobRun can be put under.
const (
	intentRequeue = "requeue"
	intentCancel  = "cancel"
)

// jobRun is the runtime bookkeeping of one admitted job: the per-rank Apps
// and the eviction intent driving its settle decision.
type jobRun struct {
	name string
	spec jobs.Spec

	mu       sync.Mutex
	claimed  []string // admission placement, authoritative until launched
	launched bool
	slots    map[int]*rankSlot
	intent   string // "", intentRequeue, intentCancel
	failErr  error
}

// rankSlot is one rank's entry.
type rankSlot struct {
	app    *App
	done   bool
	shrunk bool // marked for shrink retirement; drops from the world on settle
}

// liveHosts returns the hosts the job currently occupies, in rank order.
func (run *jobRun) liveHosts() []string {
	run.mu.Lock()
	defer run.mu.Unlock()
	if !run.launched {
		return append([]string(nil), run.claimed...)
	}
	idx := make([]int, 0, len(run.slots))
	for i, sl := range run.slots {
		if !sl.done {
			idx = append(idx, i)
		}
	}
	sort.Ints(idx)
	hosts := make([]string, 0, len(idx))
	for _, i := range idx {
		hosts = append(hosts, run.slots[i].app.Host())
	}
	return hosts
}

// Queue returns the job queue (submission order, lifecycle snapshots).
func (s *System) Queue() *jobs.Queue { return s.queue }

// Submit is the multi-job front door. A spec with pinned Hosts is admitted
// synchronously on exactly those hosts — the compatibility path Launch
// rides on; an unpinned spec joins the queue and the dispatcher admits it
// when the policy and the fleet allow, preempting lower-priority running
// jobs under a preemptive policy.
func (s *System) Submit(spec jobs.Spec) (*jobs.Job, error) {
	job, _, err := s.submit(spec)
	return job, err
}

func (s *System) submit(spec jobs.Spec) (*jobs.Job, []*App, error) {
	if spec.Rank == nil {
		return nil, nil, errors.New("core: Spec.Rank is required")
	}
	job, err := s.queue.Submit(spec)
	if err != nil {
		// Name reuse after a terminal run (Launch relaunches names): drop
		// the finished predecessor and retry once.
		if s.queue.Forget(spec.Name) == nil {
			job, err = s.queue.Submit(spec)
		}
		if err != nil {
			return nil, nil, err
		}
	}
	spec = job.Spec()
	if len(spec.Hosts) > 0 {
		run := s.claimRun(spec, spec.Hosts)
		apps, err := s.launchRun(job, run)
		if err != nil {
			s.queue.Settle(spec.Name, jobs.StateFailed, err, "launch failed")
			_ = s.queue.Forget(spec.Name)
			return nil, nil, err
		}
		return job, apps, nil
	}
	s.ensureDispatcher()
	s.kickDispatcher()
	return job, nil, nil
}

// CancelJob cancels a job: a pending one terminates immediately, a running
// one has its ranks evicted (checkpointing at their next poll-point) and
// settles Cancelled once they stop. A job mid-admission or mid-preemption
// cannot be cancelled yet — retry after it lands.
func (s *System) CancelJob(name string) error {
	prior, err := s.queue.Cancel(name)
	if err != nil {
		return err
	}
	switch prior {
	case jobs.StateReserving, jobs.StatePreempting:
		return fmt.Errorf("core: job %q is mid-%s; cancel again once it settles", name, prior)
	case jobs.StateRunning:
		run := s.jobRun(name)
		if run == nil {
			return fmt.Errorf("core: job %q has no runtime state", name)
		}
		run.mu.Lock()
		run.intent = intentCancel
		for _, sl := range run.slots {
			if !sl.done {
				sl.app.Process().Evict()
			}
		}
		run.mu.Unlock()
	default:
		// A pending or already-terminal job has no runtime to tear down;
		// the queue's Cancel settled everything.
	}
	return nil
}

// RankApp returns the App of one rank of a running job (rank 0 of the
// single-job compatibility path is the App Launch returns).
func (s *System) RankApp(job string, rank int) (*App, error) {
	run := s.jobRun(job)
	if run == nil {
		return nil, fmt.Errorf("core: job %q is not running", job)
	}
	run.mu.Lock()
	defer run.mu.Unlock()
	sl, ok := run.slots[rank]
	if !ok {
		return nil, fmt.Errorf("core: job %q has no rank %d", job, rank)
	}
	return sl.app, nil
}

func (s *System) jobRun(name string) *jobRun {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobRuns[name]
}

// claimRun registers a jobRun covering hosts so concurrent admission cycles
// see them occupied — inserted before the gang reservation commits, so at
// every instant the hosts are protected either by the reservation marks or
// by this occupancy claim.
func (s *System) claimRun(spec jobs.Spec, hosts []string) *jobRun {
	run := &jobRun{
		name:    spec.Name,
		spec:    spec,
		claimed: append([]string(nil), hosts...),
		slots:   make(map[int]*rankSlot, len(hosts)),
	}
	s.mu.Lock()
	s.jobRuns[spec.Name] = run
	s.mu.Unlock()
	return run
}

func (s *System) dropRun(run *jobRun) {
	s.mu.Lock()
	// Pointer-checked: a requeued job may already have a fresh run under
	// the same name by the time a stale rank's settle drops the old one.
	if s.jobRuns[run.name] == run {
		delete(s.jobRuns, run.name)
	}
	s.mu.Unlock()
}

// ensureDispatcher starts the dispatcher goroutine on first queued Submit.
func (s *System) ensureDispatcher() {
	s.dispatchOnce.Do(func() {
		s.dispatcherOn.Store(true)
		go s.dispatchLoop()
	})
}

// kickDispatcher requests an immediate admission cycle (coalescing).
func (s *System) kickDispatcher() {
	select {
	case s.dispatchKick <- struct{}{}:
	default:
	}
}

// dispatchLoop runs admission cycles: on every kick (submission, capacity
// freed) and every SchedInterval of virtual time as a sweep.
func (s *System) dispatchLoop() {
	defer close(s.dispatchDone)
	for {
		timer := s.clock.NewTimer(s.opts.SchedInterval)
		select {
		case <-s.dispatchStop:
			timer.Stop()
			return
		case <-s.dispatchKick:
			timer.Stop()
		case <-timer.C:
		}
		s.runCycle()
	}
}

// runCycle snapshots the fleet and the queue, plans one admission cycle,
// and spawns an executor per admission. The plan is deterministic in the
// snapshot; executors run concurrently but on disjoint host sets (the
// planner's consistency guarantee plus the registry's reservation marks).
func (s *System) runCycle() {
	pending := s.queue.Pending()
	if len(pending) == 0 {
		return
	}
	s.mu.Lock()
	runs := make(map[string]*jobRun, len(s.jobRuns))
	for n, r := range s.jobRuns {
		runs[n] = r
	}
	s.mu.Unlock()

	// Refresh placements (ranks migrate and fail over underneath the job
	// layer) and build the occupancy map.
	occ := make(map[string]string)
	for name, run := range runs {
		hosts := run.liveHosts()
		s.queue.SetPlacement(name, hosts)
		for _, h := range hosts {
			occ[h] = name
		}
	}
	// The schedulable fleet: alive and unreserved (in-flight admissions
	// hold their targets as reservations, which drop out here).
	fleet := s.reg.EligibleHosts(registry.ProcInfo{}, nil)
	hostViews := make([]jobs.HostView, 0, len(fleet))
	for _, h := range fleet {
		hostViews = append(hostViews, jobs.HostView{Name: h.Name, Job: occ[h.Name]})
	}
	running := s.queue.Running()

	// Per-job host eligibility, from each job's schema.
	elig := make(map[string]map[string]bool)
	addElig := func(v jobs.JobView) {
		job, ok := s.queue.Get(v.Name)
		if !ok || job.Spec().Schema == nil {
			return
		}
		set := make(map[string]bool)
		for _, h := range s.reg.EligibleHosts(registry.ProcInfo{Name: v.Name, Schema: job.Spec().Schema}, nil) {
			set[h.Name] = true
		}
		elig[v.Name] = set
	}
	for _, v := range pending {
		addElig(v)
	}
	for _, v := range running {
		addElig(v)
	}

	view := jobs.ClusterView{
		Hosts:   hostViews,
		Running: running,
		Eligible: func(job, host string) bool {
			set, ok := elig[job]
			if !ok {
				return true
			}
			return set[host]
		},
	}
	for _, adm := range jobs.PlanCycle(s.policy, pending, view) {
		go s.execAdmission(adm, occ)
	}
}

// execAdmission carries one planned admission out: reserve, evict, commit,
// launch. Any failure puts the job back to Pending; the next cycle replans
// from the fleet as it then stands.
func (s *System) execAdmission(adm jobs.Admission, occ map[string]string) {
	defer s.kickDispatcher()
	if err := s.queue.Transition(adm.Job, jobs.StateReserving, "admitted"); err != nil {
		return
	}
	requeue := func(note string) {
		_ = s.queue.Transition(adm.Job, jobs.StatePending, note)
	}
	job, ok := s.queue.Get(adm.Job)
	if !ok {
		return
	}
	spec := job.Spec()

	var g *registry.GangReservation
	hosts := adm.Hosts
	if len(adm.Evictions) == 0 {
		// No contested hosts: let the registry's gang scheduler pick the
		// placement (PlaceGang consults the configured Scheduler; the
		// planner's host choice was only a feasibility proof).
		res, ok := s.reg.PlaceGang(
			registry.ProcInfo{Name: spec.Name, Schema: spec.Schema},
			spec.Gang,
			func(h string) bool { return occ[h] != "" },
		)
		if !ok {
			requeue("gang placement declined")
			return
		}
		g = res
		hosts = g.Hosts()
	} else {
		res, err := s.reg.ReserveHosts(hosts)
		if err != nil {
			requeue("reservation failed: " + err.Error())
			return
		}
		g = res
		for _, ev := range adm.Evictions {
			s.evictVictim(ev)
		}
		if !s.awaitVacated(adm) {
			g.Abort()
			requeue("eviction timed out")
			return
		}
	}
	run := s.claimRun(spec, hosts)
	if err := g.Commit(); err != nil {
		s.dropRun(run)
		s.opts.Counters.Inc(metrics.CtrJobsReservations)
		requeue("reservation lost: " + err.Error())
		return
	}
	if _, err := s.launchRun(job, run); err != nil {
		requeue("launch failed: " + err.Error())
		return
	}
	s.opts.Counters.Inc(metrics.CtrJobsAdmitted)
}

// evictVictim fires one eviction. Completion is observed by awaitVacated
// (hosts emptying) and the victim's own rank watchers (state transitions).
func (s *System) evictVictim(ev jobs.Eviction) {
	run := s.jobRun(ev.Job)
	if run == nil {
		return
	}
	switch ev.Mode {
	case jobs.EvictRequeue:
		_ = s.queue.Transition(ev.Job, jobs.StatePreempting, "preempted: requeue")
		run.mu.Lock()
		run.intent = intentRequeue
		for _, sl := range run.slots {
			if !sl.done {
				sl.app.Process().Evict()
			}
		}
		run.mu.Unlock()
	case jobs.EvictShrink:
		contested := make(map[string]bool, len(ev.Hosts))
		for _, h := range ev.Hosts {
			contested[h] = true
		}
		run.mu.Lock()
		for _, sl := range run.slots {
			if !sl.done && !sl.shrunk && contested[sl.app.Host()] {
				sl.shrunk = true
				sl.app.Process().Evict()
			}
		}
		run.mu.Unlock()
		s.opts.Counters.Inc(metrics.CtrJobsShrunk)
	case jobs.EvictMigrate:
		type move struct {
			from, to string
			pid      int
		}
		var moves []move
		run.mu.Lock()
		for _, sl := range run.slots {
			if sl.done {
				continue
			}
			if to, ok := ev.Moves[sl.app.Host()]; ok {
				moves = append(moves, move{from: sl.app.Host(), to: to, pid: sl.app.Process().PID()})
			}
		}
		run.mu.Unlock()
		for _, m := range moves {
			_ = s.Migrate(m.from, proto.MigrateOrder{
				PID:      m.pid,
				DestHost: m.to,
				DestAddr: "cmd://" + m.to,
			})
		}
		s.opts.Counters.Inc(metrics.CtrJobsMigrated)
	}
}

// awaitVacated polls in virtual time until no other job's live rank sits on
// any of the admission's target hosts.
func (s *System) awaitVacated(adm jobs.Admission) bool {
	target := make(map[string]bool, len(adm.Hosts))
	for _, h := range adm.Hosts {
		target[h] = true
	}
	deadline := s.clock.Now().Add(evictionTimeout)
	for {
		if s.hostsClear(adm.Job, target) {
			return true
		}
		if s.clock.Now().After(deadline) {
			return false
		}
		timer := s.clock.NewTimer(evictionPoll)
		select {
		case <-timer.C:
		case <-s.dispatchStop:
			timer.Stop()
			return false
		}
	}
}

// hostsClear reports whether no live rank of another job occupies any
// target host.
func (s *System) hostsClear(admitted string, target map[string]bool) bool {
	s.mu.Lock()
	runs := make([]*jobRun, 0, len(s.jobRuns))
	for _, r := range s.jobRuns {
		runs = append(runs, r)
	}
	s.mu.Unlock()
	for _, run := range runs {
		if run.name == admitted {
			continue
		}
		for _, h := range run.liveHosts() {
			if target[h] {
				return false
			}
		}
	}
	return true
}

// launchRun starts every rank of a claimed job on its placement and moves
// it to Running. Requeued jobs restore ranks from their checkpoints when
// the store has one; fresh admissions (and ranks without an image)
// cold-start. The rank apps are returned in rank order.
func (s *System) launchRun(job *jobs.Job, run *jobRun) ([]*App, error) {
	spec := run.spec
	restore := job.Requeues() > 0
	apps := make([]*App, 0, len(run.claimed))
	for i, host := range run.claimed {
		name := jobs.RankName(spec.Name, i, spec.Gang)
		app, err := s.startApp(name, host, spec.Schema, spec.Rank(i, spec.Gang), restore)
		if err != nil {
			// All-or-nothing: put the partial gang down (Evict, not Kill —
			// no failover burn on a launch we are unwinding ourselves).
			for _, a := range apps {
				a.Process().Evict()
			}
			s.dropRun(run)
			return nil, err
		}
		apps = append(apps, app)
		run.slots[i] = &rankSlot{app: app}
		// Wire the settle hook before the follow loop starts, so even an
		// instantly-finishing rank reports through the job state machine.
		idx := i
		app.onSettled = func(err error) { s.rankSettled(run, idx, err) }
		go app.follow()
	}
	run.mu.Lock()
	run.launched = true
	run.mu.Unlock()
	s.queue.SetPlacement(spec.Name, run.claimed)
	if err := s.queue.Transition(spec.Name, jobs.StateRunning, ""); err != nil {
		return nil, err
	}
	return apps, nil
}

// startApp launches (or restores) one migration-enabled process and wraps
// it in the App machinery — commander management, registry registration,
// and the follow loop with its failover budget. Launch and the job
// dispatcher share it.
func (s *System) startApp(name, host string, sch *schema.Schema, main hpcm.Main, restore bool) (*App, error) {
	node, ok := s.Node(host)
	if !ok {
		return nil, fmt.Errorf("core: no node on host %q", host)
	}
	var p *hpcm.Process
	if restore && s.opts.Checkpoints != nil {
		if _, ok, err := s.opts.Checkpoints.Load(name); err == nil && ok {
			restored, err := s.mw.Restore(s.opts.Checkpoints, name, host, main)
			if err == nil {
				p = restored
				s.opts.Counters.Inc(metrics.CtrCkptRestores)
			}
		}
	}
	if p == nil {
		fresh, err := s.mw.Start(name, host, main)
		if err != nil {
			return nil, err
		}
		p = fresh
	}
	app := &App{
		Proc:       p,
		Schema:     sch,
		sys:        s,
		main:       main,
		settled:    make(chan struct{}),
		pid:        p.PID(),
		host:       host,
		launchHost: host,
		launched:   s.clock.Now(),
	}
	node.Commander.Manage(p)
	if err := s.registerProc(app); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.apps = append(s.apps, app)
	s.mu.Unlock()
	// The caller wires app.onSettled and starts app.follow() — the hook
	// must be in place before the follow loop can observe completion.
	return app, nil
}

// rankSettled folds one rank's settle into the job state machine. It runs
// in the rank's follow goroutine, before the App's settled channel closes,
// so job-level bookkeeping is complete by the time App.Wait returns.
func (s *System) rankSettled(run *jobRun, idx int, err error) {
	run.mu.Lock()
	sl := run.slots[idx]
	sl.done = true
	preempted := errors.Is(err, hpcm.ErrPreempted)
	if err != nil && !preempted && run.failErr == nil {
		// Terminal rank failure (failover budget spent): a gang missing a
		// rank is no gang — put the others down too.
		run.failErr = err
		for _, other := range run.slots {
			if !other.done {
				other.app.Process().Evict()
			}
		}
	}
	allDone := true
	for _, other := range run.slots {
		if !other.done {
			allDone = false
			break
		}
	}
	intent, failErr, shrunk := run.intent, run.failErr, sl.shrunk
	run.mu.Unlock()

	if !allDone {
		if preempted && shrunk && intent == "" {
			// Shrink retirement: the survivors keep running at the
			// smaller world.
			s.queue.SetPlacement(run.name, run.liveHosts())
		}
		return
	}

	// Last rank down: settle (or requeue) the job.
	s.dropRun(run)
	switch {
	case intent == intentCancel:
		s.queue.Settle(run.name, jobs.StateCancelled, jobs.ErrCancelled, "cancelled")
	case intent == intentRequeue:
		s.opts.Counters.Inc(metrics.CtrJobsRequeued)
		_ = s.queue.Transition(run.name, jobs.StatePending, "requeued")
	case failErr != nil:
		s.queue.Settle(run.name, jobs.StateFailed, failErr, "rank failed")
	case preempted && !shrunk:
		// Evicted without a recorded intent (e.g. unwound mid-launch):
		// requeue rather than invent an outcome.
		s.opts.Counters.Inc(metrics.CtrJobsRequeued)
		_ = s.queue.Transition(run.name, jobs.StatePending, "requeued")
	default:
		s.queue.Settle(run.name, jobs.StateCompleted, nil, "")
	}
	if s.dispatcherOn.Load() {
		s.kickDispatcher()
	}
}
