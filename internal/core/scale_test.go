package core

import (
	"sync"
	"testing"
	"time"

	"autoresched/internal/workload"
)

// TestSixtyFourNodeCluster deploys the runtime at the paper's testbed size:
// 64 monitored workstations, several migration-enabled applications, a
// handful of overloaded hosts. Every application must finish correctly and
// every app on an overloaded host must have been moved off it.
func TestSixtyFourNodeCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("64-node run in -short mode")
	}
	s, cl := newSystem(t, 400, 64, Options{
		MonitorInterval: 20 * time.Second, // modest control-plane rate at this node count
		Warmup:          2,
		Cooldown:        3 * time.Minute,
	})

	// Four applications on the first four hosts.
	type run struct {
		app  *App
		cfg  workload.TreeConfig
		sums map[int]int64
		mu   sync.Mutex
	}
	var runs []*run
	for i := 0; i < 4; i++ {
		r := &run{sums: map[int]int64{}}
		r.cfg = workload.TreeConfig{
			Levels: 9, Rounds: 40, Seed: int64(100 + i),
			WorkPerNode: 800, BytesPerNode: 8,
		}
		r.cfg.OnSum = func(round int, sum int64) {
			r.mu.Lock()
			r.sums[round] = sum
			r.mu.Unlock()
		}
		host := cl.Hosts()[i]
		// Process names are unique in the middleware directory.
		name := "test_tree-" + host
		app, err := s.Launch(name, host, r.cfg.Schema(1e6), workload.TestTree(r.cfg))
		if err != nil {
			t.Fatal(err)
		}
		r.app = app
		runs = append(runs, r)
	}

	// Overload the first two hosts; their apps must migrate away.
	var gens []*workload.LoadGen
	for i := 0; i < 2; i++ {
		h, _ := cl.Host(cl.Hosts()[i])
		g := workload.NewLoadGen(h, workload.LoadOptions{Workers: 3, Duty: 1.0, Period: 4 * time.Second, Seed: int64(i)})
		g.Start()
		gens = append(gens, g)
	}
	defer func() {
		for _, g := range gens {
			g.Stop()
		}
	}()

	for i, r := range runs {
		if err := r.app.Wait(); err != nil {
			t.Fatalf("app %d: %v", i, err)
		}
		want := workload.ExpectedSums(r.cfg)
		r.mu.Lock()
		for round, sum := range want {
			if r.sums[round] != sum {
				t.Fatalf("app %d round %d sum mismatch", i, round)
			}
		}
		r.mu.Unlock()
	}
	for i := 0; i < 2; i++ {
		if runs[i].app.Host() == cl.Hosts()[i] {
			t.Fatalf("app %d finished on its overloaded origin %s", i, cl.Hosts()[i])
		}
		if runs[i].app.Proc.Migrations() < 1 {
			t.Fatalf("app %d never migrated", i)
		}
	}
	// The registry tracked the full cluster.
	if got := len(s.Registry().Hosts()); got != 64 {
		t.Fatalf("registry hosts = %d", got)
	}
	health := s.Registry().Health()
	if health.Hosts != 64 || health.Free < 32 {
		t.Fatalf("health = %+v", health)
	}
}
