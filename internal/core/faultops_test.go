package core

import (
	"sync"
	"testing"
	"time"

	"autoresched/internal/hpcm"
	"autoresched/internal/metrics"
	"autoresched/internal/workload"
)

// TestFailoverAfterHostCrash exercises the automatic recovery loop: the
// application checkpoints periodically, its host crashes, and the runtime —
// without any caller involvement — restores the last checkpoint onto a
// fresh first-fit host and runs the computation to a correct completion.
func TestFailoverAfterHostCrash(t *testing.T) {
	store := hpcm.NewMemStore()
	ctr := metrics.NewCounters()
	s, _ := newSystem(t, 1000, 3, Options{
		Checkpoints:     store,
		CheckpointEvery: 20 * time.Second,
		FailoverRetries: 2,
		Counters:        ctr,
	})

	cfg := workload.TreeConfig{
		Levels: 10, Rounds: 40, Seed: 11,
		WorkPerNode: 600, BytesPerNode: 8,
	}
	var mu sync.Mutex
	sums := map[int]int64{}
	cfg.OnSum = func(round int, sum int64) {
		mu.Lock()
		sums[round] = sum
		mu.Unlock()
	}
	app, err := s.Launch("test_tree", "ws1", cfg.Schema(1e6), workload.TestTree(cfg))
	if err != nil {
		t.Fatal(err)
	}

	// Let it write at least one checkpoint, then crash its host.
	deadline := time.Now().Add(15 * time.Second)
	for app.Process().Checkpoints() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("never checkpointed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := s.CrashHost("ws1"); err != nil {
		t.Fatal(err)
	}

	if err := app.Wait(); err != nil {
		t.Fatalf("Wait after failover = %v", err)
	}
	if app.Retries() != 1 {
		t.Fatalf("retries = %d, want 1", app.Retries())
	}
	if got := app.Host(); got == "ws1" {
		t.Fatal("app finished on the crashed host")
	}
	if ctr.Get(metrics.CtrCkptRestores) != 1 {
		t.Fatalf("checkpoint restores = %d, want 1", ctr.Get(metrics.CtrCkptRestores))
	}

	want := workload.ExpectedSums(cfg)
	mu.Lock()
	defer mu.Unlock()
	if len(sums) != cfg.Rounds {
		t.Fatalf("rounds completed = %d/%d", len(sums), cfg.Rounds)
	}
	for round, sum := range want {
		if sums[round] != sum {
			t.Fatalf("round %d sum = %d, want %d", round, sums[round], sum)
		}
	}
}

// TestRegistryRestartResyncsSoftState: after the registry drops its soft
// state, heartbeats re-register the hosts and the runtime resyncs its live
// process registrations.
func TestRegistryRestartResyncsSoftState(t *testing.T) {
	ctr := metrics.NewCounters()
	s, _ := newSystem(t, 1000, 2, Options{
		MonitorInterval: 10 * time.Second,
		Counters:        ctr,
	})
	cfg := workload.TreeConfig{
		Levels: 10, Rounds: 200, Seed: 3,
		WorkPerNode: 2000, BytesPerNode: 8,
	}
	app, err := s.Launch("test_tree", "ws1", cfg.Schema(1e6), workload.TestTree(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Registry().Processes("ws1")); got != 1 {
		t.Fatalf("processes before restart = %d", got)
	}

	s.RestartRegistry()

	// Hosts come back with the next heartbeats; the process registration is
	// resynced by the runtime.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if len(s.Registry().Processes("ws1")) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("process never re-registered; hosts=%d procs=%d",
				len(s.Registry().Hosts()), len(s.Registry().Processes("ws1")))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ctr.Get(metrics.CtrRegistryRestarts) != 1 {
		t.Fatalf("restart counter = %d", ctr.Get(metrics.CtrRegistryRestarts))
	}
	if ctr.Get(metrics.CtrProcResyncs) < 1 {
		t.Fatalf("resync counter = %d", ctr.Get(metrics.CtrProcResyncs))
	}
	app.Process().Kill()
	_ = app.Wait()
}
