package core

import (
	"sync"
	"testing"
	"time"

	"autoresched/internal/cluster"
	"autoresched/internal/hpcm"
	"autoresched/internal/rules"
	"autoresched/internal/simnode"
	"autoresched/internal/vclock"
	"autoresched/internal/workload"
)

func newSystem(t *testing.T, scale float64, hosts int, opts Options) (*System, *cluster.Cluster) {
	t.Helper()
	clock := vclock.Scaled(vclock.Epoch, scale)
	cl := cluster.New(cluster.Options{Clock: clock, Bandwidth: 12.5e6})
	names, err := cl.AddHosts("ws", hosts, simnode.Config{Speed: 1e6, MemTotal: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	opts.Cluster = cl
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddNodes(names...); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s, cl
}

func TestNewValidatesOptions(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New without cluster accepted")
	}
}

func TestAddNodeErrors(t *testing.T) {
	s, _ := newSystem(t, 500, 1, Options{})
	if _, err := s.AddNode("ghost"); err == nil {
		t.Fatal("node on unknown host accepted")
	}
	if _, err := s.AddNode("ws1"); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, ok := s.Node("ws1"); !ok {
		t.Fatal("node lookup failed")
	}
}

func TestMonitorsRegisterHosts(t *testing.T) {
	s, _ := newSystem(t, 500, 3, Options{})
	deadline := time.Now().Add(5 * time.Second)
	for len(s.Registry().Hosts()) < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("hosts registered = %d", len(s.Registry().Hosts()))
		}
		time.Sleep(time.Millisecond)
	}
	// After a few cycles every idle host reports free.
	time.Sleep(100 * time.Millisecond)
	for _, h := range s.Registry().Hosts() {
		if h.State != rules.Free {
			t.Fatalf("host %s state = %v", h.Name, h.State)
		}
	}
}

func TestLaunchRequiresNode(t *testing.T) {
	s, _ := newSystem(t, 500, 1, Options{})
	_, err := s.Launch("x", "nope", nil, func(ctx *hpcm.Context) error { return nil })
	if err == nil {
		t.Fatal("launch on unknown node accepted")
	}
}

// TestAutonomicLoopEndToEnd runs the paper's core scenario: a
// migration-enabled test_tree starts on ws1; background load overloads ws1;
// the monitor reports it, the registry picks the process and a free host,
// the commander signals, and the process migrates and finishes elsewhere,
// with correct results.
func TestAutonomicLoopEndToEnd(t *testing.T) {
	s, cl := newSystem(t, 1000, 3, Options{
		MonitorInterval: 10 * time.Second,
		Warmup:          3,
		Cooldown:        2 * time.Minute,
	})

	cfg := workload.TreeConfig{
		Levels: 10, Rounds: 60, Seed: 7,
		WorkPerNode: 600, BytesPerNode: 8,
	}
	// (3+10 phases) * 1023 nodes * 600 * 60 rounds / 1e6 speed ≈ 480
	// virtual seconds of solo work — long enough for the load average to
	// build, the warm-up to elapse and the migration to pay off.
	sch := cfg.Schema(1e6)
	var mu sync.Mutex
	sums := map[int]int64{}
	cfg.OnSum = func(round int, sum int64) {
		mu.Lock()
		sums[round] = sum
		mu.Unlock()
	}
	app, err := s.Launch("test_tree", "ws1", sch, workload.TestTree(cfg))
	if err != nil {
		t.Fatal(err)
	}

	// Overload ws1 with three always-busy workers.
	ws1, _ := cl.Host("ws1")
	loadgen := workload.NewLoadGen(ws1, workload.LoadOptions{Workers: 3, Duty: 1.0, Period: 4 * time.Second})
	loadgen.Start()
	defer loadgen.Stop()

	if err := app.Wait(); err != nil {
		t.Fatal(err)
	}
	if app.Proc.Migrations() < 1 {
		t.Fatal("process never migrated despite overload")
	}
	if app.Host() == "ws1" {
		t.Fatalf("process finished on the overloaded host")
	}
	rec := app.Proc.Records()[0]
	if rec.From != "ws1" {
		t.Fatalf("record = %+v", rec)
	}
	if rec.MigrationTime() <= 0 {
		t.Fatalf("migration time = %v", rec.MigrationTime())
	}

	want := workload.ExpectedSums(cfg)
	mu.Lock()
	defer mu.Unlock()
	if len(sums) != cfg.Rounds {
		t.Fatalf("rounds completed = %d/%d", len(sums), cfg.Rounds)
	}
	for round, sum := range want {
		if sums[round] != sum {
			t.Fatalf("round %d sum = %d, want %d", round, sums[round], sum)
		}
	}

	// The registry should know the process finished (no processes left).
	deadline := time.Now().Add(5 * time.Second)
	for {
		left := 0
		for _, h := range s.Registry().Hosts() {
			left += len(s.Registry().Processes(h.Name))
		}
		if left == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("registry still tracks %d processes", left)
		}
		time.Sleep(time.Millisecond)
	}
	ordered, _ := s.Registry().Stats()
	if ordered < 1 {
		t.Fatal("registry issued no orders")
	}
}

// TestPolicyDrivenSystemAvoidsCommunicatingHost: with Policy3 and a
// communication-busy early host, the system picks the quiet one.
func TestPolicyDrivenSystemAvoidsCommunicatingHost(t *testing.T) {
	// Modest clock scale: the communication generator's achieved rate must
	// stay well above policy 3's 3 MB/s threshold, and goroutine wake-up
	// latency eats virtual bandwidth proportionally to the scale.
	s, cl := newSystem(t, 250, 4, Options{
		Policy:          rules.Policy3(),
		MonitorInterval: 10 * time.Second,
		Warmup:          2,
		Cooldown:        2 * time.Minute,
	})
	// ws2 exchanges traffic with ws4 (ws2 registered before ws3, so a
	// communication-blind first-fit would pick it).
	comm := workload.NewCommLoad(s.Clock(), cl.Net(), "ws2", "ws4",
		workload.CommOptions{Rate: 7e6, Chunk: 8 << 20, Bidirectional: true})
	comm.Start()
	defer comm.Stop()

	cfg := workload.TreeConfig{Levels: 10, Rounds: 50, Seed: 3, WorkPerNode: 600, BytesPerNode: 8}
	app, err := s.Launch("test_tree", "ws1", cfg.Schema(1e6), workload.TestTree(cfg))
	if err != nil {
		t.Fatal(err)
	}
	ws1, _ := cl.Host("ws1")
	loadgen := workload.NewLoadGen(ws1, workload.LoadOptions{Workers: 3, Duty: 1.0, Period: 4 * time.Second})
	loadgen.Start()
	defer loadgen.Stop()

	if err := app.Wait(); err != nil {
		t.Fatal(err)
	}
	if app.Proc.Migrations() < 1 {
		t.Fatal("no migration")
	}
	if to := app.Proc.Records()[0].To; to != "ws3" {
		t.Fatalf("migrated to %s, want ws3 (policy3 skips the communicating ws2)", to)
	}
}

func TestSchemaFeedbackAfterCompletion(t *testing.T) {
	s, _ := newSystem(t, 2000, 1, Options{})
	cfg := workload.TreeConfig{Levels: 8, Rounds: 3, Seed: 1, WorkPerNode: 4, BytesPerNode: 8}
	sch := cfg.Schema(1e6)
	app, err := s.Launch("test_tree", "ws1", sch, workload.TestTree(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Wait(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-app.Settled():
	case <-time.After(5 * time.Second):
		t.Fatal("app never settled")
	}
	if sch.Stats.Runs == 0 {
		t.Fatal("schema statistics never updated")
	}
	if sch.Work() <= 0 {
		t.Fatalf("observed work = %v", sch.Work())
	}
}

func TestGatherCostShowsUpOnHost(t *testing.T) {
	clock := vclock.Scaled(vclock.Epoch, 2000)
	cl := cluster.New(cluster.Options{Clock: clock})
	if _, err := cl.AddHost("ws1", simnode.Config{Speed: 1e6}); err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{Cluster: cl, GatherCost: 5000, MonitorInterval: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddNode("ws1"); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	host, _ := cl.Host("ws1")
	// The monitor's charger occupies the process table.
	if host.NumProcs() != 1 {
		t.Fatalf("NumProcs = %d, want the monitor's charger", host.NumProcs())
	}
	clock.Sleep(2 * time.Minute)
	busy, _ := host.CPUTimes()
	if busy <= 0 {
		t.Fatal("gather cost never charged")
	}
	s.Stop()
	if host.NumProcs() != 0 {
		t.Fatalf("charger not removed on stop: %d", host.NumProcs())
	}
}
