package registry

import (
	"fmt"
	"testing"

	"autoresched/internal/rules"
)

func view(states map[string]rules.State, order ...string) []HostInfo {
	out := make([]HostInfo, 0, len(order))
	for _, name := range order {
		out = append(out, HostInfo{Name: name, State: states[name]})
	}
	return out
}

func TestElasticAdvisorGrowsOntoFreeHosts(t *testing.T) {
	hosts := view(map[string]rules.State{
		"a": rules.Busy, "b": rules.Busy, "c": rules.Free, "d": rules.Free,
	}, "a", "b", "c", "d")
	target, ok := ElasticAdvisor{}.Advise([]string{"a", "b"}, hosts)
	if !ok {
		t.Fatal("advisor declined a clear grow")
	}
	if got := fmt.Sprint(target); got != "[a b c d]" {
		t.Fatalf("target = %s, want [a b c d]", got)
	}
}

func TestElasticAdvisorShrinksOffOverloadedHosts(t *testing.T) {
	hosts := view(map[string]rules.State{
		"a": rules.Busy, "b": rules.Overloaded, "c": rules.Busy,
	}, "a", "b", "c")
	target, ok := ElasticAdvisor{}.Advise([]string{"a", "b", "c"}, hosts)
	if !ok {
		t.Fatal("advisor declined a clear shrink")
	}
	if got := fmt.Sprint(target); got != "[a c]" {
		t.Fatalf("target = %s, want [a c]", got)
	}
}

func TestElasticAdvisorReplacesOverloadedWithFree(t *testing.T) {
	// Same-size swap: the resize that subsumes migration.
	hosts := view(map[string]rules.State{
		"a": rules.Busy, "b": rules.Overloaded, "c": rules.Free,
	}, "a", "b", "c")
	target, ok := ElasticAdvisor{MaxWorld: 2}.Advise([]string{"a", "b"}, hosts)
	if !ok {
		t.Fatal("advisor declined a swap")
	}
	if got := fmt.Sprint(target); got != "[a c]" {
		t.Fatalf("target = %s, want [a c]", got)
	}
}

func TestElasticAdvisorPinsRoot(t *testing.T) {
	// The root host is kept even when overloaded or unknown.
	hosts := view(map[string]rules.State{
		"a": rules.Overloaded, "b": rules.Busy,
	}, "a", "b")
	target, ok := ElasticAdvisor{}.Advise([]string{"a", "b"}, hosts)
	if ok {
		t.Fatalf("nothing to change but root eviction was proposed: %v", target)
	}
	target, ok = ElasticAdvisor{}.Advise([]string{"zz", "b"}, hosts)
	if ok && target[0] != "zz" {
		t.Fatalf("root not pinned: %v", target)
	}
}

func TestElasticAdvisorDropsUnknownAndUnavailable(t *testing.T) {
	hosts := view(map[string]rules.State{
		"a": rules.Busy, "b": rules.Unavailable,
	}, "a", "b")
	target, ok := ElasticAdvisor{}.Advise([]string{"a", "b", "ghost"}, hosts)
	if !ok {
		t.Fatal("advisor declined dropping dead hosts")
	}
	if got := fmt.Sprint(target); got != "[a]" {
		t.Fatalf("target = %s, want [a]", got)
	}
}

func TestElasticAdvisorMaxWorldCap(t *testing.T) {
	hosts := view(map[string]rules.State{
		"a": rules.Busy, "c": rules.Free, "d": rules.Free, "e": rules.Free,
	}, "a", "c", "d", "e")
	target, ok := ElasticAdvisor{MaxWorld: 3}.Advise([]string{"a"}, hosts)
	if !ok {
		t.Fatal("advisor declined a capped grow")
	}
	if got := fmt.Sprint(target); got != "[a c d]" {
		t.Fatalf("target = %s, want [a c d] (cap 3)", got)
	}
}

func TestElasticAdvisorMinWorldDecline(t *testing.T) {
	// Shrinking below MinWorld is withheld: better to ride out contention
	// than to collapse the job.
	hosts := view(map[string]rules.State{
		"a": rules.Busy, "b": rules.Overloaded, "c": rules.Overloaded,
	}, "a", "b", "c")
	if target, ok := (ElasticAdvisor{MinWorld: 2}).Advise([]string{"a", "b", "c"}, hosts); ok {
		t.Fatalf("advisor proposed %v below MinWorld", target)
	}
	// Without the floor the same view shrinks to the root alone.
	if _, ok := (ElasticAdvisor{}).Advise([]string{"a", "b", "c"}, hosts); !ok {
		t.Fatal("advisor declined an uncapped shrink")
	}
}

func TestElasticAdvisorNoChangeDeclined(t *testing.T) {
	hosts := view(map[string]rules.State{
		"a": rules.Busy, "b": rules.Busy,
	}, "a", "b")
	if target, ok := (ElasticAdvisor{}).Advise([]string{"a", "b"}, hosts); ok {
		t.Fatalf("advisor proposed a no-op resize: %v", target)
	}
	if _, ok := (ElasticAdvisor{}).Advise(nil, hosts); ok {
		t.Fatal("advisor proposed for an empty placement")
	}
}
