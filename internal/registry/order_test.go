package registry

import (
	"fmt"
	"testing"

	"autoresched/internal/events"
	"autoresched/internal/proto"
	"autoresched/internal/vclock"
)

// TestHostsDeterministicOrder pins the documented contract: Hosts() returns
// registration order, surviving interleaved unregistrations, state changes
// and re-registrations (a re-registered host joins at the back).
func TestHostsDeterministicOrder(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	r := newFromConfig(Config{Clock: clock})
	for i := 1; i <= 5; i++ {
		h := fmt.Sprintf("ws%d", i)
		if err := r.RegisterHost(h, staticFor(h)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.UnregisterHost("ws2"); err != nil {
		t.Fatal(err)
	}
	if err := r.ReportStatus("ws4", status("overloaded", 3, 200)); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterHost("ws2", staticFor("ws2")); err != nil {
		t.Fatal(err)
	}
	want := []string{"ws1", "ws3", "ws4", "ws5", "ws2"}
	for trial := 0; trial < 3; trial++ {
		hosts := r.Hosts()
		if len(hosts) != len(want) {
			t.Fatalf("len(Hosts()) = %d, want %d", len(hosts), len(want))
		}
		for i, h := range hosts {
			if h.Name != want[i] {
				t.Fatalf("Hosts()[%d] = %s, want %s (trial %d)", i, h.Name, want[i], trial)
			}
		}
	}
}

// TestProcessesDeterministicOrder pins the other half of the contract:
// Processes() returns PID order regardless of registration order.
func TestProcessesDeterministicOrder(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	r := newFromConfig(Config{Clock: clock})
	if err := r.RegisterHost("ws1", staticFor("ws1")); err != nil {
		t.Fatal(err)
	}
	for _, pid := range []int{42, 7, 19} {
		if err := r.RegisterProcess("ws1", proto.ProcessInfo{
			PID: pid, Start: clock.Now().UnixNano(),
		}); err != nil {
			t.Fatal(err)
		}
	}
	procs := r.Processes("ws1")
	if len(procs) != 3 || procs[0].PID != 7 || procs[1].PID != 19 || procs[2].PID != 42 {
		t.Fatalf("Processes() = %+v, want PID order 7,19,42", procs)
	}
}

// TestTraceEventsReachUnifiedSink: a registry wired with Config.Events
// publishes its decision trace on the unified stream, one event per trace
// entry, under Source "registry".
func TestTraceEventsReachUnifiedSink(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	ring := &events.Ring{}
	sink := &fakeSink{}
	r := newFromConfig(Config{
		Clock: clock, Commands: sink, Warmup: 2, Events: ring,
	})
	for _, h := range []string{"ws1", "ws4"} {
		if err := r.RegisterHost(h, staticFor(h)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.RegisterProcess("ws1", proto.ProcessInfo{
		PID: 7, Name: "test_tree", Start: clock.Now().UnixNano(), SchemaXML: testTreeXML(t),
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.ReportStatus("ws4", status("free", 0.1, 5)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := r.ReportStatus("ws1", status("overloaded", 3, 200)); err != nil {
			t.Fatal(err)
		}
	}
	if got := ring.CountBy(events.SourceRegistry, "warmup"); got != 1 {
		t.Fatalf("warmup events = %d, want 1", got)
	}
	if got := ring.CountBy(events.SourceRegistry, "ordered"); got != 1 {
		t.Fatalf("ordered events = %d, want 1", got)
	}
	// The unified stream mirrors the legacy trace one-for-one.
	if got, want := ring.CountBy(events.SourceRegistry, ""), len(r.Trace()); got != want {
		t.Fatalf("unified events = %d, trace entries = %d", got, want)
	}
}
