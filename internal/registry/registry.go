// Package registry implements the registry/scheduler entity (Section 3.2):
// soft-state host registration over the push model (hosts that stop
// refreshing become unavailable), process registration with application
// schemas, "first fit" destination selection, process selection by latest
// estimated completion time (Section 4), and the hierarchical arrangement in
// which a domain's registry delegates to its upper-level registry when no
// local host fits.
package registry

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"autoresched/internal/metrics"
	"autoresched/internal/proto"
	"autoresched/internal/rules"
	"autoresched/internal/schema"
	"autoresched/internal/sysinfo"
	"autoresched/internal/vclock"
)

// CommandSink dispatches migrate orders to a host's commander.
type CommandSink interface {
	Migrate(host string, order proto.MigrateOrder) error
}

// Config configures a registry/scheduler.
type Config struct {
	// Name identifies this registry in protocol traffic.
	Name string
	// Clock drives lease expiry; nil selects the real clock.
	Clock vclock.Clock
	// Lease is how long a host stays alive without a refresh; zero selects
	// 35 seconds (a few missed 10-second refreshes).
	Lease time.Duration
	// Policy decides when to migrate and which destinations qualify. Nil
	// selects the pure state-based policy: migrate off overloaded hosts,
	// onto free hosts (Table 1 semantics).
	Policy *rules.MigrationPolicy
	// Probes evaluates policy conditions; nil selects the standard set.
	Probes *sysinfo.Probes
	// Commands receives migrate orders; nil leaves the registry passive
	// (candidates are still served on request).
	Commands CommandSink
	// Parent is the upper-level registry consulted when no local host
	// fits (the hierarchical arrangement of Section 3.2).
	Parent *Registry
	// Warmup is how many consecutive qualifying reports a host must send
	// before the scheduler acts — the configurable damping that gave the
	// paper its 72-second reaction and avoided "fault migration caused by
	// small system performance variations". Zero selects 3.
	Warmup int
	// Cooldown is the minimum gap between migrate orders concerning the
	// same source host; zero selects 60 seconds.
	Cooldown time.Duration
	// OnEvent, if set, observes every scheduling-decision event as it
	// happens (the trace is also kept in a ring buffer; see Trace).
	OnEvent func(Event)
	// Counters, when set, receives the registry/* control-plane counters.
	Counters *metrics.Counters
}

// HostInfo is the registry's view of one host.
type HostInfo struct {
	Name     string
	Static   proto.StaticInfo
	Status   proto.Status
	State    rules.State
	LastSeen time.Time
}

// ProcInfo is the registry's view of one migration-enabled process.
type ProcInfo struct {
	Host   string
	PID    int
	Name   string
	Start  time.Time
	Schema *schema.Schema
}

type hostEntry struct {
	info     HostInfo
	warmup   int
	lastCmd  time.Time
	hasCmd   bool
	regOrder int
}

type procKey struct {
	host string
	pid  int
}

// Registry is a registry/scheduler instance.
type Registry struct {
	cfg    Config
	clock  vclock.Clock
	probes *sysinfo.Probes

	mu       sync.Mutex
	hosts    map[string]*hostEntry
	procs    map[procKey]*ProcInfo
	events   []Event
	regSeq   int
	decided  int // migrate orders issued
	declined int // decision cycles that found no destination
}

// New creates a registry/scheduler.
func New(cfg Config) *Registry {
	if cfg.Name == "" {
		cfg.Name = "registry"
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real()
	}
	if cfg.Lease <= 0 {
		cfg.Lease = 35 * time.Second
	}
	if cfg.Probes == nil {
		cfg.Probes = sysinfo.StandardProbes()
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 3
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 60 * time.Second
	}
	return &Registry{
		cfg:    cfg,
		clock:  cfg.Clock,
		probes: cfg.Probes,
		hosts:  make(map[string]*hostEntry),
		procs:  make(map[procKey]*ProcInfo),
	}
}

// RegisterHost records a host's static information (one-time registration).
// Re-registering refreshes the static information and the lease.
func (r *Registry) RegisterHost(host string, static proto.StaticInfo) error {
	if host == "" {
		return errors.New("registry: empty host name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.hosts[host]
	if !ok {
		r.regSeq++
		e = &hostEntry{regOrder: r.regSeq}
		r.hosts[host] = e
	}
	e.info.Name = host
	e.info.Static = static
	e.info.LastSeen = r.clock.Now()
	e.info.State = rules.Free
	return nil
}

// ReportStatus is the soft-state refresh: it updates the host's dynamic
// information, renews the lease, and — when a command sink is configured —
// runs the scheduling decision.
func (r *Registry) ReportStatus(host string, status proto.Status) error {
	r.mu.Lock()
	e, ok := r.hosts[host]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("registry: status from unregistered host %q", host)
	}
	state, err := rules.ParseState(status.State)
	if err != nil {
		r.mu.Unlock()
		return err
	}
	e.info.Status = status
	e.info.State = state
	e.info.LastSeen = r.clock.Now()
	r.mu.Unlock()

	if r.cfg.Commands != nil {
		r.decide(host)
	}
	return nil
}

// Restart simulates a registry crash and restart: all soft state — host
// registrations, process registrations, warmup and cooldown bookkeeping —
// is dropped, exactly as a freshly started registry would have none of it.
// The protocol's soft-state design makes this survivable: monitors
// re-register when their next refresh is rejected, and the runtime resyncs
// its processes. The decision trace is diagnostic state, not protocol
// state, so it survives.
func (r *Registry) Restart() {
	r.mu.Lock()
	r.hosts = make(map[string]*hostEntry)
	r.procs = make(map[procKey]*ProcInfo)
	r.regSeq = 0
	r.mu.Unlock()
	r.cfg.Counters.Inc(metrics.CtrRegistryRestarts)
	r.trace(EventRestart, "", 0, "", "soft state dropped")
}

// UnregisterHost withdraws a host and its processes.
func (r *Registry) UnregisterHost(host string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.hosts, host)
	for k := range r.procs {
		if k.host == host {
			delete(r.procs, k)
		}
	}
	return nil
}

// alive reports whether a host's lease is fresh.
func (r *Registry) aliveLocked(e *hostEntry, now time.Time) bool {
	return now.Sub(e.info.LastSeen) <= r.cfg.Lease
}

// Hosts returns every known host; hosts with expired leases are reported
// Unavailable.
func (r *Registry) Hosts() []HostInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock.Now()
	out := make([]HostInfo, 0, len(r.hosts))
	for _, e := range r.ordered() {
		info := e.info
		if !r.aliveLocked(e, now) {
			info.State = rules.Unavailable
		}
		out = append(out, info)
	}
	return out
}

// ordered returns host entries in registration order (the order "first fit"
// scans). Callers hold the lock.
func (r *Registry) ordered() []*hostEntry {
	out := make([]*hostEntry, 0, len(r.hosts))
	for _, e := range r.hosts {
		out = append(out, e)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].regOrder > out[j].regOrder; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// RegisterProcess records a migration-enabled process and its application
// schema (carried as XML, as on the wire).
func (r *Registry) RegisterProcess(host string, info proto.ProcessInfo) error {
	var sch *schema.Schema
	if info.SchemaXML != "" {
		parsed, err := schema.Unmarshal([]byte(info.SchemaXML))
		if err != nil {
			return fmt.Errorf("registry: process schema: %w", err)
		}
		sch = parsed
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.hosts[host]; !ok {
		return fmt.Errorf("registry: process from unregistered host %q", host)
	}
	r.procs[procKey{host, info.PID}] = &ProcInfo{
		Host:   host,
		PID:    info.PID,
		Name:   info.Name,
		Start:  time.Unix(0, info.Start),
		Schema: sch,
	}
	return nil
}

// ProcessExit withdraws a process.
func (r *Registry) ProcessExit(host string, pid int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.procs, procKey{host, pid})
	return nil
}

// Processes returns the registered processes on a host.
func (r *Registry) Processes(host string) []ProcInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []ProcInfo
	for k, p := range r.procs {
		if k.host == host {
			out = append(out, *p)
		}
	}
	return out
}

// SelectProcess picks the process to migrate off a host: the one with the
// latest estimated completion time, "to reduce the possibility of migrating
// multiple processes" (Section 4). Completion is estimated from the
// pid-file start time and the schema's execution estimate on the host's
// computing power.
func (r *Registry) SelectProcess(host string) (ProcInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.hosts[host]
	if !ok {
		return ProcInfo{}, false
	}
	speed := e.info.Static.CPUSpeed
	var best *ProcInfo
	var bestDone time.Time
	for k, p := range r.procs {
		if k.host != host {
			continue
		}
		done := p.Start
		if p.Schema != nil {
			done = p.Schema.EstimatedCompletion(p.Start, speed)
		}
		if best == nil || done.After(bestDone) {
			best = p
			bestDone = done
		}
	}
	if best == nil {
		return ProcInfo{}, false
	}
	return *best, true
}

// Stats reports how many migrate orders were issued and how many decision
// cycles found no destination.
func (r *Registry) Stats() (ordered, declined int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.decided, r.declined
}

// Health summarises a registry's control domain — the "health condition"
// a lower-level registry/scheduler reports upward in the hierarchical
// arrangement (Section 3.2): how many hosts it knows in each state and how
// much capacity is free.
type Health struct {
	Hosts       int
	Free        int
	Busy        int
	Overloaded  int
	Unavailable int
	Processes   int
	// FreeCPUSpeed sums the CPU capacity of the free hosts, the domain's
	// headroom for incoming migrations.
	FreeCPUSpeed float64
}

// AcceptsMigrations reports whether the domain has any capacity to offer.
func (h Health) AcceptsMigrations() bool { return h.Free > 0 }

// Health computes the domain summary.
func (r *Registry) Health() Health {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock.Now()
	h := Health{Processes: len(r.procs)}
	for _, e := range r.hosts {
		h.Hosts++
		if !r.aliveLocked(e, now) {
			h.Unavailable++
			continue
		}
		switch e.info.State {
		case rules.Free:
			h.Free++
			h.FreeCPUSpeed += e.info.Static.CPUSpeed
		case rules.Busy:
			h.Busy++
		case rules.Overloaded:
			h.Overloaded++
		default:
			h.Unavailable++
		}
	}
	return h
}
