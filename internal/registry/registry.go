// Package registry implements the registry/scheduler entity (Section 3.2):
// soft-state host registration over the push model (hosts that stop
// refreshing become unavailable), process registration with application
// schemas, pluggable placement (first fit by default, Section 4's process
// selection by latest estimated completion time), and the hierarchical
// arrangement in which a domain's registry delegates to its upper-level
// registry when no local host fits.
//
// # Concurrency contract
//
// A Registry is safe for concurrent use. Read methods (Hosts, Processes,
// Health, Trace, StateOf, Stats, Domains) return deep-enough copies that the
// caller may use without synchronisation. Ordering is deterministic:
// Hosts returns hosts in registration order, Processes returns processes in
// PID order, Domains returns domains in attach order. Concurrent writers
// interleave at method granularity — a snapshot reflects some serialisation
// of the completed calls, never a torn record.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"autoresched/internal/events"
	"autoresched/internal/metrics"
	"autoresched/internal/persist"
	"autoresched/internal/proto"
	"autoresched/internal/rules"
	"autoresched/internal/schema"
	"autoresched/internal/sysinfo"
	"autoresched/internal/vclock"
)

// CommandSink dispatches migrate orders to a host's commander.
type CommandSink interface {
	Migrate(host string, order proto.MigrateOrder) error
}

// Config configures a registry/scheduler.
type Config struct {
	// Name identifies this registry in protocol traffic.
	Name string
	// Clock drives lease expiry; nil selects the real clock.
	Clock vclock.Clock
	// Lease is how long a host stays alive without a refresh; zero selects
	// 35 seconds (a few missed 10-second refreshes).
	Lease time.Duration
	// Policy decides when to migrate and which destinations qualify. Nil
	// selects the pure state-based policy: migrate off overloaded hosts,
	// onto free hosts (Table 1 semantics).
	Policy *rules.MigrationPolicy
	// Probes evaluates policy conditions; nil selects the standard set.
	Probes *sysinfo.Probes
	// Commands receives migrate orders; nil leaves the registry passive
	// (candidates are still served on request).
	Commands CommandSink
	// Scheduler picks the process to offload and the destination host.
	// Nil selects FirstFitScheduler (the paper's placement). A non-nil
	// Scheduler takes precedence over Policy.Scheduler.
	Scheduler Scheduler
	// Parent is the upper-level registry consulted when no local host
	// fits (the hierarchical arrangement of Section 3.2).
	Parent *Registry
	// Domain names this registry's control domain under Parent. When set,
	// the registry reports its Health upward on a lease (piggybacked on
	// status refreshes, at most once per HealthReportEvery), and the parent
	// delegates placements across its live domains before consulting its
	// own parent.
	Domain string
	// DomainLease is how long a child domain stays live at this registry
	// without a health report; zero selects Lease.
	DomainLease time.Duration
	// HealthReportEvery caps how often this registry pushes Health to its
	// Parent; zero selects 10 seconds (the monitor's refresh cadence).
	HealthReportEvery time.Duration
	// Warmup is how many consecutive qualifying reports a host must send
	// before the scheduler acts — the configurable damping that gave the
	// paper its 72-second reaction and avoided "fault migration caused by
	// small system performance variations". Zero selects 3.
	Warmup int
	// Cooldown is the minimum gap between migrate orders concerning the
	// same source host; zero selects 60 seconds.
	Cooldown time.Duration
	// OnEvent, if set, observes every scheduling-decision event as it
	// happens (the trace is also kept in a ring buffer; see Trace).
	OnEvent func(Event)
	// Events, if set, additionally receives every trace event on the
	// unified runtime sink (Source "registry").
	Events events.Sink
	// Counters, when set, receives the registry/* control-plane counters.
	Counters *metrics.Counters
	// Store, when set, makes the protocol state durable: every mutation
	// appends a typed change record to this write-ahead store, and Restart
	// becomes crash-consistent bootstrap (snapshot + log suffix replay,
	// zero monitor re-registrations) instead of a soft-state drop. See
	// internal/persist for the backends and the epoch-fencing contract.
	Store persist.Store
	// SnapshotEvery, with Store set, folds the state into a compacting
	// store snapshot every N appended records; zero disables periodic
	// snapshots (the log then grows until someone snapshots explicitly).
	SnapshotEvery int
	// Metrics, when set, receives the registry's gauges and latency
	// histograms (registry/hosts, registry/decide_seconds). Nil disables.
	Metrics *metrics.Registry
}

// Metric names the registry exports when Config.Metrics is set. The hosts
// gauge tracks registrations; decide_seconds is the wall-clock cost of one
// scheduling decision (an approximate metric — it never feeds the
// deterministic experiment sections).
const (
	MetricHosts         = "registry/hosts"
	MetricDecideSeconds = "registry/decide_seconds"
)

// HostInfo is the registry's view of one host.
type HostInfo struct {
	Name     string
	Static   proto.StaticInfo
	Status   proto.Status
	State    rules.State
	LastSeen time.Time
}

// ProcInfo is the registry's view of one migration-enabled process.
type ProcInfo struct {
	Host   string
	PID    int
	Name   string
	Start  time.Time
	Schema *schema.Schema
	// schemaXML retains the wire document Schema was parsed from, so the
	// durable change log and snapshots can round-trip it.
	schemaXML string
}

type hostEntry struct {
	info     HostInfo
	warmup   int
	lastCmd  time.Time
	hasCmd   bool
	regOrder int
}

type procKey struct {
	host string
	pid  int
}

// Registry is a registry/scheduler instance.
type Registry struct {
	cfg    Config
	clock  vclock.Clock
	probes *sysinfo.Probes
	sched  Scheduler

	mu    sync.Mutex
	hosts map[string]*hostEntry
	// order holds every entry sorted by regOrder — registration order.
	// It is maintained incrementally (append on register, splice on
	// unregister) so no request path ever re-sorts.
	order []*hostEntry
	// sets indexes the entries by their last reported state, each slice
	// in registration order, so placement scans only the states it wants
	// (the default policy touches just the Free set).
	sets      map[rules.State][]*hostEntry
	procs     map[procKey]*ProcInfo
	hostProcs map[string]map[int]*ProcInfo
	// reserved marks hosts held by pending gang reservations; candidate
	// scans skip them until the reservation commits or aborts.
	reserved map[string]*GangReservation
	events   []Event
	regSeq   int
	decided  int // migrate orders issued
	declined int // decision cycles that found no destination

	// Parent-side sharding state: child domains by name and in attach
	// order, refreshed by health reports on a lease.
	domains     map[string]*domainEntry
	domainOrder []*domainEntry
	domSeq      int

	// Child-side bookkeeping for the upward health push.
	lastHealthPush time.Time
	healthPushed   bool

	// Durable control plane (nil store = classic soft state). gangs is the
	// durable view of unresolved reservations by id — what presumed abort
	// resolves at bootstrap; storeEpoch is the fencing token every append
	// carries; lastApplied/lastSnap drive the catch-up feed and snapshot
	// cadence; replaying suppresses appends during bootstrap.
	store       persist.Store
	storeEpoch  uint64
	replaying   bool
	lastApplied uint64
	lastSnap    uint64
	gangSeq     uint64
	gangs       map[uint64][]string
}

// newFromConfig creates a registry/scheduler from an assembled Config,
// applying defaults. NewRegistry is the public constructor; the former
// exported Config-style New is gone.
func newFromConfig(cfg Config) *Registry {
	if cfg.Name == "" {
		cfg.Name = "registry"
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real()
	}
	if cfg.Lease <= 0 {
		cfg.Lease = 35 * time.Second
	}
	if cfg.DomainLease <= 0 {
		cfg.DomainLease = cfg.Lease
	}
	if cfg.HealthReportEvery <= 0 {
		cfg.HealthReportEvery = 10 * time.Second
	}
	if cfg.Probes == nil {
		cfg.Probes = sysinfo.StandardProbes()
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 3
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 60 * time.Second
	}
	sched := cfg.Scheduler
	if sched == nil && cfg.Policy != nil && cfg.Policy.Scheduler != "" {
		if s, err := SchedulerByName(cfg.Policy.Scheduler); err == nil {
			sched = s
		}
	}
	if sched == nil {
		sched = FirstFitScheduler{}
	}
	r := &Registry{
		cfg:       cfg,
		clock:     cfg.Clock,
		probes:    cfg.Probes,
		sched:     sched,
		hosts:     make(map[string]*hostEntry),
		sets:      newStateSets(),
		procs:     make(map[procKey]*ProcInfo),
		hostProcs: make(map[string]map[int]*ProcInfo),
		reserved:  make(map[string]*GangReservation),
		gangs:     make(map[uint64][]string),
		domains:   make(map[string]*domainEntry),
	}
	if cfg.Store != nil {
		// Warm start: rebuild the protocol state left by the previous
		// incarnation before announcing anything to a parent. A corrupt
		// store falls back to an empty registry — the classic soft-state
		// recovery — rather than refusing to start.
		r.store = cfg.Store
		r.storeEpoch = cfg.Store.Epoch()
		if err := r.bootstrapLocked(); err != nil {
			r.resetStateLocked()
			r.trace(EventRestart, "", 0, "", "bootstrap failed, starting empty: "+err.Error())
		}
	}
	if cfg.Parent != nil && cfg.Domain != "" {
		// Announce the domain immediately so the parent can delegate to
		// it; subsequent health reports keep the lease fresh.
		cfg.Parent.ReportDomainHealth(cfg.Domain, r, r.Health())
	}
	return r
}

func newStateSets() map[rules.State][]*hostEntry {
	return map[rules.State][]*hostEntry{
		rules.Free:        nil,
		rules.Busy:        nil,
		rules.Overloaded:  nil,
		rules.Unavailable: nil,
	}
}

// insertOrdered splices e into s keeping regOrder ascending.
func insertOrdered(s []*hostEntry, e *hostEntry) []*hostEntry {
	i := sort.Search(len(s), func(i int) bool { return s[i].regOrder >= e.regOrder })
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = e
	return s
}

// removeOrdered splices e out of s (a no-op if absent).
func removeOrdered(s []*hostEntry, e *hostEntry) []*hostEntry {
	i := sort.Search(len(s), func(i int) bool { return s[i].regOrder >= e.regOrder })
	if i < len(s) && s[i] == e {
		s = append(s[:i], s[i+1:]...)
	}
	return s
}

// setStateLocked moves e between state sets when its reported state changes.
func (r *Registry) setStateLocked(e *hostEntry, state rules.State) {
	if e.info.State == state {
		return
	}
	r.sets[e.info.State] = removeOrdered(r.sets[e.info.State], e)
	e.info.State = state
	r.sets[state] = insertOrdered(r.sets[state], e)
}

// RegisterHost records a host's static information (one-time registration).
// Re-registering refreshes the static information and the lease.
func (r *Registry) RegisterHost(host string, static proto.StaticInfo) error {
	if host == "" {
		return errors.New("registry: empty host name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock.Now()
	if err := r.appendLocked(recKindHostRegister, recHostRegister{Host: host, Static: static, At: now}); err != nil {
		return err
	}
	e, ok := r.hosts[host]
	if !ok {
		r.regSeq++
		e = &hostEntry{regOrder: r.regSeq}
		e.info.State = rules.Free
		r.hosts[host] = e
		r.order = append(r.order, e)
		r.sets[rules.Free] = insertOrdered(r.sets[rules.Free], e)
	} else {
		r.setStateLocked(e, rules.Free)
	}
	e.info.Name = host
	e.info.Static = static
	e.info.LastSeen = now
	r.cfg.Metrics.Gauge(MetricHosts).Set(float64(len(r.hosts)))
	return nil
}

// ReportStatus is the soft-state refresh: it updates the host's dynamic
// information, renews the lease, and — when a command sink is configured —
// runs the scheduling decision.
func (r *Registry) ReportStatus(host string, status proto.Status) error {
	r.mu.Lock()
	if err := r.applyStatusLocked(host, status); err != nil {
		r.mu.Unlock()
		return err
	}
	push, health := r.healthDueLocked()
	r.mu.Unlock()

	if push {
		r.cfg.Parent.ReportDomainHealth(r.cfg.Domain, r, health)
	}
	if r.cfg.Commands != nil {
		r.decide(host)
	}
	return nil
}

// applyStatusLocked applies one status refresh; the caller holds the lock.
func (r *Registry) applyStatusLocked(host string, status proto.Status) error {
	e, ok := r.hosts[host]
	if !ok {
		return fmt.Errorf("registry: status from unregistered host %q", host)
	}
	state, err := rules.ParseState(status.State)
	if err != nil {
		return err
	}
	now := r.clock.Now()
	if err := r.appendLocked(recKindHostStatus, recHostStatus{Host: host, Status: status, At: now}); err != nil {
		return err
	}
	e.info.Status = status
	r.setStateLocked(e, state)
	e.info.LastSeen = now
	return nil
}

// Restart simulates a registry crash and restart. Without a Store, all
// soft state — host registrations, process registrations, warmup and
// cooldown bookkeeping, child-domain leases — is dropped, exactly as a
// freshly started registry would have none of it. The protocol's
// soft-state design makes this survivable: monitors re-register when their
// next refresh is rejected, the runtime resyncs its processes, and child
// registries re-announce their domain on the next health push.
//
// With a Store, Restart is instead the crash-consistent bootstrap: the
// protocol state is rebuilt from the latest snapshot plus the log suffix —
// no re-registration storm, zero monitor re-registrations — and pending
// gang reservations are presumed aborted (their pre-crash handles stay
// poisoned, so a Commit from before the crash still fails). Scheduler
// damping re-warms either way. The decision trace is diagnostic state, not
// protocol state, so it survives in both modes.
func (r *Registry) Restart() {
	r.mu.Lock()
	// Pending gang reservations do not survive the incarnation in either
	// mode: poison the live handles so their Commit fails and the
	// admission retries against the rebuilt registry.
	for host, g := range r.reserved {
		g.lost = append(g.lost, host)
	}
	recovered := false
	if r.store != nil {
		if err := r.bootstrapLocked(); err != nil {
			// A store that cannot be replayed yields the classic
			// soft-state restart rather than a wedged registry.
			r.resetStateLocked()
		} else {
			recovered = true
		}
	} else {
		r.resetStateLocked()
	}
	hosts := len(r.hosts)
	ev := RestartEvent{
		At:        r.clock.Now(),
		Recovered: recovered,
		Seq:       r.lastApplied,
		Hosts:     hosts,
		Procs:     len(r.procs),
		Domains:   len(r.domains),
	}
	r.mu.Unlock()
	r.cfg.Counters.Inc(metrics.CtrRegistryRestarts)
	note := "soft state dropped"
	if recovered {
		r.cfg.Counters.Inc(metrics.CtrRegistryRecoveries)
		note = fmt.Sprintf("recovered from store: %d hosts, %d procs at seq %d", ev.Hosts, ev.Procs, ev.Seq)
	}
	r.cfg.Metrics.Gauge(MetricHosts).Set(float64(hosts))
	r.traceWith(ev, EventRestart, "", 0, "", note)
}

// UnregisterHost withdraws a host and its processes.
func (r *Registry) UnregisterHost(host string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.hosts[host]
	if !ok {
		return nil
	}
	if err := r.appendLocked(recKindHostUnregister, recHostUnregister{Host: host}); err != nil {
		return err
	}
	delete(r.hosts, host)
	r.order = removeOrdered(r.order, e)
	r.sets[e.info.State] = removeOrdered(r.sets[e.info.State], e)
	// A reservation holding this host can no longer launch its full gang:
	// poison it (Commit fails, the admission rolls back) and drop the mark
	// so the dead host leaves no orphaned lease behind.
	if g, ok := r.reserved[host]; ok {
		g.lost = append(g.lost, host)
		delete(r.reserved, host)
	}
	for pid := range r.hostProcs[host] {
		delete(r.procs, procKey{host, pid})
	}
	delete(r.hostProcs, host)
	r.cfg.Metrics.Gauge(MetricHosts).Set(float64(len(r.hosts)))
	return nil
}

// alive reports whether a host's lease is fresh.
func (r *Registry) aliveLocked(e *hostEntry, now time.Time) bool {
	return now.Sub(e.info.LastSeen) <= r.cfg.Lease
}

// Hosts returns a copy of every known host, in registration order; hosts
// with expired leases are reported Unavailable.
func (r *Registry) Hosts() []HostInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock.Now()
	out := make([]HostInfo, 0, len(r.order))
	for _, e := range r.order {
		info := e.info
		if !r.aliveLocked(e, now) {
			info.State = rules.Unavailable
		}
		out = append(out, info)
	}
	return out
}

// RegisterProcess records a migration-enabled process and its application
// schema (carried as XML, as on the wire).
func (r *Registry) RegisterProcess(host string, info proto.ProcessInfo) error {
	var sch *schema.Schema
	if info.SchemaXML != "" {
		parsed, err := schema.Unmarshal([]byte(info.SchemaXML))
		if err != nil {
			return fmt.Errorf("registry: process schema: %w", err)
		}
		sch = parsed
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.hosts[host]; !ok {
		return fmt.Errorf("registry: process from unregistered host %q", host)
	}
	if err := r.appendLocked(recKindProcRegister, recProcRegister{Host: host, Info: info}); err != nil {
		return err
	}
	p := &ProcInfo{
		Host:      host,
		PID:       info.PID,
		Name:      info.Name,
		Start:     time.Unix(0, info.Start),
		Schema:    sch,
		schemaXML: info.SchemaXML,
	}
	r.procs[procKey{host, info.PID}] = p
	if r.hostProcs[host] == nil {
		r.hostProcs[host] = make(map[int]*ProcInfo)
	}
	r.hostProcs[host][info.PID] = p
	return nil
}

// ProcessExit withdraws a process.
func (r *Registry) ProcessExit(host string, pid int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.procs[procKey{host, pid}]; !ok {
		return nil
	}
	if err := r.appendLocked(recKindProcExit, recProcExit{Host: host, PID: pid}); err != nil {
		return err
	}
	delete(r.procs, procKey{host, pid})
	delete(r.hostProcs[host], pid)
	return nil
}

// Processes returns a copy of the registered processes on a host, in PID
// order.
func (r *Registry) Processes(host string) []ProcInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.processesLocked(host)
}

func (r *Registry) processesLocked(host string) []ProcInfo {
	byPID := r.hostProcs[host]
	if len(byPID) == 0 {
		return nil
	}
	out := make([]ProcInfo, 0, len(byPID))
	for _, p := range byPID {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// SelectProcess picks the process to migrate off a host by asking the
// configured Scheduler; the default first-fit scheduler picks the process
// with the latest estimated completion time, "to reduce the possibility of
// migrating multiple processes" (Section 4).
func (r *Registry) SelectProcess(host string) (ProcInfo, bool) {
	r.mu.Lock()
	e, ok := r.hosts[host]
	if !ok {
		r.mu.Unlock()
		return ProcInfo{}, false
	}
	speed := e.info.Static.CPUSpeed
	procs := r.processesLocked(host)
	r.mu.Unlock()
	if len(procs) == 0 {
		return ProcInfo{}, false
	}
	return r.sched.SelectProcess(speed, procs)
}

// Stats reports how many migrate orders were issued and how many decision
// cycles found no destination.
func (r *Registry) Stats() (ordered, declined int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.decided, r.declined
}

// Health summarises a registry's control domain — the "health condition"
// a lower-level registry/scheduler reports upward in the hierarchical
// arrangement (Section 3.2): how many hosts it knows in each state and how
// much capacity is free.
type Health struct {
	Hosts       int
	Free        int
	Busy        int
	Overloaded  int
	Unavailable int
	Processes   int
	// FreeCPUSpeed sums the CPU capacity of the free hosts, the domain's
	// headroom for incoming migrations.
	FreeCPUSpeed float64
}

// AcceptsMigrations reports whether the domain has any capacity to offer.
func (h Health) AcceptsMigrations() bool { return h.Free > 0 }

// Health computes the domain summary.
func (r *Registry) Health() Health {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.healthLocked()
}

func (r *Registry) healthLocked() Health {
	now := r.clock.Now()
	h := Health{Processes: len(r.procs)}
	for _, e := range r.order {
		h.Hosts++
		if !r.aliveLocked(e, now) {
			h.Unavailable++
			continue
		}
		switch e.info.State {
		case rules.Free:
			h.Free++
			h.FreeCPUSpeed += e.info.Static.CPUSpeed
		case rules.Busy:
			h.Busy++
		case rules.Overloaded:
			h.Overloaded++
		default:
			h.Unavailable++
		}
	}
	return h
}
