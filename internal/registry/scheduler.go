package registry

import (
	"fmt"
	"sort"
	"time"
)

// CandidateSeq streams eligible destination hosts to a Scheduler, in
// registration order. The scheduler pulls candidates by calling the sequence
// with a yield callback and stops the stream by returning false from it —
// so first fit inspects exactly one host while least loaded drains the
// stream. The sequence is only valid for the duration of the
// PickDestination call and is produced under the registry lock: schedulers
// must not call back into the Registry from inside it.
type CandidateSeq func(yield func(HostInfo) bool)

// Scheduler is the pluggable placement policy: which process leaves an
// overloaded host, and which eligible host receives it. Eligibility
// (liveness, destination policy, schema fit) is decided by the registry
// before a host reaches the scheduler; the scheduler only ranks.
//
// Implementations must be safe for concurrent use; the registry calls them
// from every decision path.
type Scheduler interface {
	// Name identifies the scheduler in policies and traces.
	Name() string
	// SelectProcess picks the process to offload from procs (non-empty,
	// PID order), given the source host's CPU speed. Returning false
	// vetoes the offload.
	SelectProcess(cpuSpeed float64, procs []ProcInfo) (ProcInfo, bool)
	// PickDestination picks the destination for proc from the candidate
	// stream. Returning false declines the placement (the registry then
	// delegates to sibling domains and the parent, if configured).
	PickDestination(proc ProcInfo, candidates CandidateSeq) (HostInfo, bool)
}

// SchedulerByName resolves the built-in schedulers, for the pl_scheduler
// policy-file key and command-line flags.
func SchedulerByName(name string) (Scheduler, error) {
	switch name {
	case "", "firstfit", "first-fit":
		return FirstFitScheduler{}, nil
	case "leastloaded", "least-loaded":
		return LeastLoadedScheduler{}, nil
	default:
		return nil, fmt.Errorf("registry: unknown scheduler %q", name)
	}
}

// selectLatestCompletion is the paper's process choice (Section 4): the
// process with the latest estimated completion time, so that one migration
// relieves the host for the longest.
func selectLatestCompletion(cpuSpeed float64, procs []ProcInfo) (ProcInfo, bool) {
	if len(procs) == 0 {
		return ProcInfo{}, false
	}
	best := procs[0]
	bestDone := estimatedDone(procs[0], cpuSpeed)
	for _, p := range procs[1:] {
		if done := estimatedDone(p, cpuSpeed); done.After(bestDone) {
			best, bestDone = p, done
		}
	}
	return best, true
}

func estimatedDone(p ProcInfo, cpuSpeed float64) time.Time {
	if p.Schema == nil {
		return p.Start
	}
	return p.Schema.EstimatedCompletion(p.Start, cpuSpeed)
}

// FirstFitScheduler is the paper's placement and the default: offload the
// latest-completing process onto the first eligible host in registration
// order.
type FirstFitScheduler struct{}

// Name implements Scheduler.
func (FirstFitScheduler) Name() string { return "firstfit" }

// SelectProcess implements Scheduler.
func (FirstFitScheduler) SelectProcess(cpuSpeed float64, procs []ProcInfo) (ProcInfo, bool) {
	return selectLatestCompletion(cpuSpeed, procs)
}

// PickDestination implements Scheduler: the first candidate wins.
func (FirstFitScheduler) PickDestination(proc ProcInfo, candidates CandidateSeq) (HostInfo, bool) {
	var picked HostInfo
	found := false
	candidates(func(h HostInfo) bool {
		picked, found = h, true
		return false
	})
	return picked, found
}

// PlaceGang implements GangScheduler: the first n candidates win, in
// registration order — first fit generalised to gangs.
func (FirstFitScheduler) PlaceGang(proc ProcInfo, n int, candidates CandidateSeq) ([]HostInfo, bool) {
	return firstN(n, candidates)
}

// firstN collects the first n candidates from the stream.
func firstN(n int, candidates CandidateSeq) ([]HostInfo, bool) {
	picked := make([]HostInfo, 0, n)
	candidates(func(h HostInfo) bool {
		picked = append(picked, h)
		return len(picked) < n
	})
	return picked, len(picked) == n
}

// LeastLoadedScheduler drains the candidate stream and picks the host with
// the lowest one-minute load average, breaking ties toward the earlier
// registration — a better spread than first fit when many hosts qualify,
// at the cost of scanning them all.
type LeastLoadedScheduler struct{}

// Name implements Scheduler.
func (LeastLoadedScheduler) Name() string { return "leastloaded" }

// SelectProcess implements Scheduler.
func (LeastLoadedScheduler) SelectProcess(cpuSpeed float64, procs []ProcInfo) (ProcInfo, bool) {
	return selectLatestCompletion(cpuSpeed, procs)
}

// PickDestination implements Scheduler.
func (LeastLoadedScheduler) PickDestination(proc ProcInfo, candidates CandidateSeq) (HostInfo, bool) {
	var picked HostInfo
	found := false
	candidates(func(h HostInfo) bool {
		if !found || h.Status.Load1 < picked.Status.Load1 {
			picked, found = h, true
		}
		return true
	})
	return picked, found
}

// PlaceGang implements GangScheduler: drain the stream and keep the n
// least-loaded hosts, ties broken toward earlier registration (the stream
// order), so a gang spreads onto the quietest corner of the fleet.
func (LeastLoadedScheduler) PlaceGang(proc ProcInfo, n int, candidates CandidateSeq) ([]HostInfo, bool) {
	var all []HostInfo
	candidates(func(h HostInfo) bool {
		all = append(all, h)
		return true
	})
	if len(all) < n {
		return nil, false
	}
	// Stable selection: sort by load, preserving stream order on ties.
	sort.SliceStable(all, func(i, j int) bool { return all[i].Status.Load1 < all[j].Status.Load1 })
	return all[:n], true
}
