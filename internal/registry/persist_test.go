package registry

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"autoresched/internal/events"
	"autoresched/internal/metrics"
	"autoresched/internal/persist"
	"autoresched/internal/proto"
	"autoresched/internal/vclock"
)

func storedRegistry(t *testing.T, store persist.Store) (*Registry, *vclock.Manual, *metrics.Counters) {
	t.Helper()
	clock := vclock.NewManual(vclock.Epoch)
	ctr := metrics.NewCounters()
	r := newFromConfig(Config{Clock: clock, Counters: ctr, Store: store})
	return r, clock, ctr
}

func TestRestartRecoversFromStore(t *testing.T) {
	store := persist.NewMemStore()
	r, clock, ctr := storedRegistry(t, store)
	for i := 1; i <= 4; i++ {
		if err := r.RegisterHost(fmt.Sprintf("ws%d", i), proto.StaticInfo{CPUSpeed: 1e6}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.RegisterProcess("ws1", proto.ProcessInfo{PID: 42, Name: "app", Start: 7}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(5 * time.Second)
	if err := r.ReportStatus("ws2", proto.Status{State: "busy", Load1: 1.25}); err != nil {
		t.Fatal(err)
	}
	pre := r.StateDigest()

	r.Restart()

	if post := r.StateDigest(); post != pre {
		t.Fatalf("digest after recovery = %s, want %s", post, pre)
	}
	// No re-registration needed: the very next refresh is accepted.
	if err := r.ReportStatus("ws1", proto.Status{State: "free"}); err != nil {
		t.Fatalf("status after recovery rejected: %v", err)
	}
	hosts := r.Hosts()
	if len(hosts) != 4 || hosts[0].Name != "ws1" || hosts[3].Name != "ws4" {
		t.Fatalf("hosts after recovery = %+v", hosts)
	}
	if procs := r.Processes("ws1"); len(procs) != 1 || procs[0].PID != 42 {
		t.Fatalf("procs after recovery = %+v", procs)
	}
	if got := hosts[1].Status.Load1; got != 1.25 {
		t.Fatalf("recovered ws2 load = %v", got)
	}
	if ctr.Get(metrics.CtrRegistryRestarts) != 1 || ctr.Get(metrics.CtrRegistryRecoveries) != 1 {
		t.Fatalf("restart/recovery counters = %d/%d",
			ctr.Get(metrics.CtrRegistryRestarts), ctr.Get(metrics.CtrRegistryRecoveries))
	}
}

func TestRestartRecoveryPublishesTypedEvent(t *testing.T) {
	store := persist.NewMemStore()
	clock := vclock.NewManual(vclock.Epoch)
	var got []RestartEvent
	sink := events.On(func(ev RestartEvent) { got = append(got, ev) })
	r := newFromConfig(Config{Clock: clock, Store: store, Events: sink})
	if err := r.RegisterHost("ws1", proto.StaticInfo{}); err != nil {
		t.Fatal(err)
	}
	r.Restart()
	if len(got) != 1 || !got[0].Recovered || got[0].Hosts != 1 || got[0].Seq == 0 {
		t.Fatalf("typed restart events = %+v", got)
	}

	// Storeless restarts publish the payload too, with Recovered=false.
	got = nil
	r2 := newFromConfig(Config{Clock: clock, Events: sink})
	if err := r2.RegisterHost("ws1", proto.StaticInfo{}); err != nil {
		t.Fatal(err)
	}
	r2.Restart()
	if len(got) != 1 || got[0].Recovered || got[0].Hosts != 0 {
		t.Fatalf("storeless typed restart events = %+v", got)
	}
}

func TestWarmStartFromExistingStore(t *testing.T) {
	store := persist.NewMemStore()
	r, _, _ := storedRegistry(t, store)
	if err := r.RegisterHost("ws1", proto.StaticInfo{CPUSpeed: 2e6}); err != nil {
		t.Fatal(err)
	}
	if err := r.ReportStatus("ws1", proto.Status{State: "busy"}); err != nil {
		t.Fatal(err)
	}
	digest := r.StateDigest()

	// A second registry built over the same store (the restarted process)
	// boots into the identical state.
	r2, _, _ := storedRegistry(t, store)
	if got := r2.StateDigest(); got != digest {
		t.Fatalf("warm-start digest = %s, want %s", got, digest)
	}
}

func TestSnapshotCompactionKeepsBootstrapEquivalent(t *testing.T) {
	store := persist.NewMemStore()
	clock := vclock.NewManual(vclock.Epoch)
	ctr := metrics.NewCounters()
	r := newFromConfig(Config{Clock: clock, Counters: ctr, Store: store, SnapshotEvery: 10})
	for i := 1; i <= 8; i++ {
		if err := r.RegisterHost(fmt.Sprintf("ws%d", i), proto.StaticInfo{}); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 5; round++ {
		clock.Advance(time.Second)
		for i := 1; i <= 8; i++ {
			if err := r.ReportStatus(fmt.Sprintf("ws%d", i), proto.Status{State: "busy"}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if ctr.Get(metrics.CtrPersistSnapshots) == 0 {
		t.Fatal("no snapshot written despite SnapshotEvery")
	}
	snap, ok, err := store.LoadSnapshot()
	if err != nil || !ok {
		t.Fatalf("store snapshot: ok=%v err=%v", ok, err)
	}
	if recs, err := store.ReadSince(0); err != nil || len(recs) == 0 || recs[0].Seq <= snap.Seq-uint64(len(recs)) {
		// Compaction happened: the log no longer starts at 1.
		if err != nil {
			t.Fatalf("ReadSince: %v", err)
		}
	}
	digest := r.StateDigest()
	r.Restart()
	if got := r.StateDigest(); got != digest {
		t.Fatalf("post-compaction recovery digest = %s, want %s", got, digest)
	}
}

// TestReplayBitIdentical4096Hosts is the acceptance check: replaying a
// 4096-host log (snapshot + suffix) restores state whose canonical
// encoding is bit-identical to the pre-crash one.
func TestReplayBitIdentical4096Hosts(t *testing.T) {
	store := persist.NewMemStore()
	clock := vclock.NewManual(vclock.Epoch)
	r := newFromConfig(Config{Clock: clock, Store: store, SnapshotEvery: 3000})
	const n = 4096
	for i := 0; i < n; i++ {
		if err := r.RegisterHost(fmt.Sprintf("ws%04d", i), proto.StaticInfo{CPUSpeed: float64(1 + i%7)}); err != nil {
			t.Fatal(err)
		}
	}
	clock.Advance(10 * time.Second)
	states := []string{"free", "busy", "overloaded"}
	for i := 0; i < n; i++ {
		st := proto.Status{State: states[i%3], Load1: float64(i%11) / 4}
		if err := r.ReportStatus(fmt.Sprintf("ws%04d", i), st); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		if err := r.RegisterProcess(fmt.Sprintf("ws%04d", i), proto.ProcessInfo{PID: 100 + i, Name: "rank"}); err != nil {
			t.Fatal(err)
		}
	}
	r.mu.Lock()
	pre, err := r.encodeStateLocked()
	r.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if snap, ok, _ := store.LoadSnapshot(); !ok || snap.Seq == 0 {
		t.Fatal("expected a compacting snapshot mid-log")
	}

	r.Restart()

	r.mu.Lock()
	post, err := r.encodeStateLocked()
	r.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pre, post) {
		t.Fatalf("replayed state not bit-identical: pre %d bytes, post %d bytes", len(pre), len(post))
	}
}

func TestRestartPresumesPendingGangAborted(t *testing.T) {
	store := persist.NewMemStore()
	r, _, _ := storedRegistry(t, store)
	for i := 1; i <= 3; i++ {
		if err := r.RegisterHost(fmt.Sprintf("ws%d", i), proto.StaticInfo{}); err != nil {
			t.Fatal(err)
		}
	}
	g, err := r.ReserveHosts([]string{"ws1", "ws2"})
	if err != nil {
		t.Fatal(err)
	}
	r.Restart()
	// The recovered registry holds no reservation marks.
	if res := r.Reserved(); len(res) != 0 {
		t.Fatalf("reserved after recovery = %v", res)
	}
	// The pre-crash handle is poisoned: its Commit fails.
	if err := g.Commit(); !errors.Is(err, ErrReservationLost) {
		t.Fatalf("pre-crash Commit = %v, want ErrReservationLost", err)
	}
	// The hosts are immediately reservable again.
	g2, err := r.ReserveHosts([]string{"ws1", "ws2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Commit(); err != nil {
		t.Fatalf("fresh reservation commit: %v", err)
	}
}

func TestStandbyPromotionFencesOldPrimary(t *testing.T) {
	store := persist.NewMemStore()
	primary, _, _ := storedRegistry(t, store)
	for i := 1; i <= 4; i++ {
		if err := primary.RegisterHost(fmt.Sprintf("ws%d", i), proto.StaticInfo{}); err != nil {
			t.Fatal(err)
		}
	}
	clock := vclock.NewManual(vclock.Epoch)
	ctr := metrics.NewCounters()
	sb, err := NewStandby(store, WithClock(clock), WithCounters(ctr))
	if err != nil {
		t.Fatal(err)
	}
	if got := sb.Registry().StateDigest(); got != primary.StateDigest() {
		t.Fatalf("standby digest %s != primary %s", got, primary.StateDigest())
	}

	// The primary reserves a gang, then "dies" before resolving it.
	g, err := primary.ReserveHosts([]string{"ws1", "ws2"})
	if err != nil {
		t.Fatal(err)
	}
	if lag := sb.Lag(); lag == 0 {
		t.Fatal("standby should be behind after the reserve")
	}

	promoted, err := sb.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if ctr.Get(metrics.CtrStandbyPromotions) != 1 {
		t.Fatalf("promotions = %d", ctr.Get(metrics.CtrStandbyPromotions))
	}
	// No double admission: the deposed primary's commit is fenced...
	if err := g.Commit(); err == nil || !errors.Is(err, persist.ErrFenced) {
		t.Fatalf("deposed Commit = %v, want ErrFenced", err)
	}
	// ...and so is any fresh reservation it attempts.
	if _, err := primary.ReserveHosts([]string{"ws3"}); !errors.Is(err, persist.ErrFenced) {
		t.Fatalf("deposed ReserveHosts = %v, want ErrFenced", err)
	}
	// The promoted registry presumed the reservation aborted and can
	// re-admit the gang exactly once.
	g2, err := promoted.ReserveHosts([]string{"ws1", "ws2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Commit(); err != nil {
		t.Fatalf("promoted commit: %v", err)
	}
}

func TestChangesSinceFeedsFollower(t *testing.T) {
	store := persist.NewMemStore()
	r, _, _ := storedRegistry(t, store)
	if err := r.RegisterHost("ws1", proto.StaticInfo{}); err != nil {
		t.Fatal(err)
	}
	seq := r.Seq()
	if seq == 0 {
		t.Fatal("Seq = 0 after a durable mutation")
	}
	if err := r.ReportStatus("ws1", proto.Status{State: "busy"}); err != nil {
		t.Fatal(err)
	}
	recs, err := r.ChangesSince(seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Kind != recKindHostStatus {
		t.Fatalf("ChangesSince(%d) = %+v", seq, recs)
	}
}

func TestFileBackedRegistryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, err := persist.OpenFileStore(dir, persist.FileConfig{SegmentRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	r, _, _ := storedRegistry(t, store)
	for i := 1; i <= 12; i++ {
		if err := r.RegisterHost(fmt.Sprintf("ws%02d", i), proto.StaticInfo{CPUSpeed: 1e6}); err != nil {
			t.Fatal(err)
		}
	}
	digest := r.StateDigest()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen the directory — the crashed-and-restarted control plane —
	// and boot a fresh registry from it.
	store2, err := persist.OpenFileStore(dir, persist.FileConfig{SegmentRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	r2, _, _ := storedRegistry(t, store2)
	if got := r2.StateDigest(); got != digest {
		t.Fatalf("file-backed warm start digest = %s, want %s", got, digest)
	}
}
