package registry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"autoresched/internal/metrics"
	"autoresched/internal/persist"
	"autoresched/internal/proto"
	"autoresched/internal/rules"
	"autoresched/internal/schema"
)

// Durable control plane: when Config.Store is set, every protocol-state
// mutation — host register/unregister, status refresh, process lifecycle,
// domain attach, gang reservation and resolution — appends one typed change
// record to the write-ahead store before the in-memory state moves, and
// Restart becomes crash-consistent bootstrap: load the latest snapshot,
// replay the log suffix, resume with zero monitor re-registrations. The
// scheduler's damping (warmup counts, cooldown stamps) is deliberately NOT
// durable: a restarted registry re-warms, exactly the conservatism the
// paper's damping exists to provide.
//
// Pending gang reservations recover by presumed abort: a reservation with
// no resolution record at bootstrap (or standby promotion) was owned by the
// crashed incarnation, so it is durably aborted and its admission replans.
// The live *GangReservation handles from before the crash stay poisoned, so
// their Commit fails rather than double-admitting.

// Change-record kinds. The payloads are the rec* structs below, JSON
// encoded; timestamps ride inside the payloads (taken from the registry's
// clock, never the wall), so replay restores leases bit-identically.
const (
	recKindHostRegister   = "host-register"
	recKindHostStatus     = "host-status"
	recKindHostUnregister = "host-unregister"
	recKindProcRegister   = "proc-register"
	recKindProcExit       = "proc-exit"
	recKindDomainHealth   = "domain-health"
	recKindGangReserve    = "gang-reserve"
	recKindGangResolve    = "gang-resolve"
)

type recHostRegister struct {
	Host   string           `json:"host"`
	Static proto.StaticInfo `json:"static"`
	At     time.Time        `json:"at"`
}

type recHostStatus struct {
	Host   string       `json:"host"`
	Status proto.Status `json:"status"`
	At     time.Time    `json:"at"`
}

type recHostUnregister struct {
	Host string `json:"host"`
}

type recProcRegister struct {
	Host string            `json:"host"`
	Info proto.ProcessInfo `json:"info"`
}

type recProcExit struct {
	Host string `json:"host"`
	PID  int    `json:"pid"`
}

type recDomainHealth struct {
	Name   string    `json:"name"`
	Health Health    `json:"health"`
	At     time.Time `json:"at"`
}

type recGangReserve struct {
	ID    uint64   `json:"id"`
	Hosts []string `json:"hosts"`
}

type recGangResolve struct {
	ID     uint64 `json:"id"`
	Commit bool   `json:"commit"`
}

// persistedState is the snapshot document: the registry's whole protocol
// state, encoded deterministically (hosts in registration order, processes
// sorted by host then pid, domains in attach order, pending gangs by id).
type persistedState struct {
	RegSeq  int               `json:"regSeq"`
	DomSeq  int               `json:"domSeq"`
	GangSeq uint64            `json:"gangSeq"`
	Hosts   []persistedHost   `json:"hosts,omitempty"`
	Procs   []persistedProc   `json:"procs,omitempty"`
	Domains []persistedDomain `json:"domains,omitempty"`
	Gangs   []persistedGang   `json:"gangs,omitempty"`
}

type persistedHost struct {
	Name     string           `json:"name"`
	Static   proto.StaticInfo `json:"static"`
	Status   proto.Status     `json:"status"`
	State    rules.State      `json:"state"`
	LastSeen time.Time        `json:"lastSeen"`
	RegOrder int              `json:"regOrder"`
}

type persistedProc struct {
	Host      string    `json:"host"`
	PID       int       `json:"pid"`
	Name      string    `json:"procName"`
	Start     time.Time `json:"start"`
	SchemaXML string    `json:"schemaXML,omitempty"`
}

type persistedDomain struct {
	Name     string    `json:"name"`
	Health   Health    `json:"health"`
	LastSeen time.Time `json:"lastSeen"`
	RegOrder int       `json:"regOrder"`
}

type persistedGang struct {
	ID    uint64   `json:"id"`
	Hosts []string `json:"hosts"`
}

// appendLocked durably appends one change record; the caller holds r.mu.
// No store and replay are both no-ops. An ErrFenced return means this
// registry was deposed by a standby promotion: the caller must not apply
// the mutation.
func (r *Registry) appendLocked(kind string, v any) error {
	if r.store == nil || r.replaying {
		return nil
	}
	// Snapshot cadence check runs before the append: the in-memory state
	// right now reflects exactly the records up to lastApplied, so that is
	// the position the snapshot may safely cover (the record being
	// appended has not been applied yet).
	if r.cfg.SnapshotEvery > 0 && r.lastApplied-r.lastSnap >= uint64(r.cfg.SnapshotEvery) {
		r.snapshotLocked(r.lastApplied)
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("registry: encode %s record: %w", kind, err)
	}
	seq, err := r.store.Append(r.storeEpoch, kind, data)
	if err != nil {
		return fmt.Errorf("registry: append %s record: %w", kind, err)
	}
	r.lastApplied = seq
	r.cfg.Counters.Inc(metrics.CtrPersistAppends)
	return nil
}

// snapshotLocked folds the current state into a store snapshot at seq,
// compacting the log behind it. Best-effort: a failed snapshot write leaves
// the log authoritative.
func (r *Registry) snapshotLocked(seq uint64) {
	data, err := r.encodeStateLocked()
	if err != nil {
		return
	}
	if err := r.store.WriteSnapshot(r.storeEpoch, persist.Snapshot{Seq: seq, Data: data}); err != nil {
		return
	}
	r.lastSnap = seq
	r.cfg.Counters.Inc(metrics.CtrPersistSnapshots)
}

// encodeStateLocked renders the protocol state as the canonical snapshot
// document. The encoding is deterministic — two registries holding the same
// protocol state encode byte-identical documents — which is what makes
// StateDigest a meaningful recovery check.
func (r *Registry) encodeStateLocked() ([]byte, error) {
	st := persistedState{RegSeq: r.regSeq, DomSeq: r.domSeq, GangSeq: r.gangSeq}
	for _, e := range r.order {
		st.Hosts = append(st.Hosts, persistedHost{
			Name:     e.info.Name,
			Static:   e.info.Static,
			Status:   e.info.Status,
			State:    e.info.State,
			LastSeen: e.info.LastSeen,
			RegOrder: e.regOrder,
		})
	}
	keys := make([]procKey, 0, len(r.procs))
	for k := range r.procs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].host != keys[j].host {
			return keys[i].host < keys[j].host
		}
		return keys[i].pid < keys[j].pid
	})
	for _, k := range keys {
		p := r.procs[k]
		st.Procs = append(st.Procs, persistedProc{
			Host:      p.Host,
			PID:       p.PID,
			Name:      p.Name,
			Start:     p.Start,
			SchemaXML: p.schemaXML,
		})
	}
	for _, d := range r.domainOrder {
		st.Domains = append(st.Domains, persistedDomain{
			Name:     d.name,
			Health:   d.health,
			LastSeen: d.lastSeen,
			RegOrder: d.regOrder,
		})
	}
	ids := make([]uint64, 0, len(r.gangs))
	for id := range r.gangs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		st.Gangs = append(st.Gangs, persistedGang{ID: id, Hosts: r.gangs[id]})
	}
	return json.Marshal(st)
}

// StateDigest returns a hex digest of the canonical protocol-state
// encoding. Two registries (or one registry before a crash and after its
// recovery) holding bit-identical protocol state report equal digests.
func (r *Registry) StateDigest() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	data, err := r.encodeStateLocked()
	if err != nil {
		return "encode-error"
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// Seq returns the sequence number of the last change this registry has
// applied (and, as primary, durably written). Zero without a store.
func (r *Registry) Seq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastApplied
}

// ChangesSince is the catch-up sync feed: every durable change record
// after seq, in order. Domain shards and the warm standby poll it (via
// Standby.Sync) to stay in lockstep with the primary. Without a store it
// returns nothing.
func (r *Registry) ChangesSince(seq uint64) ([]persist.Record, error) {
	if r.store == nil {
		return nil, nil
	}
	return r.store.ReadSince(seq)
}

// resetStateLocked drops every piece of protocol state, the shared first
// half of both the storeless Restart and the crash-consistent bootstrap.
func (r *Registry) resetStateLocked() {
	r.hosts = make(map[string]*hostEntry)
	r.order = nil
	r.sets = newStateSets()
	r.procs = make(map[procKey]*ProcInfo)
	r.hostProcs = make(map[string]map[int]*ProcInfo)
	r.reserved = make(map[string]*GangReservation)
	r.gangs = make(map[uint64][]string)
	r.domains = make(map[string]*domainEntry)
	r.domainOrder = nil
	r.domSeq = 0
	r.regSeq = 0
	r.gangSeq = 0
	r.healthPushed = false
}

// bootstrapLocked rebuilds the protocol state from the store: snapshot,
// then log suffix, then presumed abort of any reservation left unresolved
// by the previous incarnation. The caller holds r.mu (or owns the registry
// exclusively during construction).
func (r *Registry) bootstrapLocked() error {
	r.resetStateLocked()
	r.lastApplied = 0
	r.replaying = true
	snap, ok, err := r.store.LoadSnapshot()
	if err != nil {
		r.replaying = false
		return fmt.Errorf("registry: load snapshot: %w", err)
	}
	if ok {
		if err := r.restoreStateLocked(snap.Data); err != nil {
			r.replaying = false
			return err
		}
		r.lastApplied = snap.Seq
		r.lastSnap = snap.Seq
	}
	recs, err := r.store.ReadSince(r.lastApplied)
	if err != nil {
		r.replaying = false
		return fmt.Errorf("registry: read log suffix: %w", err)
	}
	for _, rec := range recs {
		if err := r.applyRecordLocked(rec); err != nil {
			r.replaying = false
			return err
		}
		r.lastApplied = rec.Seq
	}
	r.replaying = false
	// Presumed abort: reservations with no resolution were held by the
	// crashed incarnation. Resolve them durably so a standby replaying the
	// same log reaches the same conclusion.
	if len(r.gangs) > 0 {
		ids := make([]uint64, 0, len(r.gangs))
		for id := range r.gangs {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if err := r.appendLocked(recKindGangResolve, recGangResolve{ID: id}); err != nil {
				return err
			}
			delete(r.gangs, id)
		}
	}
	return nil
}

// restoreStateLocked loads a snapshot document.
func (r *Registry) restoreStateLocked(data []byte) error {
	var st persistedState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("registry: decode snapshot: %w", err)
	}
	r.regSeq = st.RegSeq
	r.domSeq = st.DomSeq
	r.gangSeq = st.GangSeq
	for _, h := range st.Hosts {
		e := &hostEntry{regOrder: h.RegOrder}
		e.info = HostInfo{Name: h.Name, Static: h.Static, Status: h.Status, State: h.State, LastSeen: h.LastSeen}
		r.hosts[h.Name] = e
		r.order = insertOrdered(r.order, e)
		r.sets[h.State] = insertOrdered(r.sets[h.State], e)
	}
	for _, sp := range st.Procs {
		var sch *schema.Schema
		if sp.SchemaXML != "" {
			parsed, err := schema.Unmarshal([]byte(sp.SchemaXML))
			if err != nil {
				return fmt.Errorf("registry: snapshot process schema: %w", err)
			}
			sch = parsed
		}
		p := &ProcInfo{Host: sp.Host, PID: sp.PID, Name: sp.Name, Start: sp.Start, Schema: sch, schemaXML: sp.SchemaXML}
		r.procs[procKey{sp.Host, sp.PID}] = p
		if r.hostProcs[sp.Host] == nil {
			r.hostProcs[sp.Host] = make(map[int]*ProcInfo)
		}
		r.hostProcs[sp.Host][sp.PID] = p
	}
	for _, pd := range st.Domains {
		// The child pointer is runtime state, not protocol state: it is
		// restored nil and rebound by the child's next health report
		// (placeDomains skips nil children until then).
		d := &domainEntry{name: pd.Name, health: pd.Health, lastSeen: pd.LastSeen, regOrder: pd.RegOrder}
		r.domains[pd.Name] = d
		r.domainOrder = append(r.domainOrder, d)
	}
	for _, g := range st.Gangs {
		r.gangs[g.ID] = append([]string(nil), g.Hosts...)
	}
	return nil
}

// applyRecordLocked replays one change record against the in-memory state,
// mirroring exactly what the mutation method did when it appended it.
func (r *Registry) applyRecordLocked(rec persist.Record) error {
	switch rec.Kind {
	case recKindHostRegister:
		var p recHostRegister
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return replayErr(rec, err)
		}
		e, ok := r.hosts[p.Host]
		if !ok {
			r.regSeq++
			e = &hostEntry{regOrder: r.regSeq}
			e.info.State = rules.Free
			r.hosts[p.Host] = e
			r.order = append(r.order, e)
			r.sets[rules.Free] = insertOrdered(r.sets[rules.Free], e)
		} else {
			r.setStateLocked(e, rules.Free)
		}
		e.info.Name = p.Host
		e.info.Static = p.Static
		e.info.LastSeen = p.At
	case recKindHostStatus:
		var p recHostStatus
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return replayErr(rec, err)
		}
		e, ok := r.hosts[p.Host]
		if !ok {
			return replayErr(rec, fmt.Errorf("status for unknown host %q", p.Host))
		}
		state, err := rules.ParseState(p.Status.State)
		if err != nil {
			return replayErr(rec, err)
		}
		e.info.Status = p.Status
		r.setStateLocked(e, state)
		e.info.LastSeen = p.At
	case recKindHostUnregister:
		var p recHostUnregister
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return replayErr(rec, err)
		}
		e, ok := r.hosts[p.Host]
		if !ok {
			return nil
		}
		delete(r.hosts, p.Host)
		r.order = removeOrdered(r.order, e)
		r.sets[e.info.State] = removeOrdered(r.sets[e.info.State], e)
		for pid := range r.hostProcs[p.Host] {
			delete(r.procs, procKey{p.Host, pid})
		}
		delete(r.hostProcs, p.Host)
	case recKindProcRegister:
		var p recProcRegister
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return replayErr(rec, err)
		}
		var sch *schema.Schema
		if p.Info.SchemaXML != "" {
			parsed, err := schema.Unmarshal([]byte(p.Info.SchemaXML))
			if err != nil {
				return replayErr(rec, err)
			}
			sch = parsed
		}
		pi := &ProcInfo{
			Host:      p.Host,
			PID:       p.Info.PID,
			Name:      p.Info.Name,
			Start:     time.Unix(0, p.Info.Start),
			Schema:    sch,
			schemaXML: p.Info.SchemaXML,
		}
		r.procs[procKey{p.Host, p.Info.PID}] = pi
		if r.hostProcs[p.Host] == nil {
			r.hostProcs[p.Host] = make(map[int]*ProcInfo)
		}
		r.hostProcs[p.Host][p.Info.PID] = pi
	case recKindProcExit:
		var p recProcExit
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return replayErr(rec, err)
		}
		delete(r.procs, procKey{p.Host, p.PID})
		delete(r.hostProcs[p.Host], p.PID)
	case recKindDomainHealth:
		var p recDomainHealth
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return replayErr(rec, err)
		}
		d, ok := r.domains[p.Name]
		if !ok {
			r.domSeq++
			d = &domainEntry{name: p.Name, regOrder: r.domSeq}
			r.domains[p.Name] = d
			r.domainOrder = append(r.domainOrder, d)
		}
		d.health = p.Health
		d.lastSeen = p.At
	case recKindGangReserve:
		var p recGangReserve
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return replayErr(rec, err)
		}
		r.gangSeq = p.ID
		r.gangs[p.ID] = append([]string(nil), p.Hosts...)
	case recKindGangResolve:
		var p recGangResolve
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return replayErr(rec, err)
		}
		delete(r.gangs, p.ID)
	default:
		return fmt.Errorf("registry: replay: unknown record kind %q (seq %d)", rec.Kind, rec.Seq)
	}
	return nil
}

func replayErr(rec persist.Record, err error) error {
	return fmt.Errorf("registry: replay %s (seq %d): %w", rec.Kind, rec.Seq, err)
}
