package registry

import (
	"errors"
	"sync"
	"time"

	"autoresched/internal/metrics"
	"autoresched/internal/proto"
	"autoresched/internal/vclock"
)

// ReportStatusBatch applies several hosts' soft-state refreshes under one
// lock acquisition — the server side of the statusBatch message. Reports
// from unregistered hosts are skipped and collected into the returned error
// (errors.Join); the registered hosts' reports still apply, and the
// scheduling decision runs for each of them just as it would for single
// reports.
func (r *Registry) ReportStatusBatch(reports []proto.HostStatus) error {
	r.mu.Lock()
	var errs []error
	applied := reports[:0:0]
	for _, rep := range reports {
		if err := r.applyStatusLocked(rep.Host, rep.Status); err != nil {
			errs = append(errs, err)
			continue
		}
		applied = append(applied, rep)
	}
	push, health := r.healthDueLocked()
	r.mu.Unlock()

	if push {
		r.cfg.Parent.ReportDomainHealth(r.cfg.Domain, r, health)
	}
	if r.cfg.Commands != nil {
		for _, rep := range applied {
			r.decide(rep.Host)
		}
	}
	return errors.Join(errs...)
}

// BatcherConfig configures a Batcher.
type BatcherConfig struct {
	// Clock drives the flush timer; nil selects the real clock.
	Clock vclock.Clock
	// FlushEvery bounds how long a report may sit in the buffer; zero
	// selects 5 seconds (half the monitors' refresh cadence, well inside
	// the 35-second lease).
	FlushEvery time.Duration
	// MaxPending flushes when this many hosts have buffered reports;
	// zero selects 64.
	MaxPending int
	// Counters, when set, receives the registry/batch_* counters.
	Counters *metrics.Counters
}

// Batcher coalesces per-host status reports into ReportStatusBatch calls.
// It implements the monitor's Reporter shape, so it slots between the
// monitors and the registry: registrations and unregistrations pass through
// (and flush first, preserving order), while status reports buffer — latest
// report per host wins — until MaxPending hosts are pending or FlushEvery
// has elapsed. After a registry restart drops the soft state, a flush
// re-registers its hosts from the retained static info and retries, the
// same recovery dance a single monitor performs.
type Batcher struct {
	reg *Registry
	cfg BatcherConfig

	mu        sync.Mutex
	pending   []proto.HostStatus
	index     map[string]int // host -> slot in pending
	statics   map[string]proto.StaticInfo
	lastFlush time.Time
}

// NewBatcher creates a Batcher in front of reg.
func NewBatcher(reg *Registry, cfg BatcherConfig) *Batcher {
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real()
	}
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = 5 * time.Second
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 64
	}
	return &Batcher{
		reg:       reg,
		cfg:       cfg,
		pending:   make([]proto.HostStatus, 0, cfg.MaxPending),
		index:     make(map[string]int, cfg.MaxPending),
		statics:   make(map[string]proto.StaticInfo),
		lastFlush: cfg.Clock.Now(),
	}
}

// RegisterHost flushes buffered reports, retains the static info for
// post-restart recovery, and registers the host.
func (b *Batcher) RegisterHost(host string, static proto.StaticInfo) error {
	if err := b.Flush(); err != nil {
		return err
	}
	b.mu.Lock()
	b.statics[host] = static
	b.mu.Unlock()
	return b.reg.RegisterHost(host, static)
}

// ReportStatus buffers a host's report, replacing any earlier buffered
// report from the same host, and flushes when the batch is due. The
// steady state — refreshing an already-buffered host, or filling a batch
// whose capacity was preallocated to MaxPending — allocates nothing; the
// flush boundary amortises its own costs over the whole batch.
//
//hot:path
func (b *Batcher) ReportStatus(host string, status proto.Status) error {
	b.mu.Lock()
	if i, ok := b.index[host]; ok {
		b.pending[i].Status = status
	} else {
		b.index[host] = len(b.pending)
		b.pending = append(b.pending, proto.HostStatus{Host: host, Status: status}) //lint:allow hotalloc capacity preallocated to MaxPending; grows only past the flush threshold
	}
	due := len(b.pending) >= b.cfg.MaxPending ||
		b.cfg.Clock.Now().Sub(b.lastFlush) >= b.cfg.FlushEvery
	b.mu.Unlock()
	if !due {
		return nil
	}
	return b.Flush() //lint:allow hotalloc the flush is the amortised batch boundary, one per MaxPending reports
}

// UnregisterHost flushes buffered reports, drops the retained static info,
// and unregisters the host.
func (b *Batcher) UnregisterHost(host string) error {
	if err := b.Flush(); err != nil {
		return err
	}
	b.mu.Lock()
	delete(b.statics, host)
	b.mu.Unlock()
	return b.reg.UnregisterHost(host)
}

// Flush delivers the buffered reports now. When the registry rejects some
// hosts as unregistered (it restarted and lost its soft state), those hosts
// are re-registered from the retained static info and their reports
// resent once.
func (b *Batcher) Flush() error {
	b.mu.Lock()
	batch := b.pending
	// The batch slice is handed to the registry (and kept by recover on
	// failure), so the buffer cannot be reused in place: start a fresh one
	// at full capacity — one allocation per flush, amortised over up to
	// MaxPending buffered reports.
	b.pending = make([]proto.HostStatus, 0, b.cfg.MaxPending)
	b.index = make(map[string]int, b.cfg.MaxPending)
	b.lastFlush = b.cfg.Clock.Now()
	b.mu.Unlock()
	if len(batch) == 0 {
		return nil
	}
	b.cfg.Counters.Inc(metrics.CtrBatchFlushes)
	b.cfg.Counters.Add(metrics.CtrBatchedReports, int64(len(batch)))
	if err := b.reg.ReportStatusBatch(batch); err != nil {
		return b.recover(batch)
	}
	return nil
}

// recover handles a batch that was partially rejected: per host, re-register
// (when we have its static info) and resend the report individually.
func (b *Batcher) recover(batch []proto.HostStatus) error {
	var errs []error
	for _, rep := range batch {
		if err := b.reg.ReportStatus(rep.Host, rep.Status); err == nil {
			continue
		}
		b.mu.Lock()
		static, ok := b.statics[rep.Host]
		b.mu.Unlock()
		if !ok {
			errs = append(errs, errors.New("batcher: no static info for host "+rep.Host))
			continue
		}
		if err := b.reg.RegisterHost(rep.Host, static); err != nil {
			errs = append(errs, err)
			continue
		}
		b.cfg.Counters.Inc(metrics.CtrReregisters)
		if err := b.reg.ReportStatus(rep.Host, rep.Status); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
