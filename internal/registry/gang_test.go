package registry

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"autoresched/internal/vclock"
)

// gangReg builds a registry with n registered, free, lease-fresh hosts
// named g1..gn.
func gangReg(t *testing.T, n int) (*Registry, *vclock.Manual) {
	t.Helper()
	clock := vclock.NewManual(vclock.Epoch)
	r := newFromConfig(Config{Clock: clock})
	for i := 1; i <= n; i++ {
		host := fmt.Sprintf("g%d", i)
		if err := r.RegisterHost(host, staticFor(host)); err != nil {
			t.Fatal(err)
		}
	}
	return r, clock
}

func TestPlaceGangReservesAtomically(t *testing.T) {
	r, _ := gangReg(t, 4)
	g, ok := r.PlaceGang(ProcInfo{Name: "job"}, 3, nil)
	if !ok {
		t.Fatal("PlaceGang declined with 4 free hosts")
	}
	if got := g.Hosts(); len(got) != 3 || got[0] != "g1" || got[1] != "g2" || got[2] != "g3" {
		t.Fatalf("gang hosts = %v, want first-fit g1..g3", got)
	}
	// The reserved hosts are invisible to a second admission: only g4 is
	// left, so a 2-gang must be declined whole (all-or-nothing).
	if _, ok := r.PlaceGang(ProcInfo{Name: "job2"}, 2, nil); ok {
		t.Fatal("second PlaceGang double-booked reserved hosts")
	}
	if g2, ok := r.PlaceGang(ProcInfo{Name: "job3"}, 1, nil); !ok {
		t.Fatal("1-gang should fit on the remaining host")
	} else if g2.Hosts()[0] != "g4" {
		t.Fatalf("1-gang landed on %v, want g4", g2.Hosts())
	}
	if err := g.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if got := r.Reserved(); len(got) != 1 || got[0] != "g4" {
		t.Fatalf("Reserved() after commit = %v, want [g4]", got)
	}
}

func TestPlaceGangExcludesAndAbortRollsBack(t *testing.T) {
	r, _ := gangReg(t, 3)
	exclude := func(h string) bool { return h == "g1" }
	g, ok := r.PlaceGang(ProcInfo{}, 2, exclude)
	if !ok {
		t.Fatal("PlaceGang declined")
	}
	if got := g.Hosts(); got[0] != "g2" || got[1] != "g3" {
		t.Fatalf("gang hosts = %v, want [g2 g3]", got)
	}
	g.Abort()
	if got := r.Reserved(); len(got) != 0 {
		t.Fatalf("Reserved() after abort = %v, want empty", got)
	}
	// Aborted reservations leave the hosts placeable again.
	if _, ok := r.PlaceGang(ProcInfo{}, 3, nil); !ok {
		t.Fatal("hosts not released by Abort")
	}
}

func TestGangCommitFailsWhenHostDies(t *testing.T) {
	r, _ := gangReg(t, 3)
	g, ok := r.PlaceGang(ProcInfo{}, 3, nil)
	if !ok {
		t.Fatal("PlaceGang declined")
	}
	if err := r.UnregisterHost("g2"); err != nil {
		t.Fatal(err)
	}
	err := g.Commit()
	if !errors.Is(err, ErrReservationLost) {
		t.Fatalf("Commit after host death = %v, want ErrReservationLost", err)
	}
	// The rollback must be complete: no reservation marks survive.
	if got := r.Reserved(); len(got) != 0 {
		t.Fatalf("Reserved() after failed commit = %v, want empty", got)
	}
}

func TestGangCommitFailsOnLeaseExpiry(t *testing.T) {
	r, clock := gangReg(t, 2)
	g, ok := r.PlaceGang(ProcInfo{}, 2, nil)
	if !ok {
		t.Fatal("PlaceGang declined")
	}
	clock.Advance(36 * time.Second) // past the 35 s default lease
	if err := g.Commit(); !errors.Is(err, ErrReservationLost) {
		t.Fatalf("Commit with expired leases = %v, want ErrReservationLost", err)
	}
	if got := r.Reserved(); len(got) != 0 {
		t.Fatalf("Reserved() = %v, want empty", got)
	}
}

func TestGangRestartPoisonsReservations(t *testing.T) {
	r, _ := gangReg(t, 2)
	g, ok := r.PlaceGang(ProcInfo{}, 2, nil)
	if !ok {
		t.Fatal("PlaceGang declined")
	}
	r.Restart()
	// Even if the hosts re-register before Commit runs, the reservation
	// was soft state the restart dropped: Commit must fail.
	if err := r.RegisterHost("g1", staticFor("g1")); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterHost("g2", staticFor("g2")); err != nil {
		t.Fatal(err)
	}
	if err := g.Commit(); !errors.Is(err, ErrReservationLost) {
		t.Fatalf("Commit after registry restart = %v, want ErrReservationLost", err)
	}
	if got := r.Reserved(); len(got) != 0 {
		t.Fatalf("Reserved() = %v, want empty", got)
	}
}

func TestReserveHostsPinsOccupiedHosts(t *testing.T) {
	r, _ := gangReg(t, 3)
	g, err := r.ReserveHosts([]string{"g3", "g1"})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Hosts(); got[0] != "g3" || got[1] != "g1" {
		t.Fatalf("hosts = %v, want pinned order [g3 g1]", got)
	}
	if _, err := r.ReserveHosts([]string{"g1"}); err == nil {
		t.Fatal("overlapping ReserveHosts succeeded")
	}
	if _, err := r.ReserveHosts([]string{"g2", "nope"}); err == nil {
		t.Fatal("ReserveHosts with unknown host succeeded")
	}
	// The failed all-or-nothing attempt must not have held g2.
	if _, err := r.ReserveHosts([]string{"g2"}); err != nil {
		t.Fatalf("g2 unexpectedly held: %v", err)
	}
	if err := g.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestLeastLoadedPlaceGang(t *testing.T) {
	r, _ := gangReg(t, 4)
	for i, load := range []float64{3, 1, 2, 0.5} {
		host := fmt.Sprintf("g%d", i+1)
		if err := r.ReportStatus(host, status("free", load, 1)); err != nil {
			t.Fatal(err)
		}
	}
	r.sched = LeastLoadedScheduler{}
	g, ok := r.PlaceGang(ProcInfo{}, 2, nil)
	if !ok {
		t.Fatal("PlaceGang declined")
	}
	if got := g.Hosts(); got[0] != "g4" || got[1] != "g2" {
		t.Fatalf("least-loaded gang = %v, want [g4 g2]", got)
	}
	g.Abort()
}

// TestGangConcurrentAdmissions is the race-clean acceptance test: many
// goroutines fight over a small fleet; reservations must never overlap and
// every commit must be all-or-nothing.
func TestGangConcurrentAdmissions(t *testing.T) {
	const hosts, workers, rounds = 8, 6, 50
	r, _ := gangReg(t, hosts)
	var (
		mu    sync.Mutex
		owned = map[string]int{} // host -> worker currently holding it
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				g, ok := r.PlaceGang(ProcInfo{Name: fmt.Sprintf("w%d", w)}, 3, nil)
				if !ok {
					continue
				}
				mu.Lock()
				for _, h := range g.Hosts() {
					if prev, taken := owned[h]; taken {
						t.Errorf("host %s double-booked by workers %d and %d", h, prev, w)
					}
					owned[h] = w
				}
				mu.Unlock()
				// Release the ownership record before Commit drops the
				// reservation marks: once Commit returns another worker may
				// legitimately reserve these hosts.
				mu.Lock()
				for _, h := range g.Hosts() {
					delete(owned, h)
				}
				mu.Unlock()
				if err := g.Commit(); err != nil {
					t.Errorf("Commit: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Reserved(); len(got) != 0 {
		t.Fatalf("Reserved() after storm = %v, want empty", got)
	}
}
