package registry

import (
	"errors"
	"fmt"
	"sort"

	"autoresched/internal/persist"
)

// Gang placement: all-or-nothing reservation of n hosts for a multi-process
// job. Admission is two-phase — Reserve marks the hosts so concurrent
// admissions (and the migration scheduler's destination scans) cannot
// double-book them while the job's eviction or launch work is in flight,
// then Commit re-checks liveness and releases the marks to the launching
// caller, or Abort rolls them back. A host that unregisters or loses its
// lease mid-reservation poisons the reservation: Commit fails and the
// caller retries admission from scratch, so no orphaned reservation marks
// survive a crashed host.

// GangScheduler is the optional Scheduler extension consulted by
// Registry.PlaceGang: given the eligible candidate stream, pick the n hosts
// the gang should occupy. Implementations must return n distinct hosts drawn
// from the stream, or ok=false to decline (the gang then stays queued).
// The stream contract matches PickDestination's: it is only valid during
// the call and runs under the registry lock.
type GangScheduler interface {
	Scheduler
	PlaceGang(proc ProcInfo, n int, candidates CandidateSeq) ([]HostInfo, bool)
}

// GangReservation is a pending all-or-nothing hold on a set of hosts.
// It is created by PlaceGang or ReserveHosts and resolved exactly once by
// Commit or Abort.
type GangReservation struct {
	r     *Registry
	hosts []string
	// id names the reservation in the durable change log (0 without a
	// store); presumed abort resolves ids left open by a crashed
	// incarnation.
	id uint64

	// Guarded by r.mu.
	resolved bool
	lost     []string // hosts that died while reserved
}

// Hosts returns the reserved hosts, in reservation order.
func (g *GangReservation) Hosts() []string {
	return append([]string(nil), g.hosts...)
}

// ErrReservationLost reports that a reserved host unregistered or expired
// before Commit.
var ErrReservationLost = errors.New("registry: gang reservation lost a host")

// Commit resolves the reservation for launch: it re-checks that every
// reserved host is still registered and lease-fresh, then releases the
// reservation marks to the caller (which immediately registers the gang's
// processes). If any host was lost while reserved, every mark is rolled
// back and Commit reports ErrReservationLost — the all-or-nothing failure
// that keeps a half-dead gang from launching.
func (g *GangReservation) Commit() error {
	r := g.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if g.resolved {
		return errors.New("registry: gang reservation already resolved")
	}
	g.resolved = true
	now := r.clock.Now()
	lost := append([]string(nil), g.lost...)
	for _, h := range g.hosts {
		e, ok := r.hosts[h]
		if !ok || !r.aliveLocked(e, now) {
			lost = append(lost, h)
		}
	}
	r.releaseLocked(g)
	if len(lost) > 0 {
		// Resolve the reservation as aborted in the durable log (unless a
		// bootstrap's presumed abort already did).
		_ = r.resolveGangLocked(g.id, false)
		sort.Strings(lost)
		return fmt.Errorf("%w: %v", ErrReservationLost, lost)
	}
	// The durable commit record is the admission's point of no return: a
	// deposed primary's append fails with persist.ErrFenced here, which is
	// what keeps a promoted standby (that presumed this reservation
	// aborted) from ever seeing the same gang admitted twice.
	if err := r.resolveGangLocked(g.id, true); err != nil {
		return fmt.Errorf("registry: gang commit rejected: %w", err)
	}
	return nil
}

// resolveGangLocked durably resolves reservation id (commit or abort) and
// drops it from the unresolved set. A reservation the durable state no
// longer tracks — already resolved by presumed abort — is a no-op.
func (r *Registry) resolveGangLocked(id uint64, commit bool) error {
	if id == 0 {
		return nil
	}
	if _, ok := r.gangs[id]; !ok {
		return nil
	}
	if err := r.appendLocked(recKindGangResolve, recGangResolve{ID: id, Commit: commit}); err != nil {
		return err
	}
	delete(r.gangs, id)
	return nil
}

// Abort rolls the reservation back, freeing every still-held host. Safe to
// call after a failed Commit (it is then a no-op).
func (g *GangReservation) Abort() {
	g.r.mu.Lock()
	defer g.r.mu.Unlock()
	if g.resolved {
		return
	}
	g.resolved = true
	g.r.releaseLocked(g)
	// A fenced abort still aborts: the promoted standby's presumed abort
	// already resolved the reservation durably.
	_ = g.r.resolveGangLocked(g.id, false)
}

// releaseLocked drops every reservation mark still pointing at g.
func (r *Registry) releaseLocked(g *GangReservation) {
	for _, h := range g.hosts {
		if r.reserved[h] == g {
			delete(r.reserved, h)
		}
	}
}

// reservedLocked reports whether a host is currently held by a pending
// reservation (candidate scans skip such hosts).
func (r *Registry) reservedLocked(host string) bool {
	_, ok := r.reserved[host]
	return ok
}

// Reserved returns the hosts currently held by pending reservations, sorted.
// Chaos scenarios use it to assert that rollbacks leave nothing orphaned.
func (r *Registry) Reserved() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.reserved))
	for h := range r.reserved {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// PlaceGang atomically selects and reserves n eligible hosts for proc:
// alive, unreserved, not excluded, passing the destination policy and
// proc's schema requirements. Selection goes through the configured
// Scheduler's PlaceGang extension when it implements GangScheduler and
// falls back to the first n candidates in registration order otherwise
// (first fit, the paper's placement, generalised to gangs). The whole
// select-and-mark runs under one lock acquisition, so two concurrent
// admissions can never reserve overlapping host sets.
func (r *Registry) PlaceGang(proc ProcInfo, n int, exclude func(host string) bool) (*GangReservation, bool) {
	if n <= 0 {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	eligible := r.eligibleLocked(proc, exclude)
	if len(eligible) < n {
		return nil, false
	}
	var picked []HostInfo
	seq := CandidateSeq(func(yield func(HostInfo) bool) {
		for _, h := range eligible {
			if !yield(h) {
				return
			}
		}
	})
	if gs, ok := r.sched.(GangScheduler); ok {
		sel, ok := gs.PlaceGang(proc, n, seq)
		if !ok {
			return nil, false
		}
		picked = sel
	} else {
		picked = eligible[:n]
	}
	if !validGangPick(picked, n, eligible) {
		return nil, false
	}
	g := &GangReservation{r: r}
	for _, h := range picked {
		g.hosts = append(g.hosts, h.Name)
	}
	if !r.reserveGangLocked(g) {
		return nil, false
	}
	return g, true
}

// reserveGangLocked durably records the reservation and sets the host
// marks. With a fenced store the reservation is refused and nothing is
// marked.
func (r *Registry) reserveGangLocked(g *GangReservation) bool {
	if r.store != nil {
		id := r.gangSeq + 1
		if err := r.appendLocked(recKindGangReserve, recGangReserve{ID: id, Hosts: g.hosts}); err != nil {
			return false
		}
		r.gangSeq = id
		g.id = id
		r.gangs[id] = append([]string(nil), g.hosts...)
	}
	for _, h := range g.hosts {
		r.reserved[h] = g
	}
	return true
}

// EligibleHosts snapshots the hosts a gang of proc's ranks may be placed
// on: alive, not held by a pending reservation, not excluded, and passing
// proc's schema requirements (a nil schema passes everywhere). The job
// dispatcher builds its planner view from it — with a zero ProcInfo it
// lists the whole schedulable fleet in registration order.
func (r *Registry) EligibleHosts(proc ProcInfo, exclude func(host string) bool) []HostInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eligibleLocked(proc, exclude)
}

// eligibleLocked snapshots the hosts a gang may be placed on, in
// registration order. Unlike migration destination scans it considers every
// alive host, not just the Free set: gang occupancy is the job layer's
// bookkeeping (passed in through exclude), not the monitors' load
// classification.
func (r *Registry) eligibleLocked(proc ProcInfo, exclude func(string) bool) []HostInfo {
	now := r.clock.Now()
	var out []HostInfo
	for _, e := range r.order {
		if !r.aliveLocked(e, now) || r.reservedLocked(e.info.Name) {
			continue
		}
		if exclude != nil && exclude(e.info.Name) {
			continue
		}
		if proc.Schema != nil {
			ok, _ := proc.Schema.Fits(
				e.info.Static.MemTotal,
				diskAvail(e.info.Status),
				e.info.Static.CPUSpeed,
				e.info.Static.Software,
			)
			if !ok {
				continue
			}
		}
		out = append(out, e.info)
	}
	return out
}

// validGangPick guards against a misbehaving GangScheduler: exactly n
// distinct hosts, all drawn from the eligible stream.
func validGangPick(picked []HostInfo, n int, eligible []HostInfo) bool {
	if len(picked) != n {
		return false
	}
	ok := make(map[string]bool, len(eligible))
	for _, h := range eligible {
		ok[h.Name] = true
	}
	seen := make(map[string]bool, n)
	for _, h := range picked {
		if !ok[h.Name] || seen[h.Name] {
			return false
		}
		seen[h.Name] = true
	}
	return true
}

// ReserveHosts atomically reserves the named hosts — including currently
// occupied ones, which is how a preempting admission pins the contested
// hosts it is evicting victims from. All-or-nothing: every host must be
// registered, lease-fresh and unreserved, or nothing is reserved.
func (r *Registry) ReserveHosts(hosts []string) (*GangReservation, error) {
	if len(hosts) == 0 {
		return nil, errors.New("registry: ReserveHosts with no hosts")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock.Now()
	seen := make(map[string]bool, len(hosts))
	for _, h := range hosts {
		if seen[h] {
			return nil, fmt.Errorf("registry: duplicate host %q in gang", h)
		}
		seen[h] = true
		e, ok := r.hosts[h]
		if !ok || !r.aliveLocked(e, now) {
			return nil, fmt.Errorf("registry: host %q not available for reservation", h)
		}
		if r.reservedLocked(h) {
			return nil, fmt.Errorf("registry: host %q already reserved", h)
		}
	}
	g := &GangReservation{r: r, hosts: append([]string(nil), hosts...)}
	if !r.reserveGangLocked(g) {
		return nil, fmt.Errorf("registry: reservation rejected: %w", persist.ErrFenced)
	}
	return g, nil
}
