package registry

import "autoresched/internal/rules"

// ElasticAdvisor is the malleability-aware placement policy: where the
// migration policies of Section 5.3 pick a new host for a fixed set of
// ranks, the advisor proposes a whole new world for an elastic job from
// the registry's host-state view. The rules are the natural extension of
// the paper's three-state model to rank counts:
//
//   - hosts in the current placement stay while they are not Overloaded or
//     Unavailable (Busy hosts run "as is", matching the paper's semantics);
//   - Free hosts not yet in the placement are added, in the order given,
//     up to MaxWorld — the job grows onto idle capacity;
//   - Overloaded, Unavailable, and unknown placed hosts are dropped — the
//     job shrinks off contended or dead machines instead of migrating
//     rank-for-rank.
//
// The first placement entry (the job's rank-0 root) is pinned: it stays
// whatever its state, because the malleability engine cannot move rank 0.
type ElasticAdvisor struct {
	// MinWorld is the smallest world worth running; a proposal below it is
	// withheld. Zero selects 1.
	MinWorld int
	// MaxWorld caps the world size; zero means unbounded.
	MaxWorld int
}

// Advise proposes a target placement for a job currently laid out as
// `placement` (rank order, placement[0] = root), judging hosts by the
// registry view `hosts` (in the order candidates should be preferred).
// The second result is false when no resize is warranted: the proposal
// would not change the host set, or it would fall below MinWorld.
func (a ElasticAdvisor) Advise(placement []string, hosts []HostInfo) ([]string, bool) {
	if len(placement) == 0 {
		return nil, false
	}
	min := a.MinWorld
	if min <= 0 {
		min = 1
	}
	state := make(map[string]rules.State, len(hosts))
	for _, h := range hosts {
		state[h.Name] = h.State
	}
	inPlacement := make(map[string]bool, len(placement))
	for _, h := range placement {
		inPlacement[h] = true
	}

	target := []string{placement[0]}
	for _, h := range placement[1:] {
		st, known := state[h]
		if !known || st.WantsOffload() || st == rules.Unavailable {
			continue
		}
		target = append(target, h)
	}
	for _, h := range hosts {
		if a.MaxWorld > 0 && len(target) >= a.MaxWorld {
			break
		}
		if inPlacement[h.Name] || !h.State.AcceptsMigration() {
			continue
		}
		target = append(target, h.Name)
	}

	if len(target) < min {
		return nil, false
	}
	if len(target) == len(placement) {
		same := true
		for _, h := range target[1:] {
			if !inPlacement[h] {
				same = false
				break
			}
		}
		if same {
			return nil, false
		}
	}
	return target, true
}
