package registry

import (
	"fmt"
	"time"

	"autoresched/internal/proto"
	"autoresched/internal/rules"
)

// shouldOffload decides whether a host's latest report asks for migration:
// under the default policy its rule-decided state is Overloaded (Table 1);
// under a threshold policy the policy's trigger and source preconditions
// hold.
func (r *Registry) shouldOffload(host string, e *hostEntry) (bool, error) {
	if r.cfg.Policy == nil {
		return e.info.State.WantsOffload(), nil
	}
	if !r.cfg.Policy.Migrate {
		return false, nil
	}
	return r.cfg.Policy.ShouldMigrate(r.probes, e.info.Status.Snapshot(host))
}

// destinationOK decides whether a candidate host qualifies: alive, willing
// to accept (state Free under the default policy, the policy's destination
// conditions otherwise), and owning the resources the schema requires.
func (r *Registry) destinationOK(cand *hostEntry, proc ProcInfo) (bool, error) {
	if r.cfg.Policy == nil {
		if !cand.info.State.AcceptsMigration() {
			return false, nil
		}
	} else {
		ok, err := r.cfg.Policy.DestinationOK(r.probes, cand.info.Status.Snapshot(cand.info.Name))
		if err != nil || !ok {
			return ok, err
		}
	}
	if proc.Schema != nil {
		ok, _ := proc.Schema.Fits(
			cand.info.Static.MemTotal,
			diskAvail(cand.info.Status),
			cand.info.Static.CPUSpeed,
			cand.info.Static.Software,
		)
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

func diskAvail(st proto.Status) int64 { return st.DiskAvail }

// FirstFit finds a destination for proc, excluding the source host. Despite
// the historical name it runs the configured Scheduler: the local domain is
// searched first (migration destinations are preferred inside one's own
// control domain, Section 3.2), then this registry's live child domains,
// then the parent registry.
func (r *Registry) FirstFit(exclude string, proc ProcInfo) (proto.Candidate, bool) {
	return r.placeFrom("", exclude, proc)
}

// placeFrom is the delegation walk. fromDomain names the child domain the
// request escalated out of, so the parent does not hand the placement
// straight back to the domain that already failed it.
func (r *Registry) placeFrom(fromDomain, exclude string, proc ProcInfo) (proto.Candidate, bool) {
	if cand, ok := r.placeLocal(exclude, proc); ok {
		return cand, true
	}
	if cand, ok := r.placeDomains(fromDomain, exclude, proc); ok {
		return cand, true
	}
	if r.cfg.Parent != nil {
		return r.cfg.Parent.placeFrom(r.cfg.Domain, exclude, proc)
	}
	return proto.Candidate{OK: false, Reason: "no host fits"}, false
}

// placeLocal asks the scheduler to place proc among this registry's own
// eligible hosts. Under the default policy only the Free state set is
// scanned — the indexed sets keep this cheap when most of a large cluster
// is busy. The candidate stream runs under the registry lock; see
// CandidateSeq.
func (r *Registry) placeLocal(exclude string, proc ProcInfo) (proto.Candidate, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock.Now()
	scan := r.order
	if r.cfg.Policy == nil {
		scan = r.sets[rules.Free]
	}
	seq := CandidateSeq(func(yield func(HostInfo) bool) {
		for _, e := range scan {
			if e.info.Name == exclude || !r.aliveLocked(e, now) {
				continue
			}
			// Hosts held by a pending gang reservation are spoken for:
			// migrating onto one would double-book it under the gang
			// about to launch there.
			if r.reservedLocked(e.info.Name) {
				continue
			}
			ok, err := r.destinationOK(e, proc)
			if err != nil || !ok {
				continue
			}
			if !yield(e.info) {
				return
			}
		}
	})
	h, ok := r.sched.PickDestination(proc, seq)
	if !ok {
		return proto.Candidate{}, false
	}
	return proto.Candidate{OK: true, Host: h.Name, Addr: h.Static.Addr}, true
}

// Candidate serves the pull-style consult: the overloaded host asks for a
// recommended destination for its selected process.
func (r *Registry) Candidate(host string) proto.Candidate {
	proc, ok := r.SelectProcess(host)
	if !ok {
		return proto.Candidate{OK: false, Reason: "no migration-enabled process registered"}
	}
	cand, _ := r.FirstFit(host, proc)
	return cand
}

// decide runs the scheduling decision for a host after a status refresh:
// warm-up damping, cooldown, process selection, destination choice, and
// finally the migrate order to the source host's commander.
func (r *Registry) decide(host string) {
	if r.cfg.Metrics != nil {
		start := time.Now() //lint:allow determinism decide_seconds measures real scheduler cost, not sim time
		defer func() {
			r.cfg.Metrics.Histogram(MetricDecideSeconds).Observe(time.Since(start).Seconds()) //lint:allow determinism decide_seconds measures real scheduler cost
		}()
	}
	r.mu.Lock()
	e, ok := r.hosts[host]
	if !ok {
		r.mu.Unlock()
		return
	}
	offload, err := r.shouldOffload(host, e)
	if err != nil || !offload {
		e.warmup = 0
		r.mu.Unlock()
		return
	}
	e.warmup++
	if e.warmup < r.cfg.Warmup {
		warm := e.warmup
		r.mu.Unlock()
		r.trace(EventWarmup, host, 0, "", fmt.Sprintf("%d/%d reports", warm, r.cfg.Warmup))
		return
	}
	now := r.clock.Now()
	if e.hasCmd && now.Sub(e.lastCmd) < r.cfg.Cooldown {
		r.mu.Unlock()
		r.trace(EventCooldown, host, 0, "", "")
		return
	}
	r.mu.Unlock()

	proc, ok := r.SelectProcess(host)
	if !ok {
		r.trace(EventNoProcess, host, 0, "", "")
		return
	}
	cand, ok := r.FirstFit(host, proc)
	if !ok {
		r.mu.Lock()
		r.declined++
		r.mu.Unlock()
		r.trace(EventDeclined, host, proc.PID, "", "no host fits")
		return
	}
	order := proto.MigrateOrder{
		PID:      proc.PID,
		DestHost: cand.Host,
		DestAddr: cand.Addr,
	}
	if r.cfg.Policy != nil {
		order.Policy = r.cfg.Policy.Name
	}
	if err := r.cfg.Commands.Migrate(host, order); err != nil {
		r.trace(EventOrderFailed, host, proc.PID, cand.Host, err.Error())
		return
	}
	r.mu.Lock()
	e.hasCmd = true
	e.lastCmd = now
	e.warmup = 0
	r.decided++
	r.mu.Unlock()
	r.trace(EventOrdered, host, proc.PID, cand.Host, "")
}

// Handler serves the XML protocol: monitors register and refresh (singly or
// batched), hosts ask for candidates, processes come and go.
func (r *Registry) Handler() proto.Handler {
	return func(m *proto.Message) (*proto.Message, error) {
		switch m.Type {
		case proto.TypeRegister:
			return nil, r.RegisterHost(m.From, *m.Static)
		case proto.TypeStatus:
			return nil, r.ReportStatus(m.From, *m.Status)
		case proto.TypeStatusBatch:
			return nil, r.ReportStatusBatch(m.Batch)
		case proto.TypeUnregister:
			return nil, r.UnregisterHost(m.From)
		case proto.TypeProcessRegister:
			return nil, r.RegisterProcess(m.From, *m.Process)
		case proto.TypeProcessExit:
			return nil, r.ProcessExit(m.From, m.Process.PID)
		case proto.TypeCandidateRequest:
			cand := r.Candidate(m.From)
			return &proto.Message{
				Type:      proto.TypeCandidateResponse,
				From:      r.cfg.Name,
				Candidate: &cand,
			}, nil
		default:
			return nil, fmt.Errorf("registry: unexpected message type %q", m.Type)
		}
	}
}

// StateOf returns the registry's view of a host's state (Unavailable when
// the lease has expired or the host is unknown).
func (r *Registry) StateOf(host string) rules.State {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.hosts[host]
	if !ok || !r.aliveLocked(e, r.clock.Now()) {
		return rules.Unavailable
	}
	return e.info.State
}
