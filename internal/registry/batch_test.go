package registry

import (
	"testing"

	"autoresched/internal/metrics"
	"autoresched/internal/proto"
	"autoresched/internal/rules"
	"autoresched/internal/vclock"
)

func TestReportStatusBatchAppliesAndReportsUnknown(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	r := newFromConfig(Config{Clock: clock})
	for _, h := range []string{"ws1", "ws2"} {
		if err := r.RegisterHost(h, staticFor(h)); err != nil {
			t.Fatal(err)
		}
	}
	err := r.ReportStatusBatch([]proto.HostStatus{
		{Host: "ws1", Status: status("free", 0.1, 3)},
		{Host: "ghost", Status: status("busy", 1, 10)},
		{Host: "ws2", Status: status("busy", 1.2, 40)},
	})
	if err == nil {
		t.Fatal("batch with unknown host: want error")
	}
	// The known hosts' reports applied despite the rejected one.
	hosts := r.Hosts()
	if hosts[0].State != rules.Free || hosts[1].State != rules.Busy {
		t.Fatalf("states after batch = %v/%v", hosts[0].State, hosts[1].State)
	}
}

func TestReportStatusBatchDecides(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	sink := &fakeSink{}
	r := newReg(t, clock, sink, nil) // warmup 2
	for _, h := range []string{"ws1", "ws4"} {
		if err := r.RegisterHost(h, staticFor(h)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.RegisterProcess("ws1", proto.ProcessInfo{
		PID: 7, Name: "test_tree", Start: clock.Now().UnixNano(), SchemaXML: testTreeXML(t),
	}); err != nil {
		t.Fatal(err)
	}
	batch := []proto.HostStatus{
		{Host: "ws4", Status: status("free", 0.1, 5)},
		{Host: "ws1", Status: status("overloaded", 3, 200)},
	}
	// Batched reports feed the same damping: two consecutive overloaded
	// sightings order the migration, exactly as single reports would.
	if err := r.ReportStatusBatch(batch); err != nil {
		t.Fatal(err)
	}
	if sink.count() != 0 {
		t.Fatal("order before warm-up complete")
	}
	if err := r.ReportStatusBatch(batch); err != nil {
		t.Fatal(err)
	}
	if sink.count() != 1 {
		t.Fatalf("orders = %d, want 1", sink.count())
	}
	if got := sink.orders[0]; got.Host != "ws1" || got.Order.DestHost != "ws4" {
		t.Fatalf("order = %+v", got)
	}
}

func TestBatcherLatestWinsAndFlushAtMaxPending(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	ctr := metrics.NewCounters()
	r := newFromConfig(Config{Clock: clock})
	b := NewBatcher(r, BatcherConfig{Clock: clock, MaxPending: 2, Counters: ctr})
	for _, h := range []string{"ws1", "ws2"} {
		if err := b.RegisterHost(h, staticFor(h)); err != nil {
			t.Fatal(err)
		}
	}
	// Two reports from ws1 coalesce to the latest; nothing reaches the
	// registry until the batch is due.
	if err := b.ReportStatus("ws1", status("busy", 1.5, 40)); err != nil {
		t.Fatal(err)
	}
	if err := b.ReportStatus("ws1", status("free", 0.1, 3)); err != nil {
		t.Fatal(err)
	}
	if got := r.Hosts()[0].Status.Load1; got != 0 {
		t.Fatalf("report reached the registry before the flush (load %v)", got)
	}
	// The second distinct host reaches MaxPending and flushes both.
	if err := b.ReportStatus("ws2", status("free", 0.2, 4)); err != nil {
		t.Fatal(err)
	}
	hosts := r.Hosts()
	if hosts[0].Status.Load1 != 0.1 || hosts[1].Status.Load1 != 0.2 {
		t.Fatalf("loads after flush = %v/%v, want 0.1 (latest wins) and 0.2",
			hosts[0].Status.Load1, hosts[1].Status.Load1)
	}
	if got := ctr.Get(metrics.CtrBatchFlushes); got != 1 {
		t.Fatalf("flushes = %d, want 1", got)
	}
	if got := ctr.Get(metrics.CtrBatchedReports); got != 2 {
		t.Fatalf("batched reports = %d, want 2 (latest-wins coalescing)", got)
	}
}

func TestBatcherRecoversAfterRegistryRestart(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	ctr := metrics.NewCounters()
	r := newFromConfig(Config{Clock: clock})
	b := NewBatcher(r, BatcherConfig{Clock: clock, MaxPending: 2, Counters: ctr})
	for _, h := range []string{"ws1", "ws2"} {
		if err := b.RegisterHost(h, staticFor(h)); err != nil {
			t.Fatal(err)
		}
	}

	// The registry crashes and loses its soft state; the batcher's next
	// flush re-registers its hosts from the retained statics and resends.
	r.Restart()
	if err := b.ReportStatus("ws1", status("busy", 1.5, 40)); err != nil {
		t.Fatal(err)
	}
	if err := b.ReportStatus("ws2", status("busy", 1.2, 30)); err != nil {
		t.Fatal(err)
	}
	hosts := r.Hosts()
	if len(hosts) != 2 || hosts[0].State != rules.Busy || hosts[1].State != rules.Busy {
		t.Fatalf("hosts after recovery = %+v", hosts)
	}
	if got := ctr.Get(metrics.CtrReregisters); got != 2 {
		t.Fatalf("re-registers = %d, want 2", got)
	}
}
