package registry

import (
	"testing"

	"autoresched/internal/rules"
	"autoresched/internal/vclock"
)

func TestDefaultSchedulerIsFirstFit(t *testing.T) {
	r := newFromConfig(Config{Clock: vclock.NewManual(vclock.Epoch)})
	if got := r.sched.Name(); got != "firstfit" {
		t.Fatalf("default scheduler = %q, want firstfit", got)
	}
}

func TestSchedulerByName(t *testing.T) {
	for name, want := range map[string]string{
		"":             "firstfit",
		"firstfit":     "firstfit",
		"first-fit":    "firstfit",
		"leastloaded":  "leastloaded",
		"least-loaded": "leastloaded",
	} {
		s, err := SchedulerByName(name)
		if err != nil {
			t.Fatalf("SchedulerByName(%q): %v", name, err)
		}
		if s.Name() != want {
			t.Fatalf("SchedulerByName(%q) = %q, want %q", name, s.Name(), want)
		}
	}
	if _, err := SchedulerByName("round-robin"); err == nil {
		t.Fatal("SchedulerByName(round-robin): want error")
	}
}

func TestPolicyNamesScheduler(t *testing.T) {
	r := newFromConfig(Config{
		Clock:  vclock.NewManual(vclock.Epoch),
		Policy: &rules.MigrationPolicy{Scheduler: "leastloaded"},
	})
	if got := r.sched.Name(); got != "leastloaded" {
		t.Fatalf("scheduler via policy = %q, want leastloaded", got)
	}
}

func TestLeastLoadedPicksLightestHost(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	r := newFromConfig(Config{Clock: clock, Scheduler: LeastLoadedScheduler{}})
	for host, load := range map[string]float64{"ws1": 0.8, "ws2": 0.2, "ws3": 0.5} {
		if err := r.RegisterHost(host, staticFor(host)); err != nil {
			t.Fatal(err)
		}
		if err := r.ReportStatus(host, status("free", load, 5)); err != nil {
			t.Fatal(err)
		}
	}
	cand, ok := r.FirstFit("src", ProcInfo{})
	if !ok || cand.Host != "ws2" {
		t.Fatalf("candidate = %+v ok=%v, want lightest host ws2", cand, ok)
	}

	// First fit on the same cluster takes the earliest registration
	// regardless of load.
	ff := newFromConfig(Config{Clock: clock})
	for _, host := range []string{"ws1", "ws2"} {
		if err := ff.RegisterHost(host, staticFor(host)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ff.ReportStatus("ws1", status("free", 0.8, 5)); err != nil {
		t.Fatal(err)
	}
	if err := ff.ReportStatus("ws2", status("free", 0.2, 5)); err != nil {
		t.Fatal(err)
	}
	cand, ok = ff.FirstFit("src", ProcInfo{})
	if !ok || cand.Host != "ws1" {
		t.Fatalf("candidate = %+v ok=%v, want first-registered ws1", cand, ok)
	}
}

func TestLeastLoadedTieBreaksByRegistration(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	r := newFromConfig(Config{Clock: clock, Scheduler: LeastLoadedScheduler{}})
	for _, host := range []string{"ws1", "ws2"} {
		if err := r.RegisterHost(host, staticFor(host)); err != nil {
			t.Fatal(err)
		}
		if err := r.ReportStatus(host, status("free", 0.3, 5)); err != nil {
			t.Fatal(err)
		}
	}
	cand, ok := r.FirstFit("src", ProcInfo{})
	if !ok || cand.Host != "ws1" {
		t.Fatalf("candidate = %+v ok=%v, want earlier registration on tie", cand, ok)
	}
}
