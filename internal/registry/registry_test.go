package registry

import (
	"sync"
	"testing"
	"time"

	"autoresched/internal/proto"
	"autoresched/internal/rules"
	"autoresched/internal/schema"
	"autoresched/internal/vclock"
)

type fakeSink struct {
	mu     sync.Mutex
	orders []struct {
		Host  string
		Order proto.MigrateOrder
	}
	err error
}

func (f *fakeSink) Migrate(host string, order proto.MigrateOrder) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return f.err
	}
	f.orders = append(f.orders, struct {
		Host  string
		Order proto.MigrateOrder
	}{host, order})
	return nil
}

func (f *fakeSink) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.orders)
}

func staticFor(host string) proto.StaticInfo {
	return proto.StaticInfo{
		Addr: "cmd://" + host, OS: "simos", CPUSpeed: 1000,
		MemTotal: 128 << 20, Software: []string{"hpcm"},
	}
}

func status(state string, load float64, procs int) proto.Status {
	return proto.Status{State: state, Load1: load, NumProcs: procs}
}

func testTreeXML(t *testing.T) string {
	t.Helper()
	s := &schema.Schema{
		Name:     "test_tree",
		Estimate: schema.Estimate{Seconds: 300, CPUSpeed: 1000},
	}
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func newReg(t *testing.T, clock vclock.Clock, sink CommandSink, policy *rules.MigrationPolicy) *Registry {
	t.Helper()
	return newFromConfig(Config{
		Clock:    clock,
		Policy:   policy,
		Commands: sink,
		Warmup:   2,
		Cooldown: 60 * time.Second,
		Lease:    35 * time.Second,
	})
}

func TestRegisterAndLeaseExpiry(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	r := newReg(t, clock, nil, nil)
	if err := r.RegisterHost("ws1", staticFor("ws1")); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterHost("", staticFor("x")); err == nil {
		t.Fatal("empty host accepted")
	}
	if got := r.StateOf("ws1"); got != rules.Free {
		t.Fatalf("state = %v", got)
	}
	// Refresh keeps it alive.
	clock.Advance(30 * time.Second)
	if err := r.ReportStatus("ws1", status("busy", 1.5, 10)); err != nil {
		t.Fatal(err)
	}
	clock.Advance(30 * time.Second)
	if got := r.StateOf("ws1"); got != rules.Busy {
		t.Fatalf("state = %v", got)
	}
	// Missing refreshes expire the lease.
	clock.Advance(10 * time.Second)
	if got := r.StateOf("ws1"); got != rules.Unavailable {
		t.Fatalf("state after lease expiry = %v", got)
	}
	hosts := r.Hosts()
	if len(hosts) != 1 || hosts[0].State != rules.Unavailable {
		t.Fatalf("hosts = %+v", hosts)
	}
	if got := r.StateOf("ghost"); got != rules.Unavailable {
		t.Fatalf("unknown host state = %v", got)
	}
}

func TestStatusFromUnregisteredHost(t *testing.T) {
	r := newReg(t, vclock.NewManual(vclock.Epoch), nil, nil)
	if err := r.ReportStatus("ghost", status("free", 0, 1)); err == nil {
		t.Fatal("status from unregistered host accepted")
	}
	if err := r.ReportStatus("ghost", proto.Status{State: "sideways"}); err == nil {
		t.Fatal("garbage state accepted")
	}
}

func TestProcessRegistrationAndSelection(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	r := newReg(t, clock, nil, nil)
	if err := r.RegisterHost("ws1", staticFor("ws1")); err != nil {
		t.Fatal(err)
	}
	// Process from unknown host rejected.
	if err := r.RegisterProcess("ghost", proto.ProcessInfo{PID: 1}); err == nil {
		t.Fatal("process on unknown host accepted")
	}
	// Bad schema rejected.
	if err := r.RegisterProcess("ws1", proto.ProcessInfo{PID: 1, SchemaXML: "<junk"}); err == nil {
		t.Fatal("bad schema accepted")
	}

	// Two processes; the one with the LATEST estimated completion is
	// selected (Section 4). Both started together; longer estimate wins.
	longXML := testTreeXML(t)
	short := &schema.Schema{Name: "short", Estimate: schema.Estimate{Seconds: 10, CPUSpeed: 1000}}
	shortData, _ := short.Marshal()
	start := clock.Now().UnixNano()
	if err := r.RegisterProcess("ws1", proto.ProcessInfo{PID: 11, Name: "short", Start: start, SchemaXML: string(shortData)}); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterProcess("ws1", proto.ProcessInfo{PID: 12, Name: "test_tree", Start: start, SchemaXML: longXML}); err != nil {
		t.Fatal(err)
	}
	sel, ok := r.SelectProcess("ws1")
	if !ok || sel.PID != 12 {
		t.Fatalf("selected %+v, want pid 12 (latest completion)", sel)
	}
	if len(r.Processes("ws1")) != 2 {
		t.Fatal("process table wrong")
	}
	if err := r.ProcessExit("ws1", 12); err != nil {
		t.Fatal(err)
	}
	sel, ok = r.SelectProcess("ws1")
	if !ok || sel.PID != 11 {
		t.Fatalf("selected %+v after exit", sel)
	}
	if _, ok := r.SelectProcess("ghost"); ok {
		t.Fatal("selection on unknown host succeeded")
	}
}

func TestFirstFitRegistrationOrderAndStates(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	r := newReg(t, clock, nil, nil)
	for _, h := range []string{"ws2", "ws3", "ws4"} {
		if err := r.RegisterHost(h, staticFor(h)); err != nil {
			t.Fatal(err)
		}
	}
	// ws2 busy, ws3 overloaded, ws4 free: first fit must pick ws4.
	if err := r.ReportStatus("ws2", status("busy", 1.5, 10)); err != nil {
		t.Fatal(err)
	}
	if err := r.ReportStatus("ws3", status("overloaded", 2.5, 10)); err != nil {
		t.Fatal(err)
	}
	if err := r.ReportStatus("ws4", status("free", 0.1, 10)); err != nil {
		t.Fatal(err)
	}
	cand, ok := r.FirstFit("ws1", ProcInfo{})
	if !ok || cand.Host != "ws4" {
		t.Fatalf("candidate = %+v", cand)
	}
	// Free both ws2 and ws4: registration order makes ws2 win.
	if err := r.ReportStatus("ws2", status("free", 0.1, 10)); err != nil {
		t.Fatal(err)
	}
	cand, ok = r.FirstFit("ws1", ProcInfo{})
	if !ok || cand.Host != "ws2" {
		t.Fatalf("candidate = %+v, want ws2 (registration order)", cand)
	}
	// Excluded source never returned.
	cand, ok = r.FirstFit("ws2", ProcInfo{})
	if !ok || cand.Host != "ws4" {
		t.Fatalf("candidate = %+v, want ws4 with ws2 excluded", cand)
	}
	// Expired hosts are skipped.
	clock.Advance(time.Hour)
	if _, ok := r.FirstFit("ws1", ProcInfo{}); ok {
		t.Fatal("stale host offered as candidate")
	}
}

func TestFirstFitSchemaRequirements(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	r := newReg(t, clock, nil, nil)
	small := staticFor("ws2")
	small.MemTotal = 16 << 20
	if err := r.RegisterHost("ws2", small); err != nil {
		t.Fatal(err)
	}
	if err := r.ReportStatus("ws2", status("free", 0, 5)); err != nil {
		t.Fatal(err)
	}
	demanding := &schema.Schema{
		Name:         "big",
		Requirements: schema.Requirements{MinMemory: 64 << 20},
	}
	if _, ok := r.FirstFit("ws1", ProcInfo{Schema: demanding}); ok {
		t.Fatal("host without enough memory offered")
	}
	big := staticFor("ws3")
	if err := r.RegisterHost("ws3", big); err != nil {
		t.Fatal(err)
	}
	if err := r.ReportStatus("ws3", status("free", 0, 5)); err != nil {
		t.Fatal(err)
	}
	cand, ok := r.FirstFit("ws1", ProcInfo{Schema: demanding})
	if !ok || cand.Host != "ws3" {
		t.Fatalf("candidate = %+v", cand)
	}
	// Software requirement.
	needsSW := &schema.Schema{
		Name:         "sw",
		Requirements: schema.Requirements{Software: []string{"exotic"}},
	}
	if _, ok := r.FirstFit("ws1", ProcInfo{Schema: needsSW}); ok {
		t.Fatal("host without software offered")
	}
}

func TestDecisionFlowWarmupAndCooldown(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	sink := &fakeSink{}
	r := newReg(t, clock, sink, nil) // state-based policy, warmup 2
	for _, h := range []string{"ws1", "ws4"} {
		if err := r.RegisterHost(h, staticFor(h)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.RegisterProcess("ws1", proto.ProcessInfo{
		PID: 7, Name: "test_tree", Start: clock.Now().UnixNano(), SchemaXML: testTreeXML(t),
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.ReportStatus("ws4", status("free", 0.1, 5)); err != nil {
		t.Fatal(err)
	}

	// First overloaded report: warm-up, no order yet.
	if err := r.ReportStatus("ws1", status("overloaded", 3, 200)); err != nil {
		t.Fatal(err)
	}
	if sink.count() != 0 {
		t.Fatal("order before warm-up complete")
	}
	// An intervening non-overloaded report resets the warm-up.
	if err := r.ReportStatus("ws1", status("busy", 1.2, 50)); err != nil {
		t.Fatal(err)
	}
	if err := r.ReportStatus("ws1", status("overloaded", 3, 200)); err != nil {
		t.Fatal(err)
	}
	if sink.count() != 0 {
		t.Fatal("warm-up not reset by recovery")
	}
	// Second consecutive overloaded report fires the order.
	if err := r.ReportStatus("ws1", status("overloaded", 3, 200)); err != nil {
		t.Fatal(err)
	}
	if sink.count() != 1 {
		t.Fatalf("orders = %d, want 1", sink.count())
	}
	got := sink.orders[0]
	if got.Host != "ws1" || got.Order.PID != 7 || got.Order.DestHost != "ws4" || got.Order.DestAddr != "cmd://ws4" {
		t.Fatalf("order = %+v", got)
	}

	// Cooldown: immediately repeated overloaded reports do not re-order.
	for i := 0; i < 3; i++ {
		if err := r.ReportStatus("ws1", status("overloaded", 3, 200)); err != nil {
			t.Fatal(err)
		}
	}
	if sink.count() != 1 {
		t.Fatalf("orders during cooldown = %d", sink.count())
	}
	// After the cooldown (and fresh leases), ordering resumes.
	clock.Advance(61 * time.Second)
	if err := r.ReportStatus("ws4", status("free", 0.1, 5)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := r.ReportStatus("ws1", status("overloaded", 3, 200)); err != nil {
			t.Fatal(err)
		}
	}
	if sink.count() != 2 {
		t.Fatalf("orders after cooldown = %d, want 2", sink.count())
	}
	ordered, _ := r.Stats()
	if ordered != 2 {
		t.Fatalf("Stats ordered = %d", ordered)
	}
}

func TestDecisionDeclinedWithoutDestination(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	sink := &fakeSink{}
	r := newReg(t, clock, sink, nil)
	if err := r.RegisterHost("ws1", staticFor("ws1")); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterProcess("ws1", proto.ProcessInfo{PID: 7, Start: clock.Now().UnixNano()}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := r.ReportStatus("ws1", status("overloaded", 3, 200)); err != nil {
			t.Fatal(err)
		}
	}
	if sink.count() != 0 {
		t.Fatal("order issued without destination")
	}
	_, declined := r.Stats()
	if declined == 0 {
		t.Fatal("declined not counted")
	}
}

func TestPolicyDrivenDecision(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	sink := &fakeSink{}
	r := newFromConfig(Config{
		Clock: clock, Policy: rules.Policy3(), Commands: sink,
		Warmup: 1, Cooldown: time.Minute,
	})
	for _, h := range []string{"ws1", "ws2", "ws4"} {
		if err := r.RegisterHost(h, staticFor(h)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.RegisterProcess("ws1", proto.ProcessInfo{PID: 9, Start: clock.Now().UnixNano()}); err != nil {
		t.Fatal(err)
	}
	// ws2: low load but heavy communication; ws4: free. Policy 3 must skip
	// ws2 even though it registered first.
	if err := r.ReportStatus("ws2", proto.Status{State: "free", Load1: 0.97, NumProcs: 40, NetOutMBps: 7.2}); err != nil {
		t.Fatal(err)
	}
	if err := r.ReportStatus("ws4", proto.Status{State: "free", Load1: 0.05, NumProcs: 30}); err != nil {
		t.Fatal(err)
	}
	if err := r.ReportStatus("ws1", proto.Status{State: "overloaded", Load1: 2.6, NumProcs: 60}); err != nil {
		t.Fatal(err)
	}
	if sink.count() != 1 {
		t.Fatalf("orders = %d", sink.count())
	}
	if got := sink.orders[0].Order; got.DestHost != "ws4" || got.Policy != "policy3" {
		t.Fatalf("order = %+v", got)
	}
}

func TestHierarchicalDelegation(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	parent := newFromConfig(Config{Clock: clock})
	if err := parent.RegisterHost("remote1", staticFor("remote1")); err != nil {
		t.Fatal(err)
	}
	if err := parent.ReportStatus("remote1", status("free", 0.1, 3)); err != nil {
		t.Fatal(err)
	}
	child := newFromConfig(Config{Clock: clock, Parent: parent})
	if err := child.RegisterHost("ws1", staticFor("ws1")); err != nil {
		t.Fatal(err)
	}
	// No free host in the child's domain: delegate upward.
	cand, ok := child.FirstFit("ws1", ProcInfo{})
	if !ok || cand.Host != "remote1" {
		t.Fatalf("candidate = %+v, want remote1 via parent", cand)
	}
	// A local free host is preferred over the parent's.
	if err := child.RegisterHost("ws2", staticFor("ws2")); err != nil {
		t.Fatal(err)
	}
	if err := child.ReportStatus("ws2", status("free", 0.1, 3)); err != nil {
		t.Fatal(err)
	}
	cand, ok = child.FirstFit("ws1", ProcInfo{})
	if !ok || cand.Host != "ws2" {
		t.Fatalf("candidate = %+v, want local ws2", cand)
	}
}

func TestCandidatePull(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	r := newReg(t, clock, nil, nil)
	if err := r.RegisterHost("ws1", staticFor("ws1")); err != nil {
		t.Fatal(err)
	}
	// No process registered: candidate request explains why.
	cand := r.Candidate("ws1")
	if cand.OK {
		t.Fatalf("candidate = %+v", cand)
	}
	if err := r.RegisterProcess("ws1", proto.ProcessInfo{PID: 5, Start: clock.Now().UnixNano()}); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterHost("ws2", staticFor("ws2")); err != nil {
		t.Fatal(err)
	}
	if err := r.ReportStatus("ws2", status("free", 0, 2)); err != nil {
		t.Fatal(err)
	}
	cand = r.Candidate("ws1")
	if !cand.OK || cand.Host != "ws2" {
		t.Fatalf("candidate = %+v", cand)
	}
}

func TestHandlerServesProtocol(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	r := newReg(t, clock, nil, nil)
	h := r.Handler()

	static := staticFor("ws1")
	if _, err := h(&proto.Message{Type: proto.TypeRegister, From: "ws1", Static: &static}); err != nil {
		t.Fatal(err)
	}
	st := status("busy", 1.1, 9)
	if _, err := h(&proto.Message{Type: proto.TypeStatus, From: "ws1", Status: &st}); err != nil {
		t.Fatal(err)
	}
	if r.StateOf("ws1") != rules.Busy {
		t.Fatal("status not applied")
	}
	pi := proto.ProcessInfo{PID: 3, Name: "x", Start: clock.Now().UnixNano()}
	if _, err := h(&proto.Message{Type: proto.TypeProcessRegister, From: "ws1", Process: &pi}); err != nil {
		t.Fatal(err)
	}
	resp, err := h(&proto.Message{Type: proto.TypeCandidateRequest, From: "ws1"})
	if err != nil {
		t.Fatal(err)
	}
	if resp == nil || resp.Type != proto.TypeCandidateResponse {
		t.Fatalf("resp = %+v", resp)
	}
	if _, err := h(&proto.Message{Type: proto.TypeProcessExit, From: "ws1", Process: &proto.ProcessInfo{PID: 3}}); err != nil {
		t.Fatal(err)
	}
	if _, err := h(&proto.Message{Type: proto.TypeUnregister, From: "ws1"}); err != nil {
		t.Fatal(err)
	}
	if len(r.Hosts()) != 0 {
		t.Fatal("unregister did not remove host")
	}
	if _, err := h(&proto.Message{Type: proto.TypeAck, From: "x"}); err == nil {
		t.Fatal("unexpected type accepted")
	}
}
