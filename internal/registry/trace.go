package registry

import (
	"fmt"
	"time"

	"autoresched/internal/events"
)

// EventKind classifies a scheduling-decision event.
type EventKind string

// The decision trace vocabulary.
const (
	// EventWarmup: a host qualified for offloading but the damping window
	// has not elapsed yet.
	EventWarmup EventKind = "warmup"
	// EventCooldown: a qualified host was skipped because an order was
	// issued recently.
	EventCooldown EventKind = "cooldown"
	// EventNoProcess: a qualified host has no migration-enabled process.
	EventNoProcess EventKind = "no-process"
	// EventDeclined: no destination fit the selected process.
	EventDeclined EventKind = "declined"
	// EventOrdered: a migrate order was dispatched.
	EventOrdered EventKind = "ordered"
	// EventOrderFailed: the commander rejected the order.
	EventOrderFailed EventKind = "order-failed"
	// EventRestart: the registry dropped its soft state (simulated crash +
	// restart) — or, with a durable store configured, recovered it by
	// crash-consistent bootstrap (the RestartEvent payload tells which).
	EventRestart EventKind = "restart"
	// EventPromoted: a warm standby fenced the old primary's epoch and
	// took over as the writing registry.
	EventPromoted EventKind = "promoted"
)

// Event is one entry of the scheduler's decision trace.
type Event struct {
	At   time.Time
	Kind EventKind
	Host string
	// PID and Dest are set for process-level events.
	PID  int
	Dest string
	Note string
}

// String renders the event for logs.
func (e Event) String() string {
	s := fmt.Sprintf("%s %s host=%s", e.At.Format("15:04:05"), e.Kind, e.Host)
	if e.PID != 0 {
		s += fmt.Sprintf(" pid=%d", e.PID)
	}
	if e.Dest != "" {
		s += " dest=" + e.Dest
	}
	if e.Note != "" {
		s += " (" + e.Note + ")"
	}
	return s
}

// RestartEvent is the typed payload published on the unified sink for a
// registry restart, so events.On[RestartEvent] subscribers — the runtime's
// process resync, the standby promoter, test harnesses — can distinguish a
// crash-consistent recovery (Recovered, with the restored state's shape)
// from a soft-state drop without parsing trace notes.
type RestartEvent struct {
	At time.Time
	// Recovered reports a store-backed bootstrap; false is the classic
	// soft-state drop where everything must re-register.
	Recovered bool
	// Seq is the change-log sequence the recovered state corresponds to
	// (zero without a store).
	Seq uint64
	// Hosts, Procs and Domains count the restored protocol state.
	Hosts   int
	Procs   int
	Domains int
}

// traceCap bounds the in-memory decision trace.
const traceCap = 512

// trace appends an event (callers must not hold r.mu).
func (r *Registry) trace(kind EventKind, host string, pid int, dest, note string) {
	r.traceWith(nil, kind, host, pid, dest, note)
}

// traceWith appends an event carrying a typed payload on the unified sink
// (callers must not hold r.mu). The trace ring and the OnEvent observer see
// the plain Event; the payload rides only on events.Sink, where On[T]
// subscribers pick it up.
func (r *Registry) traceWith(payload any, kind EventKind, host string, pid int, dest, note string) {
	e := Event{At: r.clock.Now(), Kind: kind, Host: host, PID: pid, Dest: dest, Note: note}
	r.mu.Lock()
	r.events = append(r.events, e)
	if len(r.events) > traceCap {
		r.events = r.events[len(r.events)-traceCap:]
	}
	r.mu.Unlock()
	if r.cfg.OnEvent != nil {
		r.cfg.OnEvent(e)
	}
	if r.cfg.Events != nil {
		u := e.Unified()
		u.Payload = payload
		r.cfg.Events.Publish(u)
	}
}

// Unified converts the trace event to the unified runtime event vocabulary
// (the registry's adapter onto events.Sink).
func (e Event) Unified() events.Event {
	return events.Event{
		Time:   e.At,
		Source: events.SourceRegistry,
		Kind:   string(e.Kind),
		Host:   e.Host,
		Dest:   e.Dest,
		PID:    e.PID,
		Note:   e.Note,
	}
}

// Trace returns the recent decision events, oldest first.
func (r *Registry) Trace() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}
