package registry

import (
	"fmt"
	"testing"
	"time"

	"autoresched/internal/persist"
	"autoresched/internal/proto"
	"autoresched/internal/vclock"
)

// BenchmarkReplayBootstrap measures the crash-consistent restart — load
// snapshot, replay the log suffix — at 512 and 4096 hosts, the cost a
// durable registry pays instead of the re-registration storm. The store
// holds a mid-log snapshot so the bootstrap exercises both paths. Feeds
// BENCH_persist.json behind the benchguard drift gate.
func BenchmarkReplayBootstrap(b *testing.B) {
	for _, n := range []int{512, 4096} {
		b.Run(fmt.Sprintf("hosts%d", n), func(b *testing.B) {
			store := persist.NewMemStore()
			clock := vclock.NewManual(vclock.Epoch)
			r := newFromConfig(Config{Clock: clock, Store: store, SnapshotEvery: n})
			for i := 0; i < n; i++ {
				if err := r.RegisterHost(fmt.Sprintf("ws%05d", i), proto.StaticInfo{CPUSpeed: 1e6}); err != nil {
					b.Fatal(err)
				}
			}
			clock.Advance(5 * time.Second)
			for i := 0; i < n; i++ {
				if err := r.ReportStatus(fmt.Sprintf("ws%05d", i), proto.Status{State: "busy", Load1: 1.5}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.mu.Lock()
				if err := r.bootstrapLocked(); err != nil {
					r.mu.Unlock()
					b.Fatal(err)
				}
				r.mu.Unlock()
			}
		})
	}
}
