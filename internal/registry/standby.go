package registry

import (
	"fmt"
	"sort"

	"autoresched/internal/metrics"
	"autoresched/internal/persist"
)

// Standby is the warm half of a registry HA pair: a shadow registry that
// follows the primary's change log through the shared store — snapshot
// bootstrap, then incremental sequence-numbered catch-up — and can be
// promoted when the primary dies. Promotion fences the store's epoch first,
// so any append the deposed primary still attempts (including the durable
// commit of a gang reservation) fails with persist.ErrFenced; reservations
// the primary left unresolved are presumed aborted by the promoted
// registry, and the pair can therefore never admit the same gang twice.
//
// The shadow registry is passive while standing by: it is built without
// Parent, Commands or Events side effects firing from replay (records are
// applied structurally, not through the public mutation methods), and the
// store is attached — making it the writing primary — only at Promote.
type Standby struct {
	store persist.Store
	r     *Registry
}

// NewStandby builds a warm standby following store. opts configure the
// registry that Promote will return; a WithStore among them is ignored
// (the standby attaches the store itself, at promotion). The initial
// snapshot+suffix catch-up runs before NewStandby returns.
func NewStandby(store persist.Store, opts ...Option) (*Standby, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	cfg.Store = nil // follower: no appends until promotion
	s := &Standby{store: store, r: newFromConfig(cfg)}
	if _, err := s.Sync(); err != nil {
		return nil, err
	}
	return s, nil
}

// Sync pulls every change the primary persisted since the last Sync and
// applies it to the shadow state, reloading from the snapshot when the
// primary compacted past the standby's position. Returns the sequence the
// standby is now caught up to.
func (s *Standby) Sync() (uint64, error) {
	r := s.r
	r.mu.Lock()
	defer r.mu.Unlock()
	snap, ok, err := s.store.LoadSnapshot()
	if err != nil {
		return r.lastApplied, fmt.Errorf("registry: standby snapshot: %w", err)
	}
	if ok && snap.Seq > r.lastApplied {
		// The primary compacted records we have not applied: restart from
		// the snapshot rather than silently skipping the gap.
		r.resetStateLocked()
		if err := r.restoreStateLocked(snap.Data); err != nil {
			return r.lastApplied, err
		}
		r.lastApplied = snap.Seq
		r.lastSnap = snap.Seq
	}
	recs, err := s.store.ReadSince(r.lastApplied)
	if err != nil {
		return r.lastApplied, fmt.Errorf("registry: standby catch-up: %w", err)
	}
	r.replaying = true
	for _, rec := range recs {
		if err := r.applyRecordLocked(rec); err != nil {
			r.replaying = false
			return r.lastApplied, err
		}
		r.lastApplied = rec.Seq
	}
	r.replaying = false
	return r.lastApplied, nil
}

// Lag reports how many records the standby is behind the store's tail.
func (s *Standby) Lag() uint64 {
	tail := s.store.Seq()
	s.r.mu.Lock()
	applied := s.r.lastApplied
	s.r.mu.Unlock()
	if tail <= applied {
		return 0
	}
	return tail - applied
}

// Registry returns the shadow registry for inspection (Health, Hosts,
// StateDigest). Mutating it before Promote is a caller error.
func (s *Standby) Registry() *Registry { return s.r }

// Promote turns the standby into the primary: the store's epoch is fenced
// (deposing the old primary — its in-flight appends and gang commits now
// fail), a final catch-up applies everything the old primary managed to
// persist, reservations it left unresolved are presumed aborted, and the
// now-writing registry is returned.
func (s *Standby) Promote() (*Registry, error) {
	epoch, err := s.store.Fence()
	if err != nil {
		return nil, fmt.Errorf("registry: promote: fence: %w", err)
	}
	if _, err := s.Sync(); err != nil {
		return nil, fmt.Errorf("registry: promote: final sync: %w", err)
	}
	r := s.r
	r.mu.Lock()
	r.store = s.store
	r.storeEpoch = epoch
	var ev RestartEvent
	if len(r.gangs) > 0 {
		ids := make([]uint64, 0, len(r.gangs))
		for id := range r.gangs {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if err := r.appendLocked(recKindGangResolve, recGangResolve{ID: id}); err != nil {
				r.mu.Unlock()
				return nil, fmt.Errorf("registry: promote: presumed abort: %w", err)
			}
			delete(r.gangs, id)
		}
	}
	ev = RestartEvent{
		At:        r.clock.Now(),
		Recovered: true,
		Seq:       r.lastApplied,
		Hosts:     len(r.hosts),
		Procs:     len(r.procs),
		Domains:   len(r.domains),
	}
	hosts := ev.Hosts
	r.mu.Unlock()
	r.cfg.Counters.Inc(metrics.CtrStandbyPromotions)
	r.cfg.Metrics.Gauge(MetricHosts).Set(float64(hosts))
	r.traceWith(ev, EventPromoted, "", 0, "",
		fmt.Sprintf("standby promoted at epoch %d, seq %d: %d hosts, %d procs", epoch, ev.Seq, ev.Hosts, ev.Procs))
	return r, nil
}
