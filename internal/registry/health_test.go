package registry

import (
	"testing"
	"time"

	"autoresched/internal/proto"
	"autoresched/internal/vclock"
)

func TestHealthSummarisesDomain(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	r := newFromConfig(Config{Clock: clock, Lease: 35 * time.Second})

	for i, state := range []string{"free", "free", "busy", "overloaded"} {
		host := []string{"h1", "h2", "h3", "h4"}[i]
		if err := r.RegisterHost(host, staticFor(host)); err != nil {
			t.Fatal(err)
		}
		if err := r.ReportStatus(host, status(state, 0.5, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.RegisterHost("h5", staticFor("h5")); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterProcess("h3", proto.ProcessInfo{PID: 1, Start: clock.Now().UnixNano()}); err != nil {
		t.Fatal(err)
	}

	// Let h5's lease expire; the others stay fresh via the reports above.
	clock.Advance(20 * time.Second)
	for i, state := range []string{"free", "free", "busy", "overloaded"} {
		host := []string{"h1", "h2", "h3", "h4"}[i]
		if err := r.ReportStatus(host, status(state, 0.5, 10)); err != nil {
			t.Fatal(err)
		}
	}
	clock.Advance(20 * time.Second)

	h := r.Health()
	if h.Hosts != 5 || h.Free != 2 || h.Busy != 1 || h.Overloaded != 1 || h.Unavailable != 1 {
		t.Fatalf("health = %+v", h)
	}
	if h.Processes != 1 {
		t.Fatalf("processes = %d", h.Processes)
	}
	if h.FreeCPUSpeed != 2000 { // two free hosts at CPUSpeed 1000
		t.Fatalf("free cpu = %v", h.FreeCPUSpeed)
	}
	if !h.AcceptsMigrations() {
		t.Fatal("domain with free hosts rejects migrations")
	}
}

func TestHealthEmptyDomain(t *testing.T) {
	r := newFromConfig(Config{Clock: vclock.NewManual(vclock.Epoch)})
	h := r.Health()
	if h.Hosts != 0 || h.AcceptsMigrations() {
		t.Fatalf("health = %+v", h)
	}
}
