package registry

import (
	"testing"

	"autoresched/internal/vclock"
)

// TestZeroAllocHotPaths pins the batcher's //hot:path contract at
// runtime: refreshing an already-buffered host's status — the ingest
// steady state between flushes, which at fleet scale is nearly every
// report — must not allocate. The slot index and the pending slice are
// preallocated to MaxPending, so the replace branch only copies a struct.
func TestZeroAllocHotPaths(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	r := newFromConfig(Config{Clock: clock})
	b := NewBatcher(r, BatcherConfig{Clock: clock, MaxPending: 64})
	if err := b.RegisterHost("ws1", staticFor("ws1")); err != nil {
		t.Fatal(err)
	}
	st := status("busy", 1.0, 10)
	if err := b.ReportStatus("ws1", st); err != nil { // occupy the slot
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := b.ReportStatus("ws1", st); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("batched status ingest allocates %.1f objects per op, want 0", avg)
	}
}
