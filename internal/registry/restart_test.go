package registry

import (
	"strings"
	"testing"

	"autoresched/internal/metrics"
	"autoresched/internal/proto"
	"autoresched/internal/vclock"
)

func TestRestartDropsSoftState(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	ctr := metrics.NewCounters()
	r := newFromConfig(Config{Clock: clock, Counters: ctr})
	if err := r.RegisterHost("ws1", proto.StaticInfo{CPUSpeed: 1e6}); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterProcess("ws1", proto.ProcessInfo{PID: 42, Name: "app"}); err != nil {
		t.Fatal(err)
	}
	if err := r.ReportStatus("ws1", proto.Status{State: "free"}); err != nil {
		t.Fatal(err)
	}

	r.Restart()

	if got := r.Hosts(); len(got) != 0 {
		t.Fatalf("hosts after restart = %+v", got)
	}
	if got := r.Processes("ws1"); len(got) != 0 {
		t.Fatalf("procs after restart = %+v", got)
	}
	// The next refresh is rejected — the signal monitors key their
	// re-registration on.
	err := r.ReportStatus("ws1", proto.Status{State: "free"})
	if err == nil || !strings.Contains(err.Error(), "unregistered host") {
		t.Fatalf("status after restart: %v", err)
	}
	if ctr.Get(metrics.CtrRegistryRestarts) != 1 {
		t.Fatalf("restart counter = %d", ctr.Get(metrics.CtrRegistryRestarts))
	}
	// The diagnostic trace survives and records the restart.
	var found bool
	for _, e := range r.Trace() {
		if e.Kind == EventRestart {
			found = true
		}
	}
	if !found {
		t.Fatalf("no restart event in trace: %+v", r.Trace())
	}
	// Re-registration resumes normal service.
	if err := r.RegisterHost("ws1", proto.StaticInfo{CPUSpeed: 1e6}); err != nil {
		t.Fatal(err)
	}
	if err := r.ReportStatus("ws1", proto.Status{State: "free"}); err != nil {
		t.Fatal(err)
	}
}
