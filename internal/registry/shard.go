package registry

import (
	"time"

	"autoresched/internal/metrics"
	"autoresched/internal/proto"
)

// Domain sharding (Section 3.2's hierarchical arrangement, promoted from
// examples/hierarchy into the registry itself). A child registry configured
// with Parent+Domain pushes its Health summary upward — piggybacked on
// status refreshes, at most once per HealthReportEvery — and the parent
// keeps one soft-state domainEntry per child. The lease mirrors the
// host-level push model: a domain whose child stops heartbeating expires
// and is skipped by delegation, with no teardown protocol.

type domainEntry struct {
	name     string
	child    *Registry
	health   Health
	lastSeen time.Time
	regOrder int
}

// DomainInfo is the parent's view of one child domain.
type DomainInfo struct {
	Name     string
	Health   Health
	LastSeen time.Time
	// Live reports whether the domain's lease was fresh at snapshot time.
	Live bool
}

// ReportDomainHealth records (or refreshes) a child domain's health summary
// and renews its lease. It is the domain-level analogue of ReportStatus and
// doubles as registration: an unknown domain is attached in arrival order,
// which is how children re-announce themselves after a parent Restart.
func (r *Registry) ReportDomainHealth(name string, child *Registry, h Health) {
	if name == "" || child == nil {
		return
	}
	r.mu.Lock()
	now := r.clock.Now()
	if err := r.appendLocked(recKindDomainHealth, recDomainHealth{Name: name, Health: h, At: now}); err != nil {
		// A fenced parent is logically dead; dropping the attach is the
		// correct refusal (the child will report to the promoted parent).
		r.mu.Unlock()
		return
	}
	d, ok := r.domains[name]
	if !ok {
		r.domSeq++
		d = &domainEntry{name: name, regOrder: r.domSeq}
		r.domains[name] = d
		r.domainOrder = append(r.domainOrder, d)
	}
	d.child = child
	d.health = h
	d.lastSeen = now
	r.mu.Unlock()
	r.cfg.Counters.Inc(metrics.CtrHealthReports)
}

// Domains returns the parent's view of its child domains, in attach order.
func (r *Registry) Domains() []DomainInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock.Now()
	out := make([]DomainInfo, 0, len(r.domainOrder))
	for _, d := range r.domainOrder {
		out = append(out, DomainInfo{
			Name:     d.name,
			Health:   d.health,
			LastSeen: d.lastSeen,
			Live:     r.domainAliveLocked(d, now),
		})
	}
	return out
}

func (r *Registry) domainAliveLocked(d *domainEntry, now time.Time) bool {
	return now.Sub(d.lastSeen) <= r.cfg.DomainLease
}

// placeDomains delegates a placement across this registry's live child
// domains, in attach order, skipping the domain the request escalated from
// (its hosts were already searched) and domains whose last-reported Health
// offers no capacity. Each child is consulted for its own hosts only; the
// parent, not the child, owns the cross-domain walk. Children are called
// with no lock held, so sibling registries never nest locks.
func (r *Registry) placeDomains(skip, exclude string, proc ProcInfo) (proto.Candidate, bool) {
	r.mu.Lock()
	now := r.clock.Now()
	children := make([]*Registry, 0, len(r.domainOrder))
	for _, d := range r.domainOrder {
		if d.name == skip || !r.domainAliveLocked(d, now) || !d.health.AcceptsMigrations() {
			continue
		}
		// A domain restored from the change log has no live child pointer
		// until its next health report rebinds it; skip it meanwhile.
		if d.child == nil {
			continue
		}
		children = append(children, d.child)
	}
	r.mu.Unlock()

	for _, child := range children {
		if cand, ok := child.placeLocal(exclude, proc); ok {
			return cand, true
		}
	}
	return proto.Candidate{}, false
}

// healthDueLocked decides whether this child registry owes its parent a
// health push, and computes the summary if so. The push itself happens
// outside the lock (ReportStatus/ReportStatusBatch), so the child's lock is
// released before the parent's is taken.
func (r *Registry) healthDueLocked() (bool, Health) {
	if r.cfg.Parent == nil || r.cfg.Domain == "" {
		return false, Health{}
	}
	now := r.clock.Now()
	if r.healthPushed && now.Sub(r.lastHealthPush) < r.cfg.HealthReportEvery {
		return false, Health{}
	}
	r.healthPushed = true
	r.lastHealthPush = now
	return true, r.healthLocked()
}
