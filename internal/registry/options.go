package registry

import (
	"time"

	"autoresched/internal/events"
	"autoresched/internal/metrics"
	"autoresched/internal/persist"
	"autoresched/internal/rules"
	"autoresched/internal/sysinfo"
	"autoresched/internal/vclock"
)

// Option configures a registry built with NewRegistry, the functional-
// options construction style shared with internal/proto. Each option maps
// onto one Config field; see Config for semantics and defaults.
type Option func(*Config)

// NewRegistry creates a registry/scheduler from functional options. It is
// the only constructor.
func NewRegistry(opts ...Option) *Registry {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	return newFromConfig(cfg)
}

// WithName sets the registry's protocol name.
func WithName(name string) Option { return func(c *Config) { c.Name = name } }

// WithClock sets the clock driving lease expiry.
func WithClock(clock vclock.Clock) Option { return func(c *Config) { c.Clock = clock } }

// WithLease sets the host lease duration.
func WithLease(d time.Duration) Option { return func(c *Config) { c.Lease = d } }

// WithPolicy sets the migration policy.
func WithPolicy(p *rules.MigrationPolicy) Option { return func(c *Config) { c.Policy = p } }

// WithProbes sets the probe set policies evaluate against.
func WithProbes(p *sysinfo.Probes) Option { return func(c *Config) { c.Probes = p } }

// WithCommands sets the migrate-order sink, making the registry active.
func WithCommands(s CommandSink) Option { return func(c *Config) { c.Commands = s } }

// WithScheduler sets the placement scheduler.
func WithScheduler(s Scheduler) Option { return func(c *Config) { c.Scheduler = s } }

// WithParent sets the upper-level registry for hierarchical delegation.
func WithParent(p *Registry) Option { return func(c *Config) { c.Parent = p } }

// WithDomain names this registry's control domain under its parent and
// enables the upward health reports.
func WithDomain(name string) Option { return func(c *Config) { c.Domain = name } }

// WithDomainLease sets how long child domains stay live without a health
// report.
func WithDomainLease(d time.Duration) Option { return func(c *Config) { c.DomainLease = d } }

// WithHealthReportEvery caps how often health is pushed to the parent.
func WithHealthReportEvery(d time.Duration) Option {
	return func(c *Config) { c.HealthReportEvery = d }
}

// WithWarmup sets the warm-up damping window.
func WithWarmup(n int) Option { return func(c *Config) { c.Warmup = n } }

// WithCooldown sets the per-host cooldown between migrate orders.
func WithCooldown(d time.Duration) Option { return func(c *Config) { c.Cooldown = d } }

// WithOnEvent sets the per-event trace observer.
func WithOnEvent(fn func(Event)) Option { return func(c *Config) { c.OnEvent = fn } }

// WithEvents sets the unified runtime event sink.
func WithEvents(s events.Sink) Option { return func(c *Config) { c.Events = s } }

// WithCounters sets the control-plane counter set.
func WithCounters(m *metrics.Counters) Option { return func(c *Config) { c.Counters = m } }

// WithMetrics sets the metrics registry receiving the registry's gauges
// and latency histograms.
func WithMetrics(m *metrics.Registry) Option { return func(c *Config) { c.Metrics = m } }

// WithStore makes the protocol state durable through a write-ahead store:
// mutations append typed change records, and Restart becomes
// crash-consistent bootstrap instead of a soft-state drop.
func WithStore(s persist.Store) Option { return func(c *Config) { c.Store = s } }

// WithSnapshotEvery folds the state into a compacting store snapshot every
// n appended records (requires WithStore).
func WithSnapshotEvery(n int) Option { return func(c *Config) { c.SnapshotEvery = n } }
