package registry

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"autoresched/internal/proto"
	"autoresched/internal/vclock"
)

func TestDecisionTraceRecordsLifecycle(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	sink := &fakeSink{}
	var observed []EventKind
	var mu sync.Mutex
	r := newFromConfig(Config{
		Clock: clock, Commands: sink, Warmup: 2, Cooldown: time.Minute,
		OnEvent: func(e Event) {
			mu.Lock()
			observed = append(observed, e.Kind)
			mu.Unlock()
		},
	})
	for _, h := range []string{"ws1", "ws4"} {
		if err := r.RegisterHost(h, staticFor(h)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.ReportStatus("ws4", status("free", 0.1, 5)); err != nil {
		t.Fatal(err)
	}

	// 1st overloaded report: warmup event, no process registered yet.
	if err := r.ReportStatus("ws1", status("overloaded", 3, 200)); err != nil {
		t.Fatal(err)
	}
	// 2nd: warmup complete but no process.
	if err := r.ReportStatus("ws1", status("overloaded", 3, 200)); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterProcess("ws1", proto.ProcessInfo{PID: 9, Start: clock.Now().UnixNano()}); err != nil {
		t.Fatal(err)
	}
	// 3rd: ordered.
	if err := r.ReportStatus("ws1", status("overloaded", 3, 200)); err != nil {
		t.Fatal(err)
	}
	// Post-order: warm-up restarts (4th report), then the cooldown gates
	// the re-qualified host (5th report).
	for i := 0; i < 2; i++ {
		if err := r.ReportStatus("ws1", status("overloaded", 3, 200)); err != nil {
			t.Fatal(err)
		}
	}

	events := r.Trace()
	kinds := make([]EventKind, len(events))
	for i, e := range events {
		kinds[i] = e.Kind
	}
	want := []EventKind{EventWarmup, EventNoProcess, EventOrdered, EventWarmup, EventCooldown}
	if len(kinds) != len(want) {
		t.Fatalf("trace = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("trace = %v, want %v", kinds, want)
		}
	}
	ordered := events[2]
	if ordered.Host != "ws1" || ordered.PID != 9 || ordered.Dest != "ws4" {
		t.Fatalf("ordered event = %+v", ordered)
	}
	if s := ordered.String(); !strings.Contains(s, "ordered") || !strings.Contains(s, "dest=ws4") {
		t.Fatalf("String() = %q", s)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(observed) != len(want) {
		t.Fatalf("OnEvent saw %v", observed)
	}
}

func TestDecisionTraceOrderFailed(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	sink := &fakeSink{err: errors.New("commander unreachable")}
	r := newFromConfig(Config{Clock: clock, Commands: sink, Warmup: 1, Cooldown: time.Minute})
	for _, h := range []string{"ws1", "ws4"} {
		if err := r.RegisterHost(h, staticFor(h)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.ReportStatus("ws4", status("free", 0.1, 5)); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterProcess("ws1", proto.ProcessInfo{PID: 9, Start: clock.Now().UnixNano()}); err != nil {
		t.Fatal(err)
	}
	if err := r.ReportStatus("ws1", status("overloaded", 3, 200)); err != nil {
		t.Fatal(err)
	}
	events := r.Trace()
	if len(events) != 1 || events[0].Kind != EventOrderFailed {
		t.Fatalf("trace = %+v", events)
	}
	if !strings.Contains(events[0].Note, "unreachable") {
		t.Fatalf("note = %q", events[0].Note)
	}
}

func TestDecisionTraceBounded(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	r := newFromConfig(Config{Clock: clock})
	for i := 0; i < traceCap+100; i++ {
		r.trace(EventWarmup, "ws1", 0, "", "")
	}
	if got := len(r.Trace()); got != traceCap {
		t.Fatalf("trace len = %d, want %d", got, traceCap)
	}
}
