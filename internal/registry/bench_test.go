package registry

import (
	"fmt"
	"testing"

	"autoresched/internal/proto"
	"autoresched/internal/rules"
	"autoresched/internal/vclock"
)

// benchReg builds a registry holding n hosts: every eighth host free, the
// rest busy — the shape a loaded cluster presents to first fit.
func benchReg(b *testing.B, n int) *Registry {
	b.Helper()
	r := newFromConfig(Config{Clock: vclock.NewManual(vclock.Epoch)})
	for i := 0; i < n; i++ {
		host := fmt.Sprintf("ws%d", i+1)
		if err := r.RegisterHost(host, staticFor(host)); err != nil {
			b.Fatal(err)
		}
		st := status("busy", 1.5, 40)
		if i%8 == 0 {
			st = status("free", 0.2, 20)
		}
		if err := r.ReportStatus(host, st); err != nil {
			b.Fatal(err)
		}
	}
	return r
}

// BenchmarkRegistryReportStatus measures the status-ingest hot path at 512
// hosts: "direct" is one report per call, "batch64" delivers 64 reports
// under a single lock acquisition the way the status batcher does.
func BenchmarkRegistryReportStatus(b *testing.B) {
	b.Run("direct", func(b *testing.B) {
		r := benchReg(b, 512)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			host := fmt.Sprintf("ws%d", i%512+1)
			st := status("busy", 1.5, 40)
			if i%2 == 0 {
				st = status("free", 0.2, 20) // force a state-set move
			}
			if err := r.ReportStatus(host, st); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch64", func(b *testing.B) {
		r := benchReg(b, 512)
		batch := make([]proto.HostStatus, 64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range batch {
				st := status("busy", 1.5, 40)
				if (i+j)%2 == 0 {
					st = status("free", 0.2, 20)
				}
				batch[j] = proto.HostStatus{Host: fmt.Sprintf("ws%d", (i*64+j)%512+1), Status: st}
			}
			if err := r.ReportStatusBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// resortReg replicates the seed registry's candidate path: hosts live in a
// map, and every placement rebuilds the registration order with an
// insertion sort before scanning for the first free host. It is the
// baseline the state-indexed sets replaced.
type resortReg struct {
	hosts map[string]*resortHost
}

type resortHost struct {
	name     string
	state    rules.State
	regOrder int
}

func newResortReg(n int) *resortReg {
	r := &resortReg{hosts: make(map[string]*resortHost)}
	for i := 0; i < n; i++ {
		state := rules.Busy
		if i%8 == 0 {
			state = rules.Free
		}
		name := fmt.Sprintf("ws%d", i+1)
		r.hosts[name] = &resortHost{name: name, state: state, regOrder: i}
	}
	return r
}

func (r *resortReg) firstFit(exclude string) (string, bool) {
	out := make([]*resortHost, 0, len(r.hosts))
	for _, e := range r.hosts {
		out = append(out, e)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].regOrder > out[j].regOrder; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	for _, e := range out {
		if e.name != exclude && e.state.AcceptsMigration() {
			return e.name, true
		}
	}
	return "", false
}

// BenchmarkCandidate512 compares candidate selection over 512 hosts:
// "indexed" is the registry's state-indexed first fit, "resort" is the
// seed's rebuild-sort-scan replica on identical host data.
func BenchmarkCandidate512(b *testing.B) {
	proc := ProcInfo{Host: "ws2", PID: 7}
	b.Run("indexed", func(b *testing.B) {
		r := benchReg(b, 512)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := r.FirstFit("ws2", proc); !ok {
				b.Fatal("no candidate")
			}
		}
	})
	b.Run("resort", func(b *testing.B) {
		r := newResortReg(512)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := r.firstFit("ws2"); !ok {
				b.Fatal("no candidate")
			}
		}
	})
}

// BenchmarkCandidate sweeps first fit across cluster sizes; near-flat
// ns/op growth shows selection cost no longer tracks host count.
func BenchmarkCandidate(b *testing.B) {
	proc := ProcInfo{Host: "ws2", PID: 7}
	for _, n := range []int{64, 128, 256, 512} {
		b.Run(fmt.Sprintf("hosts%d", n), func(b *testing.B) {
			r := benchReg(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := r.FirstFit("ws2", proc); !ok {
					b.Fatal("no candidate")
				}
			}
		})
	}
}
