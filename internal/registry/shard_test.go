package registry

import (
	"testing"
	"time"

	"autoresched/internal/vclock"
)

// twoDomains builds a parent with child domains A (hosts aHosts in aState)
// and B (one free host b1), each child having pushed a fresh health summary.
func twoDomains(t *testing.T, clock vclock.Clock, aState string, aHosts ...string) (parent, childA, childB *Registry) {
	t.Helper()
	parent = newFromConfig(Config{Clock: clock})
	childA = newFromConfig(Config{Clock: clock, Parent: parent, Domain: "A"})
	childB = newFromConfig(Config{Clock: clock, Parent: parent, Domain: "B"})
	for _, h := range aHosts {
		if err := childA.RegisterHost(h, staticFor(h)); err != nil {
			t.Fatal(err)
		}
		if err := childA.ReportStatus(h, status(aState, 3, 200)); err != nil {
			t.Fatal(err)
		}
	}
	if err := childB.RegisterHost("b1", staticFor("b1")); err != nil {
		t.Fatal(err)
	}
	if err := childB.ReportStatus("b1", status("free", 0.1, 3)); err != nil {
		t.Fatal(err)
	}
	return parent, childA, childB
}

func TestCrossDomainFirstFit(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	parent, childA, _ := twoDomains(t, clock, "busy", "a1", "a2")

	// No destination in A (both hosts busy): the parent walks the sibling
	// domains and B's free host wins.
	cand, ok := childA.FirstFit("a1", ProcInfo{})
	if !ok || cand.Host != "b1" {
		t.Fatalf("candidate = %+v ok=%v, want b1 via domain B", cand, ok)
	}

	// The parent's view lists both domains in attach order, with B
	// advertising capacity.
	doms := parent.Domains()
	if len(doms) != 2 || doms[0].Name != "A" || doms[1].Name != "B" {
		t.Fatalf("Domains() = %+v", doms)
	}
	if doms[0].Health.AcceptsMigrations() {
		t.Fatalf("domain A health = %+v, want no capacity", doms[0].Health)
	}
	if !doms[1].Live || doms[1].Health.Free != 1 {
		t.Fatalf("domain B = %+v, want live with one free host", doms[1])
	}
}

func TestDelegationWhenAllLocalHostsOverloaded(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	_, childA, _ := twoDomains(t, clock, "overloaded", "a1", "a2", "a3")

	// Every host in A is overloaded — none may receive a migration — so the
	// placement must leave the domain entirely.
	cand, ok := childA.FirstFit("a1", ProcInfo{})
	if !ok || cand.Host != "b1" {
		t.Fatalf("candidate = %+v ok=%v, want b1 outside the domain", cand, ok)
	}
}

func TestParentDomainLeaseExpiry(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	parent, childA, childB := twoDomains(t, clock, "busy", "a1")

	// Past the domain lease with no health push from B: the parent skips
	// the expired domain, and with no hosts of its own the walk fails.
	clock.Advance(40 * time.Second)
	if cand, ok := childA.FirstFit("a1", ProcInfo{}); ok {
		t.Fatalf("candidate = %+v, want none after B's lease expired", cand)
	}
	doms := parent.Domains()
	if doms[1].Name != "B" || doms[1].Live {
		t.Fatalf("domain B = %+v, want lease expired", doms[1])
	}

	// B's next status refresh piggybacks a health push (the report interval
	// has long passed), renewing the lease; delegation resumes.
	if err := childB.ReportStatus("b1", status("free", 0.1, 3)); err != nil {
		t.Fatal(err)
	}
	if !parent.Domains()[1].Live {
		t.Fatal("domain B still expired after re-report")
	}
	cand, ok := childA.FirstFit("a1", ProcInfo{})
	if !ok || cand.Host != "b1" {
		t.Fatalf("candidate = %+v ok=%v, want b1 after lease renewal", cand, ok)
	}
}

func TestChildReannouncesAfterParentRestart(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	parent, childA, _ := twoDomains(t, clock, "busy", "a1")

	parent.Restart()
	if len(parent.Domains()) != 0 {
		t.Fatal("restart kept domain state")
	}

	// The child's next health push re-attaches it: ReportDomainHealth is an
	// upsert, so no separate re-registration protocol exists or is needed.
	clock.Advance(11 * time.Second) // past HealthReportEvery
	if err := childA.ReportStatus("a1", status("busy", 1.2, 50)); err != nil {
		t.Fatal(err)
	}
	doms := parent.Domains()
	if len(doms) != 1 || doms[0].Name != "A" || !doms[0].Live {
		t.Fatalf("Domains() after re-announce = %+v", doms)
	}
}

func TestHealthPushThrottled(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	parent := newFromConfig(Config{Clock: clock})
	child := newFromConfig(Config{Clock: clock, Parent: parent, Domain: "A"})
	if err := child.RegisterHost("a1", staticFor("a1")); err != nil {
		t.Fatal(err)
	}

	// First report pushes; reports inside HealthReportEvery do not.
	if err := child.ReportStatus("a1", status("free", 0.1, 3)); err != nil {
		t.Fatal(err)
	}
	seen := parent.Domains()[0].LastSeen
	if err := child.ReportStatus("a1", status("free", 0.2, 4)); err != nil {
		t.Fatal(err)
	}
	if got := parent.Domains()[0].LastSeen; !got.Equal(seen) {
		t.Fatalf("health pushed inside the report interval: %v -> %v", seen, got)
	}
	clock.Advance(11 * time.Second)
	if err := child.ReportStatus("a1", status("free", 0.2, 4)); err != nil {
		t.Fatal(err)
	}
	if got := parent.Domains()[0].LastSeen; got.Equal(seen) {
		t.Fatal("health not pushed after the report interval elapsed")
	}
}
