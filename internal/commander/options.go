package commander

import (
	"time"

	"autoresched/internal/events"
	"autoresched/internal/metrics"
	"autoresched/internal/vclock"
)

// Option configures a commander built with NewCommander, the functional-
// options construction style shared with internal/proto and
// internal/registry.
type Option func(*options)

type options struct {
	dir string
	cfg Config
}

// NewCommander creates a commander for host from functional options. It is
// the only constructor.
func NewCommander(host string, opts ...Option) *Commander {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return newFromConfig(host, o.dir, o.cfg)
}

// WithDir sets the directory receiving the temporary address files the
// paper's migration mechanism writes; it must exist.
func WithDir(dir string) Option { return func(o *options) { o.dir = dir } }

// WithClock sets the clock driving the dedup window.
func WithClock(clock vclock.Clock) Option { return func(o *options) { o.cfg.Clock = clock } }

// WithDedupWindow suppresses redelivered identical orders inside the window.
func WithDedupWindow(d time.Duration) Option {
	return func(o *options) { o.cfg.DedupWindow = d }
}

// WithCounters sets the control-plane counter set.
func WithCounters(m *metrics.Counters) Option {
	return func(o *options) { o.cfg.Counters = m }
}

// WithEvents sets the sink receiving the commander's "order" events.
func WithEvents(s events.Sink) Option {
	return func(o *options) { o.cfg.Events = s }
}
