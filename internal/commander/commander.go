// Package commander implements the per-host commander entity (Section 3):
// it receives migrate orders from the registry/scheduler and starts the
// migration by signalling the local migrating process. Following the
// paper's mechanism, the destination address and port are written to a
// temporary file and the process is poked with the user-defined signal; the
// signal payload carries the same information for the in-process path.
package commander

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"autoresched/internal/events"
	"autoresched/internal/hpcm"
	"autoresched/internal/metrics"
	"autoresched/internal/proto"
	"autoresched/internal/vclock"
)

// Target is a managed migration-enabled process; *hpcm.Process satisfies
// it.
type Target interface {
	PID() int
	Signal(cmd hpcm.Command)
}

// Config tunes a commander beyond the basic host/dir pair.
type Config struct {
	// Clock drives the dedup window; nil selects the real clock.
	Clock vclock.Clock
	// DedupWindow suppresses a migrate order identical to one executed
	// within the window — the guard against an at-least-once control plane
	// redelivering the same order. Zero disables. Keep it below the
	// registry's cooldown so legitimate repeat orders still pass.
	DedupWindow time.Duration
	// Counters, when set, receives the commander/* control-plane counters.
	Counters *metrics.Counters
	// Events, when set, receives one SourceCommander/"order" event per
	// executed (non-deduped) migrate order, stamped with the clock's time.
	// The span builder anchors migration latency on this event.
	Events events.Sink
}

// Commander is one host's commander entity.
type Commander struct {
	host string
	dir  string // where migrate-address temp files are written; "" disables
	cfg  Config

	mu      sync.Mutex
	procs   map[int]Target
	orders  int
	deduped int
	lastCmd map[int]lastOrder // pid -> most recently executed order
}

// lastOrder remembers one executed order for dedup matching.
type lastOrder struct {
	order proto.MigrateOrder
	at    time.Time
}

// newFromConfig creates a commander from an assembled Config, applying
// defaults. NewCommander is the public constructor; the former exported
// Config-style New/NewConfigured are gone. dir, when non-empty, receives
// the temporary address files the paper's mechanism uses; it must exist.
func newFromConfig(host, dir string, cfg Config) *Commander {
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real()
	}
	return &Commander{
		host:    host,
		dir:     dir,
		cfg:     cfg,
		procs:   make(map[int]Target),
		lastCmd: make(map[int]lastOrder),
	}
}

// Host returns the host this commander serves.
func (c *Commander) Host() string { return c.host }

// Manage starts tracking a process under its current pid.
func (c *Commander) Manage(p Target) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.procs[p.PID()] = p
}

// ManageAs tracks a process under an explicit pid (used when re-homing a
// migrated process whose pid changed with its incarnation).
func (c *Commander) ManageAs(pid int, p Target) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.procs[pid] = p
}

// Forget stops tracking a pid.
func (c *Commander) Forget(pid int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.procs, pid)
}

// Managed reports how many processes are tracked.
func (c *Commander) Managed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.procs)
}

// Orders reports how many migrate orders were executed.
func (c *Commander) Orders() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.orders
}

// Migrate executes a migrate order: write the address file, then deliver
// the user-defined signal to the migrating process. An order identical to
// one executed within the dedup window is acknowledged without being
// re-executed (a redelivered duplicate, not a new decision).
func (c *Commander) Migrate(order proto.MigrateOrder) error {
	if order.DestHost == "" {
		return errors.New("commander: order without destination")
	}
	c.mu.Lock()
	p, ok := c.procs[order.PID]
	if ok && c.cfg.DedupWindow > 0 {
		if last, seen := c.lastCmd[order.PID]; seen &&
			last.order.DestHost == order.DestHost &&
			last.order.DestAddr == order.DestAddr &&
			c.cfg.Clock.Now().Sub(last.at) <= c.cfg.DedupWindow {
			c.deduped++
			c.mu.Unlock()
			c.cfg.Counters.Inc(metrics.CtrOrdersDeduped)
			return nil
		}
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("commander: no managed process with pid %d on %s", order.PID, c.host)
	}
	if c.dir != "" {
		// The paper: "the address and the port of the destination machine
		// are written to a temporary file and are read by the migrating
		// process".
		path := filepath.Join(c.dir, fmt.Sprintf("hpcm-migrate-%d", order.PID))
		content := fmt.Sprintf("%s %s\n", order.DestHost, order.DestAddr)
		if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
			return fmt.Errorf("commander: address file: %w", err)
		}
	}
	if c.cfg.Events != nil {
		c.cfg.Events.Publish(events.Event{
			Time:   c.cfg.Clock.Now(),
			Source: events.SourceCommander,
			Kind:   "order",
			Host:   c.host,
			Dest:   order.DestHost,
			PID:    order.PID,
		})
	}
	p.Signal(hpcm.Command{DestHost: order.DestHost, DestAddr: order.DestAddr, Policy: order.Policy})
	c.mu.Lock()
	c.orders++
	c.lastCmd[order.PID] = lastOrder{order: order, at: c.cfg.Clock.Now()}
	c.mu.Unlock()
	return nil
}

// Deduped reports how many redelivered orders were suppressed.
func (c *Commander) Deduped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deduped
}

// Handler serves migrate orders arriving over the XML protocol.
func (c *Commander) Handler() proto.Handler {
	return func(m *proto.Message) (*proto.Message, error) {
		switch m.Type {
		case proto.TypeMigrate:
			return nil, c.Migrate(*m.Migrate)
		default:
			return nil, fmt.Errorf("commander: unexpected message type %q", m.Type)
		}
	}
}

// AddressFile returns the path of the temp file a migrate order for pid
// writes (for tests and for migrating processes reading it back).
func (c *Commander) AddressFile(pid int) string {
	if c.dir == "" {
		return ""
	}
	return filepath.Join(c.dir, fmt.Sprintf("hpcm-migrate-%d", pid))
}
