package commander

import (
	"testing"
	"time"

	"autoresched/internal/metrics"
	"autoresched/internal/proto"
	"autoresched/internal/vclock"
)

func TestMigrateDedupsRedeliveredOrders(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	ctr := metrics.NewCounters()
	c := newFromConfig("ws1", "", Config{
		Clock:       clock,
		DedupWindow: 30 * time.Second,
		Counters:    ctr,
	})
	p := &fakeProc{pid: 42}
	c.Manage(p)
	order := proto.MigrateOrder{PID: 42, DestHost: "ws4", DestAddr: "cmd://ws4"}
	if err := c.Migrate(order); err != nil {
		t.Fatal(err)
	}
	// The same order redelivered inside the window: acknowledged, not
	// re-executed.
	if err := c.Migrate(order); err != nil {
		t.Fatal(err)
	}
	if got := p.signals(); len(got) != 1 {
		t.Fatalf("signals = %+v, want 1", got)
	}
	if c.Orders() != 1 || c.Deduped() != 1 {
		t.Fatalf("orders=%d deduped=%d", c.Orders(), c.Deduped())
	}
	if ctr.Get(metrics.CtrOrdersDeduped) != 1 {
		t.Fatalf("counter = %d", ctr.Get(metrics.CtrOrdersDeduped))
	}
	// A different destination is a new decision, not a duplicate.
	if err := c.Migrate(proto.MigrateOrder{PID: 42, DestHost: "ws5", DestAddr: "cmd://ws5"}); err != nil {
		t.Fatal(err)
	}
	// Past the window the same order executes again (a legitimate repeat
	// after the registry's cooldown).
	clock.Advance(time.Minute)
	if err := c.Migrate(order); err != nil {
		t.Fatal(err)
	}
	if got := p.signals(); len(got) != 3 {
		t.Fatalf("signals = %+v, want 3", got)
	}
	if c.Orders() != 3 || c.Deduped() != 1 {
		t.Fatalf("orders=%d deduped=%d", c.Orders(), c.Deduped())
	}
}

func TestMigrateDedupDisabledByDefault(t *testing.T) {
	c := newFromConfig("ws1", "", Config{})
	p := &fakeProc{pid: 7}
	c.Manage(p)
	order := proto.MigrateOrder{PID: 7, DestHost: "ws2", DestAddr: "cmd://ws2"}
	for i := 0; i < 2; i++ {
		if err := c.Migrate(order); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.signals(); len(got) != 2 {
		t.Fatalf("signals = %+v, want 2", got)
	}
}
