package commander

import (
	"os"
	"strings"
	"sync"
	"testing"

	"autoresched/internal/hpcm"
	"autoresched/internal/proto"
)

type fakeProc struct {
	pid  int
	mu   sync.Mutex
	cmds []hpcm.Command
}

func (f *fakeProc) PID() int { return f.pid }
func (f *fakeProc) Signal(cmd hpcm.Command) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cmds = append(f.cmds, cmd)
}
func (f *fakeProc) signals() []hpcm.Command {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]hpcm.Command(nil), f.cmds...)
}

func TestMigrateSignalsManagedProcess(t *testing.T) {
	dir := t.TempDir()
	c := newFromConfig("ws1", dir, Config{})
	if c.Host() != "ws1" {
		t.Fatalf("host = %q", c.Host())
	}
	p := &fakeProc{pid: 42}
	c.Manage(p)
	if c.Managed() != 1 {
		t.Fatalf("managed = %d", c.Managed())
	}
	order := proto.MigrateOrder{PID: 42, DestHost: "ws4", DestAddr: "cmd://ws4", Policy: "policy3"}
	if err := c.Migrate(order); err != nil {
		t.Fatal(err)
	}
	sigs := p.signals()
	if len(sigs) != 1 || sigs[0].DestHost != "ws4" || sigs[0].Policy != "policy3" {
		t.Fatalf("signals = %+v", sigs)
	}
	if c.Orders() != 1 {
		t.Fatalf("orders = %d", c.Orders())
	}
	// The paper's temp file carries "host addr".
	data, err := os.ReadFile(c.AddressFile(42))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(data)); got != "ws4 cmd://ws4" {
		t.Fatalf("address file = %q", got)
	}
}

func TestMigrateUnknownPID(t *testing.T) {
	c := newFromConfig("ws1", "", Config{})
	err := c.Migrate(proto.MigrateOrder{PID: 99, DestHost: "ws4"})
	if err == nil || !strings.Contains(err.Error(), "no managed process") {
		t.Fatalf("err = %v", err)
	}
	if err := c.Migrate(proto.MigrateOrder{PID: 99}); err == nil {
		t.Fatal("order without destination accepted")
	}
}

func TestManageAsAndForget(t *testing.T) {
	c := newFromConfig("ws1", "", Config{})
	p := &fakeProc{pid: 1}
	c.ManageAs(77, p) // the post-migration pid differs from p.PID()
	if err := c.Migrate(proto.MigrateOrder{PID: 77, DestHost: "ws2"}); err != nil {
		t.Fatal(err)
	}
	c.Forget(77)
	if err := c.Migrate(proto.MigrateOrder{PID: 77, DestHost: "ws2"}); err == nil {
		t.Fatal("forgotten pid still managed")
	}
	if c.Managed() != 0 {
		t.Fatalf("managed = %d", c.Managed())
	}
}

func TestNoDirSkipsAddressFile(t *testing.T) {
	c := newFromConfig("ws1", "", Config{})
	p := &fakeProc{pid: 5}
	c.Manage(p)
	if err := c.Migrate(proto.MigrateOrder{PID: 5, DestHost: "ws2", DestAddr: "a"}); err != nil {
		t.Fatal(err)
	}
	if c.AddressFile(5) != "" {
		t.Fatal("address file path without dir")
	}
}

func TestHandler(t *testing.T) {
	c := newFromConfig("ws1", "", Config{})
	p := &fakeProc{pid: 3}
	c.Manage(p)
	h := c.Handler()
	order := proto.MigrateOrder{PID: 3, DestHost: "ws2", DestAddr: "x"}
	if _, err := h(&proto.Message{Type: proto.TypeMigrate, From: "registry", Migrate: &order}); err != nil {
		t.Fatal(err)
	}
	if len(p.signals()) != 1 {
		t.Fatal("signal not delivered via handler")
	}
	if _, err := h(&proto.Message{Type: proto.TypeStatus, From: "x"}); err == nil {
		t.Fatal("unexpected type accepted")
	}
}

func TestBadDirSurfacesError(t *testing.T) {
	c := newFromConfig("ws1", "/nonexistent/dir/for/sure", Config{})
	p := &fakeProc{pid: 8}
	c.Manage(p)
	err := c.Migrate(proto.MigrateOrder{PID: 8, DestHost: "ws2"})
	if err == nil {
		t.Fatal("write to bad dir succeeded")
	}
	if len(p.signals()) != 0 {
		t.Fatal("signalled despite address-file failure")
	}
}
