// The resize protocol. One resize attempt runs entirely between two
// computation steps:
//
//	propose   scheduler hands the job a target placement (async, any time)
//	quiesce   every rank reaches the poll-point; rank 0 announces the plan
//	drain     all shards gathered to rank 0 — state is now crash-safe
//	reshape   victims become expendable; expansions spawn + merge new ranks
//	spawn     new ranks are up, hold no state yet (loss here aborts)
//	commit    root redistributes shards over the new world; members form
//	          the new world communicator (communication-free CreateGroup);
//	          victims retire, survivors and children resume
//
// A spawn failure (typed mpi.HostFailedError) or the loss of a fresh rank
// before its state lands aborts the resize: every old rank resumes on the
// old world and the job keeps computing as if nothing happened. A victim
// lost after the drain does not matter — its shard is already at the root.
// Only losing a rank before its drain completes (or the root itself) fails
// the job.
package malleable

import (
	"errors"
	"fmt"

	"autoresched/internal/metrics"
	"autoresched/internal/mpi"
)

// Protocol tags, in the reserved band above any tag the App may use for
// neighbour exchange (user steps stay below 1<<20).
const (
	// tagDrain carries a rank's shard to the root (quiesce drain and
	// final-result drain).
	tagDrain = 1<<20 + iota
	// tagState carries a member's new shard plus the resumed step from the
	// root over the merged communicator.
	tagState
	// tagVerdict carries the commit/abort decision from the root over the
	// merged communicator.
	tagVerdict
)

// announce is broadcast from rank 0 at every poll-point: either "no resize,
// keep stepping" or the full plan for this epoch.
type announce struct {
	Resize bool
	Epoch  int
	Target []string
}

// state is the root's per-member resize payload: the shard the member
// resumes with and the step to resume at.
type state struct {
	Step  int
	Shard []byte
}

// verdict is the root's final word on one resize attempt.
type verdict struct {
	Commit bool
}

// plan is the pure decomposition of one resize: who survives, who retires,
// who joins, and the placement afterwards. Survivors keep their relative
// rank order; new hosts append in target order — so the new rank of old
// rank r is its index among the survivors, and children follow.
type plan struct {
	epoch    int
	target   []string
	cur      []string
	survivor []int    // old ranks that continue, ascending
	victim   []int    // old ranks that retire, ascending
	added    []string // hosts joining, target order
	newPlace []string // placement after the resize, new-rank order
}

func makePlan(epoch int, cur, target []string) plan {
	p := plan{
		epoch:  epoch,
		target: append([]string(nil), target...),
		cur:    append([]string(nil), cur...),
	}
	for r, host := range cur {
		if containsHost(target, host) {
			p.survivor = append(p.survivor, r)
			p.newPlace = append(p.newPlace, host)
		} else {
			p.victim = append(p.victim, r)
		}
	}
	for _, host := range target {
		if !containsHost(cur, host) {
			p.added = append(p.added, host)
			p.newPlace = append(p.newPlace, host)
		}
	}
	return p
}

// newRankOf returns the post-resize rank of old rank r, or -1 for victims.
func (p *plan) newRankOf(r int) int {
	for i, s := range p.survivor {
		if s == r {
			return i
		}
	}
	return -1
}

// memberBigRanks lists the members of the new world by their ranks in the
// merged (old ∪ spawned) communicator: survivors keep their old-world
// ranks (parents sort first in Merge), children follow at oldWorld+i.
func (p *plan) memberBigRanks() []int {
	ranks := append([]int(nil), p.survivor...)
	for i := range p.added {
		ranks = append(ranks, len(p.cur)+i)
	}
	return ranks
}

// pollStep is the poll-point every rank passes between steps: rank 0
// decides whether a resize is pending and broadcasts the verdict; on a
// resize all ranks run the reshape. Returns the shard to continue with
// (rewriting rc on a committed resize) or errRetired for victims.
func (j *Job) pollStep(rc *Rank, shard []byte) ([]byte, error) {
	var ann announce
	if rc.rank == 0 {
		if p, epoch := j.takePending(rc.placement); p != nil {
			ann = announce{Resize: true, Epoch: epoch, Target: p.target}
			j.observe(MetricQuiesceSeconds, j.clock.Now().Sub(p.at))
			defer j.timeResize(p, epoch)()
		}
	}
	if err := rc.comm.Bcast(&ann, 0); err != nil {
		return nil, err
	}
	if !ann.Resize {
		return shard, nil
	}
	pl := makePlan(ann.Epoch, rc.placement, ann.Target)
	if rc.rank == 0 {
		j.emit(Event{
			Job: j.name, Phase: PhaseQuiesce, Epoch: pl.epoch, Step: rc.step,
			OldWorld: len(pl.cur), NewWorld: len(pl.target),
			Added: pl.added, Removed: victimHosts(&pl),
		})
	}
	return j.reshape(rc, &pl, shard)
}

// timeResize returns the deferred end-of-resize recorder for rank 0: it
// observes the full-resize and reshape histograms only if the attempt
// committed (j.epochs bookkeeping identifies commits via counters).
func (j *Job) timeResize(p *proposal, epoch int) func() {
	quiesced := j.clock.Now()
	return func() {
		j.mu.Lock()
		committed := j.lastCommitEpoch == epoch
		j.mu.Unlock()
		if committed {
			j.observe(MetricReshapeSeconds, j.clock.Now().Sub(quiesced))
			j.observe(MetricResizeSeconds, j.clock.Now().Sub(p.at))
		}
	}
}

func victimHosts(pl *plan) []string {
	var hosts []string
	for _, r := range pl.victim {
		hosts = append(hosts, pl.cur[r])
	}
	return hosts
}

// reshape executes one resize attempt on every old rank. The root drives;
// non-root ranks first drain, then follow the root's messages.
func (j *Job) reshape(rc *Rank, pl *plan, shard []byte) ([]byte, error) {
	if rc.rank == 0 {
		return j.rootReshape(rc, pl, shard)
	}
	// Drain: ship the shard to the root, then await the outcome.
	if err := rc.comm.Send(shard, 0, tagDrain); err != nil {
		return nil, err
	}
	return j.memberCommit(rc, pl, rc.comm, shard, rc.rank)
}

// rootReshape is rank 0's side: drain, spawn, redistribute, decide.
func (j *Job) rootReshape(rc *Rank, pl *plan, shard []byte) ([]byte, error) {
	oldW := len(pl.cur)
	// Drain every rank's shard. A rank that dies before its shard arrives
	// is unrecoverable state loss: the job fails (never wedges — recvLively
	// watches the job's dead-host set).
	shards := make([][]byte, oldW)
	shards[0] = shard
	for r := 1; r < oldW; r++ {
		var sh []byte
		if err := j.recvLively(rc, rc.comm, r, tagDrain, &sh); err != nil {
			return nil, fmt.Errorf("malleable: drain epoch %d from rank %d: %w", pl.epoch, r, err)
		}
		shards[r] = sh
	}
	// State is safe. Victims are expendable from here on.
	j.emit(Event{
		Job: j.name, Phase: PhaseReshape, Epoch: pl.epoch, Step: rc.step,
		OldWorld: oldW, NewWorld: len(pl.target),
		Added: pl.added, Removed: victimHosts(pl),
	})

	bigComm := rc.comm
	if len(pl.added) > 0 {
		var err error
		bigComm, err = rc.env.SpawnMerge(rc.comm, pl.added, j.childMain(pl, rc.step))
		if err != nil {
			var hf *mpi.HostFailedError
			if errors.As(err, &hf) {
				// A target host failed mid-spawn: clean abort, the old
				// world resumes untouched.
				return shard, j.rootAbort(rc, pl, rc.comm, oldW, hf.Error())
			}
			return nil, fmt.Errorf("malleable: spawn epoch %d: %w", pl.epoch, err)
		}
		j.emit(Event{
			Job: j.name, Phase: PhaseSpawn, Epoch: pl.epoch, Step: rc.step,
			OldWorld: oldW, NewWorld: len(pl.target), Added: pl.added,
		})
	}

	// Repartition for the new world.
	newShards, err := j.repartition(shards, len(pl.target))
	if err != nil {
		// Application-level failure: abort to the old world; the job keeps
		// running at the old size (the shards are untouched).
		if aerr := j.rootAbort(rc, pl, bigComm, oldW, err.Error()); aerr != nil {
			return nil, aerr
		}
		return shard, nil
	}

	// A fresh host that died in the spawn window may not have failed the
	// sends yet (eager buffering): check the dead-host set explicitly so the
	// abort is deterministic, not a race against delivery.
	for _, h := range pl.added {
		if j.hostDead(h) {
			return shard, j.rootAbort(rc, pl, bigComm, oldW, fmt.Sprintf("spawned host %s died before commit", h))
		}
	}
	// Push each member its new shard. A send failure here (fresh rank's
	// host crashed in the spawn window, ErrHostDown / ErrProcExited)
	// aborts: no state has been destroyed yet.
	ranks := pl.memberBigRanks()
	for i, big := range ranks {
		if big == 0 {
			continue
		}
		if err := bigComm.Send(state{Step: rc.step, Shard: newShards[i]}, big, tagState); err != nil {
			return shard, j.rootAbort(rc, pl, bigComm, oldW, fmt.Sprintf("state push to merged rank %d: %v", big, err))
		}
	}
	// Commit. Verdict failures to individual members are ignored: a member
	// that cannot hear the verdict is dead, and a dead member resolves
	// itself — a dead victim was leaving anyway, and a dead survivor or
	// child fails the new world's next exchange, which fails the job.
	for big := 1; big < bigComm.Size(); big++ {
		_ = bigComm.Send(verdict{Commit: true}, big, tagVerdict)
	}
	j.commitJobState(pl)
	newComm, err := bigComm.CreateGroup(pl.memberBigRanks(), pl.epoch)
	if err != nil {
		return nil, fmt.Errorf("malleable: commit epoch %d: %w", pl.epoch, err)
	}
	rc.adopt(newComm, pl)
	j.emit(Event{
		Job: j.name, Phase: PhaseResume, Epoch: pl.epoch, Step: rc.step,
		OldWorld: oldW, NewWorld: len(pl.target),
		Added: pl.added, Removed: victimHosts(pl),
	})
	return newShards[0], nil
}

// repartition merges the old shards and re-splits for the new world size.
func (j *Job) repartition(shards [][]byte, newWorld int) ([][]byte, error) {
	global, err := j.app.Merge(shards)
	if err != nil {
		return nil, fmt.Errorf("merge: %w", err)
	}
	newShards, err := j.app.Split(global, newWorld)
	if err != nil {
		return nil, fmt.Errorf("split to %d: %w", newWorld, err)
	}
	if len(newShards) != newWorld {
		return nil, fmt.Errorf("split returned %d shards for world %d", len(newShards), newWorld)
	}
	return newShards, nil
}

// rootAbort distributes an abort verdict over comm (the widest
// communicator every still-relevant member listens on) and records the
// abort. Send failures are ignored — dead members don't need the verdict.
func (j *Job) rootAbort(rc *Rank, pl *plan, comm *mpi.Comm, oldW int, reason string) error {
	for big := 1; big < comm.Size(); big++ {
		_ = comm.Send(verdict{Commit: false}, big, tagVerdict)
	}
	j.mu.Lock()
	j.aborted++
	j.mu.Unlock()
	j.counters.Inc(metrics.CtrResizeAborted)
	j.emit(Event{
		Job: j.name, Phase: PhaseAbort, Epoch: pl.epoch, Step: rc.step,
		OldWorld: oldW, NewWorld: len(pl.target),
		Added: pl.added, Removed: victimHosts(pl), Err: reason,
	})
	return nil
}

// commitJobState flips the job's placement/counters to the new world.
func (j *Job) commitJobState(pl *plan) {
	j.mu.Lock()
	j.placement = append([]string(nil), pl.newPlace...)
	j.committed++
	j.lastCommitEpoch = pl.epoch
	j.mu.Unlock()
	j.counters.Inc(metrics.CtrResizeCommitted)
	j.counters.Add(metrics.CtrRanksSpawned, int64(len(pl.added)))
	j.counters.Add(metrics.CtrRanksRetired, int64(len(pl.victim)))
}

// memberCommit is the non-root side after the drain: survivors and victims
// wait on the communicator the root talks to them on. For an expansion
// they must first join the SpawnMerge collective; the announce's plan
// tells them whether one is coming.
func (j *Job) memberCommit(rc *Rank, pl *plan, oldComm *mpi.Comm, oldShard []byte, oldRank int) ([]byte, error) {
	bigComm := oldComm
	if len(pl.added) > 0 {
		var err error
		bigComm, err = rc.env.SpawnMerge(oldComm, pl.added, nil)
		if err != nil {
			var hf *mpi.HostFailedError
			if errors.As(err, &hf) {
				// Spawn aborted cluster-wide: resume the old world. The
				// typed error doubles as the abort verdict, so the root
				// sends none after a spawn failure.
				return oldShard, nil
			}
			return nil, fmt.Errorf("malleable: spawn epoch %d: %w", pl.epoch, err)
		}
	}
	// Victims receive only the verdict (the root pushes state to new-world
	// members only); survivors must see their state before a commit.
	newRank := pl.newRankOf(oldRank)
	st, vd, err := j.awaitOutcome(rc, bigComm, newRank >= 0)
	if err != nil {
		return nil, err
	}
	if !vd.Commit {
		return oldShard, nil
	}
	if newRank < 0 {
		return nil, errRetired
	}
	newComm, err := bigComm.CreateGroup(pl.memberBigRanks(), pl.epoch)
	if err != nil {
		return nil, fmt.Errorf("malleable: commit epoch %d: %w", pl.epoch, err)
	}
	rc.adopt(newComm, pl)
	return st.Shard, nil
}

// awaitOutcome receives the root's state (wantState: members of the new
// world only) and verdict messages over the merged communicator, in either
// arrival order. Per-pair FIFO guarantees a commit verdict never overtakes
// its state message.
func (j *Job) awaitOutcome(rc *Rank, comm *mpi.Comm, wantState bool) (state, verdict, error) {
	var (
		st     state
		haveSt bool
		vd     verdict
		haveVd bool
	)
	for !haveVd {
		stat, err := comm.Probe(0, mpi.AnyTag)
		if err != nil {
			return st, vd, err
		}
		switch stat.Tag {
		case tagState:
			if _, err := comm.Recv(&st, 0, tagState); err != nil {
				return st, vd, err
			}
			haveSt = true
		case tagVerdict:
			if _, err := comm.Recv(&vd, 0, tagVerdict); err != nil {
				return st, vd, err
			}
			haveVd = true
		default:
			return st, vd, fmt.Errorf("malleable: unexpected tag %d from root during resize", stat.Tag)
		}
	}
	if vd.Commit && wantState && !haveSt {
		return st, vd, errors.New("malleable: commit verdict without state")
	}
	return st, vd, nil
}

// adopt rewrites a Rank for the committed new world.
func (rc *Rank) adopt(newComm *mpi.Comm, pl *plan) {
	rc.comm = newComm
	rc.rank = newComm.Rank()
	rc.world = newComm.Size()
	rc.placement = append([]string(nil), pl.newPlace...)
}

// childMain builds the Main a freshly spawned rank runs: merge into the
// parents' world, bind to the host, receive state + verdict, and on commit
// join the new world and enter the step loop (skipping the first poll —
// the parents' collSeq on the new communicator starts aligned only after
// everyone passes the same number of collectives, and the child joins
// between two polls).
func (j *Job) childMain(pl *plan, step int) mpi.Main {
	return func(env *mpi.Env) error {
		bigComm, err := env.Parent.Merge(true)
		if err != nil {
			return err
		}
		rec, err := j.attach(env)
		if err != nil {
			// Host crashed between HostCheck and launch, or the job is
			// settling: die visibly so the root's state push fails and the
			// resize aborts.
			env.Kill()
			return nil
		}
		defer j.detach(rec)
		rc := &Rank{job: j, env: env, rec: rec}
		st, vd, err := j.awaitOutcome(rc, bigComm, true)
		if err != nil || !vd.Commit {
			// Abort (or the root died): a child with no state just exits.
			return nil
		}
		newComm, err := bigComm.CreateGroup(pl.memberBigRanks(), pl.epoch)
		if err != nil {
			return err
		}
		rc.adopt(newComm, pl)
		rc.step = st.Step
		j.rankExit(rec, j.runRank(rc, st.Shard, true))
		return nil
	}
}
