package malleable

import (
	"testing"
	"time"

	"autoresched/internal/mpi"
)

// benchJob runs a long-lived job on n hosts and returns it plus a channel
// delivering one value per committed resize (PhaseResume).
func benchJob(b *testing.B, n int) (*Job, chan Event) {
	b.Helper()
	resumed := make(chan Event)
	j, err := Start(Options{
		Universe:     mpi.NewUniverse(mpi.Options{}),
		App:          &countApp{size: 64, steps: 1 << 30},
		InitialHosts: hosts("h", n),
		DrainPoll:    100 * time.Microsecond,
		Observer: func(ev Event) {
			if ev.Phase == PhaseResume {
				resumed <- ev
			}
		},
	})
	if err != nil {
		b.Fatalf("Start: %v", err)
	}
	return j, resumed
}

func benchResize(b *testing.B, from, to int) {
	j, resumed := benchJob(b, from)
	defer func() {
		j.Stop()
		if _, err := j.Wait(); err != ErrStopped {
			b.Fatalf("Wait: %v", err)
		}
	}()
	fromHosts, toHosts := hosts("h", from), hosts("h", to)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Propose(toHosts); err != nil {
			b.Fatalf("Propose: %v", err)
		}
		<-resumed
		b.StopTimer()
		if err := j.Propose(fromHosts); err != nil {
			b.Fatalf("Propose back: %v", err)
		}
		<-resumed
		b.StartTimer()
	}
	b.StopTimer()
	if w := j.World(); w != from {
		b.Fatalf("world drifted to %d, want %d", w, from)
	}
	if committed, aborted := j.Resizes(); committed != 2*b.N || aborted != 0 {
		b.Fatalf("resizes = %d/%d, want %d committed / 0 aborted", committed, aborted, 2*b.N)
	}
}

// BenchmarkResizeExpand8to16 measures one full grow resize — propose,
// quiesce, drain, spawn 8 ranks, merge, redistribute, resume — on the
// instant transport, so the number is protocol overhead, not payload time.
func BenchmarkResizeExpand8to16(b *testing.B) { benchResize(b, 8, 16) }

// BenchmarkResizeShrink16to8 measures one full shrink resize: drain,
// retire 8 ranks, redistribute to the survivors.
func BenchmarkResizeShrink16to8(b *testing.B) { benchResize(b, 16, 8) }
