// Package malleable is the elastic-MPI control plane: it grows and shrinks
// the rank count of a running MPI job at runtime. The source paper migrates
// a fixed-size job between hosts; this package composes the same primitives
// — dynamic process management (Spawn + intercommunicator Merge), poll-point
// quiescence, and scheduler-driven placement — into full malleability in the
// sense of the DMR line of work: a resize proposal names a target host set,
// the job quiesces at the next poll-point, and the runtime reshapes the
// world in place.
//
// The protocol is drain-first: every rank's shard is gathered to the root
// before anything irreversible happens, so a victim host dying after the
// drain cannot lose state, and a freshly spawned rank dying before the
// commit aborts the resize cleanly back to the old world. A resize subsumes
// migration — proposing a same-size placement with different hosts moves
// ranks without changing the world size.
//
// Phases are announced synchronously through a ResizeObserver (the
// fault-injection trap surface, mirroring hpcm.MigrationObserver) and timed
// into malleable/* histograms on the shared metrics registry.
package malleable

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"autoresched/internal/events"
	"autoresched/internal/hpcm"
	"autoresched/internal/metrics"
	"autoresched/internal/mpi"
	"autoresched/internal/vclock"
)

// App is a re-decomposable application: its global state can be cut into
// one shard per rank for any world size, and reassembled from the shards.
// Shards are opaque byte blobs; the engine never interprets them. A resize
// at step s is invisible to the computation: Split(Merge(shards), M)
// continued for the remaining steps must produce the same global state as
// running the whole computation at M ranks (the bit-exactness contract the
// elastic jacobi workload is tested against).
type App interface {
	// Name labels the job in events and the process table.
	Name() string
	// Steps is the number of lockstep computation steps.
	Steps() int
	// Fresh produces the initial global state.
	Fresh() ([]byte, error)
	// Split cuts a global state into world shards, one per rank.
	Split(global []byte, world int) ([][]byte, error)
	// Merge reassembles the global state from all ranks' shards.
	Merge(shards [][]byte) ([]byte, error)
	// Step advances one rank's shard by one step. rc carries the rank's
	// identity, the world communicator for neighbour exchange, and CPU
	// charging on the current host.
	Step(rc *Rank, shard []byte) ([]byte, error)
}

// ResizeObserver receives phase events synchronously from the goroutine
// driving the resize (rank 0, or the proposer for PhasePropose). Keep it
// fast; it is on the protocol's critical path. The synchronous delivery is
// what lets fault injection crash a host at an exact protocol phase.
type ResizeObserver func(Event)

// Phases of one resize attempt, in protocol order.
const (
	// PhasePropose: a target placement was handed to the job.
	PhasePropose = "propose"
	// PhaseQuiesce: every rank reached the poll-point and saw the announce.
	PhaseQuiesce = "quiesce"
	// PhaseReshape: the drain finished — every rank's shard is safe at the
	// root. Victims are expendable from this point on.
	PhaseReshape = "reshape"
	// PhaseSpawn: the new ranks (expansions only) are up and merged, but
	// hold no state yet — the window where losing one aborts the resize.
	PhaseSpawn = "spawn"
	// PhaseResume: the resize committed; the new world is computing.
	PhaseResume = "resume"
	// PhaseAbort: the resize was abandoned; the old world resumed intact.
	PhaseAbort = "abort"
)

// Event is one resize phase notification.
type Event struct {
	// Job is the job name.
	Job string
	// Phase is one of the Phase* constants.
	Phase string
	// Epoch numbers resize attempts from 1 (0 for PhasePropose, which
	// precedes epoch assignment).
	Epoch int
	// Step is the poll-point step the resize landed on.
	Step int
	// OldWorld and NewWorld are the world sizes either side of the resize.
	OldWorld, NewWorld int
	// Added and Removed are the hosts joining and leaving the placement.
	Added, Removed []string
	// Err carries the abort reason on PhaseAbort.
	Err string
}

// Metric names the engine records when Options.Metrics is set. All values
// are in virtual seconds.
const (
	// MetricQuiesceSeconds: Propose to every rank quiescing at the
	// poll-point.
	MetricQuiesceSeconds = "malleable/quiesce_seconds"
	// MetricReshapeSeconds: quiesce to resume — drain, spawn/retire, and
	// redistribution (committed resizes only).
	MetricReshapeSeconds = "malleable/reshape_seconds"
	// MetricResizeSeconds: Propose to resume, the full round trip.
	MetricResizeSeconds = "malleable/resize_seconds"
)

// ErrStopped is the terminal error of a job cancelled with Stop.
var ErrStopped = errors.New("malleable: job stopped")

// errRetired is the internal clean-exit sentinel of a victim rank whose
// shrink committed.
var errRetired = errors.New("malleable: rank retired")

// errRankLost reports a rank that died before its shard was drained.
var errRankLost = errors.New("malleable: rank lost before drain")

// Options configures a Job.
type Options struct {
	// Universe supplies process creation and messaging. Required.
	Universe *mpi.Universe
	// App is the re-decomposable application body. Required.
	App App
	// Hosts binds ranks to host resources; nil runs unbound.
	Hosts hpcm.HostBinder
	// Name overrides App.Name for events and the process table.
	Name string
	// InitialHosts is the starting placement, one rank per host. Required,
	// non-empty; InitialHosts[0] carries rank 0, which is pinned for the
	// job's lifetime (a proposal dropping it is rejected).
	InitialHosts []string
	// Observer receives resize phase events; nil disables.
	Observer ResizeObserver
	// Events, when set, receives each resize phase on the unified sink
	// (Source "malleable", Kind = phase, Payload = the Event). Delivery is
	// synchronous, same as Observer.
	Events events.Sink
	// Metrics records the malleable/* histograms; nil disables.
	Metrics *metrics.Registry
	// Counters tallies committed/aborted resizes and spawned/retired
	// ranks; nil disables.
	Counters *metrics.Counters
	// DrainPoll paces the liveness-aware receive loop of the drain phase;
	// zero selects 1 ms of virtual time.
	DrainPoll time.Duration
}

// Rank is one incarnation's view during App.Step: its identity in the
// current world, the step number, the world communicator for neighbour
// exchange, and CPU charging on its host. The engine rewrites the identity
// at every committed resize; the pointer stays valid across resizes.
type Rank struct {
	job       *Job
	env       *mpi.Env
	rec       *rankRec
	comm      *mpi.Comm
	rank      int
	world     int
	step      int
	placement []string
}

// Rank returns the caller's rank in the current world.
func (rc *Rank) Rank() int { return rc.rank }

// World returns the current world size.
func (rc *Rank) World() int { return rc.world }

// Step returns the current step number.
func (rc *Rank) Step() int { return rc.step }

// Comm returns the current world communicator.
func (rc *Rank) Comm() *mpi.Comm { return rc.comm }

// Host returns the host this incarnation runs on.
func (rc *Rank) Host() string { return rc.env.Host }

// Compute charges CPU work to the rank's host, failing fast if the rank
// was killed by a crash.
func (rc *Rank) Compute(work float64) error {
	if rc.rec.killed.Load() {
		return mpi.ErrProcExited
	}
	if err := rc.rec.hp.Compute(work); err != nil {
		return err
	}
	if rc.rec.killed.Load() {
		return mpi.ErrProcExited
	}
	return nil
}

// rankRec is the job's bookkeeping for one live incarnation.
type rankRec struct {
	host   string
	env    *mpi.Env
	hp     hpcm.HostProc
	killed atomic.Bool
}

func (r *rankRec) kill() {
	r.killed.Store(true)
	r.env.Kill()
}

// proposal is a pending resize target.
type proposal struct {
	target []string
	at     time.Time
}

// Job is one running malleable application.
type Job struct {
	u        *mpi.Universe
	clock    vclock.Clock
	app      App
	name     string
	binder   hpcm.HostBinder
	observer ResizeObserver
	events   events.Sink
	metrics  *metrics.Registry
	counters *metrics.Counters
	poll     time.Duration

	mu              sync.Mutex
	pending         *proposal
	epochs          int // resize attempts announced so far
	committed       int
	aborted         int
	lastCommitEpoch int
	placement       []string
	dead            map[string]bool
	live            map[string][]*rankRec
	finished        bool
	result          []byte
	err             error

	wg   sync.WaitGroup
	done chan struct{}
}

// Start launches the job: one rank per initial host, rank 0 on
// InitialHosts[0], the initial state split and scattered, and the step loop
// polling for resize proposals at every step boundary.
func Start(opts Options) (*Job, error) {
	if opts.Universe == nil {
		return nil, errors.New("malleable: Options.Universe is required")
	}
	if opts.App == nil {
		return nil, errors.New("malleable: Options.App is required")
	}
	if len(opts.InitialHosts) == 0 {
		return nil, errors.New("malleable: Options.InitialHosts is required")
	}
	if err := validatePlacement(opts.InitialHosts); err != nil {
		return nil, err
	}
	if opts.Hosts == nil {
		opts.Hosts = hpcm.NullBinder()
	}
	if opts.Name == "" {
		opts.Name = opts.App.Name()
	}
	if opts.DrainPoll <= 0 {
		opts.DrainPoll = time.Millisecond
	}
	if opts.Metrics != nil {
		// Pre-create the histograms so a metrics snapshot shows them
		// (empty) before the first resize.
		for _, name := range []string{
			MetricQuiesceSeconds, MetricReshapeSeconds, MetricResizeSeconds,
		} {
			opts.Metrics.Histogram(name)
		}
	}
	j := &Job{
		u:         opts.Universe,
		clock:     opts.Universe.Clock(),
		app:       opts.App,
		name:      opts.Name,
		binder:    opts.Hosts,
		observer:  opts.Observer,
		events:    opts.Events,
		metrics:   opts.Metrics,
		counters:  opts.Counters,
		poll:      opts.DrainPoll,
		placement: append([]string(nil), opts.InitialHosts...),
		dead:      make(map[string]bool),
		live:      make(map[string][]*rankRec),
		done:      make(chan struct{}),
	}
	j.u.Start(opts.InitialHosts, j.rankMain)
	return j, nil
}

func validatePlacement(hosts []string) error {
	seen := make(map[string]bool, len(hosts))
	for _, h := range hosts {
		if h == "" {
			return errors.New("malleable: empty host name in placement")
		}
		if seen[h] {
			return fmt.Errorf("malleable: duplicate host %q in placement (one rank per host)", h)
		}
		seen[h] = true
	}
	return nil
}

// Propose hands the job a target placement to resize to at the next
// poll-point: one rank per host, surviving hosts keep their ranks' relative
// order, new hosts append in the given order. The current rank-0 host must
// be in the target (the root is pinned). A later Propose before the next
// poll-point replaces an earlier one; a proposal equal to the current
// placement is dropped at the poll-point.
func (j *Job) Propose(target []string) error {
	if err := validatePlacement(target); err != nil {
		return err
	}
	if len(target) == 0 {
		return errors.New("malleable: empty target placement")
	}
	tgt := append([]string(nil), target...)
	j.mu.Lock()
	if j.finished {
		j.mu.Unlock()
		return nil
	}
	root := j.placement[0]
	if !containsHost(tgt, root) {
		j.mu.Unlock()
		return fmt.Errorf("malleable: target drops the pinned root host %q", root)
	}
	j.pending = &proposal{target: tgt, at: j.clock.Now()}
	oldWorld := len(j.placement)
	j.mu.Unlock()
	j.emit(Event{Job: j.name, Phase: PhasePropose, OldWorld: oldWorld, NewWorld: len(tgt)})
	return nil
}

// takePending claims the pending proposal if it is still applicable to the
// current placement (root retained, actually a change). Called by rank 0 at
// each poll-point.
func (j *Job) takePending(cur []string) (*proposal, int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	p := j.pending
	if p == nil {
		return nil, 0
	}
	j.pending = nil
	if !containsHost(p.target, cur[0]) || sameHostSet(p.target, cur) {
		return nil, 0
	}
	j.epochs++
	return p, j.epochs
}

func containsHost(hosts []string, h string) bool {
	for _, x := range hosts {
		if x == h {
			return true
		}
	}
	return false
}

func sameHostSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for _, h := range a {
		if !containsHost(b, h) {
			return false
		}
	}
	return true
}

// CrashHost models a host failure: every incarnation on the host is killed
// mid-operation and the host is treated as dead by the drain's liveness
// checks. Crashing the pinned root host fails the whole job (the engine has
// no root failover; that is the checkpointing layer's domain). The caller
// is responsible for also failing the host at the transport layer (e.g.
// simnet SetDown) so in-flight payloads fail.
func (j *Job) CrashHost(host string) {
	j.mu.Lock()
	j.dead[host] = true
	recs := append([]*rankRec(nil), j.live[host]...)
	isRoot := len(j.placement) > 0 && j.placement[0] == host
	j.mu.Unlock()
	for _, r := range recs {
		r.kill()
	}
	if isRoot {
		j.fail(fmt.Errorf("malleable: root host %s crashed", host))
	}
}

// Stop cancels the job; Wait returns ErrStopped.
func (j *Job) Stop() { j.fail(ErrStopped) }

// Wait blocks until the job settles and returns the final merged global
// state (from App.Merge over the last world's shards) or the terminal
// error.
func (j *Job) Wait() ([]byte, error) {
	<-j.done
	j.wg.Wait()
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Done returns a channel closed when the job settles.
func (j *Job) Done() <-chan struct{} { return j.done }

// World returns the current world size.
func (j *Job) World() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.placement)
}

// Placement returns the current placement, rank order.
func (j *Job) Placement() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]string(nil), j.placement...)
}

// Resizes returns the committed and aborted resize counts.
func (j *Job) Resizes() (committed, aborted int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.committed, j.aborted
}

func (j *Job) hostDead(host string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dead[host]
}

func (j *Job) emit(ev Event) {
	if j.observer != nil {
		j.observer(ev)
	}
	if j.events != nil {
		var err error
		if ev.Err != "" {
			err = errors.New(ev.Err)
		}
		j.events.Publish(events.Event{
			Time:    j.clock.Now(),
			Source:  events.SourceMalleable,
			Kind:    ev.Phase,
			Proc:    ev.Job,
			Note:    fmt.Sprintf("world %d->%d", ev.OldWorld, ev.NewWorld),
			Err:     err,
			Payload: ev,
		})
	}
}

func (j *Job) observe(name string, d time.Duration) {
	if j.metrics != nil {
		j.metrics.Histogram(name).Observe(d.Seconds())
	}
}

// fail settles the job with a terminal error (first one wins) and kills
// every live incarnation so nothing stays blocked on a peer that will
// never answer.
func (j *Job) fail(err error) {
	j.mu.Lock()
	if j.finished {
		j.mu.Unlock()
		return
	}
	j.finished = true
	j.err = err
	var recs []*rankRec
	for _, l := range j.live {
		recs = append(recs, l...)
	}
	j.mu.Unlock()
	for _, r := range recs {
		r.kill()
	}
	close(j.done)
}

// finishResult settles the job successfully.
func (j *Job) finishResult(result []byte) {
	j.mu.Lock()
	if j.finished {
		j.mu.Unlock()
		return
	}
	j.finished = true
	j.result = result
	j.mu.Unlock()
	close(j.done)
}

// attach binds a new incarnation to its host and registers it with the
// job's liveness bookkeeping.
func (j *Job) attach(env *mpi.Env) (*rankRec, error) {
	hp, err := j.binder.Attach(env.Host, j.name, 1<<20)
	if err != nil {
		return nil, fmt.Errorf("malleable: attach on %s: %w", env.Host, err)
	}
	rec := &rankRec{host: env.Host, env: env, hp: hp}
	j.mu.Lock()
	if j.finished || j.dead[env.Host] {
		j.mu.Unlock()
		hp.Exit()
		rec.kill()
		return nil, mpi.ErrProcExited
	}
	j.live[env.Host] = append(j.live[env.Host], rec)
	j.wg.Add(1)
	j.mu.Unlock()
	return rec, nil
}

func (j *Job) detach(rec *rankRec) {
	j.mu.Lock()
	list := j.live[rec.host]
	for i, r := range list {
		if r == rec {
			j.live[rec.host] = append(list[:i], list[i+1:]...)
			break
		}
	}
	j.mu.Unlock()
	rec.hp.Exit()
	j.wg.Done()
}

// rankExit interprets an incarnation's exit: retirement is clean, errors on
// crashed incarnations are expected collateral (the resize protocol or the
// surviving ranks decide the job's fate), anything else fails the job.
func (j *Job) rankExit(rec *rankRec, err error) {
	if err == nil || errors.Is(err, errRetired) {
		return
	}
	if rec.killed.Load() {
		return
	}
	j.fail(err)
}

// rankMain is the entry point of the initial ranks.
func (j *Job) rankMain(env *mpi.Env) error {
	rec, err := j.attach(env)
	if err != nil {
		// The job is already settled (or the host crashed before launch):
		// die visibly so peers unblock with ErrProcExited.
		env.Kill()
		return nil
	}
	defer j.detach(rec)
	rc := &Rank{
		job: j, env: env, rec: rec,
		comm: env.World, rank: env.World.Rank(), world: env.World.Size(),
		placement: j.Placement(),
	}
	var shard []byte
	if rc.rank == 0 {
		global, err := j.app.Fresh()
		if err == nil {
			var shards [][]byte
			if shards, err = j.app.Split(global, rc.world); err == nil {
				values := make([]any, len(shards))
				for i, sh := range shards {
					values[i] = sh
				}
				err = rc.comm.Scatter(values, &shard, 0)
			}
		}
		if err != nil {
			j.rankExit(rec, err)
			return nil
		}
	} else {
		if err := rc.comm.Scatter(nil, &shard, 0); err != nil {
			j.rankExit(rec, err)
			return nil
		}
	}
	j.rankExit(rec, j.runRank(rc, shard, false))
	return nil
}

// runRank is the step loop every incarnation executes: poll for a resize
// at each step boundary, compute the step, and at the end drain the final
// shards to the root for the result merge.
func (j *Job) runRank(rc *Rank, shard []byte, skipFirstPoll bool) error {
	steps := j.app.Steps()
	skip := skipFirstPoll
	for rc.step < steps {
		if !skip {
			newShard, err := j.pollStep(rc, shard)
			if err != nil {
				return err
			}
			shard = newShard
		}
		skip = false
		rc.rec.hp.SetMemory(int64(len(shard)) + 1<<20)
		var err error
		shard, err = j.app.Step(rc, shard)
		if err != nil {
			return err
		}
		rc.step++
	}
	return j.finalDrain(rc, shard)
}

// finalDrain gathers the last world's shards at the root and settles the
// job with the merged global state.
func (j *Job) finalDrain(rc *Rank, shard []byte) error {
	if rc.rank != 0 {
		return rc.comm.Send(shard, 0, tagDrain)
	}
	shards := make([][]byte, rc.world)
	shards[0] = shard
	for r := 1; r < rc.world; r++ {
		var sh []byte
		if err := j.recvLively(rc, rc.comm, r, tagDrain, &sh); err != nil {
			return fmt.Errorf("malleable: final drain from rank %d: %w", r, err)
		}
		shards[r] = sh
	}
	global, err := j.app.Merge(shards)
	if err != nil {
		return err
	}
	j.finishResult(global)
	return nil
}

// recvLively receives from src on comm without risking a wedge: it polls
// the mailbox so a sender that died before sending is detected (via the
// job's dead-host set) instead of blocking forever. A message that already
// arrived is honoured even if the sender has since died — that is exactly
// the drain-first guarantee.
func (j *Job) recvLively(rc *Rank, comm *mpi.Comm, src, tag int, ptr any) error {
	host, err := comm.Host(src)
	if err != nil {
		return err
	}
	for {
		ok, _, err := comm.Iprobe(src, tag)
		if err != nil {
			return err
		}
		if ok {
			_, err := comm.Recv(ptr, src, tag)
			return err
		}
		if rc.rec.killed.Load() {
			return mpi.ErrProcExited
		}
		if j.hostDead(host) {
			return fmt.Errorf("%w: rank %d on %s", errRankLost, src, host)
		}
		j.clock.Sleep(j.poll)
	}
}
