package malleable

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"autoresched/internal/metrics"
	"autoresched/internal/mpi"
	"autoresched/internal/vclock"
)

// countApp is the minimal re-decomposable App: the global state is size
// bytes, a shard is a contiguous slice of it, and a step increments every
// byte. After S steps every byte is S regardless of how often the world
// resized — plus each step runs an Allreduce so every incarnation proves
// its current communicator works.
type countApp struct {
	size  int
	steps int
}

func (a *countApp) Name() string { return "count" }
func (a *countApp) Steps() int   { return a.steps }

func (a *countApp) Fresh() ([]byte, error) { return make([]byte, a.size), nil }

func (a *countApp) Split(global []byte, world int) ([][]byte, error) {
	if world > len(global) {
		return nil, fmt.Errorf("countApp: world %d > size %d", world, len(global))
	}
	shards := make([][]byte, world)
	for r := 0; r < world; r++ {
		lo, hi := r*len(global)/world, (r+1)*len(global)/world
		shards[r] = append([]byte(nil), global[lo:hi]...)
	}
	return shards, nil
}

func (a *countApp) Merge(shards [][]byte) ([]byte, error) {
	var global []byte
	for _, sh := range shards {
		global = append(global, sh...)
	}
	if len(global) != a.size {
		return nil, fmt.Errorf("countApp: merged %d bytes, want %d", len(global), a.size)
	}
	return global, nil
}

func (a *countApp) Step(rc *Rank, shard []byte) ([]byte, error) {
	var total int
	if err := rc.Comm().Allreduce(len(shard), &total, mpi.Sum); err != nil {
		return nil, err
	}
	if total != a.size {
		return nil, fmt.Errorf("countApp: world covers %d bytes, want %d", total, a.size)
	}
	out := make([]byte, len(shard))
	for i, b := range shard {
		out[i] = b + 1
	}
	return out, nil
}

// eventLog collects observer events safely across goroutines.
type eventLog struct {
	mu     sync.Mutex
	events []Event
}

func (l *eventLog) observe(ev Event) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

func (l *eventLog) phases() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, len(l.events))
	for i, ev := range l.events {
		out[i] = ev.Phase
	}
	return out
}

func (l *eventLog) find(phase string) (Event, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ev := range l.events {
		if ev.Phase == phase {
			return ev, true
		}
	}
	return Event{}, false
}

// jref hands the *Job to hooks that fire on rank goroutines before the
// test's Start call returns.
type jref struct {
	mu sync.Mutex
	j  *Job
}

func (r *jref) set(j *Job) { r.mu.Lock(); r.j = j; r.mu.Unlock() }

func (r *jref) get() *Job {
	for {
		r.mu.Lock()
		j := r.j
		r.mu.Unlock()
		if j != nil {
			return j
		}
		runtime.Gosched()
	}
}

// stepGate wraps an App to run a hook at the start of a chosen step on
// rank 0 — the deterministic way to fire a Propose mid-run.
type stepGate struct {
	App
	at   int
	once sync.Once
	hook func()
}

func (g *stepGate) Step(rc *Rank, shard []byte) ([]byte, error) {
	if rc.Rank() == 0 && rc.Step() == g.at {
		g.once.Do(g.hook)
	}
	return g.App.Step(rc, shard)
}

func checkResult(t *testing.T, result []byte, size, steps int) {
	t.Helper()
	if len(result) != size {
		t.Fatalf("result has %d bytes, want %d", len(result), size)
	}
	for i, b := range result {
		if int(b) != steps {
			t.Fatalf("result[%d] = %d, want %d", i, b, steps)
		}
	}
}

func hosts(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%d", prefix, i+1)
	}
	return out
}

func TestExpandCommit(t *testing.T) {
	clock := vclock.Scaled(vclock.Epoch, 200)
	u := mpi.NewUniverse(mpi.Options{Clock: clock})
	app := &countApp{size: 64, steps: 12}
	log := &eventLog{}
	reg := metrics.NewRegistry()
	ctrs := metrics.NewCounters()

	var jr jref
	gated := &stepGate{App: app, at: 4, hook: func() {
		if err := jr.get().Propose(hosts("h", 5)); err != nil {
			t.Errorf("Propose: %v", err)
		}
	}}
	j, err := Start(Options{
		Universe: u, App: gated, InitialHosts: hosts("h", 2),
		Observer: log.observe, Metrics: reg, Counters: ctrs,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	jr.set(j)
	result, err := j.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	checkResult(t, result, app.size, app.steps)
	if w := j.World(); w != 5 {
		t.Fatalf("final world = %d, want 5", w)
	}
	got := fmt.Sprint(j.Placement())
	if want := fmt.Sprint(hosts("h", 5)); got != want {
		t.Fatalf("placement = %s, want %s", got, want)
	}
	committed, aborted := j.Resizes()
	if committed != 1 || aborted != 0 {
		t.Fatalf("resizes = %d committed / %d aborted, want 1/0", committed, aborted)
	}
	if n := ctrs.Get(metrics.CtrRanksSpawned); n != 3 {
		t.Fatalf("ranks spawned = %d, want 3", n)
	}
	want := []string{PhasePropose, PhaseQuiesce, PhaseReshape, PhaseSpawn, PhaseResume}
	if got := fmt.Sprint(log.phases()); got != fmt.Sprint(want) {
		t.Fatalf("phases = %v, want %v", log.phases(), want)
	}
	for _, name := range []string{MetricQuiesceSeconds, MetricReshapeSeconds, MetricResizeSeconds} {
		if n := reg.Histogram(name).Count(); n != 1 {
			t.Errorf("%s count = %d, want 1", name, n)
		}
	}
	resume, _ := log.find(PhaseResume)
	if resume.OldWorld != 2 || resume.NewWorld != 5 || len(resume.Added) != 3 {
		t.Fatalf("resume event %+v, want 2->5 with 3 added", resume)
	}
}

func TestShrinkCommit(t *testing.T) {
	clock := vclock.Scaled(vclock.Epoch, 200)
	u := mpi.NewUniverse(mpi.Options{Clock: clock})
	app := &countApp{size: 60, steps: 10}
	log := &eventLog{}
	ctrs := metrics.NewCounters()

	var jr jref
	gated := &stepGate{App: app, at: 3, hook: func() {
		// Keep h1 (root) and h4: shrink 4 -> 2 with a non-contiguous
		// survivor set.
		if err := jr.get().Propose([]string{"h1", "h4"}); err != nil {
			t.Errorf("Propose: %v", err)
		}
	}}
	j, err := Start(Options{
		Universe: u, App: gated, InitialHosts: hosts("h", 4),
		Observer: log.observe, Counters: ctrs,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	jr.set(j)
	result, err := j.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	checkResult(t, result, app.size, app.steps)
	if got := fmt.Sprint(j.Placement()); got != fmt.Sprint([]string{"h1", "h4"}) {
		t.Fatalf("placement = %s, want [h1 h4]", got)
	}
	if n := ctrs.Get(metrics.CtrRanksRetired); n != 2 {
		t.Fatalf("ranks retired = %d, want 2", n)
	}
	resume, ok := log.find(PhaseResume)
	if !ok || fmt.Sprint(resume.Removed) != fmt.Sprint([]string{"h2", "h3"}) {
		t.Fatalf("resume event %+v, want removed [h2 h3]", resume)
	}
}

func TestRepeatedResizes(t *testing.T) {
	clock := vclock.Scaled(vclock.Epoch, 200)
	u := mpi.NewUniverse(mpi.Options{Clock: clock})
	app := &countApp{size: 48, steps: 15}

	var jr jref
	var once2 sync.Once
	grow := &stepGate{App: app, at: 3, hook: func() {
		if err := jr.get().Propose(hosts("h", 6)); err != nil {
			t.Errorf("grow: %v", err)
		}
	}}
	// Second gate layered on the first: shrink (and migrate h2 -> h8) at
	// step 9, after the grow committed.
	both := &stepGate{App: grow, at: 9, hook: func() {
		once2.Do(func() {
			if err := jr.get().Propose([]string{"h1", "h8", "h3"}); err != nil {
				t.Errorf("shrink: %v", err)
			}
		})
	}}
	j, err := Start(Options{Universe: u, App: both, InitialHosts: hosts("h", 3)})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	jr.set(j)
	result, err := j.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	checkResult(t, result, app.size, app.steps)
	if got := fmt.Sprint(j.Placement()); got != fmt.Sprint([]string{"h1", "h3", "h8"}) {
		t.Fatalf("placement = %s, want [h1 h3 h8]", got)
	}
	if committed, aborted := j.Resizes(); committed != 2 || aborted != 0 {
		t.Fatalf("resizes = %d/%d, want 2 committed / 0 aborted", committed, aborted)
	}
}

func TestSpawnFailureAborts(t *testing.T) {
	clock := vclock.Scaled(vclock.Epoch, 200)
	dead := map[string]bool{"h9": true}
	var mu sync.Mutex
	u := mpi.NewUniverse(mpi.Options{Clock: clock, HostCheck: func(h string) error {
		mu.Lock()
		defer mu.Unlock()
		if dead[h] {
			return errors.New("host is down")
		}
		return nil
	}})
	app := &countApp{size: 48, steps: 10}
	log := &eventLog{}
	ctrs := metrics.NewCounters()

	var jr jref
	gated := &stepGate{App: app, at: 2, hook: func() {
		if err := jr.get().Propose([]string{"h1", "h2", "h3", "h9"}); err != nil {
			t.Errorf("Propose: %v", err)
		}
	}}
	j, err := Start(Options{
		Universe: u, App: gated, InitialHosts: hosts("h", 3),
		Observer: log.observe, Counters: ctrs,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	jr.set(j)
	result, err := j.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	checkResult(t, result, app.size, app.steps)
	if w := j.World(); w != 3 {
		t.Fatalf("world after abort = %d, want 3 (unchanged)", w)
	}
	if committed, aborted := j.Resizes(); committed != 0 || aborted != 1 {
		t.Fatalf("resizes = %d/%d, want 0 committed / 1 aborted", committed, aborted)
	}
	if n := ctrs.Get(metrics.CtrResizeAborted); n != 1 {
		t.Fatalf("abort counter = %d, want 1", n)
	}
	ab, ok := log.find(PhaseAbort)
	if !ok || ab.Err == "" {
		t.Fatalf("abort event missing or without reason: %+v", ab)
	}
	if _, ok := log.find(PhaseSpawn); ok {
		t.Fatal("spawn phase emitted despite spawn failure")
	}
}

func TestCrashNewRankMidExpandAborts(t *testing.T) {
	clock := vclock.Scaled(vclock.Epoch, 200)
	var mu sync.Mutex
	dead := map[string]bool{}
	u := mpi.NewUniverse(mpi.Options{Clock: clock, HostCheck: func(h string) error {
		mu.Lock()
		defer mu.Unlock()
		if dead[h] {
			return errors.New("host is down")
		}
		return nil
	}})
	app := &countApp{size: 48, steps: 10}
	log := &eventLog{}

	var jr jref
	// Kill the freshly spawned rank's host in the spawn window: after the
	// merge, before any state lands on it.
	obs := func(ev Event) {
		log.observe(ev)
		if ev.Phase == PhaseSpawn {
			mu.Lock()
			dead["h4"] = true
			mu.Unlock()
			jr.get().CrashHost("h4")
		}
	}
	gated := &stepGate{App: app, at: 2, hook: func() {
		if err := jr.get().Propose(hosts("h", 4)); err != nil {
			t.Errorf("Propose: %v", err)
		}
	}}
	j, err := Start(Options{
		Universe: u, App: gated, InitialHosts: hosts("h", 3), Observer: obs,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	jr.set(j)
	result, err := j.Wait()
	if err != nil {
		t.Fatalf("Wait: %v (resize must abort, not wedge or fail the job)", err)
	}
	checkResult(t, result, app.size, app.steps)
	if w := j.World(); w != 3 {
		t.Fatalf("world after mid-expand crash = %d, want 3", w)
	}
	if committed, aborted := j.Resizes(); committed != 0 || aborted != 1 {
		t.Fatalf("resizes = %d/%d, want 0 committed / 1 aborted", committed, aborted)
	}
}

func TestCrashVictimMidShrinkCommits(t *testing.T) {
	clock := vclock.Scaled(vclock.Epoch, 200)
	u := mpi.NewUniverse(mpi.Options{Clock: clock})
	app := &countApp{size: 48, steps: 10}
	log := &eventLog{}

	var jr jref
	// Kill the victim after the drain: its shard is already at the root,
	// so the shrink must still commit.
	obs := func(ev Event) {
		log.observe(ev)
		if ev.Phase == PhaseReshape {
			jr.get().CrashHost("h3")
		}
	}
	gated := &stepGate{App: app, at: 2, hook: func() {
		if err := jr.get().Propose([]string{"h1", "h2"}); err != nil {
			t.Errorf("Propose: %v", err)
		}
	}}
	j, err := Start(Options{
		Universe: u, App: gated, InitialHosts: hosts("h", 3), Observer: obs,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	jr.set(j)
	result, err := j.Wait()
	if err != nil {
		t.Fatalf("Wait: %v (victim died after drain; shrink must commit)", err)
	}
	checkResult(t, result, app.size, app.steps)
	if committed, aborted := j.Resizes(); committed != 1 || aborted != 0 {
		t.Fatalf("resizes = %d/%d, want 1 committed / 0 aborted", committed, aborted)
	}
	if w := j.World(); w != 2 {
		t.Fatalf("world = %d, want 2", w)
	}
}

func TestCrashRankBeforeDrainFailsJob(t *testing.T) {
	clock := vclock.Scaled(vclock.Epoch, 200)
	u := mpi.NewUniverse(mpi.Options{Clock: clock})
	// A long-running app whose non-root ranks would keep computing; the
	// crash lands outside any resize, so the next collective dies.
	app := &countApp{size: 48, steps: 1000}
	var jr jref
	gated := &stepGate{App: app, at: 3, hook: func() {
		jr.get().CrashHost("h2")
	}}
	j, err := Start(Options{Universe: u, App: gated, InitialHosts: hosts("h", 3)})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	jr.set(j)
	if _, err := j.Wait(); err == nil {
		t.Fatal("job survived losing a rank with no resize in flight")
	}
}

func TestRootHostCrashFailsFast(t *testing.T) {
	clock := vclock.Scaled(vclock.Epoch, 200)
	u := mpi.NewUniverse(mpi.Options{Clock: clock})
	app := &countApp{size: 48, steps: 1000}
	var jr jref
	gated := &stepGate{App: app, at: 3, hook: func() {
		jr.get().CrashHost("h1")
	}}
	j, err := Start(Options{Universe: u, App: gated, InitialHosts: hosts("h", 3)})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	jr.set(j)
	if _, err := j.Wait(); err == nil || err == ErrStopped {
		t.Fatalf("Wait = %v, want root-crash error", err)
	}
}

func TestStop(t *testing.T) {
	clock := vclock.Scaled(vclock.Epoch, 200)
	u := mpi.NewUniverse(mpi.Options{Clock: clock})
	app := &countApp{size: 48, steps: 1000}
	var jr jref
	gated := &stepGate{App: app, at: 5, hook: func() { jr.get().Stop() }}
	j, err := Start(Options{Universe: u, App: gated, InitialHosts: hosts("h", 3)})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	jr.set(j)
	if _, err := j.Wait(); !errors.Is(err, ErrStopped) {
		t.Fatalf("Wait = %v, want ErrStopped", err)
	}
}

func TestProposeValidation(t *testing.T) {
	clock := vclock.Scaled(vclock.Epoch, 200)
	u := mpi.NewUniverse(mpi.Options{Clock: clock})
	app := &countApp{size: 8, steps: 2}
	j, err := Start(Options{Universe: u, App: app, InitialHosts: hosts("h", 2)})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := j.Propose([]string{"h1", "h1"}); err == nil {
		t.Error("duplicate host accepted")
	}
	if err := j.Propose([]string{"h1", ""}); err == nil {
		t.Error("empty host accepted")
	}
	if err := j.Propose([]string{"h2", "h3"}); err == nil {
		t.Error("proposal dropping the root host accepted")
	}
	if _, err := j.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

func TestStartValidation(t *testing.T) {
	u := mpi.NewUniverse(mpi.Options{})
	app := &countApp{size: 8, steps: 1}
	if _, err := Start(Options{App: app, InitialHosts: hosts("h", 2)}); err == nil {
		t.Error("Start without Universe accepted")
	}
	if _, err := Start(Options{Universe: u, InitialHosts: hosts("h", 2)}); err == nil {
		t.Error("Start without App accepted")
	}
	if _, err := Start(Options{Universe: u, App: app}); err == nil {
		t.Error("Start without InitialHosts accepted")
	}
	if _, err := Start(Options{Universe: u, App: app, InitialHosts: []string{"h1", "h1"}}); err == nil {
		t.Error("Start with duplicate hosts accepted")
	}
}

// TestSameSizeMigration: a resize that swaps hosts without changing the
// world size is the degenerate case subsuming plain migration.
func TestSameSizeMigration(t *testing.T) {
	clock := vclock.Scaled(vclock.Epoch, 200)
	u := mpi.NewUniverse(mpi.Options{Clock: clock})
	app := &countApp{size: 48, steps: 10}
	var jr jref
	gated := &stepGate{App: app, at: 3, hook: func() {
		if err := jr.get().Propose([]string{"h1", "h5", "h6"}); err != nil {
			t.Errorf("Propose: %v", err)
		}
	}}
	j, err := Start(Options{Universe: u, App: gated, InitialHosts: hosts("h", 3)})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	jr.set(j)
	result, err := j.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	checkResult(t, result, app.size, app.steps)
	if got := fmt.Sprint(j.Placement()); got != fmt.Sprint([]string{"h1", "h5", "h6"}) {
		t.Fatalf("placement = %s, want [h1 h5 h6]", got)
	}
	if w := j.World(); w != 3 {
		t.Fatalf("world = %d, want 3", w)
	}
}

// TestProposeNoChangeDropped: proposing the current placement (any order)
// is dropped at the poll-point without a resize.
func TestProposeNoChangeDropped(t *testing.T) {
	clock := vclock.Scaled(vclock.Epoch, 200)
	u := mpi.NewUniverse(mpi.Options{Clock: clock})
	app := &countApp{size: 24, steps: 8}
	var jr jref
	gated := &stepGate{App: app, at: 2, hook: func() {
		if err := jr.get().Propose([]string{"h1", "h3", "h2"}); err != nil {
			t.Errorf("Propose: %v", err)
		}
	}}
	j, err := Start(Options{Universe: u, App: gated, InitialHosts: hosts("h", 3)})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	jr.set(j)
	result, err := j.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	checkResult(t, result, app.size, app.steps)
	if committed, aborted := j.Resizes(); committed != 0 || aborted != 0 {
		t.Fatalf("resizes = %d/%d, want none", committed, aborted)
	}
}

// TestDrainPollDefault exercises the virtual-time drain pacing: a slow
// non-root rank must not wedge the root's drain loop.
func TestDrainPollDefault(t *testing.T) {
	clock := vclock.Scaled(vclock.Epoch, 500)
	u := mpi.NewUniverse(mpi.Options{Clock: clock})
	app := &slowApp{countApp: countApp{size: 24, steps: 6}, clock: clock, delay: 5 * time.Millisecond}
	var jr jref
	gated := &stepGate{App: app, at: 2, hook: func() {
		if err := jr.get().Propose(hosts("h", 4)); err != nil {
			t.Errorf("Propose: %v", err)
		}
	}}
	j, err := Start(Options{
		Universe: u, App: gated, InitialHosts: hosts("h", 2),
		DrainPoll: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	jr.set(j)
	result, err := j.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	checkResult(t, result, app.size, app.steps)
}

// slowApp delays every non-root step so drains arrive staggered.
type slowApp struct {
	countApp
	clock vclock.Clock
	delay time.Duration
}

func (a *slowApp) Step(rc *Rank, shard []byte) ([]byte, error) {
	if rc.Rank() != 0 {
		a.clock.Sleep(a.delay)
	}
	return a.countApp.Step(rc, shard)
}
