package workload

import (
	"fmt"
	"math"

	"autoresched/internal/hpcm"
	"autoresched/internal/livemig"
	"autoresched/internal/schema"
)

// JacobiConfig parameterises a migration-enabled 2-D Jacobi relaxation — the
// classic iterative MPI kernel, here as a second realistic workload beside
// test_tree: long-running, checkpointable at iteration boundaries, with a
// large contiguous memory state (the grid) that migrates lazily.
type JacobiConfig struct {
	// N is the interior grid dimension (the full grid is (N+2)^2 with
	// fixed boundaries).
	N int
	// Iters is the number of relaxation sweeps.
	Iters int
	// PollEvery inserts a poll-point every so many iterations; zero
	// selects 1.
	PollEvery int
	// WorkPerCell is the CPU cost per cell per sweep, in host work units.
	WorkPerCell float64
	// Hot is the boundary temperature applied along the top edge.
	Hot float64
	// Paged stores the grid in a livemig.Pages region (one page per grid
	// row) written through the change-suppressing paged API, making the run
	// eligible for iterative-precopy live migration. The sweep is bit-exact
	// with the flat-grid path and JacobiReference.
	Paged bool
	// OnResidual, if set, receives the residual at every poll boundary.
	OnResidual func(iter int, residual float64)
}

func (cfg JacobiConfig) withDefaults() JacobiConfig {
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = 1
	}
	if cfg.Hot == 0 {
		cfg.Hot = 100
	}
	return cfg
}

// TotalWork estimates the run's CPU cost in work units.
func (cfg JacobiConfig) TotalWork() float64 {
	return float64(cfg.N) * float64(cfg.N) * cfg.WorkPerCell * float64(cfg.Iters)
}

// Schema builds the application schema for the run.
func (cfg JacobiConfig) Schema(refSpeed float64) *schema.Schema {
	gridBytes := int64(cfg.N+2) * int64(cfg.N+2) * 8
	return &schema.Schema{
		Name:            "jacobi",
		Characteristics: []schema.Characteristic{schema.ComputeIntensive, schema.DataIntensive},
		CommBytes:       gridBytes + 4096,
		LocalDataBytes:  gridBytes,
		Estimate: schema.Estimate{
			Seconds:  cfg.TotalWork() / refSpeed,
			CPUSpeed: refSpeed,
		},
	}
}

// jacobiState is the eager execution state; the grid itself is lazy.
type jacobiState struct {
	Iter     int
	Residual float64
}

// Jacobi returns the migration-enabled application body.
func Jacobi(cfg JacobiConfig) hpcm.Main {
	cfg = cfg.withDefaults()
	return func(ctx *hpcm.Context) error {
		if cfg.N <= 0 || cfg.Iters <= 0 {
			return fmt.Errorf("workload: bad jacobi config %+v", cfg)
		}
		if cfg.Paged {
			return jacobiPaged(ctx, cfg)
		}
		var st jacobiState
		var grid []float64
		if err := ctx.Register("state", &st); err != nil {
			return err
		}
		if err := ctx.RegisterLazy("grid", &grid); err != nil {
			return err
		}
		side := cfg.N + 2
		if ctx.Resumed() {
			if err := ctx.Await("grid"); err != nil {
				return err
			}
		} else {
			grid = newJacobiGrid(cfg.N, cfg.Hot)
		}
		ctx.SetMemory(int64(len(grid))*8 + 1<<20)

		sweepWork := float64(cfg.N) * float64(cfg.N) * cfg.WorkPerCell
		next := make([]float64, len(grid))
		for st.Iter < cfg.Iters {
			if err := ctx.Compute(sweepWork * float64(min(cfg.PollEvery, cfg.Iters-st.Iter))); err != nil {
				return err
			}
			for k := 0; k < cfg.PollEvery && st.Iter < cfg.Iters; k++ {
				copy(next, grid)
				st.Residual = 0
				for i := 1; i <= cfg.N; i++ {
					for j := 1; j <= cfg.N; j++ {
						idx := i*side + j
						v := 0.25 * (grid[idx-1] + grid[idx+1] + grid[idx-side] + grid[idx+side])
						if d := math.Abs(v - grid[idx]); d > st.Residual {
							st.Residual = d
						}
						next[idx] = v
					}
				}
				grid, next = next, grid
				st.Iter++
			}
			if cfg.OnResidual != nil {
				cfg.OnResidual(st.Iter, st.Residual)
			}
			if err := ctx.PollPoint(fmt.Sprintf("iter-%d", st.Iter)); err != nil {
				return err
			}
		}
		return nil
	}
}

// jacobiPaged is the Paged=true body: the grid lives in a livemig.Pages
// region sized one row per page, so the per-sweep dirty set is exactly the
// rows the stencil changed — the signal the precopy driver's convergence
// rule feeds on.
func jacobiPaged(ctx *hpcm.Context, cfg JacobiConfig) error {
	var st jacobiState
	if err := ctx.Register("state", &st); err != nil {
		return err
	}
	side := cfg.N + 2
	pg, err := livemig.NewPages(side*side*8, side*8)
	if err != nil {
		return err
	}
	if err := ctx.RegisterPages("grid", pg); err != nil {
		return err
	}
	if ctx.Resumed() {
		if err := ctx.Await("grid"); err != nil {
			return err
		}
	} else {
		hot := make([]float64, side)
		for j := range hot {
			hot[j] = cfg.Hot
		}
		pg.WriteFloat64s(0, hot)
	}
	ctx.SetMemory(int64(pg.Len()) + 1<<20)

	sweepWork := float64(cfg.N) * float64(cfg.N) * cfg.WorkPerCell
	prev := make([]float64, side)
	cur := make([]float64, side)
	nxt := make([]float64, side)
	out := make([]float64, side)
	for st.Iter < cfg.Iters {
		if err := ctx.Compute(sweepWork * float64(min(cfg.PollEvery, cfg.Iters-st.Iter))); err != nil {
			return err
		}
		for k := 0; k < cfg.PollEvery && st.Iter < cfg.Iters; k++ {
			st.Residual = jacobiPagedSweep(pg, cfg.N, prev, cur, nxt, out)
			st.Iter++
		}
		if cfg.OnResidual != nil {
			cfg.OnResidual(st.Iter, st.Residual)
		}
		if err := ctx.PollPoint(fmt.Sprintf("iter-%d", st.Iter)); err != nil {
			return err
		}
	}
	return nil
}

// jacobiPagedSweep runs one in-place relaxation sweep over the paged grid
// using three rotating row buffers, so each new row is computed from the
// previous sweep's values even though rows are overwritten as it goes. The
// caller supplies the four side-length scratch rows. Addition order matches
// JacobiReference (left+right+up+down), keeping the two paths bit-identical.
func jacobiPagedSweep(pg *livemig.Pages, n int, prev, cur, nxt, out []float64) float64 {
	side := n + 2
	pg.ReadFloat64s(0, prev)
	pg.ReadFloat64s(side, cur)
	var residual float64
	for i := 1; i <= n; i++ {
		pg.ReadFloat64s((i+1)*side, nxt)
		out[0] = cur[0]
		out[side-1] = cur[side-1]
		for j := 1; j <= n; j++ {
			v := 0.25 * (cur[j-1] + cur[j+1] + prev[j] + nxt[j])
			if d := math.Abs(v - cur[j]); d > residual {
				residual = d
			}
			out[j] = v
		}
		pg.WriteFloat64s(i*side, out)
		// The old prev buffer becomes scratch for the next row read.
		prev, cur, nxt = cur, nxt, prev
	}
	return residual
}

// newJacobiGrid builds the initial grid: zero interior, Hot along the top
// boundary row.
func newJacobiGrid(n int, hot float64) []float64 {
	side := n + 2
	grid := make([]float64, side*side)
	for j := 0; j < side; j++ {
		grid[j] = hot
	}
	return grid
}

// JacobiReference runs the same relaxation without the runtime, for
// verifying migrated/recovered runs bit for bit.
func JacobiReference(cfg JacobiConfig) (finalResidual float64, checksum float64) {
	cfg = cfg.withDefaults()
	side := cfg.N + 2
	grid := newJacobiGrid(cfg.N, cfg.Hot)
	next := make([]float64, len(grid))
	var residual float64
	for it := 0; it < cfg.Iters; it++ {
		copy(next, grid)
		residual = 0
		for i := 1; i <= cfg.N; i++ {
			for j := 1; j <= cfg.N; j++ {
				idx := i*side + j
				v := 0.25 * (grid[idx-1] + grid[idx+1] + grid[idx-side] + grid[idx+side])
				if d := math.Abs(v - grid[idx]); d > residual {
					residual = d
				}
				next[idx] = v
			}
		}
		grid, next = next, grid
	}
	var sum float64
	for _, v := range grid {
		sum += v
	}
	return residual, sum
}
