package workload

import (
	"fmt"
	"math"

	"autoresched/internal/hpcm"
	"autoresched/internal/schema"
)

// JacobiConfig parameterises a migration-enabled 2-D Jacobi relaxation — the
// classic iterative MPI kernel, here as a second realistic workload beside
// test_tree: long-running, checkpointable at iteration boundaries, with a
// large contiguous memory state (the grid) that migrates lazily.
type JacobiConfig struct {
	// N is the interior grid dimension (the full grid is (N+2)^2 with
	// fixed boundaries).
	N int
	// Iters is the number of relaxation sweeps.
	Iters int
	// PollEvery inserts a poll-point every so many iterations; zero
	// selects 1.
	PollEvery int
	// WorkPerCell is the CPU cost per cell per sweep, in host work units.
	WorkPerCell float64
	// Hot is the boundary temperature applied along the top edge.
	Hot float64
	// OnResidual, if set, receives the residual at every poll boundary.
	OnResidual func(iter int, residual float64)
}

func (cfg JacobiConfig) withDefaults() JacobiConfig {
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = 1
	}
	if cfg.Hot == 0 {
		cfg.Hot = 100
	}
	return cfg
}

// TotalWork estimates the run's CPU cost in work units.
func (cfg JacobiConfig) TotalWork() float64 {
	return float64(cfg.N) * float64(cfg.N) * cfg.WorkPerCell * float64(cfg.Iters)
}

// Schema builds the application schema for the run.
func (cfg JacobiConfig) Schema(refSpeed float64) *schema.Schema {
	gridBytes := int64(cfg.N+2) * int64(cfg.N+2) * 8
	return &schema.Schema{
		Name:            "jacobi",
		Characteristics: []schema.Characteristic{schema.ComputeIntensive, schema.DataIntensive},
		CommBytes:       gridBytes + 4096,
		LocalDataBytes:  gridBytes,
		Estimate: schema.Estimate{
			Seconds:  cfg.TotalWork() / refSpeed,
			CPUSpeed: refSpeed,
		},
	}
}

// jacobiState is the eager execution state; the grid itself is lazy.
type jacobiState struct {
	Iter     int
	Residual float64
}

// Jacobi returns the migration-enabled application body.
func Jacobi(cfg JacobiConfig) hpcm.Main {
	cfg = cfg.withDefaults()
	return func(ctx *hpcm.Context) error {
		if cfg.N <= 0 || cfg.Iters <= 0 {
			return fmt.Errorf("workload: bad jacobi config %+v", cfg)
		}
		var st jacobiState
		var grid []float64
		if err := ctx.Register("state", &st); err != nil {
			return err
		}
		if err := ctx.RegisterLazy("grid", &grid); err != nil {
			return err
		}
		side := cfg.N + 2
		if ctx.Resumed() {
			if err := ctx.Await("grid"); err != nil {
				return err
			}
		} else {
			grid = newJacobiGrid(cfg.N, cfg.Hot)
		}
		ctx.SetMemory(int64(len(grid))*8 + 1<<20)

		sweepWork := float64(cfg.N) * float64(cfg.N) * cfg.WorkPerCell
		next := make([]float64, len(grid))
		for st.Iter < cfg.Iters {
			if err := ctx.Compute(sweepWork * float64(min(cfg.PollEvery, cfg.Iters-st.Iter))); err != nil {
				return err
			}
			for k := 0; k < cfg.PollEvery && st.Iter < cfg.Iters; k++ {
				copy(next, grid)
				st.Residual = 0
				for i := 1; i <= cfg.N; i++ {
					for j := 1; j <= cfg.N; j++ {
						idx := i*side + j
						v := 0.25 * (grid[idx-1] + grid[idx+1] + grid[idx-side] + grid[idx+side])
						if d := math.Abs(v - grid[idx]); d > st.Residual {
							st.Residual = d
						}
						next[idx] = v
					}
				}
				grid, next = next, grid
				st.Iter++
			}
			if cfg.OnResidual != nil {
				cfg.OnResidual(st.Iter, st.Residual)
			}
			if err := ctx.PollPoint(fmt.Sprintf("iter-%d", st.Iter)); err != nil {
				return err
			}
		}
		return nil
	}
}

// newJacobiGrid builds the initial grid: zero interior, Hot along the top
// boundary row.
func newJacobiGrid(n int, hot float64) []float64 {
	side := n + 2
	grid := make([]float64, side*side)
	for j := 0; j < side; j++ {
		grid[j] = hot
	}
	return grid
}

// JacobiReference runs the same relaxation without the runtime, for
// verifying migrated/recovered runs bit for bit.
func JacobiReference(cfg JacobiConfig) (finalResidual float64, checksum float64) {
	cfg = cfg.withDefaults()
	side := cfg.N + 2
	grid := newJacobiGrid(cfg.N, cfg.Hot)
	next := make([]float64, len(grid))
	var residual float64
	for it := 0; it < cfg.Iters; it++ {
		copy(next, grid)
		residual = 0
		for i := 1; i <= cfg.N; i++ {
			for j := 1; j <= cfg.N; j++ {
				idx := i*side + j
				v := 0.25 * (grid[idx-1] + grid[idx+1] + grid[idx-side] + grid[idx+side])
				if d := math.Abs(v - grid[idx]); d > residual {
					residual = d
				}
				next[idx] = v
			}
		}
		grid, next = next, grid
	}
	var sum float64
	for _, v := range grid {
		sum += v
	}
	return residual, sum
}
