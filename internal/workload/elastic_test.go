package workload

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"autoresched/internal/malleable"
	"autoresched/internal/mpi"
	"autoresched/internal/vclock"
)

// resizeGate wraps an ElasticJacobi to fire one Propose from rank 0 at the
// start of a chosen step.
type resizeGate struct {
	*ElasticJacobi
	at   int
	once sync.Once
	hook func()
}

func (g *resizeGate) Step(rc *malleable.Rank, shard []byte) ([]byte, error) {
	if rc.Rank() == 0 && rc.Step() == g.at && g.hook != nil {
		g.once.Do(g.hook)
	}
	return g.ElasticJacobi.Step(rc, shard)
}

// jobRef hands the started *Job to the gate hook, which runs on a rank
// goroutine possibly before Start returns to the test.
type jobRef struct {
	mu sync.Mutex
	j  *malleable.Job
}

func (r *jobRef) set(j *malleable.Job) { r.mu.Lock(); r.j = j; r.mu.Unlock() }

func (r *jobRef) get() *malleable.Job {
	for {
		r.mu.Lock()
		j := r.j
		r.mu.Unlock()
		if j != nil {
			return j
		}
		runtime.Gosched()
	}
}

func elasticHosts(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("eh%d", i+1)
	}
	return out
}

// runElastic runs the app on `from` ranks, optionally resizing to `to`
// ranks at step `at` (to == 0 disables), and returns the final global
// state bytes.
func runElastic(t *testing.T, app *ElasticJacobi, from, to, at int) []byte {
	t.Helper()
	clock := vclock.Scaled(vclock.Epoch, 500)
	u := mpi.NewUniverse(mpi.Options{Clock: clock})
	var jr jobRef
	var body malleable.App = app
	if to != 0 {
		body = &resizeGate{ElasticJacobi: app, at: at, hook: func() {
			if err := jr.get().Propose(elasticHosts(to)); err != nil {
				t.Errorf("Propose %d->%d: %v", from, to, err)
			}
		}}
	}
	j, err := malleable.Start(malleable.Options{
		Universe: u, App: body, InitialHosts: elasticHosts(from),
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	jr.set(j)
	result, err := j.Wait()
	if err != nil {
		t.Fatalf("Wait (world %d->%d): %v", from, to, err)
	}
	if to != 0 {
		if w := j.World(); w != to {
			t.Fatalf("final world = %d, want %d", w, to)
		}
	}
	return result
}

// TestElasticJacobiMatchesReference: a fixed-size elastic run is
// bit-identical to the serial reference, for divisible and non-divisible
// row splits.
func TestElasticJacobiMatchesReference(t *testing.T) {
	for _, world := range []int{1, 2, 3, 5} {
		app := &ElasticJacobi{N: 13, Iters: 9}
		result := runElastic(t, app, world, 0, 0)
		sum, err := ElasticJacobiChecksum(result)
		if err != nil {
			t.Fatalf("checksum: %v", err)
		}
		_, want := JacobiReference(JacobiConfig{N: app.N, Iters: app.Iters})
		if sum != want {
			t.Errorf("world %d: checksum %v, want %v (must be bit-exact)", world, sum, want)
		}
	}
}

// TestElasticJacobiRepartitionBitExact is the repartition property test:
// decompose at N ranks, reshape to M mid-run, and the final state must be
// bit-exact with a fresh fixed M-rank run — grow, shrink, and
// non-divisible splits of a 13-row grid.
func TestElasticJacobiRepartitionBitExact(t *testing.T) {
	pairs := []struct{ from, to int }{
		{1, 3}, // grow from serial
		{3, 1}, // collapse to serial
		{2, 5}, // grow, non-divisible both sides
		{5, 2}, // shrink, non-divisible both sides
		{3, 4}, // grow by one
		{4, 3}, // shrink by one
	}
	for _, p := range pairs {
		t.Run(fmt.Sprintf("%dto%d", p.from, p.to), func(t *testing.T) {
			app := &ElasticJacobi{N: 13, Iters: 9}
			resized := runElastic(t, app, p.from, p.to, 4)
			fixed := runElastic(t, &ElasticJacobi{N: 13, Iters: 9}, p.to, 0, 0)
			if !bytes.Equal(resized, fixed) {
				t.Errorf("resized %d->%d run differs from fixed %d-rank run", p.from, p.to, p.to)
			}
			sum, err := ElasticJacobiChecksum(resized)
			if err != nil {
				t.Fatalf("checksum: %v", err)
			}
			_, want := JacobiReference(JacobiConfig{N: app.N, Iters: app.Iters})
			if sum != want {
				t.Errorf("%d->%d: checksum %v, want reference %v", p.from, p.to, sum, want)
			}
		})
	}
}

// TestElasticJacobiSplitRejectsOversizedWorld: more ranks than interior
// rows must fail, not produce empty shards.
func TestElasticJacobiSplitRejectsOversizedWorld(t *testing.T) {
	app := &ElasticJacobi{N: 4, Iters: 1}
	global, err := app.Fresh()
	if err != nil {
		t.Fatalf("Fresh: %v", err)
	}
	if _, err := app.Split(global, 5); err == nil {
		t.Fatal("Split across more ranks than rows succeeded")
	}
	if _, err := app.Split(global, 0); err == nil {
		t.Fatal("Split across zero ranks succeeded")
	}
}
