package workload

import (
	"math/rand"
	"sync"
	"time"

	"autoresched/internal/simnode"
)

// LoadOptions configures a background CPU load generator.
type LoadOptions struct {
	// Workers is the number of concurrently cycling processes.
	Workers int
	// Duty is each worker's busy fraction in (0, 1]. Workers alternate
	// Duty*Period of computation with (1-Duty)*Period of sleep, so the
	// host's steady-state load average approaches Workers*Duty.
	Duty float64
	// Period is one busy/idle cycle; zero selects 4 seconds.
	Period time.Duration
	// Jitter randomises each cycle's phase by up to the given fraction of
	// Period, desynchronising workers; zero selects 0.3.
	Jitter float64
	// Seed feeds the jitter.
	Seed int64
	// Name labels the generator's processes in the process table.
	Name string
}

// LoadGen drives a host with synthetic background load — the paper's
// "additional application, which causes a dramatic load increase".
type LoadGen struct {
	host *simnode.Host
	opts LoadOptions

	mu      sync.Mutex
	stop    chan struct{}
	procs   []*simnode.Proc
	stopped sync.WaitGroup
}

// NewLoadGen creates a generator for host. Defaults: 1 worker, duty 0.25
// (the paper's idle-workstation baseline load of ~0.25), period 4 s.
func NewLoadGen(host *simnode.Host, opts LoadOptions) *LoadGen {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.Duty <= 0 || opts.Duty > 1 {
		opts.Duty = 0.25
	}
	if opts.Period <= 0 {
		opts.Period = 4 * time.Second
	}
	if opts.Jitter == 0 {
		opts.Jitter = 0.3
	}
	if opts.Name == "" {
		opts.Name = "bgload"
	}
	return &LoadGen{host: host, opts: opts}
}

// Start launches the workers. Starting a running generator is a no-op.
func (g *LoadGen) Start() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.stop != nil {
		return
	}
	g.stop = make(chan struct{})
	clock := g.host.Clock()
	for i := 0; i < g.opts.Workers; i++ {
		g.stopped.Add(1)
		rng := rand.New(rand.NewSource(g.opts.Seed + int64(i)))
		stop := g.stop
		proc := g.host.Spawn(g.opts.Name, 2<<20)
		g.procs = append(g.procs, proc)
		go func(proc *simnode.Proc) {
			defer g.stopped.Done()
			defer proc.Exit()
			busyWork := g.opts.Duty * g.opts.Period.Seconds() * g.host.Speed()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Stop unblocks an in-flight Compute by exiting the process.
				if err := proc.Compute(busyWork); err != nil {
					return
				}
				idle := time.Duration((1 - g.opts.Duty) * float64(g.opts.Period))
				jitter := time.Duration((rng.Float64() - 0.5) * g.opts.Jitter * float64(g.opts.Period))
				if d := idle + jitter; d > 0 {
					timer := clock.NewTimer(d)
					select {
					case <-timer.C:
					case <-stop:
						timer.Stop()
						return
					}
				}
			}
		}(proc)
	}
}

// Stop halts the workers — interrupting in-flight computation and sleeps —
// and waits for them to leave the process table.
func (g *LoadGen) Stop() {
	g.mu.Lock()
	stop := g.stop
	procs := g.procs
	g.stop = nil
	g.procs = nil
	g.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	for _, p := range procs {
		p.Exit()
	}
	g.stopped.Wait()
}

// ProcTask runs a finite foreground task of the given total work on a host
// and returns a channel closed when it finishes — the "additional task"
// loaded onto the source workstation in Sections 5.2 and 5.3.
func ProcTask(host *simnode.Host, name string, work float64) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		proc := host.Spawn(name, 8<<20)
		defer proc.Exit()
		_ = proc.Compute(work)
	}()
	return done
}

// ProcBurst spawns n short-lived processes to inflate the process table
// (the "number of active processes" trigger of the Table 2 policies). They
// persist until the returned stop function is called.
func ProcBurst(host *simnode.Host, name string, n int) (stop func()) {
	procs := make([]*simnode.Proc, 0, n)
	for i := 0; i < n; i++ {
		procs = append(procs, host.Spawn(name, 1<<18))
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			for _, p := range procs {
				p.Exit()
			}
		})
	}
}
