package workload

import (
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"autoresched/internal/cluster"
	"autoresched/internal/hpcm"
	"autoresched/internal/livemig"
	"autoresched/internal/mpi"
	"autoresched/internal/simnode"
	"autoresched/internal/vclock"
)

func smallJacobi() JacobiConfig {
	return JacobiConfig{N: 24, Iters: 40, PollEvery: 4, WorkPerCell: 1}
}

func TestJacobiConvergesAndMatchesReference(t *testing.T) {
	_, mw := testRig(t)
	cfg := smallJacobi()
	var mu sync.Mutex
	residuals := map[int]float64{}
	cfg.OnResidual = func(iter int, res float64) {
		mu.Lock()
		residuals[iter] = res
		mu.Unlock()
	}
	p, err := mw.Start("jacobi", "ws1", Jacobi(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	wantRes, _ := JacobiReference(cfg)
	mu.Lock()
	defer mu.Unlock()
	got, ok := residuals[cfg.Iters]
	if !ok {
		t.Fatalf("no final residual: %v", residuals)
	}
	if math.Abs(got-wantRes) > 1e-12 {
		t.Fatalf("final residual = %v, want %v", got, wantRes)
	}
	// Relaxation must actually converge (residual decreasing).
	if first, last := residuals[cfg.PollEvery], residuals[cfg.Iters]; last >= first {
		t.Fatalf("residual not decreasing: first=%v last=%v", first, last)
	}
}

func TestJacobiSurvivesMigration(t *testing.T) {
	_, mw := testRig(t)
	cfg := smallJacobi()
	var mu sync.Mutex
	var finalRes float64
	cfg.OnResidual = func(iter int, res float64) {
		if iter == cfg.Iters {
			mu.Lock()
			finalRes = res
			mu.Unlock()
		}
	}
	p, err := mw.Start("jacobi", "ws1", Jacobi(cfg))
	if err != nil {
		t.Fatal(err)
	}
	p.Signal(hpcm.Command{DestHost: "ws2"})
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if p.Migrations() != 1 || p.Host() != "ws2" {
		t.Fatalf("migrations=%d host=%s", p.Migrations(), p.Host())
	}
	wantRes, _ := JacobiReference(cfg)
	mu.Lock()
	defer mu.Unlock()
	if math.Abs(finalRes-wantRes) > 1e-12 {
		t.Fatalf("migrated residual = %v, want %v (grid corrupted in flight?)", finalRes, wantRes)
	}
}

func TestJacobiRejectsBadConfig(t *testing.T) {
	_, mw := testRig(t)
	p, err := mw.Start("bad", "ws1", Jacobi(JacobiConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestJacobiSchema(t *testing.T) {
	cfg := smallJacobi()
	s := cfg.Schema(1000)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Name != "jacobi" || !s.Is("data") {
		t.Fatalf("schema = %+v", s)
	}
	if want := 24.0 * 24 * 1 * 40; cfg.TotalWork() != want {
		t.Fatalf("TotalWork = %v, want %v", cfg.TotalWork(), want)
	}
}

func TestJacobiPagedMatchesReferenceBitExact(t *testing.T) {
	_, mw := testRig(t)
	cfg := smallJacobi()
	cfg.Paged = true
	var mu sync.Mutex
	var finalRes float64
	cfg.OnResidual = func(iter int, res float64) {
		if iter == cfg.Iters {
			mu.Lock()
			finalRes = res
			mu.Unlock()
		}
	}
	p, err := mw.Start("jacobi", "ws1", Jacobi(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	wantRes, _ := JacobiReference(cfg)
	mu.Lock()
	defer mu.Unlock()
	if finalRes != wantRes {
		t.Fatalf("paged residual = %v, want exactly %v", finalRes, wantRes)
	}
}

// TestJacobiPagedDirtyRowsMatchStencil pins the dirty-tracking contract the
// precopy driver relies on: with one page per grid row, each sweep's dirty
// set is exactly the rows whose bit patterns the stencil changed — no
// spurious dirtying from rewriting equal values, no missed rows.
func TestJacobiPagedDirtyRowsMatchStencil(t *testing.T) {
	cfg := smallJacobi()
	side := cfg.N + 2
	pg, err := livemig.NewPages(side*side*8, side*8)
	if err != nil {
		t.Fatal(err)
	}
	hot := make([]float64, side)
	for j := range hot {
		hot[j] = 100
	}
	pg.WriteFloat64s(0, hot)

	grid := newJacobiGrid(cfg.N, 100)
	next := make([]float64, len(grid))
	prev := make([]float64, side)
	cur := make([]float64, side)
	nxt := make([]float64, side)
	out := make([]float64, side)
	for it := 1; it <= cfg.Iters; it++ {
		mark := pg.Gen()
		jacobiPagedSweep(pg, cfg.N, prev, cur, nxt, out)

		// The flat reference sweep, diffed row by row.
		copy(next, grid)
		for i := 1; i <= cfg.N; i++ {
			for j := 1; j <= cfg.N; j++ {
				idx := i*side + j
				next[idx] = 0.25 * (grid[idx-1] + grid[idx+1] + grid[idx-side] + grid[idx+side])
			}
		}
		var want []int
		for i := 0; i < side; i++ {
			for j := 0; j < side; j++ {
				if math.Float64bits(next[i*side+j]) != math.Float64bits(grid[i*side+j]) {
					want = append(want, i)
					break
				}
			}
		}
		grid, next = next, grid

		got := pg.DirtySince(mark)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: dirty rows = %v, stencil touched %v", it, got, want)
		}
		if it == 1 && !reflect.DeepEqual(got, []int{1}) {
			t.Fatalf("iter 1: dirty rows = %v, heat should only have reached row 1", got)
		}
	}
}

func TestJacobiPagedSurvivesLiveMigration(t *testing.T) {
	// The live attempt resolves at a poll-point after the driver goroutine
	// reaches its decision, so the application must have work left when that
	// happens: run ten times longer than smallJacobi and compress the clock
	// less, leaving milliseconds of wall-time slack where the driver needs
	// microseconds. A finished process cancels a pending attempt by design.
	clock := vclock.Scaled(vclock.Epoch, 500)
	cl := cluster.New(cluster.Options{Clock: clock, Bandwidth: 12.5e6})
	if _, err := cl.AddHosts("ws", 3, simnode.Config{Speed: 1e6}); err != nil {
		t.Fatal(err)
	}
	u := mpi.NewUniverse(mpi.Options{
		Clock:        clock,
		Transport:    mpi.SimTransport{Net: cl.Net()},
		SpawnLatency: 300 * time.Millisecond,
	})
	var obsMu sync.Mutex
	phases := map[string]bool{}
	mw, err := hpcm.New(hpcm.Options{
		Universe: u, Hosts: cl, Live: &livemig.Config{},
		Observer: func(ev hpcm.MigrationEvent) {
			obsMu.Lock()
			phases[ev.Phase] = true
			obsMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallJacobi()
	cfg.Iters = 400
	var mu sync.Mutex
	var finalRes float64
	cfg.Paged = true
	cfg.OnResidual = func(iter int, res float64) {
		if iter == cfg.Iters {
			mu.Lock()
			finalRes = res
			mu.Unlock()
		}
	}
	p, err := mw.Start("jacobi", "ws1", Jacobi(cfg))
	if err != nil {
		t.Fatal(err)
	}
	p.Signal(hpcm.Command{DestHost: "ws2"})
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if p.Migrations() != 1 || p.Host() != "ws2" {
		t.Fatalf("migrations=%d host=%s", p.Migrations(), p.Host())
	}
	wantRes, _ := JacobiReference(cfg)
	mu.Lock()
	gotRes := finalRes
	mu.Unlock()
	if gotRes != wantRes {
		t.Fatalf("live-migrated residual = %v, want exactly %v (paged grid corrupted in flight?)", gotRes, wantRes)
	}
	obsMu.Lock()
	defer obsMu.Unlock()
	if !phases[hpcm.PhasePrecopy] {
		t.Fatalf("live path never ran a precopy round; phases seen: %v", phases)
	}
}

func TestJacobiReferenceDeterministic(t *testing.T) {
	a1, c1 := JacobiReference(smallJacobi())
	a2, c2 := JacobiReference(smallJacobi())
	if a1 != a2 || c1 != c2 {
		t.Fatal("reference not deterministic")
	}
	if c1 <= 0 {
		t.Fatalf("checksum = %v (heat never propagated)", c1)
	}
}
