package workload

import (
	"math"
	"sync"
	"testing"

	"autoresched/internal/hpcm"
)

func smallJacobi() JacobiConfig {
	return JacobiConfig{N: 24, Iters: 40, PollEvery: 4, WorkPerCell: 1}
}

func TestJacobiConvergesAndMatchesReference(t *testing.T) {
	_, mw := testRig(t)
	cfg := smallJacobi()
	var mu sync.Mutex
	residuals := map[int]float64{}
	cfg.OnResidual = func(iter int, res float64) {
		mu.Lock()
		residuals[iter] = res
		mu.Unlock()
	}
	p, err := mw.Start("jacobi", "ws1", Jacobi(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	wantRes, _ := JacobiReference(cfg)
	mu.Lock()
	defer mu.Unlock()
	got, ok := residuals[cfg.Iters]
	if !ok {
		t.Fatalf("no final residual: %v", residuals)
	}
	if math.Abs(got-wantRes) > 1e-12 {
		t.Fatalf("final residual = %v, want %v", got, wantRes)
	}
	// Relaxation must actually converge (residual decreasing).
	if first, last := residuals[cfg.PollEvery], residuals[cfg.Iters]; last >= first {
		t.Fatalf("residual not decreasing: first=%v last=%v", first, last)
	}
}

func TestJacobiSurvivesMigration(t *testing.T) {
	_, mw := testRig(t)
	cfg := smallJacobi()
	var mu sync.Mutex
	var finalRes float64
	cfg.OnResidual = func(iter int, res float64) {
		if iter == cfg.Iters {
			mu.Lock()
			finalRes = res
			mu.Unlock()
		}
	}
	p, err := mw.Start("jacobi", "ws1", Jacobi(cfg))
	if err != nil {
		t.Fatal(err)
	}
	p.Signal(hpcm.Command{DestHost: "ws2"})
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if p.Migrations() != 1 || p.Host() != "ws2" {
		t.Fatalf("migrations=%d host=%s", p.Migrations(), p.Host())
	}
	wantRes, _ := JacobiReference(cfg)
	mu.Lock()
	defer mu.Unlock()
	if math.Abs(finalRes-wantRes) > 1e-12 {
		t.Fatalf("migrated residual = %v, want %v (grid corrupted in flight?)", finalRes, wantRes)
	}
}

func TestJacobiRejectsBadConfig(t *testing.T) {
	_, mw := testRig(t)
	p, err := mw.Start("bad", "ws1", Jacobi(JacobiConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestJacobiSchema(t *testing.T) {
	cfg := smallJacobi()
	s := cfg.Schema(1000)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Name != "jacobi" || !s.Is("data") {
		t.Fatalf("schema = %+v", s)
	}
	if want := 24.0 * 24 * 1 * 40; cfg.TotalWork() != want {
		t.Fatalf("TotalWork = %v, want %v", cfg.TotalWork(), want)
	}
}

func TestJacobiReferenceDeterministic(t *testing.T) {
	a1, c1 := JacobiReference(smallJacobi())
	a2, c2 := JacobiReference(smallJacobi())
	if a1 != a2 || c1 != c2 {
		t.Fatal("reference not deterministic")
	}
	if c1 <= 0 {
		t.Fatalf("checksum = %v (heat never propagated)", c1)
	}
}
