package workload

import (
	"sync"
	"time"

	"autoresched/internal/simnet"
	"autoresched/internal/simnode"
	"autoresched/internal/vclock"
)

// CommOptions configures a communication load generator.
type CommOptions struct {
	// Rate is the target application data rate in bytes per second per
	// direction. The achieved rate is lower if the link is shared.
	Rate float64
	// Chunk is the message size; zero selects 1 MB.
	Chunk int64
	// Bidirectional also drives traffic the other way, which is what makes
	// migration INTO the busy host slow (its receive path is contended).
	Bidirectional bool
	// CPUPerByte charges protocol-processing CPU on the receiving host,
	// in work units per byte. This is why a communication-busy
	// workstation is also a slow compute host (Table 2: the application
	// ran 1.7x slower on the communicating workstation 2 than on the free
	// workstation 4). Requires FromHost/ToHost.
	CPUPerByte float64
	// FromHost and ToHost bind the generator to the simulated hosts for
	// CPU charging.
	FromHost, ToHost *simnode.Host
}

// CommLoad keeps two hosts communicating — the paper's workstation 2 and 5,
// exchanging data at 6.71-7.78 MB/s while policies pick destinations.
type CommLoad struct {
	net   *simnet.Network
	clock vclock.Clock
	from  string
	to    string
	opts  CommOptions

	mu      sync.Mutex
	stop    chan struct{}
	stopped sync.WaitGroup
}

// NewCommLoad creates a generator between two hosts.
func NewCommLoad(clock vclock.Clock, net *simnet.Network, from, to string, opts CommOptions) *CommLoad {
	if opts.Chunk <= 0 {
		opts.Chunk = 1 << 20
	}
	if opts.Rate <= 0 {
		opts.Rate = 7e6
	}
	return &CommLoad{net: net, clock: clock, from: from, to: to, opts: opts}
}

// Start launches the traffic. Starting a running generator is a no-op.
func (c *CommLoad) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stop != nil {
		return
	}
	c.stop = make(chan struct{})
	c.stopped.Add(1)
	go c.drive(c.stop, c.from, c.to, c.opts.ToHost)
	if c.opts.Bidirectional {
		c.stopped.Add(1)
		go c.drive(c.stop, c.to, c.from, c.opts.FromHost)
	}
}

// drive pushes chunks, pacing so the average application rate approaches
// the target: each chunk "covers" chunk/rate seconds of wall time; whatever
// the transfer itself did not use is slept off. When CPUPerByte is set, the
// receiving host pays protocol-processing CPU for each chunk.
func (c *CommLoad) drive(stop chan struct{}, from, to string, recvHost *simnode.Host) {
	defer c.stopped.Done()
	var recvProc *simnode.Proc
	if c.opts.CPUPerByte > 0 && recvHost != nil {
		recvProc = recvHost.Spawn("commload-rx", 4<<20)
		defer recvProc.Exit()
	}
	interval := time.Duration(float64(c.opts.Chunk) / c.opts.Rate * float64(time.Second))
	for {
		select {
		case <-stop:
			return
		default:
		}
		start := c.clock.Now()
		if err := c.net.Transfer(from, to, c.opts.Chunk); err != nil {
			return
		}
		if recvProc != nil {
			if err := recvProc.Compute(float64(c.opts.Chunk) * c.opts.CPUPerByte); err != nil {
				return
			}
		}
		if remaining := interval - c.clock.Since(start); remaining > 0 {
			c.clock.Sleep(remaining)
		}
	}
}

// Stop halts the traffic and waits for in-flight chunks to finish.
func (c *CommLoad) Stop() {
	c.mu.Lock()
	stop := c.stop
	c.stop = nil
	c.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	c.stopped.Wait()
}
