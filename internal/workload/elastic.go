package workload

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"autoresched/internal/malleable"
)

// ElasticJacobi is the Jacobi relaxation as a malleable.App: the same
// sweep as Jacobi/JacobiReference, but over a row-block decomposition that
// can be cut for ANY world size 1..N — the first client of the
// malleability engine. Rank r of W owns interior rows
// [1 + r*N/W, 1 + (r+1)*N/W); neighbouring ranks exchange one halo row per
// sweep. Addition order matches JacobiReference (left+right+up+down), so a
// run that resizes mid-flight is bit-identical to a fixed-size run and to
// the serial reference.
type ElasticJacobi struct {
	// N is the interior grid dimension.
	N int
	// Iters is the number of relaxation sweeps.
	Iters int
	// WorkPerCell is the CPU cost per cell per sweep, in host work units.
	WorkPerCell float64
	// Hot is the top-edge boundary temperature; zero selects 100.
	Hot float64
}

func (a *ElasticJacobi) hot() float64 {
	if a.Hot == 0 {
		return 100
	}
	return a.Hot
}

// Name implements malleable.App.
func (a *ElasticJacobi) Name() string { return "elastic-jacobi" }

// Steps implements malleable.App.
func (a *ElasticJacobi) Steps() int { return a.Iters }

// jacobiGlobal is the gob-encoded global state: the full (N+2)^2 grid.
type jacobiGlobal struct {
	N    int
	Hot  float64
	Grid []float64
}

// jacobiShard is the gob-encoded per-rank state: interior rows [Lo, Hi)
// of the grid, each row side = N+2 values long.
type jacobiShard struct {
	N      int
	Hot    float64
	Lo, Hi int
	Rows   []float64
}

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(b []byte, ptr any) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(ptr)
}

// Fresh implements malleable.App: zero interior, Hot along the top row.
func (a *ElasticJacobi) Fresh() ([]byte, error) {
	if a.N <= 0 || a.Iters <= 0 {
		return nil, fmt.Errorf("workload: bad elastic jacobi config %+v", *a)
	}
	return gobEncode(jacobiGlobal{N: a.N, Hot: a.hot(), Grid: newJacobiGrid(a.N, a.hot())})
}

// Split implements malleable.App: row-block decomposition. Fails for
// world sizes the grid cannot feed (more ranks than interior rows).
func (a *ElasticJacobi) Split(global []byte, world int) ([][]byte, error) {
	var g jacobiGlobal
	if err := gobDecode(global, &g); err != nil {
		return nil, fmt.Errorf("workload: elastic jacobi global: %w", err)
	}
	if world < 1 || world > g.N {
		return nil, fmt.Errorf("workload: elastic jacobi cannot split %d rows across %d ranks", g.N, world)
	}
	side := g.N + 2
	shards := make([][]byte, world)
	for r := 0; r < world; r++ {
		lo := 1 + r*g.N/world
		hi := 1 + (r+1)*g.N/world
		sh := jacobiShard{
			N: g.N, Hot: g.Hot, Lo: lo, Hi: hi,
			Rows: append([]float64(nil), g.Grid[lo*side:hi*side]...),
		}
		b, err := gobEncode(sh)
		if err != nil {
			return nil, err
		}
		shards[r] = b
	}
	return shards, nil
}

// Merge implements malleable.App: reassemble the full grid. The boundary
// rows are reconstructed from the config (top row Hot, bottom row zero),
// exactly as newJacobiGrid laid them out.
func (a *ElasticJacobi) Merge(shards [][]byte) ([]byte, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("workload: elastic jacobi merge of no shards")
	}
	var g jacobiGlobal
	wantLo := 1
	for i, b := range shards {
		var sh jacobiShard
		if err := gobDecode(b, &sh); err != nil {
			return nil, fmt.Errorf("workload: elastic jacobi shard %d: %w", i, err)
		}
		if i == 0 {
			side := sh.N + 2
			g = jacobiGlobal{N: sh.N, Hot: sh.Hot, Grid: make([]float64, side*side)}
			for j := 0; j < side; j++ {
				g.Grid[j] = sh.Hot
			}
		}
		if sh.N != g.N || sh.Lo != wantLo || sh.Hi < sh.Lo {
			return nil, fmt.Errorf("workload: elastic jacobi shard %d covers rows [%d,%d), want start %d", i, sh.Lo, sh.Hi, wantLo)
		}
		side := g.N + 2
		if len(sh.Rows) != (sh.Hi-sh.Lo)*side {
			return nil, fmt.Errorf("workload: elastic jacobi shard %d has %d values for %d rows", i, len(sh.Rows), sh.Hi-sh.Lo)
		}
		copy(g.Grid[sh.Lo*side:], sh.Rows)
		wantLo = sh.Hi
	}
	if wantLo != g.N+1 {
		return nil, fmt.Errorf("workload: elastic jacobi shards cover rows [1,%d), want [1,%d)", wantLo, g.N+1)
	}
	return gobEncode(g)
}

// Halo tags, well below the malleability engine's reserved band.
const (
	tagHaloUp   = 11 // a rank's first row, flowing to rank-1
	tagHaloDown = 12 // a rank's last row, flowing to rank+1
)

// Step implements malleable.App: one relaxation sweep over the owned rows,
// after a halo exchange with both neighbours in the current world.
func (a *ElasticJacobi) Step(rc *malleable.Rank, shard []byte) ([]byte, error) {
	var sh jacobiShard
	if err := gobDecode(shard, &sh); err != nil {
		return nil, fmt.Errorf("workload: elastic jacobi shard: %w", err)
	}
	side := sh.N + 2
	nrows := sh.Hi - sh.Lo
	if err := rc.Compute(float64(nrows) * float64(sh.N) * a.WorkPerCell); err != nil {
		return nil, err
	}
	comm, r, w := rc.Comm(), rc.Rank(), rc.World()
	up := make([]float64, side)
	down := make([]float64, side)
	if r > 0 {
		first := sh.Rows[:side]
		if _, err := comm.SendRecv(first, r-1, tagHaloUp, &up, r-1, tagHaloDown); err != nil {
			return nil, fmt.Errorf("workload: halo with rank %d: %w", r-1, err)
		}
	} else {
		// Row 0 is the hot boundary, every column.
		for j := range up {
			up[j] = sh.Hot
		}
	}
	if r < w-1 {
		last := sh.Rows[(nrows-1)*side:]
		if _, err := comm.SendRecv(last, r+1, tagHaloDown, &down, r+1, tagHaloUp); err != nil {
			return nil, fmt.Errorf("workload: halo with rank %d: %w", r+1, err)
		}
	}
	// else: row N+1 stays the zero boundary row (down is already zero).

	next := make([]float64, len(sh.Rows))
	for i := 0; i < nrows; i++ {
		cur := sh.Rows[i*side : (i+1)*side]
		rowUp, rowDown := up, down
		if i > 0 {
			rowUp = sh.Rows[(i-1)*side : i*side]
		}
		if i < nrows-1 {
			rowDown = sh.Rows[(i+1)*side : (i+2)*side]
		}
		out := next[i*side : (i+1)*side]
		out[0], out[side-1] = cur[0], cur[side-1]
		for j := 1; j <= sh.N; j++ {
			out[j] = 0.25 * (cur[j-1] + cur[j+1] + rowUp[j] + rowDown[j])
		}
	}
	sh.Rows = next
	return gobEncode(sh)
}

// ElasticJacobiChecksum sums a merged global state in grid order — the
// same checksum JacobiReference returns, for bit-exact comparison.
func ElasticJacobiChecksum(global []byte) (float64, error) {
	var g jacobiGlobal
	if err := gobDecode(global, &g); err != nil {
		return 0, fmt.Errorf("workload: elastic jacobi global: %w", err)
	}
	var sum float64
	for _, v := range g.Grid {
		sum += v
	}
	return sum, nil
}

var _ malleable.App = (*ElasticJacobi)(nil)
