package workload

import (
	"sync"
	"testing"
	"time"

	"autoresched/internal/cluster"
	"autoresched/internal/hpcm"
	"autoresched/internal/mpi"
	"autoresched/internal/simnode"
	"autoresched/internal/vclock"
)

func testRig(t *testing.T) (*cluster.Cluster, *hpcm.Middleware) {
	t.Helper()
	clock := vclock.Scaled(vclock.Epoch, 1000)
	cl := cluster.New(cluster.Options{Clock: clock, Bandwidth: 12.5e6})
	if _, err := cl.AddHosts("ws", 3, simnode.Config{Speed: 1e6}); err != nil {
		t.Fatal(err)
	}
	u := mpi.NewUniverse(mpi.Options{
		Clock:        clock,
		Transport:    mpi.SimTransport{Net: cl.Net()},
		SpawnLatency: 300 * time.Millisecond,
	})
	mw, err := hpcm.New(hpcm.Options{Universe: u, Hosts: cl})
	if err != nil {
		t.Fatal(err)
	}
	return cl, mw
}

func smallTree() TreeConfig {
	return TreeConfig{Levels: 8, Rounds: 3, Seed: 42, WorkPerNode: 10, BytesPerNode: 8}
}

func TestTreeConfigArithmetic(t *testing.T) {
	cfg := smallTree()
	if cfg.Nodes() != 255 {
		t.Fatalf("Nodes = %d", cfg.Nodes())
	}
	if (TreeConfig{}).Nodes() != 0 {
		t.Fatal("zero config has nodes")
	}
	// 3 rounds x (3 phases + 8 sort passes) x 255 nodes x 10 units.
	want := 3.0 * (3 + 8) * 255 * 10
	if got := cfg.TotalWork(); got != want {
		t.Fatalf("TotalWork = %v, want %v", got, want)
	}
	s := cfg.Schema(1000)
	if s.Name != "test_tree" || s.Estimate.Seconds != want/1000 {
		t.Fatalf("schema = %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTestTreeComputesCorrectSums(t *testing.T) {
	_, mw := testRig(t)
	cfg := smallTree()
	var mu sync.Mutex
	got := map[int]int64{}
	cfg.OnSum = func(round int, sum int64) {
		mu.Lock()
		got[round] = sum
		mu.Unlock()
	}
	p, err := mw.Start("test_tree", "ws1", TestTree(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	want := ExpectedSums(cfg)
	mu.Lock()
	defer mu.Unlock()
	for round, sum := range want {
		if got[round] != sum {
			t.Fatalf("round %d sum = %d, want %d", round, got[round], sum)
		}
	}
}

func TestTestTreeSurvivesMigrationMidRun(t *testing.T) {
	_, mw := testRig(t)
	cfg := smallTree()
	cfg.Rounds = 4
	var mu sync.Mutex
	got := map[int]int64{}
	cfg.OnSum = func(round int, sum int64) {
		mu.Lock()
		got[round] = sum
		mu.Unlock()
	}
	p, err := mw.Start("test_tree", "ws1", TestTree(cfg))
	if err != nil {
		t.Fatal(err)
	}
	// Order a migration immediately: the first poll-point (after round 0's
	// build phase) ships the run to ws2.
	p.Signal(hpcm.Command{DestHost: "ws2"})
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if p.Migrations() != 1 || p.Host() != "ws2" {
		t.Fatalf("migrations=%d host=%s", p.Migrations(), p.Host())
	}
	want := ExpectedSums(cfg)
	mu.Lock()
	defer mu.Unlock()
	for round, sum := range want {
		if got[round] != sum {
			t.Fatalf("round %d sum = %d, want %d (state corrupted by migration?)", round, got[round], sum)
		}
	}
	if len(got) != cfg.Rounds {
		t.Fatalf("rounds completed = %d", len(got))
	}
}

func TestTestTreeRejectsBadConfig(t *testing.T) {
	_, mw := testRig(t)
	p, err := mw.Start("bad", "ws1", TestTree(TreeConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestLoadGenRaisesLoadAverage(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	host := simnode.NewHost(clock, "ws1", simnode.Config{Speed: 1000})
	gen := NewLoadGen(host, LoadOptions{Workers: 2, Duty: 1.0, Period: 2 * time.Second, Jitter: 0.001})
	gen.Start()
	defer gen.Stop()
	// Fully busy workers: run queue should reach 2 and load approach 2.
	deadline := time.Now().Add(5 * time.Second)
	for host.RunQueue() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers never became runnable")
		}
		time.Sleep(time.Millisecond)
	}
	// Advance 10 virtual minutes in steps, yielding real time after each so
	// the workers can re-enter the run queue between compute bursts.
	for i := 0; i < 600; i++ {
		clock.Advance(time.Second)
		time.Sleep(200 * time.Microsecond)
	}
	l1, _, _ := host.LoadAvg()
	if l1 < 1.4 {
		t.Fatalf("load1 = %v, want ~2 with 2 duty-1.0 workers", l1)
	}
	if host.NumProcs() != 2 {
		t.Fatalf("NumProcs = %d", host.NumProcs())
	}
	gen.Stop()
	if host.NumProcs() != 0 {
		t.Fatalf("NumProcs after stop = %d", host.NumProcs())
	}
}

func TestLoadGenDutyApproximation(t *testing.T) {
	// Modest scale and a long period: goroutine wake-up latency (real
	// milliseconds) shows up as virtual idle time proportional to the
	// scale, so keep it a small fraction of the cycle.
	clock := vclock.Scaled(vclock.Epoch, 100)
	host := simnode.NewHost(clock, "ws1", simnode.Config{Speed: 1000})
	gen := NewLoadGen(host, LoadOptions{Workers: 1, Duty: 0.25, Period: 8 * time.Second, Seed: 7})
	gen.Start()
	clock.Sleep(3 * time.Minute)
	gen.Stop()
	busy, idle := host.CPUTimes()
	frac := busy.Seconds() / (busy + idle).Seconds()
	if frac < 0.12 || frac > 0.42 {
		t.Fatalf("busy fraction = %v, want ~0.25", frac)
	}
}

func TestLoadGenStartStopIdempotent(t *testing.T) {
	clock := vclock.Scaled(vclock.Epoch, 1000)
	host := simnode.NewHost(clock, "ws1", simnode.Config{Speed: 1000})
	gen := NewLoadGen(host, LoadOptions{})
	gen.Start()
	gen.Start() // no-op
	gen.Stop()
	gen.Stop() // no-op
}

func TestProcTaskAndBurst(t *testing.T) {
	clock := vclock.Scaled(vclock.Epoch, 1000)
	host := simnode.NewHost(clock, "ws1", simnode.Config{Speed: 1000})
	done := ProcTask(host, "extra", 2000) // 2 virtual seconds
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("task never finished")
	}
	if host.NumProcs() != 0 {
		t.Fatalf("NumProcs = %d", host.NumProcs())
	}
	stop := ProcBurst(host, "filler", 160)
	if host.NumProcs() != 160 {
		t.Fatalf("NumProcs = %d", host.NumProcs())
	}
	stop()
	stop() // idempotent
	if host.NumProcs() != 0 {
		t.Fatalf("NumProcs after stop = %d", host.NumProcs())
	}
}

func TestCommLoadAchievesRoughRate(t *testing.T) {
	clock := vclock.Scaled(vclock.Epoch, 100)
	cl := cluster.New(cluster.Options{Clock: clock, Bandwidth: 12.5e6})
	if _, err := cl.AddHosts("ws", 2, simnode.Config{}); err != nil {
		t.Fatal(err)
	}
	load := NewCommLoad(clock, cl.Net(), "ws1", "ws2",
		CommOptions{Rate: 7e6, Chunk: 4 << 20, Bidirectional: true})
	start := clock.Now()
	load.Start()
	load.Start() // no-op
	clock.Sleep(60 * time.Second)
	load.Stop()
	elapsed := clock.Since(start).Seconds()
	sent, recv, err := cl.Net().Counters("ws1")
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(sent) / elapsed
	// Target 7 MB/s within generous tolerance (chunked pacing, wake-up
	// latency inflated by the clock scale).
	if rate < 3.5e6 || rate > 10e6 {
		t.Fatalf("achieved send rate = %v B/s, want ~7e6", rate)
	}
	if recv < int64(10e6) {
		t.Fatalf("bidirectional recv = %d bytes", recv)
	}
}
