// Package workload provides the applications and load generators of the
// paper's evaluation: the migration-enabled "test_tree" benchmark, the
// background CPU load that overloads the source workstation, and the
// communication load that keeps workstation 2 busy talking to workstation 5
// in the Table 2 scenario.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"autoresched/internal/hpcm"
	"autoresched/internal/livemig"
	"autoresched/internal/schema"
)

// TreeConfig parameterises test_tree: "creates binary trees with specified
// number of levels, assigns a random number to each node of the trees,
// sorts the trees and computes the sum of all the tree nodes".
type TreeConfig struct {
	// Levels is the tree depth; a tree holds 2^Levels - 1 nodes.
	Levels int
	// Rounds is how many trees are processed. Poll-points sit between
	// rounds and between the phases of a round.
	Rounds int
	// Seed feeds the per-node random values.
	Seed int64
	// WorkPerNode is the CPU cost, in host work units, each node costs in
	// each phase. It calibrates how long a round takes.
	WorkPerNode float64
	// BytesPerNode sizes the memory image for transfer accounting.
	BytesPerNode int64
	// BallastBytes adds a bulk lazy-state region of the given size,
	// controlling how much data a migration must move (the paper's
	// "estimated communication data size").
	BallastBytes int64
	// PagedBallast stores the ballast in a livemig.Pages region instead of a
	// flat lazy blob, making the run eligible for iterative-precopy live
	// migration. One page is stamped per round, so the steady-state dirty
	// rate is low and precopy converges.
	PagedBallast bool
	// OnSum, if set, receives each round's checksum.
	OnSum func(round int, sum int64)
}

// Nodes returns the per-tree node count.
func (cfg TreeConfig) Nodes() int {
	if cfg.Levels <= 0 {
		return 0
	}
	return 1<<cfg.Levels - 1
}

// TotalWork estimates the whole run's CPU cost in work units: four phases
// (build, assign, sort, sum) per round, where sorting costs Levels passes.
func (cfg TreeConfig) TotalWork() float64 {
	n := float64(cfg.Nodes())
	perRound := n*cfg.WorkPerNode*3 + n*cfg.WorkPerNode*float64(cfg.Levels)
	return perRound * float64(cfg.Rounds)
}

// Schema builds the application schema test_tree registers with, estimating
// execution time on a reference workstation of the given speed.
func (cfg TreeConfig) Schema(refSpeed float64) *schema.Schema {
	s := &schema.Schema{
		Name:            "test_tree",
		Characteristics: []schema.Characteristic{schema.ComputeIntensive},
		CommBytes:       int64(cfg.Nodes())*cfg.BytesPerNode + cfg.BallastBytes + 4096,
		Estimate: schema.Estimate{
			Seconds:  cfg.TotalWork() / refSpeed,
			CPUSpeed: refSpeed,
		},
	}
	return s
}

// treeState is the migratable memory state of a run.
type treeState struct {
	Round int
	Phase int
	Sums  []int64
}

// Phases of one round.
const (
	phaseBuild = iota
	phaseAssign
	phaseSort
	phaseSum
	phaseCount
)

var phaseNames = [...]string{"build", "assign", "sort", "sum"}

// TestTree returns the migration-enabled application body. The tree itself
// is lazy bulk state (streamed during migration while execution resumes);
// the round/phase counters and per-round checksums are eager state.
func TestTree(cfg TreeConfig) hpcm.Main {
	return func(ctx *hpcm.Context) error {
		if cfg.Levels <= 0 || cfg.Rounds <= 0 {
			return fmt.Errorf("workload: bad tree config %+v", cfg)
		}
		var st treeState
		var tree []int64
		var ballast []byte
		var paged *livemig.Pages
		if err := ctx.Register("state", &st); err != nil {
			return err
		}
		if err := ctx.RegisterLazy("tree", &tree); err != nil {
			return err
		}
		switch {
		case cfg.BallastBytes > 0 && cfg.PagedBallast:
			pg, err := livemig.NewPages(int(cfg.BallastBytes), 0)
			if err != nil {
				return err
			}
			if err := ctx.RegisterPages("ballast", pg); err != nil {
				return err
			}
			// Unlike the flat ballast, the paged region is written every
			// round, so a resumed incarnation must await it before stamping.
			if ctx.Resumed() {
				if err := ctx.Await("ballast"); err != nil {
					return err
				}
			}
			paged = pg
		case cfg.BallastBytes > 0:
			if err := ctx.RegisterLazy("ballast", &ballast); err != nil {
				return err
			}
			if !ctx.Resumed() {
				ballast = make([]byte, cfg.BallastBytes)
			}
			// Resumed incarnations deliberately do NOT await the ballast:
			// its restoration streams in parallel with resumed execution,
			// the overlap Section 5.2 and Figure 8 describe.
		}
		if ctx.Resumed() {
			if err := ctx.Await("tree"); err != nil {
				return err
			}
		}
		nodes := cfg.Nodes()
		work := cfg.WorkPerNode * float64(nodes)
		ctx.SetMemory(int64(nodes)*cfg.BytesPerNode + cfg.BallastBytes + 1<<20)

		for st.Round < cfg.Rounds {
			switch st.Phase {
			case phaseBuild:
				if err := ctx.Compute(work); err != nil {
					return err
				}
				tree = make([]int64, nodes)
			case phaseAssign:
				if err := ctx.Compute(work); err != nil {
					return err
				}
				// Deterministic per (seed, round) so checksums are
				// reproducible across migrations.
				rng := rand.New(rand.NewSource(cfg.Seed + int64(st.Round)))
				for i := range tree {
					tree[i] = int64(rng.Uint32())
				}
			case phaseSort:
				if err := ctx.Compute(work * float64(cfg.Levels)); err != nil {
					return err
				}
				sort.Slice(tree, func(i, j int) bool { return tree[i] < tree[j] })
			case phaseSum:
				if err := ctx.Compute(work); err != nil {
					return err
				}
				var sum int64
				for _, v := range tree {
					sum += v
				}
				st.Sums = append(st.Sums, sum)
				if paged != nil {
					// Stamp one page per round: enough churn for precopy to
					// have deltas to ship, sparse enough to converge.
					if words := paged.Len() / 8; words > 0 {
						w := (st.Round * (paged.PageSize() / 8)) % words
						paged.SetFloat64(w, float64(st.Round+1))
					}
				}
				if cfg.OnSum != nil {
					cfg.OnSum(st.Round, sum)
				}
			}
			// Advance the persistent cursor BEFORE the poll-point so a
			// resumed incarnation continues with the next phase instead of
			// redoing this one. A poll-point follows every phase; the paper
			// measured a 1.4 s worst-case time-to-poll-point with this
			// granularity.
			label := fmt.Sprintf("round-%d/%s", st.Round, phaseNames[st.Phase])
			st.Phase++
			if st.Phase == phaseCount {
				st.Phase = 0
				st.Round++
			}
			if err := ctx.PollPoint(label); err != nil {
				return err
			}
		}
		return nil
	}
}

// ExpectedSums computes the checksums a run must produce, for verification
// independent of where the computation executed.
func ExpectedSums(cfg TreeConfig) []int64 {
	sums := make([]int64, cfg.Rounds)
	nodes := cfg.Nodes()
	for round := 0; round < cfg.Rounds; round++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(round)))
		var sum int64
		for i := 0; i < nodes; i++ {
			sum += int64(rng.Uint32())
		}
		sums[round] = sum
	}
	return sums
}
