package cluster

import (
	"testing"
	"time"

	"autoresched/internal/simnode"
	"autoresched/internal/sysinfo"
	"autoresched/internal/vclock"
)

func TestAddHostAndLookup(t *testing.T) {
	c := New(Options{Clock: vclock.NewManual(vclock.Epoch)})
	h, err := c.AddHost("ws1", simnode.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if h.Speed() != SunBlade100.Speed {
		t.Fatalf("default speed = %v", h.Speed())
	}
	if _, err := c.AddHost("ws1", simnode.Config{}); err == nil {
		t.Fatal("duplicate host accepted")
	}
	got, ok := c.Host("ws1")
	if !ok || got != h {
		t.Fatal("Host lookup failed")
	}
	if _, ok := c.Host("nope"); ok {
		t.Fatal("phantom host found")
	}
}

func TestAddHostsBatch(t *testing.T) {
	c := New(Options{Clock: vclock.NewManual(vclock.Epoch)})
	names, err := c.AddHosts("ws", 5, simnode.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 5 || names[0] != "ws1" || names[4] != "ws5" {
		t.Fatalf("names = %v", names)
	}
	if got := c.Hosts(); len(got) != 5 || got[0] != "ws1" {
		t.Fatalf("Hosts() = %v", got)
	}
}

func TestSourceSharedAndGathering(t *testing.T) {
	c := New(Options{Clock: vclock.NewManual(vclock.Epoch)})
	if _, err := c.AddHost("ws1", simnode.Config{}); err != nil {
		t.Fatal(err)
	}
	src, ok := c.Source("ws1")
	if !ok {
		t.Fatal("no source")
	}
	src2, _ := c.Source("ws1")
	if src != src2 {
		t.Fatal("sources not shared")
	}
	snap, err := sysinfo.NewSensor(src).Gather()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Host != "ws1" || snap.MemTotal != SunBlade100.MemTotal {
		t.Fatalf("snapshot = %+v", snap)
	}
	if _, ok := c.Source("ghost"); ok {
		t.Fatal("phantom source")
	}
}

func TestAttachBindsProcesses(t *testing.T) {
	c := New(Options{Clock: vclock.Scaled(vclock.Epoch, 200)})
	h, err := c.AddHost("ws1", simnode.Config{Speed: 1000})
	if err != nil {
		t.Fatal(err)
	}
	hp, err := c.Attach("ws1", "app", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if hp.PID() == 0 || hp.Started().Before(vclock.Epoch) {
		t.Fatalf("proc identity: pid=%d started=%v", hp.PID(), hp.Started())
	}
	if h.NumProcs() != 1 {
		t.Fatalf("NumProcs = %d", h.NumProcs())
	}
	start := c.Clock().Now()
	if err := hp.Compute(1000); err != nil { // one virtual second
		t.Fatal(err)
	}
	if d := c.Clock().Since(start); d < 500*time.Millisecond {
		t.Fatalf("compute charged only %v", d)
	}
	hp.Exit()
	if h.NumProcs() != 0 {
		t.Fatalf("NumProcs after exit = %d", h.NumProcs())
	}
	if _, err := c.Attach("ghost", "app", 0); err == nil {
		t.Fatal("attach to unknown host succeeded")
	}
}

func TestNetworkWired(t *testing.T) {
	c := New(Options{Clock: vclock.Scaled(vclock.Epoch, 200), Bandwidth: 1e6})
	if _, err := c.AddHosts("ws", 2, simnode.Config{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Net().Transfer("ws1", "ws2", 1000); err != nil {
		t.Fatal(err)
	}
	sent, _, err := c.Net().Counters("ws1")
	if err != nil || sent != 1000 {
		t.Fatalf("sent = %d, %v", sent, err)
	}
}
