// Package cluster assembles simulated hosts and a simulated interconnect
// into the testbed the experiments run on — the stand-in for the paper's
// 64-node Sun Blade 100 cluster on 100 Mbps Ethernet. It also adapts the
// host model to the interfaces the upper layers consume: sysinfo sources
// for the monitors and an hpcm.HostBinder for migration-enabled processes.
package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"autoresched/internal/hpcm"
	"autoresched/internal/simnet"
	"autoresched/internal/simnode"
	"autoresched/internal/sysinfo"
	"autoresched/internal/vclock"
)

// SunBlade100 approximates the paper's workstation: one 500 MHz
// UltraSPARC-IIe with 128 MB of memory. Speed is in abstract work units per
// second; 500e6 makes one unit one cycle.
var SunBlade100 = simnode.Config{
	Speed:    500e6,
	MemTotal: 128 << 20,
	MemBase:  24 << 20,
}

// Options configures a cluster.
type Options struct {
	// Clock drives all hosts and the network; nil selects the real clock.
	Clock vclock.Clock
	// Bandwidth is the NIC capacity in bytes/s; zero selects 100 Mbps.
	Bandwidth float64
	// Latency is the network one-way latency.
	Latency time.Duration
}

// Cluster is a set of simulated hosts joined by a simulated network.
type Cluster struct {
	clock vclock.Clock
	net   *simnet.Network

	mu      sync.Mutex
	hosts   map[string]*simnode.Host
	sources map[string]*sysinfo.SimSource
}

// New creates an empty cluster.
func New(opts Options) *Cluster {
	if opts.Clock == nil {
		opts.Clock = vclock.Real()
	}
	return &Cluster{
		clock: opts.Clock,
		net: simnet.New(opts.Clock, simnet.Options{
			DefaultBandwidth: opts.Bandwidth,
			Latency:          opts.Latency,
		}),
		hosts:   make(map[string]*simnode.Host),
		sources: make(map[string]*sysinfo.SimSource),
	}
}

// Clock returns the cluster clock.
func (c *Cluster) Clock() vclock.Clock { return c.clock }

// Net returns the simulated network.
func (c *Cluster) Net() *simnet.Network { return c.net }

// AddHost creates a host. A zero Config gets Sun Blade 100 characteristics.
func (c *Cluster) AddHost(name string, cfg simnode.Config) (*simnode.Host, error) {
	if cfg == (simnode.Config{}) {
		cfg = SunBlade100
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.hosts[name]; ok {
		return nil, fmt.Errorf("cluster: host %q already exists", name)
	}
	if err := c.net.AddHost(name); err != nil {
		return nil, err
	}
	h := simnode.NewHost(c.clock, name, cfg)
	c.hosts[name] = h
	c.sources[name] = sysinfo.NewSimSource(h, c.net)
	return h, nil
}

// AddHosts creates n hosts named prefix1..prefixN with identical
// characteristics and returns their names.
func (c *Cluster) AddHosts(prefix string, n int, cfg simnode.Config) ([]string, error) {
	names := make([]string, 0, n)
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("%s%d", prefix, i)
		if _, err := c.AddHost(name, cfg); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	return names, nil
}

// Host returns a host by name.
func (c *Cluster) Host(name string) (*simnode.Host, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.hosts[name]
	return h, ok
}

// Hosts returns all host names, sorted.
func (c *Cluster) Hosts() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.hosts))
	for name := range c.hosts {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Source returns the host's system-information source. The source is
// shared, so windowed sensors on top of it see consistent counters.
func (c *Cluster) Source(name string) (*sysinfo.SimSource, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.sources[name]
	return s, ok
}

// HostCheck vets a host for dynamic process creation against the simulated
// network's liveness state — the cluster-backed implementation of
// mpi.Options.HostCheck, so spawning onto a crashed host fails with a typed
// mid-spawn error instead of a later transport error.
func (c *Cluster) HostCheck(host string) error {
	if _, ok := c.Host(host); !ok {
		return fmt.Errorf("cluster: unknown host %q", host)
	}
	if c.net.HostDown(host) {
		return simnet.ErrHostDown
	}
	return nil
}

// Attach implements hpcm.HostBinder: migration-enabled processes join the
// simulated host's process table and charge CPU through it.
func (c *Cluster) Attach(host, procName string, memory int64) (hpcm.HostProc, error) {
	h, ok := c.Host(host)
	if !ok {
		return nil, fmt.Errorf("cluster: unknown host %q", host)
	}
	return h.Spawn(procName, memory), nil
}

var _ hpcm.HostBinder = (*Cluster)(nil)
