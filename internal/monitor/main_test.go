package monitor

import (
	"testing"

	"autoresched/internal/testutil"
)

// TestMain fails the package's test run if goroutines started by the tests
// are still alive after they finish — servers, pollers and batchers must all
// shut down cleanly.
func TestMain(m *testing.M) { testutil.VerifyTestMain(m) }
