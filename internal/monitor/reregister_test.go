package monitor

import (
	"errors"
	"sync"
	"testing"

	"autoresched/internal/metrics"
	"autoresched/internal/proto"
	"autoresched/internal/simnode"
	"autoresched/internal/sysinfo"
	"autoresched/internal/vclock"
)

// amnesiacReporter forgets its hosts on demand, like a restarted registry.
type amnesiacReporter struct {
	mu        sync.Mutex
	known     map[string]bool
	registers int
	statuses  int
}

func (a *amnesiacReporter) RegisterHost(host string, static proto.StaticInfo) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.known == nil {
		a.known = make(map[string]bool)
	}
	a.known[host] = true
	a.registers++
	return nil
}

func (a *amnesiacReporter) ReportStatus(host string, st proto.Status) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.known[host] {
		return errors.New("proto: remote error: registry: status from unregistered host \"" + host + "\"")
	}
	a.statuses++
	return nil
}

func (a *amnesiacReporter) UnregisterHost(host string) error { return nil }

func (a *amnesiacReporter) forget() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.known = nil
}

func (a *amnesiacReporter) counts() (int, int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.registers, a.statuses
}

func TestCycleReregistersAfterRegistryRestart(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	host := simnode.NewHost(clock, "ws1", simnode.Config{Speed: 1000})
	rep := &amnesiacReporter{}
	ctr := metrics.NewCounters()
	m, err := newFromConfig(Config{
		Host:     "ws1",
		Source:   sysinfo.NewSimSource(host, nil),
		Reporter: rep,
		Clock:    clock,
		Counters: ctr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.register(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cycle(); err != nil {
		t.Fatal(err)
	}

	// The registry "restarts": its soft state is gone. The next cycle's
	// refresh is rejected, the monitor re-registers and retries, and the
	// cycle still succeeds.
	rep.forget()
	if _, err := m.Cycle(); err != nil {
		t.Fatalf("cycle after registry restart: %v", err)
	}
	regs, stats := rep.counts()
	if regs != 2 {
		t.Fatalf("registers = %d, want 2 (initial + recovery)", regs)
	}
	if stats != 2 {
		t.Fatalf("statuses = %d, want 2", stats)
	}
	if ctr.Get(metrics.CtrReregisters) != 1 {
		t.Fatalf("reregister counter = %d", ctr.Get(metrics.CtrReregisters))
	}
}
