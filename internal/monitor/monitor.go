// Package monitor implements the per-host monitoring entity (Sections 3.1
// and 4, Figure 2): a system-information gathering engine, the monitoring
// information database, the rule evaluator, and the local state machine
// with a per-state monitoring frequency. Each cycle the monitor gathers a
// snapshot, decides the host state through its rule engine, stores the
// sample, and pushes a soft-state refresh to its registry/scheduler.
package monitor

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"autoresched/internal/metrics"
	"autoresched/internal/proto"
	"autoresched/internal/rules"
	"autoresched/internal/sysinfo"
	"autoresched/internal/vclock"
)

// Reporter is where registrations and status refreshes go: the in-process
// registry, or a proto client speaking the XML protocol to a remote one.
type Reporter interface {
	RegisterHost(host string, static proto.StaticInfo) error
	ReportStatus(host string, status proto.Status) error
	UnregisterHost(host string) error
}

// Charger optionally charges the monitor's own gathering cost to the host
// it runs on, so the rescheduler's overhead is visible in the host's load —
// the quantity Figure 5 measures.
type Charger interface {
	Compute(work float64) error
}

// Config configures a monitor.
type Config struct {
	// Host is the monitored host's name. Required.
	Host string
	// Source provides raw system information. Required.
	Source sysinfo.Source
	// Engine evaluates the host state; nil uses a permanently-free engine.
	Engine *rules.Engine
	// Reporter receives registration and refreshes; nil disables reporting
	// (the monitor still maintains local state).
	Reporter Reporter
	// Clock drives the cycle; nil selects the real clock.
	Clock vclock.Clock
	// Frequencies maps each state to its monitoring frequency (Section 4:
	// "We configure a time interval as Monitoring Frequency for each
	// state"). Missing states use DefaultFrequency.
	Frequencies map[rules.State]time.Duration
	// DefaultFrequency is the fallback cycle period; zero selects 10 s,
	// the sampling interval of the paper's experiments.
	DefaultFrequency time.Duration
	// HistorySize bounds the monitoring information database; zero
	// selects 256 samples.
	HistorySize int
	// Charger, if set, is charged GatherCost work units per cycle.
	Charger Charger
	// GatherCost is the CPU cost of one gathering cycle in host work
	// units (the scripts the paper fires are not free).
	GatherCost float64
	// CommandAddr is the local commander's endpoint, sent at registration
	// so the registry can order migrations.
	CommandAddr string
	// Software lists locally installed packages for requirement matching.
	Software []string
	// Counters, when set, receives the monitor/* control-plane counters.
	Counters *metrics.Counters
	// Metrics, when set, receives the monitor's latency histograms
	// (monitor/cycle_seconds, virtual-clock duration of one
	// gather-evaluate-report cycle). Nil disables.
	Metrics *metrics.Registry
}

// MetricCycleSeconds is the virtual-time duration of one monitor cycle —
// the per-host rescheduler overhead Figure 5 measures.
const MetricCycleSeconds = "monitor/cycle_seconds"

// Sample is one monitoring-database record.
type Sample struct {
	Snap  sysinfo.Snapshot
	Grade rules.Grade
	State rules.State
}

// Monitor is the monitoring entity of one host.
type Monitor struct {
	cfg    Config
	sensor *sysinfo.Sensor
	clock  vclock.Clock

	mu      sync.Mutex
	state   rules.State
	history []Sample
	cycles  int
	lastErr error
	stop    chan struct{}
	stopped chan struct{}
}

// newFromConfig creates a monitor from an assembled Config, applying
// defaults. NewMonitor is the public constructor; the former exported
// Config-style New is gone.
func newFromConfig(cfg Config) (*Monitor, error) {
	if cfg.Host == "" {
		return nil, errors.New("monitor: Config.Host is required")
	}
	if cfg.Source == nil {
		return nil, errors.New("monitor: Config.Source is required")
	}
	if cfg.Engine == nil {
		cfg.Engine = rules.NewEngine(nil)
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real()
	}
	if cfg.DefaultFrequency <= 0 {
		cfg.DefaultFrequency = 10 * time.Second
	}
	if cfg.HistorySize <= 0 {
		cfg.HistorySize = 256
	}
	return &Monitor{
		cfg:    cfg,
		sensor: sysinfo.NewSensor(cfg.Source),
		clock:  cfg.Clock,
		state:  rules.Free,
	}, nil
}

// Start registers the host (one-time static information) and begins the
// monitoring loop.
func (m *Monitor) Start() error {
	m.mu.Lock()
	if m.stop != nil {
		m.mu.Unlock()
		return errors.New("monitor: already started")
	}
	m.stop = make(chan struct{})
	m.stopped = make(chan struct{})
	stop := m.stop
	m.mu.Unlock()

	if m.cfg.Reporter != nil {
		if err := m.register(); err != nil {
			return fmt.Errorf("monitor: registration: %w", err)
		}
	}
	go m.loop(stop)
	return nil
}

// register pushes the host's one-time static information to the reporter.
func (m *Monitor) register() error {
	st := m.cfg.Source.Static()
	static := proto.StaticInfo{
		Addr:     m.cfg.CommandAddr,
		OS:       st.OS,
		Arch:     st.Arch,
		CPUSpeed: st.CPUSpeed,
		MemTotal: st.MemTotal,
		Software: m.cfg.Software,
	}
	return m.cfg.Reporter.RegisterHost(m.cfg.Host, static)
}

// Stop halts the loop and unregisters the host.
func (m *Monitor) Stop() {
	m.mu.Lock()
	stop := m.stop
	stopped := m.stopped
	m.stop = nil
	m.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-stopped
	if m.cfg.Reporter != nil {
		_ = m.cfg.Reporter.UnregisterHost(m.cfg.Host)
	}
}

func (m *Monitor) loop(stop chan struct{}) {
	defer close(m.stopped)
	for {
		m.Cycle()
		timer := m.clock.NewTimer(m.frequency())
		select {
		case <-timer.C:
		case <-stop:
			timer.Stop()
			return
		}
	}
}

// frequency returns the monitoring frequency of the current state.
func (m *Monitor) frequency() time.Duration {
	m.mu.Lock()
	state := m.state
	m.mu.Unlock()
	if d, ok := m.cfg.Frequencies[state]; ok && d > 0 {
		return d
	}
	return m.cfg.DefaultFrequency
}

// Cycle performs one gather-evaluate-report cycle and returns the sample.
// The loop calls it periodically; tests and the pull-mode registry may call
// it directly.
func (m *Monitor) Cycle() (Sample, error) {
	if m.cfg.Metrics != nil {
		start := m.clock.Now()
		defer func() {
			m.cfg.Metrics.Histogram(MetricCycleSeconds).Observe(m.clock.Now().Sub(start).Seconds())
		}()
	}
	if m.cfg.Charger != nil && m.cfg.GatherCost > 0 {
		// The gathering scripts consume CPU on the monitored host; this is
		// the rescheduler overhead of Figure 5.
		if err := m.cfg.Charger.Compute(m.cfg.GatherCost); err != nil {
			return Sample{}, fmt.Errorf("monitor: charge: %w", err)
		}
	}
	snap, err := m.sensor.Gather()
	if err != nil {
		m.recordErr(err)
		return Sample{}, err
	}
	grade, err := m.cfg.Engine.Evaluate(snap)
	if err != nil {
		m.recordErr(err)
		return Sample{}, err
	}
	sample := Sample{Snap: snap, Grade: grade, State: grade.State()}

	m.mu.Lock()
	m.state = sample.State
	m.cycles++
	m.history = append(m.history, sample)
	if len(m.history) > m.cfg.HistorySize {
		m.history = m.history[len(m.history)-m.cfg.HistorySize:]
	}
	m.lastErr = nil
	m.mu.Unlock()

	if m.cfg.Reporter != nil {
		status := StatusFromSample(sample)
		err := m.cfg.Reporter.ReportStatus(m.cfg.Host, status)
		if err != nil && isUnregistered(err) {
			// The registry restarted and lost its soft state (Section 3.1's
			// soft-state registration makes this survivable): re-register
			// the host and retry the refresh once.
			if rerr := m.register(); rerr == nil {
				m.cfg.Counters.Inc(metrics.CtrReregisters)
				err = m.cfg.Reporter.ReportStatus(m.cfg.Host, status)
			}
		}
		if err != nil {
			m.recordErr(err)
			return sample, err
		}
	}
	return sample, nil
}

// isUnregistered matches the registry's rejection of a status refresh from
// a host it does not know — locally or through the XML protocol's remote
// error wrapping.
func isUnregistered(err error) bool {
	return err != nil && strings.Contains(err.Error(), "unregistered host")
}

func (m *Monitor) recordErr(err error) {
	m.mu.Lock()
	m.lastErr = err
	m.mu.Unlock()
}

// State returns the current locally decided state.
func (m *Monitor) State() rules.State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

// History returns the monitoring information database (oldest first).
func (m *Monitor) History() []Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Sample(nil), m.history...)
}

// Last returns the most recent sample.
func (m *Monitor) Last() (Sample, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.history) == 0 {
		return Sample{}, false
	}
	return m.history[len(m.history)-1], true
}

// Cycles reports how many gather cycles have completed.
func (m *Monitor) Cycles() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cycles
}

// Err returns the most recent cycle error, if the last cycle failed.
func (m *Monitor) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastErr
}

// StatusFromSample converts a sample into the protocol's status payload.
func StatusFromSample(s Sample) proto.Status {
	return proto.Status{
		State:       s.State.String(),
		Grade:       float64(s.Grade),
		Load1:       s.Snap.Load1,
		Load5:       s.Snap.Load5,
		CPUUtilPct:  s.Snap.CPUUtilPct,
		NumProcs:    s.Snap.NumProcs,
		Sockets:     s.Snap.Sockets,
		NetInMBps:   s.Snap.NetRecvBps / 1e6,
		NetOutMBps:  s.Snap.NetSentBps / 1e6,
		MemAvailPct: s.Snap.MemAvailPct,
		MemAvail:    s.Snap.MemAvail,
	}
}
