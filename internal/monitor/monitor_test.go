package monitor

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"autoresched/internal/proto"
	"autoresched/internal/rules"
	"autoresched/internal/simnode"
	"autoresched/internal/sysinfo"
	"autoresched/internal/vclock"
)

// fakeReporter records what the monitor pushes.
type fakeReporter struct {
	mu         sync.Mutex
	registered []string
	statuses   []proto.Status
	unregs     []string
	failNext   error
}

func (f *fakeReporter) RegisterHost(host string, static proto.StaticInfo) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.registered = append(f.registered, host+"@"+static.Addr)
	return nil
}

func (f *fakeReporter) ReportStatus(host string, st proto.Status) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failNext != nil {
		err := f.failNext
		f.failNext = nil
		return err
	}
	f.statuses = append(f.statuses, st)
	return nil
}

func (f *fakeReporter) UnregisterHost(host string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.unregs = append(f.unregs, host)
	return nil
}

func (f *fakeReporter) statusCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.statuses)
}

func monRig(t *testing.T) (*simnode.Host, *fakeReporter, *Monitor, *vclock.Manual) {
	t.Helper()
	clock := vclock.NewManual(vclock.Epoch)
	host := simnode.NewHost(clock, "ws1", simnode.Config{Speed: 1000})
	rep := &fakeReporter{}
	m, err := newFromConfig(Config{
		Host:        "ws1",
		Source:      sysinfo.NewSimSource(host, nil),
		Engine:      loadEngine(t),
		Reporter:    rep,
		Clock:       clock,
		CommandAddr: "cmd://ws1",
	})
	if err != nil {
		t.Fatal(err)
	}
	return host, rep, m, clock
}

func loadEngine(t *testing.T) *rules.Engine {
	t.Helper()
	e := rules.NewEngine(nil)
	err := e.Add(&rules.Rule{
		Number: 1, Name: "load", Type: rules.Simple,
		Script: "loadAvg.sh", Param: "1", Operator: rules.OpGreater,
		Busy: 1, OverLd: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	if _, err := newFromConfig(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := newFromConfig(Config{Host: "x"}); err == nil {
		t.Fatal("config without source accepted")
	}
}

func TestCycleGathersEvaluatesStores(t *testing.T) {
	_, _, m, _ := monRig(t)
	sample, err := m.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if sample.State != rules.Free {
		t.Fatalf("state = %v", sample.State)
	}
	if m.Cycles() != 1 {
		t.Fatalf("cycles = %d", m.Cycles())
	}
	last, ok := m.Last()
	if !ok || last.Snap.Host != "ws1" {
		t.Fatalf("last = %+v, %v", last, ok)
	}
	if len(m.History()) != 1 {
		t.Fatal("history empty")
	}
}

func TestStateFollowsLoad(t *testing.T) {
	host, _, m, clock := monRig(t)
	// Drive load above 2 with three always-runnable procs.
	var procs []*simnode.Proc
	for i := 0; i < 3; i++ {
		p := host.Spawn("burn", 0)
		procs = append(procs, p)
		go func(p *simnode.Proc) { _ = p.Compute(1e12) }(p)
	}
	defer func() {
		for _, p := range procs {
			p.Exit()
		}
	}()
	for host.RunQueue() < 3 {
		time.Sleep(time.Millisecond)
	}
	clock.Advance(10 * time.Minute)
	if _, err := m.Cycle(); err != nil {
		t.Fatal(err)
	}
	if m.State() != rules.Overloaded {
		t.Fatalf("state = %v, want overloaded at load ~3", m.State())
	}
}

func TestStartLoopReportsPeriodically(t *testing.T) {
	_, rep, m, clock := monRig(t)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	defer m.Stop()
	// First cycle runs immediately.
	deadline := time.Now().Add(5 * time.Second)
	for rep.statusCount() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no initial report")
		}
		time.Sleep(time.Millisecond)
	}
	// Each 10s advance produces one more report.
	for i := 2; i <= 4; i++ {
		clock.WaitUntilWaiters(1)
		clock.Advance(10 * time.Second)
		for rep.statusCount() < i {
			if time.Now().After(deadline) {
				t.Fatalf("report %d missing (have %d)", i, rep.statusCount())
			}
			time.Sleep(time.Millisecond)
		}
	}
	m.Stop()
	m.Stop() // idempotent
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if len(rep.registered) != 1 || !strings.Contains(rep.registered[0], "ws1@cmd://ws1") {
		t.Fatalf("registered = %v", rep.registered)
	}
	if len(rep.unregs) != 1 || rep.unregs[0] != "ws1" {
		t.Fatalf("unregs = %v", rep.unregs)
	}
	if rep.statuses[0].State != "free" {
		t.Fatalf("status = %+v", rep.statuses[0])
	}
}

func TestPerStateFrequency(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	host := simnode.NewHost(clock, "ws1", simnode.Config{Speed: 1000})
	m, err := newFromConfig(Config{
		Host:   "ws1",
		Source: sysinfo.NewSimSource(host, nil),
		Engine: loadEngine(t),
		Clock:  clock,
		Frequencies: map[rules.State]time.Duration{
			rules.Free: 30 * time.Second,
			rules.Busy: 5 * time.Second,
		},
		DefaultFrequency: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cycle(); err != nil {
		t.Fatal(err)
	}
	if got := m.frequency(); got != 30*time.Second {
		t.Fatalf("free frequency = %v", got)
	}
}

func TestChargerChargedPerCycle(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	host := simnode.NewHost(clock, "ws1", simnode.Config{Speed: 1000})
	charger := host.Spawn("monitor", 0)
	m, err := newFromConfig(Config{
		Host:       "ws1",
		Source:     sysinfo.NewSimSource(host, nil),
		Clock:      clock,
		Charger:    charger,
		GatherCost: 50, // 50ms of CPU at speed 1000
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := m.Cycle()
		done <- err
	}()
	// The cycle blocks on the charge; advancing releases it.
	clock.WaitUntilWaiters(1)
	clock.Advance(time.Second)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if ct := charger.CPUTime(); ct < 40*time.Millisecond {
		t.Fatalf("charger CPU time = %v, want ~50ms", ct)
	}
}

func TestHistoryBounded(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	host := simnode.NewHost(clock, "ws1", simnode.Config{Speed: 1000})
	m, err := newFromConfig(Config{
		Host:        "ws1",
		Source:      sysinfo.NewSimSource(host, nil),
		Clock:       clock,
		HistorySize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := m.Cycle(); err != nil {
			t.Fatal(err)
		}
		clock.Advance(10 * time.Second)
	}
	if got := len(m.History()); got != 4 {
		t.Fatalf("history size = %d, want 4", got)
	}
}

func TestReporterErrorSurfaced(t *testing.T) {
	_, rep, m, _ := monRig(t)
	rep.failNext = errors.New("registry down")
	if _, err := m.Cycle(); err == nil {
		t.Fatal("reporter error swallowed")
	}
	if m.Err() == nil {
		t.Fatal("Err() empty after failure")
	}
	if _, err := m.Cycle(); err != nil {
		t.Fatal(err)
	}
	if m.Err() != nil {
		t.Fatalf("Err() = %v after success", m.Err())
	}
}

// TestDiskRuleEndToEnd covers the paper's disk-usage monitoring category:
// a df-style rule over the host's mount table drives the state machine.
func TestDiskRuleEndToEnd(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	host := simnode.NewHost(clock, "ws1", simnode.Config{Speed: 1000})
	host.SetMounts([]simnode.Mount{{Path: "/export", Total: 1000, Used: 400}})
	engine := rules.NewEngine(nil)
	if err := engine.Add(&rules.Rule{
		Number: 1, Name: "diskExport", Type: rules.Simple,
		Script: "diskUsedPct.sh", Param: "/export",
		Operator: rules.OpGreater, Busy: 80, OverLd: 95,
	}); err != nil {
		t.Fatal(err)
	}
	m, err := newFromConfig(Config{
		Host:   "ws1",
		Source: sysinfo.NewSimSource(host, nil),
		Engine: engine,
		Clock:  clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cycle(); err != nil {
		t.Fatal(err)
	}
	if m.State() != rules.Free {
		t.Fatalf("state at 40%% disk = %v", m.State())
	}
	host.SetMounts([]simnode.Mount{{Path: "/export", Total: 1000, Used: 900}})
	if _, err := m.Cycle(); err != nil {
		t.Fatal(err)
	}
	if m.State() != rules.Busy {
		t.Fatalf("state at 90%% disk = %v", m.State())
	}
	host.SetMounts([]simnode.Mount{{Path: "/export", Total: 1000, Used: 990}})
	if _, err := m.Cycle(); err != nil {
		t.Fatal(err)
	}
	if m.State() != rules.Overloaded {
		t.Fatalf("state at 99%% disk = %v", m.State())
	}
}

// TestMemoryRuleEndToEnd covers the memory-state monitoring category.
func TestMemoryRuleEndToEnd(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	host := simnode.NewHost(clock, "ws1", simnode.Config{Speed: 1000, MemTotal: 100 << 20, MemBase: 10 << 20})
	engine := rules.NewEngine(nil)
	if err := engine.Add(&rules.Rule{
		Number: 1, Name: "memAvail", Type: rules.Simple,
		Script: "memAvailPct.sh", Operator: rules.OpLess, Busy: 30, OverLd: 10,
	}); err != nil {
		t.Fatal(err)
	}
	m, err := newFromConfig(Config{
		Host:   "ws1",
		Source: sysinfo.NewSimSource(host, nil),
		Engine: engine,
		Clock:  clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cycle(); err != nil {
		t.Fatal(err)
	}
	if m.State() != rules.Free {
		t.Fatalf("state with 90%% free memory = %v", m.State())
	}
	hog := host.Spawn("hog", 85<<20) // available drops to 5%
	defer hog.Exit()
	if _, err := m.Cycle(); err != nil {
		t.Fatal(err)
	}
	if m.State() != rules.Overloaded {
		t.Fatalf("state with 5%% free memory = %v", m.State())
	}
}

func TestStatusFromSampleRoundTrip(t *testing.T) {
	sample := Sample{
		Snap: sysinfo.Snapshot{
			Host: "ws1", Load1: 0.97, Load5: 0.5, CPUUtilPct: 26,
			NumProcs: 42, Sockets: 7, NetSentBps: 7.2e6, NetRecvBps: 0.3e6,
			MemAvailPct: 55, MemAvail: 64 << 20,
		},
		Grade: rules.GradeBusy,
		State: rules.Busy,
	}
	st := StatusFromSample(sample)
	if st.State != "busy" || st.Load1 != 0.97 || st.NetOutMBps != 7.2 {
		t.Fatalf("status = %+v", st)
	}
	snap := st.Snapshot("ws1")
	if snap.Load1 != 0.97 || snap.NetSentBps != 7.2e6 || snap.CPUIdlePct != 74 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.NumProcs != 42 || snap.MemAvail != 64<<20 {
		t.Fatalf("snapshot = %+v", snap)
	}
}
