package monitor

import (
	"time"

	"autoresched/internal/metrics"
	"autoresched/internal/rules"
	"autoresched/internal/sysinfo"
	"autoresched/internal/vclock"
)

// Option configures a monitor built with NewMonitor, the functional-options
// construction style shared with internal/proto and internal/registry. Each
// option maps onto one Config field; see Config for semantics and defaults.
type Option func(*Config)

// NewMonitor creates a monitor for host from functional options. Host and
// source are the two required inputs, so they are positional. It is the
// only constructor.
func NewMonitor(host string, source sysinfo.Source, opts ...Option) (*Monitor, error) {
	cfg := Config{Host: host, Source: source}
	for _, o := range opts {
		o(&cfg)
	}
	return newFromConfig(cfg)
}

// WithEngine sets the rule engine deciding the host state.
func WithEngine(e *rules.Engine) Option { return func(c *Config) { c.Engine = e } }

// WithReporter sets where registrations and status refreshes go.
func WithReporter(r Reporter) Option { return func(c *Config) { c.Reporter = r } }

// WithClock sets the clock driving the monitoring cycle.
func WithClock(clock vclock.Clock) Option { return func(c *Config) { c.Clock = clock } }

// WithFrequencies sets the per-state monitoring frequencies.
func WithFrequencies(f map[rules.State]time.Duration) Option {
	return func(c *Config) { c.Frequencies = f }
}

// WithDefaultFrequency sets the fallback cycle period.
func WithDefaultFrequency(d time.Duration) Option {
	return func(c *Config) { c.DefaultFrequency = d }
}

// WithHistorySize bounds the monitoring information database.
func WithHistorySize(n int) Option { return func(c *Config) { c.HistorySize = n } }

// WithCharger charges the gathering cost to the monitored host.
func WithCharger(ch Charger, cost float64) Option {
	return func(c *Config) { c.Charger, c.GatherCost = ch, cost }
}

// WithCommandAddr sets the local commander's endpoint sent at registration.
func WithCommandAddr(addr string) Option { return func(c *Config) { c.CommandAddr = addr } }

// WithSoftware lists locally installed packages for requirement matching.
func WithSoftware(pkgs []string) Option { return func(c *Config) { c.Software = pkgs } }

// WithCounters sets the control-plane counter set.
func WithCounters(m *metrics.Counters) Option { return func(c *Config) { c.Counters = m } }

// WithMetrics sets the metrics registry receiving the monitor's latency
// histograms.
func WithMetrics(m *metrics.Registry) Option { return func(c *Config) { c.Metrics = m } }
