package sysinfo

import (
	"math"
	"testing"
	"time"

	"autoresched/internal/simnet"
	"autoresched/internal/simnode"
	"autoresched/internal/vclock"
)

func simRig(t *testing.T) (*simnode.Host, *simnet.Network, *vclock.Manual) {
	t.Helper()
	clock := vclock.NewManual(vclock.Epoch)
	host := simnode.NewHost(clock, "ws1", simnode.Config{Speed: 1000, MemTotal: 128 << 20, MemBase: 28 << 20})
	nw := simnet.New(clock, simnet.Options{DefaultBandwidth: 1e6})
	if err := nw.AddHost("ws1"); err != nil {
		t.Fatal(err)
	}
	if err := nw.AddHost("ws2"); err != nil {
		t.Fatal(err)
	}
	return host, nw, clock
}

func TestSensorFirstGatherIsBaseline(t *testing.T) {
	host, nw, _ := simRig(t)
	sensor := NewSensor(NewSimSource(host, nw))
	snap, err := sensor.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Host != "ws1" {
		t.Fatalf("host = %q", snap.Host)
	}
	if snap.Interval != 0 {
		t.Fatalf("first interval = %v, want 0", snap.Interval)
	}
	if snap.CPUIdlePct != 100 {
		t.Fatalf("first idle = %v, want 100", snap.CPUIdlePct)
	}
	if snap.MemTotal != 128<<20 || snap.MemAvail != 100<<20 {
		t.Fatalf("mem = %d avail %d", snap.MemTotal, snap.MemAvail)
	}
	if want := 100 * float64(100<<20) / float64(128<<20); math.Abs(snap.MemAvailPct-want) > 0.01 {
		t.Fatalf("MemAvailPct = %v, want %v", snap.MemAvailPct, want)
	}
}

func TestSensorWindowedCPUIdle(t *testing.T) {
	host, nw, clock := simRig(t)
	sensor := NewSensor(NewSimSource(host, nw))
	if _, err := sensor.Gather(); err != nil {
		t.Fatal(err)
	}

	// Busy for 30s of a 60s window: idle should be ~50%.
	p := host.Spawn("burn", 0)
	done := make(chan struct{})
	go func() { _ = p.Compute(30 * 1000); close(done) }()
	clock.WaitUntilWaiters(1)
	clock.Advance(30*time.Second + time.Millisecond)
	<-done
	clock.Advance(30 * time.Second)

	snap, err := sensor.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(snap.CPUIdlePct-50) > 1 {
		t.Fatalf("idle = %v, want ~50", snap.CPUIdlePct)
	}
	if math.Abs(snap.CPUUtilPct-50) > 1 {
		t.Fatalf("util = %v, want ~50", snap.CPUUtilPct)
	}
	if snap.Interval < 59*time.Second {
		t.Fatalf("interval = %v", snap.Interval)
	}
}

func TestSensorWindowedNetRates(t *testing.T) {
	host, nw, clock := simRig(t)
	sensor := NewSensor(NewSimSource(host, nw))
	if _, err := sensor.Gather(); err != nil {
		t.Fatal(err)
	}

	// Send 10 MB at 1 MB/s: 10s of transfer inside a 20s window = 0.5 MB/s.
	errc := make(chan error, 1)
	go func() { errc <- nw.Transfer("ws1", "ws2", 10e6) }()
	clock.WaitUntilWaiters(1)
	clock.Advance(20 * time.Second)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	snap, err := sensor.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if want := 10e6 / 20.0; math.Abs(snap.NetSentBps-want) > 1000 {
		t.Fatalf("sent rate = %v, want ~%v", snap.NetSentBps, want)
	}
	if snap.NetRecvBps > 1000 {
		t.Fatalf("recv rate = %v, want ~0", snap.NetRecvBps)
	}
}

func TestSensorTracksProcsAndLoad(t *testing.T) {
	host, nw, clock := simRig(t)
	sensor := NewSensor(NewSimSource(host, nw))
	p := host.Spawn("app", 4<<20)
	go func() { _ = p.Compute(1e9) }()
	clock.WaitUntilWaiters(1)
	clock.Advance(2 * time.Minute)
	snap, err := sensor.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumProcs != 1 || snap.RunQueue != 1 {
		t.Fatalf("procs=%d runqueue=%d, want 1/1", snap.NumProcs, snap.RunQueue)
	}
	if snap.Load1 < 0.8 {
		t.Fatalf("load1 = %v, want ~1 after 2 minutes", snap.Load1)
	}
	if len(snap.Procs) != 1 || snap.Procs[0].Name != "app" {
		t.Fatalf("proc table = %+v", snap.Procs)
	}
	p.Exit()
}

func TestSimSourceSockets(t *testing.T) {
	host, nw, _ := simRig(t)
	src := NewSimSource(host, nw)
	src.SetExtraSockets(700)
	n, err := src.Sockets()
	if err != nil {
		t.Fatal(err)
	}
	if n != 700 {
		t.Fatalf("sockets = %d, want 700", n)
	}
}

func TestSimSourceWithoutNetwork(t *testing.T) {
	clock := vclock.NewManual(vclock.Epoch)
	host := simnode.NewHost(clock, "lone", simnode.Config{})
	sensor := NewSensor(NewSimSource(host, nil))
	snap, err := sensor.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Sockets != 0 || snap.NetSentBps != 0 {
		t.Fatalf("network fields nonzero without a network: %+v", snap)
	}
}

func TestSimSourceDisks(t *testing.T) {
	host, nw, _ := simRig(t)
	host.SetMounts([]simnode.Mount{{Path: "/export", Total: 1000, Used: 250}})
	src := NewSimSource(host, nw)
	disks, err := src.Disks()
	if err != nil {
		t.Fatal(err)
	}
	if len(disks) != 1 || disks[0].UsedPct != 25 || disks[0].Avail != 750 {
		t.Fatalf("disks = %+v", disks)
	}
}

func TestStaticCapturesHostFacts(t *testing.T) {
	host, nw, _ := simRig(t)
	st := NewSimSource(host, nw).Static()
	if st.HostName != "ws1" || st.CPUSpeed != 1000 || st.MemTotal != 128<<20 {
		t.Fatalf("static = %+v", st)
	}
}
