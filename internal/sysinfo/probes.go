package sysinfo

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ProbeFunc extracts one numeric quantity from a snapshot. param carries the
// rule file's rl_param value (for example the socket state to count or the
// mount point to inspect).
type ProbeFunc func(snap Snapshot, param string) (float64, error)

// Probes maps the script names referenced by rule files (rl_script) to
// probe functions. The paper fires actual shell scripts (processorStatus.sh,
// ntStatIpv4.sh, ...); here the same names dispatch to functions over the
// gathered snapshot, keeping rule files portable across simulated and real
// sources.
type Probes struct {
	mu sync.RWMutex
	m  map[string]ProbeFunc
}

// NewProbes returns an empty probe registry.
func NewProbes() *Probes { return &Probes{m: make(map[string]ProbeFunc)} }

// Register adds or replaces a probe under the given script name.
func (p *Probes) Register(script string, fn ProbeFunc) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.m[script] = fn
}

// Eval runs the probe registered under script.
func (p *Probes) Eval(script string, snap Snapshot, param string) (float64, error) {
	p.mu.RLock()
	fn, ok := p.m[script]
	p.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("sysinfo: no probe registered for script %q", script)
	}
	return fn(snap, param)
}

// Names returns the registered script names, sorted.
func (p *Probes) Names() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	names := make([]string, 0, len(p.m))
	for n := range p.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// StandardProbes returns a registry with the probes used by the paper's
// rules (Figure 3) plus the additional quantities its policies threshold on
// (Section 5.3).
func StandardProbes() *Probes {
	p := NewProbes()

	// processorStatus.sh: CPU idle time percentage (vmstat). Rule 1
	// thresholds: busy below 50, overloaded below 45.
	p.Register("processorStatus.sh", func(s Snapshot, _ string) (float64, error) {
		return s.CPUIdlePct, nil
	})

	// ntStatIpv4.sh: number of IPv4 sockets in the state given by rl_param
	// (netstat). Only ESTABLISHED is tracked by the sources.
	p.Register("ntStatIpv4.sh", func(s Snapshot, param string) (float64, error) {
		switch strings.ToUpper(strings.TrimSpace(param)) {
		case "", "ESTABLISHED":
			return float64(s.Sockets), nil
		default:
			return 0, fmt.Errorf("sysinfo: socket state %q not tracked", param)
		}
	})

	// loadAvg.sh: the 1-, 5- or 15-minute load average (uptime/vmstat).
	p.Register("loadAvg.sh", func(s Snapshot, param string) (float64, error) {
		switch strings.TrimSpace(param) {
		case "", "1":
			return s.Load1, nil
		case "5":
			return s.Load5, nil
		case "15":
			return s.Load15, nil
		default:
			return 0, fmt.Errorf("sysinfo: unknown load window %q", param)
		}
	})

	// numProcs.sh: number of processes (ps).
	p.Register("numProcs.sh", func(s Snapshot, _ string) (float64, error) {
		return float64(s.NumProcs), nil
	})

	// runQueue.sh: current run-queue length.
	p.Register("runQueue.sh", func(s Snapshot, _ string) (float64, error) {
		return float64(s.RunQueue), nil
	})

	// memAvailPct.sh / swapAvailPct.sh: available memory percentages.
	p.Register("memAvailPct.sh", func(s Snapshot, _ string) (float64, error) {
		return s.MemAvailPct, nil
	})
	p.Register("swapAvailPct.sh", func(s Snapshot, _ string) (float64, error) {
		return s.SwapAvailPct, nil
	})

	// diskUsedPct.sh: used percentage of the mount point in rl_param (df).
	p.Register("diskUsedPct.sh", func(s Snapshot, param string) (float64, error) {
		path := strings.TrimSpace(param)
		if path == "" {
			path = "/"
		}
		for _, d := range s.Disks {
			if d.Path == path {
				return d.UsedPct, nil
			}
		}
		return 0, fmt.Errorf("sysinfo: no mount point %q", path)
	})

	// netFlow.sh: communication flow in MB/s over the last window; rl_param
	// selects in, out, total or max. The Table 2 policies threshold this in
	// MB/s (5 MB/s source, 3 MB/s destination).
	p.Register("netFlow.sh", func(s Snapshot, param string) (float64, error) {
		const mb = 1e6
		in, out := s.NetRecvBps/mb, s.NetSentBps/mb
		switch strings.ToLower(strings.TrimSpace(param)) {
		case "in":
			return in, nil
		case "out":
			return out, nil
		case "", "max":
			if in > out {
				return in, nil
			}
			return out, nil
		case "total":
			return in + out, nil
		default:
			return 0, fmt.Errorf("sysinfo: unknown netFlow direction %q", param)
		}
	})

	return p
}
