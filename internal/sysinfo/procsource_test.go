package sysinfo

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeProcFixture lays out a minimal /proc tree.
func writeProcFixture(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"loadavg": "0.25 0.50 0.75 2/345 9999\n",
		"stat": "cpu  100 0 100 700 100 0 0 0 0 0\n" +
			"cpu0 100 0 100 700 100 0 0 0 0 0\n",
		"meminfo": "MemTotal:       1000 kB\nMemFree:         200 kB\n" +
			"MemAvailable:    400 kB\nSwapTotal:       500 kB\nSwapFree:        500 kB\n",
		"net/dev": "Inter-|   Receive                                                |  Transmit\n" +
			" face |bytes    packets errs drop fifo frame compressed multicast|bytes    packets errs drop fifo colls carrier compressed\n" +
			"    lo: 999999    100    0    0    0     0          0         0   999999     100    0    0    0     0       0          0\n" +
			"  eth0: 123456    100    0    0    0     0          0         0   654321     100    0    0    0     0       0          0\n",
		"net/tcp": "  sl  local_address rem_address   st tx_queue rx_queue tr tm->when retrnsmt   uid  timeout inode\n" +
			"   0: 0100007F:0016 00000000:0000 0A 00000000:00000000 00:00000000 00000000     0        0 1\n" +
			"   1: 0100007F:0016 0200007F:9999 01 00000000:00000000 00:00000000 00000000     0        0 2\n" +
			"   2: 0100007F:0017 0200007F:9998 01 00000000:00000000 00:00000000 00000000     0        0 3\n",
		"4242/comm": "myproc\n",
	}
	for name, content := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestProcSourceLoadAvg(t *testing.T) {
	src := NewProcSource(writeProcFixture(t))
	l1, l5, l15, err := src.LoadAvg()
	if err != nil {
		t.Fatal(err)
	}
	if l1 != 0.25 || l5 != 0.50 || l15 != 0.75 {
		t.Fatalf("loadavg = %v %v %v", l1, l5, l15)
	}
	rq, err := src.RunQueue()
	if err != nil || rq != 2 {
		t.Fatalf("runqueue = %d, %v", rq, err)
	}
}

func TestProcSourceCPUTimes(t *testing.T) {
	src := NewProcSource(writeProcFixture(t))
	busy, idle, err := src.CPUTimes()
	if err != nil {
		t.Fatal(err)
	}
	// busy = user+nice+system = 100+0+100 ticks = 2s; idle+iowait = 700+100
	// ticks = 8s at 100 Hz.
	if busy != 2*time.Second {
		t.Fatalf("busy = %v, want 2s", busy)
	}
	if idle != 8*time.Second {
		t.Fatalf("idle = %v, want 8s", idle)
	}
}

func TestProcSourceMemory(t *testing.T) {
	src := NewProcSource(writeProcFixture(t))
	total, used, err := src.Memory()
	if err != nil {
		t.Fatal(err)
	}
	if total != 1000*1024 || used != 600*1024 {
		t.Fatalf("mem = %d used %d", total, used)
	}
	st, su, err := src.Swap()
	if err != nil || st != 500*1024 || su != 0 {
		t.Fatalf("swap = %d used %d, %v", st, su, err)
	}
}

func TestProcSourceNetCounters(t *testing.T) {
	src := NewProcSource(writeProcFixture(t))
	sent, recv, err := src.NetCounters()
	if err != nil {
		t.Fatal(err)
	}
	// Loopback excluded.
	if sent != 654321 || recv != 123456 {
		t.Fatalf("net = sent %d recv %d", sent, recv)
	}
}

func TestProcSourceSockets(t *testing.T) {
	src := NewProcSource(writeProcFixture(t))
	n, err := src.Sockets()
	if err != nil || n != 2 {
		t.Fatalf("sockets = %d, %v", n, err)
	}
}

func TestProcSourceProcs(t *testing.T) {
	src := NewProcSource(writeProcFixture(t))
	procs, err := src.Procs()
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 1 || procs[0].PID != 4242 || procs[0].Name != "myproc" {
		t.Fatalf("procs = %+v", procs)
	}
}

func TestProcSourceSensorEndToEnd(t *testing.T) {
	src := NewProcSource(writeProcFixture(t))
	sensor := NewSensor(src)
	snap, err := sensor.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Load1 != 0.25 || snap.Sockets != 2 || snap.NumProcs != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestProcSourceMissingTree(t *testing.T) {
	src := NewProcSource(filepath.Join(t.TempDir(), "nope"))
	if _, _, _, err := src.LoadAvg(); err == nil {
		t.Fatal("LoadAvg on missing tree succeeded")
	}
	if _, err := NewSensor(src).Gather(); err == nil {
		t.Fatal("Gather on missing tree succeeded")
	}
}
