package sysinfo

import (
	"sync"
	"time"

	"autoresched/internal/simnet"
	"autoresched/internal/simnode"
)

// SimSource reads raw system information from a simulated host and the
// simulated network. ExtraSockets models the host's baseline socket
// population on top of the active flows (the paper's ntStatIpv4 rule
// thresholds at 700/900 sockets, far above what application flows alone
// produce).
type SimSource struct {
	host *simnode.Host
	net  *simnet.Network

	mu           sync.Mutex
	static       Static
	extraSockets int
}

// NewSimSource wraps a simulated host (and optionally its network; nil
// disables the communication fields).
func NewSimSource(host *simnode.Host, net *simnet.Network) *SimSource {
	memTotal, _ := host.Memory()
	return &SimSource{
		host: host,
		net:  net,
		static: Static{
			HostName: host.Name(),
			Addr:     "sim://" + host.Name(),
			OS:       "simos",
			Arch:     "sim",
			CPUSpeed: host.Speed(),
			MemTotal: memTotal,
		},
	}
}

// SetExtraSockets sets the baseline number of established sockets reported
// on top of active flows.
func (s *SimSource) SetExtraSockets(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.extraSockets = n
}

// Static implements Source.
func (s *SimSource) Static() Static {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.static
}

// Now implements Source using the host's clock.
func (s *SimSource) Now() time.Time { return s.host.Clock().Now() }

// LoadAvg implements Source.
func (s *SimSource) LoadAvg() (l1, l5, l15 float64, err error) {
	l1, l5, l15 = s.host.LoadAvg()
	return l1, l5, l15, nil
}

// CPUTimes implements Source.
func (s *SimSource) CPUTimes() (busy, idle time.Duration, err error) {
	busy, idle = s.host.CPUTimes()
	return busy, idle, nil
}

// Memory implements Source.
func (s *SimSource) Memory() (total, used int64, err error) {
	total, used = s.host.Memory()
	return total, used, nil
}

// Swap implements Source.
func (s *SimSource) Swap() (total, used int64, err error) {
	total, used = s.host.Swap()
	return total, used, nil
}

// Disks implements Source.
func (s *SimSource) Disks() ([]DiskUsage, error) {
	mounts := s.host.Mounts()
	out := make([]DiskUsage, 0, len(mounts))
	for _, m := range mounts {
		d := DiskUsage{Path: m.Path, Total: m.Total, Used: m.Used, Avail: m.Total - m.Used}
		if m.Total > 0 {
			d.UsedPct = 100 * float64(m.Used) / float64(m.Total)
		}
		out = append(out, d)
	}
	return out, nil
}

// NetCounters implements Source.
func (s *SimSource) NetCounters() (sent, recv int64, err error) {
	if s.net == nil {
		return 0, 0, nil
	}
	return s.net.Counters(s.host.Name())
}

// Sockets implements Source.
func (s *SimSource) Sockets() (int, error) {
	s.mu.Lock()
	extra := s.extraSockets
	s.mu.Unlock()
	if s.net == nil {
		return extra, nil
	}
	flows, err := s.net.HostFlows(s.host.Name())
	if err != nil {
		return 0, err
	}
	return extra + flows, nil
}

// Procs implements Source.
func (s *SimSource) Procs() ([]ProcStat, error) {
	infos := s.host.Procs()
	out := make([]ProcStat, 0, len(infos))
	for _, p := range infos {
		out = append(out, ProcStat{
			PID:     p.PID,
			Name:    p.Name,
			Started: p.Started,
			Memory:  p.Memory,
			CPUTime: p.CPUTime,
		})
	}
	return out, nil
}

// RunQueue implements Source.
func (s *SimSource) RunQueue() (int, error) { return s.host.RunQueue(), nil }

var _ Source = (*SimSource)(nil)
