// Package sysinfo gathers the static and dynamic system information the
// monitor entities consume (paper Section 3.1).
//
// The paper gathers dynamic information through shell scripts wrapping
// vmstat, prstat, ps, netstat and df on Solaris. Here a Source abstracts
// where raw numbers come from — a simulated host (SimSource) or the local
// Linux /proc filesystem (ProcSource) — and a Sensor turns consecutive raw
// readings into the windowed Snapshot the rules evaluate (CPU idle
// percentage over the last interval, KB/s network rates, and so on), exactly
// the way vmstat derives percentages from counter deltas.
package sysinfo

import (
	"fmt"
	"time"
)

// Static holds the host information that does not change during the life of
// a monitoring entity; it is sent once, at registration (Section 3.1).
type Static struct {
	HostName string  `xml:"hostName"`
	Addr     string  `xml:"addr"`
	OS       string  `xml:"os"`
	Arch     string  `xml:"arch"`
	CPUSpeed float64 `xml:"cpuSpeed"` // work units per second
	MemTotal int64   `xml:"memTotal"` // bytes
}

// DiskUsage is the disk state of one mount point.
type DiskUsage struct {
	Path    string
	Total   int64
	Used    int64
	Avail   int64
	UsedPct float64
}

// Snapshot is one gathering of dynamic information: the four categories of
// Section 3.1 (processor, memory, disk, communication) plus the process
// table size the paper's policies threshold on.
type Snapshot struct {
	Host string
	Time time.Time
	// Interval is the window over which rate quantities were measured.
	Interval time.Duration

	// Processor utilisation and load.
	Load1, Load5, Load15 float64
	CPUIdlePct           float64 // percentage of the window the CPU was idle
	CPUUtilPct           float64 // 100 - CPUIdlePct
	RunQueue             int
	NumProcs             int

	// Memory state.
	MemTotal, MemAvail   int64
	MemAvailPct          float64
	SwapTotal, SwapAvail int64
	SwapAvailPct         float64

	// Disk usage.
	Disks []DiskUsage

	// Communication.
	NetSentBps float64 // bytes/s over the window
	NetRecvBps float64
	Sockets    int // sockets in ESTABLISHED state

	// Process table (prstat/ps view), for process selection.
	Procs []ProcStat
}

// ProcStat is one process-table row.
type ProcStat struct {
	PID     int
	Name    string
	Started time.Time
	Memory  int64
	CPUTime time.Duration
}

// Source provides raw counters and tables for one host.
type Source interface {
	Static() Static
	// Now returns the source's notion of the current time; windowed rates
	// use it as the sample timestamp.
	Now() time.Time
	LoadAvg() (l1, l5, l15 float64, err error)
	// CPUTimes returns cumulative busy and idle time.
	CPUTimes() (busy, idle time.Duration, err error)
	Memory() (total, used int64, err error)
	Swap() (total, used int64, err error)
	Disks() ([]DiskUsage, error)
	// NetCounters returns cumulative bytes sent and received.
	NetCounters() (sent, recv int64, err error)
	Sockets() (established int, err error)
	Procs() ([]ProcStat, error)
	RunQueue() (int, error)
}

// Sensor derives windowed Snapshots from consecutive Source readings.
// The first Gather establishes the baseline; rate fields of the first
// snapshot are zero and Interval reports zero.
type Sensor struct {
	src Source

	primed   bool
	prevTime time.Time
	prevBusy time.Duration
	prevIdle time.Duration
	prevSent int64
	prevRecv int64
}

// NewSensor returns a Sensor reading from src.
func NewSensor(src Source) *Sensor { return &Sensor{src: src} }

// Gather takes one reading and derives the windowed snapshot since the
// previous call.
func (s *Sensor) Gather() (Snapshot, error) {
	var snap Snapshot
	st := s.src.Static()
	snap.Host = st.HostName
	snap.Time = s.src.Now()

	var err error
	if snap.Load1, snap.Load5, snap.Load15, err = s.src.LoadAvg(); err != nil {
		return Snapshot{}, fmt.Errorf("sysinfo: load: %w", err)
	}
	busy, idle, err := s.src.CPUTimes()
	if err != nil {
		return Snapshot{}, fmt.Errorf("sysinfo: cpu: %w", err)
	}
	memTotal, memUsed, err := s.src.Memory()
	if err != nil {
		return Snapshot{}, fmt.Errorf("sysinfo: memory: %w", err)
	}
	snap.MemTotal, snap.MemAvail = memTotal, memTotal-memUsed
	if memTotal > 0 {
		snap.MemAvailPct = 100 * float64(snap.MemAvail) / float64(memTotal)
	}
	swapTotal, swapUsed, err := s.src.Swap()
	if err != nil {
		return Snapshot{}, fmt.Errorf("sysinfo: swap: %w", err)
	}
	snap.SwapTotal, snap.SwapAvail = swapTotal, swapTotal-swapUsed
	if swapTotal > 0 {
		snap.SwapAvailPct = 100 * float64(snap.SwapAvail) / float64(swapTotal)
	}
	if snap.Disks, err = s.src.Disks(); err != nil {
		return Snapshot{}, fmt.Errorf("sysinfo: disks: %w", err)
	}
	sent, recv, err := s.src.NetCounters()
	if err != nil {
		return Snapshot{}, fmt.Errorf("sysinfo: net: %w", err)
	}
	if snap.Sockets, err = s.src.Sockets(); err != nil {
		return Snapshot{}, fmt.Errorf("sysinfo: sockets: %w", err)
	}
	if snap.Procs, err = s.src.Procs(); err != nil {
		return Snapshot{}, fmt.Errorf("sysinfo: procs: %w", err)
	}
	snap.NumProcs = len(snap.Procs)
	if snap.RunQueue, err = s.src.RunQueue(); err != nil {
		return Snapshot{}, fmt.Errorf("sysinfo: runqueue: %w", err)
	}

	if s.primed {
		window := snap.Time.Sub(s.prevTime)
		snap.Interval = window
		if window > 0 {
			dBusy := busy - s.prevBusy
			dIdle := idle - s.prevIdle
			if total := dBusy + dIdle; total > 0 {
				snap.CPUIdlePct = 100 * float64(dIdle) / float64(total)
			} else {
				snap.CPUIdlePct = 100
			}
			secs := window.Seconds()
			snap.NetSentBps = float64(sent-s.prevSent) / secs
			snap.NetRecvBps = float64(recv-s.prevRecv) / secs
		} else {
			snap.CPUIdlePct = 100
		}
	} else {
		snap.CPUIdlePct = 100
		s.primed = true
	}
	snap.CPUUtilPct = 100 - snap.CPUIdlePct

	s.prevTime = snap.Time
	s.prevBusy, s.prevIdle = busy, idle
	s.prevSent, s.prevRecv = sent, recv
	return snap, nil
}
