package sysinfo

import (
	"math"
	"testing"
	"time"
)

func sampleSnapshot() Snapshot {
	return Snapshot{
		Host:         "ws1",
		Load1:        2.5,
		Load5:        1.5,
		Load15:       0.5,
		CPUIdlePct:   42,
		CPUUtilPct:   58,
		RunQueue:     3,
		NumProcs:     151,
		MemAvailPct:  33,
		SwapAvailPct: 80,
		Disks:        []DiskUsage{{Path: "/", UsedPct: 61}, {Path: "/export", UsedPct: 12}},
		NetSentBps:   4e6,
		NetRecvBps:   7e6,
		Sockets:      901,
	}
}

func TestStandardProbes(t *testing.T) {
	p := StandardProbes()
	snap := sampleSnapshot()
	cases := []struct {
		script, param string
		want          float64
	}{
		{"processorStatus.sh", "", 42},
		{"ntStatIpv4.sh", "ESTABLISHED", 901},
		{"ntStatIpv4.sh", "", 901},
		{"loadAvg.sh", "1", 2.5},
		{"loadAvg.sh", "", 2.5},
		{"loadAvg.sh", "5", 1.5},
		{"loadAvg.sh", "15", 0.5},
		{"numProcs.sh", "", 151},
		{"runQueue.sh", "", 3},
		{"memAvailPct.sh", "", 33},
		{"swapAvailPct.sh", "", 80},
		{"diskUsedPct.sh", "/", 61},
		{"diskUsedPct.sh", "", 61},
		{"diskUsedPct.sh", "/export", 12},
		{"netFlow.sh", "in", 7},
		{"netFlow.sh", "out", 4},
		{"netFlow.sh", "total", 11},
		{"netFlow.sh", "max", 7},
		{"netFlow.sh", "", 7},
	}
	for _, c := range cases {
		got, err := p.Eval(c.script, snap, c.param)
		if err != nil {
			t.Errorf("%s(%q): %v", c.script, c.param, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s(%q) = %v, want %v", c.script, c.param, got, c.want)
		}
	}
}

func TestProbeErrors(t *testing.T) {
	p := StandardProbes()
	snap := sampleSnapshot()
	for _, c := range []struct{ script, param string }{
		{"missing.sh", ""},
		{"ntStatIpv4.sh", "TIME_WAIT"},
		{"loadAvg.sh", "2"},
		{"diskUsedPct.sh", "/nope"},
		{"netFlow.sh", "sideways"},
	} {
		if _, err := p.Eval(c.script, snap, c.param); err == nil {
			t.Errorf("%s(%q): want error", c.script, c.param)
		}
	}
}

func TestProbeRegisterAndNames(t *testing.T) {
	p := NewProbes()
	p.Register("custom.sh", func(s Snapshot, _ string) (float64, error) {
		return float64(s.NumProcs) * 2, nil
	})
	got, err := p.Eval("custom.sh", Snapshot{NumProcs: 21}, "")
	if err != nil || got != 42 {
		t.Fatalf("custom probe = %v, %v", got, err)
	}
	if names := p.Names(); len(names) != 1 || names[0] != "custom.sh" {
		t.Fatalf("Names() = %v", names)
	}
	if n := len(StandardProbes().Names()); n < 9 {
		t.Fatalf("standard probe count = %d", n)
	}
}

func TestProbeOverride(t *testing.T) {
	p := StandardProbes()
	p.Register("processorStatus.sh", func(Snapshot, string) (float64, error) { return 7, nil })
	got, err := p.Eval("processorStatus.sh", Snapshot{CPUIdlePct: 99}, "")
	if err != nil || got != 7 {
		t.Fatalf("override = %v, %v", got, err)
	}
}

func TestSnapshotZeroValueSafeForProbes(t *testing.T) {
	p := StandardProbes()
	var snap Snapshot
	snap.Time = time.Now()
	for _, script := range []string{"processorStatus.sh", "loadAvg.sh", "numProcs.sh", "netFlow.sh"} {
		if _, err := p.Eval(script, snap, ""); err != nil {
			t.Errorf("%s on zero snapshot: %v", script, err)
		}
	}
}
