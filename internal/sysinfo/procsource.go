package sysinfo

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// ProcSource reads raw system information from a Linux /proc filesystem, so
// the runtime can monitor real hosts (the paper's scripts read the same
// quantities from Solaris utilities; its authors note the mechanism "could
// be easily ported to LINUX where the shell scripts could read the system
// parameters from /proc").
type ProcSource struct {
	root   string // normally "/proc"; tests point it at a fixture tree
	static Static
}

// NewProcSource returns a source reading from the /proc tree at root
// (use "/proc" on a live system).
func NewProcSource(root string) *ProcSource {
	host, _ := os.Hostname()
	return &ProcSource{
		root: root,
		static: Static{
			HostName: host,
			OS:       runtime.GOOS,
			Arch:     runtime.GOARCH,
		},
	}
}

// Static implements Source.
func (s *ProcSource) Static() Static { return s.static }

// Now implements Source with wall time.
func (s *ProcSource) Now() time.Time { return time.Now() }

// LoadAvg implements Source from /proc/loadavg.
func (s *ProcSource) LoadAvg() (l1, l5, l15 float64, err error) {
	data, err := os.ReadFile(filepath.Join(s.root, "loadavg"))
	if err != nil {
		return 0, 0, 0, err
	}
	fields := strings.Fields(string(data))
	if len(fields) < 3 {
		return 0, 0, 0, fmt.Errorf("sysinfo: malformed loadavg %q", data)
	}
	vals := make([]float64, 3)
	for i := 0; i < 3; i++ {
		if vals[i], err = strconv.ParseFloat(fields[i], 64); err != nil {
			return 0, 0, 0, fmt.Errorf("sysinfo: loadavg field %d: %w", i, err)
		}
	}
	return vals[0], vals[1], vals[2], nil
}

// RunQueue implements Source from the "r/t" field of /proc/loadavg.
func (s *ProcSource) RunQueue() (int, error) {
	data, err := os.ReadFile(filepath.Join(s.root, "loadavg"))
	if err != nil {
		return 0, err
	}
	fields := strings.Fields(string(data))
	if len(fields) < 4 {
		return 0, fmt.Errorf("sysinfo: malformed loadavg %q", data)
	}
	rt := strings.SplitN(fields[3], "/", 2)
	r, err := strconv.Atoi(rt[0])
	if err != nil {
		return 0, fmt.Errorf("sysinfo: loadavg runnable: %w", err)
	}
	return r, nil
}

// CPUTimes implements Source from the aggregate "cpu" line of /proc/stat.
// Busy is user+nice+system(+irq+softirq+steal); idle is idle+iowait.
func (s *ProcSource) CPUTimes() (busy, idle time.Duration, err error) {
	f, err := os.Open(filepath.Join(s.root, "stat"))
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 5 || fields[0] != "cpu" {
			continue
		}
		var ticks []int64
		for _, fd := range fields[1:] {
			v, err := strconv.ParseInt(fd, 10, 64)
			if err != nil {
				return 0, 0, fmt.Errorf("sysinfo: stat cpu field: %w", err)
			}
			ticks = append(ticks, v)
		}
		const hz = 100 // USER_HZ
		tick := time.Second / hz
		var busyTicks, idleTicks int64
		for i, v := range ticks {
			if i == 3 || i == 4 { // idle, iowait
				idleTicks += v
			} else {
				busyTicks += v
			}
		}
		return time.Duration(busyTicks) * tick, time.Duration(idleTicks) * tick, nil
	}
	if err := sc.Err(); err != nil {
		return 0, 0, err
	}
	return 0, 0, fmt.Errorf("sysinfo: no cpu line in %s/stat", s.root)
}

func (s *ProcSource) meminfo() (map[string]int64, error) {
	f, err := os.Open(filepath.Join(s.root, "meminfo"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]int64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 {
			continue
		}
		key := strings.TrimSuffix(fields[0], ":")
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		out[key] = v * 1024 // meminfo is in kB
	}
	return out, sc.Err()
}

// Memory implements Source from /proc/meminfo.
func (s *ProcSource) Memory() (total, used int64, err error) {
	mi, err := s.meminfo()
	if err != nil {
		return 0, 0, err
	}
	total = mi["MemTotal"]
	avail, ok := mi["MemAvailable"]
	if !ok {
		avail = mi["MemFree"]
	}
	return total, total - avail, nil
}

// Swap implements Source from /proc/meminfo.
func (s *ProcSource) Swap() (total, used int64, err error) {
	mi, err := s.meminfo()
	if err != nil {
		return 0, 0, err
	}
	total = mi["SwapTotal"]
	return total, total - mi["SwapFree"], nil
}

// Disks implements Source. Disk statistics are not exposed under /proc in a
// portable way; an empty table is returned and disk rules report their
// free-state default.
func (s *ProcSource) Disks() ([]DiskUsage, error) { return nil, nil }

// NetCounters implements Source from /proc/net/dev, summing all interfaces
// except loopback.
func (s *ProcSource) NetCounters() (sent, recv int64, err error) {
	f, err := os.Open(filepath.Join(s.root, "net", "dev"))
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			continue
		}
		iface := strings.TrimSpace(line[:colon])
		if iface == "lo" {
			continue
		}
		fields := strings.Fields(line[colon+1:])
		if len(fields) < 9 {
			continue
		}
		rx, err1 := strconv.ParseInt(fields[0], 10, 64)
		tx, err2 := strconv.ParseInt(fields[8], 10, 64)
		if err1 != nil || err2 != nil {
			continue
		}
		recv += rx
		sent += tx
	}
	return sent, recv, sc.Err()
}

// Sockets implements Source by counting ESTABLISHED (state 01) rows of
// /proc/net/tcp.
func (s *ProcSource) Sockets() (int, error) {
	f, err := os.Open(filepath.Join(s.root, "net", "tcp"))
	if err != nil {
		return 0, err
	}
	defer f.Close()
	count := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || fields[0] == "sl" {
			continue
		}
		if fields[3] == "01" {
			count++
		}
	}
	return count, sc.Err()
}

// Procs implements Source by listing numeric /proc entries.
func (s *ProcSource) Procs() ([]ProcStat, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, err
	}
	var out []ProcStat
	for _, e := range entries {
		pid, err := strconv.Atoi(e.Name())
		if err != nil {
			continue
		}
		ps := ProcStat{PID: pid}
		if comm, err := os.ReadFile(filepath.Join(s.root, e.Name(), "comm")); err == nil {
			ps.Name = strings.TrimSpace(string(comm))
		}
		if info, err := e.Info(); err == nil {
			ps.Started = info.ModTime()
		}
		out = append(out, ps)
	}
	return out, nil
}

var _ Source = (*ProcSource)(nil)
