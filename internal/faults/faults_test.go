package faults

import (
	"strings"
	"sync"
	"testing"
	"time"

	"autoresched/internal/cluster"
	"autoresched/internal/core"
	"autoresched/internal/hpcm"
	"autoresched/internal/metrics"
	"autoresched/internal/proto"
	"autoresched/internal/simnode"
	"autoresched/internal/vclock"
)

func TestPlanRenderSortsAndIsDeterministic(t *testing.T) {
	p := Plan{
		Name: "demo",
		Events: []Event{
			{After: 20 * time.Second, Kind: KindRestartRegistry},
			{After: 10 * time.Second, Kind: KindPartition, Host: "ws1", Peer: "ws2"},
			{After: 10 * time.Second, Kind: KindDropStatus, Host: "ws3", Count: 2},
		},
	}
	first := p.Render()
	if first != p.Render() {
		t.Fatal("Render is not deterministic")
	}
	lines := strings.Split(strings.TrimSpace(first), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4:\n%s", len(lines), first)
	}
	// Sorted by offset, slice order preserved for equal offsets.
	if !strings.Contains(lines[1], "partition") || !strings.Contains(lines[2], "drop-status") ||
		!strings.Contains(lines[3], "restart-registry") {
		t.Fatalf("events out of order:\n%s", first)
	}
	if !strings.Contains(lines[2], "count=2") {
		t.Fatalf("count not rendered:\n%s", first)
	}
}

// countingReporter records delivered reports.
type countingReporter struct {
	mu       sync.Mutex
	statuses int
}

func (c *countingReporter) RegisterHost(string, proto.StaticInfo) error { return nil }
func (c *countingReporter) UnregisterHost(string) error                 { return nil }
func (c *countingReporter) ReportStatus(string, proto.Status) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.statuses++
	return nil
}

func (c *countingReporter) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statuses
}

func TestStatusTapDropsDuplicatesAndConsumes(t *testing.T) {
	ctr := metrics.NewCounters()
	in := NewInjector(Config{Clock: vclock.Real(), Counters: ctr})
	inner := &countingReporter{}
	tapped := in.WrapReporter("ws1", inner)

	in.apply(Event{Kind: KindDropStatus, Host: "ws1", Count: 2})
	in.apply(Event{Kind: KindDupStatus, Host: "ws1"}) // count defaults to 1
	in.apply(Event{Kind: KindDelayStatus, Host: "ws1", Delay: time.Millisecond})

	// 5 reports: 2 dropped, 1 duplicated, 1 delayed, 1 clean.
	for i := 0; i < 5; i++ {
		if err := tapped.ReportStatus("ws1", proto.Status{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := inner.count(); got != 4 { // 0+0+2+1+1
		t.Fatalf("delivered statuses = %d, want 4", got)
	}
	if d := ctr.Get(metrics.CtrStatusDropped); d != 2 {
		t.Fatalf("dropped = %d, want 2", d)
	}
	if d := ctr.Get(metrics.CtrStatusDuplicated); d != 1 {
		t.Fatalf("duplicated = %d, want 1", d)
	}
	if d := ctr.Get(metrics.CtrStatusDelayed); d != 1 {
		t.Fatalf("delayed = %d, want 1", d)
	}
	// A tap on a different host is untouched.
	other := in.WrapReporter("ws2", inner)
	if err := other.ReportStatus("ws2", proto.Status{}); err != nil {
		t.Fatal(err)
	}
	if got := inner.count(); got != 5 {
		t.Fatalf("delivered after clean host = %d, want 5", got)
	}
}

func TestObserverTrapFiresOnceOnMatchingPhase(t *testing.T) {
	in := NewInjector(Config{Clock: vclock.Real()})
	in.apply(Event{Kind: KindCrashOnPhase, Proc: "app", Phase: hpcm.PhaseInit, Target: "dest"})
	obs := in.Observer()

	obs(hpcm.MigrationEvent{Proc: "other", Phase: hpcm.PhaseInit, From: "ws1", To: "ws2"})
	obs(hpcm.MigrationEvent{Proc: "app", Phase: hpcm.PhaseStart, From: "ws1", To: "ws2"})
	if got := in.Triggered(); len(got) != 0 {
		t.Fatalf("trap fired early: %v", got)
	}
	obs(hpcm.MigrationEvent{Proc: "app", Phase: hpcm.PhaseInit, From: "ws1", To: "ws2"})
	obs(hpcm.MigrationEvent{Proc: "app", Phase: hpcm.PhaseInit, From: "ws1", To: "ws3"})
	got := in.Triggered()
	if len(got) != 1 {
		t.Fatalf("trap fired %d times, want 1: %v", len(got), got)
	}
	if !strings.Contains(got[0], "host=ws2") {
		t.Fatalf("trap picked wrong victim: %s", got[0])
	}
}

func TestInjectorAppliesScheduledEvents(t *testing.T) {
	clock := vclock.Scaled(vclock.Epoch, 1000)
	cl := cluster.New(cluster.Options{Clock: clock, Bandwidth: 12.5e6})
	names, err := cl.AddHosts("ws", 3, simnode.Config{Speed: 1e6, MemTotal: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ctr := metrics.NewCounters()
	in := NewInjector(Config{Clock: clock, Counters: ctr})
	sys, err := core.New(core.Options{
		Cluster:      cl,
		Counters:     ctr,
		WrapReporter: in.WrapReporter,
		Observer:     in.Observer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddNodes(names...); err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	in.Bind(sys)

	in.Run(Plan{Name: "sched", Events: []Event{
		{After: time.Second, Kind: KindLinkFactor, Host: "ws1", Peer: "ws2", Factor: 0.5},
		{After: 2 * time.Second, Kind: KindPartition, Host: "ws1", Peer: "ws3"},
		{After: 3 * time.Second, Kind: KindRestartRegistry},
	}})
	select {
	case <-in.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("injector never finished")
	}
	applied := in.Applied()
	if len(applied) != 3 {
		t.Fatalf("applied %d events, want 3: %v", len(applied), applied)
	}
	for _, line := range applied {
		if strings.Contains(line, "error=") {
			t.Fatalf("event failed: %s", line)
		}
	}
	if !cl.Net().Partitioned("ws1", "ws3") {
		t.Fatal("partition not applied")
	}
	if ctr.Get(metrics.CtrRegistryRestarts) != 1 {
		t.Fatalf("registry restarts = %d, want 1", ctr.Get(metrics.CtrRegistryRestarts))
	}
}
