// Package faults is a deterministic fault-injection engine for the runtime
// system. A Plan schedules faults in virtual time — host crashes, registry
// restarts, network partitions, link degradation, heartbeat loss, forced and
// duplicated migrate orders, and crashes pinned to exact migration protocol
// phases — and an Injector applies them against a core.System. Because
// triggers are either virtual-time offsets or protocol events (never wall
// time), the same plan against the same seeded workload produces the same
// fault schedule and the same robustness counters on every run.
package faults

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Kind names one fault type.
type Kind string

const (
	// KindCrashHost takes Host down permanently: network down, monitor
	// stopped (unregistering the host), local incarnations killed.
	KindCrashHost Kind = "crash-host"
	// KindReviveHost returns a crashed Host to service after an outage.
	// Interpreted by the scenario fleet runner (internal/scenario), whose
	// generated crash faults are outages with a bounded duration; the live
	// injector treats KindCrashHost as permanent and reports this kind as
	// unknown.
	KindReviveHost Kind = "revive-host"
	// KindRestartRegistry drops the registry's soft state; monitors
	// re-register through heartbeats and the runtime resyncs processes.
	KindRestartRegistry Kind = "restart-registry"
	// KindPartition cuts the Host<->Peer link in both directions.
	KindPartition Kind = "partition"
	// KindHeal removes a Host<->Peer partition.
	KindHeal Kind = "heal"
	// KindLinkFactor scales the Host<->Peer bandwidth by Factor
	// (0 < Factor <= 1 degrades; 1 restores).
	KindLinkFactor Kind = "link-factor"
	// KindDropStatus swallows Host's next Count status reports.
	KindDropStatus Kind = "drop-status"
	// KindDupStatus delivers Host's next Count status reports twice.
	KindDupStatus Kind = "dup-status"
	// KindDelayStatus delays Host's next Count status reports by Delay.
	KindDelayStatus Kind = "delay-status"
	// KindMigrate orders the app named Proc to migrate to Dest, Count
	// times back to back (Count > 1 models a redelivered order and
	// exercises the commander's dedup).
	KindMigrate Kind = "migrate"
	// KindCrashOnPhase arms a one-shot trap: when a migration of Proc
	// reaches Phase (an hpcm.Phase* constant), crash Target ("source" or
	// "dest") of that migration. For hpcm.PhasePrecopy, Round > 0 narrows
	// the trap to that precopy round (0 fires on the first round seen).
	KindCrashOnPhase Kind = "crash-on-phase"
	// KindResize proposes the placement Hosts to a malleable job — the
	// elastic analogue of KindMigrate. Interpreted by the malleable chaos
	// runner, which binds the event to its job.
	KindResize Kind = "resize"
	// KindCrashOnResizePhase arms a one-shot trap on the malleable resize
	// protocol: when a resize reaches Phase (a malleable.Phase* constant),
	// crash Target — "new" crashes the first freshly spawned host of the
	// resize, "victim" the first retiring one.
	KindCrashOnResizePhase Kind = "crash-on-resize-phase"
	// KindCrashLoopRegistry restarts the registry Count times back to back,
	// modelling a crash-looping parent. With a durable store each restart is
	// a crash-consistent bootstrap (snapshot + log-suffix replay) and no
	// monitor re-registration or process resync fires; without one it
	// degenerates to Count soft-state drops.
	KindCrashLoopRegistry Kind = "crash-loop-registry"
	// KindTornWrite chops Count bytes (default 1) off the tail of the
	// system's persist store, modelling a write torn by power loss. The
	// store must implement persist.TailTruncator; the registry's next
	// bootstrap recovers the longest intact record prefix.
	KindTornWrite Kind = "torn-write"
	// KindSubmitJob submits the pre-registered job spec named Proc to the
	// multi-job queue. Interpreted by the jobs chaos runner, which holds the
	// scenario's spec set.
	KindSubmitJob Kind = "submit-job"
	// KindKillOnCkpt arms a one-shot trap on the checkpoint protocol: when
	// the process named Proc begins writing a checkpoint (the eviction
	// checkpoint of a preemption victim, in the jobs scenarios), put it down
	// mid-write — Target "proc" kills just that incarnation, Target "host"
	// crashes its whole host. Either way the in-progress image is lost.
	KindKillOnCkpt Kind = "kill-on-checkpoint"
)

// Event is one scheduled fault. Only the fields its Kind documents are used.
type Event struct {
	// After is the virtual delay from Injector.Run to this event. Events
	// with equal After apply in slice order.
	After  time.Duration
	Kind   Kind
	Host   string
	Peer   string
	Proc   string
	Dest   string
	Count  int
	Factor float64
	Delay  time.Duration
	Phase  string
	Round  int      // precopy round a crash-on-phase trap waits for (0: any)
	Target string   // "source" | "dest" | "new" | "victim"
	Hosts  []string // resize target placement, rank order
}

// String renders the event compactly (only the fields its kind uses).
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "+%-6s %-16s", e.After, e.Kind)
	if e.Host != "" {
		fmt.Fprintf(&b, " host=%s", e.Host)
	}
	if e.Peer != "" {
		fmt.Fprintf(&b, " peer=%s", e.Peer)
	}
	if e.Proc != "" {
		fmt.Fprintf(&b, " proc=%s", e.Proc)
	}
	if e.Dest != "" {
		fmt.Fprintf(&b, " dest=%s", e.Dest)
	}
	if len(e.Hosts) > 0 {
		fmt.Fprintf(&b, " hosts=%s", strings.Join(e.Hosts, ","))
	}
	if e.Count > 0 {
		fmt.Fprintf(&b, " count=%d", e.Count)
	}
	if e.Factor > 0 {
		fmt.Fprintf(&b, " factor=%g", e.Factor)
	}
	if e.Delay > 0 {
		fmt.Fprintf(&b, " delay=%s", e.Delay)
	}
	if e.Phase != "" {
		fmt.Fprintf(&b, " phase=%s", e.Phase)
	}
	if e.Round > 0 {
		fmt.Fprintf(&b, " round=%d", e.Round)
	}
	if e.Target != "" {
		fmt.Fprintf(&b, " target=%s", e.Target)
	}
	return b.String()
}

// Plan is a named, ordered fault schedule.
type Plan struct {
	Name   string
	Events []Event
}

// ordered returns the events sorted by After, preserving slice order for
// equal offsets.
func (p Plan) ordered() []Event {
	evs := append([]Event(nil), p.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].After < evs[j].After })
	return evs
}

// Render prints the plan's schedule. The output depends only on the plan, so
// two runs of the same plan render identically.
func (p Plan) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s (%d events)\n", p.Name, len(p.Events))
	for _, e := range p.ordered() {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}
