package faults

import (
	"fmt"
	"sync"
	"time"

	"autoresched/internal/core"
	"autoresched/internal/events"
	"autoresched/internal/hpcm"
	"autoresched/internal/metrics"
	"autoresched/internal/monitor"
	"autoresched/internal/persist"
	"autoresched/internal/proto"
	"autoresched/internal/vclock"
)

// Config configures an Injector. Clock is required; System is bound with
// Bind (after core.New, since the system itself needs the injector's
// reporter wrapper and migration observer at construction time).
type Config struct {
	Clock    vclock.Clock
	Counters *metrics.Counters
	// Events, when set, receives every applied fault and fired trap on the
	// unified runtime sink (Source "faults") — pass the same sink as
	// core.Options.Events to see faults interleaved with the decisions and
	// migrations they provoke.
	Events events.Sink
}

// Injector applies a Plan against a bound core.System in virtual time.
//
// Construction order matters because the injector and the system reference
// each other:
//
//	in := faults.NewInjector(faults.Config{Clock: clock, Counters: ctr})
//	sys, _ := core.New(core.Options{
//		WrapReporter: in.WrapReporter,
//		Observer:     in.Observer(),
//		...
//	})
//	in.Bind(sys)
//	app, _ := sys.Launch("test_tree", ...)
//	in.BindApp("test_tree", app)
//	in.Run(plan)
type Injector struct {
	cfg Config

	mu        sync.Mutex
	sys       *core.System
	apps      map[string]*core.App
	taps      map[string]*tapState
	traps     []*phaseTrap
	applied   []string
	triggered []string
	running   bool

	stop chan struct{}
	done chan struct{}
}

// tapState is the pending per-host heartbeat interference, consumed one
// report at a time (drops first, then duplicates, then delays).
type tapState struct {
	drop    int
	dup     int
	delay   int
	delayBy time.Duration
}

// phaseTrap is an armed one-shot crash-on-migration-phase trigger. round,
// when positive, narrows a precopy trap to one exact round.
type phaseTrap struct {
	proc   string
	phase  string
	round  int
	target string
	fired  bool
}

// NewInjector creates an unbound injector.
func NewInjector(cfg Config) *Injector {
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real()
	}
	return &Injector{
		cfg:  cfg,
		apps: make(map[string]*core.App),
		taps: make(map[string]*tapState),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Bind attaches the system the injector faults.
func (in *Injector) Bind(sys *core.System) {
	in.mu.Lock()
	in.sys = sys
	in.mu.Unlock()
}

// BindApp names a launched app so KindMigrate and KindCrashOnPhase events
// can target it.
func (in *Injector) BindApp(name string, app *core.App) {
	in.mu.Lock()
	in.apps[name] = app
	in.mu.Unlock()
}

// Run applies the plan's events at their virtual offsets on a single
// goroutine (so the applied log is ordered) and returns immediately.
func (in *Injector) Run(plan Plan) {
	in.mu.Lock()
	if in.running {
		in.mu.Unlock()
		panic("faults: Injector.Run called twice")
	}
	in.running = true
	in.mu.Unlock()

	evs := plan.ordered()
	go func() {
		defer close(in.done)
		var elapsed time.Duration
		for _, ev := range evs {
			if d := ev.After - elapsed; d > 0 {
				timer := in.cfg.Clock.NewTimer(d)
				select {
				case <-timer.C:
				case <-in.stop:
					timer.Stop()
					return
				}
				elapsed = ev.After
			}
			in.apply(ev)
		}
	}()
}

// Done is closed once every scheduled event has been applied.
func (in *Injector) Done() <-chan struct{} { return in.done }

// Stop abandons any not-yet-applied events.
func (in *Injector) Stop() {
	in.mu.Lock()
	select {
	case <-in.stop:
	default:
		close(in.stop)
	}
	in.mu.Unlock()
}

// Applied returns the log of scheduled events already applied, in order.
func (in *Injector) Applied() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]string(nil), in.applied...)
}

// Triggered returns the log of event-driven faults (phase traps) that fired.
func (in *Injector) Triggered() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]string(nil), in.triggered...)
}

// apply executes one event and records it.
func (in *Injector) apply(ev Event) {
	in.mu.Lock()
	sys := in.sys
	in.mu.Unlock()

	var err error
	switch ev.Kind {
	case KindCrashHost:
		err = sys.CrashHost(ev.Host)
	case KindRestartRegistry:
		sys.RestartRegistry()
	case KindCrashLoopRegistry:
		for i := 0; i < countOf(ev); i++ {
			sys.RestartRegistry()
		}
	case KindTornWrite:
		err = in.tornWrite(ev, sys)
	case KindPartition:
		err = sys.Cluster().Net().SetPartitioned(ev.Host, ev.Peer, true)
	case KindHeal:
		err = sys.Cluster().Net().SetPartitioned(ev.Host, ev.Peer, false)
	case KindLinkFactor:
		err = sys.Cluster().Net().SetLinkFactor(ev.Host, ev.Peer, ev.Factor)
	case KindDropStatus:
		in.armTap(ev.Host, func(t *tapState) { t.drop += countOf(ev) })
	case KindDupStatus:
		in.armTap(ev.Host, func(t *tapState) { t.dup += countOf(ev) })
	case KindDelayStatus:
		in.armTap(ev.Host, func(t *tapState) {
			t.delay += countOf(ev)
			t.delayBy = ev.Delay
		})
	case KindMigrate:
		err = in.migrate(ev)
	case KindCrashOnPhase:
		in.mu.Lock()
		in.traps = append(in.traps, &phaseTrap{proc: ev.Proc, phase: ev.Phase, round: ev.Round, target: ev.Target})
		in.mu.Unlock()
	default:
		err = fmt.Errorf("faults: unknown kind %q", ev.Kind)
	}

	line := ev.String()
	if err != nil {
		line += " error=" + err.Error()
	}
	in.mu.Lock()
	in.applied = append(in.applied, line)
	in.mu.Unlock()
	if in.cfg.Events != nil {
		in.cfg.Events.Publish(events.Event{
			Time:   in.cfg.Clock.Now(),
			Source: events.SourceFaults,
			Kind:   string(ev.Kind),
			Host:   ev.Host,
			Dest:   ev.Dest,
			Proc:   ev.Proc,
			Note:   line,
			Err:    err,
		})
	}
}

// tornWrite chops Count bytes off the tail of the system's persist store,
// simulating a write torn by power loss just before a crash.
func (in *Injector) tornWrite(ev Event, sys *core.System) error {
	store := sys.Store()
	if store == nil {
		return fmt.Errorf("faults: torn-write needs a system with a persist store")
	}
	tt, ok := store.(persist.TailTruncator)
	if !ok {
		return fmt.Errorf("faults: store %T cannot tear its tail", store)
	}
	return tt.TruncateTail(countOf(ev))
}

func countOf(ev Event) int {
	if ev.Count > 0 {
		return ev.Count
	}
	return 1
}

// migrate orders the bound app to move, Count times back to back. Repeats
// model a redelivered order: the commander's dedup window should collapse
// them into one migration.
func (in *Injector) migrate(ev Event) error {
	in.mu.Lock()
	app := in.apps[ev.Proc]
	sys := in.sys
	in.mu.Unlock()
	if app == nil {
		return fmt.Errorf("faults: no app bound as %q", ev.Proc)
	}
	order := proto.MigrateOrder{
		PID:      app.Process().PID(),
		DestHost: ev.Dest,
		DestAddr: "cmd://" + ev.Dest,
	}
	for i := 0; i < countOf(ev); i++ {
		if err := sys.Migrate(app.Host(), order); err != nil {
			return err
		}
	}
	return nil
}

// Observer returns an hpcm.MigrationObserver for core.Options.Observer. It
// fires armed crash-on-phase traps synchronously from the migrating
// goroutine, so the crash lands at the exact protocol step.
func (in *Injector) Observer() hpcm.MigrationObserver {
	return func(ev hpcm.MigrationEvent) {
		in.mu.Lock()
		var victim string
		for _, tr := range in.traps {
			if tr.fired || tr.proc != ev.Proc || tr.phase != ev.Phase {
				continue
			}
			if tr.round > 0 && tr.round != ev.Round {
				continue
			}
			tr.fired = true
			if tr.target == "dest" {
				victim = ev.To
			} else {
				victim = ev.From
			}
			break
		}
		sys := in.sys
		in.mu.Unlock()
		if victim == "" {
			return
		}
		line := fmt.Sprintf("trap crash-host host=%s proc=%s phase=%s", victim, ev.Proc, ev.Phase)
		if sys != nil {
			if err := sys.CrashHost(victim); err != nil {
				line += " error=" + err.Error()
			}
		}
		in.mu.Lock()
		in.triggered = append(in.triggered, line)
		in.mu.Unlock()
		if in.cfg.Events != nil {
			in.cfg.Events.Publish(events.Event{
				Time:   in.cfg.Clock.Now(),
				Source: events.SourceFaults,
				Kind:   "trap",
				Host:   victim,
				Proc:   ev.Proc,
				Note:   line,
			})
		}
	}
}

// WrapReporter implements core.Options.WrapReporter: each node's status
// reporter is tapped so armed heartbeat faults apply on the way to the
// registry.
func (in *Injector) WrapReporter(host string, r monitor.Reporter) monitor.Reporter {
	return &tap{in: in, host: host, inner: r}
}

// armTap mutates a host's pending heartbeat interference.
func (in *Injector) armTap(host string, f func(*tapState)) {
	in.mu.Lock()
	t := in.taps[host]
	if t == nil {
		t = &tapState{}
		in.taps[host] = t
	}
	f(t)
	in.mu.Unlock()
}

type tapAction int

const (
	tapPass tapAction = iota
	tapDrop
	tapDup
	tapDelay
)

// takeStatus consumes one pending action for a host's next status report.
func (in *Injector) takeStatus(host string) (tapAction, time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	t := in.taps[host]
	if t == nil {
		return tapPass, 0
	}
	switch {
	case t.drop > 0:
		t.drop--
		return tapDrop, 0
	case t.dup > 0:
		t.dup--
		return tapDup, 0
	case t.delay > 0:
		t.delay--
		return tapDelay, t.delayBy
	}
	return tapPass, 0
}

// tap is the per-host monitor.Reporter wrapper.
type tap struct {
	in    *Injector
	host  string
	inner monitor.Reporter
}

func (t *tap) RegisterHost(host string, static proto.StaticInfo) error {
	return t.inner.RegisterHost(host, static)
}

func (t *tap) ReportStatus(host string, status proto.Status) error {
	switch act, d := t.in.takeStatus(t.host); act {
	case tapDrop:
		t.in.cfg.Counters.Inc(metrics.CtrStatusDropped)
		return nil // swallowed; the lease absorbs a bounded gap
	case tapDup:
		t.in.cfg.Counters.Inc(metrics.CtrStatusDuplicated)
		if err := t.inner.ReportStatus(host, status); err != nil {
			return err
		}
	case tapDelay:
		t.in.cfg.Counters.Inc(metrics.CtrStatusDelayed)
		t.in.cfg.Clock.Sleep(d)
	case tapPass:
		// No fault armed: the report falls through untouched.
	}
	return t.inner.ReportStatus(host, status)
}

func (t *tap) UnregisterHost(host string) error {
	return t.inner.UnregisterHost(host)
}
