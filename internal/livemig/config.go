package livemig

import "fmt"

// Config tunes the iterative precopy driver. The zero value is usable:
// every field has a documented default applied by withDefaults.
type Config struct {
	// PageBytes is the page granularity workloads should use for their
	// regions; zero selects DefaultPageBytes. The driver itself takes the
	// granularity from the region, so this is advisory plumbing for code
	// that builds regions from a Config.
	PageBytes int
	// MaxRounds caps the precopy rounds (round 1, the full copy, included);
	// zero selects 8. Reaching the cap forces a terminal decision.
	MaxRounds int
	// ConvergenceRatio is the shrink factor a round must beat to keep
	// iterating: the precopy continues only while
	// dirty < ConvergenceRatio × previous-round-dirty. Zero selects 0.7.
	ConvergenceRatio float64
	// FreezeFraction is the residual dirty fraction considered small enough
	// to freeze immediately: dirty ≤ FreezeFraction × total-pages stops the
	// iteration and ships the residual in the freeze window. Zero selects
	// 0.05.
	FreezeFraction float64
	// FallbackFraction bounds the freeze window when the iteration gives up
	// without converging: a residual above FallbackFraction × total-pages
	// abandons precopy for the classic stop-and-copy path. Zero selects 0.5.
	FallbackFraction float64
}

func (c Config) withDefaults() Config {
	if c.PageBytes <= 0 {
		c.PageBytes = DefaultPageBytes
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 8
	}
	if c.ConvergenceRatio <= 0 {
		c.ConvergenceRatio = 0.7
	}
	if c.FreezeFraction <= 0 {
		c.FreezeFraction = 0.05
	}
	if c.FallbackFraction <= 0 {
		c.FallbackFraction = 0.5
	}
	return c
}

// Decision is the driver's verdict after a precopy round.
type Decision int

const (
	// Continue: the dirty set is still shrinking; run another round.
	Continue Decision = iota
	// Freeze: the residual is small (or shrinking stopped with a modest
	// residual); stop the process at its next poll-point and ship the delta.
	Freeze
	// Fallback: precopy cannot converge — the workload dirties pages faster
	// than the link drains them; abandon the attempt and run the classic
	// stop-and-copy migration.
	Fallback
)

func (d Decision) String() string {
	switch d {
	case Continue:
		return "continue"
	case Freeze:
		return "freeze"
	case Fallback:
		return "fallback"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Decide applies the convergence rule after round (1-based) shipped its
// pages: dirty is the page count dirtied while that round was on the wire,
// prevDirty is the count the round shipped, total the region's page count.
// The rule is pure arithmetic — the live driver and the analytic model
// share it, so the model's crossover predictions match the engine.
func (c Config) Decide(round, dirty, prevDirty, total int) Decision {
	c = c.withDefaults()
	if total <= 0 {
		return Freeze
	}
	if float64(dirty) <= c.FreezeFraction*float64(total) {
		return Freeze
	}
	stalled := round > 1 && float64(dirty) >= c.ConvergenceRatio*float64(prevDirty)
	if round >= c.MaxRounds || stalled {
		if float64(dirty) > c.FallbackFraction*float64(total) {
			return Fallback
		}
		return Freeze
	}
	return Continue
}
