// Package livemig is the live-migration engine layered between hpcm and
// mpi: a paged memory model with per-page generation counters, a dirty-page
// tracker, and an iterative precopy driver. Round 1 ships every page over
// the migration intercommunicator while the source keeps computing; rounds
// 2..N ship only the pages dirtied since the previous round; when the dirty
// set stops shrinking (configurable convergence ratio / max rounds) the
// driver asks the middleware to freeze the process at its next poll-point
// and ship the residual delta plus execution state — or to fall back to the
// classic stop-and-copy migration when precopy cannot converge.
//
// The package deliberately knows nothing about hpcm: hpcm imports livemig
// (for the page model and the round loop) and livemig imports mpi only
// through the narrow SendFunc/batch wire types, so the engine is testable
// without a middleware around it.
package livemig

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
)

// DefaultPageBytes is the page granularity when a Pages region is created
// without an explicit size.
const DefaultPageBytes = 4096

// Pages is a contiguous byte region carved into fixed-size pages, each with
// a generation counter bumped on every mutating write. Workloads write
// through its API instead of into a raw []byte so the precopy driver can
// ship only what actually changed. Writes are change-suppressed: storing a
// value equal to what the page already holds does not dirty it — an
// iterative solver's dirty rate therefore shrinks as it converges, which is
// exactly the signal the precopy convergence rule feeds on.
//
// All methods are safe for concurrent use; the snapshot methods (Snapshot,
// Bytes) copy under the region lock so a transfer round observes a
// consistent generation watermark.
type Pages struct {
	mu       sync.Mutex
	data     []byte
	pageSize int
	gens     []uint64 // per-page generation of the last mutating write
	gen      uint64   // monotonic region generation counter
}

// NewPages allocates a zeroed region of size bytes with the given page
// size (DefaultPageBytes when pageBytes <= 0). size must be positive; the
// final page may be short when pageBytes does not divide size.
func NewPages(size, pageBytes int) (*Pages, error) {
	if size <= 0 {
		return nil, fmt.Errorf("livemig: region size %d", size)
	}
	if pageBytes <= 0 {
		pageBytes = DefaultPageBytes
	}
	n := (size + pageBytes - 1) / pageBytes
	p := &Pages{
		data:     make([]byte, size),
		pageSize: pageBytes,
		gens:     make([]uint64, n),
		gen:      1,
	}
	// A fresh region is entirely "dirty since generation zero": round 1 of a
	// precopy (DirtySince(0)) must ship every page, including untouched ones.
	for i := range p.gens {
		p.gens[i] = 1
	}
	return p, nil
}

// Len returns the region size in bytes.
func (p *Pages) Len() int {
	if p == nil {
		return 0
	}
	return len(p.data)
}

// PageSize returns the page granularity in bytes.
func (p *Pages) PageSize() int {
	if p == nil {
		return 0
	}
	return p.pageSize
}

// NumPages returns the page count.
func (p *Pages) NumPages() int {
	if p == nil {
		return 0
	}
	return len(p.gens)
}

// Gen returns the current region generation watermark. A page whose write
// happens after Gen() was read is reported by a later DirtySince(gen).
func (p *Pages) Gen() uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gen
}

// touch marks page i dirty at a fresh generation. Caller holds p.mu.
func (p *Pages) touch(i int) {
	p.gen++
	p.gens[i] = p.gen
}

// pageRange returns the byte bounds of page i. Caller holds p.mu.
func (p *Pages) pageRange(i int) (lo, hi int) {
	lo = i * p.pageSize
	hi = lo + p.pageSize
	if hi > len(p.data) {
		hi = len(p.data)
	}
	return lo, hi
}

// Write stores b at byte offset off, dirtying only the pages whose
// contents actually change.
func (p *Pages) Write(off int, b []byte) error {
	if off < 0 || off+len(b) > len(p.data) {
		return fmt.Errorf("livemig: write [%d,%d) outside region of %d bytes", off, off+len(b), len(p.data))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(b) > 0 {
		page := off / p.pageSize
		_, hi := p.pageRange(page)
		n := hi - off
		if n > len(b) {
			n = len(b)
		}
		chunk := b[:n]
		dst := p.data[off : off+n]
		if !bytesEqual(dst, chunk) {
			copy(dst, chunk)
			p.touch(page)
		}
		b = b[n:]
		off += n
	}
	return nil
}

// bytesEqual avoids importing bytes for one comparison on the write path.
func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Float64 reads the float64 at word index i (byte offset 8*i).
func (p *Pages) Float64(i int) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return math.Float64frombits(binary.LittleEndian.Uint64(p.data[8*i:]))
}

// SetFloat64 stores v at word index i, dirtying the page only when the bit
// pattern changes.
func (p *Pages) SetFloat64(i int, v float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	off := 8 * i
	bits := math.Float64bits(v)
	if binary.LittleEndian.Uint64(p.data[off:]) == bits {
		return
	}
	binary.LittleEndian.PutUint64(p.data[off:], bits)
	p.touch(off / p.pageSize)
}

// ReadFloat64s fills dst with the float64 words starting at word index i.
func (p *Pages) ReadFloat64s(i int, dst []float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	off := 8 * i
	for k := range dst {
		dst[k] = math.Float64frombits(binary.LittleEndian.Uint64(p.data[off+8*k:]))
	}
}

// WriteFloat64s stores vals starting at word index i in one locked pass,
// dirtying only pages where at least one bit pattern changed.
func (p *Pages) WriteFloat64s(i int, vals []float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	off := 8 * i
	dirtyPage := -1
	for k, v := range vals {
		o := off + 8*k
		bits := math.Float64bits(v)
		if binary.LittleEndian.Uint64(p.data[o:]) == bits {
			continue
		}
		binary.LittleEndian.PutUint64(p.data[o:], bits)
		if page := o / p.pageSize; page != dirtyPage {
			p.touch(page)
			dirtyPage = page
		}
	}
}

// Bytes returns a copy of the whole region — the stop-and-copy / checkpoint
// image. hpcm's state collection calls this through its *Pages type switch.
func (p *Pages) Bytes() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]byte, len(p.data))
	copy(out, p.data)
	return out
}

// Load replaces the region contents from a transferred image. Every page is
// marked dirty at a fresh generation: a later migration away from this
// incarnation must ship everything again.
func (p *Pages) Load(data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(data) != len(p.data) {
		return fmt.Errorf("livemig: load %d bytes into region of %d", len(data), len(p.data))
	}
	copy(p.data, data)
	p.gen++
	for i := range p.gens {
		p.gens[i] = p.gen
	}
	return nil
}

// DirtySince returns the pages written after generation gen, sorted.
func (p *Pages) DirtySince(gen uint64) []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dirtySinceLocked(gen)
}

func (p *Pages) dirtySinceLocked(gen uint64) []int {
	var ids []int
	for i, g := range p.gens {
		if g > gen {
			ids = append(ids, i)
		}
	}
	sort.Ints(ids)
	return ids
}

// Snapshot atomically collects one precopy round's payload: the pages
// dirtied after since, copies of their current contents, and the region
// generation watermark the copies are consistent with. Pages written after
// the returned gen show up in the next DirtySince(gen).
func (p *Pages) Snapshot(since uint64) (ids []int, parts [][]byte, gen uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ids = p.dirtySinceLocked(since)
	parts = make([][]byte, len(ids))
	for k, id := range ids {
		lo, hi := p.pageRange(id)
		buf := make([]byte, hi-lo)
		copy(buf, p.data[lo:hi])
		parts[k] = buf
	}
	return ids, parts, p.gen
}

// ApplyPage installs a received page image at page id (destination side).
func (p *Pages) ApplyPage(id int, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id < 0 || id >= len(p.gens) {
		return fmt.Errorf("livemig: apply to page %d of %d", id, len(p.gens))
	}
	lo, hi := p.pageRange(id)
	if len(data) != hi-lo {
		return fmt.Errorf("livemig: page %d image is %d bytes, want %d", id, len(data), hi-lo)
	}
	copy(p.data[lo:hi], data)
	p.touch(id)
	return nil
}
