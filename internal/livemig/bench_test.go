package livemig

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkPagesWriteRow measures the write-through cost of one row-sized
// change-suppressed write — the hot path a paged workload pays per sweep.
func BenchmarkPagesWriteRow(b *testing.B) {
	const words = 512
	p, err := NewPages(words*8*64, words*8)
	if err != nil {
		b.Fatal(err)
	}
	row := make([]float64, words)
	for i := range row {
		row[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row[0] = float64(i) // keep at least one word changing
		p.WriteFloat64s((i%64)*words, row)
	}
}

// BenchmarkDirtySince measures a round's dirty-set scan over a 4096-page
// region with a 5% residual.
func BenchmarkDirtySince(b *testing.B) {
	p, err := NewPages(4096*64, 64)
	if err != nil {
		b.Fatal(err)
	}
	g := p.Gen()
	for i := 0; i < 4096; i += 20 {
		p.SetFloat64(i*8, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := p.DirtySince(g); len(got) == 0 {
			b.Fatal("empty dirty set")
		}
	}
}

// BenchmarkModeledDowntime reports the analytic model's freeze window as
// the benchmark's ns/op, one sub-benchmark per (path, dirty-rate) point.
// cmd/benchjson picks these up into BENCH_livemig.json, so the 3x drift
// guard in `make ci` literally guards modeled migration downtime: a change
// to the page model, the convergence rule or the freeze path that inflates
// downtime more than 3x fails CI.
func BenchmarkModeledDowntime(b *testing.B) {
	base := Scenario{
		TotalPages:   4096,
		PageBytes:    4096,
		Bandwidth:    12.5e6,
		SpawnLatency: 300 * time.Millisecond,
		Handshake:    2 * time.Millisecond,
	}
	points := []struct {
		name string
		rate float64
	}{
		{"stopcopy", 0}, // reported as the stop-and-copy window
		{"precopy_r100", 100},
		{"precopy_r1000", 1000},
		{"fallback_r50000", 50_000},
	}
	for _, pt := range points {
		b.Run(fmt.Sprintf("%s_pages%d", pt.name, base.TotalPages), func(b *testing.B) {
			sc := base
			sc.DirtyPagesPerSec = pt.rate
			var out Outcome
			for i := 0; i < b.N; i++ {
				out = Simulate(Config{}, sc)
			}
			d := out.Downtime
			if pt.rate == 0 {
				d = out.StopCopy
			}
			b.ReportMetric(float64(d.Nanoseconds()), "ns/op")
		})
	}
}
