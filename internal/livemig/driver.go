package livemig

import (
	"errors"
	"fmt"
	"sync"
)

// BatchMeta announces one precopy batch on the migration intercommunicator.
// The pages themselves follow as one multi-part raw message (the mpi
// [][]byte fast path), so a round moves with a single copy end to end.
type BatchMeta struct {
	// Round is 1-based; round 1 carries the full region.
	Round int
	// PageIDs lists the pages in the batch, sorted; the k-th part is the
	// image of page PageIDs[k]. An empty batch sends no parts message.
	PageIDs []int
	// PageBytes and Total describe the region geometry so the destination
	// can allocate before the first page lands.
	PageBytes int
	Total     int
	// Final marks the freeze batch: the region is complete once it is
	// applied, and the classic execution-state transfer follows.
	Final bool
	// Cancel aborts the migration attempt: the destination discards the
	// region and exits (precopy fallback, or the source giving up).
	Cancel bool
}

// SendFunc ships one batch to the destination. hpcm binds this to the
// migration intercommunicator; the call blocks for the batch's virtual
// transfer time, which is what paces precopy rounds on the virtual clock
// and makes rounds contend with application traffic on the simulated
// network.
type SendFunc func(meta BatchMeta, parts [][]byte) error

// RoundFunc observes one completed round: the pages it shipped and the
// pages dirtied while it was on the wire. hpcm raises its per-round
// migration event here, which is where fault injection can crash a host
// mid-precopy.
type RoundFunc func(round, sentPages, dirtyAfter int)

// ErrStopped reports a precopy iteration cancelled between rounds (the
// process finished or was killed while the driver was still copying).
var ErrStopped = errors.New("livemig: precopy stopped")

// Result summarises a finished precopy iteration. The destination holds
// every page as of ShippedGen; pages dirtied after it are the freeze
// residual.
type Result struct {
	// Decision is Freeze or Fallback — never Continue.
	Decision   Decision
	ShippedGen uint64
	Rounds     int
	// PagesSent counts pages shipped across all rounds; PagesResent is the
	// rounds 2..N share of it (the precopy overhead versus stop-and-copy).
	PagesSent   int
	PagesResent int
}

// Driver runs the iterative precopy rounds for one migration attempt while
// the application keeps computing. It owns no goroutine: the caller runs
// Run wherever it wants concurrency and uses Stop to cancel between rounds.
type Driver struct {
	cfg     Config
	pages   *Pages
	send    SendFunc
	onRound RoundFunc

	mu      sync.Mutex
	stopped bool
}

// NewDriver builds a driver for one attempt over the given region.
func NewDriver(cfg Config, pages *Pages, send SendFunc, onRound RoundFunc) (*Driver, error) {
	if pages == nil || pages.Len() == 0 {
		return nil, errors.New("livemig: driver needs a non-empty region")
	}
	if send == nil {
		return nil, errors.New("livemig: driver needs a send function")
	}
	return &Driver{cfg: cfg.withDefaults(), pages: pages, send: send, onRound: onRound}, nil
}

// Stop cancels the iteration at the next round boundary.
func (d *Driver) Stop() {
	d.mu.Lock()
	d.stopped = true
	d.mu.Unlock()
}

func (d *Driver) isStopped() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stopped
}

// Run executes precopy rounds until the convergence rule yields a terminal
// decision. It returns ErrStopped when cancelled, or the send error when a
// round fails on the wire; either way the attempt is over and the caller
// decides between abort and fallback.
func (d *Driver) Run() (Result, error) {
	var res Result
	total := d.pages.NumPages()
	shipped := uint64(0)
	for round := 1; ; round++ {
		if d.isStopped() {
			return res, ErrStopped
		}
		ids, parts, gen := d.pages.Snapshot(shipped)
		meta := BatchMeta{
			Round:     round,
			PageIDs:   ids,
			PageBytes: d.pages.PageSize(),
			Total:     d.pages.Len(),
		}
		if err := d.send(meta, parts); err != nil {
			return res, fmt.Errorf("livemig: precopy round %d: %w", round, err)
		}
		shipped = gen
		res.Rounds = round
		res.PagesSent += len(ids)
		if round > 1 {
			res.PagesResent += len(ids)
		}
		res.ShippedGen = shipped
		dirty := len(d.pages.DirtySince(shipped))
		if d.onRound != nil {
			d.onRound(round, len(ids), dirty)
		}
		switch dec := d.cfg.Decide(round, dirty, len(ids), total); dec {
		case Continue:
		default:
			res.Decision = dec
			return res, nil
		}
	}
}
