package livemig

import (
	"math"
	"time"
)

// Scenario parameterises one modeled migration for the analytic precopy
// model: a region of TotalPages pages moving over a link of Bandwidth
// bytes/s while the application dirties pages at DirtyPagesPerSec. The
// model shares Config.Decide with the live driver, so its crossover — the
// dirty rate where precopy stops paying and fallback engages — is the
// engine's crossover, computed without running anything.
type Scenario struct {
	TotalPages int
	PageBytes  int
	// Bandwidth is the migration link speed in bytes per second.
	Bandwidth float64
	// SpawnLatency is the dynamic-process-creation cost the stop-and-copy
	// path (and the fallback's second spawn) pays inside its freeze window.
	SpawnLatency time.Duration
	// Handshake is the per-transfer control-message overhead (batch meta,
	// resume status).
	Handshake time.Duration
	// DirtyPagesPerSec is the application's page-dirtying rate. Writes land
	// on uniformly random pages, so the distinct-page count saturates
	// toward TotalPages instead of growing linearly.
	DirtyPagesPerSec float64
}

// Outcome is one modeled migration: what the engine would decide and what
// each path's freeze window (downtime) would be.
type Outcome struct {
	// Mode is "precopy" (the iteration froze with a small residual) or
	// "fallback" (it could not converge and re-ran stop-and-copy).
	Mode   string
	Rounds int
	// PagesSent counts pages shipped over all precopy rounds; PagesResent
	// is the rounds 2..N share.
	PagesSent   int
	PagesResent int
	// Downtime is the modeled freeze window of the chosen path; StopCopy is
	// the stop-and-copy freeze window for the same scenario, the baseline
	// the sweep compares against.
	Downtime time.Duration
	StopCopy time.Duration
	// PrecopySeconds is the time spent copying before the freeze (the
	// application computes throughout it; it is not downtime).
	PrecopySeconds float64
}

// distinctDirty models how many distinct pages a uniform write stream
// touches in t seconds: total·(1 − e^(−rate·t/total)).
func distinctDirty(total int, rate, t float64) int {
	if rate <= 0 || t <= 0 {
		return 0
	}
	n := float64(total) * (1 - math.Exp(-rate*t/float64(total)))
	d := int(math.Round(n))
	if d > total {
		d = total
	}
	return d
}

// Simulate runs the analytic model for one scenario. Pure arithmetic over
// the inputs: two calls with equal arguments return identical outcomes,
// which is what makes the livemig experiment sweep byte-deterministic.
func Simulate(cfg Config, sc Scenario) Outcome {
	cfg = cfg.withDefaults()
	secs := func(d time.Duration) float64 { return d.Seconds() }
	dur := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	pageSec := float64(sc.PageBytes) / sc.Bandwidth // wire time of one page

	// Stop-and-copy freeze window: spawn the destination, handshake, ship
	// the full region, all while the application is stopped.
	stopCopy := dur(secs(sc.SpawnLatency) + secs(sc.Handshake) + float64(sc.TotalPages)*pageSec)

	out := Outcome{StopCopy: stopCopy}
	dirty := sc.TotalPages // round 1 ships everything
	for round := 1; ; round++ {
		sendSec := secs(sc.Handshake) + float64(dirty)*pageSec
		out.Rounds = round
		out.PagesSent += dirty
		if round > 1 {
			out.PagesResent += dirty
		}
		out.PrecopySeconds += sendSec
		next := distinctDirty(sc.TotalPages, sc.DirtyPagesPerSec, sendSec)
		dec := cfg.Decide(round, next, dirty, sc.TotalPages)
		dirty = next
		switch dec {
		case Continue:
		case Freeze:
			// Freeze window: ship the residual and handshake the resume; the
			// destination already exists, so no spawn is paid.
			out.Mode = "precopy"
			out.Downtime = dur(secs(sc.Handshake) + float64(dirty)*pageSec)
			return out
		case Fallback:
			// The attempt is abandoned (one cancel handshake) and the classic
			// stop-and-copy runs from scratch — its full freeze window, spawn
			// included, plus the wasted precopy as extra migration time.
			out.Mode = "fallback"
			out.Downtime = stopCopy + sc.Handshake
			return out
		}
	}
}
