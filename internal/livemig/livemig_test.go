package livemig

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

func mustPages(t *testing.T, size, pageBytes int) *Pages {
	t.Helper()
	p, err := NewPages(size, pageBytes)
	if err != nil {
		t.Fatalf("NewPages(%d, %d): %v", size, pageBytes, err)
	}
	return p
}

func TestPagesGeometry(t *testing.T) {
	p := mustPages(t, 100, 32)
	if p.Len() != 100 || p.PageSize() != 32 || p.NumPages() != 4 {
		t.Fatalf("geometry = (%d, %d, %d), want (100, 32, 4)", p.Len(), p.PageSize(), p.NumPages())
	}
	if _, err := NewPages(0, 32); err == nil {
		t.Fatal("NewPages(0) succeeded")
	}
	// A fresh region is entirely dirty since generation zero.
	if got := p.DirtySince(0); len(got) != 4 {
		t.Fatalf("fresh DirtySince(0) = %v, want all 4 pages", got)
	}
}

func TestPagesWriteDirtiesOnlyChangedPages(t *testing.T) {
	p := mustPages(t, 128, 32)
	g := p.Gen()
	if err := p.Write(33, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if got := p.DirtySince(g); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("DirtySince = %v, want [1]", got)
	}
	// Rewriting identical bytes must not dirty anything.
	g = p.Gen()
	if err := p.Write(33, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if got := p.DirtySince(g); len(got) != 0 {
		t.Fatalf("unchanged write dirtied %v", got)
	}
	// A write spanning a page boundary dirties both pages.
	g = p.Gen()
	if err := p.Write(30, []byte{9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if got := p.DirtySince(g); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("spanning write dirtied %v, want [0 1]", got)
	}
	if err := p.Write(120, make([]byte, 16)); err == nil {
		t.Fatal("out-of-range write succeeded")
	}
}

func TestPagesFloat64ChangeSuppression(t *testing.T) {
	p := mustPages(t, 64*8, 64) // 8 words per page
	g := p.Gen()
	p.SetFloat64(3, 1.5)
	if got := p.Float64(3); got != 1.5 {
		t.Fatalf("Float64(3) = %v", got)
	}
	if got := p.DirtySince(g); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("DirtySince = %v, want [0]", got)
	}
	g = p.Gen()
	p.SetFloat64(3, 1.5) // same bits: suppressed
	p.WriteFloat64s(8, []float64{0, 0, 0})
	if got := p.DirtySince(g); len(got) != 0 {
		t.Fatalf("no-op writes dirtied %v", got)
	}
	g = p.Gen()
	p.WriteFloat64s(8, []float64{0, 2.5, 0}) // one changed word in page 1
	if got := p.DirtySince(g); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("DirtySince = %v, want [1]", got)
	}
	dst := make([]float64, 3)
	p.ReadFloat64s(8, dst)
	if !reflect.DeepEqual(dst, []float64{0, 2.5, 0}) {
		t.Fatalf("ReadFloat64s = %v", dst)
	}
}

func TestPagesSnapshotLoadApply(t *testing.T) {
	p := mustPages(t, 96, 32)
	p.SetFloat64(0, 7)
	ids, parts, gen := p.Snapshot(0)
	if len(ids) != 3 || len(parts) != 3 {
		t.Fatalf("full snapshot = %v (%d parts)", ids, len(parts))
	}
	// Writes after the snapshot's watermark are the next round's delta.
	p.SetFloat64(8, 9) // page 2
	ids2, parts2, _ := p.Snapshot(gen)
	if !reflect.DeepEqual(ids2, []int{2}) {
		t.Fatalf("delta snapshot = %v, want [2]", ids2)
	}

	// Rebuild a destination region from the two snapshots.
	q := mustPages(t, 96, 32)
	for k, id := range ids {
		if err := q.ApplyPage(id, parts[k]); err != nil {
			t.Fatal(err)
		}
	}
	for k, id := range ids2 {
		if err := q.ApplyPage(id, parts2[k]); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(q.Bytes(), p.Bytes()) {
		t.Fatal("reassembled region differs from source")
	}
	if err := q.ApplyPage(9, nil); err == nil {
		t.Fatal("ApplyPage out of range succeeded")
	}
	if err := q.ApplyPage(0, []byte{1}); err == nil {
		t.Fatal("ApplyPage with short image succeeded")
	}

	// Load replaces the whole region and re-dirties every page.
	img := p.Bytes()
	r := mustPages(t, 96, 32)
	g := r.Gen()
	if err := r.Load(img); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Bytes(), img) {
		t.Fatal("Load image mismatch")
	}
	if got := r.DirtySince(g); len(got) != 3 {
		t.Fatalf("Load dirtied %v, want all pages", got)
	}
	if err := r.Load(img[:10]); err == nil {
		t.Fatal("Load with wrong size succeeded")
	}
}

func TestDecide(t *testing.T) {
	cfg := Config{MaxRounds: 4, ConvergenceRatio: 0.7, FreezeFraction: 0.05, FallbackFraction: 0.5}
	cases := []struct {
		round, dirty, prev int
		want               Decision
	}{
		{1, 4, 100, Freeze},    // tiny residual freezes immediately
		{1, 60, 100, Continue}, // round 1 always gets a second round
		{2, 30, 60, Continue},  // shrinking (30 < 0.7*60)
		{2, 45, 60, Freeze},    // stalled but residual < 50%: freeze anyway
		{2, 58, 60, Fallback},  // stalled with residual > 50%: fall back
		{4, 20, 25, Freeze},    // max rounds, modest residual
		{4, 80, 90, Fallback},  // max rounds, huge residual
		{3, 10, 40, Continue},  // still shrinking fast
	}
	for _, c := range cases {
		if got := cfg.Decide(c.round, c.dirty, c.prev, 100); got != c.want {
			t.Errorf("Decide(round=%d dirty=%d prev=%d) = %v, want %v", c.round, c.dirty, c.prev, got, c.want)
		}
	}
	if got := (Config{}).Decide(1, 0, 0, 0); got != Freeze {
		t.Errorf("empty region Decide = %v, want Freeze", got)
	}
	for d, s := range map[Decision]string{Continue: "continue", Freeze: "freeze", Fallback: "fallback", Decision(9): "Decision(9)"} {
		if d.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(d), d.String(), s)
		}
	}
}

// recordingSend captures batches and optionally dirties pages between
// rounds, emulating an application computing while the round is on the
// wire.
type recordingSend struct {
	metas   []BatchMeta
	between func(round int)
	fail    error
}

func (s *recordingSend) send(meta BatchMeta, parts [][]byte) error {
	if s.fail != nil {
		return s.fail
	}
	if len(meta.PageIDs) != len(parts) {
		return errors.New("meta/parts length mismatch")
	}
	s.metas = append(s.metas, meta)
	if s.between != nil {
		s.between(meta.Round)
	}
	return nil
}

func TestDriverConvergesToFreeze(t *testing.T) {
	p := mustPages(t, 16*64, 64) // 16 pages
	dirtied := map[int]int{1: 6, 2: 3, 3: 0}
	s := &recordingSend{}
	s.between = func(round int) {
		for i := 0; i < dirtied[round]; i++ {
			p.SetFloat64(i*8, float64(round)+float64(i)) // page i
		}
	}
	var rounds []int
	d, err := NewDriver(Config{MaxRounds: 8, FreezeFraction: 0.05}, p, s.send,
		func(round, sent, dirty int) { rounds = append(rounds, sent) })
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != Freeze {
		t.Fatalf("decision = %v, want Freeze", res.Decision)
	}
	// Round 1 ships all 16 pages, round 2 the 6 dirtied, round 3 the 3.
	if want := []int{16, 6, 3}; !reflect.DeepEqual(rounds, want) {
		t.Fatalf("per-round sent = %v, want %v", rounds, want)
	}
	if res.Rounds != 3 || res.PagesSent != 25 || res.PagesResent != 9 {
		t.Fatalf("result = %+v", res)
	}
	// Nothing was written after the last snapshot: the residual is empty.
	if got := p.DirtySince(res.ShippedGen); len(got) != 0 {
		t.Fatalf("residual = %v, want none", got)
	}
}

func TestDriverFallsBackWhenDirtyStalls(t *testing.T) {
	p := mustPages(t, 16*64, 64)
	s := &recordingSend{}
	s.between = func(round int) {
		// Every round dirties 12 of 16 pages: no convergence.
		for i := 0; i < 12; i++ {
			p.SetFloat64(i*8, float64(round*100+i))
		}
	}
	d, err := NewDriver(Config{MaxRounds: 3, FallbackFraction: 0.5}, p, s.send, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != Fallback {
		t.Fatalf("decision = %v, want Fallback", res.Decision)
	}
}

func TestDriverStopAndSendError(t *testing.T) {
	p := mustPages(t, 4*64, 64)
	d, err := NewDriver(Config{}, p, (&recordingSend{fail: errors.New("link down")}).send, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(); err == nil {
		t.Fatal("Run with failing send succeeded")
	}
	d2, err := NewDriver(Config{}, p, (&recordingSend{}).send, nil)
	if err != nil {
		t.Fatal(err)
	}
	d2.Stop()
	if _, err := d2.Run(); !errors.Is(err, ErrStopped) {
		t.Fatalf("stopped Run err = %v, want ErrStopped", err)
	}
	if _, err := NewDriver(Config{}, nil, (&recordingSend{}).send, nil); err == nil {
		t.Fatal("NewDriver without region succeeded")
	}
	if _, err := NewDriver(Config{}, p, nil, nil); err == nil {
		t.Fatal("NewDriver without send succeeded")
	}
}

func TestSimulateCrossover(t *testing.T) {
	cfg := Config{}
	base := Scenario{
		TotalPages:       4096,
		PageBytes:        4096,
		Bandwidth:        12.5e6,
		SpawnLatency:     300 * time.Millisecond,
		Handshake:        2 * time.Millisecond,
		DirtyPagesPerSec: 100,
	}
	slow := Simulate(cfg, base)
	if slow.Mode != "precopy" {
		t.Fatalf("low dirty rate mode = %q, want precopy", slow.Mode)
	}
	if slow.Downtime >= slow.StopCopy {
		t.Fatalf("precopy downtime %v not below stop-and-copy %v", slow.Downtime, slow.StopCopy)
	}
	hot := base
	hot.DirtyPagesPerSec = 50_000
	fb := Simulate(cfg, hot)
	if fb.Mode != "fallback" {
		t.Fatalf("hot dirty rate mode = %q, want fallback", fb.Mode)
	}
	if fb.Downtime < fb.StopCopy {
		t.Fatalf("fallback downtime %v below stop-and-copy %v", fb.Downtime, fb.StopCopy)
	}
	// Identical inputs must produce identical outcomes (the determinism the
	// experiment sweep relies on).
	if again := Simulate(cfg, hot); again != fb {
		t.Fatalf("Simulate not deterministic: %+v vs %+v", again, fb)
	}
}
