package hpcm

import (
	"errors"
	"testing"
	"time"
)

// preinitMain: one poll-point, lazy payload, completes after migration.
func preinitMain(payload int) Main {
	return func(ctx *Context) error {
		bulk := make([]byte, payload)
		if err := ctx.RegisterLazy("bulk", &bulk); err != nil {
			return err
		}
		if !ctx.Resumed() {
			if err := ctx.PollPoint("go"); err != nil {
				return err
			}
			return errors.New("expected migration at first poll point")
		}
		return ctx.Await("bulk")
	}
}

func TestPreInitSkipsSpawnLatency(t *testing.T) {
	// A deliberately huge spawn latency: if migration pays it, InitDone
	// lags PollPointAt by >= 2s; with pre-initialization it must not.
	binder := &testBinder{}
	mw, _ := newMW(t, binder, 2*time.Second)

	p, err := mw.Start("app", "ws1", preinitMain(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.PreInit("ws2"); err != nil {
		t.Fatal(err)
	}
	if err := p.PreInit("ws2"); err != nil { // idempotent
		t.Fatal(err)
	}
	if got := p.PreInited(); len(got) != 1 || got[0] != "ws2" {
		t.Fatalf("PreInited = %v", got)
	}
	p.Signal(Command{DestHost: "ws2"})
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	rec := p.Records()[0]
	if init := rec.InitDone.Sub(rec.PollPointAt); init >= 1500*time.Millisecond {
		t.Fatalf("init took %v despite pre-initialization (spawn latency paid)", init)
	}
	if p.Host() != "ws2" {
		t.Fatalf("host = %s", p.Host())
	}
	if len(p.PreInited()) != 0 {
		t.Fatal("pre-initialized process not consumed")
	}
}

func TestWithoutPreInitPaysSpawnLatency(t *testing.T) {
	mw, _ := newMW(t, nil, 2*time.Second)
	p, err := mw.Start("app", "ws1", preinitMain(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	p.Signal(Command{DestHost: "ws2"})
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	rec := p.Records()[0]
	if init := rec.InitDone.Sub(rec.PollPointAt); init < 1500*time.Millisecond {
		t.Fatalf("init took only %v without pre-initialization", init)
	}
}

func TestPreInitUnusedReleasedOnCompletion(t *testing.T) {
	mw, _ := newMW(t, nil, 0)
	gate := make(chan struct{})
	p, err := mw.Start("app", "ws1", func(ctx *Context) error {
		<-gate // hold the process open until the preinits exist
		return ctx.PollPoint("only")
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.PreInit("ws2"); err != nil {
		t.Fatal(err)
	}
	if err := p.PreInit("ws3"); err != nil {
		t.Fatal(err)
	}
	close(gate)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(p.PreInited()) != 0 {
		t.Fatalf("preinits after completion: %v", p.PreInited())
	}
	// The waiting children's Accept calls must be released; the universe
	// drains (no goroutine stays blocked on a port forever).
	done := make(chan struct{})
	go func() {
		mw.universe.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pre-initialized children never released")
	}
	if err := p.PreInit("ws4"); err == nil {
		t.Fatal("PreInit after completion accepted")
	}
}

func TestPreInitDeadFallsBackToSpawn(t *testing.T) {
	mw, _ := newMW(t, nil, 0)
	p, err := mw.Start("app", "ws1", preinitMain(1<<16))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.PreInit("ws2"); err != nil {
		t.Fatal(err)
	}
	// Kill the waiting child by closing its port behind the scenes.
	p.mu.Lock()
	port := p.preinit["ws2"]
	p.mu.Unlock()
	mw.universe.ClosePort(port)

	p.Signal(Command{DestHost: "ws2"})
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if p.Host() != "ws2" || p.Migrations() != 1 {
		t.Fatalf("fallback failed: host=%s migrations=%d", p.Host(), p.Migrations())
	}
}
