package hpcm

import (
	"fmt"
	"sync"
)

// Communication state transfer: the paper's processes keep communicating
// while one of them moves ("the migrating process and initialized process
// can communicate in one communicator"), and HPCM transfers communication
// state so no message is lost. Here the middleware keeps a directory of
// its migration-enabled processes, and each Process owns a mailbox that
// belongs to the process identity — not to an incarnation — so messages
// delivered before, during or after a migration are all received by
// whichever incarnation is alive, in order.

// AnyPeer and AnyTag are wildcards for ReceiveFrom.
const (
	AnyPeer = "*"
	AnyTag  = -1
)

// appMsg is one inter-process message.
type appMsg struct {
	from string
	tag  int
	data []byte
}

// mailbox is the process-owned message queue.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []appMsg
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) deliver(msg appMsg) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("hpcm: peer process has finished")
	}
	m.queue = append(m.queue, msg)
	m.cond.Broadcast()
	return nil
}

func (m *mailbox) receive(from string, tag int) (appMsg, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, msg := range m.queue {
			if (from == AnyPeer || msg.from == from) && (tag == AnyTag || msg.tag == tag) {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				return msg, nil
			}
		}
		if m.closed {
			return appMsg{}, fmt.Errorf("hpcm: process finished while receiving")
		}
		m.cond.Wait()
	}
}

func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

// lookup finds a running process by name.
func (m *Middleware) lookup(name string) (*Process, bool) {
	v, ok := m.procs.Load(name)
	if !ok {
		return nil, false
	}
	return v.(*Process), true
}

// register adds a process to the directory; the name must be unique among
// live processes.
func (m *Middleware) register(p *Process) error {
	if _, loaded := m.procs.LoadOrStore(p.name, p); loaded {
		return fmt.Errorf("hpcm: a process named %q is already running", p.name)
	}
	return nil
}

func (m *Middleware) deregister(p *Process) {
	m.procs.CompareAndDelete(p.name, p)
}

// SendTo sends v to the named peer process, wherever it currently runs.
// The payload is charged to the transport between the two processes'
// current hosts; delivery is into the peer's process-owned mailbox, so a
// concurrent migration of either side cannot lose the message.
func (c *Context) SendTo(peer string, tag int, v any) error {
	if tag < 0 {
		return fmt.Errorf("hpcm: negative tag %d", tag)
	}
	p := c.proc
	dest, ok := p.mw.lookup(peer)
	if !ok {
		return fmt.Errorf("hpcm: no process named %q", peer)
	}
	data, err := gobEncode(v)
	if err != nil {
		return fmt.Errorf("hpcm: encode for %q: %w", peer, err)
	}
	// Charge the wire between the current hosts. The destination host is
	// re-read at send time: a migrated peer receives at its new home.
	if err := p.mw.universe.Transport().Send(p.Host(), dest.Host(), int64(len(data))); err != nil {
		return fmt.Errorf("hpcm: transport to %q: %w", peer, err)
	}
	return dest.mbox.deliver(appMsg{from: p.name, tag: tag, data: data})
}

// ReceiveFrom blocks until a message from peer (or AnyPeer) with tag (or
// AnyTag) arrives, decodes it into ptr, and returns the sender's name.
// Messages survive the receiver's own migrations: the mailbox belongs to
// the process, not the incarnation.
func (c *Context) ReceiveFrom(peer string, tag int, ptr any) (string, error) {
	msg, err := c.proc.mbox.receive(peer, tag)
	if err != nil {
		return "", err
	}
	if err := gobDecode(msg.data, ptr); err != nil {
		return "", fmt.Errorf("hpcm: decode from %q: %w", msg.from, err)
	}
	return msg.from, nil
}

// Pending reports how many undelivered messages wait in the process's
// mailbox — the communication state a migration carries along.
func (p *Process) Pending() int {
	p.mbox.mu.Lock()
	defer p.mbox.mu.Unlock()
	return len(p.mbox.queue)
}

// pendingBytes sums the queued message payloads: the communication state a
// migration must also move.
func (p *Process) pendingBytes() int64 {
	p.mbox.mu.Lock()
	defer p.mbox.mu.Unlock()
	var n int64
	for _, m := range p.mbox.queue {
		n += int64(len(m.data))
	}
	return n
}
