package hpcm

import (
	"fmt"
	"time"

	"autoresched/internal/livemig"
	"autoresched/internal/mpi"
	"autoresched/internal/vclock"
)

// Context is the view an application body has of the middleware: state
// registration, poll-points, CPU and memory charging, and resume
// information. A fresh Context is passed to Main on every incarnation.
type Context struct {
	proc  *Process
	env   *mpi.Env
	label string
	state *registry
}

// Name returns the application name.
func (c *Context) Name() string { return c.proc.name }

// Host returns the host this incarnation runs on.
func (c *Context) Host() string { return c.env.Host }

// Clock returns the middleware clock.
func (c *Context) Clock() vclock.Clock { return c.proc.mw.clock }

// Resumed reports whether this incarnation continues a migrated execution.
func (c *Context) Resumed() bool { return c.label != "" }

// ResumeLabel returns the poll-point label execution should continue from
// ("" on a fresh start). The application dispatches on it, exactly as
// HPCM's precompiler-generated restart code does.
func (c *Context) ResumeLabel() string { return c.label }

// Register declares an eager memory-state variable: collected at migration
// and restored before the resumed incarnation starts. ptr must be a pointer
// to a gob-serialisable value.
func (c *Context) Register(name string, ptr any) error {
	return c.state.register(name, ptr, false)
}

// RegisterLazy declares a bulk memory-state variable: streamed to the
// destination in chunks while the resumed incarnation already executes
// (the restoration/execution overlap of Section 5.2). Call Await before
// touching it on a resumed incarnation.
func (c *Context) RegisterLazy(name string, ptr any) error {
	return c.state.register(name, ptr, true)
}

// RegisterPages declares a paged bulk memory region (lazy, like
// RegisterLazy: call Await before touching it on a resumed incarnation).
// When the middleware runs with Options.Live and this is the process's only
// paged region, migrations take the iterative-precopy live path: pages
// stream while the application keeps computing, and the process freezes
// only for the residual dirty set. On the classic path — and in
// checkpoints — the region moves as its flat image.
func (c *Context) RegisterPages(name string, pages *livemig.Pages) error {
	if pages == nil {
		return fmt.Errorf("hpcm: RegisterPages %q with nil region", name)
	}
	return c.state.register(name, pages, true)
}

// Await blocks until the named lazy state is restored. On fresh
// incarnations it returns immediately.
func (c *Context) Await(name string) error { return c.state.await(name) }

// Compute charges work CPU work-units on the current host, blocking in
// virtual time for however long the host's scheduler takes to deliver them.
// It fails with ErrKilled when the incarnation's host has "crashed".
func (c *Context) Compute(work float64) error {
	if c.proc.killed.Load() {
		return ErrKilled
	}
	c.proc.mu.Lock()
	hp := c.proc.hostProc
	c.proc.mu.Unlock()
	if err := hp.Compute(work); err != nil {
		return err
	}
	if c.proc.killed.Load() {
		return ErrKilled
	}
	return nil
}

// SetMemory updates the incarnation's resident memory accounting.
func (c *Context) SetMemory(bytes int64) {
	c.proc.mu.Lock()
	hp := c.proc.hostProc
	c.proc.mu.Unlock()
	hp.SetMemory(bytes)
}

// Sleep blocks the application in virtual time.
func (c *Context) Sleep(d time.Duration) { c.proc.mw.clock.Sleep(d) }

// PollPoint is a migration point. If no migrate command is pending it
// returns quickly (writing a checkpoint first when one is due); otherwise
// it carries out the migration to the commanded destination and returns
// ErrMigrated, which Main must propagate. A migration that fails before
// its commit point returns a *MigrationFailure, which Main must also
// propagate: the runtime then restores the process from its last
// checkpoint — written right here, before the migration starts — on a
// fresh host.
func (c *Context) PollPoint(label string) error {
	if c.proc.killed.Load() {
		return ErrKilled
	}
	// A pending eviction outranks everything else, including an in-flight
	// live migration (finish() cancels the attempt): checkpoint here and
	// stop, handing the job back to the control plane's queue.
	if c.proc.evictReq.CompareAndSwap(true, false) {
		if c.proc.mw.ckptStore != nil {
			if err := c.checkpointNow(label); err != nil {
				return err
			}
		}
		return ErrPreempted
	}
	// A live attempt in flight resolves here: while precopy rounds are on
	// the wire the application keeps computing; once the driver reached a
	// terminal decision this poll-point freezes or falls back.
	if handled, err := c.pollLive(label); handled {
		return err
	}
	select {
	case sig := <-c.proc.signal:
		// Safety checkpoint: an aborted migration falls back to state no
		// older than this poll-point, losing zero completed work.
		if c.proc.mw.ckptStore != nil {
			if err := c.checkpointNow(label); err != nil {
				return err
			}
		}
		c.proc.xfer.Add(1)
		defer c.proc.xfer.Done()
		if c.proc.mw.live != nil {
			if started, err := c.startLive(label, sig); started || err != nil {
				return err
			}
		}
		return c.migrate(label, sig)
	default:
		return c.maybeCheckpoint(label)
	}
}
