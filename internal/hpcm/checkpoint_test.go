package hpcm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"autoresched/internal/mpi"
	"autoresched/internal/vclock"
)

func newCkptMW(t *testing.T, store CheckpointStore, every time.Duration) *Middleware {
	t.Helper()
	clock := vclock.Scaled(vclock.Epoch, 500)
	u := mpi.NewUniverse(mpi.Options{Clock: clock})
	mw, err := New(Options{Universe: u, Checkpoints: store, CheckpointEvery: every})
	if err != nil {
		t.Fatal(err)
	}
	return mw
}

// ckptMain counts stages; gate controls pacing; emits each stage once.
func ckptMain(stages int, gate chan struct{}, out func(int)) Main {
	return func(ctx *Context) error {
		var next int
		if err := ctx.Register("next", &next); err != nil {
			return err
		}
		for next < stages {
			if gate != nil {
				<-gate
			}
			out(next)
			next++
			if err := ctx.PollPoint(fmt.Sprintf("s%d", next)); err != nil {
				return err
			}
		}
		return nil
	}
}

func TestCheckpointAndRestoreResumeProgress(t *testing.T) {
	store := NewMemStore()
	mw := newCkptMW(t, store, 0)
	gate := make(chan struct{})
	var mu sync.Mutex
	var emitted []int
	out := func(n int) { mu.Lock(); emitted = append(emitted, n); mu.Unlock() }

	p, err := mw.Start("app", "ws1", ckptMain(6, gate, out))
	if err != nil {
		t.Fatal(err)
	}
	gate <- struct{}{} // stage 0
	gate <- struct{}{} // stage 1
	if err := p.RequestCheckpoint(); err != nil {
		t.Fatal(err)
	}
	gate <- struct{}{} // stage 2; its poll-point writes the checkpoint
	for p.Checkpoints() == 0 {
		time.Sleep(time.Millisecond)
	}
	if p.LastCheckpoint().IsZero() {
		t.Fatal("LastCheckpoint zero after checkpoint")
	}

	// Host crash. The main may be blocked on the gate or mid-stage, so keep
	// feeding the gate until the kill takes effect at a poll-point.
	p.Kill()
	waitErr := make(chan error, 1)
	go func() { waitErr <- p.Wait() }()
	deadline := time.Now().Add(10 * time.Second)
killLoop:
	for {
		select {
		case err := <-waitErr:
			if !errors.Is(err, ErrKilled) {
				t.Fatalf("Wait = %v, want ErrKilled", err)
			}
			break killLoop
		case gate <- struct{}{}:
		case <-time.After(time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatal("kill never took effect")
			}
		}
	}

	// Restore on another host: progress resumes at the checkpointed stage
	// (2 or 3 depending on which poll-point wrote it), never at zero. Feed
	// the gate until the restored run completes.
	p2, err := mw.Restore(store, "app", "ws2", ckptMain(6, gate, out))
	if err != nil {
		t.Fatal(err)
	}
	done2 := make(chan error, 1)
	go func() { done2 <- p2.Wait() }()
	deadline = time.Now().Add(10 * time.Second)
restoreLoop:
	for {
		select {
		case err := <-done2:
			if err != nil {
				t.Fatal(err)
			}
			break restoreLoop
		case gate <- struct{}{}:
		case <-time.After(time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatal("restored run never completed")
			}
		}
	}
	if p2.Host() != "ws2" {
		t.Fatalf("restored host = %s", p2.Host())
	}
	mu.Lock()
	defer mu.Unlock()
	// Standard checkpoint semantics: work after the checkpoint is lost and
	// redone, so a stage or two may repeat, but the run must start 0,1,2,
	// end 3,4,5, and never redo more than the post-checkpoint suffix.
	if len(emitted) < 6 || len(emitted) > 8 {
		t.Fatalf("emitted = %v", emitted)
	}
	for i, v := range []int{0, 1, 2} {
		if emitted[i] != v {
			t.Fatalf("emitted = %v (pre-crash prefix wrong)", emitted)
		}
	}
	tail := emitted[len(emitted)-3:]
	for i, v := range []int{3, 4, 5} {
		if tail[i] != v {
			t.Fatalf("emitted = %v (restored run wrong)", emitted)
		}
	}
}

func TestAutoCheckpointInterval(t *testing.T) {
	store := NewMemStore()
	clock := vclock.Scaled(vclock.Epoch, 500)
	u := mpi.NewUniverse(mpi.Options{Clock: clock})
	mw, err := New(Options{Universe: u, Checkpoints: store, CheckpointEvery: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	main := func(ctx *Context) error {
		var step int
		if err := ctx.Register("step", &step); err != nil {
			return err
		}
		for ; step < 40; step++ {
			ctx.Sleep(time.Second)
			if err := ctx.PollPoint("tick"); err != nil {
				return err
			}
		}
		return nil
	}
	p, err := mw.Start("auto", "ws1", main)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	// 40 virtual seconds at one poll per second with a 5-second interval:
	// several checkpoints, but nowhere near one per poll.
	if n := p.Checkpoints(); n < 3 || n > 12 {
		t.Fatalf("checkpoints = %d, want ~8", n)
	}
	if _, ok, err := store.Load("auto"); err != nil || !ok {
		t.Fatalf("no stored checkpoint: %v", err)
	}
}

func TestCheckpointWithoutStore(t *testing.T) {
	mw, _ := newMW(t, nil, 0)
	p, err := mw.Start("x", "ws1", func(ctx *Context) error { return ctx.PollPoint("p") })
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RequestCheckpoint(); err == nil {
		t.Fatal("RequestCheckpoint without store accepted")
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreWithoutCheckpoint(t *testing.T) {
	store := NewMemStore()
	mw := newCkptMW(t, store, 0)
	if _, err := mw.Restore(store, "ghost", "ws1", func(*Context) error { return nil }); err == nil {
		t.Fatal("Restore without checkpoint succeeded")
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	store := FileStore{Dir: t.TempDir()}
	if _, ok, err := store.Load("app"); err != nil || ok {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	if err := store.Save("app", []byte("state-v1")); err != nil {
		t.Fatal(err)
	}
	if err := store.Save("app", []byte("state-v2")); err != nil {
		t.Fatal(err)
	}
	data, ok, err := store.Load("app")
	if err != nil || !ok || string(data) != "state-v2" {
		t.Fatalf("load = %q, %v, %v", data, ok, err)
	}
}

func TestKilledDuringCompute(t *testing.T) {
	mw, _ := newMW(t, nil, 0)
	started := make(chan *Process, 1)
	p, err := mw.Start("x", "ws1", func(ctx *Context) error {
		started <- ctx.proc
		// The null binder computes instantly; loop so Kill lands.
		for {
			if err := ctx.Compute(1); err != nil {
				return err
			}
			if err := ctx.PollPoint("loop"); err != nil {
				return err
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	p.Kill()
	if err := p.Wait(); !errors.Is(err, ErrKilled) {
		t.Fatalf("Wait = %v, want ErrKilled", err)
	}
}
