package hpcm

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"autoresched/internal/mpi"
	"autoresched/internal/vclock"
)

// testBinder records attach/exit so tests can verify process-table moves.
type testBinder struct {
	mu      sync.Mutex
	nextPID int
	events  []string
}

type testProc struct {
	b       *testBinder
	pid     int
	host    string
	started time.Time
}

func (b *testBinder) Attach(host, name string, mem int64) (HostProc, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if strings.HasPrefix(host, "bad") {
		return nil, fmt.Errorf("no such host %q", host)
	}
	b.nextPID++
	b.events = append(b.events, "attach:"+host)
	return &testProc{b: b, pid: b.nextPID, host: host, started: time.Now()}, nil
}

func (b *testBinder) log() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.events...)
}

func (p *testProc) PID() int              { return p.pid }
func (p *testProc) Started() time.Time    { return p.started }
func (p *testProc) Compute(float64) error { return nil }
func (p *testProc) SetMemory(int64)       {}
func (p *testProc) Exit() {
	p.b.mu.Lock()
	defer p.b.mu.Unlock()
	p.b.events = append(p.b.events, "exit:"+p.host)
}

func newMW(t *testing.T, binder HostBinder, spawnLatency time.Duration) (*Middleware, vclock.Clock) {
	t.Helper()
	clock := vclock.Scaled(vclock.Epoch, 200)
	u := mpi.NewUniverse(mpi.Options{
		Clock:        clock,
		Transport:    mpi.ModelTransport{Clock: clock, Latency: time.Millisecond, Bandwidth: 100e6},
		SpawnLatency: spawnLatency,
	})
	mw, err := New(Options{Universe: u, Hosts: binder})
	if err != nil {
		t.Fatal(err)
	}
	return mw, clock
}

// stagedMain builds a 5-stage migratable computation that appends stage
// numbers into a lazily transferred slice. gate, when non-nil, is consumed
// once per stage so tests can control where poll-points fire.
func stagedMain(stages int, gate chan struct{}, sink *[]int, sinkMu *sync.Mutex) Main {
	return func(ctx *Context) error {
		var next int
		var acc []int
		if err := ctx.Register("next", &next); err != nil {
			return err
		}
		if err := ctx.RegisterLazy("acc", &acc); err != nil {
			return err
		}
		if ctx.Resumed() {
			if err := ctx.Await("acc"); err != nil {
				return err
			}
		}
		for next < stages {
			if gate != nil {
				<-gate
			}
			acc = append(acc, next)
			// Advance the persistent counter BEFORE the poll-point so a
			// resumed incarnation does not redo the completed stage — the
			// same discipline HPCM's precompiler enforces by placing state
			// updates ahead of poll-points.
			next++
			if err := ctx.PollPoint(fmt.Sprintf("stage-%d", next)); err != nil {
				return err
			}
		}
		sinkMu.Lock()
		*sink = append([]int(nil), acc...)
		sinkMu.Unlock()
		return nil
	}
}

func TestRunsToCompletionWithoutMigration(t *testing.T) {
	mw, _ := newMW(t, nil, 0)
	var got []int
	var mu sync.Mutex
	p, err := mw.Start("app", "ws1", stagedMain(5, nil, &got, &mu))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 5 || got[0] != 0 || got[4] != 4 {
		t.Fatalf("acc = %v", got)
	}
	if p.Migrations() != 0 || p.Host() != "ws1" {
		t.Fatalf("migrations=%d host=%s", p.Migrations(), p.Host())
	}
}

func TestMigrationPreservesStateAndCompletes(t *testing.T) {
	binder := &testBinder{}
	mw, _ := newMW(t, binder, 10*time.Millisecond)
	gate := make(chan struct{})
	var got []int
	var mu sync.Mutex
	p, err := mw.Start("app", "ws1", stagedMain(5, gate, &got, &mu))
	if err != nil {
		t.Fatal(err)
	}
	// Let two stages run on ws1.
	gate <- struct{}{}
	gate <- struct{}{}
	// Order migration before stage 3's poll-point.
	p.Signal(Command{DestHost: "ws2"})
	for i := 0; i < 3; i++ {
		gate <- struct{}{}
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	acc := got
	mu.Unlock()
	if len(acc) != 5 {
		t.Fatalf("acc = %v", acc)
	}
	for i, v := range acc {
		if v != i {
			t.Fatalf("acc = %v", acc)
		}
	}
	if p.Host() != "ws2" {
		t.Fatalf("host = %s, want ws2", p.Host())
	}
	if p.Migrations() != 1 {
		t.Fatalf("migrations = %d", p.Migrations())
	}
	recs := p.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %+v", recs)
	}
	r := recs[0]
	// The exact poll-point depends on when the signal lands relative to the
	// running stage; it must be one of the post-signal stages.
	if r.From != "ws1" || r.To != "ws2" || !strings.HasPrefix(r.Label, "stage-") {
		t.Fatalf("record = %+v", r)
	}
	// Phase ordering of Section 5.2.
	if r.PollPointAt.Before(r.CommandAt) || r.InitDone.Before(r.PollPointAt) ||
		r.ResumeAt.Before(r.InitDone) || r.RestoreDone.Before(r.ResumeAt) {
		t.Fatalf("phases out of order: %+v", r)
	}
	if r.MigrationTime() <= 0 || r.Downtime() <= 0 || r.Downtime() > r.MigrationTime() {
		t.Fatalf("durations: total=%v downtime=%v", r.MigrationTime(), r.Downtime())
	}
	if r.EagerBytes <= 0 || r.LazyBytes <= 0 {
		t.Fatalf("state sizes: %+v", r)
	}
	// Process table: attached on ws1 then ws2; both hosts eventually left
	// (ws1 at migration cleanup, ws2 at completion — their order races).
	log := binder.log()
	if len(log) != 4 || log[0] != "attach:ws1" || log[1] != "attach:ws2" {
		t.Fatalf("binder log = %v", log)
	}
	exits := map[string]bool{log[2]: true, log[3]: true}
	if !exits["exit:ws1"] || !exits["exit:ws2"] {
		t.Fatalf("binder log = %v", log)
	}
}

func TestChainedMigrations(t *testing.T) {
	const stages = 8
	mw, _ := newMW(t, nil, 0)
	gate := make(chan struct{})
	var got []int
	var mu sync.Mutex
	p, err := mw.Start("app", "ws1", stagedMain(stages, gate, &got, &mu))
	if err != nil {
		t.Fatal(err)
	}
	sent := 0
	send := func() {
		if sent >= stages {
			t.Fatal("workload exhausted before both migrations happened")
		}
		gate <- struct{}{}
		sent++
	}
	// feed runs stages until the process has completed n migrations; a
	// signal becomes visible at the first poll-point that follows it, so at
	// most a couple of stages are consumed per migration.
	feed := func(n int) {
		deadline := time.Now().Add(10 * time.Second)
		for p.Migrations() < n {
			send()
			for p.Migrations() < n && time.Now().Before(deadline) {
				if sent < stages {
					select {
					case gate <- struct{}{}:
						sent++
						continue
					case <-time.After(10 * time.Millisecond):
					}
				} else {
					time.Sleep(time.Millisecond)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("migration %d never happened", n)
			}
		}
	}
	send()
	p.Signal(Command{DestHost: "ws2"})
	feed(1)
	p.Signal(Command{DestHost: "ws3"})
	feed(2)
	for sent < stages {
		gate <- struct{}{}
		sent++
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if p.Host() != "ws3" || p.Migrations() != 2 {
		t.Fatalf("host=%s migrations=%d", p.Host(), p.Migrations())
	}
	recs := p.Records()
	if recs[0].From != "ws1" || recs[0].To != "ws2" || recs[1].From != "ws2" || recs[1].To != "ws3" {
		t.Fatalf("records = %+v", recs)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != stages {
		t.Fatalf("acc = %v", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("acc = %v (stage repeated or lost across migrations)", got)
		}
	}
}

func TestMigrationFailureContinuesLocally(t *testing.T) {
	binder := &testBinder{}
	mw, _ := newMW(t, binder, 0)
	gate := make(chan struct{})
	var got []int
	var mu sync.Mutex
	var pollErr error
	var pollMu sync.Mutex
	main := func(ctx *Context) error {
		var next int
		if err := ctx.Register("next", &next); err != nil {
			return err
		}
		for ; next < 3; next++ {
			<-gate
			if err := ctx.PollPoint("p"); err != nil {
				if errors.Is(err, ErrMigrated) {
					return err
				}
				pollMu.Lock()
				pollErr = err
				pollMu.Unlock()
			}
		}
		mu.Lock()
		got = append(got, next)
		mu.Unlock()
		return nil
	}
	p, err := mw.Start("app", "ws1", main)
	if err != nil {
		t.Fatal(err)
	}
	p.Signal(Command{DestHost: "bad-host"})
	gate <- struct{}{}
	gate <- struct{}{}
	gate <- struct{}{}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	pollMu.Lock()
	defer pollMu.Unlock()
	if pollErr == nil {
		t.Fatal("failed migration produced no error")
	}
	if p.Host() != "ws1" || p.Migrations() != 0 {
		t.Fatalf("host=%s migrations=%d after failed migration", p.Host(), p.Migrations())
	}
}

func TestApplicationErrorPropagates(t *testing.T) {
	mw, _ := newMW(t, nil, 0)
	boom := errors.New("boom")
	p, err := mw.Start("app", "ws1", func(ctx *Context) error { return boom })
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want boom", err)
	}
	select {
	case <-p.Done():
	default:
		t.Fatal("Done not closed")
	}
}

func TestRegisterValidation(t *testing.T) {
	mw, _ := newMW(t, nil, 0)
	p, err := mw.Start("app", "ws1", func(ctx *Context) error {
		var a int
		if err := ctx.Register("a", &a); err != nil {
			return err
		}
		if err := ctx.Register("a", &a); err == nil {
			return errors.New("duplicate register accepted")
		}
		if err := ctx.Register("nil", nil); err == nil {
			return errors.New("nil pointer accepted")
		}
		if err := ctx.Await("ghost"); err == nil {
			return errors.New("await of unregistered state accepted")
		}
		// Await on a fresh (non-resumed) lazy var returns immediately.
		var bulk []byte
		if err := ctx.RegisterLazy("bulk", &bulk); err != nil {
			return err
		}
		return ctx.Await("bulk")
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestContextAccessors(t *testing.T) {
	mw, _ := newMW(t, nil, 0)
	p, err := mw.Start("myapp", "ws7", func(ctx *Context) error {
		if ctx.Name() != "myapp" {
			return fmt.Errorf("name = %q", ctx.Name())
		}
		if ctx.Host() != "ws7" {
			return fmt.Errorf("host = %q", ctx.Host())
		}
		if ctx.Resumed() || ctx.ResumeLabel() != "" {
			return errors.New("fresh incarnation claims resume")
		}
		if ctx.Clock() == nil {
			return errors.New("nil clock")
		}
		ctx.SetMemory(1 << 20)
		return ctx.Compute(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if p.PID() != 0 && p.Started().IsZero() {
		t.Fatal("inconsistent pid/start")
	}
}

func TestSignalReplacesPending(t *testing.T) {
	mw, _ := newMW(t, nil, 0)
	gate := make(chan struct{})
	var got []int
	var mu sync.Mutex
	p, err := mw.Start("app", "ws1", stagedMain(2, gate, &got, &mu))
	if err != nil {
		t.Fatal(err)
	}
	p.Signal(Command{DestHost: "wsOld"})
	p.Signal(Command{DestHost: "ws2"}) // replaces the stale order
	gate <- struct{}{}
	gate <- struct{}{}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if p.Host() != "ws2" {
		t.Fatalf("host = %s, want ws2 (stale command should be dropped)", p.Host())
	}
}

func TestLazyRestorationOverlapsExecution(t *testing.T) {
	// A large lazy blob with a tight model bandwidth: the resumed
	// incarnation must start before restoration finishes.
	clock := vclock.Scaled(vclock.Epoch, 200)
	u := mpi.NewUniverse(mpi.Options{
		Clock:     clock,
		Transport: mpi.ModelTransport{Clock: clock, Bandwidth: 1e6}, // 1 MB/s virtual
	})
	mw, err := New(Options{Universe: u, ChunkBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var resumedAt, restoredAt time.Time
	var mu sync.Mutex
	main := func(ctx *Context) error {
		bulk := make([]byte, 2<<20) // ~2 s of virtual transfer
		if err := ctx.RegisterLazy("bulk", &bulk); err != nil {
			return err
		}
		if !ctx.Resumed() {
			if err := ctx.PollPoint("go"); err != nil {
				return err
			}
			return errors.New("expected migration at first poll point")
		}
		mu.Lock()
		resumedAt = clock.Now()
		mu.Unlock()
		if err := ctx.Await("bulk"); err != nil {
			return err
		}
		mu.Lock()
		restoredAt = clock.Now()
		mu.Unlock()
		if len(bulk) != 2<<20 {
			return fmt.Errorf("bulk len = %d", len(bulk))
		}
		return nil
	}
	p, err := mw.Start("app", "ws1", main)
	if err != nil {
		t.Fatal(err)
	}
	p.Signal(Command{DestHost: "ws2"})
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if !resumedAt.Before(restoredAt) {
		t.Fatalf("no overlap: resumed %v, restored %v", resumedAt, restoredAt)
	}
	rec := p.Records()[0]
	if rec.RestoreDone.Before(rec.ResumeAt) {
		t.Fatalf("record says restore before resume: %+v", rec)
	}
	if gap := rec.RestoreDone.Sub(rec.ResumeAt); gap < 500*time.Millisecond {
		t.Fatalf("restore window %v too small for a 2 MB blob at 1 MB/s", gap)
	}
}

func TestNewValidatesOptions(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New without universe succeeded")
	}
	mw, err := New(Options{Universe: mpi.NewUniverse(mpi.Options{})})
	if err != nil {
		t.Fatal(err)
	}
	if mw.chunk != 1<<20 {
		t.Fatalf("default chunk = %d", mw.chunk)
	}
}
