package hpcm

import (
	"fmt"
	"testing"
	"time"

	"autoresched/internal/mpi"
	"autoresched/internal/simnet"
	"autoresched/internal/vclock"
)

// BenchmarkMigration measures one complete migration (spawn, execution +
// eager state, lazy streaming, restore) of a process carrying the given
// state size, over a simulated 100 Mbps link at 500x wall compression.
func BenchmarkMigration(b *testing.B) {
	for _, mb := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("%dMB", mb), func(b *testing.B) {
			size := int64(mb) << 20
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				clock := vclock.Scaled(vclock.Epoch, 500)
				net := simnet.New(clock, simnet.Options{DefaultBandwidth: 12.5e6})
				if err := net.AddHost("a"); err != nil {
					b.Fatal(err)
				}
				if err := net.AddHost("b"); err != nil {
					b.Fatal(err)
				}
				u := mpi.NewUniverse(mpi.Options{
					Clock:        clock,
					Transport:    mpi.SimTransport{Net: net},
					SpawnLatency: 300 * time.Millisecond,
				})
				mw, err := New(Options{Universe: u, ChunkBytes: 8 << 20})
				if err != nil {
					b.Fatal(err)
				}
				main := func(ctx *Context) error {
					ballast := make([]byte, size)
					if err := ctx.RegisterLazy("ballast", &ballast); err != nil {
						return err
					}
					if !ctx.Resumed() {
						return ctx.PollPoint("go")
					}
					return ctx.Await("ballast")
				}
				b.StartTimer()
				p, err := mw.Start("bench", "a", main)
				if err != nil {
					b.Fatal(err)
				}
				p.Signal(Command{DestHost: "b"})
				if err := p.Wait(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				rec := p.Records()[0]
				b.ReportMetric(rec.MigrationTime().Seconds(), "virtual-s")
				b.ReportMetric(rec.Downtime().Seconds(), "downtime-virtual-s")
				b.StartTimer()
			}
			b.SetBytes(size)
		})
	}
}

// BenchmarkPreInitAblation compares migration downtime with and without
// the Section 5.2 pre-initialization optimisation under a LAM-like 300 ms
// spawn latency — the ablation for the design choice DESIGN.md calls out.
func BenchmarkPreInitAblation(b *testing.B) {
	run := func(b *testing.B, preinit bool) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			clock := vclock.Scaled(vclock.Epoch, 500)
			net := simnet.New(clock, simnet.Options{DefaultBandwidth: 12.5e6})
			if err := net.AddHost("a"); err != nil {
				b.Fatal(err)
			}
			if err := net.AddHost("b"); err != nil {
				b.Fatal(err)
			}
			u := mpi.NewUniverse(mpi.Options{
				Clock:        clock,
				Transport:    mpi.SimTransport{Net: net},
				SpawnLatency: 300 * time.Millisecond,
			})
			mw, err := New(Options{Universe: u, ChunkBytes: 8 << 20})
			if err != nil {
				b.Fatal(err)
			}
			main := func(ctx *Context) error {
				bulk := make([]byte, 1<<20)
				if err := ctx.RegisterLazy("bulk", &bulk); err != nil {
					return err
				}
				if !ctx.Resumed() {
					return ctx.PollPoint("go")
				}
				return ctx.Await("bulk")
			}
			b.StartTimer()
			p, err := mw.Start("bench", "a", main)
			if err != nil {
				b.Fatal(err)
			}
			if preinit {
				if err := p.PreInit("b"); err != nil {
					b.Fatal(err)
				}
			}
			p.Signal(Command{DestHost: "b"})
			if err := p.Wait(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			rec := p.Records()[0]
			b.ReportMetric(rec.Downtime().Seconds(), "downtime-virtual-s")
			b.ReportMetric(rec.InitDone.Sub(rec.PollPointAt).Seconds(), "init-virtual-s")
			b.StartTimer()
		}
	}
	b.Run("spawn", func(b *testing.B) { run(b, false) })
	b.Run("preinit", func(b *testing.B) { run(b, true) })
}

// BenchmarkPollPointNoCommand measures the cost of an idle poll-point — the
// overhead an instrumented application pays when no migration is pending.
func BenchmarkPollPointNoCommand(b *testing.B) {
	u := mpi.NewUniverse(mpi.Options{})
	mw, err := New(Options{Universe: u})
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	p, err := mw.Start("bench", "a", func(ctx *Context) error {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ctx.PollPoint("x"); err != nil {
				return err
			}
		}
		b.StopTimer()
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	done <- p.Wait()
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStateCollection measures collecting (serialising) a registered
// state set, the source-side cost at a firing poll-point.
func BenchmarkStateCollection(b *testing.B) {
	reg := newRegistry(nil)
	counters := make([]int64, 1024)
	blob := make([]byte, 4<<20)
	if err := reg.register("counters", &counters, false); err != nil {
		b.Fatal(err)
	}
	if err := reg.register("blob", &blob, true); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := reg.collect(""); err != nil {
			b.Fatal(err)
		}
	}
}
