package hpcm

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"autoresched/internal/livemig"
	"autoresched/internal/mpi"
	"autoresched/internal/vclock"
)

const (
	livePages     = 16
	livePageWords = 8 // 64-byte pages
)

// pagedMain is a staged computation over a single paged region: every stage
// rewrites the first word of dirtyPages pages with stage-distinct values.
// gate, when non-nil, is consumed once per stage; otherwise each stage
// advances the virtual clock so precopy rounds have time to ship.
func pagedMain(stages, dirtyPages int, gate chan struct{}, sum *float64, mu *sync.Mutex) Main {
	return func(ctx *Context) error {
		var next int
		pages, err := livemig.NewPages(livePages*livePageWords*8, livePageWords*8)
		if err != nil {
			return err
		}
		if err := ctx.Register("next", &next); err != nil {
			return err
		}
		if err := ctx.RegisterPages("grid", pages); err != nil {
			return err
		}
		if ctx.Resumed() {
			if err := ctx.Await("grid"); err != nil {
				return err
			}
		} else {
			// Distinctive initial values: they ship only in precopy round 1
			// (or the classic image), so the final checksum proves the whole
			// region moved, not just the dirtied pages.
			for w := 0; w < livePages*livePageWords; w++ {
				pages.SetFloat64(w, float64(w))
			}
		}
		for next < stages {
			if gate != nil {
				<-gate
			} else {
				ctx.Sleep(10 * time.Millisecond)
			}
			for i := 0; i < dirtyPages; i++ {
				pages.SetFloat64(i*livePageWords, float64((next+1)*1000+i))
			}
			next++
			if err := ctx.PollPoint(fmt.Sprintf("s-%d", next)); err != nil {
				return err
			}
		}
		var total float64
		for w := 0; w < livePages*livePageWords; w++ {
			total += pages.Float64(w)
		}
		mu.Lock()
		*sum = total
		mu.Unlock()
		return nil
	}
}

// expectedPagedSum is pagedMain's final checksum after all stages.
func expectedPagedSum(stages, dirtyPages int) float64 {
	total := 0.0
	for w := 0; w < livePages*livePageWords; w++ {
		total += float64(w)
	}
	for i := 0; i < dirtyPages; i++ {
		total += float64(stages*1000+i) - float64(i*livePageWords)
	}
	return total
}

func newLiveMW(t *testing.T, transport mpi.Transport, live *livemig.Config, obs MigrationObserver) (*Middleware, vclock.Clock) {
	t.Helper()
	clock := vclock.Scaled(vclock.Epoch, 200)
	if st, ok := transport.(*latchTransport); ok && st.inner == nil {
		st.inner = mpi.ModelTransport{Clock: clock, Latency: time.Millisecond, Bandwidth: 1e6}
	}
	if transport == nil {
		transport = mpi.ModelTransport{Clock: clock, Latency: time.Millisecond, Bandwidth: 1e6}
	}
	u := mpi.NewUniverse(mpi.Options{
		Clock:        clock,
		Transport:    transport,
		SpawnLatency: 10 * time.Millisecond,
	})
	mw, err := New(Options{Universe: u, Hosts: &testBinder{}, Live: live, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	return mw, clock
}

// phaseLog collects migration events for sequence assertions.
type phaseLog struct {
	mu     sync.Mutex
	events []MigrationEvent
}

func (l *phaseLog) observe(ev MigrationEvent) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

func (l *phaseLog) phases() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, len(l.events))
	for i, ev := range l.events {
		out[i] = ev.Phase
	}
	return out
}

func (l *phaseLog) find(phase string) (MigrationEvent, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ev := range l.events {
		if ev.Phase == phase {
			return ev, true
		}
	}
	return MigrationEvent{}, false
}

func TestLiveMigrationFreezesAndPreservesRegion(t *testing.T) {
	const stages, dirty = 400, 2
	log := &phaseLog{}
	mw, _ := newLiveMW(t, nil, &livemig.Config{}, log.observe)
	var sum float64
	var mu sync.Mutex
	p, err := mw.Start("app", "ws1", pagedMain(stages, dirty, nil, &sum, &mu))
	if err != nil {
		t.Fatal(err)
	}
	p.Signal(Command{DestHost: "ws2"})
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if p.Migrations() != 1 || p.Host() != "ws2" {
		t.Fatalf("migrations=%d host=%s", p.Migrations(), p.Host())
	}
	mu.Lock()
	got := sum
	mu.Unlock()
	if want := expectedPagedSum(stages, dirty); got != want {
		t.Fatalf("checksum = %v, want %v (region corrupted in transit)", got, want)
	}
	rec := p.Records()[0]
	if rec.FreezeAt.IsZero() {
		t.Fatalf("live migration recorded no freeze: %+v", rec)
	}
	if rec.PrecopyRounds < 1 {
		t.Fatalf("precopy rounds = %d", rec.PrecopyRounds)
	}
	if rec.Downtime() <= 0 {
		t.Fatalf("downtime = %v", rec.Downtime())
	}
	// The freeze window must be strictly smaller than the full
	// command-to-resume span: the precopy rounds happened outside it.
	if full := rec.ResumeAt.Sub(rec.CommandAt); rec.Downtime() >= full {
		t.Fatalf("downtime %v not below full span %v", rec.Downtime(), full)
	}
	if rec.FreezeAt.Before(rec.InitDone) || rec.ResumeAt.Before(rec.FreezeAt) {
		t.Fatalf("phases out of order: %+v", rec)
	}
	ev, ok := log.find(PhasePrecopy)
	if !ok || ev.Round != 1 {
		t.Fatalf("first precopy event = %+v (ok=%v)", ev, ok)
	}
	for _, phase := range []string{PhaseStart, PhaseInit, PhaseFreeze, PhaseResume, PhaseRestore} {
		if _, ok := log.find(phase); !ok {
			t.Fatalf("phase %q never observed: %v", phase, log.phases())
		}
	}
	if _, ok := log.find(PhaseAborted); ok {
		t.Fatalf("unexpected abort: %v", log.phases())
	}
}

// latchTransport holds the first cross-host send until released — pinning
// precopy round 1 on the wire while the application keeps dirtying pages —
// and closes held when the hold begins, so a test knows the round's
// snapshot watermark is already taken.
type latchTransport struct {
	inner mpi.Transport

	mu      sync.Mutex
	armed   bool
	held    chan struct{}
	release chan struct{}
}

func (t *latchTransport) Send(from, to string, bytes int64) error {
	t.mu.Lock()
	hold := t.armed
	if hold {
		t.armed = false
		close(t.held)
	}
	release := t.release
	t.mu.Unlock()
	if hold {
		<-release
	}
	return t.inner.Send(from, to, bytes)
}

func TestLiveFallbackRunsClassicMigration(t *testing.T) {
	const stages, dirty = 5, 2
	latch := &latchTransport{
		armed:   true,
		held:    make(chan struct{}),
		release: make(chan struct{}),
	}
	log := &phaseLog{}
	// One round only, and any residual triggers fallback.
	cfg := &livemig.Config{MaxRounds: 1, FallbackFraction: 0.01}
	mw, _ := newLiveMW(t, latch, cfg, log.observe)
	gate := make(chan struct{})
	var sum float64
	var mu sync.Mutex
	p, err := mw.Start("app", "ws1", pagedMain(stages, dirty, gate, &sum, &mu))
	if err != nil {
		t.Fatal(err)
	}
	p.Signal(Command{DestHost: "ws2"})
	gate <- struct{}{} // stage 1: poll consumes the command, precopy starts
	<-latch.held       // round 1 snapshotted and pinned on the wire
	gate <- struct{}{} // stage 2: dirties pages behind round 1's watermark
	gate <- struct{}{} // stage 3: more dirtying; round 1 still on the wire
	close(latch.release)
	// Round 1 lands with a dirty residual; wait for the driver's verdict
	// before feeding the stage whose poll-point resolves it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok := log.find(PhasePrecopy); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("precopy round 1 never reported")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond) // let the driver publish its decision
	gate <- struct{}{}                // stage 4 (or later): fallback resolves here
	gate <- struct{}{}                // stage 5
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if p.Migrations() != 1 || p.Host() != "ws2" {
		t.Fatalf("migrations=%d host=%s", p.Migrations(), p.Host())
	}
	mu.Lock()
	got := sum
	mu.Unlock()
	if want := expectedPagedSum(stages, dirty); got != want {
		t.Fatalf("checksum = %v, want %v", got, want)
	}
	rec := p.Records()[0]
	if !rec.FreezeAt.IsZero() || rec.PrecopyRounds != 0 {
		t.Fatalf("fallback produced a live record: %+v", rec)
	}
	ab, ok := log.find(PhaseAborted)
	if !ok || ab.Err == nil || !strings.Contains(ab.Err.Error(), "did not converge") {
		t.Fatalf("aborted event = %+v (ok=%v)", ab, ok)
	}
	if _, ok := log.find(PhaseResume); !ok {
		t.Fatalf("classic migration never resumed: %v", log.phases())
	}
}

func TestLiveWithoutPagedRegionMigratesClassically(t *testing.T) {
	log := &phaseLog{}
	mw, _ := newLiveMW(t, nil, &livemig.Config{}, log.observe)
	gate := make(chan struct{})
	var got []int
	var mu sync.Mutex
	p, err := mw.Start("app", "ws1", stagedMain(3, gate, &got, &mu))
	if err != nil {
		t.Fatal(err)
	}
	p.Signal(Command{DestHost: "ws2"})
	for i := 0; i < 3; i++ {
		gate <- struct{}{}
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if p.Migrations() != 1 || p.Host() != "ws2" {
		t.Fatalf("migrations=%d host=%s", p.Migrations(), p.Host())
	}
	for _, phase := range []string{PhasePrecopy, PhaseFreeze} {
		if _, ok := log.find(phase); ok {
			t.Fatalf("live phase %q for a process with no paged region: %v", phase, log.phases())
		}
	}
}

func TestPagedRegionMigratesClassicallyWithoutLiveOption(t *testing.T) {
	const stages, dirty = 6, 2
	log := &phaseLog{}
	mw, _ := newLiveMW(t, nil, nil, log.observe) // no Options.Live
	gate := make(chan struct{})
	var sum float64
	var mu sync.Mutex
	p, err := mw.Start("app", "ws1", pagedMain(stages, dirty, gate, &sum, &mu))
	if err != nil {
		t.Fatal(err)
	}
	p.Signal(Command{DestHost: "ws2"})
	for i := 0; i < stages; i++ {
		gate <- struct{}{}
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if p.Migrations() != 1 || p.Host() != "ws2" {
		t.Fatalf("migrations=%d host=%s", p.Migrations(), p.Host())
	}
	mu.Lock()
	got := sum
	mu.Unlock()
	if want := expectedPagedSum(stages, dirty); got != want {
		t.Fatalf("checksum = %v, want %v (flat-image transfer broken)", got, want)
	}
	if _, ok := log.find(PhasePrecopy); ok {
		t.Fatalf("precopy ran without Options.Live: %v", log.phases())
	}
}

// cuttableTransport fails every send once cut — the source host dropping
// off the network.
type cuttableTransport struct {
	inner mpi.Transport
	cut   atomic.Bool
}

func (t *cuttableTransport) Send(from, to string, bytes int64) error {
	if t.cut.Load() {
		return errors.New("network cut: source host lost")
	}
	return t.inner.Send(from, to, bytes)
}

// TestSourceLossMidLazyStreamAbortsDestinationCleanly kills the source's
// network right after the commit point, mid-tagLazy stream: the committed
// destination must not wedge — its Await unblocks with the post-commit
// failure and the process settles with a Committed MigrationFailure.
func TestSourceLossMidLazyStreamAbortsDestinationCleanly(t *testing.T) {
	clock := vclock.Scaled(vclock.Epoch, 200)
	cut := &cuttableTransport{inner: mpi.ModelTransport{Clock: clock, Latency: time.Millisecond, Bandwidth: 1e6}}
	u := mpi.NewUniverse(mpi.Options{Clock: clock, Transport: cut, SpawnLatency: 10 * time.Millisecond})
	log := &phaseLog{}
	mw, err := New(Options{
		Universe: u,
		Hosts:    &testBinder{},
		Observer: func(ev MigrationEvent) {
			if ev.Phase == PhaseResume {
				// The destination has taken over; the lazy stream is next.
				cut.cut.Store(true)
			}
			log.observe(ev)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	main := func(ctx *Context) error {
		bulk := make([]byte, 1<<20)
		if err := ctx.RegisterLazy("bulk", &bulk); err != nil {
			return err
		}
		if !ctx.Resumed() {
			if err := ctx.PollPoint("go"); err != nil {
				return err
			}
			return errors.New("expected migration at the first poll point")
		}
		return ctx.Await("bulk")
	}
	p, err := mw.Start("app", "ws1", main)
	if err != nil {
		t.Fatal(err)
	}
	p.Signal(Command{DestHost: "ws2"})
	err = p.Wait()
	var mf *MigrationFailure
	if !errors.As(err, &mf) {
		t.Fatalf("Wait = %v, want *MigrationFailure", err)
	}
	if !mf.Committed || mf.Phase != PhaseRestore {
		t.Fatalf("failure = %+v, want committed post-commit failure", mf)
	}
	if !strings.Contains(err.Error(), "lazy state transfer") {
		t.Fatalf("failure cause = %v, want lazy state transfer", err)
	}
	// Committed: the migration counts even though restoration broke.
	if p.Migrations() != 1 {
		t.Fatalf("migrations = %d", p.Migrations())
	}
	if _, ok := log.find(PhaseFailed); !ok {
		t.Fatalf("PhaseFailed never observed: %v", log.phases())
	}
	select {
	case <-p.Done():
	default:
		t.Fatal("process did not settle")
	}
}
