package hpcm

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestPingPongAcrossMigration: two processes converse; one migrates in the
// middle of the conversation; no message is lost, order is preserved, and
// the conversation completes — the communication-state-transfer property.
func TestPingPongAcrossMigration(t *testing.T) {
	const rounds = 30
	mw, _ := newMW(t, nil, 0)

	// Both mains follow the HPCM discipline: the round counter is
	// registered state advanced BEFORE the poll-point, so a resumed
	// incarnation continues the conversation instead of restarting it.
	pong, err := mw.Start("pong", "ws3", func(ctx *Context) error {
		var next int
		if err := ctx.Register("next", &next); err != nil {
			return err
		}
		for next < rounds {
			var v int
			from, err := ctx.ReceiveFrom("ping", 1, &v)
			if err != nil {
				return err
			}
			if from != "ping" || v != next {
				return fmt.Errorf("pong got %d from %s, want %d from ping", v, from, next)
			}
			if err := ctx.SendTo("ping", 2, v*10); err != nil {
				return err
			}
			next++
			if err := ctx.PollPoint(fmt.Sprintf("pong-%d", next)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	ping, err := mw.Start("ping", "ws1", func(ctx *Context) error {
		var next int
		if err := ctx.Register("next", &next); err != nil {
			return err
		}
		for next < rounds {
			if err := ctx.SendTo("pong", 1, next); err != nil {
				return err
			}
			var reply int
			if _, err := ctx.ReceiveFrom("pong", 2, &reply); err != nil {
				return err
			}
			if reply != next*10 {
				return fmt.Errorf("ping got %d, want %d", reply, next*10)
			}
			next++
			if err := ctx.PollPoint(fmt.Sprintf("ping-%d", next)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Migrate BOTH processes mid-conversation: the signals are pending
	// before the first poll-points, so each side moves after its first
	// round and the remaining rounds cross the new placement.
	ping.Signal(Command{DestHost: "ws2"})
	pong.Signal(Command{DestHost: "ws4"})

	if err := ping.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := pong.Wait(); err != nil {
		t.Fatal(err)
	}
	if ping.Migrations() != 1 || pong.Migrations() != 1 {
		t.Fatalf("migrations: ping=%d pong=%d", ping.Migrations(), pong.Migrations())
	}
	if ping.Host() != "ws2" || pong.Host() != "ws4" {
		t.Fatalf("hosts: ping=%s pong=%s", ping.Host(), pong.Host())
	}
}

// TestMessagesQueuedDuringMigrationSurvive: messages sent while the
// receiver is between incarnations are delivered afterwards.
func TestMessagesQueuedDuringMigrationSurvive(t *testing.T) {
	mw, _ := newMW(t, nil, 0)
	gate := make(chan struct{})

	recvd := make(chan []int, 1)
	receiver, err := mw.Start("rx", "ws1", func(ctx *Context) error {
		<-gate // block before the poll so messages pile up pre-migration
		if err := ctx.PollPoint("mid"); err != nil {
			return err
		}
		var got []int
		for i := 0; i < 5; i++ {
			var v int
			if _, err := ctx.ReceiveFrom(AnyPeer, AnyTag, &v); err != nil {
				return err
			}
			got = append(got, v)
		}
		recvd <- got
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sender, err := mw.Start("tx", "ws2", func(ctx *Context) error {
		for i := 0; i < 5; i++ {
			if err := ctx.SendTo("rx", 7, i); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.Wait(); err != nil {
		t.Fatal(err)
	}
	if receiver.Pending() != 5 {
		t.Fatalf("pending = %d, want 5 queued before migration", receiver.Pending())
	}
	// Now migrate the receiver with the messages still queued.
	receiver.Signal(Command{DestHost: "ws3"})
	close(gate)
	if err := receiver.Wait(); err != nil {
		t.Fatal(err)
	}
	if receiver.Host() != "ws3" {
		t.Fatalf("host = %s", receiver.Host())
	}
	got := <-recvd
	for i, v := range got {
		if v != i {
			t.Fatalf("messages reordered or lost: %v", got)
		}
	}
	// The migration record accounts for the moved communication state.
	if rec := receiver.Records()[0]; rec.CommBytes <= 0 {
		t.Fatalf("CommBytes = %d, want > 0 for %d queued messages", rec.CommBytes, 5)
	}
}

func TestSendToUnknownAndFinished(t *testing.T) {
	mw, _ := newMW(t, nil, 0)
	done := make(chan struct{})
	p, err := mw.Start("a", "ws1", func(ctx *Context) error {
		if err := ctx.SendTo("ghost", 1, 1); err == nil {
			return errors.New("send to unknown process succeeded")
		}
		if err := ctx.SendTo("a", -1, 1); err == nil {
			return errors.New("negative tag accepted")
		}
		<-done
		// "b" has finished by now; its mailbox is closed.
		if err := ctx.SendTo("b", 1, 1); err == nil {
			return errors.New("send to finished process succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := mw.Start("b", "ws2", func(ctx *Context) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Wait(); err != nil {
		t.Fatal(err)
	}
	close(done)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateProcessNameRejected(t *testing.T) {
	mw, _ := newMW(t, nil, 0)
	gate := make(chan struct{})
	p, err := mw.Start("dup", "ws1", func(ctx *Context) error { <-gate; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mw.Start("dup", "ws2", func(ctx *Context) error { return nil }); err == nil {
		t.Fatal("duplicate name accepted")
	}
	close(gate)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	// After completion the name is free again.
	p2, err := mw.Start("dup", "ws2", func(ctx *Context) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestReceiveUnblocksOnFinish(t *testing.T) {
	mw, _ := newMW(t, nil, 0)
	p, err := mw.Start("waiter", "ws1", func(ctx *Context) error {
		go func() {
			// Finish the process out from under the blocked receive.
			ctx.Clock().Sleep(10 * time.Millisecond)
			ctx.proc.finish(nil)
		}()
		var v int
		_, err := ctx.ReceiveFrom(AnyPeer, AnyTag, &v)
		if err == nil {
			return errors.New("receive returned without a message")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-p.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("blocked receive never released")
	}
}
