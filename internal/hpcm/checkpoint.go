package hpcm

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"autoresched/internal/mpi"
)

// The paper positions its design as extensible "for checkpointing-based or
// mobile computing systems" and lists fault tolerance ("reschedule when the
// machine will shut down") among the Grid motivations (Sections 1 and 6).
// This file adds that extension: at a poll-point a process can write its
// execution and memory state to a checkpoint store instead of (or in
// addition to) migrating, and a new incarnation can later be restored from
// the store on any host — the recovery path when a host dies instead of
// being gracefully drained.

// ErrKilled reports that the incarnation was terminated by Kill — the
// simulated host crash.
var ErrKilled = errors.New("hpcm: process killed")

// ErrPreempted reports that the incarnation stopped at a poll-point because
// the control plane evicted it: its state was checkpointed (when a store is
// configured) and the job should be requeued and later restored. It is
// deliberately NOT Recoverable — the rescheduler must not burn failover
// retries on a deliberate eviction; the job layer owns the requeue.
var ErrPreempted = errors.New("hpcm: process preempted")

// CheckpointStore persists checkpoint images by application name.
type CheckpointStore interface {
	Save(app string, data []byte) error
	// Load returns the most recent image, or ok=false if none exists.
	Load(app string) (data []byte, ok bool, err error)
}

// MemStore is an in-memory CheckpointStore.
type MemStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{m: make(map[string][]byte)} }

// Save implements CheckpointStore.
func (s *MemStore) Save(app string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[app] = append([]byte(nil), data...)
	return nil
}

// Load implements CheckpointStore.
func (s *MemStore) Load(app string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.m[app]
	return data, ok, nil
}

// FileStore keeps one checkpoint file per application under a directory.
type FileStore struct{ Dir string }

func (s FileStore) path(app string) string {
	return filepath.Join(s.Dir, app+".ckpt")
}

// Save implements CheckpointStore with an atomic rename.
func (s FileStore) Save(app string, data []byte) error {
	tmp := s.path(app) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o600); err != nil {
		return err
	}
	return os.Rename(tmp, s.path(app))
}

// Load implements CheckpointStore.
func (s FileStore) Load(app string) ([]byte, bool, error) {
	data, err := os.ReadFile(s.path(app))
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// image is the serialised checkpoint: the same execution + memory state a
// migration transfers, in one blob.
type image struct {
	Label string
	Eager map[string][]byte
	Lazy  map[string][]byte
}

// RequestCheckpoint asks the process to write a checkpoint at its next
// poll-point (it keeps running afterwards). Requires a store configured on
// the middleware.
func (p *Process) RequestCheckpoint() error {
	if p.mw.ckptStore == nil {
		return errors.New("hpcm: no checkpoint store configured")
	}
	p.ckptReq.Store(true)
	return nil
}

// Evict asks the process to stop at its next poll-point for preemption:
// it writes a final checkpoint there (when a store is configured) and
// returns ErrPreempted out of Main. The caller — the job control plane —
// requeues the job and later restores it from the checkpoint (or cold-
// restarts it) once capacity frees up.
func (p *Process) Evict() {
	p.evictReq.Store(true)
}

// LastCheckpoint returns when the last checkpoint completed (zero time if
// none).
func (p *Process) LastCheckpoint() time.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastCkpt
}

// maybeCheckpoint runs at poll-points: on request or when the automatic
// interval has elapsed, collect and persist the state.
func (c *Context) maybeCheckpoint(label string) error {
	p := c.proc
	mw := p.mw
	if mw.ckptStore == nil {
		return nil
	}
	requested := p.ckptReq.CompareAndSwap(true, false)
	if !requested && mw.ckptEvery > 0 {
		p.mu.Lock()
		due := mw.clock.Since(p.lastCkpt) >= mw.ckptEvery
		p.mu.Unlock()
		requested = due
	}
	if !requested {
		return nil
	}
	return c.checkpointNow(label)
}

// checkpointNow collects and persists the state unconditionally. It also
// runs right before a migration starts, so an aborted migration can fall
// back to state no older than the triggering poll-point.
func (c *Context) checkpointNow(label string) error {
	p := c.proc
	mw := p.mw
	if mw.ckptStore == nil {
		return errors.New("hpcm: no checkpoint store configured")
	}
	if mw.metrics != nil {
		start := time.Now() //lint:allow determinism checkpoint_seconds is a wall-clock metric by contract (approximate section)
		defer func() {
			mw.metrics.Histogram(MetricCheckpointSeconds).Observe(time.Since(start).Seconds()) //lint:allow determinism checkpoint_seconds is a wall-clock metric by contract
		}()
	}
	mw.observeCheckpoint(CheckpointEvent{Proc: p.name, Host: c.env.Host, Label: label, Begin: true})
	// A fault trap keyed on the begin event may have crashed this host
	// synchronously: the in-progress checkpoint is lost with it, and
	// recovery falls back to the previous image.
	if p.killed.Load() {
		return ErrKilled
	}
	eager, lazy, err := c.state.collect("")
	if err != nil {
		return fmt.Errorf("hpcm: checkpoint collection: %w", err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(image{Label: label, Eager: eager, Lazy: lazy}); err != nil {
		return fmt.Errorf("hpcm: checkpoint encoding: %w", err)
	}
	if err := mw.ckptStore.Save(p.name, buf.Bytes()); err != nil {
		return fmt.Errorf("hpcm: checkpoint save: %w", err)
	}
	p.mu.Lock()
	p.lastCkpt = mw.clock.Now()
	p.ckpts++
	p.mu.Unlock()
	mw.observeCheckpoint(CheckpointEvent{Proc: p.name, Host: c.env.Host, Label: label})
	return nil
}

// Checkpoints reports how many checkpoints have been written.
func (p *Process) Checkpoints() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ckpts
}

// Kill terminates the process's current incarnation — the stand-in for a
// host crash. Outstanding and future Compute calls and poll-points fail
// with ErrKilled, and Wait returns ErrKilled.
func (p *Process) Kill() {
	p.killed.Store(true)
	p.mu.Lock()
	hp := p.hostProc
	p.mu.Unlock()
	hp.Exit() // unblock an in-flight Compute
}

// Restore starts a new process from the latest checkpoint of app in store:
// the recovery path after Kill (or a lost host). The application main must
// be the same program that wrote the checkpoint.
func (m *Middleware) Restore(store CheckpointStore, app, host string, main Main) (*Process, error) {
	data, ok, err := store.Load(app)
	if err != nil {
		return nil, fmt.Errorf("hpcm: checkpoint load: %w", err)
	}
	if !ok {
		return nil, fmt.Errorf("hpcm: no checkpoint for %q", app)
	}
	var img image
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&img); err != nil {
		return nil, fmt.Errorf("hpcm: checkpoint decoding: %w", err)
	}
	saved := newSavedState()
	saved.eager = img.Eager
	for name, blob := range img.Lazy {
		saved.completeLazy(name, blob)
	}

	p := &Process{
		mw:     m,
		name:   app,
		main:   main,
		signal: make(chan pendingCmd, 1),
		events: make(chan Record, 16),
		mbox:   newMailbox(),
		host:   host,
		done:   make(chan struct{}),
	}
	if err := m.register(p); err != nil {
		return nil, err
	}
	hp, err := m.hosts.Attach(host, app, 0)
	if err != nil {
		m.deregister(p)
		return nil, fmt.Errorf("hpcm: attach %q to %q: %w", app, host, err)
	}
	p.hostProc = hp
	m.universe.Start([]string{host}, func(env *mpi.Env) error {
		return p.incarnation(env, img.Label, saved)
	})
	return p, nil
}
