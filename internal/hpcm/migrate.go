package hpcm

import (
	"fmt"

	"autoresched/internal/mpi"
)

// Wire tags of the state-transfer protocol on the parent/child
// intercommunicator.
const (
	tagHeader   = 1 // execution state: label, lazy inventory, memory size
	tagEager    = 2 // eager memory image
	tagLazy     = 3 // lazy state chunks
	tagResumed  = 4 // child -> parent: execution resumed
	tagRestored = 5 // child -> parent: all lazy state restored
	tagPrecopy  = 6 // live path: precopy batch metadata and page batches
)

// header is the execution-state message: everything the initialized process
// needs before it can take over the computation.
type header struct {
	Label     string
	LazyNames []string
	LazySizes []int64
	Memory    int64
	// PagesName, on the live path, names the paged region the destination
	// already assembled from precopy batches; it is excluded from LazyNames.
	PagesName string
}

// chunkMeta announces one lazy-state fragment; the fragment's bytes follow
// as a raw message (the mpi []byte fast path), so large memory images move
// with a single copy end to end.
type chunkMeta struct {
	Name string
	Size int64
	Last bool
}

// resumeStatus reports whether the initialized process took over. The child
// always sends one before doing anything else that can block the source, so
// a destination-side failure never wedges the migrating process.
type resumeStatus struct {
	OK  bool
	Err string
}

// migrate ships this incarnation to sig.cmd's destination. It runs at a
// poll-point on the source and returns ErrMigrated on success. A failure
// before the commit point returns a *MigrationFailure (Committed=false):
// the incarnation gives up so the runtime can fall back to the last
// checkpoint and retry on a fresh host. A failure after the commit point
// also returns ErrMigrated — the destination owns the process and its
// failed restoration decides the process's fate.
func (c *Context) migrate(label string, sig pendingCmd) error {
	p := c.proc
	mw := p.mw
	clock := mw.clock
	cmd := sig.cmd

	rec := Record{
		From:        c.env.Host,
		To:          cmd.DestHost,
		Label:       label,
		CommandAt:   sig.at,
		PollPointAt: clock.Now(),
	}
	event := func(phase string, err error) MigrationEvent {
		return MigrationEvent{
			Proc: p.name, From: rec.From, To: rec.To,
			Label: label, Phase: phase, Err: err,
		}
	}
	abort := func(phase string, err error) error {
		mf := &MigrationFailure{
			From: rec.From, To: rec.To, Label: label, Phase: phase, Err: err,
		}
		mw.observe(event(PhaseAborted, mf))
		return mf
	}

	mw.observe(event(PhaseStart, nil))

	eager, lazy, err := c.state.collect("")
	if err != nil {
		return abort(PhaseStart, fmt.Errorf("hpcm: state collection: %w", err))
	}
	hdr := header{Label: label}
	// Stream smallest blobs first (HPCM's restoration likewise prioritises
	// eagerly needed data).
	sortLazyNames(&hdr, lazy)
	for _, name := range hdr.LazyNames {
		rec.LazyBytes += int64(len(lazy[name]))
	}
	for _, data := range eager {
		rec.EagerBytes += int64(len(data))
	}

	p.mu.Lock()
	oldHP := p.hostProc
	p.mu.Unlock()

	// Obtain the initialized process on the destination: connect to a
	// pre-initialized one if available (the Section 5.2 optimisation),
	// otherwise create it now through dynamic process creation
	// (MPI_Comm_spawn; charged with the LAM-like spawn latency). Either
	// way an intercommunicator carries the state.
	var inter *mpi.Comm
	if port, ok := p.takePreinit(cmd.DestHost); ok {
		var cerr error
		inter, cerr = c.env.Connect(port, c.env.World)
		if cerr != nil {
			inter = nil // pre-initialized process gone; fall back to spawn
		}
	}
	if inter == nil {
		var serr error
		inter, serr = c.env.Spawn([]string{cmd.DestHost}, func(child *mpi.Env) error {
			return p.bootstrap(child, child.Parent)
		})
		if serr != nil {
			return abort(PhaseStart, fmt.Errorf("hpcm: dynamic process creation on %q: %w", cmd.DestHost, serr))
		}
	}
	rec.InitDone = clock.Now()
	mw.observe(event(PhaseInit, nil))

	// The communication state — queued undelivered messages — moves with
	// the process; the mailbox lives with the process identity, so only
	// the wire time is charged.
	if pending := p.pendingBytes(); pending > 0 {
		rec.CommBytes = pending
		if err := mw.universe.Transport().Send(c.env.Host, cmd.DestHost, pending); err != nil {
			return abort(PhaseInit, fmt.Errorf("hpcm: communication state transfer: %w", err))
		}
	}

	// Execution state and eager memory state transfer synchronously; the
	// destination resumes as soon as it has them.
	if err := inter.Send(hdr, 0, tagHeader); err != nil {
		return abort(PhaseInit, fmt.Errorf("hpcm: execution state transfer: %w", err))
	}
	if err := inter.Send(eager, 0, tagEager); err != nil {
		return abort(PhaseInit, fmt.Errorf("hpcm: eager state transfer: %w", err))
	}
	var resumed resumeStatus
	if _, err := inter.Recv(&resumed, 0, tagResumed); err != nil {
		return abort(PhaseInit, fmt.Errorf("hpcm: resume handshake: %w", err))
	}
	if !resumed.OK {
		return abort(PhaseInit, fmt.Errorf("hpcm: destination %q failed to initialize: %s", cmd.DestHost, resumed.Err))
	}
	rec.ResumeAt = clock.Now()

	// The migration is committed: the destination owns the process. Record
	// it now (RestoreDone is filled in below) so observers that synchronise
	// on process completion always see the count.
	p.mu.Lock()
	p.records = append(p.records, rec)
	recIdx := len(p.records) - 1
	p.migrs++
	p.mu.Unlock()
	select {
	case p.events <- rec:
	default:
	}
	mw.metrics.Histogram(MetricDowntimeSeconds).Observe(rec.Downtime().Seconds())
	mw.observe(event(PhaseResume, nil))

	return c.completeMigration(inter, oldHP, hdr, lazy, recIdx, event)
}

// completeMigration is the post-commit tail shared by the classic and live
// migration paths: lazy (bulk) state streams in chunks while the destination
// already executes — the data restoration / execution overlap of Section
// 5.2 — then the restore handshake closes the record and the source leaves
// its host's process table. A failure here is post-commit: the destination
// owns the process but its bulk state will never fully arrive, so the
// inbound stream is failed (destination Awaits unblock with the error), the
// source cleans up, and ErrMigrated is still returned — the destination
// incarnation's fate decides the process's fate.
func (c *Context) completeMigration(inter *mpi.Comm, oldHP HostProc, hdr header, lazy map[string][]byte, recIdx int, event func(phase string, err error) MigrationEvent) error {
	p := c.proc
	mw := p.mw
	clock := mw.clock

	postFail := func(err error) error {
		ev := event(PhaseFailed, nil)
		mf := &MigrationFailure{
			From: ev.From, To: ev.To, Label: ev.Label,
			Phase: PhaseRestore, Committed: true, Err: err,
		}
		ev.Err = mf
		p.failSaved(mf)
		mw.observe(ev)
		oldHP.Exit()
		p.mu.Lock()
		p.records[recIdx].RestoreDone = clock.Now()
		p.mu.Unlock()
		return ErrMigrated
	}

	for _, name := range hdr.LazyNames {
		data := lazy[name]
		for off := 0; ; off += mw.chunk {
			end := off + mw.chunk
			last := end >= len(data)
			if last {
				end = len(data)
			}
			meta := chunkMeta{Name: name, Size: int64(end - off), Last: last}
			if err := inter.Send(meta, 0, tagLazy); err != nil {
				return postFail(fmt.Errorf("hpcm: lazy state transfer of %q: %w", name, err))
			}
			if err := inter.Send(data[off:end], 0, tagLazy); err != nil {
				return postFail(fmt.Errorf("hpcm: lazy state transfer of %q: %w", name, err))
			}
			if last {
				break
			}
		}
	}
	var restored bool
	if _, err := inter.Recv(&restored, 0, tagRestored); err != nil {
		return postFail(fmt.Errorf("hpcm: restore handshake: %w", err))
	}

	// Source-side cleanup: leave the source host's process table.
	oldHP.Exit()

	p.mu.Lock()
	p.records[recIdx].RestoreDone = clock.Now()
	done := p.records[recIdx]
	p.mu.Unlock()
	mw.metrics.Histogram(MetricMigrationSeconds).Observe(done.MigrationTime().Seconds())
	mw.observe(event(PhaseRestore, nil))
	return ErrMigrated
}

// bootstrap is the initialized process: it restores execution and eager
// memory state, takes over the computation, and keeps restoring lazy state
// in the background. parent is the intercommunicator to the migrating
// process (the spawn parent, or the connection a pre-initialized process
// accepted).
func (p *Process) bootstrap(env *mpi.Env, parent *mpi.Comm) error {
	return p.bootstrapResume(env, parent, nil)
}

// bootstrapResume is bootstrap's body, shared with the live path: region,
// when non-nil, is the paged memory image already assembled from precopy
// batches, installed under the header's PagesName so the application's
// Await finds it complete.
func (p *Process) bootstrapResume(env *mpi.Env, parent *mpi.Comm, region []byte) error {
	var hdr header
	if _, err := parent.Recv(&hdr, 0, tagHeader); err != nil {
		return fmt.Errorf("hpcm: receive execution state: %w", err)
	}
	saved := newSavedState()
	if _, err := parent.Recv(&saved.eager, 0, tagEager); err != nil {
		return fmt.Errorf("hpcm: receive eager state: %w", err)
	}
	if region != nil && hdr.PagesName != "" {
		saved.completeLazy(hdr.PagesName, region)
	}

	// The initialized process joins the destination host's process table
	// before taking over. Failures are reported back so the source can
	// resume locally instead of hanging.
	hp, err := p.mw.hosts.Attach(env.Host, p.name, hdr.Memory)
	if err != nil {
		_ = parent.Send(resumeStatus{Err: err.Error()}, 0, tagResumed)
		return fmt.Errorf("hpcm: attach on destination %q: %w", env.Host, err)
	}
	p.mu.Lock()
	p.host = env.Host
	p.hostProc = hp
	p.saved = saved // the source fails this stream if post-commit transfer breaks
	p.mu.Unlock()

	if err := parent.Send(resumeStatus{OK: true}, 0, tagResumed); err != nil {
		return err
	}

	// Background restoration of lazy state, overlapping execution. Buffers
	// are preallocated from the header's size inventory so reassembly is a
	// single sequential copy per blob.
	restoreErr := make(chan error, 1)
	go func() {
		sizes := make(map[string]int64, len(hdr.LazyNames))
		for i, name := range hdr.LazyNames {
			sizes[name] = hdr.LazySizes[i]
		}
		pending := make(map[string][]byte, len(hdr.LazyNames))
		remaining := len(hdr.LazyNames)
		for remaining > 0 {
			var meta chunkMeta
			if _, err := parent.Recv(&meta, 0, tagLazy); err != nil {
				restoreErr <- err
				return
			}
			var data []byte
			if _, err := parent.Recv(&data, 0, tagLazy); err != nil {
				restoreErr <- err
				return
			}
			buf, ok := pending[meta.Name]
			if !ok {
				buf = make([]byte, 0, sizes[meta.Name])
			}
			buf = append(buf, data...)
			pending[meta.Name] = buf
			if meta.Last {
				saved.completeLazy(meta.Name, buf)
				delete(pending, meta.Name)
				remaining--
			}
		}
		restoreErr <- parent.Send(true, 0, tagRestored)
	}()

	err = p.incarnation(env, hdr.Label, saved)
	if rerr := <-restoreErr; rerr != nil && err == nil {
		err = fmt.Errorf("hpcm: lazy restoration: %w", rerr)
	}
	return err
}
