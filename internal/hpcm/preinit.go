package hpcm

import (
	"fmt"

	"autoresched/internal/mpi"
)

// This file implements the optimisation Section 5.2 proposes: "we can also
// choose to improve this performance by pre-initializing the processes on
// the candidate destination machines". A pre-initialized process already
// exists on the destination, waiting behind an MPI named port; a migration
// to that host connects to it instead of paying the dynamic process
// creation latency.

// PreInit launches an initialized process for p on dest ahead of any
// migration. At most one pre-initialized process per destination is kept;
// repeated calls are no-ops. Unused pre-initialized processes are released
// when p finishes.
func (p *Process) PreInit(dest string) error {
	p.mu.Lock()
	if p.finished {
		p.mu.Unlock()
		return fmt.Errorf("hpcm: PreInit after process completion")
	}
	if p.preinit == nil {
		p.preinit = make(map[string]string)
	}
	if _, ok := p.preinit[dest]; ok {
		p.mu.Unlock()
		return nil
	}
	u := p.mw.universe
	port := u.OpenPort()
	p.preinit[dest] = port
	p.mu.Unlock()

	u.Start([]string{dest}, func(env *mpi.Env) error {
		inter, err := env.Accept(port, env.World)
		if err != nil {
			return nil // released unused (port closed)
		}
		return p.bootstrap(env, inter)
	})
	return nil
}

// PreInited reports the destinations with a waiting pre-initialized
// process.
func (p *Process) PreInited() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.preinit))
	for dest := range p.preinit {
		out = append(out, dest)
	}
	return out
}

// takePreinit consumes the pre-initialized process for dest, if any,
// returning the port to connect to.
func (p *Process) takePreinit(dest string) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	port, ok := p.preinit[dest]
	if ok {
		delete(p.preinit, dest)
	}
	return port, ok
}
