package hpcm

import (
	"fmt"
	"sort"
	"sync/atomic"

	"autoresched/internal/livemig"
	"autoresched/internal/mpi"
)

// Live migration: the iterative-precopy extension of the Section 3
// protocol. The classic path freezes the process for its whole memory
// transfer; the live path ships the paged region in rounds over the
// intercommunicator while the source keeps computing — round 1 carries
// every page, rounds 2..N only the pages dirtied since the previous round
// — and freezes the process only for the residual dirty set plus the
// classic execution-state transfer. When the dirty set stops shrinking the
// attempt falls back to stop-and-copy, paying one extra spawn.
//
// The flow is split across poll-points: startLive launches the attempt and
// returns immediately (the application computes through the rounds);
// pollLive resolves it at the first poll-point after the driver reached a
// terminal decision — freezeLive for a converged attempt, a cancel plus
// classic migrate for fallback.

// liveAttempt is one in-flight precopy attempt, created at the poll-point
// that consumed the migrate command and resolved at a later one.
type liveAttempt struct {
	proc      string
	label     string // poll-point that started the attempt
	sig       pendingCmd
	pagesName string
	pages     *livemig.Pages
	inter     *mpi.Comm
	rec       Record
	driver    *livemig.Driver
	send      livemig.SendFunc

	cancelled atomic.Bool
	done      chan struct{} // closed when the driver goroutine finished
	res       livemig.Result
	err       error
}

func (att *liveAttempt) event(phase string, round int, err error) MigrationEvent {
	return MigrationEvent{
		Proc: att.proc, From: att.rec.From, To: att.rec.To,
		Label: att.label, Phase: phase, Round: round, Err: err,
	}
}

// sendCancel tells the destination to discard the partial region and exit.
func (att *liveAttempt) sendCancel() error {
	return att.send(livemig.BatchMeta{Cancel: true}, nil)
}

// startLive begins a precopy attempt for the consumed migrate command. It
// reports started=false (and no error) when the process has no single
// paged region, in which case the caller migrates classically. When
// started, PollPoint returns nil and the application computes while the
// driver goroutine ships rounds; a later poll-point resolves the attempt.
func (c *Context) startLive(label string, sig pendingCmd) (started bool, err error) {
	pagesName, pages := c.state.pagesRegion()
	if pages == nil {
		return false, nil
	}
	p := c.proc
	mw := p.mw
	cmd := sig.cmd

	att := &liveAttempt{
		proc:      p.name,
		label:     label,
		sig:       sig,
		pagesName: pagesName,
		pages:     pages,
		done:      make(chan struct{}),
		rec: Record{
			From:        c.env.Host,
			To:          cmd.DestHost,
			Label:       label,
			CommandAt:   sig.at,
			PollPointAt: mw.clock.Now(),
		},
	}
	mw.observe(att.event(PhaseStart, 0, nil))

	// The destination assembles pages until the freeze batch; the live path
	// always spawns — pre-initialized processes speak only the classic
	// protocol.
	inter, serr := c.env.Spawn([]string{cmd.DestHost}, func(child *mpi.Env) error {
		return p.bootstrapLive(child, child.Parent)
	})
	if serr != nil {
		mf := &MigrationFailure{
			From: att.rec.From, To: att.rec.To, Label: label, Phase: PhaseStart,
			Err: fmt.Errorf("hpcm: dynamic process creation on %q: %w", cmd.DestHost, serr),
		}
		mw.observe(att.event(PhaseAborted, 0, mf))
		return true, mf
	}
	att.inter = inter
	att.rec.InitDone = mw.clock.Now()
	mw.observe(att.event(PhaseInit, 0, nil))

	// Batches move as metadata plus one multi-part raw message; the blocking
	// sends charge the virtual transfer time, which paces the rounds and
	// makes them contend with application traffic on the simulated network.
	att.send = func(meta livemig.BatchMeta, parts [][]byte) error {
		if err := inter.Send(meta, 0, tagPrecopy); err != nil {
			return err
		}
		if len(meta.PageIDs) > 0 {
			return inter.SendParts(parts, 0, tagPrecopy)
		}
		return nil
	}
	onRound := func(round, sent, dirty int) {
		mw.observe(att.event(PhasePrecopy, round, nil))
	}
	driver, derr := livemig.NewDriver(*mw.live, pages, att.send, onRound)
	if derr != nil {
		// Unmigratable shape (empty region): cancel the spawn and let the
		// classic path handle the command.
		_ = att.sendCancel() //lint:allow discardederr best-effort release of the spawned destination; the classic path takes over either way
		return false, nil
	}
	att.driver = driver

	p.mu.Lock()
	p.live = att
	p.mu.Unlock()

	p.xfer.Add(1)
	go func() {
		defer p.xfer.Done()
		att.res, att.err = driver.Run()
		if att.cancelled.Load() {
			// Stopped between rounds (process finished or was killed): the
			// destination is still waiting for batches; release it.
			_ = att.sendCancel() //lint:allow discardederr best-effort release; the attempt is already abandoned
		}
		close(att.done)
	}()
	return true, nil
}

// pollLive resolves an in-flight live attempt. handled=false means no
// attempt exists and the poll-point proceeds normally; handled=true with a
// nil error means rounds are still on the wire and the application should
// keep computing.
func (c *Context) pollLive(label string) (handled bool, err error) {
	p := c.proc
	p.mu.Lock()
	att := p.live
	p.mu.Unlock()
	if att == nil {
		return false, nil
	}
	select {
	case <-att.done:
	default:
		// Precopy rounds still shipping: compute through them. Checkpoint
		// cadence is preserved — a checkpoint written here is the fallback
		// point if the attempt aborts.
		return true, c.maybeCheckpoint(label)
	}
	p.mu.Lock()
	if p.live != att {
		// cancelLive raced us and owns the cleanup.
		p.mu.Unlock()
		return true, nil
	}
	p.live = nil
	p.mu.Unlock()

	p.xfer.Add(1)
	defer p.xfer.Done()

	mw := p.mw
	if att.err != nil {
		_ = att.sendCancel() //lint:allow discardederr the stream already failed; the failure below carries the cause
		mf := &MigrationFailure{
			From: att.rec.From, To: att.rec.To, Label: att.label,
			Phase: PhasePrecopy, Err: att.err,
		}
		mw.observe(att.event(PhaseAborted, att.res.Rounds, mf))
		return true, mf
	}
	if att.res.Decision == livemig.Fallback {
		// The dirty set never converged: discard the precopy work and pay
		// the classic stop-and-copy price — including a second spawn, which
		// is exactly the visible fallback cost the experiments measure.
		_ = att.sendCancel() //lint:allow discardederr best-effort release; the fallback migration spawns its own destination
		mw.observe(att.event(PhaseAborted, att.res.Rounds, fmt.Errorf(
			"hpcm: precopy did not converge after %d rounds: falling back to stop-and-copy", att.res.Rounds)))
		return true, c.migrate(label, att.sig)
	}
	return true, c.freezeLive(label, att)
}

// freezeLive is the live path's commit sequence, run at the poll-point
// where the process freezes: ship the residual dirty pages, then the
// classic execution-state transfer minus the paged region the destination
// already holds. The window from here to the destination's resume is the
// migration's downtime.
func (c *Context) freezeLive(label string, att *liveAttempt) error {
	p := c.proc
	mw := p.mw
	clock := mw.clock
	inter := att.inter

	rec := att.rec
	rec.Label = label
	rec.FreezeAt = clock.Now()
	rec.PrecopyRounds = att.res.Rounds

	event := func(phase string, err error) MigrationEvent {
		return MigrationEvent{
			Proc: p.name, From: rec.From, To: rec.To,
			Label: label, Phase: phase, Err: err,
		}
	}
	abort := func(phase string, err error) error {
		mf := &MigrationFailure{
			From: rec.From, To: rec.To, Label: label, Phase: phase, Err: err,
		}
		mw.observe(event(PhaseAborted, mf))
		return mf
	}
	mw.observe(event(PhaseFreeze, nil))

	// Residual dirty pages: applying the freeze batch completes the region.
	// Every residual page was already shipped in an earlier round, so it
	// counts as resent alongside the driver's rounds 2..N.
	ids, parts, _ := att.pages.Snapshot(att.res.ShippedGen)
	rec.PagesResent = att.res.PagesResent + len(ids)
	meta := livemig.BatchMeta{
		Round:     att.res.Rounds + 1,
		PageIDs:   ids,
		PageBytes: att.pages.PageSize(),
		Total:     att.pages.Len(),
		Final:     true,
	}
	if err := att.send(meta, parts); err != nil {
		return abort(PhaseFreeze, fmt.Errorf("hpcm: residual page transfer: %w", err))
	}

	eager, lazy, err := c.state.collect(att.pagesName)
	if err != nil {
		return abort(PhaseFreeze, fmt.Errorf("hpcm: state collection: %w", err))
	}
	hdr := header{Label: label, PagesName: att.pagesName}
	sortLazyNames(&hdr, lazy)
	for _, name := range hdr.LazyNames {
		rec.LazyBytes += int64(len(lazy[name]))
	}
	for _, data := range eager {
		rec.EagerBytes += int64(len(data))
	}

	p.mu.Lock()
	oldHP := p.hostProc
	p.mu.Unlock()

	if pending := p.pendingBytes(); pending > 0 {
		rec.CommBytes = pending
		if err := mw.universe.Transport().Send(c.env.Host, rec.To, pending); err != nil {
			return abort(PhaseFreeze, fmt.Errorf("hpcm: communication state transfer: %w", err))
		}
	}
	if err := inter.Send(hdr, 0, tagHeader); err != nil {
		return abort(PhaseFreeze, fmt.Errorf("hpcm: execution state transfer: %w", err))
	}
	if err := inter.Send(eager, 0, tagEager); err != nil {
		return abort(PhaseFreeze, fmt.Errorf("hpcm: eager state transfer: %w", err))
	}
	var resumed resumeStatus
	if _, err := inter.Recv(&resumed, 0, tagResumed); err != nil {
		return abort(PhaseFreeze, fmt.Errorf("hpcm: resume handshake: %w", err))
	}
	if !resumed.OK {
		return abort(PhaseFreeze, fmt.Errorf("hpcm: destination %q failed to initialize: %s", rec.To, resumed.Err))
	}
	rec.ResumeAt = clock.Now()

	// Commit: identical bookkeeping to the classic path, plus the live
	// histograms.
	p.mu.Lock()
	p.records = append(p.records, rec)
	recIdx := len(p.records) - 1
	p.migrs++
	p.mu.Unlock()
	select {
	case p.events <- rec:
	default:
	}
	mw.metrics.Histogram(MetricDowntimeSeconds).Observe(rec.Downtime().Seconds())
	mw.metrics.Histogram(MetricPrecopyRounds).Observe(float64(rec.PrecopyRounds))
	mw.metrics.Histogram(MetricPagesResent).Observe(float64(rec.PagesResent))
	mw.observe(event(PhaseResume, nil))

	return c.completeMigration(inter, oldHP, hdr, lazy, recIdx, event)
}

// cancelLive stops an in-flight live attempt, if any: the driver quits at
// its next round boundary and the destination discards the partial region.
// Called when the process finishes (or is killed) with an attempt pending.
func (p *Process) cancelLive() {
	p.mu.Lock()
	att := p.live
	p.live = nil
	p.mu.Unlock()
	if att == nil {
		return
	}
	att.cancelled.Store(true)
	att.driver.Stop()
	select {
	case <-att.done:
		// The driver already finished and nobody will poll the result: tell
		// the destination ourselves.
		_ = att.sendCancel() //lint:allow discardederr best-effort release during teardown; the process is exiting
	default:
		// The driver goroutine observes the stop and sends the cancel.
	}
}

// bootstrapLive is the live path's initialized process: it assembles the
// paged region from precopy batches (each a BatchMeta plus one multi-part
// raw page message) until the freeze batch completes it, then runs the
// classic resume with the region pre-restored. A cancel batch — fallback,
// or the source giving up — discards everything.
func (p *Process) bootstrapLive(env *mpi.Env, parent *mpi.Comm) error {
	var (
		image     []byte
		pageBytes int
	)
	for {
		var meta livemig.BatchMeta
		if _, err := parent.Recv(&meta, 0, tagPrecopy); err != nil {
			return fmt.Errorf("hpcm: receive precopy batch: %w", err)
		}
		if meta.Cancel {
			return nil
		}
		if image == nil {
			image = make([]byte, meta.Total)
			pageBytes = meta.PageBytes
		}
		if len(meta.PageIDs) > 0 {
			var parts [][]byte
			if _, err := parent.Recv(&parts, 0, tagPrecopy); err != nil {
				return fmt.Errorf("hpcm: receive precopy pages: %w", err)
			}
			for k, id := range meta.PageIDs {
				if k >= len(parts) || id < 0 || id*pageBytes >= len(image) {
					return fmt.Errorf("hpcm: malformed precopy batch: page %d of %d-byte region", id, len(image))
				}
				copy(image[id*pageBytes:], parts[k])
			}
		}
		if meta.Final {
			break
		}
	}
	return p.bootstrapResume(env, parent, image)
}

// sortLazyNames fills the header's lazy inventory smallest-first: the
// quickly-restored variables are the ones a resumed application is most
// likely to Await, so this maximises the restoration/execution overlap.
func sortLazyNames(hdr *header, lazy map[string][]byte) {
	for name := range lazy {
		hdr.LazyNames = append(hdr.LazyNames, name)
	}
	sort.Slice(hdr.LazyNames, func(i, j int) bool {
		a, b := hdr.LazyNames[i], hdr.LazyNames[j]
		if len(lazy[a]) != len(lazy[b]) {
			return len(lazy[a]) < len(lazy[b])
		}
		return a < b
	})
	for _, name := range hdr.LazyNames {
		hdr.LazySizes = append(hdr.LazySizes, int64(len(lazy[name])))
	}
}
