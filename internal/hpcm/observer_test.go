package hpcm

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestObserverSeesPhaseSequence(t *testing.T) {
	binder := &testBinder{}
	mw, _ := newMW(t, binder, 10*time.Millisecond)
	var mu sync.Mutex
	var phases []string
	mw.observer = func(ev MigrationEvent) {
		mu.Lock()
		phases = append(phases, ev.Phase)
		mu.Unlock()
	}
	gate := make(chan struct{})
	var got []int
	var sinkMu sync.Mutex
	p, err := mw.Start("app", "ws1", stagedMain(3, gate, &got, &sinkMu))
	if err != nil {
		t.Fatal(err)
	}
	p.Signal(Command{DestHost: "ws2"})
	for i := 0; i < 3; i++ {
		gate <- struct{}{}
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{PhaseStart, PhaseInit, PhaseResume, PhaseRestore}
	if len(phases) != len(want) {
		t.Fatalf("phases = %v, want %v", phases, want)
	}
	for i, ph := range want {
		if phases[i] != ph {
			t.Fatalf("phases = %v, want %v", phases, want)
		}
	}
}

func TestAbortedMigrationReturnsRecoverableFailure(t *testing.T) {
	binder := &testBinder{}
	mw, _ := newMW(t, binder, 10*time.Millisecond)
	var mu sync.Mutex
	var aborted []MigrationEvent
	mw.observer = func(ev MigrationEvent) {
		if ev.Phase == PhaseAborted {
			mu.Lock()
			aborted = append(aborted, ev)
			mu.Unlock()
		}
	}
	gate := make(chan struct{})
	var got []int
	var sinkMu sync.Mutex
	p, err := mw.Start("app", "ws1", stagedMain(3, gate, &got, &sinkMu))
	if err != nil {
		t.Fatal(err)
	}
	// "bad*" hosts fail Attach on the destination, so the initialized
	// process reports failure before the commit point.
	p.Signal(Command{DestHost: "badhost"})
	gate <- struct{}{}
	err = p.Wait()
	var mf *MigrationFailure
	if !errors.As(err, &mf) {
		t.Fatalf("Wait = %v, want *MigrationFailure", err)
	}
	if mf.Committed {
		t.Fatalf("failure marked committed: %+v", mf)
	}
	if mf.From != "ws1" || mf.To != "badhost" || mf.Phase != PhaseInit {
		t.Fatalf("failure = %+v", mf)
	}
	if !Recoverable(err) {
		t.Fatal("aborted migration not Recoverable")
	}
	if !Recoverable(ErrKilled) {
		t.Fatal("ErrKilled not Recoverable")
	}
	if Recoverable(errors.New("app bug")) {
		t.Fatal("ordinary error reported Recoverable")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(aborted) != 1 || aborted[0].Err == nil {
		t.Fatalf("aborted events = %+v", aborted)
	}
}

func TestSavedStateFailUnblocksAwaiters(t *testing.T) {
	s := newSavedState()
	errc := make(chan error, 1)
	go func() {
		_, err := s.awaitLazy("never")
		errc <- err
	}()
	cause := errors.New("stream died")
	s.fail(cause)
	select {
	case err := <-errc:
		if !errors.Is(err, cause) {
			t.Fatalf("awaitLazy = %v, want %v", err, cause)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("awaitLazy still blocked after fail")
	}
	// Blobs completed before the failure stay readable.
	s2 := newSavedState()
	s2.completeLazy("ok", []byte("x"))
	s2.fail(cause)
	data, err := s2.awaitLazy("ok")
	if err != nil || string(data) != "x" {
		t.Fatalf("awaitLazy(ok) = %q, %v", data, err)
	}
}
