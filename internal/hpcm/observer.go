package hpcm

import (
	"errors"
	"fmt"

	"autoresched/internal/events"
)

// Migration phases, as reported to a MigrationObserver. The chaos engine
// keys host-crash triggers on these, so a "mid-migration crash" happens at
// an exact protocol step rather than an approximate virtual time.
const (
	// PhaseStart: a poll-point picked up a migrate command; state is
	// collected, the destination process does not exist yet.
	PhaseStart = "start"
	// PhaseInit: the initialized process exists on the destination
	// (dynamic process creation complete); state transfer is next.
	PhaseInit = "init"
	// PhasePrecopy: one iterative-precopy round finished shipping its page
	// batch while the source keeps computing. Emitted once per round with
	// Round set; only live migrations produce it.
	PhasePrecopy = "precopy"
	// PhaseFreeze: precopy converged; the source froze at a poll-point and
	// is shipping the residual dirty pages plus execution state. The window
	// from here to PhaseResume is the live migration's downtime.
	PhaseFreeze = "freeze"
	// PhaseResume: the destination resumed execution — the commit point.
	PhaseResume = "resume"
	// PhaseRestore: all lazy state restored; the migration is complete.
	PhaseRestore = "restore"
	// PhaseAborted: the migration failed before the commit point; the
	// source still owns the process.
	PhaseAborted = "aborted"
	// PhaseFailed: the migration failed after the commit point (lazy
	// streaming or the restore handshake); the destination owns the
	// process but may be missing bulk state.
	PhaseFailed = "failed"
)

// MigrationEvent is one step of one migration.
type MigrationEvent struct {
	Proc     string
	From, To string
	Label    string
	Phase    string
	// Round is the precopy round number for PhasePrecopy events (1-based);
	// zero everywhere else.
	Round int
	// Err is set for PhaseAborted and PhaseFailed.
	Err error
}

// MigrationObserver receives migration phase events synchronously from the
// migrating goroutine; a fault injector can therefore crash a host at an
// exact protocol step. Observers must not block indefinitely.
type MigrationObserver func(MigrationEvent)

// MigrationFailure reports a migration that did not complete. Committed
// distinguishes the two very different situations: false means the source
// still owned the process when it failed (the state is intact but the
// incarnation gave up); true means the destination had already taken over
// and its bulk-state restoration broke. Either way the process's last
// checkpoint is the recovery point.
type MigrationFailure struct {
	From, To  string
	Label     string
	Phase     string
	Committed bool
	Err       error
}

// Error implements error.
func (e *MigrationFailure) Error() string {
	state := "aborted"
	if e.Committed {
		state = "failed post-commit"
	}
	return fmt.Sprintf("hpcm: migration %s->%s at %q %s (%s): %v",
		e.From, e.To, e.Label, state, e.Phase, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *MigrationFailure) Unwrap() error { return e.Err }

// Recoverable reports whether a process error is one the runtime can
// recover from by restoring the last checkpoint on another host: a host
// crash (ErrKilled) or a failed migration.
func Recoverable(err error) bool {
	if errors.Is(err, ErrKilled) {
		return true
	}
	var mf *MigrationFailure
	return errors.As(err, &mf)
}

// CheckpointEvent is one checkpoint attempt, published on the unified
// event sink (Source "hpcm", Kind "checkpoint"/"checkpointed") as a typed
// payload. Begin fires before the state is collected and persisted — a
// fault injector keyed on it lands its crash exactly mid-checkpoint — and
// a second event with Begin=false follows a successful save.
type CheckpointEvent struct {
	Proc  string
	Host  string
	Label string
	Begin bool
}

// observe emits a migration phase event to the legacy observer and, with
// its typed payload attached, to the unified event sink.
func (m *Middleware) observe(ev MigrationEvent) {
	if m.observer != nil {
		m.observer(ev)
	}
	if m.events != nil {
		m.events.Publish(events.Event{
			Time:    m.clock.Now(),
			Source:  events.SourceHPCM,
			Kind:    ev.Phase,
			Host:    ev.From,
			Dest:    ev.To,
			Proc:    ev.Proc,
			Note:    ev.Label,
			Err:     ev.Err,
			Payload: ev,
		})
	}
}

// observeCheckpoint emits a checkpoint event on the unified sink.
func (m *Middleware) observeCheckpoint(ev CheckpointEvent) {
	if m.events == nil {
		return
	}
	kind := "checkpointed"
	if ev.Begin {
		kind = "checkpoint"
	}
	m.events.Publish(events.Event{
		Time:    m.clock.Now(),
		Source:  events.SourceHPCM,
		Kind:    kind,
		Host:    ev.Host,
		Proc:    ev.Proc,
		Note:    ev.Label,
		Payload: ev,
	})
}
