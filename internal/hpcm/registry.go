package hpcm

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"autoresched/internal/livemig"
)

// registry is the memory-state table HPCM's precompiler would have
// generated: named variables, eager or lazy, with their serialised forms for
// collection and restoration.
type registry struct {
	mu      sync.Mutex
	cond    *sync.Cond
	entries map[string]*entry
	// saved holds incoming state on a resumed incarnation: eager data is
	// present at creation, lazy data arrives from the background stream.
	saved *savedState
}

type entry struct {
	name     string
	ptr      any
	lazy     bool
	restored bool
}

// savedState is the transferable memory image.
type savedState struct {
	mu    sync.Mutex
	cond  *sync.Cond
	eager map[string][]byte
	lazy  map[string][]byte // complete lazy blobs (assembled from chunks)
	ready map[string]bool   // lazy name fully received
	err   error             // the inbound stream died; missing blobs never arrive
}

func newSavedState() *savedState {
	s := &savedState{
		eager: make(map[string][]byte),
		lazy:  make(map[string][]byte),
		ready: make(map[string]bool),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// completeLazy installs a fully received lazy blob.
func (s *savedState) completeLazy(name string, data []byte) {
	s.mu.Lock()
	s.lazy[name] = data
	s.ready[name] = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// fail marks the inbound state stream dead: blobs not yet complete will
// never arrive, and awaiters unblock with err.
func (s *savedState) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// awaitLazy blocks until the named lazy blob has fully arrived, or the
// stream fails.
func (s *savedState) awaitLazy(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.ready[name] && s.err == nil {
		s.cond.Wait()
	}
	if s.ready[name] {
		return s.lazy[name], nil
	}
	return nil, s.err
}

func newRegistry(saved *savedState) *registry {
	r := &registry{entries: make(map[string]*entry), saved: saved}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// register adds (or re-binds, on resume) a state variable. On a resumed
// incarnation, eager state restores immediately; lazy state restores when
// awaited (or when the stream completes first).
func (r *registry) register(name string, ptr any, lazy bool) error {
	if ptr == nil {
		return fmt.Errorf("hpcm: register %q with nil pointer", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.entries[name]; exists {
		return fmt.Errorf("hpcm: state %q already registered", name)
	}
	e := &entry{name: name, ptr: ptr, lazy: lazy}
	r.entries[name] = e
	if r.saved == nil {
		return nil
	}
	if !lazy {
		data, ok := r.saved.eager[name]
		if !ok {
			return fmt.Errorf("hpcm: resumed without saved state for %q", name)
		}
		if err := decodeState(data, ptr); err != nil {
			return fmt.Errorf("hpcm: restore %q: %w", name, err)
		}
		e.restored = true
	}
	return nil
}

// await blocks until the named lazy entry is restored into its pointer.
func (r *registry) await(name string) error {
	r.mu.Lock()
	e, ok := r.entries[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("hpcm: await of unregistered state %q", name)
	}
	if e.restored || r.saved == nil {
		// Fresh incarnation or already restored: nothing to wait for.
		if r.saved == nil {
			e.restored = true
		}
		r.mu.Unlock()
		return nil
	}
	saved := r.saved
	r.mu.Unlock()

	data, err := saved.awaitLazy(name)
	if err != nil {
		return fmt.Errorf("hpcm: await %q: %w", name, err)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if e.restored {
		return nil
	}
	if err := decodeState(data, e.ptr); err != nil {
		return fmt.Errorf("hpcm: restore %q: %w", name, err)
	}
	e.restored = true
	return nil
}

// collect serialises the current memory state for transfer: the eager
// image and the lazy blobs. skip names one entry to leave out — the live
// path ships its paged region page-by-page and must not duplicate it in
// the freeze payload; classic migration passes "".
func (r *registry) collect(skip string) (eager map[string][]byte, lazy map[string][]byte, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	eager = make(map[string][]byte)
	lazy = make(map[string][]byte)
	for name, e := range r.entries {
		if skip != "" && name == skip {
			continue
		}
		data, err := encodeState(e.ptr)
		if err != nil {
			return nil, nil, fmt.Errorf("hpcm: collect %q: %w", name, err)
		}
		if e.lazy {
			lazy[name] = data
		} else {
			eager[name] = data
		}
	}
	return eager, lazy, nil
}

// pagesRegion returns the process's paged region if exactly one is
// registered. Live precopy only engages for that shape; zero or several
// paged regions migrate classically.
func (r *registry) pagesRegion() (string, *livemig.Pages) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var (
		name  string
		pages *livemig.Pages
		count int
	)
	for n, e := range r.entries {
		if pg, ok := e.ptr.(*livemig.Pages); ok {
			name, pages = n, pg
			count++
		}
	}
	if count != 1 {
		return "", nil
	}
	return name, pages
}

// encodeState serialises one registered variable. Raw byte regions move
// without re-encoding — the source is paused at its poll-point and never
// touches the state again, so sharing the backing array is safe and keeps
// collection of large memory images cheap (HPCM's data collection likewise
// ships raw memory blocks).
func encodeState(ptr any) ([]byte, error) {
	if bp, ok := ptr.(*[]byte); ok {
		return *bp, nil
	}
	// A paged region serialises as its flat image, so checkpoints, classic
	// migration and precopy fallback all work on Pages unchanged.
	if pg, ok := ptr.(*livemig.Pages); ok {
		return pg.Bytes(), nil
	}
	return gobEncode(ptr)
}

// decodeState mirrors encodeState on restoration.
func decodeState(data []byte, ptr any) error {
	if bp, ok := ptr.(*[]byte); ok {
		*bp = data
		return nil
	}
	if pg, ok := ptr.(*livemig.Pages); ok {
		return pg.Load(data)
	}
	return gobDecode(data, ptr)
}

// names returns the registered names split by kind.
func (r *registry) names() (eager, lazy []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, e := range r.entries {
		if e.lazy {
			lazy = append(lazy, name)
		} else {
			eager = append(eager, name)
		}
	}
	return eager, lazy
}

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(data []byte, ptr any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(ptr)
}
