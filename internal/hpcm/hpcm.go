// Package hpcm reproduces the HPCM (High Performance Computing Mobility)
// middleware the paper's rescheduler drives: heterogeneous process migration
// for applications structured as resumable, labelled computations.
//
// HPCM's precompiler rewrites C/Fortran programs into code that (1) registers
// the variables making up the memory state, (2) marks poll-points — the
// "pre-defined possible points in the execution sequence where a migration
// can occur" — and (3) can restart execution at the label of the nearest
// poll-point. A Go application expresses the same structure directly: its
// Main registers state on the Context, calls PollPoint between phases, and
// dispatches on ResumeLabel when restarted on a destination host.
//
// The migration protocol follows Section 3 and the timeline of Section 5.2:
//
//  1. The commander delivers a migrate command (the user-defined signal plus
//     the temp file carrying the destination address) — Process.Signal.
//  2. At the next poll-point the migrating process creates the initialized
//     process on the destination through MPI-2 dynamic process creation
//     (charged with the LAM-like spawn latency) and joins communicators.
//  3. Execution state (the poll-point label) and eager memory state transfer
//     first; the initialized process resumes immediately after — "the
//     process resumes execution at the destination before the migration
//     ends".
//  4. Lazy (bulk) memory state streams over in chunks concurrently with the
//     resumed execution, charged to the network; Context.Await blocks the
//     application if it touches bulk state before its restoration finishes.
//
// Every phase is timed into a Record, which the evaluation harness uses to
// reproduce the Figure 7/8 timelines and the migration-time column of
// Table 2.
package hpcm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"autoresched/internal/events"
	"autoresched/internal/livemig"
	"autoresched/internal/metrics"
	"autoresched/internal/mpi"
	"autoresched/internal/vclock"
)

// ErrMigrated is returned by PollPoint (and must be propagated out of Main)
// when the incarnation's state has been shipped to a destination host.
var ErrMigrated = errors.New("hpcm: process migrated")

// Main is a migration-enabled application body. It must propagate
// ErrMigrated unchanged when a poll-point fires.
type Main func(ctx *Context) error

// Command is the migrate order the commander delivers: the destination
// host plus the address the paper's implementation passes through a
// temporary file.
type Command struct {
	DestHost string
	DestAddr string
	Policy   string
}

// HostProc is a process's presence on a host: CPU charging, memory
// accounting and the process-table entry. The cluster package binds this to
// a simulated host; a null implementation runs unbound.
type HostProc interface {
	PID() int
	Started() time.Time
	Compute(work float64) error
	SetMemory(bytes int64)
	Exit()
}

// HostBinder attaches processes to hosts.
type HostBinder interface {
	Attach(host, procName string, memory int64) (HostProc, error)
}

// Options configures the middleware.
type Options struct {
	// Universe supplies MPI services (dynamic process management, message
	// transport). Required.
	Universe *mpi.Universe
	// Hosts binds incarnations to host resources; nil runs unbound.
	Hosts HostBinder
	// ChunkBytes is the lazy-state streaming chunk size; zero selects 1 MB.
	ChunkBytes int
	// Checkpoints, when set, enables the checkpointing extension: processes
	// can write their state to the store at poll-points and be restored
	// from it after a host loss.
	Checkpoints CheckpointStore
	// CheckpointEvery automatically checkpoints at the first poll-point
	// after each interval (zero: only on RequestCheckpoint).
	CheckpointEvery time.Duration
	// Observer, when set, receives migration phase events synchronously
	// from the migrating goroutine (fault injection, metrics). It is the
	// legacy callback shape; new consumers register on Events with
	// events.On[MigrationEvent] instead.
	Observer MigrationObserver
	// Events, when set, receives every migration phase event and every
	// checkpoint event on the unified runtime sink (Source "hpcm"), each
	// carrying its typed struct (MigrationEvent, CheckpointEvent) as the
	// Payload. Published synchronously from the emitting goroutine, like
	// Observer.
	Events events.Sink
	// Metrics, when set, receives the middleware's latency histograms:
	// hpcm/migration_seconds and hpcm/downtime_seconds (virtual-clock, per
	// committed migration), hpcm/checkpoint_seconds (wall-clock, per
	// checkpoint write), and — on the live path — hpcm/precopy_rounds and
	// hpcm/pages_resent (per committed live migration). Nil disables.
	Metrics *metrics.Registry
	// Live, when set, enables the iterative-precopy live migration path for
	// processes that registered exactly one paged memory region
	// (Context.RegisterPages): pages stream to the destination while the
	// source keeps computing, and the process freezes only for the residual
	// delta — falling back to the classic stop-and-copy migration when the
	// dirty set does not converge. Processes without a paged region migrate
	// classically regardless.
	Live *livemig.Config
}

// Metric names the middleware exports when Options.Metrics is set.
const (
	MetricMigrationSeconds  = "hpcm/migration_seconds"
	MetricDowntimeSeconds   = "hpcm/downtime_seconds"
	MetricCheckpointSeconds = "hpcm/checkpoint_seconds"
	MetricPrecopyRounds     = "hpcm/precopy_rounds"
	MetricPagesResent       = "hpcm/pages_resent"
)

// NullBinder returns the no-op HostBinder used when processes run unbound
// from any host model — benchmarks and pure protocol tests that need a
// binder without building a cluster.
func NullBinder() HostBinder { return nullBinder{} }

// nullBinder satisfies HostBinder without any host model.
type nullBinder struct{}

type nullProc struct{ started time.Time }

func (nullBinder) Attach(string, string, int64) (HostProc, error) {
	// The wall start is intentional: Started() feeds completion estimates,
	// and pinning it to a fixed epoch reorders migration selection.
	return &nullProc{started: time.Now()}, nil //lint:allow determinism nullProc start feeds completion estimates; pinning it reorders scheduling
}
func (p *nullProc) PID() int              { return 0 }
func (p *nullProc) Started() time.Time    { return p.started }
func (p *nullProc) Compute(float64) error { return nil }
func (p *nullProc) SetMemory(int64)       {}
func (p *nullProc) Exit()                 {}

// Middleware is the per-node HPCM runtime.
type Middleware struct {
	universe  *mpi.Universe
	clock     vclock.Clock
	hosts     HostBinder
	chunk     int
	ckptStore CheckpointStore
	ckptEvery time.Duration
	observer  MigrationObserver
	events    events.Sink
	metrics   *metrics.Registry
	live      *livemig.Config
	procs     sync.Map // live process directory: name -> *Process
}

// New creates a Middleware.
func New(opts Options) (*Middleware, error) {
	if opts.Universe == nil {
		return nil, errors.New("hpcm: Options.Universe is required")
	}
	if opts.Hosts == nil {
		opts.Hosts = nullBinder{}
	}
	if opts.ChunkBytes <= 0 {
		opts.ChunkBytes = 1 << 20
	}
	if opts.Metrics != nil {
		// Pre-create the histograms so /metrics exposes them (empty) even
		// before the first migration.
		for _, name := range []string{
			MetricMigrationSeconds, MetricDowntimeSeconds, MetricCheckpointSeconds,
			MetricPrecopyRounds, MetricPagesResent,
		} {
			opts.Metrics.Histogram(name)
		}
	}
	return &Middleware{
		universe:  opts.Universe,
		clock:     opts.Universe.Clock(),
		hosts:     opts.Hosts,
		chunk:     opts.ChunkBytes,
		ckptStore: opts.Checkpoints,
		ckptEvery: opts.CheckpointEvery,
		observer:  opts.Observer,
		events:    opts.Events,
		metrics:   opts.Metrics,
		live:      opts.Live,
	}, nil
}

// Process is one migration-enabled application instance. Its identity is
// stable across migrations; Host reports where it currently runs.
type Process struct {
	mw   *Middleware
	name string
	main Main

	signal   chan pendingCmd // buffered: the pending migrate command, if any
	xfer     sync.WaitGroup  // in-flight migration transfers (source side)
	events   chan Record     // committed migrations, for runtime re-registration
	mbox     *mailbox        // inter-process messages, owned by the identity
	ckptReq  atomic.Bool     // checkpoint requested for the next poll-point
	killed   atomic.Bool     // host-crash simulation flag
	evictReq atomic.Bool     // preemption eviction armed for the next poll-point

	mu       sync.Mutex
	host     string
	hostProc HostProc
	saved    *savedState  // the current resumed incarnation's inbound state
	live     *liveAttempt // in-flight precopy attempt, resolved at a poll-point
	records  []Record
	migrs    int
	preinit  map[string]string // destination -> waiting port (Section 5.2)
	lastCkpt time.Time
	ckpts    int
	finished bool
	result   error
	done     chan struct{}
}

// Record times one migration's phases (Section 5.2 / Table 2).
type Record struct {
	From, To string
	Label    string
	// CommandAt is when the migrate command reached the process.
	CommandAt time.Time
	// PollPointAt is when execution hit the migration poll-point.
	PollPointAt time.Time
	// InitDone is when the initialized process existed on the destination
	// (dynamic process creation complete).
	InitDone time.Time
	// ResumeAt is when the destination resumed execution (execution state
	// plus eager memory state restored).
	ResumeAt time.Time
	// RestoreDone is when the last lazy state chunk was restored.
	RestoreDone time.Time
	// FreezeAt is when a live migration froze the source for the residual
	// transfer; zero for classic stop-and-copy migrations.
	FreezeAt time.Time
	// PrecopyRounds and PagesResent summarise the live path: iterative
	// rounds run before the freeze, and pages shipped more than once
	// (rounds 2..N plus the freeze residual). Zero for classic migrations.
	PrecopyRounds int
	PagesResent   int
	// EagerBytes and LazyBytes are the transferred memory-state sizes;
	// CommBytes is the communication state (queued undelivered messages)
	// that moved with the process.
	EagerBytes int64
	LazyBytes  int64
	CommBytes  int64
}

// MigrationTime is the full migration duration: command arrival to complete
// state restoration — the paper's "migration time" column.
func (r Record) MigrationTime() time.Duration { return r.RestoreDone.Sub(r.CommandAt) }

// Downtime is how long the application made no progress: command arrival to
// destination resume for classic migrations, freeze to destination resume
// for live ones (the source keeps computing through the precopy rounds).
func (r Record) Downtime() time.Duration {
	if !r.FreezeAt.IsZero() {
		return r.ResumeAt.Sub(r.FreezeAt)
	}
	return r.ResumeAt.Sub(r.CommandAt)
}

// Start launches a migration-enabled process named name on host.
func (m *Middleware) Start(name, host string, main Main) (*Process, error) {
	p := &Process{
		mw:     m,
		name:   name,
		main:   main,
		signal: make(chan pendingCmd, 1),
		events: make(chan Record, 16),
		mbox:   newMailbox(),
		host:   host,
		done:   make(chan struct{}),
	}
	if err := m.register(p); err != nil {
		return nil, err
	}
	hp, err := m.hosts.Attach(host, name, 0)
	if err != nil {
		m.deregister(p)
		return nil, fmt.Errorf("hpcm: attach %q to %q: %w", name, host, err)
	}
	p.hostProc = hp
	m.universe.Start([]string{host}, func(env *mpi.Env) error {
		return p.incarnation(env, "", nil)
	})
	return p, nil
}

// pendingCmd stamps a migrate command with its delivery time, the start of
// the measured migration timeline.
type pendingCmd struct {
	cmd Command
	at  time.Time
}

// Signal delivers a migrate command (the commander's user-defined signal).
// A command already pending is replaced.
func (p *Process) Signal(cmd Command) {
	sig := pendingCmd{cmd: cmd, at: p.mw.clock.Now()}
	select {
	case <-p.signal: // drop the stale command
	default:
	}
	p.signal <- sig
}

// Name returns the application name.
func (p *Process) Name() string { return p.name }

// Host returns the host the process currently runs on.
func (p *Process) Host() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.host
}

// PID returns the pid of the current incarnation's host process.
func (p *Process) PID() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hostProc.PID()
}

// Started returns the start time of the current incarnation (the pid-file
// timestamp the paper's process selector reads).
func (p *Process) Started() time.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hostProc.Started()
}

// Migrations reports how many migrations have completed.
func (p *Process) Migrations() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.migrs
}

// Records returns the migration records so far.
func (p *Process) Records() []Record {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Record(nil), p.records...)
}

// Done returns a channel closed when the process (in whatever incarnation)
// has finished.
func (p *Process) Done() <-chan struct{} { return p.done }

// Events delivers a Record for every committed migration (buffered; dropped
// if nobody listens). The rescheduler runtime uses it to re-register the
// process under its new host.
func (p *Process) Events() <-chan Record { return p.events }

// Wait blocks until the process finishes — including the source-side
// completion of any in-flight state transfer — and returns its error.
func (p *Process) Wait() error {
	<-p.done
	p.xfer.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.result
}

// failSaved fails the current resumed incarnation's inbound state stream:
// Await calls blocked on lazy blobs that will never arrive unblock with err.
// The source side calls this when a committed migration's bulk streaming
// breaks, so the destination — which owns the process — decides its fate.
func (p *Process) failSaved(err error) {
	p.mu.Lock()
	saved := p.saved
	p.mu.Unlock()
	if saved != nil {
		saved.fail(err)
	}
}

// finish records the terminal result, once. All cleanup — host process
// exit, directory deregistration, mailbox close, release of unused
// pre-initialized processes — completes before done closes, so Wait
// observes a fully settled process.
func (p *Process) finish(err error) {
	p.mu.Lock()
	if p.finished {
		p.mu.Unlock()
		return
	}
	p.finished = true
	p.result = err
	hp := p.hostProc
	ports := make([]string, 0, len(p.preinit))
	for _, port := range p.preinit {
		ports = append(ports, port)
	}
	p.preinit = nil
	p.mu.Unlock()

	// A live attempt still copying is pointless now: cancel it so its
	// destination discards the partial region and the driver goroutine
	// (tracked by xfer) winds down.
	p.cancelLive()
	hp.Exit()
	p.mw.deregister(p)
	p.mbox.close()
	for _, port := range ports {
		p.mw.universe.ClosePort(port)
	}
	close(p.done)
}

// incarnation runs the application body once on one host; label and saved
// carry resume state for post-migration incarnations.
func (p *Process) incarnation(env *mpi.Env, label string, saved *savedState) error {
	ctx := &Context{
		proc:  p,
		env:   env,
		label: label,
		state: newRegistry(saved),
	}
	err := p.main(ctx)
	if errors.Is(err, ErrMigrated) {
		// The destination incarnation owns the process now; this MPI
		// process simply exits (the paper's source-side cleanup).
		return nil
	}
	p.finish(err)
	return err
}
