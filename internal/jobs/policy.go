package jobs

import (
	"fmt"
	"sort"
)

// Policy shapes one admission cycle: the order pending jobs are considered
// in, whether a blocked job may preempt running work, and whether the cycle
// continues past a blocked job. The three stock policies are the shoot-out
// of -exp multijob:
//
//   - FIFO: submission order, strict head-of-line blocking, no preemption —
//     the baseline batch scheduler.
//   - Priority-preemptive: priority order; a blocked high-priority gang
//     evicts victims from the lowest-priority running jobs; the cycle stops
//     at the first job that stays blocked (no skipping, so lower priorities
//     cannot starve admitted-but-blocked higher ones).
//   - Backfill: submission order, but the cycle walks past blocked jobs and
//     admits any later job that fits — makespan over fairness, without
//     preemption.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Order returns the admission order over the pending snapshot.
	Order(pending []JobView) []JobView
	// Preemptive reports whether blocked jobs may evict lower-priority
	// running jobs.
	Preemptive() bool
	// Backfill reports whether the cycle continues past a blocked job.
	Backfill() bool
}

// FIFO is strict submission-order admission with head-of-line blocking.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "fifo" }

// Order implements Policy: ascending submission sequence.
func (FIFO) Order(pending []JobView) []JobView {
	out := append([]JobView(nil), pending...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Preemptive implements Policy.
func (FIFO) Preemptive() bool { return false }

// Backfill implements Policy.
func (FIFO) Backfill() bool { return false }

// PriorityPreemptive admits in priority order and lets blocked gangs evict
// strictly lower-priority running jobs.
type PriorityPreemptive struct{}

// Name implements Policy.
func (PriorityPreemptive) Name() string { return "priority-preemptive" }

// Order implements Policy: descending priority, submission order within a
// priority.
func (PriorityPreemptive) Order(pending []JobView) []JobView {
	out := append([]JobView(nil), pending...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Preemptive implements Policy.
func (PriorityPreemptive) Preemptive() bool { return true }

// Backfill implements Policy.
func (PriorityPreemptive) Backfill() bool { return false }

// Backfill is FIFO order without head-of-line blocking: jobs behind a
// blocked head are admitted when they fit.
type Backfill struct{}

// Name implements Policy.
func (Backfill) Name() string { return "backfill" }

// Order implements Policy: ascending submission sequence.
func (Backfill) Order(pending []JobView) []JobView {
	return FIFO{}.Order(pending)
}

// Preemptive implements Policy.
func (Backfill) Preemptive() bool { return false }

// Backfill implements Policy.
func (Backfill) Backfill() bool { return true }

// Policies returns the stock policy set, in shoot-out order.
func Policies() []Policy {
	return []Policy{FIFO{}, PriorityPreemptive{}, Backfill{}}
}

// PolicyByName resolves a stock policy.
func PolicyByName(name string) (Policy, error) {
	for _, p := range Policies() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("jobs: unknown policy %q", name)
}
