package jobs

import (
	"fmt"
	"reflect"
	"testing"
)

// fleet builds n free hosts named h1..hn.
func fleet(n int) []HostView {
	out := make([]HostView, n)
	for i := range out {
		out[i] = HostView{Name: fmt.Sprintf("h%d", i+1)}
	}
	return out
}

func occupy(hosts []HostView, job string, names ...string) {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	for i := range hosts {
		if set[hosts[i].Name] {
			hosts[i].Job = job
		}
	}
}

func TestPlanFIFOHeadOfLineBlocks(t *testing.T) {
	pending := []JobView{
		{Name: "big", Gang: 4, Seq: 1},
		{Name: "small", Gang: 1, Seq: 2},
	}
	view := ClusterView{Hosts: fleet(2)}
	plan := PlanCycle(FIFO{}, pending, view)
	if len(plan) != 0 {
		t.Fatalf("FIFO admitted %v past a blocked head", plan)
	}
}

func TestPlanBackfillWalksPastBlockedHead(t *testing.T) {
	pending := []JobView{
		{Name: "big", Gang: 4, Seq: 1},
		{Name: "small", Gang: 1, Seq: 2},
		{Name: "small2", Gang: 2, Seq: 3},
	}
	view := ClusterView{Hosts: fleet(2)}
	plan := PlanCycle(Backfill{}, pending, view)
	if len(plan) != 1 || plan[0].Job != "small" {
		t.Fatalf("backfill plan = %+v, want small admitted", plan)
	}
	// small2 no longer fits (one host left) — backfill keeps walking but
	// finds nothing else.
	if got := plan[0].Hosts; !reflect.DeepEqual(got, []string{"h1"}) {
		t.Fatalf("small placed on %v", got)
	}
}

func TestPlanFIFOAdmitsInOrder(t *testing.T) {
	pending := []JobView{
		{Name: "a", Gang: 2, Seq: 1},
		{Name: "b", Gang: 2, Seq: 2},
	}
	view := ClusterView{Hosts: fleet(4)}
	plan := PlanCycle(FIFO{}, pending, view)
	if len(plan) != 2 {
		t.Fatalf("plan = %+v", plan)
	}
	if !reflect.DeepEqual(plan[0].Hosts, []string{"h1", "h2"}) ||
		!reflect.DeepEqual(plan[1].Hosts, []string{"h3", "h4"}) {
		t.Fatalf("placements overlap or misorder: %+v", plan)
	}
}

func TestPlanPreemptionRequeuesLowestPriority(t *testing.T) {
	// Four hosts all busy: lo (prio 0, newest) on h3,h4; mid (prio 1) on
	// h1,h2. A high-priority gang of 2 must evict lo — the lowest priority
	// — by requeue (nowhere to migrate), not touch mid.
	hosts := fleet(4)
	occupy(hosts, "mid", "h1", "h2")
	occupy(hosts, "lo", "h3", "h4")
	view := ClusterView{
		Hosts: hosts,
		Running: []JobView{
			{Name: "mid", Priority: 1, Gang: 2, Seq: 1, Hosts: []string{"h1", "h2"}},
			{Name: "lo", Priority: 0, Gang: 2, Seq: 2, Hosts: []string{"h3", "h4"}},
		},
	}
	pending := []JobView{{Name: "hi", Priority: 2, Gang: 2, Seq: 3}}
	plan := PlanCycle(PriorityPreemptive{}, pending, view)
	if len(plan) != 1 {
		t.Fatalf("plan = %+v", plan)
	}
	adm := plan[0]
	if len(adm.Evictions) != 1 || adm.Evictions[0].Job != "lo" || adm.Evictions[0].Mode != EvictRequeue {
		t.Fatalf("evictions = %+v, want lo requeued", adm.Evictions)
	}
	if len(adm.Hosts) != 2 {
		t.Fatalf("admitted on %v", adm.Hosts)
	}
}

func TestPlanNoPreemptionOfEqualPriority(t *testing.T) {
	hosts := fleet(2)
	occupy(hosts, "peer", "h1", "h2")
	view := ClusterView{
		Hosts:   hosts,
		Running: []JobView{{Name: "peer", Priority: 1, Gang: 2, Seq: 1, Hosts: []string{"h1", "h2"}}},
	}
	pending := []JobView{{Name: "same", Priority: 1, Gang: 1, Seq: 2}}
	if plan := PlanCycle(PriorityPreemptive{}, pending, view); len(plan) != 0 {
		t.Fatalf("equal priority was preempted: %+v", plan)
	}
}

func TestPlanShrinksElasticVictim(t *testing.T) {
	hosts := fleet(4)
	occupy(hosts, "el", "h1", "h2", "h3", "h4")
	view := ClusterView{
		Hosts: hosts,
		Running: []JobView{
			{Name: "el", Priority: 0, Gang: 4, Elastic: true, MinWorld: 2, Seq: 1,
				Hosts: []string{"h1", "h2", "h3", "h4"}},
		},
	}
	pending := []JobView{{Name: "hi", Priority: 1, Gang: 2, Seq: 2}}
	plan := PlanCycle(PriorityPreemptive{}, pending, view)
	if len(plan) != 1 || len(plan[0].Evictions) != 1 {
		t.Fatalf("plan = %+v", plan)
	}
	ev := plan[0].Evictions[0]
	if ev.Mode != EvictShrink || ev.Job != "el" {
		t.Fatalf("eviction = %+v, want shrink of el", ev)
	}
	// Shrink retires the tail ranks first.
	if !reflect.DeepEqual(ev.Hosts, []string{"h4", "h3"}) {
		t.Fatalf("shrink vacated %v, want [h4 h3]", ev.Hosts)
	}
}

func TestPlanShrinkRespectsMinWorld(t *testing.T) {
	// el would have to drop below MinWorld=3, so it is requeued instead.
	hosts := fleet(4)
	occupy(hosts, "el", "h1", "h2", "h3", "h4")
	view := ClusterView{
		Hosts: hosts,
		Running: []JobView{
			{Name: "el", Priority: 0, Gang: 4, Elastic: true, MinWorld: 3, Seq: 1,
				Hosts: []string{"h1", "h2", "h3", "h4"}},
		},
	}
	pending := []JobView{{Name: "hi", Priority: 1, Gang: 2, Seq: 2}}
	plan := PlanCycle(PriorityPreemptive{}, pending, view)
	if len(plan) != 1 || len(plan[0].Evictions) != 1 {
		t.Fatalf("plan = %+v", plan)
	}
	if got := plan[0].Evictions[0].Mode; got != EvictRequeue {
		t.Fatalf("eviction mode = %s, want requeue (MinWorld floor)", got)
	}
}

func TestPlanMigratesVictimOnHeterogeneousFleet(t *testing.T) {
	// hi fits only the two big hosts; victim vic (rigid, low priority)
	// occupies them but also fits the small spare hosts — its contested
	// ranks migrate instead of the job requeueing.
	hosts := []HostView{
		{Name: "big1", Job: "vic"}, {Name: "big2", Job: "vic"},
		{Name: "small1"}, {Name: "small2"},
	}
	big := map[string]bool{"big1": true, "big2": true}
	view := ClusterView{
		Hosts: hosts,
		Running: []JobView{
			{Name: "vic", Priority: 0, Gang: 2, Seq: 1, Hosts: []string{"big1", "big2"}},
		},
		Eligible: func(job, host string) bool {
			if job == "hi" {
				return big[host]
			}
			return true
		},
	}
	pending := []JobView{{Name: "hi", Priority: 1, Gang: 2, Seq: 2}}
	plan := PlanCycle(PriorityPreemptive{}, pending, view)
	if len(plan) != 1 || len(plan[0].Evictions) != 1 {
		t.Fatalf("plan = %+v", plan)
	}
	ev := plan[0].Evictions[0]
	if ev.Mode != EvictMigrate {
		t.Fatalf("eviction mode = %s, want migrate", ev.Mode)
	}
	if len(ev.Moves) != 2 {
		t.Fatalf("moves = %v", ev.Moves)
	}
	for from, to := range ev.Moves {
		if !big[from] || big[to] {
			t.Fatalf("move %s->%s crosses the wrong way", from, to)
		}
	}
	if !reflect.DeepEqual(plan[0].Hosts, []string{"big2", "big1"}) {
		t.Fatalf("hi placed on %v", plan[0].Hosts)
	}
}

func TestPlanRequeueFreesWholePlacement(t *testing.T) {
	// hi (gang 1) evicts one host of rigid vic (gang 2, no migration
	// room): the whole vic placement empties, and the second freed host
	// serves the next pending job in the same cycle.
	hosts := fleet(2)
	occupy(hosts, "vic", "h1", "h2")
	view := ClusterView{
		Hosts:   hosts,
		Running: []JobView{{Name: "vic", Priority: 0, Gang: 2, Seq: 1, Hosts: []string{"h1", "h2"}}},
	}
	pending := []JobView{
		{Name: "hi", Priority: 2, Gang: 1, Seq: 2},
		{Name: "hi2", Priority: 2, Gang: 1, Seq: 3},
	}
	plan := PlanCycle(PriorityPreemptive{}, pending, view)
	if len(plan) != 2 {
		t.Fatalf("plan = %+v, want both high-priority jobs admitted", plan)
	}
	if plan[0].Job != "hi" || plan[1].Job != "hi2" {
		t.Fatalf("order = %s, %s", plan[0].Job, plan[1].Job)
	}
	if len(plan[1].Evictions) != 0 {
		t.Fatalf("hi2 should ride the freed host, got evictions %+v", plan[1].Evictions)
	}
	if plan[0].Hosts[0] == plan[1].Hosts[0] {
		t.Fatalf("double-booked host %s", plan[0].Hosts[0])
	}
}

func TestPlanPreemptionStopsAtFirstBlocked(t *testing.T) {
	// Nothing to evict (all running jobs are higher priority): the first
	// blocked job stops the cycle even though the next one would fit.
	hosts := fleet(3)
	occupy(hosts, "hi", "h1", "h2")
	view := ClusterView{
		Hosts:   hosts,
		Running: []JobView{{Name: "hi", Priority: 5, Gang: 2, Seq: 1, Hosts: []string{"h1", "h2"}}},
	}
	pending := []JobView{
		{Name: "mid", Priority: 3, Gang: 3, Seq: 2},
		{Name: "lo", Priority: 1, Gang: 1, Seq: 3},
	}
	if plan := PlanCycle(PriorityPreemptive{}, pending, view); len(plan) != 0 {
		t.Fatalf("cycle did not stop at blocked job: %+v", plan)
	}
}

func TestPlanDeterministic(t *testing.T) {
	hosts := fleet(6)
	occupy(hosts, "a", "h1", "h2")
	occupy(hosts, "b", "h3")
	view := ClusterView{
		Hosts: hosts,
		Running: []JobView{
			{Name: "a", Priority: 0, Gang: 2, Seq: 1, Hosts: []string{"h1", "h2"}},
			{Name: "b", Priority: 0, Gang: 1, Seq: 2, Hosts: []string{"h3"}},
		},
	}
	pending := []JobView{
		{Name: "c", Priority: 2, Gang: 4, Seq: 3},
		{Name: "d", Priority: 1, Gang: 2, Seq: 4},
	}
	first := PlanCycle(PriorityPreemptive{}, pending, view)
	for i := 0; i < 10; i++ {
		if got := PlanCycle(PriorityPreemptive{}, pending, view); !reflect.DeepEqual(got, first) {
			t.Fatalf("plan differs across runs:\n%+v\n%+v", got, first)
		}
	}
}
