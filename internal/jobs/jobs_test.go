package jobs

import (
	"errors"
	"testing"
	"time"

	"autoresched/internal/events"
	"autoresched/internal/vclock"
)

func newTestQueue(sink events.Sink) (*Queue, *vclock.Manual) {
	clock := vclock.NewManual(vclock.Epoch)
	return NewQueue(clock, sink), clock
}

func TestSubmitValidation(t *testing.T) {
	q, _ := newTestQueue(nil)
	if _, err := q.Submit(Spec{}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := q.Submit(Spec{Name: "a", Gang: 2, Hosts: []string{"h1"}}); err == nil {
		t.Fatal("pinned host count != gang accepted")
	}
	if _, err := q.Submit(Spec{Name: "a", Gang: 2, MinWorld: 3}); err == nil {
		t.Fatal("MinWorld > Gang accepted")
	}
	if _, err := q.Submit(Spec{Name: "a"}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := q.Submit(Spec{Name: "a"}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestSpecDefaults(t *testing.T) {
	q, _ := newTestQueue(nil)
	j, err := q.Submit(Spec{Name: "a"})
	if err != nil {
		t.Fatal(err)
	}
	spec := j.Spec()
	if spec.Gang != 1 || spec.MinWorld != 1 || spec.MaxWorld != 1 {
		t.Fatalf("defaults not applied: %+v", spec)
	}
}

func TestRankName(t *testing.T) {
	if got := RankName("job", 0, 1); got != "job" {
		t.Fatalf("singleton rank name = %q, want job", got)
	}
	if got := RankName("job", 2, 4); got != "job.2" {
		t.Fatalf("gang rank name = %q, want job.2", got)
	}
}

func TestLifecycleAndWaitTime(t *testing.T) {
	q, clock := newTestQueue(nil)
	j, err := q.Submit(Spec{Name: "a", Gang: 2})
	if err != nil {
		t.Fatal(err)
	}
	if j.State() != StatePending {
		t.Fatalf("state = %s, want pending", j.State())
	}
	clock.Advance(30 * time.Second)
	if err := q.Transition("a", StateReserving, ""); err != nil {
		t.Fatal(err)
	}
	clock.Advance(10 * time.Second)
	q.SetPlacement("a", []string{"h1", "h2"})
	if err := q.Transition("a", StateRunning, ""); err != nil {
		t.Fatal(err)
	}
	if got := j.WaitTime(); got != 40*time.Second {
		t.Fatalf("wait time = %s, want 40s", got)
	}
	if got := j.Placement(); len(got) != 2 || got[0] != "h1" {
		t.Fatalf("placement = %v", got)
	}
	// Preemption requeue: back to pending counts a requeue and clears the
	// placement; the wait time keeps the pre-first-start value.
	if err := q.Transition("a", StatePreempting, "evicted"); err != nil {
		t.Fatal(err)
	}
	if err := q.Transition("a", StatePending, "requeued"); err != nil {
		t.Fatal(err)
	}
	if j.Requeues() != 1 {
		t.Fatalf("requeues = %d, want 1", j.Requeues())
	}
	if got := j.Placement(); len(got) != 0 {
		t.Fatalf("placement after requeue = %v", got)
	}
	if got := j.WaitTime(); got != 40*time.Second {
		t.Fatalf("wait time after requeue = %s, want 40s", got)
	}
	q.Settle("a", StateCompleted, nil, "done")
	if err := j.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if j.State() != StateCompleted {
		t.Fatalf("state = %s", j.State())
	}
	// Terminal states reject further transitions; Settle is idempotent.
	if err := q.Transition("a", StateRunning, ""); err == nil {
		t.Fatal("transition out of terminal state accepted")
	}
	q.Settle("a", StateFailed, errors.New("x"), "")
	if j.State() != StateCompleted {
		t.Fatal("second settle overwrote terminal state")
	}
}

func TestCancel(t *testing.T) {
	q, _ := newTestQueue(nil)
	j, _ := q.Submit(Spec{Name: "a"})
	if _, err := q.Cancel("nope"); err == nil {
		t.Fatal("unknown job cancel accepted")
	}
	prior, err := q.Cancel("a")
	if err != nil || prior != StatePending {
		t.Fatalf("cancel = %s, %v", prior, err)
	}
	if !errors.Is(j.Err(), ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", j.Err())
	}
	// Cancelling a running job reports the prior state and leaves the
	// teardown to the dispatcher.
	r, _ := q.Submit(Spec{Name: "b"})
	_ = q.Transition("b", StateReserving, "")
	_ = q.Transition("b", StateRunning, "")
	prior, err = q.Cancel("b")
	if err != nil || prior != StateRunning {
		t.Fatalf("cancel running = %s, %v", prior, err)
	}
	if r.State() != StateRunning {
		t.Fatalf("running job state flipped to %s on cancel", r.State())
	}
}

func TestQueueSnapshotsAndEvents(t *testing.T) {
	var seen []Event
	sink := events.On(func(ev Event) { seen = append(seen, ev) })
	q, _ := newTestQueue(sink)
	_, _ = q.Submit(Spec{Name: "a", Priority: 2})
	_, _ = q.Submit(Spec{Name: "b"})
	_ = q.Transition("b", StateReserving, "")
	_ = q.Transition("b", StateRunning, "")
	q.SetPlacement("b", []string{"h1"})

	pend := q.Pending()
	if len(pend) != 1 || pend[0].Name != "a" || pend[0].Priority != 2 || pend[0].Seq != 1 {
		t.Fatalf("pending = %+v", pend)
	}
	run := q.Running()
	if len(run) != 1 || run[0].Name != "b" || len(run[0].Hosts) != 1 {
		t.Fatalf("running = %+v", run)
	}
	if got := len(q.List()); got != 2 {
		t.Fatalf("list = %d jobs", got)
	}

	// The sink saw every transition as a typed payload, in order.
	want := []struct {
		job string
		to  State
	}{
		{"a", StatePending},
		{"b", StatePending},
		{"b", StateReserving},
		{"b", StateRunning},
	}
	if len(seen) != len(want) {
		t.Fatalf("events = %d, want %d (%v)", len(seen), len(want), seen)
	}
	for i, w := range want {
		if seen[i].Job != w.job || seen[i].To != w.to {
			t.Fatalf("event %d = %+v, want %+v", i, seen[i], w)
		}
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"fifo", "priority-preemptive", "backfill"} {
		p, err := PolicyByName(name)
		if err != nil || p.Name() != name {
			t.Fatalf("PolicyByName(%s) = %v, %v", name, p, err)
		}
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
