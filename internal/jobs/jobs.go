// Package jobs is the multi-job control plane's data layer: job specs, the
// job state machine, the submission queue, and the pure admission planner
// the scheduler policies drive. The paper's runtime reschedules the
// processes of one MPI job; this package generalises it to a cluster where
// many jobs share the fleet — the production shape of the DMR line of work —
// while keeping every decision deterministic on the sim clock: admission
// order is the submission sequence, and the planner is a pure function of
// the queue and a cluster snapshot, so the live dispatcher (internal/core)
// and the -exp multijob discrete simulation share one brain.
package jobs

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"autoresched/internal/events"
	"autoresched/internal/hpcm"
	"autoresched/internal/schema"
	"autoresched/internal/vclock"
)

// Spec describes a job to submit.
type Spec struct {
	// Name identifies the job; unique within a Queue. Required.
	Name string
	// Priority orders admission under the priority policies; higher runs
	// first, and a pending gang may preempt strictly lower-priority running
	// jobs. Zero is the lowest priority.
	Priority int
	// Gang is the number of ranks, placed all-or-nothing on Gang distinct
	// hosts. Zero selects 1.
	Gang int
	// Elastic marks the job shrinkable: a preemption may take some of its
	// hosts without requeueing it, as long as at least MinWorld ranks
	// survive. Non-elastic gangs are rigid — lose one host, lose the gang.
	Elastic bool
	// MinWorld is the smallest world an elastic job tolerates; zero
	// selects 1. MaxWorld is reserved for future grow-back and defaults to
	// Gang.
	MinWorld int
	MaxWorld int
	// Hosts pins the placement (len must equal Gang): the job bypasses the
	// queue and is admitted synchronously on exactly these hosts — the
	// compatibility path core.System.Launch rides on. Empty lets the
	// scheduler place the gang.
	Hosts []string
	// Schema carries the job's resource requirements; the scheduler only
	// places ranks on hosts the schema fits. May be nil.
	Schema *schema.Schema
	// Rank builds the application body of one rank. Required for live
	// execution (the planner and the simulation never call it).
	Rank func(rank, gang int) hpcm.Main
}

// withDefaults normalises the zero knobs.
func (s Spec) withDefaults() Spec {
	if s.Gang <= 0 {
		s.Gang = 1
	}
	if s.MinWorld <= 0 {
		s.MinWorld = 1
	}
	if s.MaxWorld < s.Gang {
		s.MaxWorld = s.Gang
	}
	return s
}

// RankName names one rank's hpcm process: the bare job name for singleton
// jobs (so the single-job compatibility path keeps its process names), and
// name.N for real gangs.
func RankName(job string, rank, gang int) string {
	if gang <= 1 {
		return job
	}
	return fmt.Sprintf("%s.%d", job, rank)
}

// State is a job's lifecycle state.
type State string

const (
	// StatePending: queued, waiting for admission.
	StatePending State = "pending"
	// StateReserving: an admission is in flight — hosts reserved, victims
	// being evicted, ranks not yet launched.
	StateReserving State = "reserving"
	// StateRunning: every rank launched.
	StateRunning State = "running"
	// StatePreempting: a higher-priority admission is evicting this job;
	// it returns to StatePending (requeue) or StateRunning (shrink).
	StatePreempting State = "preempting"
	// StateCompleted: every rank finished without error.
	StateCompleted State = "completed"
	// StateFailed: a rank failed terminally.
	StateFailed State = "failed"
	// StateCancelled: cancelled before or during execution.
	StateCancelled State = "cancelled"
)

// terminal reports whether a state ends the lifecycle.
func (s State) terminal() bool {
	return s == StateCompleted || s == StateFailed || s == StateCancelled
}

// Event is one job lifecycle transition, published on the unified event
// sink (Source "jobs", Kind = the new state) as the typed payload.
type Event struct {
	Job      string
	From, To State
	// Note carries transition detail (eviction mode, error text).
	Note string
}

// Job is one submitted job's state machine. All mutation goes through the
// owning Queue's lock; reads take the same lock.
type Job struct {
	q    *Queue
	spec Spec
	seq  int64

	state     State
	requeues  int
	submitted time.Time
	started   time.Time // first transition to Running
	finished  time.Time
	waited    time.Duration // Pending time accumulated before first start
	placement []string
	err       error
	done      chan struct{}
}

// Spec returns the job's (defaulted) spec.
func (j *Job) Spec() Spec { return j.spec }

// Name returns the job name.
func (j *Job) Name() string { return j.spec.Name }

// Seq returns the submission sequence number (FIFO order).
func (j *Job) Seq() int64 { return j.seq }

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.q.mu.Lock()
	defer j.q.mu.Unlock()
	return j.state
}

// Requeues reports how many times the job went back to Pending after
// running (preemption requeues and failure recoveries).
func (j *Job) Requeues() int {
	j.q.mu.Lock()
	defer j.q.mu.Unlock()
	return j.requeues
}

// Placement returns the hosts the job currently occupies (empty unless
// Reserving/Running/Preempting).
func (j *Job) Placement() []string {
	j.q.mu.Lock()
	defer j.q.mu.Unlock()
	return append([]string(nil), j.placement...)
}

// Wait blocks until the job reaches a terminal state and returns its error
// (nil for Completed).
func (j *Job) Wait() error {
	<-j.done
	j.q.mu.Lock()
	defer j.q.mu.Unlock()
	return j.err
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Err returns the terminal error (nil before termination or on success).
func (j *Job) Err() error {
	j.q.mu.Lock()
	defer j.q.mu.Unlock()
	return j.err
}

// WaitTime is the total time the job spent Pending before it first ran
// (still accumulating while it waits).
func (j *Job) WaitTime() time.Duration {
	j.q.mu.Lock()
	defer j.q.mu.Unlock()
	if j.waited == 0 && j.started.IsZero() && !j.state.terminal() {
		return j.q.clock.Since(j.submitted)
	}
	return j.waited
}

// View snapshots the job for the planner.
func (j *Job) View() JobView {
	j.q.mu.Lock()
	defer j.q.mu.Unlock()
	return JobView{
		Name:     j.spec.Name,
		Priority: j.spec.Priority,
		Gang:     j.spec.Gang,
		Elastic:  j.spec.Elastic,
		MinWorld: j.spec.MinWorld,
		Seq:      j.seq,
		Hosts:    append([]string(nil), j.placement...),
	}
}

// ErrCancelled is the terminal error of a cancelled job.
var ErrCancelled = errors.New("jobs: job cancelled")

// Queue is the submission queue: it owns every job's state machine and
// hands the planner deterministic pending/running snapshots. Admission
// itself is the dispatcher's business (core.System live, the multijob
// simulation offline); the queue only keeps the book.
type Queue struct {
	clock vclock.Clock
	sink  events.Sink

	mu    sync.Mutex
	seq   int64
	jobs  map[string]*Job
	order []*Job // submission order
}

// NewQueue creates an empty queue on a clock. sink, when non-nil, receives
// every lifecycle transition (Source "jobs"), synchronously under the queue
// lock — sink implementations must not call back into the queue.
func NewQueue(clock vclock.Clock, sink events.Sink) *Queue {
	if clock == nil {
		clock = vclock.Real()
	}
	return &Queue{clock: clock, sink: sink, jobs: make(map[string]*Job)}
}

// Submit validates the spec and enqueues a Pending job. Admission order
// over equal priorities is submission order (the sequence number), which on
// the sim clock makes the whole schedule deterministic.
func (q *Queue) Submit(spec Spec) (*Job, error) {
	if spec.Name == "" {
		return nil, errors.New("jobs: Spec.Name is required")
	}
	spec = spec.withDefaults()
	if len(spec.Hosts) > 0 && len(spec.Hosts) != spec.Gang {
		return nil, fmt.Errorf("jobs: job %q pins %d hosts for a gang of %d", spec.Name, len(spec.Hosts), spec.Gang)
	}
	if spec.MinWorld > spec.Gang {
		return nil, fmt.Errorf("jobs: job %q MinWorld %d exceeds gang %d", spec.Name, spec.MinWorld, spec.Gang)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.jobs[spec.Name]; ok {
		return nil, fmt.Errorf("jobs: job %q already submitted", spec.Name)
	}
	q.seq++
	j := &Job{
		q:         q,
		spec:      spec,
		seq:       q.seq,
		state:     StatePending,
		submitted: q.clock.Now(),
		done:      make(chan struct{}),
	}
	q.jobs[spec.Name] = j
	q.order = append(q.order, j)
	q.emitLocked(j, "", StatePending, "submitted")
	return j, nil
}

// Cancel moves a job toward Cancelled. A Pending job terminates
// immediately; for a job in flight the transition is recorded and the
// dispatcher finishes the teardown (evicting its ranks), so Cancel reports
// the state the job was in. Cancelling a terminal job is a no-op.
func (q *Queue) Cancel(name string) (State, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[name]
	if !ok {
		return "", fmt.Errorf("jobs: unknown job %q", name)
	}
	prior := j.state
	if prior.terminal() {
		return prior, nil
	}
	if prior == StatePending {
		q.settleLocked(j, StateCancelled, ErrCancelled, "cancelled while pending")
	}
	return prior, nil
}

// Forget drops a terminal job from the queue, freeing its name for
// resubmission — the single-job compatibility path (core.System.Launch)
// reuses process names across launches. Forgetting a live job is an error.
func (q *Queue) Forget(name string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[name]
	if !ok {
		return fmt.Errorf("jobs: unknown job %q", name)
	}
	if !j.state.terminal() {
		return fmt.Errorf("jobs: job %q is %s, not terminal", name, j.state)
	}
	delete(q.jobs, name)
	for i, o := range q.order {
		if o == j {
			q.order = append(q.order[:i], q.order[i+1:]...)
			break
		}
	}
	return nil
}

// Get returns a submitted job by name.
func (q *Queue) Get(name string) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[name]
	return j, ok
}

// List returns every job in submission order.
func (q *Queue) List() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]*Job(nil), q.order...)
}

// Pending snapshots the queued jobs as planner views, in submission order.
func (q *Queue) Pending() []JobView {
	return q.views(StatePending)
}

// Running snapshots the running jobs as planner views, in submission order.
func (q *Queue) Running() []JobView {
	return q.views(StateRunning)
}

func (q *Queue) views(want State) []JobView {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []JobView
	for _, j := range q.order {
		if j.state != want {
			continue
		}
		out = append(out, JobView{
			Name:     j.spec.Name,
			Priority: j.spec.Priority,
			Gang:     j.spec.Gang,
			Elastic:  j.spec.Elastic,
			MinWorld: j.spec.MinWorld,
			Seq:      j.seq,
			Hosts:    append([]string(nil), j.placement...),
		})
	}
	return out
}

// Transition moves a job between non-terminal states, updating the
// wait-time and requeue bookkeeping. The dispatcher drives it; invalid
// transitions (from a terminal state) are rejected.
func (q *Queue) Transition(name string, to State, note string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[name]
	if !ok {
		return fmt.Errorf("jobs: unknown job %q", name)
	}
	if j.state.terminal() {
		return fmt.Errorf("jobs: job %q is %s", name, j.state)
	}
	if to.terminal() {
		return fmt.Errorf("jobs: use Settle for terminal state %s", to)
	}
	from := j.state
	switch to {
	case StateRunning:
		if from != StateRunning && j.started.IsZero() {
			j.started = q.clock.Now()
			j.waited = j.started.Sub(j.submitted)
		}
	case StatePending:
		if from == StateRunning || from == StatePreempting || from == StateReserving {
			j.requeues++
			j.placement = nil
		}
	default:
		// Reserving/Preempting need no entry bookkeeping, and terminal
		// states were rejected above (Settle owns those).
	}
	j.state = to
	q.emitLocked(j, from, to, note)
	return nil
}

// SetPlacement records the hosts a Reserving/Running job occupies.
func (q *Queue) SetPlacement(name string, hosts []string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j, ok := q.jobs[name]; ok {
		j.placement = append([]string(nil), hosts...)
	}
}

// Settle moves a job to a terminal state with its error.
func (q *Queue) Settle(name string, to State, err error, note string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[name]
	if !ok || j.state.terminal() {
		return
	}
	q.settleLocked(j, to, err, note)
}

func (q *Queue) settleLocked(j *Job, to State, err error, note string) {
	from := j.state
	j.state = to
	j.err = err
	j.finished = q.clock.Now()
	if j.waited == 0 && j.started.IsZero() {
		j.waited = j.finished.Sub(j.submitted)
	}
	j.placement = nil
	close(j.done)
	q.emitLocked(j, from, to, note)
}

// emitLocked publishes one lifecycle transition on the sink.
func (q *Queue) emitLocked(j *Job, from, to State, note string) {
	if q.sink == nil {
		return
	}
	ev := Event{Job: j.spec.Name, From: from, To: to, Note: note}
	q.sink.Publish(events.Event{
		Time:    q.clock.Now(),
		Source:  events.SourceJobs,
		Kind:    string(to),
		Proc:    j.spec.Name,
		Note:    note,
		Err:     j.err,
		Payload: ev,
	})
}
