package jobs

import (
	"fmt"
	"testing"
)

// benchView builds a half-occupied fleet sized to the queue depth so
// admission always has both free hosts and preemption work to do.
func benchView(depth int) ([]JobView, ClusterView) {
	hosts := fleet(depth)
	var running []JobView
	for i := 0; i < depth/4; i++ {
		h := []string{hosts[2*i].Name, hosts[2*i+1].Name}
		occupy(hosts, fmt.Sprintf("run%d", i), h...)
		running = append(running, JobView{
			Name: fmt.Sprintf("run%d", i), Priority: i % 2, Gang: 2,
			Elastic: i%3 == 0, MinWorld: 1, Seq: int64(i + 1), Hosts: h,
		})
	}
	pending := make([]JobView, depth)
	for i := range pending {
		pending[i] = JobView{
			Name: fmt.Sprintf("job%d", i), Priority: i % 3,
			Gang: 1 + i%4, Seq: int64(depth + i),
		}
	}
	return pending, ClusterView{Hosts: hosts, Running: running}
}

// BenchmarkAdmission measures one full PlanCycle at queue depths 64 and 256
// under each stock policy — the planner cost the live dispatcher pays per
// scheduling tick.
func BenchmarkAdmission(b *testing.B) {
	for _, depth := range []int{64, 256} {
		pending, view := benchView(depth)
		for _, p := range Policies() {
			b.Run(fmt.Sprintf("%s/depth%d", p.Name(), depth), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					PlanCycle(p, pending, view)
				}
			})
		}
	}
}
