package jobs

// The admission planner. PlanCycle is a pure function of a policy, the
// pending queue and a cluster snapshot: no clocks, no goroutines, no
// randomness. The live dispatcher (core.System) and the -exp multijob
// discrete simulation both call it, so a policy decision observed in the
// simulation is the same decision the live control plane makes — and the
// whole schedule is deterministic given the submission sequence.

// JobView is the planner's snapshot of one job.
type JobView struct {
	Name     string
	Priority int
	Gang     int
	Elastic  bool
	MinWorld int
	// Seq is the submission sequence number (FIFO order).
	Seq int64
	// Hosts is the current placement in rank order (running jobs only).
	Hosts []string
}

// HostView is the planner's snapshot of one host.
type HostView struct {
	Name string
	// Job names the running job occupying the host; empty means free.
	Job string
}

// ClusterView is the planner's input snapshot. Hosts must be in a
// deterministic order (the live dispatcher uses registration order, the
// simulation its fixed fleet order) — the planner's choices follow it.
type ClusterView struct {
	Hosts []HostView
	// Running snapshots the running jobs (placements must agree with
	// Hosts[].Job).
	Running []JobView
	// Eligible reports whether a host can run a job's ranks (the schema
	// fit). Nil means every host fits every job.
	Eligible func(job, host string) bool
}

// EvictMode is how a preemption vacates a victim's hosts.
type EvictMode string

const (
	// EvictRequeue checkpoints and stops the whole victim; it goes back to
	// Pending and reruns later (restored from its checkpoint when one
	// exists). The fallback when nothing gentler applies.
	EvictRequeue EvictMode = "requeue"
	// EvictShrink takes only the contested ranks of an elastic victim; the
	// survivors keep running at a world no smaller than MinWorld.
	EvictShrink EvictMode = "shrink"
	// EvictMigrate live-migrates the contested ranks onto free hosts that
	// fit the victim (but not the admitted job — the heterogeneous case);
	// the victim keeps running at full strength.
	EvictMigrate EvictMode = "migrate"
)

// Eviction is one victim's part of an admission.
type Eviction struct {
	// Job is the victim.
	Job  string
	Mode EvictMode
	// Hosts are the victim hosts handed to the admitted job. For
	// EvictRequeue the victim's entire placement empties; Hosts still
	// lists only the ones the admitted job takes.
	Hosts []string
	// Moves maps each contested host to its migration destination
	// (EvictMigrate only).
	Moves map[string]string
}

// Admission is one planned job start.
type Admission struct {
	Job string
	// Hosts is the target placement, len == Gang: free hosts first, then
	// hosts vacated by the evictions.
	Hosts []string
	// Evictions empty the contested hosts before the gang launches.
	Evictions []Eviction
}

// PlanCycle runs one admission cycle: considers pending jobs in policy
// order and plans an admission for each that fits — directly on free hosts,
// or (preemptive policies) by evicting strictly lower-priority running
// jobs. A job that does not fit blocks the cycle unless the policy
// backfills. The returned admissions are consistent as a set: no host is
// assigned twice, and every eviction's hosts feed exactly one admission.
func PlanCycle(p Policy, pending []JobView, view ClusterView) []Admission {
	st := newPlanState(view)
	var plan []Admission
	for _, job := range p.Order(pending) {
		adm, ok := st.admit(job, p.Preemptive())
		if ok {
			plan = append(plan, adm)
			continue
		}
		if !p.Backfill() {
			break
		}
	}
	return plan
}

// planState is the cycle's working occupancy.
type planState struct {
	hostOrder []string
	occ       map[string]string // host -> occupying job ("" free)
	running   map[string]*victimState
	runOrder  []string
	eligible  func(job, host string) bool
}

// victimState is one running job's mutable placement during the cycle.
type victimState struct {
	view  JobView
	hosts []string // current placement (mutates under shrink/migrate)
	gone  bool     // requeued this cycle
}

func newPlanState(view ClusterView) *planState {
	st := &planState{
		occ:      make(map[string]string, len(view.Hosts)),
		running:  make(map[string]*victimState, len(view.Running)),
		eligible: view.Eligible,
	}
	if st.eligible == nil {
		st.eligible = func(string, string) bool { return true }
	}
	for _, h := range view.Hosts {
		st.hostOrder = append(st.hostOrder, h.Name)
		st.occ[h.Name] = h.Job
	}
	for _, r := range view.Running {
		st.running[r.Name] = &victimState{view: r, hosts: append([]string(nil), r.Hosts...)}
		st.runOrder = append(st.runOrder, r.Name)
	}
	return st
}

// freeFor lists the free hosts eligible for a job, in fleet order.
func (st *planState) freeFor(job string) []string {
	var out []string
	for _, h := range st.hostOrder {
		if st.occ[h] == "" && st.eligible(job, h) {
			out = append(out, h)
		}
	}
	return out
}

// admit plans one job's admission against the working occupancy, mutating
// it only on success.
func (st *planState) admit(job JobView, preemptive bool) (Admission, bool) {
	free := st.freeFor(job.Name)
	if len(free) >= job.Gang {
		hosts := free[:job.Gang]
		for _, h := range hosts {
			st.occ[h] = job.Name
		}
		return Admission{Job: job.Name, Hosts: append([]string(nil), hosts...)}, true
	}
	if !preemptive {
		return Admission{}, false
	}
	return st.preempt(job, free)
}

// preempt covers a gang's shortfall from strictly lower-priority running
// jobs. All selection is tentative — the working occupancy mutates only
// once the full gang is covered.
func (st *planState) preempt(job JobView, free []string) (Admission, bool) {
	needed := job.Gang - len(free)
	// Free hosts consumed so far this admission (the direct ones plus any
	// migration destinations), so two victims don't reuse a destination.
	consumed := make(map[string]bool, job.Gang)
	for _, h := range free {
		consumed[h] = true
	}

	type plannedEvict struct {
		v       *victimState
		mode    EvictMode
		vacated []string
		moves   map[string]string
	}
	var evicts []plannedEvict

	for _, name := range st.victimOrder(job.Priority) {
		if needed == 0 {
			break
		}
		v := st.running[name]
		// Victim hosts the admitting job could take, scanned from the tail
		// of the placement: shrink retires the highest ranks first, the
		// natural order for an elastic world.
		var contestable []string
		for i := len(v.hosts) - 1; i >= 0; i-- {
			if st.eligible(job.Name, v.hosts[i]) {
				contestable = append(contestable, v.hosts[i])
			}
		}
		if len(contestable) == 0 {
			continue
		}
		take := min(needed, len(contestable))
		vacated := contestable[:take]

		switch {
		case v.view.Elastic && len(v.hosts)-take >= v.view.MinWorld:
			evicts = append(evicts, plannedEvict{v: v, mode: EvictShrink, vacated: vacated})
		default:
			// Try to move the contested ranks onto leftover free hosts
			// that fit the victim. Any free host fitting the admitting job
			// is already consumed, so destinations exist only when the
			// fleet is heterogeneous — the victim fits hosts the admitted
			// job cannot use.
			var dests []string
			for _, h := range st.hostOrder {
				if len(dests) == take {
					break
				}
				if st.occ[h] == "" && !consumed[h] && st.eligible(v.view.Name, h) {
					dests = append(dests, h)
				}
			}
			if len(dests) == take {
				moves := make(map[string]string, take)
				for i, h := range vacated {
					moves[h] = dests[i]
					consumed[dests[i]] = true
				}
				evicts = append(evicts, plannedEvict{v: v, mode: EvictMigrate, vacated: vacated, moves: moves})
			} else {
				// Requeue empties the whole placement: every eligible host
				// can feed the gang, and the rest go back to the pool.
				vacated = contestable[:min(needed, len(contestable))]
				take = len(vacated)
				evicts = append(evicts, plannedEvict{v: v, mode: EvictRequeue, vacated: vacated})
			}
		}
		needed -= take
	}
	if needed > 0 {
		return Admission{}, false
	}

	// Covered: apply the plan to the working occupancy.
	adm := Admission{Job: job.Name, Hosts: append([]string(nil), free...)}
	for _, pe := range evicts {
		ev := Eviction{Job: pe.v.view.Name, Mode: pe.mode, Hosts: append([]string(nil), pe.vacated...), Moves: pe.moves}
		adm.Evictions = append(adm.Evictions, ev)
		adm.Hosts = append(adm.Hosts, pe.vacated...)
		switch pe.mode {
		case EvictShrink:
			pe.v.hosts = without(pe.v.hosts, pe.vacated)
		case EvictMigrate:
			moved := append([]string(nil), pe.v.hosts...)
			for i, h := range moved {
				if dest, ok := pe.moves[h]; ok {
					moved[i] = dest
					st.occ[dest] = pe.v.view.Name
				}
			}
			pe.v.hosts = moved
		case EvictRequeue:
			for _, h := range pe.v.hosts {
				st.occ[h] = ""
			}
			pe.v.hosts = nil
			pe.v.gone = true
		}
	}
	for _, h := range adm.Hosts {
		st.occ[h] = job.Name
	}
	return adm, true
}

// victimOrder lists the running jobs a gang of the given priority may
// evict: strictly lower priority, lowest priority first, newest submission
// first within a priority (least sunk cost), skipping jobs already
// requeued this cycle.
func (st *planState) victimOrder(priority int) []string {
	var out []string
	for _, name := range st.runOrder {
		v := st.running[name]
		if v.gone || len(v.hosts) == 0 || v.view.Priority >= priority {
			continue
		}
		out = append(out, name)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := st.running[out[j-1]], st.running[out[j]]
			if a.view.Priority < b.view.Priority ||
				(a.view.Priority == b.view.Priority && a.view.Seq > b.view.Seq) {
				break
			}
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// without returns hosts minus the removed set, preserving order.
func without(hosts, removed []string) []string {
	drop := make(map[string]bool, len(removed))
	for _, h := range removed {
		drop[h] = true
	}
	var out []string
	for _, h := range hosts {
		if !drop[h] {
			out = append(out, h)
		}
	}
	return out
}
