package jobs

import "testing"

// Planner edge cases surfaced by the scenario fleet generator: degenerate
// fleets and priority ties that the hand-written multi-job scenarios never
// hit but a random draw will.

// TestPlanZeroHostCluster: an empty fleet plans nothing under any policy —
// no admissions, no panics, regardless of queue shape.
func TestPlanZeroHostCluster(t *testing.T) {
	pending := []JobView{
		{Name: "a", Gang: 1, Seq: 1},
		{Name: "b", Gang: 2, Priority: 5, Seq: 2},
	}
	for _, p := range Policies() {
		if plan := PlanCycle(p, pending, ClusterView{}); len(plan) != 0 {
			t.Fatalf("%s planned %v on a zero-host cluster", p.Name(), plan)
		}
	}
}

// TestPlanEqualPrioritiesNeverPreempt: preemption takes strictly
// lower-priority victims only, so with every job at the same priority a
// full cluster plans zero preemptions — the pending gang waits instead of
// churning its peers.
func TestPlanEqualPrioritiesNeverPreempt(t *testing.T) {
	hosts := fleet(2)
	occupy(hosts, "r1", "h1")
	occupy(hosts, "r2", "h2")
	running := []JobView{
		{Name: "r1", Gang: 1, Priority: 3, Seq: 1, Hosts: []string{"h1"}},
		{Name: "r2", Gang: 1, Priority: 3, Seq: 2, Hosts: []string{"h2"}},
	}
	pending := []JobView{{Name: "p", Gang: 1, Priority: 3, Seq: 3}}
	plan := PlanCycle(PriorityPreemptive{}, pending, ClusterView{Hosts: hosts, Running: running})
	if len(plan) != 0 {
		t.Fatalf("equal-priority queue planned %+v, want no admissions (and no preemptions)", plan)
	}
}

// TestPlanBackfillOversizeGangParks: a gang wider than the entire fleet can
// never admit; under backfill it must park without starving the feasible
// jobs behind it — and it must still be parked (not silently admitted
// short) on later cycles.
func TestPlanBackfillOversizeGangParks(t *testing.T) {
	pending := []JobView{
		{Name: "oversize", Gang: 5, Seq: 1},
		{Name: "fits", Gang: 2, Seq: 2},
		{Name: "also-fits", Gang: 1, Seq: 3},
	}
	view := ClusterView{Hosts: fleet(3)}
	plan := PlanCycle(Backfill{}, pending, view)
	if len(plan) != 2 || plan[0].Job != "fits" || plan[1].Job != "also-fits" {
		t.Fatalf("backfill plan = %+v, want fits then also-fits admitted past the parked gang", plan)
	}
	for _, adm := range plan {
		if adm.Job == "oversize" {
			t.Fatalf("oversize gang admitted: %+v", adm)
		}
	}
	// Next cycle, fleet fully free again: the oversize gang stays parked.
	again := PlanCycle(Backfill{}, pending[:1], ClusterView{Hosts: fleet(3)})
	if len(again) != 0 {
		t.Fatalf("oversize gang admitted on a later cycle: %+v", again)
	}
}

// TestPlanFIFOOversizeGangBlocksQueue: the same oversize gang under plain
// FIFO blocks the head of line — documented contrast with backfill, and the
// reason the scenario space clamps gangs to the fleet.
func TestPlanFIFOOversizeGangBlocksQueue(t *testing.T) {
	pending := []JobView{
		{Name: "oversize", Gang: 5, Seq: 1},
		{Name: "fits", Gang: 1, Seq: 2},
	}
	if plan := PlanCycle(FIFO{}, pending, ClusterView{Hosts: fleet(3)}); len(plan) != 0 {
		t.Fatalf("FIFO admitted %v past an infeasible head", plan)
	}
}
