package vclock

import (
	"container/heap"
	"sync"
	"time"
)

// Manual is a Clock that only advances when the test calls Advance (or
// AdvanceToNext). It makes timer interleavings fully deterministic.
type Manual struct {
	mu      sync.Mutex
	cond    *sync.Cond // broadcast whenever the waiter set changes
	now     time.Time
	waiters waiterHeap
	seq     int
}

// NewManual returns a Manual clock whose current time is start.
func NewManual(start time.Time) *Manual {
	m := &Manual{now: start}
	m.cond = sync.NewCond(&m.mu)
	return m
}

type waiter struct {
	deadline time.Time
	period   time.Duration // 0 for a one-shot timer
	ch       chan time.Time
	seq      int // tie-break so equal deadlines fire in creation order
	index    int // heap bookkeeping; -1 once removed
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if !h[i].deadline.Equal(h[j].deadline) {
		return h[i].deadline.Before(h[j].deadline)
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *waiterHeap) Push(x any) {
	w := x.(*waiter)
	w.index = len(*h)
	*h = append(*h, w)
}
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.index = -1
	*h = old[:n-1]
	return w
}

// Now returns the current manual time.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Since returns the manual time elapsed since t.
func (m *Manual) Since(t time.Time) time.Duration { return m.Now().Sub(t) }

func (m *Manual) addWaiter(d time.Duration, period time.Duration) *waiter {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	w := &waiter{
		deadline: m.now.Add(d),
		period:   period,
		ch:       make(chan time.Time, 1),
		seq:      m.seq,
	}
	heap.Push(&m.waiters, w)
	m.cond.Broadcast()
	return w
}

func (m *Manual) removeWaiter(w *waiter) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if w.index < 0 {
		return false
	}
	heap.Remove(&m.waiters, w.index)
	m.cond.Broadcast()
	return true
}

// Sleep blocks until the clock has been advanced d past the current time.
func (m *Manual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-m.addWaiter(d, 0).ch
}

// After returns a channel that delivers the manual time once the clock has
// been advanced d past the current time.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	return m.addWaiter(d, 0).ch
}

// NewTimer returns a single-shot timer driven by Advance.
func (m *Manual) NewTimer(d time.Duration) *Timer {
	w := m.addWaiter(d, 0)
	return &Timer{
		C:    w.ch,
		stop: func() bool { return m.removeWaiter(w) },
		reset: func(d time.Duration) bool {
			active := m.removeWaiter(w)
			m.mu.Lock()
			w.deadline = m.now.Add(d)
			heap.Push(&m.waiters, w)
			m.cond.Broadcast()
			m.mu.Unlock()
			return active
		},
	}
}

// NewTicker returns a repeating ticker driven by Advance.
func (m *Manual) NewTicker(d time.Duration) *Ticker {
	if d <= 0 {
		panic("vclock: non-positive ticker period")
	}
	w := m.addWaiter(d, d)
	return &Ticker{C: w.ch, stop: func() { m.removeWaiter(w) }}
}

// Advance moves the clock forward by d, firing every timer whose deadline is
// reached, in deadline order. Deliveries are non-blocking (buffer of one),
// matching the time package's behaviour for slow receivers.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	target := m.now.Add(d)
	for len(m.waiters) > 0 && !m.waiters[0].deadline.After(target) {
		w := m.waiters[0]
		m.now = w.deadline
		select {
		case w.ch <- m.now:
		default:
		}
		if w.period > 0 {
			w.deadline = w.deadline.Add(w.period)
			heap.Fix(&m.waiters, 0)
		} else {
			heap.Pop(&m.waiters)
		}
	}
	m.now = target
	m.cond.Broadcast()
	m.mu.Unlock()
}

// AdvanceToNext advances exactly to the earliest pending deadline and fires
// it. It reports how far the clock moved and whether any timer was pending.
func (m *Manual) AdvanceToNext() (time.Duration, bool) {
	m.mu.Lock()
	if len(m.waiters) == 0 {
		m.mu.Unlock()
		return 0, false
	}
	d := m.waiters[0].deadline.Sub(m.now)
	m.mu.Unlock()
	m.Advance(d)
	return d, true
}

// Waiters reports the number of pending timers/sleepers.
func (m *Manual) Waiters() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.waiters)
}

// WaitUntilWaiters blocks until at least n timers/sleepers are pending.
// Tests use it to rendezvous with goroutines that are about to sleep.
func (m *Manual) WaitUntilWaiters(n int) {
	m.mu.Lock()
	for len(m.waiters) < n {
		m.cond.Wait()
	}
	m.mu.Unlock()
}

var _ Clock = (*Manual)(nil)
