package vclock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestManualNowAdvance(t *testing.T) {
	m := NewManual(Epoch)
	if got := m.Now(); !got.Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", got, Epoch)
	}
	m.Advance(42 * time.Second)
	if got := m.Since(Epoch); got != 42*time.Second {
		t.Fatalf("Since(Epoch) = %v, want 42s", got)
	}
}

func TestManualSleepWakesAtDeadline(t *testing.T) {
	m := NewManual(Epoch)
	done := make(chan time.Time)
	go func() {
		m.Sleep(10 * time.Second)
		done <- m.Now()
	}()
	m.WaitUntilWaiters(1)
	m.Advance(9 * time.Second)
	select {
	case <-done:
		t.Fatal("Sleep returned before deadline")
	case <-time.After(10 * time.Millisecond):
	}
	m.Advance(time.Second)
	woke := <-done
	if want := Epoch.Add(10 * time.Second); woke.Before(want) {
		t.Fatalf("woke at %v, want >= %v", woke, want)
	}
}

func TestManualSleepZeroReturnsImmediately(t *testing.T) {
	m := NewManual(Epoch)
	m.Sleep(0)
	m.Sleep(-time.Second)
	if m.Waiters() != 0 {
		t.Fatalf("Waiters() = %d, want 0", m.Waiters())
	}
}

func TestManualTimerFireAndStop(t *testing.T) {
	m := NewManual(Epoch)
	tm := m.NewTimer(5 * time.Second)
	if !tm.Stop() {
		t.Fatal("Stop() of pending timer = false, want true")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	m.Advance(10 * time.Second)
	select {
	case <-tm.C:
		t.Fatal("stopped timer fired")
	default:
	}
}

func TestManualTimerReset(t *testing.T) {
	m := NewManual(Epoch)
	tm := m.NewTimer(5 * time.Second)
	if !tm.Reset(20 * time.Second) {
		t.Fatal("Reset of active timer = false, want true")
	}
	m.Advance(10 * time.Second)
	select {
	case <-tm.C:
		t.Fatal("timer fired at original deadline after Reset")
	default:
	}
	m.Advance(10 * time.Second)
	select {
	case at := <-tm.C:
		if want := Epoch.Add(20 * time.Second); !at.Equal(want) {
			t.Fatalf("fired at %v, want %v", at, want)
		}
	default:
		t.Fatal("timer did not fire at reset deadline")
	}
}

func TestManualTickerDeliversEachPeriod(t *testing.T) {
	m := NewManual(Epoch)
	tk := m.NewTicker(3 * time.Second)
	defer tk.Stop()
	for i := 1; i <= 4; i++ {
		m.Advance(3 * time.Second)
		select {
		case at := <-tk.C:
			if want := Epoch.Add(time.Duration(i) * 3 * time.Second); !at.Equal(want) {
				t.Fatalf("tick %d at %v, want %v", i, at, want)
			}
		default:
			t.Fatalf("tick %d missing", i)
		}
	}
	tk.Stop()
	m.Advance(time.Minute)
	select {
	case <-tk.C:
		t.Fatal("tick after Stop")
	default:
	}
}

func TestManualTickerCoalescesWhenSlow(t *testing.T) {
	m := NewManual(Epoch)
	tk := m.NewTicker(time.Second)
	defer tk.Stop()
	// Advance across many periods without draining: only one tick may be
	// buffered, as with time.Ticker.
	m.Advance(10 * time.Second)
	n := 0
	for {
		select {
		case <-tk.C:
			n++
			continue
		default:
		}
		break
	}
	if n != 1 {
		t.Fatalf("buffered ticks = %d, want 1", n)
	}
}

func TestManualAdvanceFiresInDeadlineOrder(t *testing.T) {
	m := NewManual(Epoch)
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, d := range []time.Duration{30 * time.Second, 10 * time.Second, 20 * time.Second} {
		wg.Add(1)
		go func(i int, d time.Duration) {
			defer wg.Done()
			m.Sleep(d)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}(i, d)
	}
	m.WaitUntilWaiters(3)
	// Advance step-by-step so each sleeper records in a deterministic order.
	for j := 0; j < 3; j++ {
		if _, ok := m.AdvanceToNext(); !ok {
			t.Fatalf("AdvanceToNext %d: no pending waiter", j)
		}
		deadline := time.Now().Add(time.Second)
		for {
			mu.Lock()
			n := len(order)
			mu.Unlock()
			if n > j {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("sleeper %d did not wake", j)
			}
			time.Sleep(time.Millisecond)
		}
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
}

func TestManualAdvanceToNextEmpty(t *testing.T) {
	m := NewManual(Epoch)
	if d, ok := m.AdvanceToNext(); ok || d != 0 {
		t.Fatalf("AdvanceToNext() = %v, %v; want 0, false", d, ok)
	}
}

func TestManualAfter(t *testing.T) {
	m := NewManual(Epoch)
	ch := m.After(time.Minute)
	m.Advance(time.Minute)
	select {
	case at := <-ch:
		if want := Epoch.Add(time.Minute); !at.Equal(want) {
			t.Fatalf("After delivered %v, want %v", at, want)
		}
	default:
		t.Fatal("After channel empty at deadline")
	}
}

// Property: advancing in any partition of a total duration fires the same
// set of timers as a single advance.
func TestManualAdvancePartitionProperty(t *testing.T) {
	f := func(steps []uint8, deadlines []uint8) bool {
		if len(steps) == 0 || len(deadlines) == 0 {
			return true
		}
		if len(steps) > 16 {
			steps = steps[:16]
		}
		if len(deadlines) > 16 {
			deadlines = deadlines[:16]
		}
		var total time.Duration
		single := NewManual(Epoch)
		multi := NewManual(Epoch)
		var chS, chM []<-chan time.Time
		for _, d := range deadlines {
			dd := time.Duration(d) * time.Second
			chS = append(chS, single.After(dd))
			chM = append(chM, multi.After(dd))
		}
		for _, s := range steps {
			step := time.Duration(s) * time.Second
			total += step
			multi.Advance(step)
		}
		single.Advance(total)
		for i := range chS {
			firedS, firedM := false, false
			select {
			case <-chS[i]:
				firedS = true
			default:
			}
			select {
			case <-chM[i]:
				firedM = true
			default:
			}
			if firedS != firedM {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
