package vclock

import (
	"fmt"
	"time"
)

// Scaled returns a Clock whose virtual time starts at start and advances
// scale times faster than wall time. A Sleep of one virtual second on a
// 1000x clock blocks for one wall millisecond.
//
// Scaled clocks are how the paper's long-running experiments (Section 5) are
// reproduced in bench/test time without changing any configured interval.
func Scaled(start time.Time, scale float64) Clock {
	if scale <= 0 {
		panic(fmt.Sprintf("vclock: non-positive scale %v", scale))
	}
	return &scaledClock{start: start, wallStart: time.Now(), scale: scale}
}

type scaledClock struct {
	start     time.Time
	wallStart time.Time
	scale     float64
}

func (c *scaledClock) Now() time.Time {
	wall := time.Since(c.wallStart)
	return c.start.Add(time.Duration(float64(wall) * c.scale))
}

func (c *scaledClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

// wall converts a virtual duration to the wall duration it occupies.
func (c *scaledClock) wall(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	w := time.Duration(float64(d) / c.scale)
	if w <= 0 {
		w = 1 // keep ordering: a positive virtual wait must not be free
	}
	return w
}

func (c *scaledClock) Sleep(d time.Duration) { time.Sleep(c.wall(d)) }

func (c *scaledClock) After(d time.Duration) <-chan time.Time {
	return c.NewTimer(d).C
}

func (c *scaledClock) NewTimer(d time.Duration) *Timer {
	ch := make(chan time.Time, 1)
	t := time.AfterFunc(c.wall(d), func() {
		select {
		case ch <- c.Now():
		default:
		}
	})
	return &Timer{
		C:     ch,
		stop:  t.Stop,
		reset: func(d time.Duration) bool { return t.Reset(c.wall(d)) },
	}
}

func (c *scaledClock) NewTicker(d time.Duration) *Ticker {
	if d <= 0 {
		panic("vclock: non-positive ticker period")
	}
	ch := make(chan time.Time, 1)
	wt := time.NewTicker(c.wall(d))
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-wt.C:
				select {
				case ch <- c.Now():
				default:
				}
			case <-done:
				return
			}
		}
	}()
	var once bool
	return &Ticker{C: ch, stop: func() {
		if !once {
			once = true
			wt.Stop()
			close(done)
		}
	}}
}
