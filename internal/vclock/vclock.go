// Package vclock provides the time abstraction used by every component of
// the rescheduling runtime.
//
// The paper's experiments are wall-clock experiments on a 64-node cluster
// (runs of ~1000 seconds). To reproduce them quickly and deterministically,
// all components receive a Clock instead of calling the time package
// directly. Three implementations are provided:
//
//   - Real: thin wrapper over the time package, for running the system
//     against real hosts (cmd/reschedd, the examples).
//   - Scaled: virtual time that advances Scale times faster than wall time,
//     so a 1000-second experiment finishes in one second while every rate,
//     interval and timeout keeps its configured virtual value.
//   - Manual: a manually stepped clock for unit tests; time only moves when
//     the test calls Advance, making timer interleavings fully deterministic.
package vclock

import "time"

// Clock is the time source shared by all runtime components. Durations and
// instants handed to a Clock are in virtual time; how virtual time relates
// to wall time is the implementation's concern.
type Clock interface {
	// Now returns the current virtual time.
	Now() time.Time
	// Sleep blocks the calling goroutine for d of virtual time.
	Sleep(d time.Duration)
	// After returns a channel that delivers the virtual time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a timer that fires once after d.
	NewTimer(d time.Duration) *Timer
	// NewTicker returns a ticker that fires every d until stopped.
	NewTicker(d time.Duration) *Ticker
	// Since returns the virtual time elapsed since t.
	Since(t time.Time) time.Duration
}

// Timer is a clock-backed single-shot timer. C carries the virtual fire
// time.
type Timer struct {
	C <-chan time.Time

	stop  func() bool
	reset func(d time.Duration) bool
}

// Stop prevents the timer from firing. It reports whether the stop
// cancelled a pending fire.
func (t *Timer) Stop() bool { return t.stop() }

// Reset re-arms the timer to fire after d. It reports whether the timer had
// been active.
func (t *Timer) Reset(d time.Duration) bool { return t.reset(d) }

// Ticker is a clock-backed repeating timer. C carries the virtual tick
// times.
type Ticker struct {
	C <-chan time.Time

	stop func()
}

// Stop turns off the ticker. No more ticks will be delivered.
func (t *Ticker) Stop() { t.stop() }

// Epoch is the conventional start instant of simulated experiments. Its
// value is arbitrary; a fixed epoch keeps logs and recorded series
// reproducible run to run.
var Epoch = time.Date(2004, time.April, 1, 0, 0, 0, 0, time.UTC)
