package vclock

import "time"

// Real returns a Clock backed directly by the time package. Virtual time is
// wall time.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (realClock) Since(t time.Time) time.Duration        { return time.Since(t) }

func (realClock) NewTimer(d time.Duration) *Timer {
	t := time.NewTimer(d)
	return &Timer{C: t.C, stop: t.Stop, reset: t.Reset}
}

func (realClock) NewTicker(d time.Duration) *Ticker {
	t := time.NewTicker(d)
	return &Ticker{C: t.C, stop: t.Stop}
}
