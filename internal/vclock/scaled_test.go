package vclock

import (
	"testing"
	"time"
)

func TestScaledNowAdvancesFasterThanWall(t *testing.T) {
	c := Scaled(Epoch, 1000)
	start := c.Now()
	time.Sleep(20 * time.Millisecond)
	elapsed := c.Since(start)
	// 20ms wall at 1000x is 20 virtual seconds; allow generous jitter.
	if elapsed < 10*time.Second {
		t.Fatalf("virtual elapsed = %v, want >= 10s", elapsed)
	}
}

func TestScaledSleepCompressesWallTime(t *testing.T) {
	c := Scaled(Epoch, 1000)
	wallStart := time.Now()
	c.Sleep(10 * time.Second) // should take ~10ms wall
	if wall := time.Since(wallStart); wall > 2*time.Second {
		t.Fatalf("Sleep(10s virtual) took %v wall, want ~10ms", wall)
	}
}

func TestScaledTimerFires(t *testing.T) {
	c := Scaled(Epoch, 1000)
	tm := c.NewTimer(5 * time.Second)
	select {
	case at := <-tm.C:
		if at.Before(Epoch.Add(time.Second)) {
			t.Fatalf("timer fired too early: %v", at)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timer did not fire within wall budget")
	}
}

func TestScaledTimerStop(t *testing.T) {
	c := Scaled(Epoch, 10)
	tm := c.NewTimer(time.Hour)
	if !tm.Stop() {
		t.Fatal("Stop() = false for pending timer")
	}
	select {
	case <-tm.C:
		t.Fatal("stopped timer fired")
	case <-time.After(20 * time.Millisecond):
	}
}

func TestScaledTickerTicks(t *testing.T) {
	c := Scaled(Epoch, 1000)
	tk := c.NewTicker(time.Second) // ~1ms wall
	defer tk.Stop()
	for i := 0; i < 3; i++ {
		select {
		case <-tk.C:
		case <-time.After(2 * time.Second):
			t.Fatalf("tick %d never arrived", i)
		}
	}
}

func TestScaledAfter(t *testing.T) {
	c := Scaled(Epoch, 1000)
	select {
	case <-c.After(time.Second):
	case <-time.After(2 * time.Second):
		t.Fatal("After(1s virtual) did not fire")
	}
}

func TestScaledPanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Scaled(0) did not panic")
		}
	}()
	Scaled(Epoch, 0)
}

func TestRealClockBasics(t *testing.T) {
	c := Real()
	t0 := c.Now()
	c.Sleep(time.Millisecond)
	if c.Since(t0) <= 0 {
		t.Fatal("real clock did not advance")
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("real After did not fire")
	}
	tm := c.NewTimer(time.Hour)
	if !tm.Stop() {
		t.Fatal("real timer Stop = false")
	}
	tk := c.NewTicker(time.Millisecond)
	select {
	case <-tk.C:
	case <-time.After(time.Second):
		t.Fatal("real ticker did not tick")
	}
	tk.Stop()
}
