// Package testutil holds shared test harness helpers. It is test-support
// code: production packages must not import it.
package testutil

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// VerifyTestMain runs a package's tests and then fails the run if goroutines
// started during the tests are still alive afterwards. Wire it in as
//
//	func TestMain(m *testing.M) { testutil.VerifyTestMain(m) }
//
// Leak detection is snapshot-based: stacks present before m.Run are
// grandfathered (the test binary's own plumbing), and goroutines that are
// merely slow to wind down get a grace period of retries before they count
// as leaks. The check needs only the standard library — runtime.Stack gives
// us every goroutine's creation site.
func VerifyTestMain(m *testing.M) {
	before := goroutineStacks()
	code := m.Run()
	if code == 0 {
		if leaked := awaitNoLeaks(before); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr, "testutil: %d leaked goroutine(s) after tests:\n\n", len(leaked))
			for _, s := range leaked {
				fmt.Fprintf(os.Stderr, "%s\n\n", s)
			}
			code = 1
		}
	}
	os.Exit(code)
}

// awaitNoLeaks polls until every goroutine not in the before set has exited,
// or the grace period runs out, and returns the stragglers' stacks. Shutdown
// is asynchronous all over this codebase (servers drain accept loops,
// pollers notice a closed channel on their next tick), so one immediate
// snapshot would be all false positives.
func awaitNoLeaks(before map[string]bool) []string {
	var leaked []string
	for attempt := 0; attempt < 40; attempt++ {
		leaked = leaked[:0]
		for _, s := range stackDump() {
			if !before[creationSite(s)] && !ignorable(s) {
				leaked = append(leaked, s)
			}
		}
		if len(leaked) == 0 {
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return leaked
}

// goroutineStacks returns one stack trace per live goroutine, keyed for the
// before-set by creation site.
func goroutineStacks() map[string]bool {
	set := make(map[string]bool)
	for _, s := range stackDump() {
		set[creationSite(s)] = true
	}
	return set
}

func stackDump() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []string
	for _, s := range strings.Split(string(buf), "\n\n") {
		if strings.TrimSpace(s) != "" {
			out = append(out, strings.TrimSpace(s))
		}
	}
	return out
}

// creationSite extracts the "created by ..." line (plus the goroutine's
// current top frame's function) as a stable identity for a goroutine class.
// Goroutine IDs are useless across snapshots — the same leak gets a new ID
// every run — but the creation site names the code that must be fixed.
func creationSite(stack string) string {
	lines := strings.Split(stack, "\n")
	var top, created string
	if len(lines) > 1 {
		top = strings.TrimSpace(lines[1])
	}
	for _, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "created by ") {
			created = strings.TrimSpace(l)
			break
		}
	}
	return created + " | " + top
}

// ignorable reports stacks that are runtime or testing machinery, never a
// product leak: the garbage collector's workers, the testing package's own
// goroutines, and this checker itself.
func ignorable(stack string) bool {
	for _, frag := range []string{
		"runtime.gc",
		"runtime.bgsweep",
		"runtime.bgscavenge",
		"runtime.forcegchelper",
		"runtime/trace",
		"testing.(*M).",
		"testing.(*T).",
		"testing.tRunner",
		"testutil.VerifyTestMain",
		"os/signal.signal_recv",
		"os/signal.loop",
		"runtime.ReadTrace",
	} {
		if strings.Contains(stack, frag) {
			return true
		}
	}
	// The first line of the first stack is this goroutine itself.
	return strings.HasPrefix(stack, "goroutine 1 ")
}
