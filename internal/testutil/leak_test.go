package testutil

import (
	"strings"
	"testing"
)

// TestLeakDetection checks the core mechanics: a goroutine spawned after the
// snapshot shows up as a leak, and disappears from the diff once released.
func TestLeakDetection(t *testing.T) {
	before := goroutineStacks()

	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-release
	}()
	<-started

	leaked := diffStacks(before)
	if len(leaked) == 0 {
		t.Fatalf("blocked goroutine not detected as a leak")
	}
	found := false
	for _, s := range leaked {
		if strings.Contains(s, "TestLeakDetection") {
			found = true
		}
	}
	if !found {
		t.Fatalf("leak stacks do not name the spawning test:\n%s", strings.Join(leaked, "\n\n"))
	}

	close(release)
	if leaked := awaitNoLeaks(before); len(leaked) > 0 {
		t.Fatalf("released goroutine still reported leaked:\n%s", strings.Join(leaked, "\n\n"))
	}
}

// diffStacks is one non-waiting pass of the leak scan.
func diffStacks(before map[string]bool) []string {
	var leaked []string
	for _, s := range stackDump() {
		if !before[creationSite(s)] && !ignorable(s) {
			leaked = append(leaked, s)
		}
	}
	return leaked
}

func TestIgnorableFiltersHarness(t *testing.T) {
	for _, s := range stackDump() {
		if strings.Contains(s, "testing.tRunner") && !ignorable(s) {
			t.Fatalf("test harness stack not ignorable:\n%s", s)
		}
	}
}
