// Package events is the runtime's unified event surface. The registry's
// decision trace, the migration middleware's phase observer and the fault
// injector's applied/triggered log each grew their own callback shape; a
// Sink receives all of them as one normalised stream, wired once through
// core.Options.Events. The original surfaces (registry.Config.OnEvent,
// hpcm.MigrationObserver, faults.Injector.Applied) keep working — they are
// thin adapters over, or alongside, the sink.
package events

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Source names the subsystem an event originated from.
const (
	SourceRegistry  = "registry"
	SourceHPCM      = "hpcm"
	SourceFaults    = "faults"
	SourceCommander = "commander"
	SourceMalleable = "malleable"
	SourceJobs      = "jobs"
)

// Event is one normalised runtime event. Source and Kind identify it;
// the remaining fields are set when the source vocabulary carries them.
// Payload, when non-nil, carries the source's typed event struct
// (hpcm.MigrationEvent, hpcm.CheckpointEvent, malleable.Event, jobs.Event)
// so consumers needing more than the normalised fields register one On[T]
// sink instead of a per-subsystem callback interface.
type Event struct {
	Time    time.Time
	Source  string // one of the Source* constants
	Kind    string // the source's own kind vocabulary (e.g. "ordered", "resume")
	Host    string // the host the event concerns (migration source, fault target)
	Dest    string // destination host, for placement/migration events
	Proc    string // process name, for process-level events
	PID     int    // pid, for process-level events
	Note    string // free-form detail
	Err     error  // set for failure events
	Payload any    // the source's typed event struct, when it has one
}

// String renders the event for logs.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s/%s", e.Time.Format("15:04:05"), e.Source, e.Kind)
	if e.Host != "" {
		fmt.Fprintf(&b, " host=%s", e.Host)
	}
	if e.Dest != "" {
		fmt.Fprintf(&b, " dest=%s", e.Dest)
	}
	if e.Proc != "" {
		fmt.Fprintf(&b, " proc=%s", e.Proc)
	}
	if e.PID != 0 {
		fmt.Fprintf(&b, " pid=%d", e.PID)
	}
	if e.Note != "" {
		fmt.Fprintf(&b, " (%s)", e.Note)
	}
	if e.Err != nil {
		fmt.Fprintf(&b, " error=%v", e.Err)
	}
	return b.String()
}

// Sink receives events. Publish is called synchronously from the emitting
// goroutine (registry decisions, migrating processes, the fault scheduler),
// so implementations must be safe for concurrent use and must not block
// indefinitely.
type Sink interface {
	Publish(Event)
}

// SinkFunc adapts a function to a Sink.
type SinkFunc func(Event)

// Publish implements Sink.
func (f SinkFunc) Publish(e Event) { f(e) }

// Multi fans one event out to several sinks, in order. Nil sinks are
// skipped, so callers can pass optional sinks unconditionally.
func Multi(sinks ...Sink) Sink {
	out := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	return multi(out)
}

type multi []Sink

func (m multi) Publish(e Event) {
	for _, s := range m {
		s.Publish(e)
	}
}

// On registers a typed observer as a Sink: fn runs for every event whose
// Payload is a T, and all other events pass through silently. This is the
// single registration pattern replacing the per-subsystem callback
// interfaces (hpcm.MigrationObserver, malleable.ResizeObserver, a would-be
// job observer): wire events.On[jobs.Event](fn) into the one sink instead.
// fn runs synchronously on the emitting goroutine and must follow the Sink
// contract (concurrency-safe, non-blocking).
func On[T any](fn func(T)) Sink {
	return SinkFunc(func(e Event) {
		if p, ok := e.Payload.(T); ok {
			fn(p)
		}
	})
}

// Ring is a bounded in-memory sink, the drop-in observer for tests and
// experiments: it keeps the most recent Cap events.
type Ring struct {
	// Cap bounds the buffer; zero selects 1024.
	Cap int

	mu     sync.Mutex
	events []Event
}

// Publish implements Sink.
func (r *Ring) Publish(e Event) {
	max := r.Cap
	if max <= 0 {
		max = 1024
	}
	r.mu.Lock()
	r.events = append(r.events, e)
	if len(r.events) > max {
		r.events = r.events[len(r.events)-max:]
	}
	r.mu.Unlock()
}

// Events returns the buffered events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Count returns how many events are currently buffered.
func (r *Ring) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// CountBy returns how many buffered events match the source (and kind, when
// non-empty).
func (r *Ring) CountBy(source, kind string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Source == source && (kind == "" || e.Kind == kind) {
			n++
		}
	}
	return n
}
