package events

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRingKeepsMostRecent(t *testing.T) {
	r := &Ring{Cap: 3}
	for i := 0; i < 5; i++ {
		r.Publish(Event{Source: SourceRegistry, Kind: fmt.Sprintf("k%d", i)})
	}
	got := r.Events()
	if len(got) != 3 {
		t.Fatalf("len = %d, want cap 3", len(got))
	}
	for i, e := range got {
		if want := fmt.Sprintf("k%d", i+2); e.Kind != want {
			t.Fatalf("events[%d].Kind = %q, want %q", i, e.Kind, want)
		}
	}
	if r.Count() != 3 {
		t.Fatalf("Count = %d", r.Count())
	}
}

func TestRingCountBy(t *testing.T) {
	r := &Ring{}
	r.Publish(Event{Source: SourceRegistry, Kind: "ordered"})
	r.Publish(Event{Source: SourceRegistry, Kind: "declined"})
	r.Publish(Event{Source: SourceFaults, Kind: "crash-host"})
	if got := r.CountBy(SourceRegistry, ""); got != 2 {
		t.Fatalf("CountBy(registry) = %d", got)
	}
	if got := r.CountBy(SourceRegistry, "ordered"); got != 1 {
		t.Fatalf("CountBy(registry, ordered) = %d", got)
	}
	if got := r.CountBy(SourceHPCM, ""); got != 0 {
		t.Fatalf("CountBy(hpcm) = %d", got)
	}
}

func TestMultiFansOutAndSkipsNil(t *testing.T) {
	var a, b []Event
	sink := Multi(
		SinkFunc(func(e Event) { a = append(a, e) }),
		nil,
		SinkFunc(func(e Event) { b = append(b, e) }),
	)
	sink.Publish(Event{Kind: "x"})
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("fan-out = %d/%d", len(a), len(b))
	}
}

func TestEventString(t *testing.T) {
	e := Event{
		Time:   time.Date(2004, 8, 15, 9, 30, 0, 0, time.UTC),
		Source: SourceHPCM,
		Kind:   "resume",
		Host:   "ws1",
		Dest:   "ws2",
		Proc:   "tree",
		PID:    7,
		Note:   "chunk 3",
		Err:    errors.New("boom"),
	}
	want := "09:30:00 hpcm/resume host=ws1 dest=ws2 proc=tree pid=7 (chunk 3) error=boom"
	if got := e.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestRingConcurrentPublish(t *testing.T) {
	r := &Ring{Cap: 64}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Publish(Event{Source: SourceRegistry, Kind: "k"})
			}
		}()
	}
	wg.Wait()
	if r.Count() != 64 {
		t.Fatalf("Count = %d, want cap 64", r.Count())
	}
}
