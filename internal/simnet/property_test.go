package simnet

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"autoresched/internal/vclock"
)

// flowSpec is one randomized transfer in a property run.
type flowSpec struct {
	from, to string
	size     int64
}

// randomTopology builds a network on a manual clock with nHosts random NIC
// capacities and a few random link degradations, all drawn from rng.
func randomTopology(t *testing.T, rng *rand.Rand, nHosts int) (*Network, *vclock.Manual, []string) {
	t.Helper()
	clock := vclock.NewManual(vclock.Epoch)
	n := New(clock, Options{DefaultBandwidth: 1e6})
	hosts := make([]string, nHosts)
	for i := range hosts {
		hosts[i] = fmt.Sprintf("h%d", i)
		cap := 1e5 * float64(1+rng.Intn(20)) // 0.1..2 MB/s
		if err := n.AddHostBandwidth(hosts[i], cap); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < nHosts/2; k++ {
		a, b := hosts[rng.Intn(nHosts)], hosts[rng.Intn(nHosts)]
		if a == b {
			continue
		}
		if err := n.SetLinkFactor(a, b, 0.1+0.8*rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	return n, clock, hosts
}

// startFlows launches every transfer in its own goroutine and spin-waits
// (wall clock) until all of them are registered as active flows. The manual
// clock is not advanced, so the flows stay in flight.
func startFlows(t *testing.T, n *Network, specs []flowSpec) (*sync.WaitGroup, []error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(specs))
	for i, sp := range specs {
		wg.Add(1)
		go func(i int, sp flowSpec) {
			defer wg.Done()
			errs[i] = n.Transfer(sp.from, sp.to, sp.size)
		}(i, sp)
	}
	deadline := time.Now().Add(5 * time.Second)
	for n.ActiveFlows() < len(specs) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d flows registered", n.ActiveFlows(), len(specs))
		}
		time.Sleep(time.Millisecond)
	}
	return &wg, errs
}

// checkRateInvariants verifies, against the global flow set, that
//
//  1. every flow's incrementally maintained rate equals a from-scratch
//     fair-share recomputation (min of the two NIC-direction shares, times
//     the link factor), and
//  2. no NIC direction's aggregate rate exceeds its capacity.
//
// The brute force deliberately counts flow populations by scanning n.flows
// rather than trusting the per-NIC membership sets it is checking.
func checkRateInvariants(t *testing.T, n *Network) {
	t.Helper()
	n.mu.Lock()
	defer n.mu.Unlock()
	for f := range n.flows {
		sendCount, recvCount := 0, 0
		for g := range n.flows {
			if g.from == f.from {
				sendCount++
			}
			if g.to == f.to {
				recvCount++
			}
		}
		want := math.Min(f.from.capacity/float64(sendCount), f.to.capacity/float64(recvCount))
		if factor, ok := n.factors[link(f.from.name, f.to.name)]; ok {
			want *= factor
		}
		if math.Abs(f.rate-want) > 1e-6*want {
			t.Fatalf("flow %s->%s rate %v, brute-force fair share %v",
				f.from.name, f.to.name, f.rate, want)
		}
	}
	for name, h := range n.hosts {
		var sendSum, recvSum float64
		for f := range n.flows {
			if f.from == h {
				sendSum += f.rate
			}
			if f.to == h {
				recvSum += f.rate
			}
		}
		if sendSum > h.capacity*(1+1e-9) {
			t.Fatalf("host %s send rate %v exceeds capacity %v", name, sendSum, h.capacity)
		}
		if recvSum > h.capacity*(1+1e-9) {
			t.Fatalf("host %s recv rate %v exceeds capacity %v", name, recvSum, h.capacity)
		}
	}
}

// drain advances the manual clock until every transfer goroutine returns,
// re-checking the rate invariants along the way (each completion hands its
// freed capacity to the surviving flows).
func drain(t *testing.T, n *Network, clock *vclock.Manual, wg *sync.WaitGroup) {
	t.Helper()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	deadline := time.Now().Add(20 * time.Second)
	for i := 0; ; i++ {
		select {
		case <-done:
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("flows did not drain: %d still active", n.ActiveFlows())
		}
		clock.Advance(2 * time.Second)
		time.Sleep(time.Millisecond)
		if i%8 == 0 {
			checkRateInvariants(t, n)
		}
	}
}

// Property: for randomized topologies and flow sets, the incremental
// fair-share solver agrees with a from-scratch recomputation, and no NIC
// direction is ever oversubscribed — at admission and across completions.
func TestFairShareMatchesBruteForceProperty(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			nHosts := 3 + rng.Intn(6)
			n, clock, hosts := randomTopology(t, rng, nHosts)
			specs := make([]flowSpec, 4+rng.Intn(12))
			for i := range specs {
				from := hosts[rng.Intn(nHosts)]
				to := hosts[rng.Intn(nHosts)]
				for to == from {
					to = hosts[rng.Intn(nHosts)]
				}
				specs[i] = flowSpec{from: from, to: to, size: int64(1e4 * (1 + rng.Intn(400)))}
			}
			wg, errs := startFlows(t, n, specs)
			checkRateInvariants(t, n)
			drain(t, n, clock, wg)
			for i, err := range errs {
				if err != nil {
					t.Errorf("transfer %d (%s->%s): %v", i, specs[i].from, specs[i].to, err)
				}
			}
		})
	}
}

// Property: once every randomized flow completes, bytes are conserved —
// each host's cumulative send/receive counters sum to exactly the bytes the
// flow set injected, with no NIC double-counting across shared segments.
func TestRandomFlowsConserveBytes(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(100 + seed))
			nHosts := 3 + rng.Intn(5)
			n, clock, hosts := randomTopology(t, rng, nHosts)
			specs := make([]flowSpec, 4+rng.Intn(10))
			sentWant := make(map[string]float64)
			recvWant := make(map[string]float64)
			for i := range specs {
				from := hosts[rng.Intn(nHosts)]
				to := hosts[rng.Intn(nHosts)]
				for to == from {
					to = hosts[rng.Intn(nHosts)]
				}
				size := int64(1e4 * (1 + rng.Intn(200)))
				specs[i] = flowSpec{from: from, to: to, size: size}
				sentWant[from] += float64(size)
				recvWant[to] += float64(size)
			}
			wg, errs := startFlows(t, n, specs)
			drain(t, n, clock, wg)
			for i, err := range errs {
				if err != nil {
					t.Fatalf("transfer %d: %v", i, err)
				}
			}
			n.mu.Lock()
			defer n.mu.Unlock()
			for _, h := range hosts {
				nic := n.hosts[h]
				if math.Abs(nic.sentBytes-sentWant[h]) > 1 {
					t.Errorf("host %s sent %v bytes, want %v", h, nic.sentBytes, sentWant[h])
				}
				if math.Abs(nic.recvBytes-recvWant[h]) > 1 {
					t.Errorf("host %s received %v bytes, want %v", h, nic.recvBytes, recvWant[h])
				}
			}
		})
	}
}

// Property: partitions are symmetric. Cutting (a,b) blocks transfers in
// both directions and reports Partitioned for both argument orders; healing
// restores both; third-party links never notice.
func TestPartitionSymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	clock := vclock.NewManual(vclock.Epoch)
	n := New(clock, Options{})
	hosts := []string{"a", "b", "c", "d", "e"}
	for _, h := range hosts {
		if err := n.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	// Zero-size transfers exercise the partition check without needing
	// virtual time to pass.
	probe := func(x, y string) error { return n.Transfer(x, y, 0) }
	for trial := 0; trial < 50; trial++ {
		x, y := hosts[rng.Intn(len(hosts))], hosts[rng.Intn(len(hosts))]
		if x == y {
			continue
		}
		var z string
		for {
			z = hosts[rng.Intn(len(hosts))]
			if z != x && z != y {
				break
			}
		}
		if err := n.SetPartitioned(x, y, true); err != nil {
			t.Fatal(err)
		}
		if !n.Partitioned(x, y) || !n.Partitioned(y, x) {
			t.Fatalf("partition (%s,%s) not symmetric", x, y)
		}
		if err := probe(x, y); err != ErrPartitioned {
			t.Fatalf("transfer %s->%s across partition: %v", x, y, err)
		}
		if err := probe(y, x); err != ErrPartitioned {
			t.Fatalf("transfer %s->%s across partition: %v", y, x, err)
		}
		if err := probe(x, z); err != nil {
			t.Fatalf("third-party transfer %s->%s: %v", x, z, err)
		}
		if err := n.SetPartitioned(y, x, false); err != nil { // heal with swapped order
			t.Fatal(err)
		}
		if n.Partitioned(x, y) || n.Partitioned(y, x) {
			t.Fatalf("heal (%s,%s) not symmetric", y, x)
		}
		if err := probe(x, y); err != nil {
			t.Fatalf("transfer %s->%s after heal: %v", x, y, err)
		}
	}
}
