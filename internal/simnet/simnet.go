// Package simnet simulates the cluster interconnect.
//
// The paper's testbed used 100 Mbps switched Ethernet with exclusive use;
// its evaluation depends on three network observables: per-host send/receive
// byte counters sampled every 10 seconds (Figures 6 and 8), the transfer
// time of the migrating process state (Table 2, "migration time"), and a
// background flow between two workstations running at 6.71-7.78 MB/s that
// the communication-aware policy must notice (Table 2, policy 3).
//
// The model: every host owns a full-duplex NIC with a configurable capacity
// in bytes per second. A transfer from A to B is a flow; at any instant a
// flow's rate is the minimum of its sender's transmit capacity and its
// receiver's receive capacity, each divided equally among the flows using
// that direction of that NIC. Rates are piecewise constant between flow
// arrivals and departures, and progress is integrated exactly across those
// segments, so byte counters and completion times are deterministic given a
// clock.
//
// A flow's rate depends only on the population of its own two NIC
// directions, so each NIC keeps its send and receive flow sets and a
// membership change recomputes just the affected sets — at 512 hosts a
// transfer starting on one link no longer touches every flow in the
// cluster.
package simnet

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"autoresched/internal/vclock"
)

// Errors returned by transfers.
var (
	ErrUnknownHost = errors.New("simnet: unknown host")
	ErrHostDown    = errors.New("simnet: host is down")
	ErrPartitioned = errors.New("simnet: hosts are partitioned")
)

// Options configures a Network.
type Options struct {
	// DefaultBandwidth is the NIC capacity, in bytes per second, given to
	// hosts added without an explicit capacity. The paper's 100 Mbps
	// Ethernet is 12.5e6 B/s; zero selects that value.
	DefaultBandwidth float64
	// Latency is the one-way propagation delay charged once per transfer.
	Latency time.Duration
}

// Ethernet100Mbps is the NIC capacity of the paper's testbed in bytes/s.
const Ethernet100Mbps = 100e6 / 8

// Network simulates the interconnect between named hosts.
type Network struct {
	clock vclock.Clock

	mu      sync.Mutex
	opts    Options
	hosts   map[string]*nic
	flows   map[*flow]struct{}
	factors map[linkKey]float64 // degraded host pairs: rate multiplier < 1
	parts   map[linkKey]bool    // partitioned host pairs
	lastAdv time.Time
	// scratch is the reusable finished-flow buffer of advanceLocked: the
	// rate-advance loop runs on every transfer start/finish and every
	// fault-plan link change, and must not allocate per segment.
	scratch []*flow
	gen     int // invalidates outstanding wake-up timers
	timer   *vclock.Timer
	cancel  chan struct{} // closed to release the stale wake-up goroutine
}

// linkKey names an unordered host pair; degradation and partition apply to
// both directions of the link.
type linkKey struct{ a, b string }

func link(x, y string) linkKey {
	if x > y {
		x, y = y, x
	}
	return linkKey{x, y}
}

type nic struct {
	name     string
	capacity float64 // bytes/s each direction
	down     bool

	sentBytes float64
	recvBytes float64
	// sendFlows and recvFlows are the flows using each direction of this
	// NIC — the scope of a fair-share recomputation when one arrives or
	// departs.
	sendFlows map[*flow]struct{}
	recvFlows map[*flow]struct{}
}

type flow struct {
	from, to *nic
	total    float64
	done     float64
	rate     float64 // current bytes/s, recomputed on membership change
	finished chan error
	failed   bool
}

// New creates an empty network driven by clock.
func New(clock vclock.Clock, opts Options) *Network {
	if opts.DefaultBandwidth <= 0 {
		opts.DefaultBandwidth = Ethernet100Mbps
	}
	return &Network{
		clock:   clock,
		opts:    opts,
		hosts:   make(map[string]*nic),
		flows:   make(map[*flow]struct{}),
		factors: make(map[linkKey]float64),
		parts:   make(map[linkKey]bool),
		lastAdv: clock.Now(),
	}
}

// AddHost registers a host with the default NIC capacity. Adding an existing
// host is an error.
func (n *Network) AddHost(name string) error {
	return n.AddHostBandwidth(name, n.opts.DefaultBandwidth)
}

// AddHostBandwidth registers a host with an explicit NIC capacity in
// bytes per second.
func (n *Network) AddHostBandwidth(name string, capacity float64) error {
	if capacity <= 0 {
		return fmt.Errorf("simnet: non-positive capacity %v for host %q", capacity, name)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.hosts[name]; ok {
		return fmt.Errorf("simnet: host %q already exists", name)
	}
	n.hosts[name] = &nic{
		name:      name,
		capacity:  capacity,
		sendFlows: make(map[*flow]struct{}),
		recvFlows: make(map[*flow]struct{}),
	}
	return nil
}

// SetDown marks a host down or up. Taking a host down fails every flow it
// participates in.
func (n *Network) SetDown(name string, down bool) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.hosts[name]
	if !ok {
		return ErrUnknownHost
	}
	n.advanceLocked(n.clock.Now())
	h.down = down
	if down {
		for _, f := range flowsOn(h) {
			f.failed = true
			n.finishLocked(f, ErrHostDown)
			n.recomputeSideLocked(f.from.sendFlows)
			n.recomputeSideLocked(f.to.recvFlows)
		}
	}
	n.scheduleLocked()
	return nil
}

// HostDown reports whether a host is currently marked down. Unknown hosts
// count as down, so callers can use it directly as a liveness gate.
func (n *Network) HostDown(name string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.hosts[name]
	return !ok || h.down
}

// SetLinkFactor degrades (or restores) the link between two hosts: flows
// between them run at factor times their fair-share rate. factor 1 restores
// full capacity; factor must be positive (a dead link is a partition, not a
// zero factor, so in-flight transfers fail fast instead of stalling
// forever). In-flight flows pick up the new rate immediately.
func (n *Network) SetLinkFactor(a, b string, factor float64) error {
	if factor <= 0 {
		return fmt.Errorf("simnet: non-positive link factor %v", factor)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	ha, ok := n.hosts[a]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHost, a)
	}
	hb, ok := n.hosts[b]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHost, b)
	}
	n.advanceLocked(n.clock.Now())
	if factor >= 1 {
		delete(n.factors, link(a, b))
	} else {
		n.factors[link(a, b)] = factor
	}
	for _, f := range flowsBetween(ha, hb) {
		n.recomputeFlowLocked(f)
	}
	n.scheduleLocked()
	return nil
}

// SetPartitioned cuts (or heals) the link between two hosts. Partitioning
// fails every in-flight flow between them with ErrPartitioned, and new
// transfers between them fail immediately until the partition heals. Other
// links are unaffected — unlike SetDown, each host keeps talking to the
// rest of the cluster.
func (n *Network) SetPartitioned(a, b string, partitioned bool) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	ha, ok := n.hosts[a]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHost, a)
	}
	hb, ok := n.hosts[b]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHost, b)
	}
	n.advanceLocked(n.clock.Now())
	if partitioned {
		n.parts[link(a, b)] = true
		for _, f := range flowsBetween(ha, hb) {
			f.failed = true
			n.finishLocked(f, ErrPartitioned)
			n.recomputeSideLocked(f.from.sendFlows)
			n.recomputeSideLocked(f.to.recvFlows)
		}
	} else {
		delete(n.parts, link(a, b))
	}
	n.scheduleLocked()
	return nil
}

// Partitioned reports whether two hosts are currently partitioned.
func (n *Network) Partitioned(a, b string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.parts[link(a, b)]
}

// Transfer moves size bytes from one host to another, blocking in virtual
// time until the transfer completes. It returns ErrHostDown if either end
// is (or goes) down, and ErrPartitioned if the pair is partitioned.
func (n *Network) Transfer(from, to string, size int64) error {
	if size < 0 {
		return fmt.Errorf("simnet: negative transfer size %d", size)
	}
	n.mu.Lock()
	src, ok := n.hosts[from]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownHost, from)
	}
	dst, ok := n.hosts[to]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownHost, to)
	}
	if src.down || dst.down {
		n.mu.Unlock()
		return ErrHostDown
	}
	if n.parts[link(from, to)] {
		n.mu.Unlock()
		return ErrPartitioned
	}
	if from == to || size == 0 {
		// Loopback and empty transfers are free of NIC time; charge latency
		// only.
		n.mu.Unlock()
		if n.opts.Latency > 0 {
			n.clock.Sleep(n.opts.Latency)
		}
		return nil
	}
	n.advanceLocked(n.clock.Now())
	f := &flow{from: src, to: dst, total: float64(size), finished: make(chan error, 1)}
	n.flows[f] = struct{}{}
	src.sendFlows[f] = struct{}{}
	dst.recvFlows[f] = struct{}{}
	// Only the sender's other transmissions and the receiver's other
	// receptions see their fair share change.
	n.recomputeSideLocked(src.sendFlows)
	n.recomputeSideLocked(dst.recvFlows)
	n.scheduleLocked()
	n.mu.Unlock()

	if n.opts.Latency > 0 {
		n.clock.Sleep(n.opts.Latency)
	}
	return <-f.finished
}

// Counters returns the cumulative bytes sent and received by a host.
func (n *Network) Counters(host string) (sent, recv int64, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.hosts[host]
	if !ok {
		return 0, 0, ErrUnknownHost
	}
	n.advanceLocked(n.clock.Now())
	return int64(h.sentBytes), int64(h.recvBytes), nil
}

// Rates returns the instantaneous aggregate send and receive rates of a
// host in bytes per second.
func (n *Network) Rates(host string) (sendBps, recvBps float64, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.hosts[host]
	if !ok {
		return 0, 0, ErrUnknownHost
	}
	n.advanceLocked(n.clock.Now())
	for f := range h.sendFlows {
		sendBps += f.rate
	}
	for f := range h.recvFlows {
		recvBps += f.rate
	}
	return sendBps, recvBps, nil
}

// HostFlows reports the number of in-flight transfers with an endpoint on
// host. It backs the netstat-style "sockets in ESTABLISHED state" probe.
func (n *Network) HostFlows(host string) (int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.hosts[host]
	if !ok {
		return 0, ErrUnknownHost
	}
	return len(h.sendFlows) + len(h.recvFlows), nil
}

// ActiveFlows reports the number of in-flight transfers.
func (n *Network) ActiveFlows() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.flows)
}

// Hosts returns the registered host names.
func (n *Network) Hosts() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	names := make([]string, 0, len(n.hosts))
	for name := range n.hosts {
		names = append(names, name)
	}
	return names
}

// flowsOn snapshots the flows with an endpoint on h (callers mutate the
// sets while iterating).
func flowsOn(h *nic) []*flow {
	out := make([]*flow, 0, len(h.sendFlows)+len(h.recvFlows))
	for f := range h.sendFlows {
		out = append(out, f)
	}
	for f := range h.recvFlows {
		out = append(out, f)
	}
	return out
}

// flowsBetween snapshots the flows running between a and b, either
// direction.
func flowsBetween(a, b *nic) []*flow {
	var out []*flow
	for f := range a.sendFlows {
		if f.to == b {
			out = append(out, f)
		}
	}
	for f := range b.sendFlows {
		if f.to == a {
			out = append(out, f)
		}
	}
	return out
}

// finishLocked removes a flow and signals its waiter. The caller recomputes
// the affected NIC sides afterwards.
func (n *Network) finishLocked(f *flow, err error) {
	if _, ok := n.flows[f]; !ok {
		return
	}
	delete(n.flows, f)
	delete(f.from.sendFlows, f)
	delete(f.to.recvFlows, f)
	f.finished <- err
}

// recomputeFlowLocked refreshes one flow's rate from its two NIC directions.
//
//hot:path
func (n *Network) recomputeFlowLocked(f *flow) {
	sendShare := f.from.capacity / float64(len(f.from.sendFlows))
	recvShare := f.to.capacity / float64(len(f.to.recvFlows))
	f.rate = math.Min(sendShare, recvShare)
	if factor, ok := n.factors[link(f.from.name, f.to.name)]; ok {
		f.rate *= factor
	}
}

// recomputeSideLocked refreshes every flow sharing one direction of one NIC
// — the whole blast radius of an arrival or departure there. Must be called
// with progress already advanced to now.
//
//hot:path
func (n *Network) recomputeSideLocked(side map[*flow]struct{}) {
	for f := range side {
		n.recomputeFlowLocked(f)
	}
}

// advanceLocked integrates flow progress from lastAdv to now, completing
// flows exactly at their finish instants (the freed capacity is handed to
// the finished flows' NIC neighbours before later segments are integrated).
//
//hot:path
func (n *Network) advanceLocked(now time.Time) {
	for {
		dt := now.Sub(n.lastAdv).Seconds()
		if dt <= 0 || len(n.flows) == 0 {
			n.lastAdv = now
			return
		}
		// Earliest completion within this segment.
		step := dt
		for f := range n.flows {
			if f.rate <= 0 {
				continue
			}
			if left := (f.total - f.done) / f.rate; left < step {
				step = left
			}
		}
		finished := n.scratch[:0]
		for f := range n.flows {
			adv := f.rate * step
			if f.done+adv >= f.total {
				adv = f.total - f.done
				finished = append(finished, f) //lint:allow hotalloc scratch buffer retains capacity across segments
			}
			f.done += adv
			f.from.sentBytes += adv
			f.to.recvBytes += adv
		}
		n.lastAdv = n.lastAdv.Add(time.Duration(step * float64(time.Second)))
		if len(finished) == 0 {
			n.lastAdv = now
			return
		}
		for _, f := range finished {
			n.finishLocked(f, nil)
		}
		for _, f := range finished {
			n.recomputeSideLocked(f.from.sendFlows)
			n.recomputeSideLocked(f.to.recvFlows)
		}
		n.scratch = finished[:0]
	}
}

// scheduleLocked arms a wake-up timer for the earliest flow completion so
// that waiters are signalled without polling.
func (n *Network) scheduleLocked() {
	n.gen++
	if n.timer != nil {
		n.timer.Stop()
		close(n.cancel)
		n.timer = nil
		n.cancel = nil
	}
	if len(n.flows) == 0 {
		return
	}
	earliest := math.Inf(1)
	for f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		if left := (f.total - f.done) / f.rate; left < earliest {
			earliest = left
		}
	}
	if math.IsInf(earliest, 1) {
		return
	}
	d := time.Duration(earliest*float64(time.Second)) + time.Nanosecond
	timer := n.clock.NewTimer(d)
	cancel := make(chan struct{})
	n.timer = timer
	n.cancel = cancel
	gen := n.gen
	go func() {
		var at time.Time
		select {
		case at = <-timer.C:
		case <-cancel:
			return
		}
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.gen != gen {
			return
		}
		n.timer = nil
		n.cancel = nil
		if now := n.clock.Now(); now.After(at) {
			at = now
		}
		n.advanceLocked(at)
		n.scheduleLocked()
	}()
}
