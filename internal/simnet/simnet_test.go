package simnet

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"autoresched/internal/vclock"
)

func newNet(t *testing.T, bw float64, hosts ...string) (*Network, vclock.Clock) {
	t.Helper()
	// Modest scale: virtual-time error is wall jitter times the scale, and
	// race-instrumented runs jitter by milliseconds.
	clock := vclock.Scaled(vclock.Epoch, 200)
	n := New(clock, Options{DefaultBandwidth: bw})
	for _, h := range hosts {
		if err := n.AddHost(h); err != nil {
			t.Fatalf("AddHost(%q): %v", h, err)
		}
	}
	return n, clock
}

func TestSingleTransferTakesSizeOverBandwidth(t *testing.T) {
	n, clock := newNet(t, 1e6, "a", "b")
	start := clock.Now()
	if err := n.Transfer("a", "b", 10e6); err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	got := clock.Since(start)
	// 10 MB at 1 MB/s = 10 virtual seconds.
	if got < 9*time.Second || got > 13*time.Second {
		t.Fatalf("transfer took %v, want ~10s", got)
	}
}

func TestCountersMatchTransferredBytes(t *testing.T) {
	n, _ := newNet(t, 1e6, "a", "b")
	if err := n.Transfer("a", "b", 2_000_000); err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	sent, _, err := n.Counters("a")
	if err != nil {
		t.Fatal(err)
	}
	_, recv, err := n.Counters("b")
	if err != nil {
		t.Fatal(err)
	}
	if sent != 2_000_000 || recv != 2_000_000 {
		t.Fatalf("counters sent=%d recv=%d, want 2000000 each", sent, recv)
	}
}

func TestConcurrentFlowsShareSenderNIC(t *testing.T) {
	n, clock := newNet(t, 1e6, "a", "b", "c")
	start := clock.Now()
	var wg sync.WaitGroup
	for _, dst := range []string{"b", "c"} {
		wg.Add(1)
		go func(dst string) {
			defer wg.Done()
			if err := n.Transfer("a", dst, 5e6); err != nil {
				t.Errorf("Transfer to %s: %v", dst, err)
			}
		}(dst)
	}
	wg.Wait()
	got := clock.Since(start)
	// Two 5 MB flows sharing a 1 MB/s sender: each runs at 0.5 MB/s, both
	// finish together at ~10 s.
	if got < 9*time.Second || got > 14*time.Second {
		t.Fatalf("shared transfers took %v, want ~10s", got)
	}
}

func TestIndependentPairsDoNotInterfere(t *testing.T) {
	n, clock := newNet(t, 1e6, "a", "b", "c", "d")
	start := clock.Now()
	var wg sync.WaitGroup
	for _, pair := range [][2]string{{"a", "b"}, {"c", "d"}} {
		wg.Add(1)
		go func(from, to string) {
			defer wg.Done()
			if err := n.Transfer(from, to, 5e6); err != nil {
				t.Errorf("Transfer %s->%s: %v", from, to, err)
			}
		}(pair[0], pair[1])
	}
	wg.Wait()
	got := clock.Since(start)
	// Disjoint NIC pairs each run at full capacity: ~5 s.
	if got < 4*time.Second || got > 8*time.Second {
		t.Fatalf("independent transfers took %v, want ~5s", got)
	}
}

func TestShortFlowFreesCapacityForLongFlow(t *testing.T) {
	n, clock := newNet(t, 1e6, "a", "b", "c")
	start := clock.Now()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // long flow: 9 MB
		defer wg.Done()
		if err := n.Transfer("a", "b", 9e6); err != nil {
			t.Errorf("long: %v", err)
		}
	}()
	go func() { // short flow: 1 MB, same sender
		defer wg.Done()
		if err := n.Transfer("a", "c", 1e6); err != nil {
			t.Errorf("short: %v", err)
		}
	}()
	wg.Wait()
	got := clock.Since(start)
	// Shared until the short flow's 1 MB is done (2 s at 0.5 MB/s); the
	// long flow then has 8 MB left at full rate => total ~10 s.
	if got < 9*time.Second || got > 14*time.Second {
		t.Fatalf("took %v, want ~10s", got)
	}
}

func TestTransferUnknownHost(t *testing.T) {
	n, _ := newNet(t, 1e6, "a")
	if err := n.Transfer("a", "nope", 10); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("err = %v, want ErrUnknownHost", err)
	}
	if err := n.Transfer("nope", "a", 10); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("err = %v, want ErrUnknownHost", err)
	}
}

func TestTransferToDownHostFails(t *testing.T) {
	n, _ := newNet(t, 1e6, "a", "b")
	if err := n.SetDown("b", true); err != nil {
		t.Fatal(err)
	}
	if err := n.Transfer("a", "b", 10); !errors.Is(err, ErrHostDown) {
		t.Fatalf("err = %v, want ErrHostDown", err)
	}
	if err := n.SetDown("b", false); err != nil {
		t.Fatal(err)
	}
	if err := n.Transfer("a", "b", 10); err != nil {
		t.Fatalf("transfer after revive: %v", err)
	}
}

func TestHostGoingDownFailsInFlightTransfer(t *testing.T) {
	n, _ := newNet(t, 1e3, "a", "b") // slow: 1 KB/s
	errc := make(chan error, 1)
	go func() { errc <- n.Transfer("a", "b", 1e9) }()
	// Wait for the flow to be active, then kill the receiver.
	for i := 0; n.ActiveFlows() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if n.ActiveFlows() == 0 {
		t.Fatal("flow never became active")
	}
	if err := n.SetDown("b", true); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, ErrHostDown) {
			t.Fatalf("err = %v, want ErrHostDown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight transfer did not fail")
	}
}

func TestZeroSizeAndLoopbackAreFree(t *testing.T) {
	n, clock := newNet(t, 1e6, "a", "b")
	start := clock.Now()
	if err := n.Transfer("a", "b", 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Transfer("a", "a", 1e9); err != nil {
		t.Fatal(err)
	}
	if d := clock.Since(start); d > time.Second {
		t.Fatalf("free transfers took %v virtual", d)
	}
	sent, recv, _ := n.Counters("a")
	if sent != 0 || recv != 0 {
		t.Fatalf("loopback counted: sent=%d recv=%d", sent, recv)
	}
}

func TestNegativeSizeRejected(t *testing.T) {
	n, _ := newNet(t, 1e6, "a", "b")
	if err := n.Transfer("a", "b", -1); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestDuplicateHostRejected(t *testing.T) {
	n, _ := newNet(t, 1e6, "a")
	if err := n.AddHost("a"); err == nil {
		t.Fatal("duplicate host accepted")
	}
	if err := n.AddHostBandwidth("x", -5); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
}

func TestRatesReflectActiveFlows(t *testing.T) {
	n, _ := newNet(t, 1e6, "a", "b")
	done := make(chan error, 1)
	go func() { done <- n.Transfer("a", "b", 50e6) }()
	for i := 0; n.ActiveFlows() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	sendBps, _, err := n.Rates("a")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sendBps-1e6) > 1 {
		t.Fatalf("send rate = %v, want 1e6", sendBps)
	}
	_, recvBps, err := n.Rates("b")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(recvBps-1e6) > 1 {
		t.Fatalf("recv rate = %v, want 1e6", recvBps)
	}
	if err := n.SetDown("b", true); err != nil { // cancel so test exits fast
		t.Fatal(err)
	}
	<-done
}

func TestLatencyChargedOncePerTransfer(t *testing.T) {
	clock := vclock.Scaled(vclock.Epoch, 200)
	n := New(clock, Options{DefaultBandwidth: 1e9, Latency: 500 * time.Millisecond})
	for _, h := range []string{"a", "b"} {
		if err := n.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	start := clock.Now()
	if err := n.Transfer("a", "b", 1000); err != nil {
		t.Fatal(err)
	}
	if d := clock.Since(start); d < 450*time.Millisecond {
		t.Fatalf("latency not charged: %v", d)
	}
}

// Property: total bytes accounted on the sender equals the sum of completed
// transfer sizes, for arbitrary concurrent fan-outs.
func TestCountersConservationProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 8 {
			sizes = sizes[:8]
		}
		clock := vclock.Scaled(vclock.Epoch, 100000)
		n := New(clock, Options{DefaultBandwidth: 1e6})
		if err := n.AddHost("src"); err != nil {
			return false
		}
		if err := n.AddHost("dst"); err != nil {
			return false
		}
		var want int64
		var wg sync.WaitGroup
		for _, s := range sizes {
			size := int64(s)
			want += size
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = n.Transfer("src", "dst", size)
			}()
		}
		wg.Wait()
		sent, _, err := n.Counters("src")
		if err != nil {
			return false
		}
		// Floating point integration: allow one byte of slack per flow.
		return sent >= want-int64(len(sizes)) && sent <= want+int64(len(sizes))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHostsListsRegisteredHosts(t *testing.T) {
	n, _ := newNet(t, 1e6, "a", "b", "c")
	if got := len(n.Hosts()); got != 3 {
		t.Fatalf("Hosts() len = %d, want 3", got)
	}
}

func TestHostFlowsCountsEndpoints(t *testing.T) {
	n, _ := newNet(t, 1e3, "a", "b", "c") // slow so flows stay active
	if got, err := n.HostFlows("a"); err != nil || got != 0 {
		t.Fatalf("idle flows = %d, %v", got, err)
	}
	done := make(chan error, 2)
	go func() { done <- n.Transfer("a", "b", 1e6) }()
	go func() { done <- n.Transfer("c", "a", 1e6) }()
	deadline := time.Now().Add(2 * time.Second)
	for {
		got, err := n.HostFlows("a")
		if err != nil {
			t.Fatal(err)
		}
		if got == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("HostFlows = %d, want 2", got)
		}
		time.Sleep(time.Millisecond)
	}
	if got, _ := n.HostFlows("b"); got != 1 {
		t.Fatalf("b flows = %d", got)
	}
	if _, err := n.HostFlows("ghost"); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("err = %v", err)
	}
	// Tear down to end the transfers quickly.
	if err := n.SetDown("a", true); err != nil {
		t.Fatal(err)
	}
	<-done
	<-done
}

func TestSetDownUnknownHost(t *testing.T) {
	n, _ := newNet(t, 1e6)
	if err := n.SetDown("ghost", true); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("err = %v, want ErrUnknownHost", err)
	}
}

func TestSetLinkFactorSlowsTransfers(t *testing.T) {
	n, clock := newNet(t, 1e6, "a", "b")
	if err := n.SetLinkFactor("a", "b", 0.5); err != nil {
		t.Fatalf("SetLinkFactor: %v", err)
	}
	start := clock.Now()
	if err := n.Transfer("a", "b", 5e6); err != nil {
		t.Fatalf("Transfer: %v", err)
	}
	got := clock.Since(start)
	// 5 MB at 0.5 MB/s = 10 virtual seconds (twice the healthy-link time).
	if got < 9*time.Second || got > 13*time.Second {
		t.Fatalf("degraded transfer took %v, want ~10s", got)
	}
	// Restore and confirm full rate again.
	if err := n.SetLinkFactor("b", "a", 1); err != nil {
		t.Fatalf("SetLinkFactor restore: %v", err)
	}
	start = clock.Now()
	if err := n.Transfer("a", "b", 5e6); err != nil {
		t.Fatalf("Transfer after restore: %v", err)
	}
	got = clock.Since(start)
	if got < 4*time.Second || got > 8*time.Second {
		t.Fatalf("restored transfer took %v, want ~5s", got)
	}
}

func TestSetLinkFactorRejectsNonPositive(t *testing.T) {
	n, _ := newNet(t, 1e6, "a", "b")
	if err := n.SetLinkFactor("a", "b", 0); err == nil {
		t.Fatal("SetLinkFactor(0) accepted")
	}
	if err := n.SetLinkFactor("a", "nope", 0.5); err == nil {
		t.Fatal("SetLinkFactor with unknown host accepted")
	}
}

func TestPartitionFailsNewAndInFlightTransfers(t *testing.T) {
	n, _ := newNet(t, 1e6, "a", "b", "c")
	if err := n.SetPartitioned("a", "b", true); err != nil {
		t.Fatalf("SetPartitioned: %v", err)
	}
	if !n.Partitioned("b", "a") {
		t.Fatal("Partitioned = false after SetPartitioned")
	}
	if err := n.Transfer("a", "b", 1e6); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("Transfer across partition: %v, want ErrPartitioned", err)
	}
	// Other links keep working.
	if err := n.Transfer("a", "c", 1e5); err != nil {
		t.Fatalf("Transfer on healthy link: %v", err)
	}
	// Heal and confirm.
	if err := n.SetPartitioned("a", "b", false); err != nil {
		t.Fatalf("heal: %v", err)
	}
	if err := n.Transfer("a", "b", 1e5); err != nil {
		t.Fatalf("Transfer after heal: %v", err)
	}
}

func TestPartitionCutsInFlightFlow(t *testing.T) {
	n, _ := newNet(t, 1e6, "a", "b")
	errCh := make(chan error, 1)
	go func() { errCh <- n.Transfer("a", "b", 100e6) }()
	// Wait until the flow exists, then partition.
	for i := 0; i < 200 && n.ActiveFlows() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if err := n.SetPartitioned("a", "b", true); err != nil {
		t.Fatalf("SetPartitioned: %v", err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrPartitioned) {
			t.Fatalf("in-flight transfer: %v, want ErrPartitioned", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight transfer not failed by partition")
	}
}
