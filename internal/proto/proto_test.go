package proto

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func statusMsg(from string) *Message {
	return &Message{
		Type: TypeStatus,
		From: from,
		Status: &Status{
			State: "busy", Grade: 1, Load1: 0.97, NumProcs: 42,
			NetInMBps: 7.2, MemAvailPct: 55.5,
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	msgs := []*Message{
		{Type: TypeRegister, From: "ws1", Static: &StaticInfo{
			Addr: "ws1:7000", OS: "simos", CPUSpeed: 1000, MemTotal: 128 << 20,
			Software: []string{"hpcm", "lam-mpi"},
		}},
		statusMsg("ws2"),
		{Type: TypeUnregister, From: "ws3"},
		{Type: TypeProcessRegister, From: "ws1", Process: &ProcessInfo{
			PID: 101, Name: "test_tree", Start: 12345, SchemaXML: "<applicationSchema><name>test_tree</name></applicationSchema>",
		}},
		{Type: TypeProcessExit, From: "ws1", Process: &ProcessInfo{PID: 101}},
		{Type: TypeCandidateRequest, From: "ws1"},
		{Type: TypeCandidateResponse, From: "registry", Candidate: &Candidate{OK: true, Host: "ws4", Addr: "ws4:7000"}},
		{Type: TypeMigrate, From: "registry", Migrate: &MigrateOrder{PID: 101, DestHost: "ws4", DestAddr: "ws4:7000", Policy: "policy3"}},
		{Type: TypeAck, From: "registry", Error: "boom"},
	}
	for _, m := range msgs {
		m.Stamp(time.Unix(1, 2))
		data, err := m.Encode()
		if err != nil {
			t.Fatalf("Encode(%s): %v", m.Type, err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("Decode(%s): %v", m.Type, err)
		}
		if got.Type != m.Type || got.From != m.From || got.SentAt != m.SentAt {
			t.Fatalf("round trip changed envelope: %+v vs %+v", m, got)
		}
		switch m.Type {
		case TypeStatus:
			if *got.Status != *m.Status {
				t.Fatalf("status changed: %+v vs %+v", m.Status, got.Status)
			}
		case TypeMigrate:
			if *got.Migrate != *m.Migrate {
				t.Fatalf("migrate changed: %+v vs %+v", m.Migrate, got.Migrate)
			}
		case TypeProcessRegister:
			if *got.Process != *m.Process {
				t.Fatalf("process changed: %+v vs %+v", m.Process, got.Process)
			}
		}
	}
}

func TestValidateRejectsMismatchedPayloads(t *testing.T) {
	bad := []*Message{
		{Type: TypeRegister, From: "x"},                 // no static
		{Type: TypeStatus, From: "x"},                   // no status
		{Type: TypeProcessRegister, From: "x"},          // no process
		{Type: TypeProcessExit, From: "x"},              // no process
		{Type: TypeCandidateResponse, From: "x"},        // no candidate
		{Type: TypeMigrate, From: "x"},                  // no order
		{Type: "weird", From: "x"},                      // unknown type
		{Type: TypeStatus, Status: &Status{}, From: ""}, // no sender
		{Type: TypeAck},                                 // no sender
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", m)
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not xml at all")); err == nil {
		t.Fatal("Decode accepted garbage")
	}
	if _, err := Decode([]byte("<hpcmMsg type='status' from='x'></hpcmMsg>")); err == nil {
		t.Fatal("Decode accepted status without payload")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte(""), []byte("a"), bytes.Repeat([]byte("xy"), 5000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame changed: %d vs %d bytes", len(got), len(p))
		}
	}
}

func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, maxFrame+1)); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Header advertising an oversized frame is rejected on read.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversized header accepted")
	}
	// Truncated frame.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 10, 'x'})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

// Property: any ASCII payload round-trips through a frame.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(payload []byte) bool {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			return len(payload) > maxFrame
		}
		got, err := ReadFrame(&buf)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestServerClientRequestResponse(t *testing.T) {
	var mu sync.Mutex
	var seen []MsgType
	srv, err := NewServer("registry", "127.0.0.1:0", func(m *Message) (*Message, error) {
		mu.Lock()
		seen = append(seen, m.Type)
		mu.Unlock()
		if m.Type == TypeCandidateRequest {
			return &Message{Type: TypeCandidateResponse, From: "registry",
				Candidate: &Candidate{OK: true, Host: "ws4", Addr: "ws4:7000"}}, nil
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial("ws1", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Plain status gets an ack.
	resp, err := cli.Call(statusMsg("ws1"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != TypeAck || resp.Error != "" {
		t.Fatalf("resp = %+v", resp)
	}

	// Candidate request gets a typed response with matching seq.
	req := &Message{Type: TypeCandidateRequest}
	resp, err = cli.Call(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != TypeCandidateResponse || !resp.Candidate.OK || resp.Candidate.Host != "ws4" {
		t.Fatalf("candidate resp = %+v", resp)
	}
	if resp.Seq != req.Seq {
		t.Fatalf("seq mismatch: %d vs %d", resp.Seq, req.Seq)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 || seen[0] != TypeStatus || seen[1] != TypeCandidateRequest {
		t.Fatalf("server saw %v", seen)
	}
}

func TestServerHandlerError(t *testing.T) {
	srv, err := NewServer("registry", "127.0.0.1:0", func(m *Message) (*Message, error) {
		return nil, errors.New("rejected")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial("ws1", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	resp, err := cli.Call(statusMsg("ws1"))
	if err == nil || resp == nil || !strings.Contains(resp.Error, "rejected") {
		t.Fatalf("resp = %+v, err = %v; want remote error", resp, err)
	}
}

func TestClientConcurrentCalls(t *testing.T) {
	srv, err := NewServer("registry", "127.0.0.1:0", func(m *Message) (*Message, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial("ws1", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := statusMsg(fmt.Sprintf("ws%d", i))
			if _, err := cli.Call(m); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestClientReconnectsAfterServerRestart(t *testing.T) {
	srv, err := NewServer("registry", "127.0.0.1:0", func(m *Message) (*Message, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cli, err := Dial("ws1", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Call(statusMsg("ws1")); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv2, err := NewServer("registry", addr, func(m *Message) (*Message, error) { return nil, nil })
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	if _, err := cli.Call(statusMsg("ws1")); err != nil {
		t.Fatalf("call after restart: %v", err)
	}
}

func TestClientClosedCallFails(t *testing.T) {
	srv, err := NewServer("registry", "127.0.0.1:0", func(m *Message) (*Message, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cli, err := Dial("ws1", addr)
	if err != nil {
		t.Fatal(err)
	}
	cli.Close()
	srv.Close() // reconnect target also gone
	if _, err := cli.Call(statusMsg("ws1")); err == nil {
		t.Fatal("Call on closed client with dead server succeeded")
	}
}

func TestAckHelper(t *testing.T) {
	req := &Message{Type: TypeStatus, From: "ws1", Seq: 7, Status: &Status{}}
	ack := Ack("registry", req, nil)
	if ack.Type != TypeAck || ack.To != "ws1" || ack.Seq != 7 || ack.Error != "" {
		t.Fatalf("ack = %+v", ack)
	}
	ack = Ack("registry", req, errors.New("nope"))
	if ack.Error != "nope" {
		t.Fatalf("ack error = %q", ack.Error)
	}
}
