package proto

import (
	"math/rand"
	"sync"
	"time"

	"autoresched/internal/metrics"
	"autoresched/internal/vclock"
)

// Options tunes the robustness behaviour of clients and servers. The zero
// value reproduces the historical behaviour: a 5-second dial timeout, one
// re-dial retry, no call deadline, no backoff, no deduplication.
type Options struct {
	// DialTimeout bounds each TCP dial; zero selects 5 seconds.
	DialTimeout time.Duration
	// CallTimeout bounds one send+receive attempt on the wire; zero leaves
	// calls unbounded (a dropped response then blocks forever, so chaos
	// harnesses set this).
	CallTimeout time.Duration
	// Retries is how many times Call re-dials and retries after a transport
	// failure. Zero selects 1 (the historical single re-dial); negative
	// disables retries. Remote handler errors are never retried — the
	// request was already processed.
	Retries int
	// Backoff is the wait before the first retry, doubled each further
	// retry up to MaxBackoff. Zero retries immediately.
	Backoff time.Duration
	// MaxBackoff caps the exponential backoff; zero selects 10*Backoff.
	MaxBackoff time.Duration
	// Jitter adds up to this fraction (0..1) of each backoff, drawn from a
	// PRNG seeded with Seed so retry schedules are reproducible.
	Jitter float64
	// Seed feeds the jitter PRNG.
	Seed int64
	// DedupWindow (servers) is how many recent sequence numbers per client
	// the server remembers responses for, making retried deliveries
	// idempotent: a replayed (From, Seq) gets the cached response instead
	// of re-invoking the handler. Zero disables (deduplication assumes
	// client names are unique, which not every deployment guarantees).
	DedupWindow int
	// Counters, when set, receives the proto/* control-plane counters.
	Counters *metrics.Counters
	// Metrics, when set, receives the proto/call_seconds histogram: the
	// wall-clock duration of each Call, retries and backoff included.
	Metrics *metrics.Registry
	// Injector, when set, intercepts outbound messages (drop, duplicate,
	// delay) — the proto-level fault hook the chaos engine drives.
	Injector FaultInjector
	// Clock paces retry backoff and injected delays. Nil selects the real
	// clock; sim harnesses pass their scaled or manual clock so proto
	// sleeps stay in virtual time.
	Clock vclock.Clock
}

func (o Options) clock() vclock.Clock {
	if o.Clock == nil {
		return vclock.Real()
	}
	return o.Clock
}

func (o Options) dialTimeout() time.Duration {
	if o.DialTimeout <= 0 {
		return 5 * time.Second
	}
	return o.DialTimeout
}

func (o Options) retries() int {
	switch {
	case o.Retries < 0:
		return 0
	case o.Retries == 0:
		return 1
	default:
		return o.Retries
	}
}

func (o Options) dedupWindow() int {
	if o.DedupWindow < 0 {
		return 0
	}
	return o.DedupWindow
}

// backoffFor returns the wait before retry attempt (1-based), including
// seeded jitter. rng may be nil when Jitter is 0.
func (o Options) backoffFor(attempt int, rng *rand.Rand) time.Duration {
	if o.Backoff <= 0 {
		return 0
	}
	d := o.Backoff << (attempt - 1)
	max := o.MaxBackoff
	if max <= 0 {
		max = 10 * o.Backoff
	}
	if d > max {
		d = max
	}
	if o.Jitter > 0 && rng != nil {
		d += time.Duration(o.Jitter * rng.Float64() * float64(d))
	}
	return d
}

// MetricCallSeconds is the wall-clock duration of one client Call (an
// approximate metric — retries, backoff and the wire round trip included).
const MetricCallSeconds = "proto/call_seconds"

// Verdict is a fault injector's decision about one outbound message.
type Verdict struct {
	// Drop swallows the message; the peer never sees it.
	Drop bool
	// Duplicate sends the message twice.
	Duplicate bool
	// Delay sleeps before sending.
	Delay time.Duration
}

// FaultInjector intercepts outbound messages on a connection. Implementations
// must be safe for concurrent use.
type FaultInjector interface {
	Outbound(m *Message) Verdict
}

// dedupCache remembers the last responses per (client, seq) so redelivered
// requests are answered idempotently.
type dedupCache struct {
	window int

	mu      sync.Mutex
	clients map[string]*clientWindow
}

type clientWindow struct {
	resps map[uint64]*Message
	order []uint64
}

func newDedupCache(window int) *dedupCache {
	if window <= 0 {
		return nil
	}
	return &dedupCache{window: window, clients: make(map[string]*clientWindow)}
}

// lookup returns the cached response for a (from, seq), if any. Seq 0 is
// never cached (unset field).
func (d *dedupCache) lookup(from string, seq uint64) (*Message, bool) {
	if d == nil || from == "" || seq == 0 {
		return nil, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	cw, ok := d.clients[from]
	if !ok {
		return nil, false
	}
	resp, ok := cw.resps[seq]
	return resp, ok
}

// store records a response for replay.
func (d *dedupCache) store(from string, seq uint64, resp *Message) {
	if d == nil || from == "" || seq == 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	cw, ok := d.clients[from]
	if !ok {
		cw = &clientWindow{resps: make(map[uint64]*Message)}
		d.clients[from] = cw
	}
	if _, exists := cw.resps[seq]; !exists {
		cw.order = append(cw.order, seq)
	}
	cw.resps[seq] = resp
	for len(cw.order) > d.window {
		delete(cw.resps, cw.order[0])
		cw.order = cw.order[1:]
	}
}
