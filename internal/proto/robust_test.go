package proto

import (
	"bytes"
	"encoding/binary"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"autoresched/internal/metrics"
)

// dropFirstN drops the first N outbound messages it sees.
type dropFirstN struct {
	mu   sync.Mutex
	left int
}

func (d *dropFirstN) Outbound(m *Message) Verdict {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.left > 0 {
		d.left--
		return Verdict{Drop: true}
	}
	return Verdict{}
}

func TestConnRecvPeerClosesMidFrame(t *testing.T) {
	client, server := net.Pipe()
	go func() {
		// Advertise a 10-byte frame, deliver 2 bytes, hang up.
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], 10)
		server.Write(hdr[:])
		server.Write([]byte("xy"))
		server.Close()
	}()
	c := NewConn(client)
	if _, err := c.Recv(); err == nil {
		t.Fatal("Recv accepted a truncated frame")
	}
}

func TestConnRecvOversizedHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	c := NewConn(&buf)
	if _, err := c.Recv(); err == nil {
		t.Fatal("Recv accepted an oversized frame header")
	}
}

func TestConnSendOnDeadConnection(t *testing.T) {
	client, server := net.Pipe()
	server.Close()
	c := NewConn(client)
	if err := c.Send(statusMsg("ws1")); err == nil {
		t.Fatal("Send on a dead connection succeeded")
	}
}

func TestClientCallTimeoutOnSilentServer(t *testing.T) {
	// A raw listener that accepts but never responds.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	cli, err := DialOptions("ws1", ln.Addr().String(), Options{
		CallTimeout: 50 * time.Millisecond,
		Retries:     -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	start := time.Now()
	if _, err := cli.Call(statusMsg("ws1")); err == nil {
		t.Fatal("Call against a silent server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Call took %v; CallTimeout did not bound it", elapsed)
	}
}

func TestClientRetriesWithBackoffAfterRestart(t *testing.T) {
	ctr := metrics.NewCounters()
	srv, err := NewServer("registry", "127.0.0.1:0", func(m *Message) (*Message, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cli, err := DialOptions("ws1", addr, Options{
		CallTimeout: time.Second,
		Retries:     3,
		Backoff:     time.Millisecond,
		Jitter:      0.5,
		Seed:        42,
		Counters:    ctr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Call(statusMsg("ws1")); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv2, err := NewServer("registry", addr, func(m *Message) (*Message, error) { return nil, nil })
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	if _, err := cli.Call(statusMsg("ws1")); err != nil {
		t.Fatalf("call after restart: %v", err)
	}
	if ctr.Get(metrics.CtrProtoRetries) == 0 {
		t.Fatal("no retry counted")
	}
	if ctr.Get(metrics.CtrProtoReconnects) == 0 {
		t.Fatal("no reconnect counted")
	}
}

func TestClientRetriesDisabled(t *testing.T) {
	srv, err := NewServer("registry", "127.0.0.1:0", func(m *Message) (*Message, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cli, err := DialOptions("ws1", addr, Options{Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	srv.Close()
	srv2, err := NewServer("registry", addr, func(m *Message) (*Message, error) { return nil, nil })
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	// Without retries the broken connection is not re-dialled.
	if _, err := cli.Call(statusMsg("ws1")); err == nil {
		t.Fatal("call succeeded without retries on a broken connection")
	}
}

func TestClientDoesNotRetryRemoteErrors(t *testing.T) {
	var calls atomic.Int64
	srv, err := NewServer("registry", "127.0.0.1:0", func(m *Message) (*Message, error) {
		calls.Add(1)
		return nil, strings.NewReader("").UnreadByte() // any non-nil error
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := DialOptions("ws1", srv.Addr(), Options{Retries: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Call(statusMsg("ws1")); err == nil {
		t.Fatal("remote error not surfaced")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("handler invoked %d times for a remote error; want 1", got)
	}
}

func TestServerDedupReplaysCachedResponse(t *testing.T) {
	var calls atomic.Int64
	ctr := metrics.NewCounters()
	srv, err := NewServerOptions("registry", "127.0.0.1:0", func(m *Message) (*Message, error) {
		calls.Add(1)
		return nil, nil
	}, Options{DedupWindow: 8, Counters: ctr})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	c := NewConn(raw)
	req := statusMsg("ws1")
	req.Seq = 7
	// The same (From, Seq) delivered twice — a redelivered retry. The
	// handler must run once; both responses must ack seq 7.
	for i := 0; i < 2; i++ {
		if err := c.Send(req); err != nil {
			t.Fatal(err)
		}
		resp, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if resp.Type != TypeAck || resp.Seq != 7 {
			t.Fatalf("resp %d = %+v", i, resp)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("handler ran %d times; want 1 (second delivery deduped)", got)
	}
	if ctr.Get(metrics.CtrProtoDeduped) != 1 {
		t.Fatalf("deduped counter = %d, want 1", ctr.Get(metrics.CtrProtoDeduped))
	}
}

func TestInjectorDropForcesRetry(t *testing.T) {
	ctr := metrics.NewCounters()
	srv, err := NewServer("registry", "127.0.0.1:0", func(m *Message) (*Message, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := DialOptions("ws1", srv.Addr(), Options{
		CallTimeout: 100 * time.Millisecond,
		Retries:     2,
		Counters:    ctr,
		Injector:    &dropFirstN{left: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// First send is swallowed by the injector; the call times out waiting
	// for a response, reconnects, and succeeds on the retry.
	if _, err := cli.Call(statusMsg("ws1")); err != nil {
		t.Fatalf("Call with one dropped message: %v", err)
	}
	if ctr.Get(metrics.CtrProtoDropped) != 1 {
		t.Fatalf("dropped counter = %d, want 1", ctr.Get(metrics.CtrProtoDropped))
	}
	if ctr.Get(metrics.CtrProtoRetries) == 0 {
		t.Fatal("no retry counted after a dropped message")
	}
}
