package proto

import (
	"bytes"
	"encoding/binary"
	"encoding/xml"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"autoresched/internal/metrics"
	"autoresched/internal/vclock"
)

// maxFrame bounds a single message to keep a malformed peer from forcing a
// huge allocation.
const maxFrame = 16 << 20

// WriteFrame writes one length-prefixed XML message.
func WriteFrame(w io.Writer, data []byte) error {
	if len(data) > maxFrame {
		return fmt.Errorf("proto: frame of %d bytes exceeds limit", len(data))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

// ReadFrame reads one length-prefixed XML message.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("proto: frame of %d bytes exceeds limit", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, err
	}
	return data, nil
}

// Conn is a message-oriented connection: framed XML messages over any
// stream. It serialises writes; reads must come from a single goroutine.
type Conn struct {
	rw       io.ReadWriter
	wr       sync.Mutex
	whdr     [4]byte // write-side frame header, reused under wr
	injector FaultInjector
	counters *metrics.Counters
	clock    vclock.Clock

	// rhdr and readBuf are the read-side scratch: one header, one payload
	// buffer grown geometrically, reused across frames by the single
	// reading goroutine. Decode copies what it keeps, so reuse is safe.
	rhdr    [4]byte
	readBuf []byte
}

// NewConn wraps a stream.
func NewConn(rw io.ReadWriter) *Conn { return &Conn{rw: rw} }

// SetInjector installs a fault injector consulted before every Send.
func (c *Conn) SetInjector(f FaultInjector, counters *metrics.Counters) {
	c.injector = f
	c.counters = counters
}

// SetClock sets the clock pacing injected delays. Nil (the default)
// selects the real clock.
func (c *Conn) SetClock(clock vclock.Clock) { c.clock = clock }

func (c *Conn) sleep(d time.Duration) {
	if c.clock != nil {
		c.clock.Sleep(d)
		return
	}
	vclock.Real().Sleep(d)
}

// Send encodes and writes one message. An installed fault injector may
// drop it (Send reports success; the peer never sees the message),
// duplicate it, or delay it.
func (c *Conn) Send(m *Message) error {
	if c.injector != nil {
		v := c.injector.Outbound(m)
		if v.Delay > 0 {
			c.counters.Inc(metrics.CtrProtoDelayed)
			c.sleep(v.Delay)
		}
		if v.Drop {
			c.counters.Inc(metrics.CtrProtoDropped)
			return nil
		}
		if v.Duplicate {
			c.counters.Inc(metrics.CtrProtoDuplicated)
			if err := c.sendRaw(m); err != nil {
				return err
			}
		}
	}
	return c.sendRaw(m)
}

// encPool recycles the XML encode buffers of sendRaw: the server's
// serve loop and the client's call path each encode one message per
// round trip, and at fleet scale the encode buffers were most of the
// send-side garbage.
var encPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// sendRaw encodes into a pooled buffer and writes one frame. This is the
// proto send loop's floor: the xml encoder's internals still allocate,
// but the payload-sized buffer is reused.
//
//hot:path
func (c *Conn) sendRaw(m *Message) error {
	if err := m.Validate(); err != nil {
		return err
	}
	buf, _ := encPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer encPool.Put(buf)
	if err := xml.NewEncoder(buf).Encode(m); err != nil {
		return fmt.Errorf("proto: encode %s: %w", m.Type, err)
	}
	c.wr.Lock()
	defer c.wr.Unlock()
	return c.writeFrame(buf.Bytes())
}

// writeFrame is WriteFrame with the header staged in the connection
// (stack headers escape through the io.Writer and allocate per frame).
// Callers must hold c.wr.
func (c *Conn) writeFrame(data []byte) error {
	if len(data) > maxFrame {
		return fmt.Errorf("proto: frame of %d bytes exceeds limit", len(data))
	}
	binary.BigEndian.PutUint32(c.whdr[:], uint32(len(data)))
	if _, err := c.rw.Write(c.whdr[:]); err != nil {
		return err
	}
	_, err := c.rw.Write(data)
	return err
}

// Recv reads and decodes one message. The frame lands in a per-connection
// buffer reused across messages; Decode copies what it keeps.
//
//hot:path
func (c *Conn) Recv() (*Message, error) {
	data, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// readFrame reads one frame into the connection's reusable buffer.
func (c *Conn) readFrame() ([]byte, error) {
	if _, err := io.ReadFull(c.rw, c.rhdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(c.rhdr[:]))
	if n > maxFrame {
		return nil, fmt.Errorf("proto: frame of %d bytes exceeds limit", n)
	}
	if cap(c.readBuf) < n {
		grown := 2 * cap(c.readBuf)
		if grown < n {
			grown = n
		}
		c.readBuf = make([]byte, grown) //lint:allow hotalloc buffer growth is geometric, amortised over the connection's frames
	}
	data := c.readBuf[:n]
	if _, err := io.ReadFull(c.rw, data); err != nil {
		return nil, err
	}
	return data, nil
}

// Close closes the underlying stream if it is closable.
func (c *Conn) Close() error {
	if closer, ok := c.rw.(io.Closer); ok {
		return closer.Close()
	}
	return nil
}

// Handler processes one request message and returns the response (nil for
// no response beyond the ack the server generates).
type Handler func(m *Message) (*Message, error)

// Server accepts framed-XML connections and dispatches each incoming
// message to a handler. Every request receives exactly one response: the
// handler's message, or an ack (with the handler error, if any).
type Server struct {
	name     string
	ln       net.Listener
	handler  Handler
	dedup    *dedupCache
	counters *metrics.Counters

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewServer starts a server listening on addr ("host:0" picks a free port)
// with default options.
func NewServer(name, addr string, handler Handler) (*Server, error) {
	return NewServerOptions(name, addr, handler, Options{})
}

// NewServerOptions starts a server with explicit robustness options:
// DedupWindow enables idempotent redelivery (a retried request is answered
// from the response cache instead of re-invoking the handler), Counters
// makes deduplications observable.
func NewServerOptions(name, addr string, handler Handler, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		name:     name,
		ln:       ln,
		handler:  handler,
		dedup:    newDedupCache(opts.dedupWindow()),
		counters: opts.Counters,
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	c := NewConn(conn)
	for {
		req, err := c.Recv()
		if err != nil {
			return
		}
		// Idempotent redelivery: a (From, Seq) the server already answered
		// — a client retry whose response was lost — replays the cached
		// response instead of re-invoking the handler.
		if cached, ok := s.dedup.lookup(req.From, req.Seq); ok {
			s.counters.Inc(metrics.CtrProtoDeduped)
			if err := c.Send(cached); err != nil {
				return
			}
			continue
		}
		resp, herr := s.handler(req)
		if resp == nil {
			resp = Ack(s.name, req, herr)
		} else {
			resp.Seq = req.Seq
			resp.To = req.From
		}
		s.dedup.store(req.From, req.Seq, resp)
		if err := c.Send(resp); err != nil {
			return
		}
	}
}

// Close stops accepting and closes every open connection.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Client is a request/response client over one TCP connection. It is safe
// for concurrent use; requests are serialised.
type Client struct {
	name string
	addr string
	opts Options

	mu     sync.Mutex
	conn   *Conn
	raw    net.Conn
	seq    uint64
	closed bool
	rng    *rand.Rand
}

// Dial connects a client named name (used as the From field) to addr with
// default options: 5-second dial timeout, one re-dial retry.
func Dial(name, addr string) (*Client, error) {
	return DialOptions(name, addr, Options{})
}

// DialOptions connects a client with explicit robustness options: dial and
// call timeouts, retry count, exponential backoff with seeded jitter, and
// optional counters/fault injection.
func DialOptions(name, addr string, opts Options) (*Client, error) {
	c := &Client{name: name, addr: addr, opts: opts}
	if opts.Jitter > 0 {
		c.rng = rand.New(rand.NewSource(opts.Seed))
	}
	if err := c.reconnect(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) reconnect() error {
	if c.closed {
		return fmt.Errorf("proto: client closed")
	}
	raw, err := net.DialTimeout("tcp", c.addr, c.opts.dialTimeout())
	if err != nil {
		return err
	}
	if c.raw != nil {
		c.raw.Close()
	}
	c.raw = raw
	c.conn = NewConn(raw)
	c.conn.SetClock(c.opts.Clock)
	if c.opts.Injector != nil {
		c.conn.SetInjector(c.opts.Injector, c.opts.Counters)
	}
	return nil
}

// Call sends a request and waits for its response. Transport failures are
// retried (re-dialling between attempts) per Options.Retries with
// exponential backoff; remote handler errors are returned immediately,
// since the request was already processed.
func (c *Client) Call(m *Message) (*Message, error) {
	if c.opts.Metrics != nil {
		start := time.Now() //lint:allow determinism call_seconds is a wall-clock metric by contract (approximate section)
		defer func() {
			c.opts.Metrics.Histogram(MetricCallSeconds).Observe(time.Since(start).Seconds()) //lint:allow determinism call_seconds is a wall-clock metric by contract
		}()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	m.Seq = c.seq
	m.From = c.name
	resp, err := c.callOnce(m)
	if err == nil || resp != nil {
		// Success, or a remote handler error: never retried.
		return resp, err
	}
	retries := c.opts.retries()
	for attempt := 1; attempt <= retries; attempt++ {
		if d := c.opts.backoffFor(attempt, c.rng); d > 0 {
			c.opts.clock().Sleep(d)
		}
		c.opts.Counters.Inc(metrics.CtrProtoRetries)
		if rerr := c.reconnect(); rerr != nil {
			err = fmt.Errorf("proto: call failed (%v) and reconnect failed: %w", err, rerr)
			continue
		}
		c.opts.Counters.Inc(metrics.CtrProtoReconnects)
		resp, err = c.callOnce(m)
		if err == nil || resp != nil {
			return resp, err
		}
	}
	return nil, err
}

func (c *Client) callOnce(m *Message) (*Message, error) {
	if c.conn == nil {
		return nil, fmt.Errorf("proto: client closed")
	}
	if d := c.opts.CallTimeout; d > 0 {
		// The kernel's socket deadline is necessarily a wall instant.
		c.raw.SetDeadline(time.Now().Add(d)) //lint:allow determinism net deadlines are wall instants

		defer c.raw.SetDeadline(time.Time{})
	}
	if err := c.conn.Send(m); err != nil {
		return nil, err
	}
	resp, err := c.conn.Recv()
	if err != nil {
		return nil, err
	}
	if resp.Type == TypeAck && resp.Error != "" {
		return resp, fmt.Errorf("proto: remote error: %s", resp.Error)
	}
	return resp, nil
}

// Close closes the connection. A closed client fails all further calls
// (reconnects included).
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.conn = nil
	raw := c.raw
	c.raw = nil
	c.mu.Unlock()
	if raw != nil {
		return raw.Close()
	}
	return nil
}
