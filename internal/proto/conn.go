package proto

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// maxFrame bounds a single message to keep a malformed peer from forcing a
// huge allocation.
const maxFrame = 16 << 20

// WriteFrame writes one length-prefixed XML message.
func WriteFrame(w io.Writer, data []byte) error {
	if len(data) > maxFrame {
		return fmt.Errorf("proto: frame of %d bytes exceeds limit", len(data))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

// ReadFrame reads one length-prefixed XML message.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("proto: frame of %d bytes exceeds limit", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, err
	}
	return data, nil
}

// Conn is a message-oriented connection: framed XML messages over any
// stream. It serialises writes; reads must come from a single goroutine.
type Conn struct {
	rw io.ReadWriter
	wr sync.Mutex
}

// NewConn wraps a stream.
func NewConn(rw io.ReadWriter) *Conn { return &Conn{rw: rw} }

// Send encodes and writes one message.
func (c *Conn) Send(m *Message) error {
	data, err := m.Encode()
	if err != nil {
		return err
	}
	c.wr.Lock()
	defer c.wr.Unlock()
	return WriteFrame(c.rw, data)
}

// Recv reads and decodes one message.
func (c *Conn) Recv() (*Message, error) {
	data, err := ReadFrame(c.rw)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// Close closes the underlying stream if it is closable.
func (c *Conn) Close() error {
	if closer, ok := c.rw.(io.Closer); ok {
		return closer.Close()
	}
	return nil
}

// Handler processes one request message and returns the response (nil for
// no response beyond the ack the server generates).
type Handler func(m *Message) (*Message, error)

// Server accepts framed-XML connections and dispatches each incoming
// message to a handler. Every request receives exactly one response: the
// handler's message, or an ack (with the handler error, if any).
type Server struct {
	name    string
	ln      net.Listener
	handler Handler

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewServer starts a server listening on addr ("host:0" picks a free port).
func NewServer(name, addr string, handler Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{name: name, ln: ln, handler: handler, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	c := NewConn(conn)
	for {
		req, err := c.Recv()
		if err != nil {
			return
		}
		resp, herr := s.handler(req)
		if resp == nil {
			resp = Ack(s.name, req, herr)
		} else {
			resp.Seq = req.Seq
			resp.To = req.From
		}
		if err := c.Send(resp); err != nil {
			return
		}
	}
}

// Close stops accepting and closes every open connection.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Client is a request/response client over one TCP connection. It is safe
// for concurrent use; requests are serialised.
type Client struct {
	name string
	addr string

	mu   sync.Mutex
	conn *Conn
	raw  net.Conn
	seq  uint64
}

// Dial connects a client named name (used as the From field) to addr.
func Dial(name, addr string) (*Client, error) {
	c := &Client{name: name, addr: addr}
	if err := c.reconnect(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) reconnect() error {
	raw, err := net.DialTimeout("tcp", c.addr, 5*time.Second)
	if err != nil {
		return err
	}
	c.raw = raw
	c.conn = NewConn(raw)
	return nil
}

// Call sends a request and waits for its response. A broken connection is
// re-dialled once.
func (c *Client) Call(m *Message) (*Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	m.Seq = c.seq
	m.From = c.name
	resp, err := c.callOnce(m)
	if err == nil {
		return resp, nil
	}
	if rerr := c.reconnect(); rerr != nil {
		return nil, fmt.Errorf("proto: call failed (%v) and reconnect failed: %w", err, rerr)
	}
	return c.callOnce(m)
}

func (c *Client) callOnce(m *Message) (*Message, error) {
	if c.conn == nil {
		return nil, fmt.Errorf("proto: client closed")
	}
	if err := c.conn.Send(m); err != nil {
		return nil, err
	}
	resp, err := c.conn.Recv()
	if err != nil {
		return nil, err
	}
	if resp.Type == TypeAck && resp.Error != "" {
		return resp, fmt.Errorf("proto: remote error: %s", resp.Error)
	}
	return resp, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.conn = nil
	if c.raw != nil {
		err := c.raw.Close()
		c.raw = nil
		return err
	}
	return nil
}
