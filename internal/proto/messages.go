// Package proto implements the rescheduler's communication subsystem
// (Section 3.3): a custom XML-based protocol carried over TCP/IP sockets.
// The same message vocabulary is used by the monitor, the registry/scheduler
// and the commander; XML was the paper's choice because it is extensible,
// plain-ASCII and transport independent, and this package keeps the codec
// separate from the transport for the same reason.
package proto

import (
	"encoding/xml"
	"fmt"
	"time"

	"autoresched/internal/sysinfo"
)

// MsgType enumerates the protocol messages.
type MsgType string

// The message vocabulary.
const (
	// TypeRegister announces a host and its static information (one-time).
	TypeRegister MsgType = "register"
	// TypeStatus is the periodic soft-state refresh carrying the host's
	// state and dynamic information summary.
	TypeStatus MsgType = "status"
	// TypeStatusBatch carries several hosts' soft-state refreshes in one
	// message — the aggregation a domain gateway (or the runtime's
	// registry.Batcher) uses so 512 monitors do not mean 512 round trips
	// per refresh interval.
	TypeStatusBatch MsgType = "statusBatch"
	// TypeUnregister withdraws a host.
	TypeUnregister MsgType = "unregister"
	// TypeProcessRegister announces a migration-enabled process with its
	// application schema.
	TypeProcessRegister MsgType = "processRegister"
	// TypeProcessExit withdraws a process.
	TypeProcessExit MsgType = "processExit"
	// TypeCandidateRequest asks the registry/scheduler for a recommended
	// destination host (sent when a host turns overloaded).
	TypeCandidateRequest MsgType = "candidateRequest"
	// TypeCandidateResponse carries the recommendation.
	TypeCandidateResponse MsgType = "candidateResponse"
	// TypeMigrate orders a commander to migrate a process.
	TypeMigrate MsgType = "migrate"
	// TypeAck acknowledges a message, optionally carrying an error.
	TypeAck MsgType = "ack"
)

// Status summarises one monitoring cycle: the rule-decided state plus the
// dynamic quantities the scheduler's policies threshold on.
type Status struct {
	State       string  `xml:"state"` // free/busy/overloaded
	Grade       float64 `xml:"grade"`
	Load1       float64 `xml:"load1"`
	Load5       float64 `xml:"load5"`
	CPUUtilPct  float64 `xml:"cpuUtilPct"`
	NumProcs    int     `xml:"numProcs"`
	Sockets     int     `xml:"sockets"`
	NetInMBps   float64 `xml:"netInMBps"`
	NetOutMBps  float64 `xml:"netOutMBps"`
	MemAvailPct float64 `xml:"memAvailPct"`
	MemAvail    int64   `xml:"memAvail"`
	DiskAvail   int64   `xml:"diskAvail"`
}

// Snapshot reconstructs the system-information view policies evaluate from
// a wire status — the registry/scheduler's picture of a remote host.
func (s Status) Snapshot(host string) sysinfo.Snapshot {
	return sysinfo.Snapshot{
		Host:        host,
		Load1:       s.Load1,
		Load5:       s.Load5,
		CPUUtilPct:  s.CPUUtilPct,
		CPUIdlePct:  100 - s.CPUUtilPct,
		NumProcs:    s.NumProcs,
		Sockets:     s.Sockets,
		NetRecvBps:  s.NetInMBps * 1e6,
		NetSentBps:  s.NetOutMBps * 1e6,
		MemAvailPct: s.MemAvailPct,
		MemAvail:    s.MemAvail,
	}
}

// HostStatus pairs one host with its status inside a statusBatch message.
type HostStatus struct {
	Host   string `xml:"host,attr"`
	Status Status `xml:"status"`
}

// StaticInfo is the one-time registration payload.
type StaticInfo struct {
	Addr     string  `xml:"addr"` // commander endpoint for migrate orders
	OS       string  `xml:"os"`
	Arch     string  `xml:"arch"`
	CPUSpeed float64 `xml:"cpuSpeed"`
	MemTotal int64   `xml:"memTotal"`
	// Software lists installed packages for requirement matching.
	Software []string `xml:"software>package,omitempty"`
}

// ProcessInfo registers one migration-enabled process.
type ProcessInfo struct {
	PID   int    `xml:"pid"`
	Name  string `xml:"name"`
	Start int64  `xml:"start"` // UnixNano of the start time (pid file stamp)
	// SchemaXML carries the application schema document verbatim.
	SchemaXML string `xml:"schema,omitempty"`
}

// Candidate is a destination recommendation.
type Candidate struct {
	OK     bool   `xml:"ok"`
	Host   string `xml:"host,omitempty"`
	Addr   string `xml:"addr,omitempty"`
	Reason string `xml:"reason,omitempty"`
}

// MigrateOrder tells a commander which process to move where.
type MigrateOrder struct {
	PID      int    `xml:"pid"`
	DestHost string `xml:"destHost"`
	DestAddr string `xml:"destAddr"`
	Policy   string `xml:"policy,omitempty"`
}

// Message is the protocol envelope. Exactly one payload field is set,
// matching Type.
type Message struct {
	XMLName xml.Name `xml:"hpcmMsg"`
	Type    MsgType  `xml:"type,attr"`
	From    string   `xml:"from,attr,omitempty"`
	To      string   `xml:"to,attr,omitempty"`
	Seq     uint64   `xml:"seq,attr,omitempty"`
	SentAt  int64    `xml:"sentAt,attr,omitempty"` // UnixNano

	Static    *StaticInfo   `xml:"static,omitempty"`
	Status    *Status       `xml:"status,omitempty"`
	Batch     []HostStatus  `xml:"batch>report,omitempty"`
	Process   *ProcessInfo  `xml:"process,omitempty"`
	Candidate *Candidate    `xml:"candidate,omitempty"`
	Migrate   *MigrateOrder `xml:"migrate,omitempty"`
	Error     string        `xml:"error,omitempty"`
}

// Stamp sets the send time.
func (m *Message) Stamp(t time.Time) { m.SentAt = t.UnixNano() }

// Validate checks that the payload matches the message type.
func (m *Message) Validate() error {
	switch m.Type {
	case TypeRegister:
		if m.Static == nil {
			return fmt.Errorf("proto: register without static info")
		}
	case TypeStatus:
		if m.Status == nil {
			return fmt.Errorf("proto: status without payload")
		}
	case TypeStatusBatch:
		if len(m.Batch) == 0 {
			return fmt.Errorf("proto: statusBatch without reports")
		}
	case TypeProcessRegister:
		if m.Process == nil {
			return fmt.Errorf("proto: processRegister without process")
		}
	case TypeProcessExit:
		if m.Process == nil {
			return fmt.Errorf("proto: processExit without process")
		}
	case TypeCandidateResponse:
		if m.Candidate == nil {
			return fmt.Errorf("proto: candidateResponse without candidate")
		}
	case TypeMigrate:
		if m.Migrate == nil {
			return fmt.Errorf("proto: migrate without order")
		}
	case TypeUnregister, TypeCandidateRequest, TypeAck:
		// Envelope-only (ack may carry Error).
	default:
		return fmt.Errorf("proto: unknown message type %q", m.Type)
	}
	if m.From == "" {
		return fmt.Errorf("proto: %s message without sender", m.Type)
	}
	return nil
}

// Encode renders the message as XML.
func (m *Message) Encode() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return xml.Marshal(m)
}

// Decode parses an XML message and validates it.
func Decode(data []byte) (*Message, error) {
	var m Message
	if err := xml.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("proto: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Ack builds an acknowledgement for a message; err may be nil.
func Ack(from string, req *Message, err error) *Message {
	m := &Message{Type: TypeAck, From: from, To: req.From, Seq: req.Seq}
	if err != nil {
		m.Error = err.Error()
	}
	return m
}
