package rules

import (
	"path/filepath"
	"strings"
	"testing"

	"autoresched/internal/sysinfo"
)

func TestParseCondition(t *testing.T) {
	cases := []struct {
		in        string
		script    string
		param     string
		op        Op
		threshold float64
	}{
		{"loadAvg.sh(1) > 2", "loadAvg.sh", "1", OpGreater, 2},
		{"numProcs.sh > 150", "numProcs.sh", "", OpGreater, 150},
		{"netFlow.sh(max) <= 5", "netFlow.sh", "max", OpLessEqual, 5},
		{"memAvailPct.sh >= 10.5", "memAvailPct.sh", "", OpGreaterEqual, 10.5},
		{"processorStatus.sh < 45", "processorStatus.sh", "", OpLess, 45},
	}
	for _, c := range cases {
		got, err := ParseCondition(c.in)
		if err != nil {
			t.Fatalf("ParseCondition(%q): %v", c.in, err)
		}
		if got.Script != c.script || got.Param != c.param || got.Op != c.op || got.Threshold != c.threshold {
			t.Fatalf("ParseCondition(%q) = %+v", c.in, got)
		}
	}
}

func TestParseConditionErrors(t *testing.T) {
	for _, in := range []string{
		"", "loadAvg.sh", "loadAvg.sh > pig", "(1) > 2", "loadAvg.sh(1 > 2",
	} {
		if _, err := ParseCondition(in); err == nil {
			t.Errorf("ParseCondition(%q): want error", in)
		}
	}
}

// TestTable2PolicyFileMatchesBuiltins: the checked-in policy file and the
// code constructors make identical decisions on the Table 2 snapshots.
func TestTable2PolicyFileMatchesBuiltins(t *testing.T) {
	parsed, err := ParsePolicyFile(filepath.Join("testdata", "table2.policies"))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 3 {
		t.Fatalf("parsed %d policies", len(parsed))
	}
	builtins := []*MigrationPolicy{Policy1(), Policy2(), Policy3()}
	snaps := table2Snapshots()
	overloaded := sysinfo.Snapshot{Host: "src", Load1: 2.6, NumProcs: 60}
	commSrc := sysinfo.Snapshot{Host: "src", Load1: 5, NumProcs: 300, NetSentBps: 8e6}
	for i, p := range parsed {
		ref := builtins[i]
		if p.Name != ref.Name {
			t.Fatalf("policy %d name = %q, want %q", i, p.Name, ref.Name)
		}
		for _, src := range []sysinfo.Snapshot{overloaded, commSrc, snaps["ws4"]} {
			a, err1 := p.ShouldMigrate(probes, src)
			b, err2 := ref.ShouldMigrate(probes, src)
			if err1 != nil || err2 != nil || a != b {
				t.Fatalf("%s ShouldMigrate(%s) file=%v builtin=%v (%v,%v)", p.Name, src.Host, a, b, err1, err2)
			}
		}
		for host, snap := range snaps {
			a, err1 := p.DestinationOK(probes, snap)
			b, err2 := ref.DestinationOK(probes, snap)
			if err1 != nil || err2 != nil || a != b {
				t.Fatalf("%s DestinationOK(%s) file=%v builtin=%v", p.Name, host, a, b)
			}
		}
	}
}

func TestParsePoliciesErrors(t *testing.T) {
	for _, src := range []string{
		"pl_trigger: x > 1\n",                 // before any name
		"pl_name: p\npl_migrate: maybe\n",     // bad bool
		"pl_name: p\npl_trigger: nonsense\n",  // bad condition
		"pl_name: p\nbogus: 1\n",              // unknown key
		"pl_name: p\npl_dest x > 1\n",         // missing colon
		"pl_name: p\npl_future: tolerated\n#", // unknown pl_ key tolerated
	} {
		_, err := ParsePolicies(strings.NewReader(src))
		tolerated := strings.Contains(src, "pl_future")
		if (err == nil) != tolerated {
			t.Errorf("ParsePolicies(%q): err = %v", src, err)
		}
	}
	if _, err := ParsePolicyFile(filepath.Join("testdata", "missing.policies")); err == nil {
		t.Error("missing file accepted")
	}
}
