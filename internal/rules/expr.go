package rules

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// The complex-rule expression language of Figure 4:
//
//	( 40% * r4 + 30% * r1 + 30% * r3 ) & r2
//
// Operands are grades: a rule reference rN evaluates rule N, a number is a
// constant, and N% is N/100 (the weights of a weighted sum). '+', '-' and
// '*' are arithmetic over grades. '&' combines two sub-states by taking the
// minimum grade — both sides must be at least busy for the result to be busy
// (the paper: busy if "both ... are in busy or one of them is in busy and
// the other is in overloaded") — and '|' takes the maximum. '&' and '|'
// bind loosest.
//
// Grammar (recursive descent):
//
//	expr    := sum (('&' | '|') sum)*
//	sum     := product (('+' | '-') product)*
//	product := unary ('*' unary)*
//	unary   := NUMBER ['%'] | 'r' INT | '(' expr ')'
type exprNode struct {
	kind  exprKind
	op    byte // '&', '|', '+', '-', '*'
	num   float64
	rule  int
	left  *exprNode
	right *exprNode
}

type exprKind int

const (
	nodeNum exprKind = iota
	nodeRule
	nodeBinary
)

// eval computes the grade of the expression; env resolves rule references.
func (n *exprNode) eval(env func(int) (Grade, error)) (Grade, error) {
	switch n.kind {
	case nodeNum:
		return Grade(n.num), nil
	case nodeRule:
		return env(n.rule)
	case nodeBinary:
		l, err := n.left.eval(env)
		if err != nil {
			return 0, err
		}
		r, err := n.right.eval(env)
		if err != nil {
			return 0, err
		}
		switch n.op {
		case '&':
			return min(l, r), nil
		case '|':
			return max(l, r), nil
		case '+':
			return l + r, nil
		case '-':
			return l - r, nil
		case '*':
			return l * r, nil
		}
	}
	return 0, fmt.Errorf("rules: corrupt expression node")
}

// ruleRefs returns the rule numbers referenced by the expression, in
// left-to-right order, without duplicates.
func (n *exprNode) ruleRefs() []int {
	var refs []int
	seen := make(map[int]bool)
	var walk func(*exprNode)
	walk = func(n *exprNode) {
		if n == nil {
			return
		}
		if n.kind == nodeRule && !seen[n.rule] {
			seen[n.rule] = true
			refs = append(refs, n.rule)
		}
		walk(n.left)
		walk(n.right)
	}
	walk(n)
	return refs
}

type exprParser struct {
	src string
	pos int
}

// parseExpr parses a complex-rule expression.
func parseExpr(src string) (*exprNode, error) {
	p := &exprParser{src: src}
	node, err := p.expr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("unexpected %q at offset %d", p.src[p.pos:], p.pos)
	}
	return node, nil
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *exprParser) expr() (*exprNode, error) {
	left, err := p.sum()
	if err != nil {
		return nil, err
	}
	for {
		c := p.peek()
		if c != '&' && c != '|' {
			return left, nil
		}
		p.pos++
		right, err := p.sum()
		if err != nil {
			return nil, err
		}
		left = &exprNode{kind: nodeBinary, op: c, left: left, right: right}
	}
}

func (p *exprParser) sum() (*exprNode, error) {
	left, err := p.product()
	if err != nil {
		return nil, err
	}
	for {
		c := p.peek()
		if c != '+' && c != '-' {
			return left, nil
		}
		p.pos++
		right, err := p.product()
		if err != nil {
			return nil, err
		}
		left = &exprNode{kind: nodeBinary, op: c, left: left, right: right}
	}
}

func (p *exprParser) product() (*exprNode, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.peek() == '*' {
		p.pos++
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		left = &exprNode{kind: nodeBinary, op: '*', left: left, right: right}
	}
	return left, nil
}

func (p *exprParser) unary() (*exprNode, error) {
	switch c := p.peek(); {
	case c == '(':
		p.pos++
		node, err := p.expr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("missing ')' at offset %d", p.pos)
		}
		p.pos++
		return node, nil
	case c == 'r' || c == 'R':
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && isDigit(p.src[p.pos]) {
			p.pos++
		}
		if p.pos == start {
			return nil, fmt.Errorf("rule reference without number at offset %d", start)
		}
		n, err := strconv.Atoi(p.src[start:p.pos])
		if err != nil {
			return nil, err
		}
		return &exprNode{kind: nodeRule, rule: n}, nil
	case isDigit(c) || c == '.':
		start := p.pos
		for p.pos < len(p.src) && (isDigit(p.src[p.pos]) || p.src[p.pos] == '.') {
			p.pos++
		}
		v, err := strconv.ParseFloat(p.src[start:p.pos], 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q: %w", p.src[start:p.pos], err)
		}
		if p.pos < len(p.src) && p.src[p.pos] == '%' {
			p.pos++
			v /= 100
		}
		return &exprNode{kind: nodeNum, num: v}, nil
	case c == 0:
		return nil, fmt.Errorf("unexpected end of expression")
	default:
		return nil, fmt.Errorf("unexpected %q at offset %d", string(c), p.pos)
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// String reconstructs a canonical form of the expression, for logs.
func (n *exprNode) String() string {
	var b strings.Builder
	n.write(&b)
	return b.String()
}

func (n *exprNode) write(b *strings.Builder) {
	switch n.kind {
	case nodeNum:
		fmt.Fprintf(b, "%g", n.num)
	case nodeRule:
		fmt.Fprintf(b, "r%d", n.rule)
	case nodeBinary:
		b.WriteByte('(')
		n.left.write(b)
		fmt.Fprintf(b, " %c ", n.op)
		n.right.write(b)
		b.WriteByte(')')
	}
}
