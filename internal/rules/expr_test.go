package rules

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func evalExprString(t *testing.T, src string, env map[int]Grade) Grade {
	t.Helper()
	node, err := parseExpr(src)
	if err != nil {
		t.Fatalf("parseExpr(%q): %v", src, err)
	}
	g, err := node.eval(func(n int) (Grade, error) { return env[n], nil })
	if err != nil {
		t.Fatalf("eval(%q): %v", src, err)
	}
	return g
}

func TestFigure4Expression(t *testing.T) {
	src := "( 40% * r4 + 30% * r1 + 30% * r3 ) & r2"

	// All four rules busy: weighted sum is 1.0; & with busy r2 stays busy.
	env := map[int]Grade{1: GradeBusy, 2: GradeBusy, 3: GradeBusy, 4: GradeBusy}
	if g := evalExprString(t, src, env); g.State() != Busy {
		t.Fatalf("all busy => %v, want busy", g.State())
	}

	// The paper: busy if one side busy and the other overloaded.
	env = map[int]Grade{1: GradeOverloaded, 2: GradeBusy, 3: GradeOverloaded, 4: GradeOverloaded}
	if g := evalExprString(t, src, env); g.State() != Busy {
		t.Fatalf("sum overloaded & r2 busy => %v, want busy", g.State())
	}

	// Both sides overloaded: overloaded.
	env = map[int]Grade{1: GradeOverloaded, 2: GradeOverloaded, 3: GradeOverloaded, 4: GradeOverloaded}
	if g := evalExprString(t, src, env); g.State() != Overloaded {
		t.Fatalf("all overloaded => %v, want overloaded", g.State())
	}

	// r2 free dominates the & (a host with few sockets is not loaded under
	// this rule regardless of the weighted sum).
	env = map[int]Grade{1: GradeOverloaded, 2: GradeFree, 3: GradeOverloaded, 4: GradeOverloaded}
	if g := evalExprString(t, src, env); g.State() != Free {
		t.Fatalf("r2 free => %v, want free", g.State())
	}
}

func TestExprWeightedSum(t *testing.T) {
	env := map[int]Grade{1: 2, 3: 1, 4: 0}
	// 0.4*0 + 0.3*2 + 0.3*1 = 0.9
	got := evalExprString(t, "40% * r4 + 30% * r1 + 30% * r3", env)
	if math.Abs(float64(got)-0.9) > 1e-12 {
		t.Fatalf("weighted sum = %v, want 0.9", got)
	}
}

func TestExprOperators(t *testing.T) {
	env := map[int]Grade{1: 1, 2: 2}
	cases := []struct {
		src  string
		want float64
	}{
		{"r1 + r2", 3},
		{"r2 - r1", 1},
		{"r1 * r2", 2},
		{"r1 & r2", 1},
		{"r1 | r2", 2},
		{"2 & 1 | 0.2", 1},   // left-assoc: (2&1)|0.2 = 1
		{"r1 + r2 * 2", 5},   // * binds tighter than +
		{"(r1 + r2) * 2", 6}, // parentheses
		{"50%", 0.5},
		{"100% * r2", 2},
		{"1.5", 1.5},
		{"0.5 + 25%", 0.75},
	}
	for _, c := range cases {
		if got := evalExprString(t, c.src, env); math.Abs(float64(got)-c.want) > 1e-12 {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestExprParseErrors(t *testing.T) {
	for _, src := range []string{
		"", "(", "(r1", "r", "r1 +", "& r1", "r1 r2", "r1 @ r2", "4 4", "r1)",
	} {
		if _, err := parseExpr(src); err == nil {
			t.Errorf("parseExpr(%q): want error", src)
		}
	}
}

func TestExprRuleRefs(t *testing.T) {
	node, err := parseExpr("( 40% * r4 + 30% * r1 + 30% * r3 ) & r2 & r4")
	if err != nil {
		t.Fatal(err)
	}
	refs := node.ruleRefs()
	want := []int{4, 1, 3, 2}
	if len(refs) != len(want) {
		t.Fatalf("refs = %v, want %v", refs, want)
	}
	for i := range want {
		if refs[i] != want[i] {
			t.Fatalf("refs = %v, want %v", refs, want)
		}
	}
}

func TestExprString(t *testing.T) {
	node, err := parseExpr("40%*r4 + r1 & r2")
	if err != nil {
		t.Fatal(err)
	}
	s := node.String()
	for _, frag := range []string{"r4", "r1", "r2", "&", "0.4"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() = %q missing %q", s, frag)
		}
	}
}

// Property: the parser never panics on arbitrary input — it returns a node
// or an error. Rule files are operator-supplied configuration, so parse
// robustness is a safety property.
func TestExprParserNeverPanicsProperty(t *testing.T) {
	alphabet := []byte("r0123456789.%&|()+-* \tXy")
	f := func(raw []uint8) bool {
		src := make([]byte, 0, len(raw))
		for _, b := range raw {
			src = append(src, alphabet[int(b)%len(alphabet)])
		}
		node, err := parseExpr(string(src))
		if err != nil {
			return true
		}
		// Parsed expressions must also evaluate without panicking.
		_, _ = node.eval(func(int) (Grade, error) { return GradeBusy, nil })
		_ = node.String()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the canonical String() form reparses to an expression with the
// same value under a fixed environment.
func TestExprStringRoundTripProperty(t *testing.T) {
	env := func(n int) (Grade, error) { return Grade(n%3) * 0.7, nil }
	srcs := []string{
		"r1", "r1 + r2", "r1 & r2 | r3", "(r1 + 2*r2) & 50%",
		"( 40% * r4 + 30% * r1 + 30% * r3 ) & r2", "1 - r2 + r3*r3",
	}
	f := func(idx uint8) bool {
		src := srcs[int(idx)%len(srcs)]
		a, err := parseExpr(src)
		if err != nil {
			return false
		}
		b, err := parseExpr(a.String())
		if err != nil {
			return false
		}
		va, err1 := a.eval(env)
		vb, err2 := b.eval(env)
		return err1 == nil && err2 == nil && math.Abs(float64(va-vb)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
