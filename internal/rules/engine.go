package rules

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"autoresched/internal/sysinfo"
)

// Engine holds a host's rule set and evaluates it against system-information
// snapshots. It is the monitor's "rule-evaluator" module (Figure 2).
type Engine struct {
	probes *sysinfo.Probes

	mu    sync.RWMutex
	rules map[int]*Rule
	root  int // rule number deciding the host state; 0 = worst of all rules
}

// NewEngine returns an engine evaluating probes from the given registry
// (nil selects sysinfo.StandardProbes).
func NewEngine(probes *sysinfo.Probes) *Engine {
	if probes == nil {
		probes = sysinfo.StandardProbes()
	}
	return &Engine{probes: probes, rules: make(map[int]*Rule)}
}

// Add validates and installs a rule. Installing a rule with an existing
// number replaces it (rules are reconfigurable at runtime).
func (e *Engine) Add(r *Rule) error {
	if err := r.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rules[r.Number] = r
	return nil
}

// Load parses rules from r and installs them all. It returns the number of
// rules installed.
func (e *Engine) Load(r io.Reader) (int, error) {
	parsed, err := ParseRules(r)
	if err != nil {
		return 0, err
	}
	for _, rule := range parsed {
		if err := e.Add(rule); err != nil {
			return 0, err
		}
	}
	return len(parsed), nil
}

// LoadFile parses a rule file from disk and installs its rules.
func (e *Engine) LoadFile(path string) (int, error) {
	parsed, err := ParseRuleFile(path)
	if err != nil {
		return 0, err
	}
	for _, rule := range parsed {
		if err := e.Add(rule); err != nil {
			return 0, err
		}
	}
	return len(parsed), nil
}

// SetRoot designates the rule whose grade decides the host state. Root 0
// restores the default: the worst grade across all installed rules.
func (e *Engine) SetRoot(number int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.root = number
}

// Rule returns the installed rule with the given number.
func (e *Engine) Rule(number int) (*Rule, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	r, ok := e.rules[number]
	return r, ok
}

// Rules returns the installed rules sorted by number.
func (e *Engine) Rules() []*Rule {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]*Rule, 0, len(e.rules))
	for _, r := range e.rules {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Number < out[j].Number })
	return out
}

// EvalRule evaluates one rule (recursively for complex rules) against a
// snapshot and returns its grade. Rule cycles are reported as errors.
func (e *Engine) EvalRule(number int, snap sysinfo.Snapshot) (Grade, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.evalLocked(number, snap, make(map[int]bool))
}

func (e *Engine) evalLocked(number int, snap sysinfo.Snapshot, visiting map[int]bool) (Grade, error) {
	r, ok := e.rules[number]
	if !ok {
		return GradeFree, fmt.Errorf("rules: no rule %d", number)
	}
	if visiting[number] {
		return GradeFree, fmt.Errorf("rules: cycle through rule %d (%s)", number, r.Name)
	}
	switch r.Type {
	case Simple:
		return r.evalSimple(e.probes, snap)
	case Complex:
		visiting[number] = true
		defer delete(visiting, number)
		if r.expr == nil {
			if err := r.Validate(); err != nil {
				return GradeFree, err
			}
		}
		return r.expr.eval(func(ref int) (Grade, error) {
			return e.evalLocked(ref, snap, visiting)
		})
	default:
		return GradeFree, fmt.Errorf("rules: rule %d has unknown type", number)
	}
}

// Evaluate returns the host grade for a snapshot: the root rule's grade if a
// root is set, otherwise the worst grade across all installed rules.
func (e *Engine) Evaluate(snap sysinfo.Snapshot) (Grade, error) {
	e.mu.RLock()
	root := e.root
	numbers := make([]int, 0, len(e.rules))
	for n := range e.rules {
		numbers = append(numbers, n)
	}
	e.mu.RUnlock()

	if root != 0 {
		return e.EvalRule(root, snap)
	}
	if len(numbers) == 0 {
		return GradeFree, nil
	}
	sort.Ints(numbers)
	worst := GradeFree
	for _, n := range numbers {
		g, err := e.EvalRule(n, snap)
		if err != nil {
			return GradeFree, err
		}
		if g > worst {
			worst = g
		}
	}
	return worst, nil
}

// State returns the coarse three-state projection of Evaluate.
func (e *Engine) State(snap sysinfo.Snapshot) (State, error) {
	g, err := e.Evaluate(snap)
	if err != nil {
		return Free, err
	}
	return g.State(), nil
}
