package rules

import (
	"testing"
	"testing/quick"
)

// TestTable1Semantics encodes Table 1 ("System State Description") exactly:
// state x {loaded, migrate in, migrate out}.
func TestTable1Semantics(t *testing.T) {
	cases := []struct {
		state      State
		loaded     bool
		migrateIn  bool
		migrateOut bool
	}{
		{Free, false, true, false},
		{Busy, true, false, false},
		{Overloaded, true, false, true},
	}
	for _, c := range cases {
		if got := c.state.Loaded(); got != c.loaded {
			t.Errorf("%v.Loaded() = %v, want %v", c.state, got, c.loaded)
		}
		if got := c.state.AcceptsMigration(); got != c.migrateIn {
			t.Errorf("%v.AcceptsMigration() = %v, want %v", c.state, got, c.migrateIn)
		}
		if got := c.state.WantsOffload(); got != c.migrateOut {
			t.Errorf("%v.WantsOffload() = %v, want %v", c.state, got, c.migrateOut)
		}
	}
}

func TestUnavailableNeverAcceptsOrOffloads(t *testing.T) {
	if Unavailable.AcceptsMigration() || Unavailable.WantsOffload() {
		t.Fatal("unavailable host must neither accept nor offload")
	}
}

func TestStateStringRoundTrip(t *testing.T) {
	for _, s := range []State{Free, Busy, Overloaded, Unavailable} {
		got, err := ParseState(s.String())
		if err != nil {
			t.Fatalf("ParseState(%q): %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("round trip %v -> %v", s, got)
		}
	}
	if _, err := ParseState("weird"); err == nil {
		t.Fatal("ParseState accepted garbage")
	}
	if got := State(42).String(); got != "State(42)" {
		t.Fatalf("unknown state string = %q", got)
	}
}

func TestGradeStateBoundaries(t *testing.T) {
	cases := []struct {
		g    Grade
		want State
	}{
		{0, Free},
		{0.49, Free},
		{0.5, Busy},
		{1, Busy},
		{1.49, Busy},
		{1.5, Overloaded},
		{2, Overloaded},
		{3.7, Overloaded},
		{-1, Free},
	}
	for _, c := range cases {
		if got := c.g.State(); got != c.want {
			t.Errorf("Grade(%v).State() = %v, want %v", float64(c.g), got, c.want)
		}
	}
}

func TestGradeOfRoundTrip(t *testing.T) {
	for _, s := range []State{Free, Busy, Overloaded} {
		if got := GradeOf(s).State(); got != s {
			t.Errorf("GradeOf(%v).State() = %v", s, got)
		}
	}
	if GradeOf(Unavailable) != GradeFree {
		t.Error("GradeOf(Unavailable) should be the neutral grade")
	}
}

// Property: State() is monotone in the grade — a worse grade never maps to
// a better state.
func TestGradeStateMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if a > b {
			a, b = b, a
		}
		return Grade(a).State() <= Grade(b).State()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
