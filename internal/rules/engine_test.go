package rules

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autoresched/internal/sysinfo"
)

func loadEngine(t *testing.T, file string) *Engine {
	t.Helper()
	e := NewEngine(nil)
	n, err := e.LoadFile(filepath.Join("testdata", file))
	if err != nil {
		t.Fatalf("LoadFile(%s): %v", file, err)
	}
	if n == 0 {
		t.Fatalf("LoadFile(%s): no rules", file)
	}
	return e
}

// TestFigure3Rule1 checks the paper's reading of rule processorStatus:
// idle above 50 free, 45..50 busy, below 45 overloaded.
func TestFigure3Rule1(t *testing.T) {
	e := loadEngine(t, "figure3.rules")
	cases := []struct {
		idle float64
		want State
	}{
		{80, Free},
		{50, Free},
		{49.9, Busy},
		{46, Busy},
		{45, Busy},
		{44.9, Overloaded},
		{10, Overloaded},
	}
	for _, c := range cases {
		g, err := e.EvalRule(1, sysinfo.Snapshot{CPUIdlePct: c.idle})
		if err != nil {
			t.Fatal(err)
		}
		if g.State() != c.want {
			t.Errorf("idle=%v => %v, want %v", c.idle, g.State(), c.want)
		}
	}
}

// TestFigure3Rule2 checks rule ntStatIpv4: sockets above 700 busy, above
// 900 overloaded.
func TestFigure3Rule2(t *testing.T) {
	e := loadEngine(t, "figure3.rules")
	cases := []struct {
		sockets int
		want    State
	}{
		{100, Free},
		{700, Free},
		{701, Busy},
		{900, Busy},
		{901, Overloaded},
	}
	for _, c := range cases {
		g, err := e.EvalRule(2, sysinfo.Snapshot{Sockets: c.sockets})
		if err != nil {
			t.Fatal(err)
		}
		if g.State() != c.want {
			t.Errorf("sockets=%d => %v, want %v", c.sockets, g.State(), c.want)
		}
	}
}

func TestEngineWorstOfDefault(t *testing.T) {
	e := loadEngine(t, "figure3.rules")
	// CPU free but sockets overloaded: worst of the two rules wins.
	s, err := e.State(sysinfo.Snapshot{CPUIdlePct: 99, Sockets: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if s != Overloaded {
		t.Fatalf("state = %v, want overloaded", s)
	}
	s, err = e.State(sysinfo.Snapshot{CPUIdlePct: 99, Sockets: 10})
	if err != nil {
		t.Fatal(err)
	}
	if s != Free {
		t.Fatalf("state = %v, want free", s)
	}
}

func TestFigure4ComplexRuleThroughEngine(t *testing.T) {
	e := loadEngine(t, "figure4.rules")
	e.SetRoot(5)

	// Everything loaded: load 3 (overloaded), idle 40 (overloaded), memory
	// 5% (overloaded), sockets 800 (busy). Weighted sum = 2; & busy = busy.
	snap := sysinfo.Snapshot{Load1: 3, CPUIdlePct: 40, MemAvailPct: 5, Sockets: 800}
	s, err := e.State(snap)
	if err != nil {
		t.Fatal(err)
	}
	if s != Busy {
		t.Fatalf("state = %v, want busy", s)
	}

	// Sockets overloaded too: overall overloaded.
	snap.Sockets = 950
	if s, err = e.State(snap); err != nil || s != Overloaded {
		t.Fatalf("state = %v (%v), want overloaded", s, err)
	}

	// Few sockets: the & forces free regardless of the weighted sum.
	snap.Sockets = 10
	if s, err = e.State(snap); err != nil || s != Free {
		t.Fatalf("state = %v (%v), want free", s, err)
	}
}

func TestEngineRootFallbackAndReset(t *testing.T) {
	e := loadEngine(t, "figure3.rules")
	e.SetRoot(1)
	s, err := e.State(sysinfo.Snapshot{CPUIdlePct: 99, Sockets: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if s != Free {
		t.Fatalf("root=1 state = %v, want free (socket rule ignored)", s)
	}
	e.SetRoot(0)
	if s, _ = e.State(sysinfo.Snapshot{CPUIdlePct: 99, Sockets: 1000}); s != Overloaded {
		t.Fatalf("default state = %v, want overloaded", s)
	}
}

func TestEngineMissingRule(t *testing.T) {
	e := NewEngine(nil)
	if _, err := e.EvalRule(9, sysinfo.Snapshot{}); err == nil {
		t.Fatal("EvalRule on missing rule succeeded")
	}
	e.SetRoot(9)
	if _, err := e.State(sysinfo.Snapshot{}); err == nil {
		t.Fatal("State with missing root succeeded")
	}
}

func TestEngineEmptyIsFree(t *testing.T) {
	e := NewEngine(nil)
	s, err := e.State(sysinfo.Snapshot{})
	if err != nil || s != Free {
		t.Fatalf("empty engine state = %v (%v), want free", s, err)
	}
}

func TestEngineCycleDetection(t *testing.T) {
	e := NewEngine(nil)
	mustAdd := func(r *Rule) {
		if err := e.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(&Rule{Number: 1, Name: "a", Type: Complex, Script: "r2"})
	mustAdd(&Rule{Number: 2, Name: "b", Type: Complex, Script: "r1"})
	if _, err := e.EvalRule(1, sysinfo.Snapshot{}); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
	// Self-cycle.
	mustAdd(&Rule{Number: 3, Name: "c", Type: Complex, Script: "r3 & r3"})
	if _, err := e.EvalRule(3, sysinfo.Snapshot{}); err == nil {
		t.Fatal("self cycle not detected")
	}
}

func TestEngineComplexReferencingMissingRule(t *testing.T) {
	e := NewEngine(nil)
	if err := e.Add(&Rule{Number: 1, Name: "x", Type: Complex, Script: "r77"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.EvalRule(1, sysinfo.Snapshot{}); err == nil {
		t.Fatal("missing referenced rule not reported")
	}
}

func TestEngineUnknownProbe(t *testing.T) {
	e := NewEngine(nil)
	if err := e.Add(&Rule{Number: 1, Name: "x", Type: Simple, Script: "nope.sh", Operator: OpLess}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.EvalRule(1, sysinfo.Snapshot{}); err == nil {
		t.Fatal("unknown probe not reported")
	}
}

func TestEngineRuleReplacement(t *testing.T) {
	e := NewEngine(nil)
	r1 := &Rule{Number: 1, Name: "v1", Type: Simple, Script: "numProcs.sh", Operator: OpGreater, Busy: 10, OverLd: 20}
	if err := e.Add(r1); err != nil {
		t.Fatal(err)
	}
	r2 := &Rule{Number: 1, Name: "v2", Type: Simple, Script: "numProcs.sh", Operator: OpGreater, Busy: 100, OverLd: 200}
	if err := e.Add(r2); err != nil {
		t.Fatal(err)
	}
	got, ok := e.Rule(1)
	if !ok || got.Name != "v2" {
		t.Fatalf("rule 1 = %+v", got)
	}
	if len(e.Rules()) != 1 {
		t.Fatalf("Rules() len = %d", len(e.Rules()))
	}
}

func TestRuleValidateErrors(t *testing.T) {
	cases := []*Rule{
		{Number: 1, Type: Simple, Script: "x.sh", Operator: OpLess},      // no name
		{Number: 1, Name: "a", Type: Simple, Operator: OpLess},           // no script
		{Number: 1, Name: "a", Type: Simple, Script: "x", Operator: "~"}, // bad op
		{Number: 1, Name: "a", Type: Complex},                            // no expr
		{Number: 1, Name: "a", Type: Complex, Script: "(r1"},             // bad expr
		{Number: 1, Name: "a", Type: Type(9), Script: "x"},               // bad type
	}
	for i, r := range cases {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, r)
		}
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	parsed, err := ParseRuleFile(filepath.Join("testdata", "figure4.rules"))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 5 {
		t.Fatalf("parsed %d rules, want 5", len(parsed))
	}
	var b strings.Builder
	for _, r := range parsed {
		b.WriteString(r.Format())
		b.WriteString("\n")
	}
	again, err := ParseRules(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if len(again) != len(parsed) {
		t.Fatalf("round trip %d -> %d rules", len(parsed), len(again))
	}
	for i := range parsed {
		a, b := parsed[i], again[i]
		if a.Number != b.Number || a.Name != b.Name || a.Type != b.Type ||
			a.Script != b.Script || a.Operator != b.Operator || a.Param != b.Param ||
			a.Busy != b.Busy || a.OverLd != b.OverLd {
			t.Fatalf("rule %d changed: %+v vs %+v", a.Number, a, b)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"rl_name: orphan\n",                      // key before rl_number
		"rl_number: x\n",                         // bad number
		"rl_number: 1\nrl_name a\n",              // missing colon
		"rl_number: 1\nrl_name: a\nrl_type: z\n", // bad type
		"rl_number: 1\nrl_name: a\nrl_type: simple\nrl_script: s\nrl_operator: <\nrl_busy: pig\n",
		"rl_number: 1\nrl_name: a\nrl_type: complex\nrl_ruleNo: 1 z\nrl_script: r1\n",
		"bogus_key: 1\n",
	} {
		if _, err := ParseRules(strings.NewReader(src)); err == nil {
			t.Errorf("ParseRules(%q): want error", src)
		}
	}
}

func TestParseRuleFileMissing(t *testing.T) {
	if _, err := ParseRuleFile(filepath.Join(t.TempDir(), "none.rules")); !os.IsNotExist(err) {
		t.Fatalf("err = %v, want not-exist", err)
	}
}

func TestParseIgnoresUnknownRlKeys(t *testing.T) {
	src := "rl_number: 1\nrl_name: a\nrl_type: simple\nrl_script: numProcs.sh\nrl_operator: >\nrl_busy: 1\nrl_overLd: 2\nrl_future: whatever\n"
	parsed, err := ParseRules(strings.NewReader(src))
	if err != nil || len(parsed) != 1 {
		t.Fatalf("parse = %v, %v", parsed, err)
	}
}
