package rules

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ParseRules reads rules in the rl_* key/value format of Figures 3 and 4.
// A new rl_number line starts a new rule; blank lines and lines starting
// with '#' are ignored. Unknown rl_ keys are ignored for forward
// compatibility ("highly configurable and extensible").
func ParseRules(r io.Reader) ([]*Rule, error) {
	var (
		out  []*Rule
		cur  *Rule
		line int
	)
	flush := func() error {
		if cur == nil {
			return nil
		}
		if err := cur.Validate(); err != nil {
			return err
		}
		out = append(out, cur)
		cur = nil
		return nil
	}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		key, value, ok := strings.Cut(text, ":")
		if !ok {
			return nil, fmt.Errorf("rules: line %d: missing ':' in %q", line, text)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		if key == "rl_number" {
			if err := flush(); err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(value)
			if err != nil {
				return nil, fmt.Errorf("rules: line %d: rl_number %q: %w", line, value, err)
			}
			cur = &Rule{Number: n}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("rules: line %d: %q before any rl_number", line, key)
		}
		var err error
		switch key {
		case "rl_name":
			cur.Name = value
		case "rl_type":
			switch strings.ToLower(value) {
			case "simple":
				cur.Type = Simple
			case "complex":
				cur.Type = Complex
			default:
				err = fmt.Errorf("unknown rl_type %q", value)
			}
		case "rl_script":
			cur.Script = value
		case "rl_desc":
			cur.Desc = value
		case "rl_operator":
			cur.Operator = Op(value)
		case "rl_param":
			cur.Param = value
		case "rl_busy":
			cur.Busy, err = parseThreshold(value)
		case "rl_overLd", "rl_overld":
			cur.OverLd, err = parseThreshold(value)
		case "rl_ruleNo", "rl_ruleno":
			cur.RuleNos, err = parseRuleNos(value)
		default:
			if !strings.HasPrefix(key, "rl_") {
				err = fmt.Errorf("unknown key %q", key)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("rules: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseThreshold(s string) (float64, error) {
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad threshold %q: %w", s, err)
	}
	return v, nil
}

func parseRuleNos(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Fields(s) {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad rl_ruleNo entry %q: %w", f, err)
		}
		out = append(out, n)
	}
	return out, nil
}

// ParseRuleFile reads a rule file from disk.
func ParseRuleFile(path string) ([]*Rule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseRules(f)
}

// Format writes a rule back out in the rl_* format. Round-tripping through
// ParseRules yields an equivalent rule.
func (r *Rule) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rl_number: %d\n", r.Number)
	fmt.Fprintf(&b, "rl_name: %s\n", r.Name)
	fmt.Fprintf(&b, "rl_type: %s\n", r.Type)
	if r.Desc != "" {
		fmt.Fprintf(&b, "rl_desc: %s\n", r.Desc)
	}
	if r.Type == Complex {
		if len(r.RuleNos) > 0 {
			nos := make([]string, len(r.RuleNos))
			for i, n := range r.RuleNos {
				nos[i] = strconv.Itoa(n)
			}
			fmt.Fprintf(&b, "rl_ruleNo: %s\n", strings.Join(nos, " "))
		}
		fmt.Fprintf(&b, "rl_script: %s\n", r.Script)
		return b.String()
	}
	fmt.Fprintf(&b, "rl_script: %s\n", r.Script)
	fmt.Fprintf(&b, "rl_operator: %s\n", r.Operator)
	fmt.Fprintf(&b, "rl_param: %s\n", r.Param)
	fmt.Fprintf(&b, "rl_busy: %g\n", r.Busy)
	fmt.Fprintf(&b, "rl_overLd: %g\n", r.OverLd)
	return b.String()
}
