package rules

import (
	"fmt"
	"strings"

	"autoresched/internal/sysinfo"
)

// Condition is one thresholded probe comparison, the unit the Section 5.3
// migration policies are written in ("1-min load average is greater than
// 2", "the number of active processes is less than 100", ...).
type Condition struct {
	Script    string
	Param     string
	Op        Op
	Threshold float64
	Desc      string
}

// Holds evaluates the condition against a snapshot.
func (c Condition) Holds(probes *sysinfo.Probes, snap sysinfo.Snapshot) (bool, error) {
	value, err := probes.Eval(c.Script, snap, c.Param)
	if err != nil {
		return false, fmt.Errorf("rules: condition %q: %w", c.String(), err)
	}
	return c.Op.compare(value, c.Threshold), nil
}

// String renders the condition for logs and experiment reports.
func (c Condition) String() string {
	if c.Desc != "" {
		return c.Desc
	}
	name := strings.TrimSuffix(c.Script, ".sh")
	if c.Param != "" {
		name += "(" + c.Param + ")"
	}
	return fmt.Sprintf("%s %s %g", name, c.Op, c.Threshold)
}

// MigrationPolicy is a Section 5.3 policy: when to migrate a process away
// from its source host and which hosts qualify as destinations.
//
// Trigger conditions are any-of over the source host's snapshot; source
// preconditions are all-of (policy 3's "communication flow no more than
// 5 MB/s" reads as a precondition — a heavily communicating process is not
// worth moving); destination conditions are all-of over the candidate's
// snapshot.
type MigrationPolicy struct {
	Name          string
	Migrate       bool // false disables migration entirely (Policy 1)
	Trigger       []Condition
	SourcePrecond []Condition
	Destination   []Condition
	// Scheduler names the placement scheduler ("firstfit", "leastloaded")
	// the registry should use under this policy; empty keeps the registry's
	// default (first fit).
	Scheduler string
}

// ShouldMigrate reports whether the policy fires on the source snapshot:
// migration is enabled, at least one trigger holds, and every source
// precondition holds.
func (p *MigrationPolicy) ShouldMigrate(probes *sysinfo.Probes, snap sysinfo.Snapshot) (bool, error) {
	if !p.Migrate {
		return false, nil
	}
	triggered := len(p.Trigger) == 0
	for _, c := range p.Trigger {
		ok, err := c.Holds(probes, snap)
		if err != nil {
			return false, err
		}
		if ok {
			triggered = true
			break
		}
	}
	if !triggered {
		return false, nil
	}
	for _, c := range p.SourcePrecond {
		ok, err := c.Holds(probes, snap)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// DestinationOK reports whether a candidate host's snapshot satisfies every
// destination condition.
func (p *MigrationPolicy) DestinationOK(probes *sysinfo.Probes, snap sysinfo.Snapshot) (bool, error) {
	for _, c := range p.Destination {
		ok, err := c.Holds(probes, snap)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// The three policies of Table 2.

// Policy1 never migrates.
func Policy1() *MigrationPolicy {
	return &MigrationPolicy{Name: "policy1", Migrate: false}
}

// Policy2 migrates when the 1-minute load average exceeds 2 or the process
// count exceeds 150; a destination must have load below 1 and fewer than
// 100 processes. It is blind to communication state.
func Policy2() *MigrationPolicy {
	return &MigrationPolicy{
		Name:    "policy2",
		Migrate: true,
		Trigger: []Condition{
			{Script: "loadAvg.sh", Param: "1", Op: OpGreater, Threshold: 2},
			{Script: "numProcs.sh", Op: OpGreater, Threshold: 150},
		},
		Destination: []Condition{
			{Script: "loadAvg.sh", Param: "1", Op: OpLess, Threshold: 1},
			{Script: "numProcs.sh", Op: OpLess, Threshold: 100},
		},
	}
}

// Policy3 extends Policy2 with communication awareness: the source's flow
// must be at most 5 MB/s for the migration to be worthwhile, and a
// destination's flow must be at most 3 MB/s.
func Policy3() *MigrationPolicy {
	p := Policy2()
	p.Name = "policy3"
	p.SourcePrecond = []Condition{
		{Script: "netFlow.sh", Param: "max", Op: OpLessEqual, Threshold: 5,
			Desc: "source communication flow <= 5 MB/s"},
	}
	p.Destination = append(p.Destination, Condition{
		Script: "netFlow.sh", Param: "max", Op: OpLessEqual, Threshold: 3,
		Desc: "destination communication flow <= 3 MB/s",
	})
	return p
}
