// Package rules implements the paper's rule-based decision-making mechanism
// (Section 4): system states, simple rules fired against system-information
// probes, complex rules combining other rules through a small expression
// language (weighted sums and the '&'/'|' combinators of Figure 4), rule
// files in the rl_* format of Figures 3 and 4, and the migration policies of
// Section 5.3.
package rules

import "fmt"

// State is the simplified representation of a host's condition. The paper
// classifies states "with a fine granularity using a series of numbers" and
// presents the three-state view as a simplification; Grade is the underlying
// numeric representation and State its coarse projection.
type State int

const (
	// Free: the host is willing and able to accept incoming
	// migration-enabled applications.
	Free State = iota
	// Busy: the host no longer accepts incoming applications but does not
	// try to migrate its own out ("as is").
	Busy
	// Overloaded: the host needs to offload applications onto other hosts
	// in order to return to Busy or Free.
	Overloaded
	// Unavailable: the host has missed its soft-state refreshes and the
	// registry considers it gone.
	Unavailable
)

// String returns the lower-case state name used in protocol messages.
func (s State) String() string {
	switch s {
	case Free:
		return "free"
	case Busy:
		return "busy"
	case Overloaded:
		return "overloaded"
	case Unavailable:
		return "unavailable"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// ParseState parses a state name produced by String.
func ParseState(s string) (State, error) {
	switch s {
	case "free":
		return Free, nil
	case "busy":
		return Busy, nil
	case "overloaded":
		return Overloaded, nil
	case "unavailable":
		return Unavailable, nil
	default:
		return Free, fmt.Errorf("rules: unknown state %q", s)
	}
}

// The three methods below encode Table 1 ("System State Description").

// Loaded reports whether the host is considered loaded.
func (s State) Loaded() bool { return s == Busy || s == Overloaded }

// AcceptsMigration reports whether the host accepts processes migrating in.
func (s State) AcceptsMigration() bool { return s == Free }

// WantsOffload reports whether the host tries to migrate processes out.
func (s State) WantsOffload() bool { return s == Overloaded }

// Grade is the fine-grained numeric state: 0 is free, 1 is busy, 2 is
// overloaded, with intermediate values produced by weighted complex rules.
type Grade float64

// Canonical grades of the three coarse states.
const (
	GradeFree       Grade = 0
	GradeBusy       Grade = 1
	GradeOverloaded Grade = 2
)

// State projects a grade onto the three-state view. Boundaries sit halfway
// between the canonical grades.
func (g Grade) State() State {
	switch {
	case g < 0.5:
		return Free
	case g < 1.5:
		return Busy
	default:
		return Overloaded
	}
}

// GradeOf returns the canonical grade of a coarse state. Unavailable has no
// grade; it is a liveness judgement, not a load judgement.
func GradeOf(s State) Grade {
	switch s {
	case Busy:
		return GradeBusy
	case Overloaded:
		return GradeOverloaded
	default:
		return GradeFree
	}
}
